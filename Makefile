GO ?= go

.PHONY: build test check bench bench-parallel fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the concurrency and robustness gate: vet, the race
# detector over the packages that run under the parallel clock loop
# (including the observability layer, whose bus and profiler read
# shared state live), the watchdog/cancellation/metrics paths raced
# through the GPU pipeline, the checkpoint round trip (restore must be
# bit-identical in serial and parallel mode) with the chaos smoke, a
# bench smoke, and a fuzz smoke over the trace reader.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/core/... ./internal/mem/... ./internal/obsv/... ./internal/chkpt/... ./internal/chaos/...
	$(GO) test -race -run 'Watchdog|Deadlock|Cancel|ParallelMetrics' ./internal/gpu/ .
	$(GO) test -race -run 'Checkpoint|Chaos' -count=1 .
	BENCH_OBSV_OUT=$$(mktemp) $(GO) test -run '^TestBenchObsv$$' .
	$(GO) test -fuzz=FuzzReader -fuzztime=10s ./internal/trace

# fuzz hammers every untrusted-input decoder: the trace reader and the
# checkpoint container/section codec. Corrupt or truncated inputs must
# fail with typed errors, never panic or over-allocate.
fuzz:
	$(GO) test -fuzz=FuzzReader -fuzztime=30s ./internal/trace
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/chkpt
	$(GO) test -fuzz=FuzzDecoder -fuzztime=30s ./internal/chkpt

# bench writes the BENCH_obsv.json snapshot: host cycles/sec and the
# top-5 host-time boxes for three representative scenes.
bench:
	BENCH_OBSV_OUT=BENCH_obsv.json $(GO) test -run '^TestBenchObsv$$' -v .

# bench-parallel reproduces the BENCH_parallel.json snapshot.
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkTable1Baseline' -benchtime 3x .
