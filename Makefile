GO ?= go

.PHONY: build test check bench-parallel

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the concurrency gate: vet plus the race detector over the
# packages that run under the parallel clock loop.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/core/... ./internal/mem/...

# bench-parallel reproduces the BENCH_parallel.json snapshot.
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkTable1Baseline' -benchtime 3x .
