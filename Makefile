GO ?= go

.PHONY: build test check bench-parallel

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the concurrency and robustness gate: vet, the race
# detector over the packages that run under the parallel clock loop,
# the watchdog/cancellation paths raced through the GPU pipeline, and
# a fuzz smoke over the trace reader.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/core/... ./internal/mem/...
	$(GO) test -race -run 'Watchdog|Deadlock|Cancel' ./internal/gpu/ .
	$(GO) test -fuzz=FuzzReader -fuzztime=10s ./internal/trace

# bench-parallel reproduces the BENCH_parallel.json snapshot.
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkTable1Baseline' -benchtime 3x .
