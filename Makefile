GO ?= go

.PHONY: build test check bench bench-parallel

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the concurrency and robustness gate: vet, the race
# detector over the packages that run under the parallel clock loop
# (including the observability layer, whose bus and profiler read
# shared state live), the watchdog/cancellation/metrics paths raced
# through the GPU pipeline, a bench smoke, and a fuzz smoke over the
# trace reader.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/core/... ./internal/mem/... ./internal/obsv/...
	$(GO) test -race -run 'Watchdog|Deadlock|Cancel|ParallelMetrics' ./internal/gpu/ .
	BENCH_OBSV_OUT=$$(mktemp) $(GO) test -run '^TestBenchObsv$$' .
	$(GO) test -fuzz=FuzzReader -fuzztime=10s ./internal/trace

# bench writes the BENCH_obsv.json snapshot: host cycles/sec and the
# top-5 host-time boxes for three representative scenes.
bench:
	BENCH_OBSV_OUT=BENCH_obsv.json $(GO) test -run '^TestBenchObsv$$' -v .

# bench-parallel reproduces the BENCH_parallel.json snapshot.
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkTable1Baseline' -benchtime 3x .
