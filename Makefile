GO ?= go

.PHONY: build test check lint bench bench-gate bench-parallel fuzz fleet-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the concurrency and robustness gate: vet, the race
# detector over the packages that run under the parallel clock loop
# (including the observability layer, whose bus and profiler read
# shared state live), the watchdog/cancellation/metrics paths raced
# through the GPU pipeline, the checkpoint round trip (restore must be
# bit-identical in serial and parallel mode) with the chaos smoke, a
# bench smoke, the hot-path allocation gate (1 iteration, allocation
# check only — wall-clock gating needs `make bench-gate`), a race run
# of the pooled-pipeline serial/parallel equality test, the jobd
# service smoke (submit -> chaos kill/panic/yank -> auto-resume ->
# byte-identical convergence, plus the SIGTERM drain/resume path,
# raced), the span-tracing determinism suite (serial-vs-parallel and
# checkpoint byte-identity of the sampled spans and latency windows),
# the fleet-metrics merge under concurrent job completion, the
# OpenMetrics self-lint over /metrics.prom (simulator and fleet
# families), the multi-host fleet gate (a seeded 3-peer fleet battered
# by killhost/pauseheart/leaseyank must converge byte-identically to a
# clean single-host run, raced, alongside the lease-protocol edge
# cases: steal races, clock-skewed peers, fenced revived hosts,
# epoch-floor recovery over torn leases, and the raced drain-handoff
# takeover), the cancel/complete terminal-state race, and a fuzz smoke
# over the trace reader.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/core/... ./internal/mem/... ./internal/obsv/... ./internal/chkpt/... ./internal/chaos/...
	$(GO) test -race -run 'Watchdog|Deadlock|Cancel|ParallelMetrics' ./internal/gpu/ .
	$(GO) test -race -run 'Checkpoint|Chaos' -count=1 .
	$(GO) test -race -run '^TestParallelMatchesSerial$$' -count=1 .
	$(GO) test -race -run '^TestTracing(SerialVsParallel|CheckpointRoundTrip)$$' -count=1 .
	$(GO) test -race -run '^TestJobd(ChaosConvergence|SigtermDrainResume)$$|^TestFleetMetricsMergeAcrossJobs$$|^TestCancelCompleteStress$$|^TestStateFileTornWrite$$' -count=1 ./internal/jobd/
	$(GO) test -race -run '^TestFleetChaosConvergence$$|^TestFleetDrainHandoff$$|^TestDoubleStealOneWinner$$|^TestClockSkewedPeers$$|^TestFencedRevivedHost$$|^TestLeaseYankKeepsEpoch$$|^TestStealCorruptLeaseRecoversEpochFloor$$' -count=1 ./internal/fleet/
	BENCH_OBSV_OUT=$$(mktemp) $(GO) test -run '^TestBenchObsv$$' .
	BENCH_HOTPATH_OUT=$$(mktemp) BENCH_HOTPATH_SMOKE=1 $(GO) test -run '^TestBenchHotpath$$' -count=1 .
	$(GO) test -fuzz=FuzzReader -fuzztime=10s ./internal/trace

# lint runs the static analyzers when they are installed (neither is
# vendored; the build must not depend on network installs). staticcheck
# catches bug-prone constructs go vet misses; govulncheck flags known
# CVEs reachable from this module.
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "lint: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; fi

# fuzz hammers every untrusted-input decoder: the trace reader and the
# checkpoint container/section codec. Corrupt or truncated inputs must
# fail with typed errors, never panic or over-allocate.
fuzz:
	$(GO) test -fuzz=FuzzReader -fuzztime=30s ./internal/trace
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/chkpt
	$(GO) test -fuzz=FuzzDecoder -fuzztime=30s ./internal/chkpt

# bench writes the BENCH_obsv.json snapshot: host cycles/sec and the
# top-5 host-time boxes for three representative scenes.
bench:
	BENCH_OBSV_OUT=BENCH_obsv.json $(GO) test -run '^TestBenchObsv$$' -v .

# bench-gate reruns the Table 1 baseline workload (serial and 4
# workers), gates serial throughput (>10% regression) and allocations
# (>25%) against the committed BENCH_hotpath.json, requires the
# parallel-4w case to reach >= 1.2x serial throughput when at least 4
# CPUs are online (on fewer cores the shards timeshare and the
# comparison is meaningless), and rewrites the snapshot in place.
# Commit the updated file to ratify a deliberate performance change.
# The tracing alloc budget rides along: the marginal heap cost per
# sampled span must stay within a few allocations, and tracing-off
# runs are what the BENCH_hotpath.json gate itself measures.
bench-gate:
	BENCH_HOTPATH_OUT=BENCH_hotpath.json $(GO) test -run '^TestBenchHotpath$$' -count=1 -v .
	$(GO) test -run '^TestTracingAllocBudget$$' -count=1 -v .

# bench-parallel reproduces the BENCH_parallel.json snapshot.
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkTable1Baseline' -benchtime 3x .

# fleet-smoke is the quick partial-failure drill, one crash and one
# graceful exit: two in-process fleet peers split a sweep, one is
# killed mid-job (all writes suppressed, no farewell heartbeat), and
# the survivor must steal its leases, resume from checkpoints, and
# finish with output bytes identical to a clean single-host run; then
# a three-peer fleet drains one member mid-job and the handoff record
# must move its lease to a live peer in under one TTL, again
# converging byte-identically.
fleet-smoke:
	$(GO) test -run '^TestFleetSmokeTwoPeers$$|^TestFleetDrainHandoff$$' -count=1 -v ./internal/fleet/
