// Package attila is a cycle-level, execution-driven simulator for
// modern GPU architectures, reproducing "ATTILA: A Cycle-Level
// Execution-Driven Simulator for Modern GPU Architectures" (Moya et
// al., ISPASS 2006) in pure Go.
//
// The package is a facade over the full system:
//
//   - internal/core    — the box-and-signal simulation framework
//   - internal/gpu     — the GPU pipeline (streamer to DAC)
//   - internal/emu/... — the functional emulator libraries
//   - internal/gl      — the OpenGL-like framework and driver
//   - internal/trace   — trace capture and replay with hot start
//   - internal/workload— synthetic UT2004-like / Doom3-like workloads
//   - internal/refrender — the functional golden-image renderer
//
// Quick start:
//
//	g, _ := attila.New(attila.BaselineUnified(), 256, 192)
//	res, _ := g.RunWorkload("simple", attila.DefaultWorkloadParams())
//	fmt.Println(res.Cycles, "cycles,", res.FPS, "fps")
package attila

import (
	"fmt"
	"io"

	"attila/internal/gpu"
	"attila/internal/refrender"
	"attila/internal/trace"
	"attila/internal/workload"
)

// Config is the full architectural parameter set of the simulated
// GPU.
type Config = gpu.Config

// ScheduleMode selects the shader input scheduling policy (§5 case
// study: thread window vs in-order input queue).
type ScheduleMode = gpu.ScheduleMode

// Scheduling modes.
const (
	ScheduleWindow       = gpu.ScheduleWindow
	ScheduleInOrderQueue = gpu.ScheduleInOrderQueue
)

// Frame is a dumped framebuffer image.
type Frame = gpu.Frame

// Command is one low-level GPU command.
type Command = gpu.Command

// WorkloadParams configures the synthetic workload generators.
type WorkloadParams = workload.Params

// Configuration presets (paper Tables 1-2, §5, and the scaling
// studies).
var (
	Baseline        = gpu.Baseline
	BaselineUnified = gpu.BaselineUnified
	CaseStudy       = gpu.CaseStudy
	Embedded        = gpu.Embedded
	HighEnd         = gpu.HighEnd
)

// DefaultWorkloadParams returns the scaled-down case-study settings.
func DefaultWorkloadParams() WorkloadParams { return workload.DefaultParams() }

// Workloads lists the available synthetic workloads.
func Workloads() []string { return workload.Names() }

// DiffFrames compares two frames: differing pixel count and max
// per-channel delta.
func DiffFrames(a, b *Frame) (int, int) { return gpu.DiffFrames(a, b) }

// GPU is one simulated GPU instance: a configured pipeline plus its
// statistics.
type GPU struct {
	pipe *gpu.Pipeline
	w, h int
}

// New builds a simulator for the configuration and render target
// size.
func New(cfg Config, width, height int) (*GPU, error) {
	p, err := gpu.New(cfg, width, height)
	if err != nil {
		return nil, err
	}
	return &GPU{pipe: p, w: width, h: height}, nil
}

// Pipeline exposes the underlying pipeline for advanced use
// (statistics access, direct command construction).
func (g *GPU) Pipeline() *gpu.Pipeline { return g.pipe }

// Result summarizes a simulation run.
type Result struct {
	Cycles int64
	Frames []*Frame
	FPS    float64
}

// MaxCycles bounds runaway simulations; generous for the scaled-down
// workloads (the paper's full traces ran hundreds of millions of
// cycles per frame batch).
const MaxCycles = 2_000_000_000

// RunCommands executes a raw command stream on the timing simulator.
func (g *GPU) RunCommands(cmds []Command) (*Result, error) {
	if err := g.pipe.Run(cmds, MaxCycles); err != nil {
		return nil, err
	}
	return &Result{
		Cycles: g.pipe.Cycles(),
		Frames: g.pipe.Frames(),
		FPS:    g.pipe.FPS(),
	}, nil
}

// BuildWorkload generates a synthetic workload's command stream using
// this GPU's memory allocator (textures and buffers are placed in its
// GPU memory).
func (g *GPU) BuildWorkload(name string, p WorkloadParams) ([]Command, error) {
	p.Width, p.Height = g.w, g.h
	cmds, _, err := workload.Build(name, g.pipe, p)
	return cmds, err
}

// RunWorkload builds and executes a synthetic workload.
func (g *GPU) RunWorkload(name string, p WorkloadParams) (*Result, error) {
	cmds, err := g.BuildWorkload(name, p)
	if err != nil {
		return nil, err
	}
	return g.RunCommands(cmds)
}

// RunTrace replays a captured trace (with optional hot start: frames
// before startFrame are skipped except buffer writes; endFrame < 0
// plays to the end).
func (g *GPU) RunTrace(r io.Reader, startFrame, endFrame int) (*Result, error) {
	tr, err := trace.NewReader(r)
	if err != nil {
		return nil, err
	}
	hdr := tr.Header()
	if hdr.Width != g.w || hdr.Height != g.h {
		return nil, fmt.Errorf("attila: trace is %dx%d but GPU renders %dx%d",
			hdr.Width, hdr.Height, g.w, g.h)
	}
	cmds, err := tr.ReadAll(startFrame, endFrame)
	if err != nil {
		return nil, err
	}
	return g.RunCommands(cmds)
}

// Stat returns a cumulative statistic by name (e.g. "MC.readBytes",
// "TexCache0.hits"); ok is false for unknown names.
func (g *GPU) Stat(name string) (value float64, ok bool) {
	s := g.pipe.Sim.Stats.Lookup(name)
	if s == nil {
		return 0, false
	}
	return s.Value(), true
}

// StatNames lists every collected statistic.
func (g *GPU) StatNames() []string { return g.pipe.Sim.Stats.Names() }

// WriteStatsCSV dumps the interval-sampled statistics (the paper's
// CSV output).
func (g *GPU) WriteStatsCSV(w io.Writer) error { return g.pipe.DumpCSV(w) }

// WriteStatsSummary dumps cumulative statistics.
func (g *GPU) WriteStatsSummary(w io.Writer) error { return g.pipe.DumpStats(w) }

// RenderReference renders a command stream with the functional
// reference renderer (no timing) and returns its frames; the golden
// images for verification.
func RenderReference(cmds []Command, memBytes, width, height int) ([]*Frame, error) {
	ref := refrender.New(memBytes, width, height)
	if err := ref.Execute(cmds); err != nil {
		return nil, err
	}
	return ref.Frames(), nil
}

// CaptureTrace serializes a command stream as a trace file.
func CaptureTrace(w io.Writer, label string, width, height, frames int, cmds []Command) error {
	tw, err := trace.NewWriter(w, trace.Header{
		Width: width, Height: height, Frames: frames, Label: label,
	})
	if err != nil {
		return err
	}
	if err := tw.WriteCommands(cmds); err != nil {
		return err
	}
	return tw.Close()
}
