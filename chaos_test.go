package attila_test

// End-to-end fault injection: every chaos fault class must surface as
// the typed simulator error its real-world counterpart would, and the
// same plan must reproduce the same fault at the same cycle.

import (
	"errors"
	"testing"

	"attila/internal/chaos"
	"attila/internal/core"
	"attila/internal/gpu"
	"attila/internal/workload"
)

// chaosRun builds a baseline pipeline, wires the parsed plan into it,
// and runs the simple workload to whatever end the faults dictate.
func chaosRun(t *testing.T, spec string, workers int, watchdog int64) error {
	t.Helper()
	p := benchParams()
	cfg := gpu.Baseline()
	cfg.Workers = workers
	cfg.WatchdogWindow = watchdog
	pipe, err := gpu.New(cfg, p.Width, p.Height)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := chaos.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.NewInjector(plan, pipe.Sim.Binder)
	pipe.Sim.SetClockGate(inj)
	pipe.MemController().SetFault(inj)
	pipe.Sim.OnEndCycle(inj.EndCycle)
	cmds, _, err := workload.Build("simple", pipe, workload.Params{
		Width: p.Width, Height: p.Height, Frames: p.Frames, Aniso: p.Aniso, Seed: p.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pipe.Run(cmds, p.MaxCycles)
}

func TestChaosPanicFault(t *testing.T) {
	for _, workers := range []int{0, 4} {
		err := chaosRun(t, "seed=7,panic@cycle=2000:CommandProcessor", workers, 0)
		if !errors.Is(err, core.ErrPanic) {
			t.Fatalf("workers=%d: got %v, want ErrPanic", workers, err)
		}
		var ce *core.CrashError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: no CrashError in %v", workers, err)
		}
		if ce.Box != "CommandProcessor" {
			t.Errorf("workers=%d: crashed box %q, want CommandProcessor", workers, ce.Box)
		}
		if ce.Cycle != 2000 {
			t.Errorf("workers=%d: crash at cycle %d, want 2000", workers, ce.Cycle)
		}
	}
}

// Same plan, same workload: the fault reproduces identically.
func TestChaosDeterminism(t *testing.T) {
	spec := "seed=3,panic@cycle=1500:Streamer"
	first := chaosRun(t, spec, 0, 0)
	second := chaosRun(t, spec, 0, 0)
	if first == nil || second == nil {
		t.Fatalf("expected injected failures, got %v and %v", first, second)
	}
	if first.Error() != second.Error() {
		t.Errorf("same plan produced different failures:\n  %v\n  %v", first, second)
	}
}

// An open-ended stall of the command processor starves the pipeline;
// the watchdog must report it as a deadlock, not hang the test. The
// stall starts at cycle 0: stalling a box mid-stream loses whatever
// is in flight toward it, which the signal model reports as its own
// violation (*SimError) before the watchdog can fire.
func TestChaosStallFault(t *testing.T) {
	err := chaosRun(t, "stall=CommandProcessor:0-0", 0, 20_000)
	if !errors.Is(err, core.ErrDeadlock) {
		t.Fatalf("got %v, want ErrDeadlock", err)
	}
}

// Dropping every memory transaction starves whoever issued it.
func TestChaosMemDropFault(t *testing.T) {
	err := chaosRun(t, "mem=drop:1", 0, 20_000)
	if !errors.Is(err, core.ErrDeadlock) {
		t.Fatalf("got %v, want ErrDeadlock", err)
	}
}

// Delayed and duplicated memory transactions degrade but must not
// wedge or corrupt the run: with the fault bounded to a low rate, the
// run still completes and renders.
func TestChaosMemDelayCompletes(t *testing.T) {
	if err := chaosRun(t, "seed=11,mem=delay:0.01:32", 0, 100_000); err != nil {
		t.Fatalf("delayed transactions should still complete: %v", err)
	}
}
