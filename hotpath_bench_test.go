package attila_test

// Hot-path allocation gate. Two parts:
//
//   - TestPipelineRunAllocBudget always runs: it measures host heap
//     allocations across a full simple-scene run and fails when the
//     steady-state rate creeps above a small per-cycle budget, so a
//     reintroduced per-quad or per-transaction allocation shows up in
//     plain `go test ./...`.
//
//   - TestBenchHotpath is the benchmark regression gate, driven by
//     `make bench-gate` (full, 3 iterations, gates throughput and
//     allocations against the committed BENCH_hotpath.json) and by
//     `make check` in smoke mode (1 iteration, allocation gate only —
//     wall-clock timing is too noisy for a shared machine). It writes
//     a fresh snapshot to $BENCH_HOTPATH_OUT; copy that over
//     BENCH_hotpath.json to ratify a deliberate performance change.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"attila/internal/gpu"
)

// mallocsDuring reports heap allocations and wall time for one run.
func mallocsDuring(f func()) (allocs uint64, wall time.Duration) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	f()
	wall = time.Since(start)
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - m0.Mallocs, wall
}

// TestPipelineRunAllocBudget bounds the pipeline's steady-state
// allocation rate. A fresh pipeline's first frame allocates while the
// free lists, signal rings and queues grow to working-set size, so
// the test measures the MARGINAL rate: allocations of a 4-frame run
// minus a 1-frame run, divided by the extra cycles. Once the pools
// are warm the clock loop allocates almost nothing (< 0.05
// allocs/cycle); before the purge it was ~2.5 per cycle, every cycle.
func TestPipelineRunAllocBudget(t *testing.T) {
	cfg := gpu.Baseline()
	cfg.Workers = 0
	measure := func(frames int) (allocs uint64, cycles int64) {
		p := benchParams()
		p.Frames = frames
		var pipe *gpu.Pipeline
		a, _ := mallocsDuring(func() { pipe = runWorkloadOnce(t, cfg, "simple", p) })
		return a, pipe.Cycles()
	}
	measure(1) // warm the process (lazy runtime init, file caches)
	allocs1, cycles1 := measure(1)
	allocs4, cycles4 := measure(4)
	if cycles4 <= cycles1 || allocs4 < allocs1 {
		t.Fatalf("unexpected scaling: %d allocs/%d cycles vs %d allocs/%d cycles",
			allocs1, cycles1, allocs4, cycles4)
	}
	perCycle := float64(allocs4-allocs1) / float64(cycles4-cycles1)
	t.Logf("marginal %d allocs over %d cycles = %.4f allocs/cycle (first frame: %d allocs)",
		allocs4-allocs1, cycles4-cycles1, perCycle, allocs1)
	const budget = 0.05
	if perCycle > budget {
		t.Fatalf("allocation budget exceeded: %.4f allocs/cycle > %.2f — a hot-path allocation crept back in",
			perCycle, budget)
	}
}

type hotpathResult struct {
	Case         string  `json:"case"`
	Workers      int     `json:"workers"`
	NsPerRun     int64   `json:"ns_per_run"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	AllocsPerRun uint64  `json:"allocs_per_run"`
	SimCycles    int64   `json:"sim_cycles"`
}

type hotpathSnapshot struct {
	Benchmark  string          `json:"benchmark"`
	Workload   string          `json:"workload"`
	Command    string          `json:"command"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	CPUsOnline int             `json:"cpus_online"`
	PrePurge   hotpathResult   `json:"pre_purge_baseline"`
	Results    []hotpathResult `json:"results"`
	Notes      []string        `json:"notes,omitempty"`
}

// TestBenchHotpath reruns the Table 1 baseline workload serially and
// with 4 workers, records throughput and allocations, and fails when
// the serial numbers regress more than 10% (time) or 25% (allocs)
// against the committed snapshot. Skipped unless BENCH_HOTPATH_OUT
// names the output file; BENCH_HOTPATH_SMOKE=1 runs one iteration and
// skips the wall-clock gate.
func TestBenchHotpath(t *testing.T) {
	out := os.Getenv("BENCH_HOTPATH_OUT")
	if out == "" {
		t.Skip("set BENCH_HOTPATH_OUT=<file> to run the hot-path benchmark gate")
	}
	smoke := os.Getenv("BENCH_HOTPATH_SMOKE") != ""
	iters := 3
	if smoke {
		iters = 1
	}
	p := benchParams()

	snap := hotpathSnapshot{
		Benchmark:  "BenchmarkTable1Baseline",
		Workload:   "simple 128x96x1",
		Command:    "make bench-gate",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUsOnline: runtime.NumCPU(),
		PrePurge: hotpathResult{
			Case: "serial", Workers: 0,
			NsPerRun: 187_900_000, AllocsPerRun: 134_077,
		},
		Notes: []string{
			"pre_purge_baseline is the serial run before the hot-path allocation purge (pooled pipeline objects, recycled memory transactions, batched stats); it is the fixed reference for the PR's 1.3x throughput / 5x allocation acceptance floor.",
			"The gate compares the serial case against the committed BENCH_hotpath.json: fail at >10% ns_per_run regression (full mode only) or >25% allocs_per_run regression (always). Copy the BENCH_HOTPATH_OUT file over BENCH_hotpath.json to ratify a deliberate change.",
			"The parallel-4w case must reach >= 1.2x the serial throughput — but only when cpus_online >= 4 and not in smoke mode; on fewer cores the shards timeshare and the run measures scheduling overhead, not speedup (the simulator logs the same warning).",
		},
	}
	for _, c := range []struct {
		name    string
		workers int
	}{
		{"serial", 0},
		{"parallel-4w", 4},
	} {
		cfg := gpu.Baseline()
		cfg.Workers = c.workers
		var pipe *gpu.Pipeline
		best := hotpathResult{Case: c.name, Workers: c.workers}
		for i := 0; i < iters; i++ {
			allocs, wall := mallocsDuring(func() {
				pipe = runWorkloadOnce(t, cfg, "simple", p)
			})
			if best.NsPerRun == 0 || wall.Nanoseconds() < best.NsPerRun {
				best.NsPerRun = wall.Nanoseconds()
			}
			if best.AllocsPerRun == 0 || allocs < best.AllocsPerRun {
				best.AllocsPerRun = allocs
			}
		}
		best.SimCycles = pipe.Cycles()
		best.CyclesPerSec = float64(best.SimCycles) / (float64(best.NsPerRun) / 1e9)
		snap.Results = append(snap.Results, best)
		t.Logf("%s: %d cycles, %.1f ms/run (%.0f cycles/sec), %d allocs/run",
			c.name, best.SimCycles, float64(best.NsPerRun)/1e6, best.CyclesPerSec, best.AllocsPerRun)
	}

	// Gate the parallel case against the serial one measured in the
	// same process: with >= 4 CPUs online, 4 workers must buy at least
	// a 1.2x throughput win or the parallel mode has regressed back to
	// slower-than-serial. On fewer cores the shards timeshare one CPU
	// and the comparison is meaningless, so the gate is skipped (the
	// recorded cpus_online documents which regime the snapshot is from).
	if !smoke && runtime.NumCPU() >= 4 {
		var serial, par *hotpathResult
		for i := range snap.Results {
			switch snap.Results[i].Case {
			case "serial":
				serial = &snap.Results[i]
			case "parallel-4w":
				par = &snap.Results[i]
			}
		}
		if serial != nil && par != nil {
			speedup := float64(serial.NsPerRun) / float64(par.NsPerRun)
			t.Logf("parallel-4w speedup over serial: %.2fx", speedup)
			if speedup < 1.2 {
				t.Errorf("parallel-4w only %.2fx serial (want >= 1.2x with %d CPUs online) — the parallel clock loop has regressed",
					speedup, runtime.NumCPU())
			}
		}
	}

	// Gate the serial case against the committed snapshot, if any.
	if data, err := os.ReadFile("BENCH_hotpath.json"); err == nil {
		var committed hotpathSnapshot
		if err := json.Unmarshal(data, &committed); err != nil {
			t.Fatalf("BENCH_hotpath.json: %v", err)
		}
		var ref, cur *hotpathResult
		for i := range committed.Results {
			if committed.Results[i].Case == "serial" {
				ref = &committed.Results[i]
			}
		}
		for i := range snap.Results {
			if snap.Results[i].Case == "serial" {
				cur = &snap.Results[i]
			}
		}
		if ref != nil && cur != nil {
			if !smoke && float64(cur.NsPerRun) > 1.10*float64(ref.NsPerRun) {
				t.Errorf("serial throughput regressed: %.1f ms/run vs committed %.1f ms/run (>10%%)",
					float64(cur.NsPerRun)/1e6, float64(ref.NsPerRun)/1e6)
			}
			if float64(cur.AllocsPerRun) > 1.25*float64(ref.AllocsPerRun) {
				t.Errorf("serial allocations regressed: %d allocs/run vs committed %d (>25%%)",
					cur.AllocsPerRun, ref.AllocsPerRun)
			}
		}
	}

	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote", out)
}
