// Command experiments reproduces the paper's tables and figures (§5
// and the §2.2 scaling studies) and prints the same rows/series the
// paper reports. See EXPERIMENTS.md for recorded outcomes.
//
// Usage:
//
//	experiments -exp fig7 [-width 192 -height 144 -frames 2]
//	experiments -exp all -out results/
//
// Beyond the one-shot experiments it also fronts the supervised job
// server (internal/jobd):
//
//	experiments -serve :6060 -job-out results/          long-lived service
//	experiments -sweep sweep.json -job-out results/     one-shot supervised sweep
//
// Both modes survive SIGTERM by draining: in-flight jobs checkpoint,
// stamp their manifests, and persist resumable; re-invoking over the
// same -job-out resumes them to byte-identical results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"attila/internal/chaos"
	"attila/internal/core"
	"attila/internal/experiments"
	"attila/internal/fleet"
	"attila/internal/gpu"
	"attila/internal/jobd"
	"attila/internal/obsv"
	"attila/internal/obsv/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table2|fig7|fig8|fig9|fig10|scaling|embedded|ablation|all")
	width := flag.Int("width", 192, "render width")
	height := flag.Int("height", 144, "render height")
	frames := flag.Int("frames", 2, "frames per trace")
	aniso := flag.Int("aniso", 8, "max anisotropy (paper: 8)")
	out := flag.String("out", "", "directory for PPM frame dumps (fig10)")
	workers := flag.Int("workers", 0, "host worker shards for the clock loop (0/1 = serial; results identical)")
	watchdog := flag.Int64("watchdog", 0, "abort a hung run with a deadlock report after this many cycles without progress (0 = off)")
	timeout := flag.Duration("timeout", 0, "wall-clock limit across all experiments (0 = none)")
	profileBoxes := flag.Bool("profile-boxes", false, "attribute host time to boxes across all runs (sampled; prints a ranked table)")
	retries := flag.Int("retries", 0, "retry a failed run up to N times, resuming from its last checkpoint when -checkpoint-interval is set (0 = fail fast)")
	retryBackoff := flag.Duration("retry-backoff", 100*time.Millisecond, "wait before the first retry; doubles on each further retry")
	chaosSpec := flag.String("chaos", "", "inject this fault plan into the first attempt of every run (see internal/chaos; retries run clean)")
	ckptInterval := flag.Int64("checkpoint-interval", 0, "checkpoint every run at this cycle cadence so retries resume instead of replaying (0 = off)")
	ckptDir := flag.String("checkpoint-dir", "", "directory for per-run checkpoint files (default: system temp, removed afterwards)")
	manifestOut := flag.String("manifest", "", "write a sweep manifest JSON here (args, outcome, per-run attempt counts)")
	retryBackoffMax := flag.Duration("retry-backoff-max", experiments.DefaultRetryBackoffMax, "cap for the doubling retry backoff (jitter is seeded)")

	// Job-server mode (internal/jobd).
	serveAddr := flag.String("serve", "", "serve the supervised job API (and status server) on this address, e.g. :6060")
	sweepFile := flag.String("sweep", "", "run this sweep spec (JSON) as a one-shot supervised sweep and exit")
	jobOut := flag.String("job-out", "", "output directory for -serve/-sweep (stats CSVs, manifests, state file, checkpoints)")
	jobWorkers := flag.Int("job-workers", 0, "worker pool size for -serve/-sweep (0 = half the CPUs)")
	queueLimit := flag.Int("queue-limit", 0, "admission control: reject submits past this many queued jobs with 429 (0 = default 256, negative = unlimited)")
	preemptCycles := flag.Int64("preempt-cycles", 0, "fairness quantum: checkpoint-and-requeue a job after this many cycles while others wait (0 = off)")
	jobRetries := flag.Int("job-retries", 0, "default per-job retry budget for -serve/-sweep (0 = default 2, negative = fail fast)")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-attempt wall-clock limit for -serve/-sweep (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "grace period for SIGTERM drain before in-flight jobs are hard-stopped onto their last checkpoint")
	chaosServer := flag.String("chaos-server", "", "jobd-level fault plan: seed=N,kill=JOB@CYCLE,panic=JOB@CYCLE[:BOX],yank=JOB (see internal/chaos)")
	traceSample := flag.String("trace-sample", "", "request tracing for -serve/-sweep jobs: keep 1/N spans (e.g. 1/64; off by default)")
	traceSeed := flag.Uint64("trace-seed", 1, "seed for the deterministic span sampler")

	// Fleet mode (internal/fleet): N peers share -fleet-dir and split
	// the work via lease files; a dead peer's jobs are stolen and
	// resumed from their checkpoints.
	fleetDir := flag.String("fleet-dir", "", "join the fleet sharing this work directory (with -serve: long-lived peer; with -sweep: submit and wait)")
	peerID := flag.String("peer-id", "", "this peer's fleet name (default HOSTNAME-PID)")
	leaseTTL := flag.Duration("lease-ttl", 2*time.Second, "how long an unrenewed job lease survives before other peers steal it")
	maxClaims := flag.Int("max-claims", 0, "max unfinished jobs this peer holds at once (0 = 2x workers)")
	tenant := flag.String("tenant", "", "tenant class stamped onto submitted jobs (weighted fair-share scheduling)")
	priority := flag.Int("priority", 0, "priority stamped onto submitted jobs (higher preempts lower at its next checkpoint)")
	flag.Parse()

	if *serveAddr != "" || *sweepFile != "" || *fleetDir != "" {
		rate, err := trace.ParseSampleRate(*traceSample)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(4)
		}
		os.Exit(runJobMode(jobModeConfig{
			serveAddr: *serveAddr, sweepFile: *sweepFile, outDir: *jobOut,
			workers: *jobWorkers, queueLimit: *queueLimit,
			preemptCycles: *preemptCycles, retries: *jobRetries,
			retryBackoff: *retryBackoff, retryBackoffMax: *retryBackoffMax,
			checkpointInterval: *ckptInterval, watchdog: *watchdog,
			jobTimeout: *jobTimeout, drainTimeout: *drainTimeout,
			chaosServer: *chaosServer,
			traceSample: rate, traceSeed: *traceSeed,
			fleetDir: *fleetDir, peerID: *peerID, leaseTTL: *leaseTTL,
			maxClaims: *maxClaims,
			tenant: *tenant, priority: *priority,
		}))
	}

	// SIGINT/SIGTERM and -timeout cancel the in-flight simulation at
	// a cycle boundary; completed experiments' output has already been
	// printed by then.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, *timeout,
			fmt.Errorf("wall-clock timeout %v expired", *timeout))
		defer cancel()
	}

	p := experiments.DefaultRunParams()
	p.Width, p.Height, p.Frames, p.Aniso = *width, *height, *frames, *aniso
	p.Workers = *workers
	p.WatchdogWindow = *watchdog
	p.Ctx = ctx
	var prof *obsv.Profiler
	if *profileBoxes {
		prof = obsv.NewProfiler()
		p.Observe = func(pipe *gpu.Pipeline) { prof.Attach(pipe.Sim) }
	}
	p.Retries = *retries
	p.RetryBackoff = *retryBackoff
	p.RetryBackoffMax = *retryBackoffMax
	p.CheckpointInterval = *ckptInterval
	p.CheckpointDir = *ckptDir
	p.Attempts = make(map[string]int)
	if *chaosSpec != "" {
		plan, err := chaos.Parse(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(4)
		}
		p.Chaos = plan
		fmt.Println("chaos:", plan)
	}

	// A failure stops the sweep but not the program: the attempts
	// summary and manifest below still record what happened before the
	// process exits with the failing run's code.
	man := obsv.NewManifest("experiments", flag.CommandLine)
	exitCode := 0
	var firstErr error
	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if exitCode != 0 {
			return
		}
		fmt.Printf("== %s ==\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			firstErr = err
			switch {
			case errors.Is(err, core.ErrCanceled):
				exitCode = 3
			case errors.Is(err, core.ErrDeadlock):
				var de *core.DeadlockError
				if errors.As(err, &de) {
					fmt.Fprint(os.Stderr, de.Report)
				}
				exitCode = 2
			default:
				exitCode = 1
			}
			return
		}
		fmt.Println()
	}

	run("table1", func() error {
		experiments.Table1(os.Stdout, gpu.Baseline())
		return nil
	})
	run("table2", func() error {
		experiments.Table2(os.Stdout, gpu.Baseline())
		return nil
	})
	run("fig7", func() error {
		rows, err := experiments.Fig7(p, os.Stdout)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %-8s %-4s %12s %8s %12s\n", "trace", "sched", "TUs", "cycles", "fps", "degradation")
		for _, r := range rows {
			fmt.Printf("%-8s %-8s %-4d %12d %8.2f %+11.1f%%\n",
				r.Workload, r.Mode, r.TUs, r.Cycles, r.FPS, r.Degradation)
		}
		return nil
	})
	run("fig8", func() error {
		rows, series, err := experiments.Fig8(p, os.Stdout)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %-4s %10s %14s %12s\n", "trace", "TUs", "hit rate", "tex bytes", "bytes/cycle")
		for _, r := range rows {
			fmt.Printf("%-8s %-4d %9.2f%% %14.0f %12.3f\n",
				r.Workload, r.TUs, r.HitRate*100, r.TexMemBytes, r.BytesPerCycle)
		}
		if series != nil {
			fmt.Println("\ntexture cache hit rate per 10K cycles (doom3, 3 TUs):")
			for i := range series.Cycle {
				fmt.Printf("  %10d %6.2f%%\n", series.Cycle[i], series.HitRate[i]*100)
			}
		}
		return nil
	})
	run("fig9", func() error {
		series, err := experiments.Fig9(p, os.Stdout)
		if err != nil {
			return err
		}
		for _, s := range series {
			fmt.Printf("\n%s: avg shader %.0f%%, texture %.0f%%, ROP %.0f%%, memory %.0f%%\n",
				s.Config.Label, s.AvgShader*100, s.AvgTexture*100, s.AvgROP*100, s.AvgMemory*100)
			fmt.Printf("  %10s %8s %8s %8s %8s\n", "cycle", "shader", "texture", "rop", "memory")
			for i := range s.Cycle {
				fmt.Printf("  %10d %7.0f%% %7.0f%% %7.0f%% %7.0f%%\n",
					s.Cycle[i], s.Shader[i]*100, s.Texture[i]*100, s.ROP[i]*100, s.Memory[i]*100)
			}
		}
		return nil
	})
	run("fig10", func() error {
		res, err := experiments.Fig10(p)
		if err != nil {
			return err
		}
		fmt.Printf("simulator vs reference: %d differing pixels (max channel delta %d)\n",
			res.DiffPixels, res.MaxDelta)
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				return err
			}
			for _, d := range []struct {
				path  string
				frame *gpu.Frame
			}{
				{filepath.Join(*out, "fig10-sim.ppm"), res.SimFrame},
				{filepath.Join(*out, "fig10-ref.ppm"), res.RefFrame},
			} {
				f, err := os.Create(d.path)
				if err != nil {
					return err
				}
				if err := d.frame.WritePPM(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", d.path)
			}
		}
		return nil
	})
	run("scaling", func() error {
		rows, err := experiments.Scaling(p, os.Stdout)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %-8s %12s %8s\n", "config", "model", "cycles", "fps")
		for _, r := range rows {
			model := "split"
			if r.Unified {
				model = "unified"
			}
			fmt.Printf("%-14s %-8s %12d %8.2f\n", r.Config, model, r.Cycles, r.FPS)
		}
		return nil
	})
	run("embedded", func() error {
		row, err := experiments.Embedded(p)
		if err != nil {
			return err
		}
		fmt.Printf("embedded GPU on %s: %d cycles, %.2f fps at %d MHz\n",
			row.Workload, row.Cycles, row.FPS, gpu.Embedded().ClockMHz)
		return nil
	})
	run("ablation", func() error {
		rows, err := experiments.Ablation(p, os.Stdout)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %12s %8s  %s\n", "variant", "cycles", "vs base", "detail")
		for _, r := range rows {
			fmt.Printf("%-16s %12d %+7.1f%%  %s\n", r.Name, r.Cycles, r.RelPct, r.Details)
		}
		return nil
	})

	if prof != nil {
		fmt.Println("== host time per box (sampled, aggregated over all runs) ==")
		if err := prof.WriteTable(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}

	if *retries > 0 && len(p.Attempts) > 0 {
		names := make([]string, 0, len(p.Attempts))
		for n := range p.Attempts {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("== attempts ==")
		retried := 0
		for _, n := range names {
			if c := p.Attempts[n]; c > 1 {
				retried++
				fmt.Printf("  %-40s %d attempts\n", n, c)
			}
		}
		fmt.Printf("  %d of %d runs needed a retry\n", retried, len(names))
	}
	if *manifestOut != "" {
		man.AttemptCounts = p.Attempts
		man.Finish(exitCode, firstErr)
		if err := man.WriteFile(*manifestOut); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		} else {
			fmt.Println("wrote", *manifestOut)
		}
	}
	os.Exit(exitCode)
}

// jobModeConfig carries the -serve/-sweep flags.
type jobModeConfig struct {
	serveAddr, sweepFile, outDir string
	workers, queueLimit, retries int
	preemptCycles, watchdog      int64
	checkpointInterval           int64
	retryBackoff                 time.Duration
	retryBackoffMax              time.Duration
	jobTimeout                   time.Duration
	drainTimeout                 time.Duration
	chaosServer                  string
	traceSample, traceSeed       uint64
	fleetDir, peerID             string
	leaseTTL                     time.Duration
	maxClaims                    int
	tenant                       string
	priority                     int
}

// runJobMode runs the supervised job server, either as a long-lived
// service (-serve) or as a one-shot sweep (-sweep). Returns the
// process exit code.
func runJobMode(c jobModeConfig) int {
	if c.outDir == "" && c.fleetDir == "" {
		// Fleet peers write into <fleet-dir>/out; everything else needs
		// an explicit output directory.
		fmt.Fprintln(os.Stderr, "experiments: -serve/-sweep need -job-out DIR")
		return 4
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	opts := jobd.Options{
		OutDir:             c.outDir,
		Workers:            c.workers,
		QueueLimit:         c.queueLimit,
		Retries:            c.retries,
		RetryBackoff:       c.retryBackoff,
		RetryBackoffMax:    c.retryBackoffMax,
		CheckpointInterval: c.checkpointInterval,
		PreemptCycles:      c.preemptCycles,
		WatchdogWindow:     c.watchdog,
		JobTimeout:         c.jobTimeout,
		TraceSample:        c.traceSample,
		TraceSeed:          c.traceSeed,
		Logf:               logger.Printf,
	}
	if c.chaosServer != "" {
		plan, err := chaos.ParseServer(c.chaosServer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 4
		}
		opts.Chaos = plan
		fmt.Println("chaos-server:", plan)
	}

	// SIGINT/SIGTERM trigger the graceful drain in both modes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if c.fleetDir != "" {
		return runFleetMode(ctx, c, opts, logger)
	}

	if c.sweepFile != "" {
		spec, err := jobd.ParseSweepFile(c.sweepFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 4
		}
		stampSweep(&spec, c)
		st, err := jobd.RunSweep(ctx, opts, spec)
		for _, j := range st.Jobs {
			fmt.Printf("%-24s %-10s attempts=%d cycles=%d\n", j.Name, j.State, j.Attempts, j.Cycles)
		}
		switch {
		case err == nil:
			fmt.Printf("sweep %s: %d jobs done; summary at %s\n",
				st.Name, st.Done, filepath.Join(c.outDir, st.Name+"-summary.txt"))
			return 0
		case errors.Is(err, context.Canceled):
			fmt.Fprintf(os.Stderr, "experiments: sweep interrupted; state saved, re-run to resume\n")
			return 3
		default:
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
	}

	srv := jobd.New(opts)
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}
	status := obsv.NewServer(c.serveAddr, obsv.ServerOptions{
		Jobs:  srv.Handler(),
		Ready: func() bool { return !srv.Draining() },
	})
	if err := status.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}
	logger.Printf("jobd: serving on %s (POST /sweeps to submit; SIGTERM drains)", status.Addr())
	<-ctx.Done()
	logger.Printf("jobd: signal received, draining (grace %v)", c.drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), c.drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
	}
	status.Close()
	srv.Close()
	logger.Printf("jobd: drained; state saved, restart to resume")
	return 0
}

// stampSweep applies the -tenant/-priority flags as sweep defaults.
func stampSweep(spec *jobd.SweepSpec, c jobModeConfig) {
	if c.tenant != "" && spec.Defaults.Tenant == "" {
		spec.Defaults.Tenant = c.tenant
	}
	if c.priority != 0 && spec.Defaults.Priority == 0 {
		spec.Defaults.Priority = c.priority
	}
}

// runFleetMode joins the fleet sharing -fleet-dir. With -sweep the
// sweep is published to the fleet's queue and this process waits for
// it to finalize — any peer, including this one, may run the jobs.
// With -serve the peer runs as a long-lived fleet member behind the
// status server, which also exposes GET /fleet/peers.
func runFleetMode(ctx context.Context, c jobModeConfig, opts jobd.Options, logger *log.Logger) int {
	id := c.peerID
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "peer"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	peer, err := fleet.NewPeer(fleet.Options{
		Dir: c.fleetDir, PeerID: id, LeaseTTL: c.leaseTTL,
		Addr: c.serveAddr, Jobd: opts, Chaos: opts.Chaos,
		MaxClaims: c.maxClaims,
		Logf:      logger.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 4
	}
	if err := peer.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}
	logger.Printf("fleet: peer %s joined %s (lease TTL %v)", id, c.fleetDir, peer.LeaseTTL())

	if c.sweepFile != "" {
		spec, err := jobd.ParseSweepFile(c.sweepFile)
		if err != nil {
			peer.Close()
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 4
		}
		stampSweep(&spec, c)
		if err := peer.SubmitSweep(spec); err != nil {
			peer.Close()
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 4
		}
		res, err := peer.WaitSweep(ctx, spec.Name)
		if err != nil {
			peer.Close()
			fmt.Fprintf(os.Stderr, "experiments: sweep interrupted; surviving peers can still finish it\n")
			return 3
		}
		for _, r := range res.Rows {
			fmt.Printf("%-24s %-10s peer=%s epoch=%d cycles=%d\n", r.Name, r.State, r.Peer, r.Epoch, r.Cycles)
		}
		fmt.Printf("sweep %s: %d jobs; summary at %s\n",
			spec.Name, len(res.Rows), filepath.Join(c.fleetDir, "out", spec.Name+"-summary.txt"))
		peer.Close()
		return 0
	}

	status := obsv.NewServer(c.serveAddr, obsv.ServerOptions{
		Jobs:  peer.Handler(),
		Ready: func() bool { return !peer.Server().Draining() },
		Fleet: peer.FleetStats,
	})
	if err := status.Start(); err != nil {
		peer.Close()
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}
	logger.Printf("fleet: serving on %s (GET /fleet/peers; SIGTERM drains)", status.Addr())
	<-ctx.Done()
	logger.Printf("fleet: signal received, draining (grace %v)", c.drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), c.drainTimeout)
	defer cancel()
	// Peer.Drain checkpoints and parks the local jobs while the lease
	// loop keeps renewing, then offers every still-held lease to a live
	// peer via a handoff record — takeover in one tick instead of a
	// full TTL of dead air.
	if err := peer.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
	}
	status.Close()
	peer.Close()
	logger.Printf("fleet: left the fleet; remaining leases were handed off or expire for stealing")
	return 0
}
