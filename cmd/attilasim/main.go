// Command attilasim runs a captured trace through the cycle-level
// timing simulator: the top-level simulator binary of the ATTILA
// framework (paper §3-4). It prints performance results and can dump
// the per-interval statistics CSV, the rendered frames, a signal
// trace for cmd/sigtrace, and verify the output against the
// functional reference renderer.
//
// A failed run is still a run: on deadlock, panic, SIGINT/SIGTERM or
// -timeout expiry, every requested output (-stats, -summary, -frames,
// -sigtrace) is flushed with the partial results before exiting
// nonzero, and -blackbox captures a machine-readable crash report.
//
// Exit codes: 0 success; 1 simulation failure (model violation,
// panic, cycle budget); 2 deadlock detected by -watchdog;
// 3 interrupted or timed out; 4 usage or input errors.
//
// Usage:
//
//	attilasim -trace doom3.attila -config casestudy -tus 2 -stats stats.csv -verify
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"attila/internal/chaos"
	"attila/internal/chkpt"
	"attila/internal/core"
	"attila/internal/gpu"
	"attila/internal/obsv"
	spantrace "attila/internal/obsv/trace"
	"attila/internal/refrender"
	"attila/internal/trace"
)

// Exit codes.
const (
	exitOK          = 0
	exitSimFailure  = 1
	exitDeadlock    = 2
	exitInterrupted = 3
	exitUsage       = 4
)

func main() {
	os.Exit(run())
}

func run() int {
	in := flag.String("trace", "", "input trace file")
	preset := flag.String("config", "baseline-unified", "config preset: baseline|baseline-unified|casestudy|embedded|highend")
	tus := flag.Int("tus", 0, "override texture unit count (casestudy sweep)")
	shaders := flag.Int("shaders", 0, "override shader unit count")
	rops := flag.Int("rops", 0, "override ROP pair count")
	sched := flag.String("sched", "window", "shader scheduling: window|inorder")
	start := flag.Int("start", 0, "hot start frame")
	end := flag.Int("end", -1, "end frame (exclusive, -1 = all)")
	statsOut := flag.String("stats", "", "write interval statistics CSV to file")
	summaryOut := flag.String("summary", "", "write cumulative statistics to file")
	framesOut := flag.String("frames", "", "directory for PPM frame dumps")
	sigOut := flag.String("sigtrace", "", "write a signal trace file (large!)")
	verify := flag.Bool("verify", false, "compare frames against the functional reference")
	maxCycles := flag.Int64("max-cycles", 2_000_000_000, "cycle budget")
	workers := flag.Int("workers", 0, "host worker shards for the clock loop (0/1 = serial, -1 = auto-size to CPUs; clamped to GOMAXPROCS and shardable units; results identical)")
	watchdog := flag.Int64("watchdog", 0, "abort with a deadlock report after this many cycles without progress (0 = off)")
	timeout := flag.Duration("timeout", 0, "wall-clock limit for the simulation (0 = none)")
	blackbox := flag.String("blackbox", "", "write a JSON crash report here when the run fails")
	httpAddr := flag.String("http", "", "serve live status on this address (e.g. :6060): /metrics, /progress, /crash, /debug/pprof")
	httpLinger := flag.Duration("http-linger", 0, "keep the status server up this long after the run ends (inspect /crash post-mortem)")
	metricsOut := flag.String("metrics", "", "write the windowed metrics bus as NDJSON to file")
	metricsWindow := flag.Int64("metrics-window", 0, "metrics bus window in cycles (0 = the config's statistics interval)")
	profileBoxes := flag.Bool("profile-boxes", false, "attribute host time to boxes (sampled; prints a ranked table)")
	perfettoOut := flag.String("perfetto", "", "write a Perfetto/Chrome trace-event JSON of box activity to file")
	manifestOut := flag.String("manifest", "auto", "run manifest path; auto = run-manifest.json next to the first output, none = disabled")
	ckptInterval := flag.Int64("checkpoint-interval", 0, "write a checkpoint every N cycles, at the next quiesced barrier (0 = off)")
	ckptOut := flag.String("checkpoint", "", "checkpoint file (default <trace>.ckpt when -checkpoint-interval is set)")
	restoreFrom := flag.String("restore", "", "resume from a checkpoint file written by -checkpoint-interval")
	chaosSpec := flag.String("chaos", "", "seeded fault injection plan, e.g. seed=7,panic@cycle=100000 (see internal/chaos)")
	skipCorrupt := flag.Bool("trace-skip-corrupt", false, "skip corrupt trace records by resyncing to the next parseable record")
	traceSample := flag.String("trace-sample", "", "request tracing: keep 1 in N memory/shader spans, e.g. 1/64 (off by default)")
	traceSeed := flag.Uint64("trace-seed", 1, "seed for the deterministic span sampler")
	spansOut := flag.String("spans", "", "write the retained sampled spans as NDJSON to file")
	flag.Parse()

	if *in == "" {
		return fail(exitUsage, errors.New("need -trace (generate one with tracegen)"))
	}
	sampleRate, err := spantrace.ParseSampleRate(*traceSample)
	if err != nil {
		return fail(exitUsage, err)
	}
	if *spansOut != "" && sampleRate == 0 {
		return fail(exitUsage, errors.New("-spans needs -trace-sample (e.g. -trace-sample 1/64)"))
	}

	var plan *chaos.Plan
	if *chaosSpec != "" {
		var err error
		plan, err = chaos.Parse(*chaosSpec)
		if err != nil {
			return fail(exitUsage, err)
		}
	}

	mode := gpu.ScheduleWindow
	if *sched == "inorder" {
		mode = gpu.ScheduleInOrderQueue
	}
	var cfg gpu.Config
	switch *preset {
	case "baseline":
		cfg = gpu.Baseline()
	case "baseline-unified":
		cfg = gpu.BaselineUnified()
	case "casestudy":
		cfg = gpu.CaseStudy(3, mode)
	case "embedded":
		cfg = gpu.Embedded()
	case "highend":
		cfg = gpu.HighEnd()
	default:
		return fail(exitUsage, fmt.Errorf("unknown config preset %q", *preset))
	}
	cfg.Schedule = mode
	if *tus > 0 {
		cfg.NumTextureUnits = *tus
	}
	if *shaders > 0 {
		cfg.NumShaders = *shaders
	}
	if *rops > 0 {
		cfg.NumROPs = *rops
	}
	cfg.Workers = *workers
	cfg.WatchdogWindow = *watchdog

	f, err := os.Open(*in)
	if err != nil {
		return fail(exitUsage, err)
	}
	defer f.Close()
	var src io.Reader = f
	if plan != nil {
		// A trace fault wraps the file in a corrupting reader. The
		// wrapper hides Seek, so -trace-skip-corrupt cannot resync past
		// injected damage — that is the point of the fault.
		src = plan.CorruptReader(src)
	}
	r, err := trace.NewReader(src)
	if err != nil {
		return fail(exitUsage, traceErr(*in, err))
	}
	r.SetSkipCorrupt(*skipCorrupt)
	hdr := r.Header()
	cmds, err := r.ReadAll(*start, *end)
	if err != nil {
		return fail(exitUsage, traceErr(*in, err))
	}
	if regions, skippedBytes := r.Skipped(); regions > 0 {
		fmt.Printf("trace %s: skipped %d corrupt region(s), %d bytes — output may not match the capture\n",
			*in, regions, skippedBytes)
	}

	pipe, err := gpu.New(cfg, hdr.Width, hdr.Height)
	if err != nil {
		return fail(exitUsage, err)
	}
	// Request tracing attaches first: its fold hook must run before the
	// metrics bus samples and before the checkpoint engine captures.
	var col *spantrace.Collector
	if sampleRate > 0 {
		col = pipe.EnableSpanTracing(spantrace.Options{SampleRate: sampleRate, Seed: *traceSeed})
	}
	var sigWriter *core.SigTraceWriter
	if *sigOut != "" {
		sf, err := os.Create(*sigOut)
		if err != nil {
			return fail(exitUsage, err)
		}
		defer sf.Close()
		sigWriter = core.NewSigTraceWriter(sf)
		pipe.TraceSignals(sigWriter)
	}

	// Observability: the metrics bus samples at the cycle barrier, the
	// profiler times sampled box clocks, and the status server makes
	// both (plus the crash black box) reachable while the run is live.
	man := obsv.NewManifest("attilasim", flag.CommandLine)
	man.Trace = *in
	man.Config = *preset
	var bus *obsv.Bus
	if *httpAddr != "" || *metricsOut != "" || *perfettoOut != "" {
		goalFrames := int64(hdr.Frames - *start)
		if *end >= 0 && *end < hdr.Frames {
			goalFrames = int64(*end - *start)
		}
		if goalFrames < 0 {
			goalFrames = 0
		}
		window := *metricsWindow
		if window <= 0 {
			window = cfg.StatInterval // 0 falls through to the bus default
		}
		bus = obsv.NewBus(pipe.Sim, obsv.BusOptions{
			Window:     window,
			Frames:     func() int64 { return int64(pipe.CP.Frames()) },
			Goal:       *maxCycles,
			GoalFrames: goalFrames,
			Spans:      col,
		})
	}
	if col != nil {
		man.Tracing = &obsv.TracingConfig{SampleRate: sampleRate, Seed: *traceSeed, Buckets: spantrace.NumBuckets}
	}
	var prof *obsv.Profiler
	if *profileBoxes {
		prof = obsv.NewProfiler()
		prof.Attach(pipe.Sim)
	}
	// Chaos: the injector gates box clocks, mistreats MC transactions
	// and corrupts signal payloads according to the parsed plan, all
	// deterministically from the plan's seed.
	if plan != nil {
		inj := chaos.NewInjector(plan, pipe.Sim.Binder)
		pipe.Sim.SetClockGate(inj)
		pipe.MemController().SetFault(inj)
		pipe.Sim.OnEndCycle(inj.EndCycle)
		fmt.Println("chaos:", plan)
	}

	// Checkpoint/restore. The workload fingerprint ties a checkpoint to
	// the command stream it indexes into; restoring against a different
	// trace or frame range is refused before any state is touched.
	workload := fmt.Sprintf("%s %dx%d frames[%d:%d] cmds=%d", hdr.Label, hdr.Width, hdr.Height, *start, *end, len(cmds))
	var busExtra []chkpt.Snapshotter
	if col != nil {
		busExtra = append(busExtra, col)
	}
	if bus != nil {
		busExtra = append(busExtra, bus)
	}
	restored := false
	var restoredCycle int64
	if *restoreFrom != "" {
		snap, err := chkpt.ReadFile(*restoreFrom)
		if err != nil {
			return fail(exitUsage, fmt.Errorf("restore %s: %w", *restoreFrom, err))
		}
		if snap.Meta.Workload != workload {
			return fail(exitUsage, fmt.Errorf("restore %s: checkpoint is for workload %q, this run is %q",
				*restoreFrom, snap.Meta.Workload, workload))
		}
		if err := pipe.RestoreCheckpoint(snap, cmds, busExtra...); err != nil {
			return fail(exitUsage, fmt.Errorf("restore %s: %w", *restoreFrom, err))
		}
		restored = true
		restoredCycle = snap.Meta.Cycle
		man.RestoredFrom = *restoreFrom
		man.RestoredCycle = restoredCycle
		fmt.Printf("restored %s: resuming at cycle %d\n", *restoreFrom, restoredCycle)
	}
	ckptPath := *ckptOut
	if ckptPath == "" && *ckptInterval > 0 {
		ckptPath = *in + ".ckpt"
	}
	var eng *chkpt.Engine
	if *ckptInterval > 0 {
		eng = pipe.EnableCheckpoints(ckptPath, workload, *ckptInterval, busExtra...)
	}

	var srv *obsv.Server
	if *httpAddr != "" {
		srv = obsv.NewServer(*httpAddr, obsv.ServerOptions{
			Bus:      bus,
			Profiler: prof,
			Spans:    col,
			Crash:    pipe.Sim.Crash,
			Manifest: func() *obsv.Manifest { return man },
			Checkpoint: func() *obsv.CheckpointStatus {
				st := &obsv.CheckpointStatus{
					Path:          ckptPath,
					Interval:      *ckptInterval,
					RestoredFrom:  *restoreFrom,
					RestoredCycle: restoredCycle,
				}
				if eng != nil {
					st.Count = eng.Count()
					st.LastCycle = eng.LastCycle()
					if err := eng.Err(); err != nil {
						st.Err = err.Error()
					}
				}
				return st
			},
		})
		if err := srv.Start(); err != nil {
			return fail(exitUsage, err)
		}
		fmt.Println("status server listening on", srv.Addr())
	}

	// SIGINT/SIGTERM and -timeout cancel the run cooperatively: the
	// simulator stops at a cycle boundary and the output flushing
	// below still happens on the partial state.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, *timeout,
			fmt.Errorf("wall-clock timeout %v expired", *timeout))
		defer cancel()
	}

	fmt.Printf("%s\n", pipe)
	fmt.Printf("trace %s: %s %dx%d, frames %d..%v\n", *in, hdr.Label, hdr.Width, hdr.Height, *start, *end)
	var simErr error
	if restored {
		simErr = pipe.ResumeContext(ctx, *maxCycles)
	} else {
		simErr = pipe.RunContext(ctx, cmds, *maxCycles)
	}
	if simErr == nil {
		fmt.Printf("simulated %d cycles, %d frames, %.2f fps at %d MHz\n",
			pipe.Cycles(), len(pipe.Frames()), pipe.FPS(), cfg.ClockMHz)
	} else {
		fmt.Printf("simulation stopped after %d cycles with %d frames rendered\n",
			pipe.Cycles(), len(pipe.Frames()))
	}

	// Flush every requested output whether or not the run succeeded;
	// a partial stats CSV from a hung run is exactly what the flags
	// were for. Output problems never mask the simulation verdict.
	if bus != nil {
		bus.Flush()
	}
	outOK := true
	if sigWriter != nil {
		if err := sigWriter.Close(); err != nil {
			outOK = complain(err)
		} else {
			fmt.Println("wrote signal trace to", *sigOut)
		}
	}
	if *statsOut != "" {
		outOK = writeTo(*statsOut, pipe.DumpCSV) && outOK
	}
	if *summaryOut != "" {
		outOK = writeTo(*summaryOut, pipe.DumpStats) && outOK
	}
	if *framesOut != "" {
		outOK = writeFrames(*framesOut, *start, pipe.Frames()) && outOK
	}
	if *metricsOut != "" {
		outOK = writeTo(*metricsOut, bus.WriteNDJSON) && outOK
	}
	if *spansOut != "" {
		outOK = writeTo(*spansOut, col.WriteSpansNDJSON) && outOK
	}
	if *perfettoOut != "" {
		pf := obsv.NewPerfetto()
		pf.AddWindows(bus.Snapshot())
		if col != nil {
			pf.AddSpans(col.Spans())
		}
		outOK = writeTo(*perfettoOut, pf.WriteJSON) && outOK
	}
	if *blackbox != "" && pipe.Sim.Crash() != nil {
		// A resumed run must not overwrite the black box of the attempt
		// it is recovering from — that report is the evidence of what
		// failed. Divert to a numbered sibling instead.
		bbPath := *blackbox
		if restored {
			bbPath = freshPath(bbPath)
		}
		if err := pipe.Sim.Crash().WriteFile(bbPath); err != nil {
			outOK = complain(err)
		} else {
			fmt.Println("wrote crash report to", bbPath)
		}
	}
	if prof != nil {
		fmt.Println("host time per box (sampled):")
		if err := prof.WriteTable(os.Stdout); err != nil {
			outOK = complain(err)
		}
	}

	// Settle the verdict, then record it in the manifest so the output
	// directory stays self-describing even for failed runs.
	code := exitOK
	switch {
	case simErr != nil:
		fmt.Fprintln(os.Stderr, "attilasim:", describe(simErr))
		code = verdict(simErr)
	case *verify:
		code = runVerify(cfg, hdr, cmds, pipe)
	}
	if code == exitOK && !outOK {
		code = exitUsage
	}
	man.Cycles = pipe.Cycles()
	man.Frames = int64(pipe.CP.Frames())
	man.Outputs = collectOutputs(*sigOut, *statsOut, *summaryOut, *framesOut, *metricsOut, *spansOut, *perfettoOut, *blackbox)
	if eng != nil {
		man.Checkpoints = eng.Count()
		man.LastCheckpoint = eng.LastCycle()
		if err := eng.Err(); err != nil {
			complain(fmt.Errorf("checkpoint: %w", err))
		} else if eng.Count() > 0 {
			fmt.Printf("wrote %d checkpoint(s) to %s (last at cycle %d)\n", eng.Count(), ckptPath, eng.LastCycle())
		}
	}
	man.Finish(code, simErr)
	if path := manifestPath(*manifestOut, man.Outputs); path != "" {
		// On a resumed run the manifest at this path describes the
		// failed attempt; fold it into this manifest's history instead
		// of silently losing it.
		if restored {
			if prev, err := obsv.LoadManifest(path); err == nil {
				man.AbsorbPrevious(prev)
			}
		}
		if err := man.WriteFile(path); err != nil {
			complain(err)
		} else {
			fmt.Println("wrote", path)
		}
	}

	// Keep the status server reachable after the run so /crash and
	// /metrics can be inspected post-mortem — timed-out and deadlocked
	// runs are exactly when that matters. A fresh signal context lets
	// Ctrl-C cut the wait short.
	if srv != nil {
		if *httpLinger > 0 {
			lingerCtx, lingerStop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
			fmt.Printf("status server lingering for %v on %s (Ctrl-C to exit)\n", *httpLinger, srv.Addr())
			select {
			case <-time.After(*httpLinger):
			case <-lingerCtx.Done():
			}
			lingerStop()
		}
		srv.Close()
	}
	return code
}

// freshPath returns path if nothing exists there, else the first
// numbered sibling (path.1, path.2, ...) that is free. Used to keep a
// failed attempt's crash report when a resumed run fails again.
func freshPath(path string) string {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return path
	}
	for i := 1; ; i++ {
		cand := fmt.Sprintf("%s.%d", path, i)
		if _, err := os.Stat(cand); os.IsNotExist(err) {
			return cand
		}
	}
}

// collectOutputs lists the output paths that were actually requested.
func collectOutputs(paths ...string) []string {
	var out []string
	for _, p := range paths {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// manifestPath resolves the -manifest flag: "none" (or empty)
// disables it, "auto" places run-manifest.json next to the first
// requested output (nowhere when the run produced no outputs), and
// anything else is used verbatim.
func manifestPath(flagVal string, outputs []string) string {
	switch flagVal {
	case "", "none":
		return ""
	case "auto":
		if len(outputs) == 0 {
			return ""
		}
		dir := filepath.Dir(outputs[0])
		if fi, err := os.Stat(outputs[0]); err == nil && fi.IsDir() {
			dir = outputs[0] // e.g. the -frames directory
		}
		return filepath.Join(dir, "run-manifest.json")
	default:
		return flagVal
	}
}

// verdict maps a simulation error to the process exit code.
func verdict(err error) int {
	switch {
	case errors.Is(err, core.ErrDeadlock):
		return exitDeadlock
	case errors.Is(err, core.ErrCanceled):
		return exitInterrupted
	default:
		// Model violations, panics, cycle budget exhaustion.
		return exitSimFailure
	}
}

// describe expands structured failures: a deadlock error prints the
// watchdog's full report, not just the one-line summary.
func describe(err error) error {
	var de *core.DeadlockError
	if errors.As(err, &de) {
		return fmt.Errorf("%w\n%s", err, de.Report)
	}
	return err
}

// traceErr prefixes reader failures with actionable advice keyed on
// the typed sentinel.
func traceErr(path string, err error) error {
	switch {
	case errors.Is(err, trace.ErrTruncated):
		return fmt.Errorf("%s: %w (the file is cut short — re-copy or re-capture it)", path, err)
	case errors.Is(err, trace.ErrCorrupt):
		return fmt.Errorf("%s: %w (not a valid trace — re-capture it)", path, err)
	default:
		return fmt.Errorf("%s: %w", path, err)
	}
}

func runVerify(cfg gpu.Config, hdr trace.Header, cmds []gpu.Command, pipe *gpu.Pipeline) int {
	ref := refrender.New(cfg.GPUMemBytes, hdr.Width, hdr.Height)
	if err := ref.Execute(cmds); err != nil {
		return fail(exitUsage, err)
	}
	refFrames := ref.Frames()
	simFrames := pipe.Frames()
	if len(refFrames) != len(simFrames) {
		return fail(exitSimFailure, fmt.Errorf("verify: frame counts %d vs %d", len(simFrames), len(refFrames)))
	}
	bad := 0
	for i := range simFrames {
		diff, maxd := gpu.DiffFrames(simFrames[i], refFrames[i])
		if diff != 0 {
			fmt.Printf("verify: frame %d differs in %d pixels (max delta %d)\n", i, diff, maxd)
			bad++
		}
	}
	if bad != 0 {
		return exitSimFailure
	}
	fmt.Println("verify: all frames match the functional reference bit-exactly")
	return exitOK
}

func writeFrames(dir string, start int, frames []*gpu.Frame) bool {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return complain(err)
	}
	ok := true
	for i, fr := range frames {
		path := filepath.Join(dir, fmt.Sprintf("frame%03d.ppm", start+i))
		of, err := os.Create(path)
		if err != nil {
			ok = complain(err)
			continue
		}
		err = fr.WritePPM(of)
		if cerr := of.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			ok = complain(err)
			continue
		}
		fmt.Println("wrote", path)
	}
	return ok
}

// writeTo writes one output file, reporting rather than aborting on
// failure so the remaining outputs still get flushed.
func writeTo(path string, fn func(w io.Writer) error) bool {
	f, err := os.Create(path)
	if err != nil {
		return complain(err)
	}
	err = fn(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return complain(err)
	}
	fmt.Println("wrote", path)
	return true
}

// complain reports a non-fatal output error and returns false for
// accumulation into the outputs-ok flag.
func complain(err error) bool {
	fmt.Fprintln(os.Stderr, "attilasim:", err)
	return false
}

func fail(code int, err error) int {
	fmt.Fprintln(os.Stderr, "attilasim:", err)
	return code
}
