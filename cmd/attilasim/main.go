// Command attilasim runs a captured trace through the cycle-level
// timing simulator: the top-level simulator binary of the ATTILA
// framework (paper §3-4). It prints performance results and can dump
// the per-interval statistics CSV, the rendered frames, a signal
// trace for cmd/sigtrace, and verify the output against the
// functional reference renderer.
//
// Usage:
//
//	attilasim -trace doom3.attila -config casestudy -tus 2 -stats stats.csv -verify
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"attila/internal/core"
	"attila/internal/gpu"
	"attila/internal/refrender"
	"attila/internal/trace"
)

func main() {
	in := flag.String("trace", "", "input trace file")
	preset := flag.String("config", "baseline-unified", "config preset: baseline|baseline-unified|casestudy|embedded|highend")
	tus := flag.Int("tus", 0, "override texture unit count (casestudy sweep)")
	shaders := flag.Int("shaders", 0, "override shader unit count")
	rops := flag.Int("rops", 0, "override ROP pair count")
	sched := flag.String("sched", "window", "shader scheduling: window|inorder")
	start := flag.Int("start", 0, "hot start frame")
	end := flag.Int("end", -1, "end frame (exclusive, -1 = all)")
	statsOut := flag.String("stats", "", "write interval statistics CSV to file")
	summaryOut := flag.String("summary", "", "write cumulative statistics to file")
	framesOut := flag.String("frames", "", "directory for PPM frame dumps")
	sigOut := flag.String("sigtrace", "", "write a signal trace file (large!)")
	verify := flag.Bool("verify", false, "compare frames against the functional reference")
	maxCycles := flag.Int64("max-cycles", 2_000_000_000, "cycle budget")
	workers := flag.Int("workers", 0, "host worker shards for the clock loop (0/1 = serial; results identical)")
	flag.Parse()

	if *in == "" {
		fatal(fmt.Errorf("need -trace (generate one with tracegen)"))
	}

	mode := gpu.ScheduleWindow
	if *sched == "inorder" {
		mode = gpu.ScheduleInOrderQueue
	}
	var cfg gpu.Config
	switch *preset {
	case "baseline":
		cfg = gpu.Baseline()
	case "baseline-unified":
		cfg = gpu.BaselineUnified()
	case "casestudy":
		cfg = gpu.CaseStudy(3, mode)
	case "embedded":
		cfg = gpu.Embedded()
	case "highend":
		cfg = gpu.HighEnd()
	default:
		fatal(fmt.Errorf("unknown config preset %q", *preset))
	}
	cfg.Schedule = mode
	if *tus > 0 {
		cfg.NumTextureUnits = *tus
	}
	if *shaders > 0 {
		cfg.NumShaders = *shaders
	}
	if *rops > 0 {
		cfg.NumROPs = *rops
	}
	cfg.Workers = *workers

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	hdr := r.Header()
	cmds, err := r.ReadAll(*start, *end)
	if err != nil {
		fatal(err)
	}

	pipe, err := gpu.New(cfg, hdr.Width, hdr.Height)
	if err != nil {
		fatal(err)
	}
	var sigWriter *core.SigTraceWriter
	if *sigOut != "" {
		sf, err := os.Create(*sigOut)
		if err != nil {
			fatal(err)
		}
		defer sf.Close()
		sigWriter = core.NewSigTraceWriter(sf)
		pipe.TraceSignals(sigWriter)
	}

	fmt.Printf("%s\n", pipe)
	fmt.Printf("trace %s: %s %dx%d, frames %d..%v\n", *in, hdr.Label, hdr.Width, hdr.Height, *start, *end)
	if err := pipe.Run(cmds, *maxCycles); err != nil {
		fatal(err)
	}
	fmt.Printf("simulated %d cycles, %d frames, %.2f fps at %d MHz\n",
		pipe.Cycles(), len(pipe.Frames()), pipe.FPS(), cfg.ClockMHz)

	if sigWriter != nil {
		if err := sigWriter.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote signal trace to", *sigOut)
	}
	if *statsOut != "" {
		writeTo(*statsOut, pipe.DumpCSV)
	}
	if *summaryOut != "" {
		writeTo(*summaryOut, pipe.DumpStats)
	}
	if *framesOut != "" {
		if err := os.MkdirAll(*framesOut, 0o755); err != nil {
			fatal(err)
		}
		for i, fr := range pipe.Frames() {
			path := filepath.Join(*framesOut, fmt.Sprintf("frame%03d.ppm", *start+i))
			of, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := fr.WritePPM(of); err != nil {
				of.Close()
				fatal(err)
			}
			of.Close()
			fmt.Println("wrote", path)
		}
	}
	if *verify {
		ref := refrender.New(cfg.GPUMemBytes, hdr.Width, hdr.Height)
		if err := ref.Execute(cmds); err != nil {
			fatal(err)
		}
		refFrames := ref.Frames()
		simFrames := pipe.Frames()
		if len(refFrames) != len(simFrames) {
			fatal(fmt.Errorf("verify: frame counts %d vs %d", len(simFrames), len(refFrames)))
		}
		bad := 0
		for i := range simFrames {
			diff, maxd := gpu.DiffFrames(simFrames[i], refFrames[i])
			if diff != 0 {
				fmt.Printf("verify: frame %d differs in %d pixels (max delta %d)\n", i, diff, maxd)
				bad++
			}
		}
		if bad == 0 {
			fmt.Println("verify: all frames match the functional reference bit-exactly")
		} else {
			os.Exit(1)
		}
	}
}

func writeTo(path string, fn func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := fn(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "attilasim:", err)
	os.Exit(1)
}
