// Command sigtrace is the Signal Trace Visualizer (paper §3-4): it
// renders signal trace files produced by attilasim -sigtrace as ASCII
// activity timelines, one row per signal, for debugging simulator
// performance — where the pipeline bubbles and bottlenecks are.
//
// Besides the timelines it prints a per-signal utilization summary
// (busy cycles over the traced span, -top N ranks the busiest) and
// can convert the trace to Perfetto/Chrome trace-event JSON for
// ui.perfetto.dev (-perfetto out.json).
//
// Usage:
//
//	sigtrace -in run.sig [-buckets 100] [-signal FGen.Tiles] [-follow 42] [-top 10] [-hist] [-perfetto out.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"attila/internal/core"
	"attila/internal/obsv"
	"attila/internal/obsv/trace"
)

func main() {
	in := flag.String("in", "", "signal trace file from attilasim -sigtrace")
	buckets := flag.Int("buckets", 100, "timeline resolution (columns)")
	signal := flag.String("signal", "", "only show signals containing this substring")
	follow := flag.Uint64("follow", 0, "print the full event path of one object id (and its descendants)")
	top := flag.Int("top", 0, "rank the N busiest signals in the utilization summary (0 = all, by name)")
	hist := flag.Bool("hist", false, "print per-signal hop-latency histograms (p50/p90/p99) instead of the utilization summary")
	perfetto := flag.String("perfetto", "", "write the trace as Perfetto/Chrome trace-event JSON to file")
	flag.Parse()

	if *in == "" {
		fatal(fmt.Errorf("need -in"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	recs, err := core.ReadSigTrace(f)
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fmt.Println("empty trace")
		return
	}

	if *follow != 0 {
		followObject(recs, *follow)
		return
	}
	if *perfetto != "" {
		pf := obsv.NewPerfetto()
		pf.AddSigTrace(recs)
		of, err := os.Create(*perfetto)
		if err != nil {
			fatal(err)
		}
		err = pf.WriteJSON(of)
		if cerr := of.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println("wrote perfetto trace to", *perfetto)
	}

	minC, maxC := recs[0].Cycle, recs[0].Cycle
	for _, r := range recs {
		if r.Cycle < minC {
			minC = r.Cycle
		}
		if r.Cycle > maxC {
			maxC = r.Cycle
		}
	}
	span := maxC - minC + 1
	counts := map[string][]int{}
	totals := map[string]int{}
	for _, r := range recs {
		if *signal != "" && !strings.Contains(r.Signal, *signal) {
			continue
		}
		row, ok := counts[r.Signal]
		if !ok {
			row = make([]int, *buckets)
			counts[r.Signal] = row
		}
		b := int((r.Cycle - minC) * int64(*buckets) / span)
		if b >= *buckets {
			b = *buckets - 1
		}
		row[b]++
		totals[r.Signal]++
	}

	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Printf("cycles %d..%d (%d per column)\n\n", minC, maxC, span/int64(*buckets)+1)
	shades := []byte(" .:-=+*#%@")
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, n := range names {
		row := counts[n]
		peak := 0
		for _, c := range row {
			if c > peak {
				peak = c
			}
		}
		var sb strings.Builder
		for _, c := range row {
			idx := 0
			if peak > 0 {
				idx = c * (len(shades) - 1) / peak
			}
			sb.WriteByte(shades[idx])
		}
		fmt.Printf("%-*s |%s| %d objects\n", width, n, sb.String(), totals[n])
	}

	// In -hist mode, the per-signal hop-latency histograms replace the
	// mean-only utilization summary: how long objects took to reach
	// each signal from their previous hop, as percentiles.
	if *hist {
		printHopLatencies(recs, *signal, *top, width)
		return
	}

	// End-of-run utilization summary: busy cycles over the traced
	// span, so bubbles show up as numbers, not just gaps in the art.
	usage := obsv.SigUsage(recs)
	if *signal != "" {
		kept := usage[:0]
		for _, u := range usage {
			if strings.Contains(u.Name, *signal) {
				kept = append(kept, u)
			}
		}
		usage = kept
	}
	if *top > 0 {
		usage = obsv.RankUsage(usage, *top)
		fmt.Printf("\ntop %d signals by utilization:\n", len(usage))
	} else {
		fmt.Printf("\nsignal utilization over %d traced cycles:\n", span)
	}
	for _, u := range usage {
		fmt.Printf("%-*s %6.1f%%  busy %d/%d cycles, %d objects\n",
			width, u.Name, 100*u.Util, u.Busy, u.Span, u.Objects)
	}
}

// printHopLatencies aggregates, per destination signal, the cycles
// each object took to reach it from that object's previous traced hop,
// into log2 latency histograms. The percentiles are bucket upper
// bounds, the same fidelity the simulator's span histograms report.
func printHopLatencies(recs []core.SigTraceRecord, filter string, top, width int) {
	// Stable-sort a copy by (id, cycle) so each object's journey reads
	// in order; records of one id at the same cycle keep file order.
	sorted := append([]core.SigTraceRecord(nil), recs...)
	sort.SliceStable(sorted, func(a, b int) bool {
		if sorted[a].ID != sorted[b].ID {
			return sorted[a].ID < sorted[b].ID
		}
		return sorted[a].Cycle < sorted[b].Cycle
	})
	hists := map[string]*trace.Histogram{}
	for i := 1; i < len(sorted); i++ {
		prev, cur := &sorted[i-1], &sorted[i]
		if cur.ID != prev.ID {
			continue
		}
		if filter != "" && !strings.Contains(cur.Signal, filter) {
			continue
		}
		h := hists[cur.Signal]
		if h == nil {
			h = &trace.Histogram{}
			hists[cur.Signal] = h
		}
		h.Observe(cur.Cycle - prev.Cycle)
	}
	if len(hists) == 0 {
		fmt.Println("\nno multi-hop objects to measure (ids appear once each)")
		return
	}
	names := make([]string, 0, len(hists))
	for n := range hists {
		names = append(names, n)
	}
	if top > 0 {
		sort.Slice(names, func(a, b int) bool {
			ha, hb := hists[names[a]], hists[names[b]]
			if pa, pb := ha.Quantile(0.99), hb.Quantile(0.99); pa != pb {
				return pa > pb
			}
			return names[a] < names[b]
		})
		if len(names) > top {
			names = names[:top]
		}
		fmt.Printf("\ntop %d signals by p99 hop latency (cycles from the object's previous hop):\n", len(names))
	} else {
		sort.Strings(names)
		fmt.Println("\nhop latency per signal (cycles from the object's previous hop):")
	}
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	fmt.Printf("%-*s %8s %8s %8s %8s %10s\n", width, "signal", "hops", "p50", "p90", "p99", "mean")
	for _, n := range names {
		h := hists[n]
		fmt.Printf("%-*s %8d %8d %8d %8d %10.1f\n",
			width, n, h.N, h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Mean())
	}
}

// followObject prints the pipeline journey of one object and the
// objects derived from it (the multilevel id hierarchy of §3).
func followObject(recs []core.SigTraceRecord, id uint64) {
	family := map[uint64]bool{id: true}
	// Two passes pick up children of children (fragments of a
	// triangle, memory accesses of a fragment).
	for pass := 0; pass < 3; pass++ {
		for _, r := range recs {
			if family[r.Parent] {
				family[r.ID] = true
			}
		}
	}
	for _, r := range recs {
		if family[r.ID] {
			fmt.Printf("%10d  %-30s id=%d parent=%d %s\n", r.Cycle, r.Signal, r.ID, r.Parent, r.Tag)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sigtrace:", err)
	os.Exit(1)
}
