// Command sigtrace is the Signal Trace Visualizer (paper §3-4): it
// renders signal trace files produced by attilasim -sigtrace as ASCII
// activity timelines, one row per signal, for debugging simulator
// performance — where the pipeline bubbles and bottlenecks are.
//
// Usage:
//
//	sigtrace -in run.sig [-buckets 100] [-signal FGen.Tiles] [-follow 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"attila/internal/core"
)

func main() {
	in := flag.String("in", "", "signal trace file from attilasim -sigtrace")
	buckets := flag.Int("buckets", 100, "timeline resolution (columns)")
	signal := flag.String("signal", "", "only show signals containing this substring")
	follow := flag.Uint64("follow", 0, "print the full event path of one object id (and its descendants)")
	flag.Parse()

	if *in == "" {
		fatal(fmt.Errorf("need -in"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	recs, err := core.ReadSigTrace(f)
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fmt.Println("empty trace")
		return
	}

	if *follow != 0 {
		followObject(recs, *follow)
		return
	}

	minC, maxC := recs[0].Cycle, recs[0].Cycle
	for _, r := range recs {
		if r.Cycle < minC {
			minC = r.Cycle
		}
		if r.Cycle > maxC {
			maxC = r.Cycle
		}
	}
	span := maxC - minC + 1
	counts := map[string][]int{}
	totals := map[string]int{}
	for _, r := range recs {
		if *signal != "" && !strings.Contains(r.Signal, *signal) {
			continue
		}
		row, ok := counts[r.Signal]
		if !ok {
			row = make([]int, *buckets)
			counts[r.Signal] = row
		}
		b := int((r.Cycle - minC) * int64(*buckets) / span)
		if b >= *buckets {
			b = *buckets - 1
		}
		row[b]++
		totals[r.Signal]++
	}

	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Printf("cycles %d..%d (%d per column)\n\n", minC, maxC, span/int64(*buckets)+1)
	shades := []byte(" .:-=+*#%@")
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, n := range names {
		row := counts[n]
		peak := 0
		for _, c := range row {
			if c > peak {
				peak = c
			}
		}
		var sb strings.Builder
		for _, c := range row {
			idx := 0
			if peak > 0 {
				idx = c * (len(shades) - 1) / peak
			}
			sb.WriteByte(shades[idx])
		}
		fmt.Printf("%-*s |%s| %d objects\n", width, n, sb.String(), totals[n])
	}
}

// followObject prints the pipeline journey of one object and the
// objects derived from it (the multilevel id hierarchy of §3).
func followObject(recs []core.SigTraceRecord, id uint64) {
	family := map[uint64]bool{id: true}
	// Two passes pick up children of children (fragments of a
	// triangle, memory accesses of a fragment).
	for pass := 0; pass < 3; pass++ {
		for _, r := range recs {
			if family[r.Parent] {
				family[r.ID] = true
			}
		}
	}
	for _, r := range recs {
		if family[r.ID] {
			fmt.Printf("%10d  %-30s id=%d parent=%d %s\n", r.Cycle, r.Signal, r.ID, r.Parent, r.Tag)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sigtrace:", err)
	os.Exit(1)
}
