// Command tracegen generates synthetic workload traces (the stand-in
// for capturing real applications with GLInterceptor, paper §4).
//
// Usage:
//
//	tracegen -workload doom3 -frames 4 -out doom3.attila
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"attila/internal/mem"
	"attila/internal/trace"
	"attila/internal/workload"
)

func main() {
	name := flag.String("workload", "simple", "workload: "+strings.Join(workload.Names(), "|"))
	out := flag.String("out", "", "output trace file (default <workload>.attila)")
	width := flag.Int("width", 256, "render width")
	height := flag.Int("height", 192, "render height")
	frames := flag.Int("frames", 2, "frames to generate")
	aniso := flag.Int("aniso", 8, "max anisotropy")
	seed := flag.Int64("seed", 1, "procedural content seed")
	flag.Parse()

	if *out == "" {
		*out = *name + ".attila"
	}
	p := workload.Params{Width: *width, Height: *height, Frames: *frames, Aniso: *aniso, Seed: *seed}
	// Object memory starts above the framebuffer plan of the target
	// resolution, matching what a pipeline of the same size reserves.
	alloc := mem.NewAllocator(uint32(3*((*width+7)/8*((*height+7)/8)*256)+1<<20), 192<<20)
	cmds, hdr, err := workload.Build(*name, alloc, p)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f, hdr)
	if err != nil {
		fatal(err)
	}
	if err := w.WriteCommands(cmds); err != nil {
		fatal(err)
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %s %dx%d, %d frames, %d commands\n",
		*out, hdr.Label, hdr.Width, hdr.Height, hdr.Frames, len(cmds))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
