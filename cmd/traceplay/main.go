// Command traceplay is the GLPlayer equivalent (paper §4): it replays
// a captured trace through the functional reference renderer to
// validate the trace and dump golden frames, without any timing
// simulation.
//
// Usage:
//
//	traceplay -trace doom3.attila -out frames/
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"attila/internal/refrender"
	"attila/internal/trace"
)

func main() {
	in := flag.String("trace", "", "input trace file")
	out := flag.String("out", "", "directory for PPM frame dumps (optional)")
	start := flag.Int("start", 0, "hot start frame")
	end := flag.Int("end", -1, "end frame (exclusive, -1 = all)")
	memMB := flag.Int("mem", 192, "GPU memory to emulate (MB)")
	flag.Parse()

	if *in == "" {
		fatal(fmt.Errorf("need -trace"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(traceErr(*in, err))
	}
	hdr := r.Header()
	fmt.Printf("trace %s: %s %dx%d, %d frames\n", *in, hdr.Label, hdr.Width, hdr.Height, hdr.Frames)
	cmds, err := r.ReadAll(*start, *end)
	if err != nil {
		fatal(traceErr(*in, err))
	}
	ref := refrender.New(*memMB<<20, hdr.Width, hdr.Height)
	if err := ref.Execute(cmds); err != nil {
		fatal(err)
	}
	frames := ref.Frames()
	fmt.Printf("rendered %d frames functionally\n", len(frames))
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for i, fr := range frames {
			path := filepath.Join(*out, fmt.Sprintf("frame%03d.ppm", *start+i))
			of, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := fr.WritePPM(of); err != nil {
				of.Close()
				fatal(err)
			}
			if err := of.Close(); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", path)
		}
	}
}

// traceErr keys the advice on the reader's typed sentinels: a
// truncated file needs re-copying, a corrupt one re-capturing.
func traceErr(path string, err error) error {
	switch {
	case errors.Is(err, trace.ErrTruncated):
		return fmt.Errorf("%s: %w (the file is cut short — re-copy or re-capture it)", path, err)
	case errors.Is(err, trace.ErrCorrupt):
		return fmt.Errorf("%s: %w (not a valid trace — re-capture it)", path, err)
	default:
		return fmt.Errorf("%s: %w", path, err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceplay:", err)
	os.Exit(1)
}
