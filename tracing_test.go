package attila_test

// Request-tracing determinism and cost gates. The span sampler keys
// off per-client issue sequence numbers, not scheduling-dependent
// object IDs, so the sampled span set — and everything derived from
// it: the span NDJSON dump, the latency windows in the metrics
// NDJSON, the histogram snapshots — must be byte-identical for any
// worker count and must survive a checkpoint/restore unchanged. The
// alloc test bounds the marginal heap cost per sampled span so
// tracing stays cheap enough to leave on in production sweeps.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"attila/internal/chkpt"
	"attila/internal/gpu"
	"attila/internal/obsv"
	"attila/internal/obsv/trace"
	"attila/internal/workload"
)

// tracingHarness is a pipeline with span tracing attached ahead of
// the metrics bus (fold-before-sample ordering) and a stepped clock
// so the NDJSON is a pure function of simulation state.
type tracingHarness struct {
	pipe *gpu.Pipeline
	col  *trace.Collector
	bus  *obsv.Bus
	cmds []gpu.Command
}

func newTracingHarness(t *testing.T, workers int, rate uint64, frames int) *tracingHarness {
	t.Helper()
	p := benchParams()
	cfg := gpu.Baseline()
	cfg.Workers = workers
	pipe, err := gpu.New(cfg, p.Width, p.Height)
	if err != nil {
		t.Fatal(err)
	}
	col := pipe.EnableSpanTracing(trace.Options{SampleRate: rate, Seed: 1})
	now := time.Unix(1000, 0)
	bus := obsv.NewBus(pipe.Sim, obsv.BusOptions{
		Window: 10000,
		Frames: func() int64 { return int64(pipe.CP.Frames()) },
		Goal:   p.MaxCycles,
		Spans:  col,
		Now: func() time.Time {
			now = now.Add(time.Millisecond)
			return now
		},
	})
	cmds, _, err := workload.Build("simple", pipe, workload.Params{
		Width: p.Width, Height: p.Height, Frames: frames, Aniso: p.Aniso, Seed: p.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &tracingHarness{pipe: pipe, col: col, bus: bus, cmds: cmds}
}

// exports reduces a finished harness to the tracing artifacts.
func (h *tracingHarness) exports(t *testing.T) (spans, metrics []byte) {
	t.Helper()
	h.bus.Flush()
	var sp, nd bytes.Buffer
	if err := h.col.WriteSpansNDJSON(&sp); err != nil {
		t.Fatal(err)
	}
	if err := h.bus.WriteNDJSON(&nd); err != nil {
		t.Fatal(err)
	}
	return sp.Bytes(), nd.Bytes()
}

func tracingRun(t *testing.T, workers int) (spans, metrics []byte, sampled uint64) {
	t.Helper()
	h := newTracingHarness(t, workers, 16, benchParams().Frames)
	if err := h.pipe.Run(h.cmds, benchParams().MaxCycles); err != nil {
		t.Fatal(err)
	}
	spans, metrics = h.exports(t)
	return spans, metrics, h.col.Snapshot().Spans
}

// TestTracingSerialVsParallel: the sampled span selection and every
// derived artifact must not depend on the worker count.
func TestTracingSerialVsParallel(t *testing.T) {
	spans, metrics, sampled := tracingRun(t, 0)
	if sampled == 0 {
		t.Fatal("no spans sampled at 1/16 — tracing is not wired into the pipeline")
	}
	if len(bytes.TrimSpace(spans)) == 0 {
		t.Fatal("span NDJSON is empty")
	}
	if !bytes.Contains(metrics, []byte(`"lat"`)) {
		t.Fatal("metrics NDJSON has no latency windows despite attached collector")
	}
	for _, workers := range []int{2, 4} {
		pspans, pmetrics, psampled := tracingRun(t, workers)
		if psampled != sampled {
			t.Errorf("workers=%d sampled %d spans, serial %d", workers, psampled, sampled)
		}
		if !bytes.Equal(pspans, spans) {
			t.Errorf("workers=%d: span NDJSON differs from serial", workers)
		}
		if !bytes.Equal(pmetrics, metrics) {
			t.Errorf("workers=%d: metrics NDJSON (latency windows) differs from serial", workers)
		}
	}
}

// TestTracingCheckpointRoundTrip: capture mid-run with the collector
// as an extra snapshotter, restore into a fresh machine, and require
// the resumed run's span dump and latency windows to be
// byte-identical to the uninterrupted run — the histograms, the span
// ring, and the sampling sequence counters all round-trip.
func TestTracingCheckpointRoundTrip(t *testing.T) {
	ref := newTracingHarness(t, 0, 16, 3)
	var snapBytes []byte
	var captureAt int64 = 20_000
	ref.pipe.Sim.OnEndCycle(func(cycle int64) {
		if snapBytes != nil || cycle < captureAt || !ref.pipe.Quiesced() {
			return
		}
		meta := chkpt.Meta{
			Cycle:    ref.pipe.Sim.Cycle(),
			Config:   ref.pipe.ConfigFingerprint(),
			Workload: "simple",
		}
		snap := chkpt.Capture(meta, append(ref.pipe.Snapshotters(), ref.col, ref.bus))
		var buf bytes.Buffer
		if err := snap.Encode(&buf); err != nil {
			t.Errorf("encode checkpoint: %v", err)
			return
		}
		snapBytes = buf.Bytes()
	})
	if err := ref.pipe.Run(ref.cmds, benchParams().MaxCycles); err != nil {
		t.Fatal(err)
	}
	refSpans, refMetrics := ref.exports(t)
	if snapBytes == nil {
		t.Fatalf("no quiesced barrier after cycle %d in a %d-cycle run", captureAt, ref.pipe.Cycles())
	}
	if ref.col.Snapshot().Spans == 0 {
		t.Fatal("reference run sampled no spans")
	}

	res := newTracingHarness(t, 4, 16, 3)
	snap, err := chkpt.Read(bytes.NewReader(snapBytes))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.pipe.RestoreCheckpoint(snap, res.cmds, res.col, res.bus); err != nil {
		t.Fatal(err)
	}
	if err := res.pipe.ResumeContext(context.Background(), benchParams().MaxCycles); err != nil {
		t.Fatal(err)
	}
	resSpans, resMetrics := res.exports(t)

	if !bytes.Equal(resSpans, refSpans) {
		t.Error("span NDJSON differs after checkpoint restore")
	}
	if !bytes.Equal(resMetrics, refMetrics) {
		t.Error("metrics NDJSON (latency windows) differs after checkpoint restore")
	}
	if got, want := res.col.Snapshot().Spans, ref.col.Snapshot().Spans; got != want {
		t.Errorf("resumed run sampled %d spans, uninterrupted %d", got, want)
	}
}

// TestTracingAllocBudget bounds the marginal heap cost of tracing:
// the extra allocations of a traced run over an untraced run, divided
// by the sampled span count. Pooled span records and the
// pre-allocated ring keep this to a couple of allocations per sampled
// span (ring growth, map fills); per-span JSON costs only happen at
// export, outside the measured window. Part of `make bench-gate`.
func TestTracingAllocBudget(t *testing.T) {
	p := benchParams()
	cfg := gpu.Baseline()
	cfg.Workers = 0
	measure := func(rate uint64) (allocs uint64, sampled uint64) {
		pipe, err := gpu.New(cfg, p.Width, p.Height)
		if err != nil {
			t.Fatal(err)
		}
		var col *trace.Collector
		if rate > 0 {
			col = pipe.EnableSpanTracing(trace.Options{SampleRate: rate, Seed: 1})
		}
		cmds, _, err := workload.Build("simple", pipe, workload.Params{
			Width: p.Width, Height: p.Height, Frames: p.Frames, Aniso: p.Aniso, Seed: p.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, _ := mallocsDuring(func() {
			if err := pipe.Run(cmds, p.MaxCycles); err != nil {
				t.Fatal(err)
			}
		})
		if col != nil {
			sampled = col.Snapshot().Spans
		}
		return a, sampled
	}
	measure(0) // warm the process
	off, _ := measure(0)
	on, sampled := measure(16)
	if sampled == 0 {
		t.Fatal("no spans sampled at 1/16")
	}
	var perSpan float64
	if on > off {
		perSpan = float64(on-off) / float64(sampled)
	}
	t.Logf("tracing off: %d allocs; on at 1/16: %d allocs, %d sampled spans = %.3f allocs/span",
		off, on, sampled, perSpan)
	const budget = 4.0
	if perSpan > budget {
		t.Fatalf("tracing allocation budget exceeded: %.3f allocs per sampled span > %.1f",
			perSpan, budget)
	}
}
