package attila_test

// Golden checkpoint/restore round trips: capture the full machine
// state at a quiesced mid-run barrier, restore it into a freshly
// built pipeline, run to completion, and require every observable —
// stats CSV, stats summary, rendered frame hashes, metrics NDJSON —
// to be byte-identical to the uninterrupted run. Exercised serially,
// in parallel (Workers=4), and across the serial/parallel boundary:
// a checkpoint from a serial run must restore into a parallel one.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"testing"
	"time"

	"attila/internal/chkpt"
	"attila/internal/gpu"
	"attila/internal/obsv"
	"attila/internal/workload"
)

// ckptHarness is one instrumented pipeline: metrics bus with a frozen
// clock (wall-time fields become constants, so NDJSON is a pure
// function of simulation state) and the watchdog armed to exercise
// fingerprint continuity across the restore.
type ckptHarness struct {
	pipe *gpu.Pipeline
	bus  *obsv.Bus
	cmds []gpu.Command
}

func newCkptHarness(t *testing.T, workers int) *ckptHarness {
	t.Helper()
	p := benchParams()
	cfg := gpu.Baseline()
	cfg.Workers = workers
	cfg.WatchdogWindow = 1_000_000
	pipe, err := gpu.New(cfg, p.Width, p.Height)
	if err != nil {
		t.Fatal(err)
	}
	frozen := time.Unix(1000, 0)
	bus := obsv.NewBus(pipe.Sim, obsv.BusOptions{
		Window: 10000,
		Frames: func() int64 { return int64(pipe.CP.Frames()) },
		Goal:   p.MaxCycles,
		Now:    func() time.Time { return frozen },
	})
	// Quiesced barriers occur at batch drains — about once per frame —
	// so a multi-frame workload is needed for a genuinely mid-run
	// capture point.
	cmds, _, err := workload.Build("simple", pipe, workload.Params{
		Width: p.Width, Height: p.Height, Frames: 3, Aniso: p.Aniso, Seed: p.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &ckptHarness{pipe: pipe, bus: bus, cmds: cmds}
}

// observe reduces a finished harness to everything a run exports.
func (h *ckptHarness) observe(t *testing.T) (fp runFingerprint, ndjson []byte) {
	t.Helper()
	h.bus.Flush()
	fp.cycles = h.pipe.Cycles()
	var csv, sum, nd bytes.Buffer
	if err := h.pipe.DumpCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := h.pipe.DumpStats(&sum); err != nil {
		t.Fatal(err)
	}
	if err := h.bus.WriteNDJSON(&nd); err != nil {
		t.Fatal(err)
	}
	fp.csv = csv.Bytes()
	fp.summary = sum.Bytes()
	hash := sha256.New()
	for _, fr := range h.pipe.Frames() {
		if err := fr.WritePPM(hash); err != nil {
			t.Fatal(err)
		}
	}
	hash.Sum(fp.frames[:0])
	return fp, nd.Bytes()
}

// totalCyclesOnce learns the run length of the test workload so the
// capture point can sit mid-run.
var ckptTotalCycles int64

func ckptRunLength(t *testing.T) int64 {
	t.Helper()
	if ckptTotalCycles == 0 {
		h := newCkptHarness(t, 0)
		if err := h.pipe.Run(h.cmds, benchParams().MaxCycles); err != nil {
			t.Fatal(err)
		}
		ckptTotalCycles = h.pipe.Cycles()
	}
	return ckptTotalCycles
}

func TestCheckpointRoundTrip(t *testing.T) {
	captureAt := ckptRunLength(t) / 3
	if captureAt == 0 {
		t.Fatal("workload too short to checkpoint mid-run")
	}
	cases := []struct {
		name                   string
		capWorkers, resWorkers int
	}{
		{"serial-to-serial", 0, 0},
		{"serial-to-parallel4", 0, 4},
		{"parallel4-to-parallel4", 4, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Reference run: uninterrupted, but with a checkpoint
			// captured (and serialized through the container) at the
			// first quiesced barrier past captureAt. Capturing must not
			// perturb the run.
			ref := newCkptHarness(t, tc.capWorkers)
			var snapBytes []byte
			ref.pipe.Sim.OnEndCycle(func(cycle int64) {
				if snapBytes != nil || cycle < captureAt || !ref.pipe.Quiesced() {
					return
				}
				meta := chkpt.Meta{
					Cycle:    ref.pipe.Sim.Cycle(),
					Config:   ref.pipe.ConfigFingerprint(),
					Workload: "simple",
				}
				snap := chkpt.Capture(meta, append(ref.pipe.Snapshotters(), ref.bus))
				var buf bytes.Buffer
				if err := snap.Encode(&buf); err != nil {
					t.Errorf("encode checkpoint: %v", err)
					return
				}
				snapBytes = buf.Bytes()
			})
			if err := ref.pipe.Run(ref.cmds, benchParams().MaxCycles); err != nil {
				t.Fatal(err)
			}
			refFP, refND := ref.observe(t)
			if snapBytes == nil {
				t.Fatalf("no quiesced barrier after cycle %d in a %d-cycle run", captureAt, refFP.cycles)
			}

			// Resumed run: fresh machine, restore, run to completion.
			res := newCkptHarness(t, tc.resWorkers)
			snap, err := chkpt.Read(bytes.NewReader(snapBytes))
			if err != nil {
				t.Fatal(err)
			}
			if snap.Meta.Cycle >= refFP.cycles {
				t.Fatalf("checkpoint at cycle %d is not mid-run (total %d)", snap.Meta.Cycle, refFP.cycles)
			}
			if err := res.pipe.RestoreCheckpoint(snap, res.cmds, res.bus); err != nil {
				t.Fatal(err)
			}
			if err := res.pipe.ResumeContext(context.Background(), benchParams().MaxCycles); err != nil {
				t.Fatal(err)
			}
			resFP, resND := res.observe(t)

			if resFP.cycles != refFP.cycles {
				t.Errorf("resumed run: %d cycles, uninterrupted %d", resFP.cycles, refFP.cycles)
			}
			if !bytes.Equal(resFP.csv, refFP.csv) {
				t.Error("stats CSV differs after restore")
			}
			if !bytes.Equal(resFP.summary, refFP.summary) {
				t.Error("stats summary differs after restore")
			}
			if resFP.frames != refFP.frames {
				t.Errorf("frame hash %x after restore, want %x", resFP.frames, refFP.frames)
			}
			if !bytes.Equal(resND, refND) {
				refLines := bytes.Split(refND, []byte("\n"))
				resLines := bytes.Split(resND, []byte("\n"))
				for i := 0; i < len(refLines) || i < len(resLines); i++ {
					var a, b []byte
					if i < len(refLines) {
						a = refLines[i]
					}
					if i < len(resLines) {
						b = resLines[i]
					}
					if !bytes.Equal(a, b) {
						p := 0
						for p < len(a) && p < len(b) && a[p] == b[p] {
							p++
						}
						if p > 60 {
							p -= 60
						} else {
							p = 0
						}
						t.Errorf("metrics NDJSON differs after restore (line %d, byte %d)\nref: …%.400s\nres: …%.400s", i, p, a[p:], b[p:])
						break
					}
				}
			}
		})
	}
}

// TestCheckpointConfigGuard: restoring into a differently configured
// machine must be refused with a typed mismatch, not misapplied.
func TestCheckpointConfigGuard(t *testing.T) {
	h := newCkptHarness(t, 0)
	// Capture at cycle 0 — the machine is trivially quiesced before
	// the run starts.
	snap, err := h.pipe.Checkpoint("simple")
	if err != nil {
		t.Fatal(err)
	}
	other := gpu.Baseline()
	other.NumShaders++
	p := benchParams()
	pipe2, err := gpu.New(other, p.Width, p.Height)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe2.RestoreCheckpoint(snap, nil); err == nil {
		t.Fatal("restore into a different configuration succeeded")
	}
}
