package attila_test

import (
	"os"
	"runtime"
	"testing"
)

// TestMain raises GOMAXPROCS so the parallel-equality, chaos and
// checkpoint tests exercise real multi-worker sharding even on hosts
// with a single online CPU (core.Simulator clamps worker counts to
// GOMAXPROCS, so without this the 2/3/4-worker runs would silently
// degrade to serial). Results are bit-identical in every mode; the
// bump only changes host-side scheduling.
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 8 {
		runtime.GOMAXPROCS(8)
	}
	os.Exit(m.Run())
}
