package attila_test

// The observability benchmark: simulate three representative scenes,
// record host throughput (simulated cycles per host second) and the
// profiler's top-5 host-time boxes, and write the result as JSON.
// Driven by `make bench`, which sets BENCH_OBSV_OUT; without the
// variable the test is skipped, so `go test ./...` stays fast.

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"attila/internal/gpu"
	"attila/internal/obsv"
	"attila/internal/workload"
)

type benchObsvScene struct {
	Scene    string         `json:"scene"`
	Config   string         `json:"config"`
	Workload string         `json:"workload"`
	Cycles   int64          `json:"cycles"`
	Frames   int            `json:"frames"`
	WallNs   int64          `json:"wallNs"`
	CPS      float64        `json:"cps"`
	TopBoxes []obsv.BoxTime `json:"topBoxes"`
}

type benchObsvReport struct {
	GoVersion string           `json:"goVersion"`
	Version   string           `json:"version,omitempty"` // VCS revision when stamped
	Scenes    []benchObsvScene `json:"scenes"`
}

func TestBenchObsv(t *testing.T) {
	out := os.Getenv("BENCH_OBSV_OUT")
	if out == "" {
		t.Skip("set BENCH_OBSV_OUT=<file> to run the observability benchmark")
	}
	p := benchParams()
	scenes := []struct {
		name string
		cfg  gpu.Config
		wl   string
	}{
		{"baseline-simple", gpu.Baseline(), "simple"},
		{"unified-ut2004", gpu.BaselineUnified(), "ut2004"},
		{"casestudy2tu-doom3", gpu.CaseStudy(2, gpu.ScheduleWindow), "doom3"},
	}
	report := benchObsvReport{GoVersion: obsv.GitDescribe()}
	if report.GoVersion == "" {
		report.GoVersion = "dev"
	}
	for _, s := range scenes {
		pipe, err := gpu.New(s.cfg, p.Width, p.Height)
		if err != nil {
			t.Fatal(err)
		}
		prof := obsv.NewProfiler()
		prof.Attach(pipe.Sim)
		cmds, _, err := workload.Build(s.wl, pipe, workload.Params{
			Width: p.Width, Height: p.Height, Frames: p.Frames, Aniso: p.Aniso, Seed: p.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if err := pipe.Run(cmds, p.MaxCycles); err != nil {
			t.Fatal(err)
		}
		wall := time.Since(start)
		row := benchObsvScene{
			Scene:    s.name,
			Config:   s.cfg.Name,
			Workload: s.wl,
			Cycles:   pipe.Cycles(),
			Frames:   pipe.CP.Frames(),
			WallNs:   wall.Nanoseconds(),
			TopBoxes: prof.Top(5),
		}
		if wall > 0 {
			row.CPS = float64(row.Cycles) / wall.Seconds()
		}
		if len(row.TopBoxes) != 5 {
			t.Fatalf("%s: profiler returned %d boxes, want 5", s.name, len(row.TopBoxes))
		}
		report.Scenes = append(report.Scenes, row)
		t.Logf("%s: %d cycles in %v (%.0f cycles/sec), hottest box %s (%.1f%%)",
			s.name, row.Cycles, wall.Round(time.Millisecond), row.CPS,
			row.TopBoxes[0].Box, 100*row.TopBoxes[0].Share)
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote", out)
}
