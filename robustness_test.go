package attila_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"attila/internal/core"
	"attila/internal/gpu"
	"attila/internal/workload"
)

// buildPipeline assembles a real workload on a fresh case-study
// pipeline without running it.
func buildPipeline(t *testing.T, workers int, window int64) (*gpu.Pipeline, []gpu.Command) {
	t.Helper()
	cfg := gpu.CaseStudy(2, gpu.ScheduleWindow)
	cfg.Workers = workers
	cfg.WatchdogWindow = window
	pipe, err := gpu.New(cfg, 128, 96)
	if err != nil {
		t.Fatal(err)
	}
	p := workload.DefaultParams()
	p.Width, p.Height, p.Frames = 128, 96, 1
	cmds, _, err := workload.Build("ut2004", pipe, p)
	if err != nil {
		t.Fatal(err)
	}
	return pipe, cmds
}

// csvRows counts data rows in a dumped statistics CSV.
func csvRows(t *testing.T, pipe *gpu.Pipeline) int {
	t.Helper()
	var buf bytes.Buffer
	if err := pipe.DumpCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasPrefix(lines[0], "cycle,") {
		t.Fatalf("CSV header missing: %q", lines[0])
	}
	return len(lines) - 1
}

// A run that exhausts its cycle budget must identify as ErrCycleLimit
// and still flush the interval statistics and the summary — in serial
// and parallel clocking alike.
func TestCycleLimitStillFlushesStats(t *testing.T) {
	for _, workers := range []int{0, 2} {
		pipe, cmds := buildPipeline(t, workers, 0)
		// The full run needs hundreds of thousands of cycles; 50K
		// cannot finish but covers several 10K stat intervals.
		err := pipe.Run(cmds, 50_000)
		if !errors.Is(err, core.ErrCycleLimit) {
			t.Fatalf("workers=%d: want ErrCycleLimit, got %v", workers, err)
		}
		if rows := csvRows(t, pipe); rows < 2 {
			t.Fatalf("workers=%d: only %d CSV rows flushed after cycle limit", workers, rows)
		}
		var sum bytes.Buffer
		if err := pipe.DumpStats(&sum); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sum.String(), "MC.readBytes") {
			t.Fatalf("workers=%d: summary missing cumulative stats", workers)
		}
		// Cycle-budget exhaustion is a bound, not a crash: no black box.
		if c := pipe.Sim.Crash(); c != nil {
			t.Fatalf("workers=%d: unexpected crash report %+v", workers, c)
		}
	}
}

// Cancelling the context mid-run surfaces ErrCanceled, keeps the
// partial statistics, and records a "canceled" black box.
func TestCancelStillFlushesStats(t *testing.T) {
	for _, workers := range []int{0, 2} {
		pipe, cmds := buildPipeline(t, workers, 0)
		ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
		err := pipe.RunContext(ctx, cmds, 2_000_000_000)
		cancel()
		if !errors.Is(err, core.ErrCanceled) {
			t.Fatalf("workers=%d: want ErrCanceled, got %v", workers, err)
		}
		if rows := csvRows(t, pipe); rows < 1 {
			t.Fatalf("workers=%d: no CSV rows flushed after cancellation", workers)
		}
		crash := pipe.Sim.Crash()
		if crash == nil || crash.Kind != "canceled" {
			t.Fatalf("workers=%d: crash report %+v", workers, crash)
		}
	}
}

// An armed watchdog must stay quiet through a complete healthy run of
// a real workload: detection is purely diagnostic and must never
// change results on working pipelines.
func TestWatchdogQuietOnFullRun(t *testing.T) {
	pipe, cmds := buildPipeline(t, 0, 50_000)
	if err := pipe.Run(cmds, 2_000_000_000); err != nil {
		t.Fatalf("armed watchdog broke a healthy run: %v", err)
	}
	if len(pipe.Frames()) != 1 {
		t.Fatalf("rendered %d frames", len(pipe.Frames()))
	}
}
