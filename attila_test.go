package attila_test

import (
	"bytes"
	"strings"
	"testing"

	"attila"
)

func TestQuickstartFlow(t *testing.T) {
	g, err := attila.New(attila.BaselineUnified(), 128, 96)
	if err != nil {
		t.Fatal(err)
	}
	p := attila.DefaultWorkloadParams()
	p.Frames = 1
	res, err := g.RunWorkload("simple", p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || len(res.Frames) != 1 || res.FPS <= 0 {
		t.Fatalf("result: %+v", res)
	}
}

func TestFacadeStats(t *testing.T) {
	g, err := attila.New(attila.CaseStudy(2, attila.ScheduleWindow), 128, 96)
	if err != nil {
		t.Fatal(err)
	}
	p := attila.DefaultWorkloadParams()
	p.Frames = 1
	if _, err := g.RunWorkload("ut2004", p); err != nil {
		t.Fatal(err)
	}
	v, ok := g.Stat("MC.readBytes")
	if !ok || v <= 0 {
		t.Fatalf("MC.readBytes: %v %v", v, ok)
	}
	if _, ok := g.Stat("no.such.stat"); ok {
		t.Fatal("bogus stat found")
	}
	if len(g.StatNames()) < 50 {
		t.Fatalf("too few stats: %d", len(g.StatNames()))
	}
	var csv bytes.Buffer
	if err := g.WriteStatsCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "cycle,") {
		t.Fatal("CSV header missing")
	}
}

func TestTraceCaptureAndReplay(t *testing.T) {
	g, err := attila.New(attila.BaselineUnified(), 128, 96)
	if err != nil {
		t.Fatal(err)
	}
	p := attila.DefaultWorkloadParams()
	p.Frames = 2
	cmds, err := g.BuildWorkload("spinner", p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := attila.CaptureTrace(&buf, "spinner", 128, 96, 2, cmds); err != nil {
		t.Fatal(err)
	}
	res, err := g.RunTrace(bytes.NewReader(buf.Bytes()), 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 2 {
		t.Fatalf("frames: %d", len(res.Frames))
	}
	// Verification against the reference renderer (Figure 10).
	refFrames, err := attila.RenderReference(cmds, 64<<20, 128, 96)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refFrames {
		if diff, _ := attila.DiffFrames(res.Frames[i], refFrames[i]); diff != 0 {
			t.Fatalf("frame %d diverges from reference: %d px", i, diff)
		}
	}
}

func TestTraceSizeMismatchRejected(t *testing.T) {
	g, _ := attila.New(attila.BaselineUnified(), 128, 96)
	cmds, _ := g.BuildWorkload("spinner", attila.DefaultWorkloadParams())
	var buf bytes.Buffer
	_ = attila.CaptureTrace(&buf, "x", 64, 64, 1, cmds)
	if _, err := g.RunTrace(bytes.NewReader(buf.Bytes()), 0, -1); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestWorkloadsListed(t *testing.T) {
	ws := attila.Workloads()
	want := map[string]bool{"simple": true, "ut2004": true, "doom3": true, "spinner": true}
	for _, w := range ws {
		delete(want, w)
	}
	if len(want) != 0 {
		t.Fatalf("missing workloads: %v", want)
	}
}

// Determinism: the same workload on the same configuration must give
// identical cycle counts and bit-identical frames.
func TestDeterminism(t *testing.T) {
	run := func() (int64, []*attila.Frame) {
		g, err := attila.New(attila.CaseStudy(2, attila.ScheduleWindow), 128, 96)
		if err != nil {
			t.Fatal(err)
		}
		p := attila.DefaultWorkloadParams()
		p.Frames = 1
		res, err := g.RunWorkload("doom3", p)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles, res.Frames
	}
	c1, f1 := run()
	c2, f2 := run()
	if c1 != c2 {
		t.Fatalf("cycle counts differ: %d vs %d", c1, c2)
	}
	if diff, _ := attila.DiffFrames(f1[0], f2[0]); diff != 0 {
		t.Fatalf("frames differ: %d px", diff)
	}
}

// Hot start on the timing simulator: simulating only frame 2 of a
// trace must produce the same image as frame 2 of the full run
// (paper §4: frames are independent).
func TestHotStartMatchesFullRun(t *testing.T) {
	build := func() (*attila.GPU, []byte) {
		g, err := attila.New(attila.BaselineUnified(), 128, 96)
		if err != nil {
			t.Fatal(err)
		}
		p := attila.DefaultWorkloadParams()
		p.Frames = 3
		cmds, err := g.BuildWorkload("spinner", p)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := attila.CaptureTrace(&buf, "spinner", 128, 96, 3, cmds); err != nil {
			t.Fatal(err)
		}
		return g, buf.Bytes()
	}
	gFull, tr := build()
	full, err := gFull.RunTrace(bytes.NewReader(tr), 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	gHot, _ := build()
	hot, err := gHot.RunTrace(bytes.NewReader(tr), 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hot.Frames) != 1 || len(full.Frames) != 3 {
		t.Fatalf("frames: hot %d full %d", len(hot.Frames), len(full.Frames))
	}
	if diff, maxd := attila.DiffFrames(full.Frames[2], hot.Frames[0]); diff != 0 {
		t.Fatalf("hot-start frame differs: %d px (max %d)", diff, maxd)
	}
	if hot.Cycles >= full.Cycles {
		t.Fatalf("hot start (%d cycles) not cheaper than full run (%d)", hot.Cycles, full.Cycles)
	}
}
