package attila_test

// Determinism of the parallel clock loop: a run sharded over N
// workers must be indistinguishable from the serial run — same cycle
// count, byte-identical statistics CSV and summary, and bit-identical
// rendered frames (ATTILA's signal model with latency >= 1 plus
// barrier-deferred flow-credit release make the clocking order, and
// therefore the shard assignment, irrelevant).

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"attila/internal/gpu"
)

// runFingerprint reduces a finished pipeline to everything an
// experiment can observe: cycles, both stats dumps, and a hash over
// every rendered frame.
type runFingerprint struct {
	cycles  int64
	csv     []byte
	summary []byte
	frames  [32]byte
}

func fingerprint(t *testing.T, workers int, workload string) runFingerprint {
	t.Helper()
	p := benchParams()
	cfg := gpu.Baseline()
	cfg.Workers = workers
	pipe := runWorkloadOnce(t, cfg, workload, p)
	var fp runFingerprint
	fp.cycles = pipe.Cycles()
	var csv, sum bytes.Buffer
	if err := pipe.DumpCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := pipe.DumpStats(&sum); err != nil {
		t.Fatal(err)
	}
	fp.csv = csv.Bytes()
	fp.summary = sum.Bytes()
	h := sha256.New()
	for _, fr := range pipe.Frames() {
		if err := fr.WritePPM(h); err != nil {
			t.Fatal(err)
		}
	}
	h.Sum(fp.frames[:0])
	return fp
}

func TestParallelMatchesSerial(t *testing.T) {
	for _, workload := range []string{"simple", "ut2004"} {
		t.Run(workload, func(t *testing.T) {
			serial := fingerprint(t, 0, workload)
			if len(serial.frames) == 0 {
				t.Fatal("no frames rendered")
			}
			for _, workers := range []int{2, 4} {
				par := fingerprint(t, workers, workload)
				if par.cycles != serial.cycles {
					t.Errorf("workers=%d: %d cycles, serial %d", workers, par.cycles, serial.cycles)
				}
				if !bytes.Equal(par.csv, serial.csv) {
					t.Errorf("workers=%d: stats CSV differs from serial", workers)
				}
				if !bytes.Equal(par.summary, serial.summary) {
					t.Errorf("workers=%d: stats summary differs from serial", workers)
				}
				if par.frames != serial.frames {
					t.Errorf("workers=%d: frame hash %x, serial %x", workers, par.frames, serial.frames)
				}
			}
		})
	}
}
