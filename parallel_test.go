package attila_test

// Determinism of the parallel clock loop: a run sharded over N
// workers must be indistinguishable from the serial run — same cycle
// count, byte-identical statistics CSV and summary, and bit-identical
// rendered frames (ATTILA's signal model with latency >= 1 plus
// barrier-deferred flow-credit release make the clocking order, and
// therefore the shard assignment, irrelevant).

import (
	"bytes"
	"crypto/sha256"
	"testing"
	"time"

	"attila/internal/gpu"
	"attila/internal/obsv"
	"attila/internal/workload"
)

// runFingerprint reduces a finished pipeline to everything an
// experiment can observe: cycles, both stats dumps, and a hash over
// every rendered frame.
type runFingerprint struct {
	cycles  int64
	csv     []byte
	summary []byte
	frames  [32]byte
}

func fingerprint(t *testing.T, workers int, workload string) runFingerprint {
	t.Helper()
	p := benchParams()
	cfg := gpu.Baseline()
	cfg.Workers = workers
	pipe := runWorkloadOnce(t, cfg, workload, p)
	var fp runFingerprint
	fp.cycles = pipe.Cycles()
	var csv, sum bytes.Buffer
	if err := pipe.DumpCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := pipe.DumpStats(&sum); err != nil {
		t.Fatal(err)
	}
	fp.csv = csv.Bytes()
	fp.summary = sum.Bytes()
	h := sha256.New()
	for _, fr := range pipe.Frames() {
		if err := fr.WritePPM(h); err != nil {
			t.Fatal(err)
		}
	}
	h.Sum(fp.frames[:0])
	return fp
}

// metricsNDJSON runs a workload with the observability bus attached
// (plus the watchdog, so the fingerprint field is exercised) and
// returns the exported NDJSON. The injected clock advances a fixed
// step per reading, so the wall-clock fields are reproducible and the
// whole byte stream must be a pure function of simulation state.
func metricsNDJSON(t *testing.T, workers int, workloadName string) []byte {
	t.Helper()
	p := benchParams()
	cfg := gpu.Baseline()
	cfg.Workers = workers
	cfg.WatchdogWindow = 1_000_000
	pipe, err := gpu.New(cfg, p.Width, p.Height)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	bus := obsv.NewBus(pipe.Sim, obsv.BusOptions{
		Window: 10000,
		Frames: func() int64 { return int64(pipe.CP.Frames()) },
		Goal:   p.MaxCycles,
		Now: func() time.Time {
			now = now.Add(time.Millisecond)
			return now
		},
	})
	cmds, _, err := workload.Build(workloadName, pipe, workload.Params{
		Width: p.Width, Height: p.Height, Frames: p.Frames, Aniso: p.Aniso, Seed: p.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Run(cmds, p.MaxCycles); err != nil {
		t.Fatal(err)
	}
	bus.Flush()
	var buf bytes.Buffer
	if err := bus.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The metrics bus samples only barrier-published state, so its NDJSON
// export must be byte-identical for any worker count, like the stats
// CSV and the rendered frames.
func TestParallelMetricsNDJSON(t *testing.T) {
	serial := metricsNDJSON(t, 0, "simple")
	if len(bytes.TrimSpace(serial)) == 0 {
		t.Fatal("no metrics windows exported")
	}
	for _, workers := range []int{2, 4} {
		par := metricsNDJSON(t, workers, "simple")
		if !bytes.Equal(par, serial) {
			t.Errorf("workers=%d: metrics NDJSON differs from serial\nserial: %.200s\npar:    %.200s",
				workers, serial, par)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	for _, workload := range []string{"simple", "ut2004"} {
		t.Run(workload, func(t *testing.T) {
			serial := fingerprint(t, 0, workload)
			if len(serial.frames) == 0 {
				t.Fatal("no frames rendered")
			}
			for _, workers := range []int{2, 3, 4} {
				par := fingerprint(t, workers, workload)
				if par.cycles != serial.cycles {
					t.Errorf("workers=%d: %d cycles, serial %d", workers, par.cycles, serial.cycles)
				}
				if !bytes.Equal(par.csv, serial.csv) {
					t.Errorf("workers=%d: stats CSV differs from serial", workers)
				}
				if !bytes.Equal(par.summary, serial.summary) {
					t.Errorf("workers=%d: stats summary differs from serial", workers)
				}
				if par.frames != serial.frames {
					t.Errorf("workers=%d: frame hash %x, serial %x", workers, par.frames, serial.frames)
				}
			}
		})
	}
}
