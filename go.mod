module attila

go 1.22
