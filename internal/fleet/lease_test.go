package fleet

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"attila/internal/jobd"
)

// newLeasePeer builds a peer for lease-protocol tests without starting
// its job server or loop: the lease primitives are plain functions
// over the shared directory.
func newLeasePeer(t *testing.T, dir, id string) *Peer {
	t.Helper()
	p, err := NewPeer(Options{Dir: dir, PeerID: id, LeaseTTL: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "leases"), 0o755); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestObservationBoundary pins the staleness arithmetic with synthetic
// clocks: a lease renewed exactly at the TTL boundary resets the
// observation to zero, while one unchanged for exactly the TTL is
// stealable (the scan uses stale < TTL to hold off).
func TestObservationBoundary(t *testing.T) {
	ttl := 200 * time.Millisecond
	t0 := time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)

	// Unchanged for exactly TTL: stealable.
	var obs observation
	if got := obs.observe("owner|1|5", t0); got != 0 {
		t.Fatalf("first observation = %v, want 0", got)
	}
	if got := obs.observe("owner|1|5", t0.Add(ttl)); got != ttl {
		t.Fatalf("stale at exactly TTL = %v, want %v", got, ttl)
	}
	if got := obs.observe("owner|1|5", t0.Add(ttl)); got < ttl {
		t.Fatalf("stale %v < TTL: scan would not steal, but must", got)
	}

	// Renewed exactly at TTL: the seq bump resets the clock, no steal.
	var obs2 observation
	obs2.observe("owner|1|5", t0)
	if got := obs2.observe("owner|1|6", t0.Add(ttl)); got != 0 {
		t.Fatalf("renewal at TTL boundary: stale = %v, want 0 (clock resets)", got)
	}
	if got := obs2.observe("owner|1|6", t0.Add(2*ttl-time.Nanosecond)); got >= ttl {
		t.Fatalf("stale %v after boundary renewal, want < TTL", got)
	}
}

// TestRenewalKeepsLeaseUnstolen drives claim/renew/observe with
// explicit clocks: as long as the owner renews within every TTL
// window, an observer never accumulates enough staleness to steal.
func TestRenewalKeepsLeaseUnstolen(t *testing.T) {
	dir := t.TempDir()
	owner := newLeasePeer(t, dir, "owner")
	thief := newLeasePeer(t, dir, "thief")
	ttl := thief.opts.LeaseTTL

	epoch, err := owner.tryClaim("job")
	if err != nil {
		t.Fatal(err)
	}
	var obs observation
	now := time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		l, err := readLease(thief.leasePath("job"))
		if err != nil {
			t.Fatal(err)
		}
		if stale := obs.observe(leaseKey(l), now); stale >= ttl {
			t.Fatalf("iteration %d: observer saw stale %v despite renewals", i, stale)
		}
		// Owner renews just inside the TTL window.
		now = now.Add(ttl - time.Millisecond)
		if err := owner.renewLease("job", epoch); err != nil {
			t.Fatalf("renewal %d failed: %v", i, err)
		}
	}
}

// TestClockSkewedPeers: lease staleness must be an observation on the
// local clock, never a comparison of another host's wall clock. The
// lease file's mtime is set an hour into the future — a skewed remote
// host — and the steal must behave identically.
func TestClockSkewedPeers(t *testing.T) {
	dir := t.TempDir()
	remote := newLeasePeer(t, dir, "remote")
	local := newLeasePeer(t, dir, "local")
	ttl := local.opts.LeaseTTL

	if _, err := remote.tryClaim("job"); err != nil {
		t.Fatal(err)
	}
	// The remote host's clock is an hour ahead: its lease file carries
	// a future mtime. (The content carries no timestamp at all.)
	skewed := time.Now().Add(time.Hour)
	if err := os.Chtimes(remote.leasePath("job"), skewed, skewed); err != nil {
		t.Fatal(err)
	}

	l, err := readLease(local.leasePath("job"))
	if err != nil {
		t.Fatal(err)
	}
	var obs observation
	t0 := time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)
	if stale := obs.observe(leaseKey(l), t0); stale != 0 {
		t.Fatalf("first observation = %v, want 0", stale)
	}
	// Before a full local TTL has passed the steal must not happen, no
	// matter what the file's timestamps claim.
	if stale := obs.observe(leaseKey(l), t0.Add(ttl/2)); stale >= ttl {
		t.Fatalf("half a TTL of local time read as stale %v", stale)
	}
	// After a full local TTL of no renewals it must, equally regardless
	// of the future mtime.
	if stale := obs.observe(leaseKey(l), t0.Add(ttl)); stale < ttl {
		t.Fatalf("full TTL of local time read as stale only %v", stale)
	}
	epoch, err := local.trySteal("job", l)
	if err != nil {
		t.Fatalf("steal of a clock-skewed stale lease failed: %v", err)
	}
	if epoch != 2 {
		t.Fatalf("steal epoch = %d, want 2", epoch)
	}
	got, err := readLease(local.leasePath("job"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Owner != "local" || got.Epoch != 2 {
		t.Fatalf("post-steal lease = %+v, want local@2", got)
	}
}

// TestDoubleStealOneWinner: many thieves observe the same expired
// lease and race trySteal — the O_EXCL epoch marker admits exactly
// one winner per epoch; everyone else gets errLeaseHeld and backs off.
func TestDoubleStealOneWinner(t *testing.T) {
	dir := t.TempDir()
	dead := newLeasePeer(t, dir, "dead")
	thieves := []*Peer{
		newLeasePeer(t, dir, "thief-a"),
		newLeasePeer(t, dir, "thief-b"),
		newLeasePeer(t, dir, "thief-c"),
		newLeasePeer(t, dir, "thief-d"),
	}
	for round := 0; round < 25; round++ {
		job := "job-" + string(rune('a'+round%26)) + "-" + string(rune('0'+round/26))
		if _, err := dead.tryClaim(job); err != nil {
			t.Fatal(err)
		}
		observed, err := readLease(dead.leasePath(job))
		if err != nil {
			t.Fatal(err)
		}
		type outcome struct {
			epoch int64
			err   error
		}
		results := make([]outcome, len(thieves))
		var wg sync.WaitGroup
		for i, th := range thieves {
			wg.Add(1)
			go func(i int, th *Peer) {
				defer wg.Done()
				e, serr := th.trySteal(job, observed)
				results[i] = outcome{e, serr}
			}(i, th)
		}
		wg.Wait()
		winners := 0
		for i, r := range results {
			switch {
			case r.err == nil:
				winners++
				if r.epoch != 2 {
					t.Fatalf("round %d: winner epoch = %d, want 2", round, r.epoch)
				}
			case errors.Is(r.err, errLeaseHeld):
				// Loser: backs off to re-observe, as scanQueue does.
			default:
				t.Fatalf("round %d thief %d: unexpected error %v", round, i, r.err)
			}
		}
		if winners != 1 {
			t.Fatalf("round %d: %d steal winners, want exactly 1", round, winners)
		}
	}
}

// TestFencedRevivedHost: the split-brain case. A host claims a job,
// stalls past its TTL, and the lease is stolen; when the original
// owner revives, its renewal and every fence-gated durable write must
// fail — it may not write a single stale-epoch byte.
func TestFencedRevivedHost(t *testing.T) {
	dir := t.TempDir()
	old := newLeasePeer(t, dir, "old")
	thief := newLeasePeer(t, dir, "thief")

	epoch, err := old.tryClaim("job")
	if err != nil {
		t.Fatal(err)
	}
	old.mu.Lock()
	old.owned["job"] = &ownedJob{epoch: epoch}
	old.mu.Unlock()
	if err := old.fenceCheck("job"); err != nil {
		t.Fatalf("owner's own fence check failed: %v", err)
	}
	if got := old.leaseEpoch("job"); got != 1 {
		t.Fatalf("owner epoch = %d, want 1", got)
	}

	// The owner goes silent; the thief observes expiry and steals.
	observed, err := readLease(old.leasePath("job"))
	if err != nil {
		t.Fatal(err)
	}
	newEpoch, err := thief.trySteal("job", observed)
	if err != nil {
		t.Fatal(err)
	}
	if newEpoch != epoch+1 {
		t.Fatalf("steal epoch = %d, want %d", newEpoch, epoch+1)
	}

	// The revived owner: renewal refused, fence refused.
	if err := old.renewLease("job", epoch); !errors.Is(err, errLeaseHeld) {
		t.Fatalf("revived owner's renewal = %v, want errLeaseHeld", err)
	}
	ferr := old.fenceCheck("job")
	if ferr == nil {
		t.Fatal("revived owner's fence check passed; a stale-epoch write would have landed")
	}
	if !errors.Is(ferr, jobd.ErrFenced) {
		t.Fatalf("fence error = %v, want jobd.ErrFenced", ferr)
	}
}

// TestLeaseYankKeepsEpoch: the chaos leaseyank rewrites the owner but
// must keep the epoch — deleting the lease instead would let a fresh
// claim restart at epoch 1 and break the fencing chain.
func TestLeaseYankKeepsEpoch(t *testing.T) {
	dir := t.TempDir()
	owner := newLeasePeer(t, dir, "owner")
	thief := newLeasePeer(t, dir, "thief")

	epoch, err := owner.tryClaim("job")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := owner.renewLease("job", epoch); err != nil {
			t.Fatal(err)
		}
	}
	if err := owner.yankLease("job"); err != nil {
		t.Fatal(err)
	}
	l, err := readLease(owner.leasePath("job"))
	if err != nil {
		t.Fatal(err)
	}
	if l.Owner != yankedOwner {
		t.Fatalf("yanked lease owner = %q, want %q", l.Owner, yankedOwner)
	}
	if l.Epoch != epoch {
		t.Fatalf("yank changed the epoch: %d -> %d", epoch, l.Epoch)
	}
	// The original owner is fenced immediately...
	if err := owner.renewLease("job", epoch); !errors.Is(err, errLeaseHeld) {
		t.Fatalf("yanked owner's renewal = %v, want errLeaseHeld", err)
	}
	// ...and the thief steals at epoch+1 through the ordinary path.
	got, err := thief.trySteal("job", l)
	if err != nil {
		t.Fatal(err)
	}
	if got != epoch+1 {
		t.Fatalf("post-yank steal epoch = %d, want %d", got, epoch+1)
	}
}
