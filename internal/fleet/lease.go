package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"attila/internal/chkpt"
	"attila/internal/fsatomic"
)

// Lease files are how peers claim jobs without a coordinator. Each
// job in the shared queue has at most one lease file:
//
//	leases/<job>.json  {"owner": "peer-a", "epoch": 3, "seq": 17}
//
// The owner republishes the lease (seq+1) every tick; everyone else
// watches it. The protocol is deliberately clock-free: lease files
// carry NO timestamps, and a peer never compares another host's clock
// to its own. Staleness is an observation: a peer records the
// (epoch, seq) pair it saw and how long ago — on its OWN monotonic
// clock — the pair last changed. A lease whose pair has not advanced
// for a full TTL of locally measured time is expired no matter how
// skewed the hosts' wall clocks are.
//
// Epochs are the fencing tokens. Stealing a lease bumps the epoch by
// exactly one, through a steal marker created with O_EXCL:
//
//	leases/<job>.steal.<newepoch>
//
// The filesystem guarantees exactly one winner per epoch; losers back
// off and re-observe. The winner rewrites the lease to
// {owner: me, epoch: new, seq: 0} and resumes the job from its last
// checkpoint. The old owner — maybe paused, maybe partitioned, maybe
// just slow — discovers the loss at its next renewal or, sooner, at
// its next fence-gated durable write, and aborts without writing a
// byte: internal/jobd consults the lease (owner and epoch both) before
// every checkpoint, stats CSV, and manifest write.

// lease is the on-disk claim record.
type lease struct {
	Owner string `json:"owner"`
	Epoch int64  `json:"epoch"`
	Seq   int64  `json:"seq"`
}

// yankedOwner is the dead owner a chaos leaseyank rewrites a lease
// to: it never renews, so the lease goes stale and is stolen through
// the ordinary path, while the real owner fences on the name
// mismatch.
const yankedOwner = "(yanked)"

// corruptOwner is the sentinel readLease reports for a lease file
// whose JSON does not parse — a torn write surfaced by a crash. It
// carries Epoch 0, which is why the steal path must recover the real
// epoch floor from checkpoint metadata before rewriting (see
// trySteal): restarting the fencing chain at 1 would let the fenced
// old owner's higher-epoch stamps pass later checks.
const corruptOwner = "(corrupt)"

// errLeaseHeld distinguishes "someone else owns it" from I/O errors.
var errLeaseHeld = errors.New("fleet: lease held")

func (p *Peer) leasePath(job string) string {
	return filepath.Join(p.opts.Dir, "leases", job+".json")
}

func (p *Peer) stealMarkerPath(job string, epoch int64) string {
	return filepath.Join(p.opts.Dir, "leases", fmt.Sprintf("%s.steal.%d", job, epoch))
}

// readLease loads a job's lease; os.ErrNotExist when unclaimed.
func readLease(path string) (lease, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return lease{}, err
	}
	var l lease
	if err := json.Unmarshal(data, &l); err != nil {
		// A torn lease write is indistinguishable from a dead owner:
		// report it held by nobody so the observation clock runs and the
		// steal path eventually recovers it.
		return lease{Owner: corruptOwner, Epoch: 0, Seq: -1}, nil
	}
	return l, nil
}

// writeLease atomically and durably replaces a lease file. Only the
// owner (or a steal winner holding the epoch marker) may call it.
// Durability matters as much as atomicity here: an un-fsynced rename
// can, after a power cut, surface an empty lease that readLease
// treats as corrupt — and corrupt means stealable, so the still-live
// owner would lose its jobs to a crash that never happened.
func writeLease(path string, l lease) error {
	data, err := json.Marshal(l)
	if err != nil {
		return err
	}
	return fsatomic.WriteFile(path, append(data, '\n'))
}

// tryClaim attempts the initial claim of an unleased job. The
// exactly-one-winner guarantee comes from os.Link: the lease content
// is written to a private temp file first, then linked into place —
// link fails with ErrExist if any other peer got there first, and a
// reader can never observe a half-written lease.
func (p *Peer) tryClaim(job string) (int64, error) {
	path := p.leasePath(job)
	data, err := json.Marshal(lease{Owner: p.opts.PeerID, Epoch: 1, Seq: 0})
	if err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), job+".claim*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return 0, err
	}
	// fsync before the link: the link is the claim, and a claim whose
	// content can vanish in a power cut is a torn lease waiting to be
	// mis-stolen.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Link(tmp.Name(), path); err != nil {
		if errors.Is(err, os.ErrExist) {
			return 0, errLeaseHeld
		}
		return 0, err
	}
	return 1, nil
}

// renewLease republishes an owned lease (seq+1). It returns
// errLeaseHeld when the lease no longer names this peer at the
// expected epoch — the owner has been fenced and must abort the job.
func (p *Peer) renewLease(job string, epoch int64) error {
	path := p.leasePath(job)
	l, err := readLease(path)
	if err != nil {
		return err
	}
	if l.Owner != p.opts.PeerID || l.Epoch != epoch {
		return fmt.Errorf("%w: %s owned by %s@%d, expected %s@%d",
			errLeaseHeld, job, l.Owner, l.Epoch, p.opts.PeerID, epoch)
	}
	return writeLease(path, lease{Owner: p.opts.PeerID, Epoch: epoch, Seq: l.Seq + 1})
}

// trySteal attempts to take over a lease observed expired at the
// given epoch. The O_EXCL steal marker serializes thieves: exactly
// one creates leases/<job>.steal.<epoch+1> and rewrites the lease;
// everyone else gets errLeaseHeld and backs off to re-observe the new
// owner's renewals.
//
// When the observed lease is the corrupt sentinel its epoch is 0 —
// the torn file no longer says how far the fencing chain had
// advanced. Writing epoch 1 would hand the old owner a free pass: its
// checkpoints and manifests carry the real (higher) epoch and would
// sail through later epoch checks. So for corrupt leases the new
// epoch is recovered as one past the floor: the highest epoch any
// previous owner durably stamped into the job's checkpoint, or left
// behind as a surviving steal marker.
func (p *Peer) trySteal(job string, observed lease) (int64, error) {
	newEpoch := observed.Epoch + 1
	if observed.Owner == corruptOwner {
		if floor := p.epochFloor(job); floor >= newEpoch {
			newEpoch = floor + 1
		}
	}
	marker := p.stealMarkerPath(job, newEpoch)
	f, err := os.OpenFile(marker, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			return 0, errLeaseHeld
		}
		return 0, err
	}
	// The marker content is advisory (who tried), but a failed write
	// means this filesystem is in trouble — do not build a takeover on
	// it. Remove the marker so the epoch is not blocked by our debris.
	if _, werr := fmt.Fprintf(f, "%s\n", p.opts.PeerID); werr != nil {
		f.Close()
		os.Remove(marker)
		return 0, werr
	}
	if cerr := f.Close(); cerr != nil {
		os.Remove(marker)
		return 0, cerr
	}
	// Re-verify under the marker: if the lease advanced between our
	// observation and the marker (the owner woke up, or a prior-epoch
	// steal landed), stand down and let the marker age out.
	cur, err := readLease(p.leasePath(job))
	if err != nil || cur.Epoch != observed.Epoch || cur.Seq != observed.Seq || cur.Owner != observed.Owner {
		os.Remove(marker)
		return 0, errLeaseHeld
	}
	if err := writeLease(p.leasePath(job), lease{Owner: p.opts.PeerID, Epoch: newEpoch, Seq: 0}); err != nil {
		os.Remove(marker)
		return 0, err
	}
	os.Remove(marker)
	return newEpoch, nil
}

// epochFloor reconstructs the highest epoch known to have existed for
// a job whose lease file is torn: the epoch stamped in the job's
// checkpoint (v2 container metadata — stamped before any data it
// fences, so never inflated) and the highest surviving steal marker
// (a marker at epoch E means E was claimed by some thief). Zero when
// neither source exists; errors are treated as "no evidence" since
// the floor only ever raises the new epoch, never lowers it.
func (p *Peer) epochFloor(job string) int64 {
	var floor int64
	if meta, err := chkpt.ReadMeta(filepath.Join(p.opts.Dir, "checkpoints", job+".ckpt")); err == nil && meta.Epoch > floor {
		floor = meta.Epoch
	}
	entries, err := os.ReadDir(filepath.Join(p.opts.Dir, "leases"))
	if err != nil {
		return floor
	}
	for _, e := range entries {
		j, epoch, ok := parseMarkerName(e.Name())
		if ok && j == job && epoch > floor {
			floor = epoch
		}
	}
	return floor
}

// yankLease implements the chaos leaseyank fault: the lease is
// rewritten to a dead owner at the SAME epoch. The real owner fences
// on the owner mismatch at its next renewal or durable write; thieves
// watch the dead owner never renew and steal at epoch+1 through the
// normal path. Keeping the epoch intact is what preserves the fencing
// chain: had the file been deleted instead, a fresh claim would
// restart at epoch 1 and the old owner's stale writes would pass the
// epoch check.
func (p *Peer) yankLease(job string) error {
	path := p.leasePath(job)
	l, err := readLease(path)
	if err != nil {
		return err
	}
	if l.Owner == yankedOwner {
		return nil
	}
	return writeLease(path, lease{Owner: yankedOwner, Epoch: l.Epoch, Seq: l.Seq})
}

// observation tracks when a watched value — a lease's (owner, epoch,
// seq) or a peer heartbeat's seq — last changed, on this peer's own
// monotonic clock. This is the only notion of time the fleet protocol
// has across hosts; wall clocks are never compared.
type observation struct {
	key   string    // last value seen
	since time.Time // local time the value was first seen
}

// observe folds in the current value and reports how long it has been
// unchanged, measured locally.
func (o *observation) observe(key string, now time.Time) time.Duration {
	if o.key != key || o.since.IsZero() {
		o.key = key
		o.since = now
		return 0
	}
	return now.Sub(o.since)
}

func leaseKey(l lease) string {
	return fmt.Sprintf("%s|%d|%d", l.Owner, l.Epoch, l.Seq)
}

// fenceCheck is the Fence hook wired into the local jobd server: it
// is consulted immediately before every durable write on a job's
// behalf. The write is allowed only while the lease file still names
// this peer at the epoch it claimed.
func (p *Peer) fenceCheck(job string) error {
	p.mu.Lock()
	oj := p.owned[job]
	p.mu.Unlock()
	if oj == nil {
		p.ctrFenceRefusals.Add(1)
		return fmt.Errorf("%w: %s not owned by %s", jobdErrFenced, job, p.opts.PeerID)
	}
	l, err := readLease(p.leasePath(job))
	if err != nil {
		p.ctrFenceRefusals.Add(1)
		return fmt.Errorf("%w: %s lease unreadable: %v", jobdErrFenced, job, err)
	}
	if l.Owner != p.opts.PeerID || l.Epoch != oj.epoch {
		p.ctrFenceRefusals.Add(1)
		return fmt.Errorf("%w: %s owned by %s@%d, not %s@%d",
			jobdErrFenced, job, l.Owner, l.Epoch, p.opts.PeerID, oj.epoch)
	}
	return nil
}

// leaseEpoch is the LeaseEpoch hook: the fencing epoch stamped into
// every checkpoint and manifest this peer writes for the job.
func (p *Peer) leaseEpoch(job string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if oj := p.owned[job]; oj != nil {
		return oj.epoch
	}
	return 0
}

// jobName extracts the job name from a queue or lease file name.
func jobName(file, suffix string) (string, bool) {
	base := filepath.Base(file)
	if !strings.HasSuffix(base, suffix) || strings.Contains(base, ".steal.") {
		return "", false
	}
	return strings.TrimSuffix(base, suffix), true
}
