package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"attila/internal/jobd"
)

// sweepRecord is the published form of a sweep: its name and the
// names of its jobs. Job specs live one-per-file in queue/ so claims
// are per job.
type sweepRecord struct {
	Name string   `json:"name"`
	Jobs []string `json:"jobs"`
}

// Result is one job's published terminal outcome — exactly the data
// the deterministic sweep summary needs, and nothing volatile:
// no timestamps, no attempt counts, no peer identity inside the
// summarized fields. Epoch and Peer ride along for auditing only.
type Result struct {
	Name     string  `json:"name"`
	Config   string  `json:"config"`
	Workload string  `json:"workload"`
	State    string  `json:"state"`
	FailKind string  `json:"failKind,omitempty"`
	Cycles   int64   `json:"cycles,omitempty"`
	FPS      float64 `json:"fps,omitempty"`
	Peer     string  `json:"peer,omitempty"`
	Epoch    int64   `json:"epoch,omitempty"`
}

func (p *Peer) sweepPath(name string) string {
	return filepath.Join(p.opts.Dir, "sweeps", name+".json")
}

func (p *Peer) queuePath(job string) string {
	return filepath.Join(p.opts.Dir, "queue", job+".json")
}

func (p *Peer) resultPath(job string) string {
	return filepath.Join(p.opts.Dir, "results", job+".json")
}

func (p *Peer) summaryPath(sweep string) string {
	return filepath.Join(p.opts.Dir, "out", sweep+"-summary.txt")
}

func (p *Peer) resultExists(job string) bool {
	_, err := os.Stat(p.resultPath(job))
	return err == nil
}

// SubmitSweep publishes a sweep to the fleet: the normalized job
// specs land one-per-file in the shared queue, then the sweep record
// names them. Any peer may submit; every peer races to claim the
// jobs. Resubmitting an identical sweep is a no-op, so a restarted
// driver attaches instead of colliding.
func (p *Peer) SubmitSweep(spec jobd.SweepSpec) error {
	norm, err := jobd.NormalizeSweep(spec)
	if err != nil {
		return err
	}
	rec := sweepRecord{Name: spec.Name}
	for _, js := range norm {
		rec.Jobs = append(rec.Jobs, js.Name)
	}
	if prev, err := p.readSweepRecord(spec.Name); err == nil {
		if len(prev.Jobs) != len(rec.Jobs) {
			return fmt.Errorf("%w: sweep %s exists with different jobs", jobd.ErrDuplicate, spec.Name)
		}
		for i := range prev.Jobs {
			if prev.Jobs[i] != rec.Jobs[i] {
				return fmt.Errorf("%w: sweep %s exists with different jobs", jobd.ErrDuplicate, spec.Name)
			}
		}
		return nil
	}
	for _, js := range norm {
		data, err := json.MarshalIndent(js, "", "  ")
		if err != nil {
			return err
		}
		if err := writeFileAtomic(p.queuePath(js.Name), append(data, '\n')); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(p.sweepPath(spec.Name), append(data, '\n'))
}

func (p *Peer) readSweepRecord(name string) (sweepRecord, error) {
	data, err := os.ReadFile(p.sweepPath(name))
	if err != nil {
		return sweepRecord{}, err
	}
	var rec sweepRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return sweepRecord{}, err
	}
	return rec, nil
}

func (p *Peer) readJobSpec(job string) (jobd.JobSpec, error) {
	data, err := os.ReadFile(p.queuePath(job))
	if err != nil {
		return jobd.JobSpec{}, err
	}
	var spec jobd.JobSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return jobd.JobSpec{}, err
	}
	return spec, nil
}

func (p *Peer) writeResult(job string, st jobd.JobStatus) error {
	res := Result{
		Name: st.Name, Config: st.Config, Workload: st.Workload,
		State: string(st.State), FailKind: st.FailKind,
		Cycles: st.Cycles, FPS: st.FPS,
		Peer: p.opts.PeerID, Epoch: p.leaseEpoch(job),
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(p.resultPath(job), append(data, '\n'))
}

func (p *Peer) readResult(job string) (Result, error) {
	data, err := os.ReadFile(p.resultPath(job))
	if err != nil {
		return Result{}, err
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return Result{}, err
	}
	return res, nil
}

// finalizeSweeps writes the summary of every sweep whose jobs all
// have published results. The summary is rendered by the same
// deterministic renderer jobd uses (sorted by job name, simulation
// results only), so every peer that finalizes — and a clean
// single-host run — produces identical bytes; the write is atomic and
// idempotent, making the finalize race harmless.
func (p *Peer) finalizeSweeps() {
	entries, err := os.ReadDir(filepath.Join(p.opts.Dir, "sweeps"))
	if err != nil {
		return
	}
	for _, e := range entries {
		name, ok := jobName(e.Name(), ".json")
		if !ok {
			continue
		}
		rows, done := p.sweepRows(name)
		if !done {
			continue
		}
		summary := jobd.RenderSummary(name, rows)
		path := p.summaryPath(name)
		if got, rerr := os.ReadFile(path); rerr == nil && bytes.Equal(got, summary) {
			continue // already finalized with identical bytes
		}
		if werr := writeFileAtomic(path, summary); werr != nil {
			p.logf("fleet: %s: sweep %s summary write failed: %v", p.opts.PeerID, name, werr)
		} else {
			p.logf("fleet: %s: sweep %s finalized", p.opts.PeerID, name)
		}
	}
}

// sweepRows collects a sweep's result rows; done is false until every
// job has a published result.
func (p *Peer) sweepRows(name string) ([]jobd.SummaryRow, bool) {
	rec, err := p.readSweepRecord(name)
	if err != nil {
		return nil, false
	}
	rows := make([]jobd.SummaryRow, 0, len(rec.Jobs))
	for _, job := range rec.Jobs {
		res, rerr := p.readResult(job)
		if rerr != nil {
			return nil, false
		}
		rows = append(rows, jobd.SummaryRow{
			Name: res.Name, Config: res.Config, Workload: res.Workload,
			State: jobd.State(res.State), FailKind: res.FailKind,
			Cycles: res.Cycles, FPS: res.FPS,
		})
	}
	return rows, true
}

// SweepResult is the finalized view WaitSweep returns.
type SweepResult struct {
	Name    string
	Rows    []Result
	Summary []byte
}

// WaitSweep blocks until the named sweep is finalized (every job has
// a result and the summary is on disk) or the context ends. Any
// peer's WaitSweep works — finalization is a shared-filesystem fact,
// not a peer's private state — which is what lets a fleet lose
// all-but-one member mid-sweep and still finish.
func (p *Peer) WaitSweep(ctx context.Context, name string) (SweepResult, error) {
	tick := p.opts.LeaseTTL / 6
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	for {
		rec, err := p.readSweepRecord(name)
		if err == nil {
			all := true
			rows := make([]Result, 0, len(rec.Jobs))
			for _, job := range rec.Jobs {
				res, rerr := p.readResult(job)
				if rerr != nil {
					all = false
					break
				}
				rows = append(rows, res)
			}
			if all {
				if summary, serr := os.ReadFile(p.summaryPath(name)); serr == nil {
					return SweepResult{Name: name, Rows: rows, Summary: summary}, nil
				}
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return SweepResult{}, err
		}
		select {
		case <-ctx.Done():
			return SweepResult{}, ctx.Err()
		case <-time.After(tick):
		}
	}
}

// writeFileAtomic is tmp+rename in the target directory.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
