package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"attila/internal/fsatomic"
	"attila/internal/jobd"
)

// sweepRecord is the published form of a sweep: its name and the
// names of its jobs. Job specs live one-per-file in queue/ so claims
// are per job.
//
// Pending marks a record whose job specs may not all be on disk yet:
// SubmitSweep publishes the record first (so a crash mid-publish
// leaves a named intent, not orphan specs), writes the specs, then
// republishes with Pending cleared. Peers claim a job as soon as its
// spec exists and any sweep record — pending or not — names it; the
// flag exists so an attaching driver can tell "publish in progress or
// torn" from "fully published".
type sweepRecord struct {
	Name    string   `json:"name"`
	Jobs    []string `json:"jobs"`
	Pending bool     `json:"pending,omitempty"`
}

// Result is one job's published terminal outcome — exactly the data
// the deterministic sweep summary needs, and nothing volatile:
// no timestamps, no attempt counts, no peer identity inside the
// summarized fields. Epoch and Peer ride along for auditing only.
type Result struct {
	Name     string  `json:"name"`
	Config   string  `json:"config"`
	Workload string  `json:"workload"`
	State    string  `json:"state"`
	FailKind string  `json:"failKind,omitempty"`
	Cycles   int64   `json:"cycles,omitempty"`
	FPS      float64 `json:"fps,omitempty"`
	Peer     string  `json:"peer,omitempty"`
	Epoch    int64   `json:"epoch,omitempty"`
}

func (p *Peer) sweepPath(name string) string {
	return filepath.Join(p.opts.Dir, "sweeps", name+".json")
}

// queueShard buckets a job into one of 256 shard directories by a
// 2-hex-digit fnv1a prefix. Sharding is what keeps the incremental
// queue scan O(changed): a shard directory's mtime moves only when an
// entry is added or removed, so unchanged shards are skipped without
// even listing them.
func queueShard(job string) string {
	h := fnv.New32a()
	h.Write([]byte(job))
	return fmt.Sprintf("%02x", h.Sum32()&0xff)
}

func (p *Peer) queuePath(job string) string {
	return filepath.Join(p.opts.Dir, "queue", queueShard(job), job+".json")
}

// legacyQueuePath is the pre-sharding flat layout; readJobSpec falls
// back to it so a fleet upgraded mid-sweep keeps draining old queues.
func (p *Peer) legacyQueuePath(job string) string {
	return filepath.Join(p.opts.Dir, "queue", job+".json")
}

func (p *Peer) resultPath(job string) string {
	return filepath.Join(p.opts.Dir, "results", job+".json")
}

func (p *Peer) summaryPath(sweep string) string {
	return filepath.Join(p.opts.Dir, "out", sweep+"-summary.txt")
}

func (p *Peer) resultExists(job string) bool {
	_, err := os.Stat(p.resultPath(job))
	return err == nil
}

// SubmitSweep publishes a sweep to the fleet. Order matters for crash
// safety: the sweep record is published FIRST, marked pending, then
// the normalized job specs land one-per-file in the sharded queue,
// then the record is republished final. A crash at any point leaves
// either a pending record (a named intent the resubmit heals — specs
// without a naming record can never exist, so peers never burn cycles
// on work nothing will summarize) or a completed publish. Any peer
// may submit; every peer races to claim the jobs. Resubmitting an
// identical sweep heals missing specs and finalizes the record, so a
// restarted driver attaches instead of colliding; a sweep with the
// same name but different jobs is ErrDuplicate — and is rejected
// before any spec is written, so nothing is stranded.
func (p *Peer) SubmitSweep(spec jobd.SweepSpec) error {
	norm, err := jobd.NormalizeSweep(spec)
	if err != nil {
		return err
	}
	rec := sweepRecord{Name: spec.Name}
	for _, js := range norm {
		rec.Jobs = append(rec.Jobs, js.Name)
	}
	prev, perr := p.readSweepRecord(spec.Name)
	if perr == nil {
		if len(prev.Jobs) != len(rec.Jobs) {
			return fmt.Errorf("%w: sweep %s exists with different jobs", jobd.ErrDuplicate, spec.Name)
		}
		for i := range prev.Jobs {
			if prev.Jobs[i] != rec.Jobs[i] {
				return fmt.Errorf("%w: sweep %s exists with different jobs", jobd.ErrDuplicate, spec.Name)
			}
		}
		// Identical resubmit: fall through to heal any specs a crashed
		// publish left missing and to clear a pending marker.
	} else {
		pending := rec
		pending.Pending = true
		if err := p.writeSweepRecord(pending); err != nil {
			return err
		}
	}
	for _, js := range norm {
		if _, serr := os.Stat(p.queuePath(js.Name)); serr == nil {
			continue // spec already on disk (immutable once written)
		}
		data, err := json.MarshalIndent(js, "", "  ")
		if err != nil {
			return err
		}
		if err := fsatomic.WriteFile(p.queuePath(js.Name), append(data, '\n')); err != nil {
			return err
		}
	}
	if perr == nil && !prev.Pending {
		return nil // record already final and specs verified present
	}
	return p.writeSweepRecord(rec)
}

func (p *Peer) writeSweepRecord(rec sweepRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return fsatomic.WriteFile(p.sweepPath(rec.Name), append(data, '\n'))
}

func (p *Peer) readSweepRecord(name string) (sweepRecord, error) {
	data, err := os.ReadFile(p.sweepPath(name))
	if err != nil {
		return sweepRecord{}, err
	}
	var rec sweepRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return sweepRecord{}, err
	}
	return rec, nil
}

func (p *Peer) readJobSpec(job string) (jobd.JobSpec, error) {
	data, err := os.ReadFile(p.queuePath(job))
	if os.IsNotExist(err) {
		data, err = os.ReadFile(p.legacyQueuePath(job))
	}
	if err != nil {
		return jobd.JobSpec{}, err
	}
	var spec jobd.JobSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return jobd.JobSpec{}, err
	}
	return spec, nil
}

func (p *Peer) writeResult(job string, st jobd.JobStatus) error {
	res := Result{
		Name: st.Name, Config: st.Config, Workload: st.Workload,
		State: string(st.State), FailKind: st.FailKind,
		Cycles: st.Cycles, FPS: st.FPS,
		Peer: p.opts.PeerID, Epoch: p.leaseEpoch(job),
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(p.resultPath(job), append(data, '\n'))
}

func (p *Peer) readResult(job string) (Result, error) {
	data, err := os.ReadFile(p.resultPath(job))
	if err != nil {
		return Result{}, err
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return Result{}, err
	}
	return res, nil
}

// finalizeSweeps writes the summary of every sweep whose jobs all
// have published results. The summary is rendered by the same
// deterministic renderer jobd uses (sorted by job name, simulation
// results only), so every peer that finalizes — and a clean
// single-host run — produces identical bytes; the write is atomic and
// idempotent, making the finalize race harmless. Sweep records and
// results come from the incremental index (each read once, when its
// file appears or changes), and a sweep already finalized with
// identical bytes is remembered so the steady-state cost is zero I/O.
func (p *Peer) finalizeSweeps() {
	for name := range p.idx.sweeps {
		if p.finalized[name] {
			continue
		}
		rows, done := p.sweepRows(name)
		if !done {
			continue
		}
		summary := jobd.RenderSummary(name, rows)
		path := p.summaryPath(name)
		if got, rerr := os.ReadFile(path); rerr == nil && bytes.Equal(got, summary) {
			p.finalized[name] = true
			continue // already finalized with identical bytes
		}
		if werr := writeFileAtomic(path, summary); werr != nil {
			p.logf("fleet: %s: sweep %s summary write failed: %v", p.opts.PeerID, name, werr)
		} else {
			p.finalized[name] = true
			p.logf("fleet: %s: sweep %s finalized", p.opts.PeerID, name)
		}
	}
}

// sweepRows collects a sweep's result rows from the index; done is
// false until every job has a published result.
func (p *Peer) sweepRows(name string) ([]jobd.SummaryRow, bool) {
	rec, ok := p.idx.sweeps[name]
	if !ok {
		return nil, false
	}
	rows := make([]jobd.SummaryRow, 0, len(rec.Jobs))
	for _, job := range rec.Jobs {
		res, have := p.idx.results[job]
		if !have {
			return nil, false
		}
		rows = append(rows, jobd.SummaryRow{
			Name: res.Name, Config: res.Config, Workload: res.Workload,
			State: jobd.State(res.State), FailKind: res.FailKind,
			Cycles: res.Cycles, FPS: res.FPS,
		})
	}
	return rows, true
}

// SweepResult is the finalized view WaitSweep returns.
type SweepResult struct {
	Name    string
	Rows    []Result
	Summary []byte
}

// WaitSweep blocks until the named sweep is finalized (every job has
// a result and the summary is on disk) or the context ends. Any
// peer's WaitSweep works — finalization is a shared-filesystem fact,
// not a peer's private state — which is what lets a fleet lose
// all-but-one member mid-sweep and still finish.
func (p *Peer) WaitSweep(ctx context.Context, name string) (SweepResult, error) {
	tick := p.opts.LeaseTTL / 6
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	for {
		rec, err := p.readSweepRecord(name)
		if err == nil {
			all := true
			rows := make([]Result, 0, len(rec.Jobs))
			for _, job := range rec.Jobs {
				res, rerr := p.readResult(job)
				if rerr != nil {
					all = false
					break
				}
				rows = append(rows, res)
			}
			if all {
				if summary, serr := os.ReadFile(p.summaryPath(name)); serr == nil {
					return SweepResult{Name: name, Rows: rows, Summary: summary}, nil
				}
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return SweepResult{}, err
		}
		select {
		case <-ctx.Done():
			return SweepResult{}, ctx.Err()
		case <-time.After(tick):
		}
	}
}

// writeFileAtomic delegates to the repo-wide fsync'd implementation;
// kept as a named wrapper so every fleet write site reads the same.
func writeFileAtomic(path string, data []byte) error {
	return fsatomic.WriteFile(path, data)
}
