package fleet

import (
	"context"
	"os"
	"testing"
	"time"

	"attila/internal/jobd"
)

// drainTTL is deliberately larger than testTTL: the drain-handoff
// bound under test is "takeover in well under one TTL", and a roomier
// TTL separates the two regimes cleanly — the adopting peer's tick is
// TTL/3, so a handoff takeover lands in about a third of a TTL while
// expire-and-steal cannot fire before a full one.
const drainTTL = 600 * time.Millisecond

func startDrainPeer(t *testing.T, dir, id string) *Peer {
	t.Helper()
	total := measuredCycles(t)
	p, err := NewPeer(Options{
		Dir: dir, PeerID: id, LeaseTTL: drainTTL, MaxClaims: 1,
		Jobd: jobd.Options{
			Workers: 1, Retries: -1,
			CheckpointInterval: total / 8,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFleetDrainHandoff is the graceful-drain acceptance gate: a
// 3-peer fleet mid-sweep loses one member to a deliberate drain, and
// the drained peer's job must change hands through a handoff record —
// takeover observed in under one lease TTL, instead of the ≥TTL dead
// air expire-and-steal costs — with the sweep still converging to
// bytes identical to a clean single-host run.
func TestFleetDrainHandoff(t *testing.T) {
	spec := fleetSweep("drain", "drain-1", "drain-2", "drain-3")
	cleanDir := cleanReference(t, spec)

	dir := t.TempDir()
	a := startDrainPeer(t, dir, "peer-a")
	defer a.Close()
	b := startDrainPeer(t, dir, "peer-b")
	c := startDrainPeer(t, dir, "peer-c")
	defer c.Close()
	if err := a.SubmitSweep(spec); err != nil {
		t.Fatal(err)
	}

	// Wait for b to be mid-job AND to have seen at least one live peer
	// (a handoff needs a target it believes alive).
	deadline := time.Now().Add(time.Minute)
	var drainedJob string
	for drainedJob == "" {
		alive := 0
		for _, pi := range b.Peers() {
			if pi.State == PeerAlive {
				alive++
			}
		}
		if alive > 0 {
			for _, st := range b.Server().Jobs() {
				if st.State == jobd.StateRunning && st.Cycle > 0 {
					drainedJob = st.Name
					break
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("peer-b never got mid-job with a live peer in view")
		}
		time.Sleep(5 * time.Millisecond)
	}
	before, err := readLease(b.leasePath(drainedJob))
	if err != nil {
		t.Fatal(err)
	}
	if before.Owner != "peer-b" {
		t.Fatalf("lease for %s owned by %s, want peer-b", drainedJob, before.Owner)
	}

	// Drain: local checkpoint barrier, then handoff records. The
	// takeover clock starts when Drain returns — that is the moment
	// the records are on disk and peer-b has left the fleet.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Minute)
	if err := b.Drain(dctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	dcancel()
	handedOff := time.Now()
	if got := b.ctrHandoffsOffered.Load(); got < 1 {
		t.Fatalf("drained peer offered %d handoffs, want >= 1", got)
	}

	// The lease must change hands in well under one TTL. Poll tightly;
	// the adopting peer acts on its next tick (~TTL/3).
	var after lease
	for {
		after, err = readLease(b.leasePath(drainedJob))
		if err == nil && after.Owner != "peer-b" {
			break
		}
		if time.Since(handedOff) >= drainTTL {
			t.Fatalf("lease for %s still %+v after a full TTL; handoff never adopted", drainedJob, after)
		}
		time.Sleep(2 * time.Millisecond)
	}
	takeover := time.Since(handedOff)
	t.Logf("takeover of %s by %s in %v (TTL %v)", drainedJob, after.Owner, takeover, drainTTL)
	if takeover >= drainTTL {
		t.Fatalf("takeover took %v, want < TTL %v", takeover, drainTTL)
	}
	if after.Epoch != before.Epoch+1 {
		t.Fatalf("takeover epoch = %d, want %d (fencing chain must advance by exactly one)", after.Epoch, before.Epoch+1)
	}
	if adopted := a.ctrHandoffsAdopted.Load() + c.ctrHandoffsAdopted.Load(); adopted < 1 {
		t.Fatalf("no surviving peer counted a handoff adoption (a=%d c=%d)",
			a.ctrHandoffsAdopted.Load(), c.ctrHandoffsAdopted.Load())
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	res, err := a.WaitSweep(ctx, "drain")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.State != string(jobd.StateDone) {
			t.Errorf("job %s: state %s, want done (peer %s, epoch %d)", r.Name, r.State, r.Peer, r.Epoch)
		}
	}
	// The handed-off job's result must come from the adopter at the
	// incremented epoch — proof the run resumed under the new fence,
	// and (via assertConverged) produced byte-identical output anyway.
	for _, r := range res.Rows {
		if r.Name != drainedJob {
			continue
		}
		if r.Peer != after.Owner {
			t.Errorf("handed-off job finished by %s, want adopter %s", r.Peer, after.Owner)
		}
		if r.Epoch != before.Epoch+1 {
			t.Errorf("handed-off job result epoch = %d, want %d", r.Epoch, before.Epoch+1)
		}
	}
	// No handoff debris survives the sweep.
	if _, err := os.Stat(a.handoffPath(drainedJob)); !os.IsNotExist(err) {
		t.Errorf("handoff record for %s not cleaned up (stat: %v)", drainedJob, err)
	}
	assertConverged(t, cleanDir, dir, spec)
}
