// Package fleet is the coordinator-free multi-host layer on top of
// the job server (internal/jobd): N peers share a work directory on a
// common filesystem, claim jobs through lease files with a TTL and
// seeded-jitter renewal, and steal work from peers whose leases stop
// renewing. There is no leader and no election — the filesystem's
// atomic link/rename primitives are the only consensus used.
//
// The safety argument has three legs:
//
//   - Liveness detection is observation-based and clock-free: lease
//     and heartbeat files carry sequence numbers, never timestamps,
//     and a peer measures staleness only as "unchanged for ≥ TTL of
//     my own monotonic time". Hosts with arbitrarily skewed wall
//     clocks interoperate.
//
//   - Mutual exclusion per epoch: the initial claim is an os.Link
//     (exactly one winner), and a steal must first create an O_EXCL
//     marker naming the next epoch — so for every (job, epoch) there
//     is at most one owner ever.
//
//   - Fencing makes the exclusion durable: the lease epoch is stamped
//     into every checkpoint and manifest, and the owner re-reads the
//     lease immediately before every durable write (jobd's Fence
//     hook). A host that was paused past its TTL and revived — the
//     classic split-brain — finds another peer's name or a higher
//     epoch in the lease file and aborts without writing a byte.
//
// Because the simulator is deterministic and checkpoint restore is
// bit-identical, a stolen job resumed on another host converges to
// the same stats CSV, byte for byte, as an undisturbed run; the
// 3-peer chaos convergence suite asserts exactly that against a clean
// single-host jobd run.
package fleet

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"attila/internal/chaos"
	"attila/internal/jobd"
	"attila/internal/obsv"
)

// jobdErrFenced aliases the jobd sentinel so lease.go's fence errors
// match errors.Is(err, jobd.ErrFenced).
var jobdErrFenced = jobd.ErrFenced

// Options configures one fleet peer.
type Options struct {
	// Dir is the shared fleet work directory (required). Layout:
	//
	//	sweeps/<name>.json   sweep specs, published once
	//	queue/<job>.json     one normalized JobSpec per job
	//	leases/<job>.json    claim records (owner, epoch, seq)
	//	peers/<id>.json      heartbeats (id, seq, addr)
	//	results/<job>.json   terminal outcomes, written by the owner
	//	out/                 shared job outputs (CSVs, manifests, summary)
	//	checkpoints/         shared checkpoint files jobs migrate through
	Dir string
	// PeerID uniquely names this peer in the fleet (required).
	PeerID string
	// LeaseTTL is how long a lease may go unrenewed before it is
	// stealable, and the base of the heartbeat staleness thresholds.
	// Default 2s. Renewals happen every TTL/3 with seeded jitter so a
	// large fleet's renewals do not stampede in phase.
	LeaseTTL time.Duration
	// Addr, when non-empty, is this peer's status-server address,
	// published in heartbeats for /healthz probing.
	Addr string
	// Jobd templates the local job server. OutDir/CkptDir/StatePath
	// are overridden to the shared layout; everything else (workers,
	// retries, checkpoint interval, tenants, chaos) applies as given.
	Jobd jobd.Options
	// Chaos arms fleet-level faults (killhost, pauseheart, leaseyank)
	// in addition to whatever Jobd.Chaos injects locally.
	Chaos *chaos.ServerPlan
	// MaxClaims bounds how many unfinished jobs this peer holds at
	// once; 0 defaults to 2× the local worker count, keeping work
	// spread across the fleet instead of hoarded by whoever scans
	// first.
	MaxClaims int
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// ownedJob is a lease this peer currently holds.
type ownedJob struct {
	epoch     int64
	published bool // result file written; lease no longer renewed
}

// Peer is one fleet member: a local jobd server plus the lease,
// heartbeat, steal, and finalize loops.
type Peer struct {
	opts Options
	srv  *jobd.Server
	rng  *rand.Rand

	// idx is the incremental control-plane index; owned exclusively
	// by the loop goroutine (and by tests that drive scanQueue
	// directly, single-threaded).
	idx *fleetIndex
	// finalized remembers sweeps whose summary this peer has verified
	// on disk, so steady-state finalize passes cost zero I/O. Loop
	// goroutine only.
	finalized map[string]bool

	mu     sync.Mutex
	owned  map[string]*ownedJob
	peers  map[string]*watchedPeer
	leases map[string]*observation // per-lease staleness observers
	hbSeq  int64
	// lastOwnerCounts is the loop's last per-owner live-lease tally,
	// published for the HTTP Peers() view.
	lastOwnerCounts map[string]int
	// stats is the mu-guarded gauge snapshot the loop republishes each
	// tick for FleetStats (HTTP goroutines must not touch idx).
	stats struct {
		peersByState map[string]int
		owned        int
		queued       int
		finalized    int
		fresh        bool
	}

	// Cumulative counters (atomics: bumped from loop and jobd worker
	// goroutines, read by HTTP).
	ctrSteals          atomic.Int64
	ctrHandoffsOffered atomic.Int64
	ctrHandoffsAdopted atomic.Int64
	ctrFenceRefusals   atomic.Int64
	scanReads          atomic.Int64 // control-plane file-content reads

	// Chaos latches.
	killFired  bool
	pauseFired bool
	yankFired  bool
	pausedTill time.Time

	killed   bool
	draining bool
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// NewPeer builds a peer; Start creates the directory layout and
// begins the loop.
func NewPeer(opts Options) (*Peer, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("fleet: Options.Dir is required")
	}
	if opts.PeerID == "" {
		return nil, fmt.Errorf("fleet: Options.PeerID is required")
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 2 * time.Second
	}
	jo := opts.Jobd
	jo.OutDir = filepath.Join(opts.Dir, "out")
	jo.CkptDir = filepath.Join(opts.Dir, "checkpoints")
	// The state file is per peer: the output tree is shared, the
	// server's private queue is not.
	jo.StatePath = filepath.Join(opts.Dir, fmt.Sprintf("jobd-state-%s.json", opts.PeerID))
	jo.PeerID = opts.PeerID
	if opts.Logf != nil && jo.Logf == nil {
		jo.Logf = opts.Logf
	}
	p := &Peer{
		opts:   opts,
		owned:  make(map[string]*ownedJob),
		peers:  make(map[string]*watchedPeer),
		leases: make(map[string]*observation),
		stopCh: make(chan struct{}),
	}
	p.idx = newFleetIndex(p)
	p.finalized = make(map[string]bool)
	// Seeded jitter: the tick phase is deterministic per (chaos seed,
	// peer ID), never wall-clock derived, so chaos runs reproduce.
	seed := int64(1)
	if opts.Chaos != nil {
		seed = opts.Chaos.Seed
	}
	h := fnv.New64a()
	h.Write([]byte(opts.PeerID))
	p.rng = rand.New(rand.NewSource(seed + int64(h.Sum64()&0x7fffffff)))
	jo.Fence = p.fenceCheck
	jo.LeaseEpoch = p.leaseEpoch
	p.srv = jobd.New(jo)
	if opts.MaxClaims <= 0 {
		p.opts.MaxClaims = 2 * workerCount(jo)
	}
	return p, nil
}

func workerCount(o jobd.Options) int {
	if o.Workers > 0 {
		return o.Workers
	}
	return 1
}

func (p *Peer) logf(format string, args ...any) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
	}
}

// Server exposes the local job server (for HTTP mounting and tests).
func (p *Peer) Server() *jobd.Server { return p.srv }

// LeaseTTL reports the effective lease TTL after defaulting.
func (p *Peer) LeaseTTL() time.Duration { return p.opts.LeaseTTL }

// Start creates the shared layout, starts the local job server, and
// launches the peer loop.
func (p *Peer) Start() error {
	for _, sub := range []string{"sweeps", "queue", "leases", "peers", "results", "out", "checkpoints"} {
		if err := os.MkdirAll(filepath.Join(p.opts.Dir, sub), 0o755); err != nil {
			return err
		}
	}
	if err := p.srv.Start(); err != nil {
		return err
	}
	p.publishHeartbeat()
	p.wg.Add(1)
	go p.loop()
	return nil
}

// drainGrace bounds the implicit drain Close performs when the caller
// has not drained explicitly: long enough for a checkpoint barrier,
// short enough that shutdown never hangs on a wedged job.
const drainGrace = 30 * time.Second

// Close gracefully stops the peer. Unless the peer was killed (or
// already drained), Close first runs the drain path: the local jobd
// checkpoints and parks its jobs, then every still-held lease is
// offered to a live peer via a handoff record (see handoff.go), so
// takeover costs one tick instead of a full TTL. Leases with no live
// target are left in place: a restarted peer with the same ID resumes
// them; otherwise they expire and are stolen.
func (p *Peer) Close() error {
	p.mu.Lock()
	skip := p.killed || p.draining
	p.mu.Unlock()
	if skip {
		p.stopLoop()
	} else {
		ctx, cancel := context.WithTimeout(context.Background(), drainGrace)
		_ = p.Drain(ctx)
		cancel()
	}
	return p.srv.Close()
}

// Kill simulates this host dying: the local job server halts with
// every durable write suppressed (jobd.Server.Kill) and the peer loop
// stops mid-beat — no farewell heartbeat, no lease release. The rest
// of the fleet finds out the only way a real crash lets it: the
// heartbeat and lease files stop changing. Chaos killhost and the
// fleet-smoke test both use this.
func (p *Peer) Kill() {
	p.mu.Lock()
	p.killed = true
	p.mu.Unlock()
	p.srv.Kill()
	select {
	case <-p.stopCh:
	default:
		close(p.stopCh)
	}
	p.wg.Wait()
}

// tick returns the next loop delay: TTL/3 with ±25% seeded jitter.
func (p *Peer) tick() time.Duration {
	base := p.opts.LeaseTTL / 3
	jitter := time.Duration(p.rng.Int63n(int64(base)/2+1)) - base/4
	return base + jitter
}

// loop is the peer's heartbeat-renew-observe-claim-steal cycle.
func (p *Peer) loop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stopCh:
			return
		case <-time.After(p.tick()):
		}
		now := time.Now()
		p.fireChaos(now)
		p.mu.Lock()
		paused := now.Before(p.pausedTill)
		killed := p.killed
		p.mu.Unlock()
		if killed {
			return
		}
		if paused {
			// pauseheart: the whole control loop is stalled — no
			// heartbeats, no renewals, no steals — while the local
			// simulations keep running. The rest of the fleet sees a
			// silent peer and takes its leases; the fence catches our
			// writes in the meantime.
			continue
		}
		p.idx.refresh(now)
		p.publishHeartbeat()
		p.renewOwned()
		p.observePeers(now)
		p.adoptHandoffs(now)
		p.gcLeaseDir(now)
		p.scanQueue(now)
		p.publishResults()
		p.finalizeSweeps()
		p.publishStats()
	}
}

// fireChaos checks the fleet-level fault triggers against local job
// progress. Triggers key on deterministic simulation cycles, so a
// fault lands at the same point in the workload every run (modulo the
// polling cadence — which cannot affect final output bytes, because
// recovery converges from checkpoints regardless of where the fault
// lands).
func (p *Peer) fireChaos(now time.Time) {
	plan := p.opts.Chaos
	if plan == nil {
		return
	}
	statuses := p.srv.Jobs()
	if f := plan.KillHostFor(p.opts.PeerID); f != nil {
		p.mu.Lock()
		fired := p.killFired
		p.mu.Unlock()
		if !fired {
			for _, st := range statuses {
				if st.State == jobd.StateRunning && st.Cycle >= f.Cycle {
					p.mu.Lock()
					p.killFired = true
					p.killed = true
					p.mu.Unlock()
					p.logf("fleet: chaos: killing host %s at job %s cycle %d", p.opts.PeerID, st.Name, st.Cycle)
					p.srv.Kill()
					return
				}
			}
		}
	}
	if f := plan.PauseHeartFor(p.opts.PeerID); f != nil {
		p.mu.Lock()
		fired := p.pauseFired
		p.mu.Unlock()
		if !fired {
			for _, st := range statuses {
				if st.State == jobd.StateRunning && st.Cycle >= f.Cycle {
					p.mu.Lock()
					p.pauseFired = true
					p.pausedTill = now.Add(f.Dur)
					p.mu.Unlock()
					p.logf("fleet: chaos: pausing %s heartbeats for %v at job %s cycle %d",
						p.opts.PeerID, f.Dur, st.Name, st.Cycle)
					return
				}
			}
		}
	}
	if plan.LeaseYank != nil {
		job := plan.LeaseYank.Job
		p.mu.Lock()
		fired := p.yankFired
		mine := p.owned[job] != nil
		p.mu.Unlock()
		if !fired && mine {
			for _, st := range statuses {
				if st.Name == job && st.State == jobd.StateRunning && st.Cycle > 0 {
					p.mu.Lock()
					p.yankFired = true
					p.mu.Unlock()
					p.logf("fleet: chaos: yanking lease of %s out from under %s", job, p.opts.PeerID)
					if err := p.yankLease(job); err != nil {
						p.logf("fleet: chaos: leaseyank failed: %v", err)
					}
					return
				}
			}
		}
	}
}

// renewOwned republishes every held lease; a lease that no longer
// names this peer means we were fenced — the job aborts locally and
// its new owner keeps the bytes.
func (p *Peer) renewOwned() {
	p.mu.Lock()
	jobs := make(map[string]*ownedJob, len(p.owned))
	for name, oj := range p.owned {
		jobs[name] = oj
	}
	p.mu.Unlock()
	for name, oj := range jobs {
		if oj.published {
			continue // done and recorded; let the lease age into a tombstone
		}
		if err := p.renewLease(name, oj.epoch); err != nil {
			p.logf("fleet: %s: lost lease on %s: %v", p.opts.PeerID, name, err)
			p.mu.Lock()
			delete(p.owned, name)
			p.mu.Unlock()
			_ = p.srv.FenceJob(name)
		}
	}
}

// scanQueue claims unleased jobs and steals expired leases, up to the
// claim budget. It runs entirely against the incremental index — no
// directory listing, no content reads; per tick it costs O(queue
// entries in memory) map work plus I/O only for the claims and steals
// actually attempted. The index is refreshed once per tick by the
// loop before this runs.
func (p *Peer) scanQueue(now time.Time) {
	for job := range p.idx.queueJobs {
		if !p.idx.sweepJobs[job] {
			// Orphan spec no sweep record names — a crashed submit (or
			// stray file). Claiming it would burn cycles on work nothing
			// will ever summarize; the resubmitted sweep record is what
			// makes it claimable.
			continue
		}
		if _, done := p.idx.results[job]; done {
			continue
		}
		p.mu.Lock()
		_, mine := p.owned[job]
		budget := p.claimBudgetLocked()
		p.mu.Unlock()
		if mine || budget <= 0 {
			continue
		}
		l, known := p.idx.leases[job]
		switch {
		case !known:
			// Unclaimed (as of this tick's view): race for the initial
			// lease. A lease created since the refresh just makes the
			// os.Link lose with ErrExist.
			epoch, cerr := p.tryClaim(job)
			if cerr != nil {
				continue
			}
			p.adopt(job, epoch, false)
		case l.Owner != p.opts.PeerID:
			// Someone else's: steal only after observing it unrenewed
			// for a full TTL on our own clock. The observation folds the
			// cached tuple — renewals changed the file, so the index
			// re-read it; an unchanged file is exactly an unrenewed
			// lease.
			p.mu.Lock()
			obs := p.leases[job]
			if obs == nil {
				obs = &observation{}
				p.leases[job] = obs
			}
			stale := obs.observe(leaseKey(l), now)
			p.mu.Unlock()
			if stale < p.opts.LeaseTTL {
				continue
			}
			epoch, serr := p.trySteal(job, l)
			if serr != nil {
				// Lost the steal race: back off and re-observe the
				// winner's renewals from scratch.
				p.mu.Lock()
				delete(p.leases, job)
				p.mu.Unlock()
				continue
			}
			p.ctrSteals.Add(1)
			p.logf("fleet: %s: stole %s from %s at epoch %d", p.opts.PeerID, job, l.Owner, epoch)
			p.adopt(job, epoch, true)
		}
	}
}

// claimBudgetLocked is how many more jobs this peer may hold.
func (p *Peer) claimBudgetLocked() int {
	held := 0
	for _, oj := range p.owned {
		if !oj.published {
			held++
		}
	}
	return p.opts.MaxClaims - held
}

// adopt records ownership and hands the job to the local jobd server.
// A stolen job resumes from whatever checkpoint its previous owner
// last managed to write (Resume=true keeps the shared checkpoint
// file); a fresh claim starts clean.
func (p *Peer) adopt(job string, epoch int64, stolen bool) {
	spec, err := p.readJobSpec(job)
	if err != nil {
		p.logf("fleet: %s: claimed %s but cannot read spec: %v", p.opts.PeerID, job, err)
		return
	}
	spec.Resume = stolen
	p.mu.Lock()
	p.owned[job] = &ownedJob{epoch: epoch}
	delete(p.leases, job)
	p.mu.Unlock()
	if _, err := p.srv.ResubmitJob(spec); err != nil {
		p.logf("fleet: %s: submitting claimed job %s: %v", p.opts.PeerID, job, err)
	}
}

// publishResults records terminal outcomes of owned jobs in the
// shared results directory. The write is fence-checked like every
// other durable write; after it lands the lease stops being renewed
// and becomes a tombstone (stealers check for the result first).
func (p *Peer) publishResults() {
	p.mu.Lock()
	pending := make([]string, 0, len(p.owned))
	for name, oj := range p.owned {
		if !oj.published {
			pending = append(pending, name)
		}
	}
	p.mu.Unlock()
	for _, name := range pending {
		st, err := p.srv.JobStatus(name)
		if err != nil || !terminalState(st.State) {
			continue
		}
		if st.State == jobd.StateLost {
			// We were fenced mid-run; the thief publishes, not us.
			p.mu.Lock()
			delete(p.owned, name)
			p.mu.Unlock()
			continue
		}
		if err := p.fenceCheck(name); err != nil {
			p.logf("fleet: %s: result for %s refused: %v", p.opts.PeerID, name, err)
			continue
		}
		if err := p.writeResult(name, st); err != nil {
			p.logf("fleet: %s: result write for %s failed: %v", p.opts.PeerID, name, err)
			continue
		}
		p.mu.Lock()
		p.owned[name].published = true
		p.mu.Unlock()
	}
}

// publishStats recomputes the gauge snapshot from the loop's index
// and publishes it under mu for FleetStats (which HTTP goroutines
// call and must not race the index).
func (p *Peer) publishStats() {
	queued := 0
	for job := range p.idx.queueJobs {
		if _, done := p.idx.results[job]; !done && p.idx.sweepJobs[job] {
			queued++
		}
	}
	finalized := len(p.idx.results)
	byState := make(map[string]int)
	p.mu.Lock()
	for _, wp := range p.peers {
		byState[string(wp.state)]++
	}
	ownedN := 0
	for _, oj := range p.owned {
		if !oj.published {
			ownedN++
		}
	}
	p.stats.peersByState = byState
	p.stats.owned = ownedN
	p.stats.queued = queued
	p.stats.finalized = finalized
	p.stats.fresh = true
	p.mu.Unlock()
}

// FleetStats snapshots this peer's control-plane view for the
// /metrics.prom fleet families. Gauges come from the loop's last
// published snapshot; counters are live atomics.
func (p *Peer) FleetStats() *obsv.FleetStats {
	f := &obsv.FleetStats{
		Peer:         p.opts.PeerID,
		PeersByState: make(map[string]int),
	}
	p.mu.Lock()
	for k, v := range p.stats.peersByState {
		f.PeersByState[k] = v
	}
	f.OwnedJobs = p.stats.owned
	f.QueuedJobs = p.stats.queued
	f.FinalizedJobs = p.stats.finalized
	p.mu.Unlock()
	f.Steals = p.ctrSteals.Load()
	f.HandoffsOffered = p.ctrHandoffsOffered.Load()
	f.HandoffsAdopted = p.ctrHandoffsAdopted.Load()
	f.FenceRefusals = p.ctrFenceRefusals.Load()
	f.ScanReads = p.scanReads.Load()
	return f
}

func terminalState(s jobd.State) bool {
	switch s {
	case jobd.StateDone, jobd.StateFailed, jobd.StateCanceled, jobd.StateLost:
		return true
	}
	return false
}
