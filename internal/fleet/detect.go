package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"attila/internal/fsatomic"
)

// PeerState is a watched peer's position in the failure-detection
// state machine. Transitions are one-way per incident and reset to
// alive the moment the peer's heartbeat sequence advances again:
//
//	alive ──(heartbeat stale ≥ TTL)──▶ suspect
//	suspect ──(stale ≥ 2×TTL and health probes failing)──▶ dead
//	dead ──(every lease it held stolen or finished)──▶ reclaimed
//
// A suspect peer whose /healthz still answers stays suspect forever —
// that is the heartbeat-paused-but-alive case (GC pause, partition on
// the shared filesystem, chaos pauseheart), and exactly why lease
// stealing is driven by the per-lease observation clock rather than
// by this state machine: a live-but-stalled host loses its leases to
// the TTL, then fences itself when it wakes.
type PeerState string

const (
	PeerAlive     PeerState = "alive"
	PeerSuspect   PeerState = "suspect"
	PeerDead      PeerState = "dead"
	PeerReclaimed PeerState = "reclaimed"
)

// heartbeat is the on-disk liveness record each peer republishes
// every tick. Like leases it is clock-free: only the sequence number
// matters, and only its rate of change as observed locally.
type heartbeat struct {
	ID   string `json:"id"`
	Seq  int64  `json:"seq"`
	Addr string `json:"addr,omitempty"` // status-server address for /healthz probes
}

// PeerInfo is the API view of a watched peer (/fleet/peers).
type PeerInfo struct {
	ID    string    `json:"id"`
	State PeerState `json:"state"`
	Seq   int64     `json:"seq"`
	// StaleSecs is how long the heartbeat has been unchanged, measured
	// on the reporting peer's clock.
	StaleSecs float64 `json:"staleSecs"`
	// Probes counts /healthz probes sent since the peer went suspect.
	Probes int `json:"probes,omitempty"`
	// Leases counts the leases the peer currently holds.
	Leases int `json:"leases"`
}

// watchedPeer is the observer-side record of one remote peer.
type watchedPeer struct {
	id        string
	addr      string
	seq       int64
	obs       observation
	state     PeerState
	probes    int
	probeOK   bool
	nextProbe time.Time
	backoff   time.Duration
}

func (p *Peer) heartbeatPath(id string) string {
	return filepath.Join(p.opts.Dir, "peers", id+".json")
}

// publishHeartbeat bumps and rewrites this peer's heartbeat file
// through the common fsync'd atomic writer: the heartbeat had the
// same torn-write exposure the lease file did (a fixed-name temp and
// no fsync), and a corrupt heartbeat reads as a silent peer.
func (p *Peer) publishHeartbeat() {
	p.hbSeq++
	hb := heartbeat{ID: p.opts.PeerID, Seq: p.hbSeq, Addr: p.opts.Addr}
	data, err := json.Marshal(hb)
	if err != nil {
		return
	}
	if err := fsatomic.WriteFile(p.heartbeatPath(p.opts.PeerID), append(data, '\n')); err != nil {
		p.logf("fleet: %s: heartbeat write failed: %v", p.opts.PeerID, err)
	}
}

// readHeartbeat loads one heartbeat file (for the index; the loop
// itself never re-reads unchanged heartbeats).
func readHeartbeat(path string) (heartbeat, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return heartbeat{}, err
	}
	var hb heartbeat
	if err := json.Unmarshal(data, &hb); err != nil {
		return heartbeat{}, err
	}
	return hb, nil
}

// observePeers advances each watched peer's state machine from the
// index's cached heartbeats. A heartbeat file that changed was
// re-read by the refresh; one that did not reads as the same sequence
// number, which is exactly what lets the observation clock accumulate
// staleness without touching the file. now is the caller's local
// clock.
func (p *Peer) observePeers(now time.Time) {
	leaseCounts := p.idx.ownerCounts()
	for name, hb := range p.idx.beats {
		if name == p.opts.PeerID {
			continue
		}
		p.mu.Lock()
		wp := p.peers[name]
		if wp == nil {
			wp = &watchedPeer{id: name, state: PeerAlive}
			p.peers[name] = wp
		}
		wp.addr = hb.Addr
		wp.seq = hb.Seq
		stale := wp.obs.observe(fmt.Sprintf("%d", hb.Seq), now)
		held := leaseCounts[name]
		p.advancePeerLocked(wp, stale, held, now)
		p.mu.Unlock()
	}
	p.mu.Lock()
	p.lastOwnerCounts = leaseCounts
	p.mu.Unlock()
}

// advancePeerLocked runs one step of the state machine. Caller holds
// mu; the health probe (network I/O) is issued outside the lock via
// the returned closure pattern — but probes are rare and bounded by
// backoff, so for simplicity they run inline with a short timeout.
func (p *Peer) advancePeerLocked(wp *watchedPeer, stale time.Duration, held int, now time.Time) {
	ttl := p.opts.LeaseTTL
	if stale == 0 {
		// Heartbeat advanced: whatever we thought, the peer is back.
		if wp.state != PeerAlive {
			p.logf("fleet: %s: peer %s recovered (was %s)", p.opts.PeerID, wp.id, wp.state)
		}
		wp.state = PeerAlive
		wp.probes = 0
		wp.backoff = 0
		return
	}
	switch wp.state {
	case PeerAlive:
		if stale >= ttl {
			wp.state = PeerSuspect
			wp.backoff = ttl / 4
			wp.nextProbe = now
			p.logf("fleet: %s: peer %s suspect (heartbeat stale %v)", p.opts.PeerID, wp.id, stale)
		}
	case PeerSuspect:
		// Probe /healthz with exponential backoff while suspect: a
		// paused-but-alive host keeps answering and stays suspect; a
		// dead one fails probes and is declared dead once the heartbeat
		// has been silent two full TTLs.
		if wp.addr != "" && now.After(wp.nextProbe) {
			wp.probes++
			wp.probeOK = probeHealthz(wp.addr)
			wp.backoff *= 2
			if max := 2 * ttl; wp.backoff > max {
				wp.backoff = max
			}
			wp.nextProbe = now.Add(wp.backoff)
		}
		if stale >= 2*ttl && (wp.addr == "" || !wp.probeOK) {
			wp.state = PeerDead
			p.logf("fleet: %s: peer %s dead (stale %v, %d probes)", p.opts.PeerID, wp.id, stale, wp.probes)
		}
	case PeerDead:
		if held == 0 {
			wp.state = PeerReclaimed
			p.logf("fleet: %s: peer %s reclaimed (no leases left)", p.opts.PeerID, wp.id)
		}
	case PeerReclaimed:
		// Terminal until the heartbeat advances again.
	}
}

// probeHealthz asks a peer's status server whether the process is up.
func probeHealthz(addr string) bool {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	client := &http.Client{Timeout: 500 * time.Millisecond}
	resp, err := client.Get(url + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// leaseCountsByOwner counts live leases per owner (for
// dead→reclaimed) by scanning the lease directory directly. The peer
// loop never calls this — it uses the index's cached ownerCounts —
// but the on-demand HTTP path falls back here when the loop has not
// published a snapshot yet.
func (p *Peer) leaseCountsByOwner() map[string]int {
	counts := make(map[string]int)
	entries, err := os.ReadDir(filepath.Join(p.opts.Dir, "leases"))
	if err != nil {
		return counts
	}
	for _, e := range entries {
		job, ok := jobName(e.Name(), ".json")
		if !ok {
			continue
		}
		if p.resultExists(job) {
			continue // finished: the lease is a tombstone, not held work
		}
		l, err := readLease(p.leasePath(job))
		if err != nil {
			continue
		}
		counts[l.Owner]++
	}
	return counts
}

// Peers returns the watched peers' states (self excluded), sorted by
// ID for stable output. Lease counts come from the loop's last
// published snapshot when available (the HTTP goroutine must not
// touch the loop-owned index).
func (p *Peer) Peers() []PeerInfo {
	now := time.Now()
	p.mu.Lock()
	counts := p.lastOwnerCounts
	p.mu.Unlock()
	if counts == nil {
		counts = p.leaseCountsByOwner()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PeerInfo, 0, len(p.peers))
	for _, wp := range p.peers {
		info := PeerInfo{ID: wp.id, State: wp.state, Seq: wp.seq, Probes: wp.probes, Leases: counts[wp.id]}
		if !wp.obs.since.IsZero() {
			info.StaleSecs = now.Sub(wp.obs.since).Seconds()
		}
		out = append(out, info)
	}
	sortPeerInfo(out)
	return out
}

func sortPeerInfo(infos []PeerInfo) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].ID < infos[j-1].ID; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}
