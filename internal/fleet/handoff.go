package fleet

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"time"

	"attila/internal/fsatomic"
)

// Cooperative lease handoff. Without it, a gracefully draining peer's
// jobs sit parked until the lease goes stale and the ordinary steal
// path fires — a full TTL of dead air per job. A drain knows it is
// leaving, so it can say so: after the local jobd has checkpointed
// and parked every running job, the peer writes one record per still-
// owned job:
//
//	leases/<job>.handoff  {"job":..., "from": me, "to": peer, "epoch": E+1}
//
// naming a live target peer and the epoch the takeover must use. The
// target adopts on its next tick — takeover in one tick instead of
// ≥TTL — by running the ordinary steal path (O_EXCL marker at E+1,
// re-verify, rewrite), so the handoff preserves every guarantee a
// steal has: exactly one owner per epoch even if a thief races the
// target, and the drained peer's stale writes fence on E+1 exactly as
// if they had been stolen from. The record is advisory, never load-
// bearing: if the target is gone or never acts, the lease simply goes
// stale and expire-and-steal recovers it; any peer GCs a handoff once
// the lease reaches its epoch or it ages out unconsumed.
type handoff struct {
	Job   string `json:"job"`
	From  string `json:"from"`
	To    string `json:"to"`
	Epoch int64  `json:"epoch"` // the epoch the takeover writes (old + 1)
}

func (p *Peer) handoffPath(job string) string {
	return filepath.Join(p.opts.Dir, "leases", job+".handoff")
}

func readHandoff(path string) (handoff, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return handoff{}, err
	}
	var h handoff
	if err := json.Unmarshal(data, &h); err != nil {
		return handoff{}, err
	}
	return h, nil
}

// Drain gracefully winds the peer down: the local jobd checkpoints
// and parks every running job (while this peer's loop keeps renewing
// their leases, so nothing is stolen mid-checkpoint), then the loop
// stops and every still-owned lease is offered to a live peer via a
// handoff record. Jobs with no live target fall back to
// expire-and-steal. Safe to call more than once; Close calls it with
// a default grace period if the caller has not.
func (p *Peer) Drain(ctx context.Context) error {
	p.mu.Lock()
	if p.draining || p.killed {
		p.mu.Unlock()
		p.stopLoop()
		return nil
	}
	p.draining = true
	p.mu.Unlock()
	err := p.srv.Drain(ctx)
	p.stopLoop()
	p.handoffOwned()
	return err
}

// stopLoop closes the tick loop and waits for it; idempotent.
func (p *Peer) stopLoop() {
	select {
	case <-p.stopCh:
	default:
		close(p.stopCh)
	}
	p.wg.Wait()
}

// handoffOwned writes a handoff record for every lease this peer
// still holds unpublished, targeting live peers round-robin. Called
// with the loop stopped: nothing else on this peer mutates leases.
func (p *Peer) handoffOwned() {
	p.mu.Lock()
	jobs := make([]string, 0, len(p.owned))
	for name, oj := range p.owned {
		if !oj.published {
			jobs = append(jobs, name)
		}
	}
	targets := p.aliveTargetsLocked()
	p.mu.Unlock()
	sort.Strings(jobs)
	if len(targets) == 0 {
		if len(jobs) > 0 {
			p.logf("fleet: %s: draining with %d jobs and no live peer; leases will expire and be stolen", p.opts.PeerID, len(jobs))
		}
		return
	}
	for i, job := range jobs {
		p.mu.Lock()
		oj := p.owned[job]
		p.mu.Unlock()
		if oj == nil {
			continue
		}
		// Only offer what we verifiably still own: a lease yanked or
		// stolen during the drain is someone else's to run.
		l, err := readLease(p.leasePath(job))
		if err != nil || l.Owner != p.opts.PeerID || l.Epoch != oj.epoch {
			continue
		}
		h := handoff{Job: job, From: p.opts.PeerID, To: targets[i%len(targets)], Epoch: oj.epoch + 1}
		data, merr := json.Marshal(h)
		if merr != nil {
			continue
		}
		if werr := fsatomic.WriteFile(p.handoffPath(job), append(data, '\n')); werr != nil {
			p.logf("fleet: %s: handoff write for %s failed: %v", p.opts.PeerID, job, werr)
			continue
		}
		p.ctrHandoffsOffered.Add(1)
		p.logf("fleet: %s: offered %s to %s at epoch %d", p.opts.PeerID, job, h.To, h.Epoch)
	}
}

// aliveTargetsLocked lists watched peers currently believed alive,
// sorted for deterministic round-robin spread. Caller holds mu.
func (p *Peer) aliveTargetsLocked() []string {
	var ids []string
	for id, wp := range p.peers {
		if wp.state == PeerAlive {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// adoptHandoffs takes over jobs whose handoff records name this peer.
// Adoption runs the ordinary steal path under the record's epoch so a
// raced thief and the target still resolve to exactly one owner; the
// claim budget is deliberately bypassed — keeping a drained peer's
// work live beats fairness, and the load is bounded by what one peer
// could hold.
func (p *Peer) adoptHandoffs(now time.Time) {
	for job, hi := range p.idx.handoffs {
		h := hi.h
		if h.To != p.opts.PeerID || h.Job != job {
			continue
		}
		if _, done := p.idx.results[job]; done {
			p.removeHandoff(job)
			continue
		}
		p.mu.Lock()
		_, mine := p.owned[job]
		p.mu.Unlock()
		if mine {
			p.removeHandoff(job)
			continue
		}
		// Fresh read, not the cache: trySteal must verify against the
		// authoritative tuple.
		l, err := readLease(p.leasePath(job))
		if err != nil {
			continue
		}
		if l.Epoch >= h.Epoch {
			// Consumed or superseded (someone stole at or past the
			// offered epoch).
			p.removeHandoff(job)
			continue
		}
		if l.Epoch != h.Epoch-1 || l.Owner != h.From {
			continue // not the lease state the offer described; leave for GC
		}
		epoch, serr := p.trySteal(job, l)
		if serr != nil {
			continue
		}
		p.ctrHandoffsAdopted.Add(1)
		p.logf("fleet: %s: adopted %s from draining %s at epoch %d", p.opts.PeerID, job, h.From, epoch)
		p.adopt(job, epoch, true)
		p.removeHandoff(job)
	}
}

func (p *Peer) removeHandoff(job string) {
	os.Remove(p.handoffPath(job))
	delete(p.idx.handoffs, job)
}

// gcLeaseDir ages out control-plane debris on the observation clock:
//
//   - A steal marker whose lease already reached its epoch is spent —
//     the steal completed (the winner's marker-remove lost a race or
//     its host died between rewrite and remove). Removed immediately.
//   - A marker whose epoch is still in the future after 2×TTL marks a
//     thief that died mid-steal. It must go: the O_EXCL creation that
//     makes steals exactly-one-winner also means an abandoned marker
//     blocks that epoch's steal forever, and leases/ would otherwise
//     grow without bound.
//   - A handoff is removed once the lease reaches the offered epoch
//     (consumed, or recovered by expire-and-steal), or after 2×TTL
//     unconsumed — a live target would have adopted within one tick.
//
// Ages are measured from when THIS peer first indexed the file, so a
// freshly started peer waits a full 2×TTL before judging anything
// abandoned — conservative, clock-free, and safe against in-flight
// steals which hold markers only for microseconds.
func (p *Peer) gcLeaseDir(now time.Time) {
	ttl := p.opts.LeaseTTL
	for name, mi := range p.idx.markers {
		l, known := p.idx.leases[mi.job]
		switch {
		case known && l.Epoch >= mi.epoch:
			os.Remove(p.stealMarkerPath(mi.job, mi.epoch))
			delete(p.idx.markers, name)
		case now.Sub(mi.firstSeen) >= 2*ttl:
			p.logf("fleet: %s: removing abandoned steal marker %s (age %v)", p.opts.PeerID, name, now.Sub(mi.firstSeen))
			os.Remove(p.stealMarkerPath(mi.job, mi.epoch))
			delete(p.idx.markers, name)
		}
	}
	for job, hi := range p.idx.handoffs {
		if hi.h.To == p.opts.PeerID {
			continue // ours to adopt, not to judge
		}
		l, known := p.idx.leases[job]
		if (known && l.Epoch >= hi.h.Epoch) || now.Sub(hi.firstSeen) >= 2*ttl {
			p.removeHandoff(job)
		}
	}
}
