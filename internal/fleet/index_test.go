package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"attila/internal/chkpt"
	"attila/internal/jobd"
)

// newIdlePeer builds a peer with the directory layout on disk but no
// running loop or workers: tests drive idx.refresh / scanQueue / gc
// passes directly, single-threaded, with explicit clocks.
func newIdlePeer(t *testing.T, dir, id string) *Peer {
	t.Helper()
	p, err := NewPeer(Options{Dir: dir, PeerID: id, LeaseTTL: testTTL, MaxClaims: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"sweeps", "queue", "leases", "peers", "results", "out", "checkpoints"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// TestQueueScanIncremental is the scale gate for the incremental
// index: with a 1000-job sweep published, the first refresh pays for
// every control-plane file once — and every refresh after that costs
// content reads proportional to what actually changed, not to queue
// size. PR 9's scan re-read all ~1000 leases and the sweep record on
// every TTL/3 tick.
func TestQueueScanIncremental(t *testing.T) {
	dir := t.TempDir()
	p := newIdlePeer(t, dir, "scanner")

	const jobs = 1000
	sweep := jobd.SweepSpec{Name: "scale"}
	for i := 0; i < jobs; i++ {
		sweep.Jobs = append(sweep.Jobs, fleetSpec(fmt.Sprintf("scale-%04d", i)))
	}
	if err := p.SubmitSweep(sweep); err != nil {
		t.Fatal(err)
	}
	// A slice of the queue is already claimed by another peer, so the
	// lease view has real content to index.
	const leased = 100
	for i := 0; i < leased; i++ {
		job := fmt.Sprintf("scale-%04d", i)
		if err := writeLease(p.leasePath(job), lease{Owner: "other", Epoch: 1, Seq: 1}); err != nil {
			t.Fatal(err)
		}
	}

	now := time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)
	p.idx.refresh(now)
	if got := len(p.idx.queueJobs); got != jobs {
		t.Fatalf("index sees %d queue jobs, want %d", got, jobs)
	}
	if got := len(p.idx.sweepJobs); got != jobs {
		t.Fatalf("index sees %d sweep-named jobs, want %d", got, jobs)
	}
	if got := len(p.idx.leases); got != leased {
		t.Fatalf("index sees %d leases, want %d", got, leased)
	}
	firstPass := p.scanReads.Load()
	if firstPass < leased+1 {
		t.Fatalf("first refresh made %d content reads, want at least %d (every lease plus the sweep record)", firstPass, leased+1)
	}

	// Nothing changed: ticks two and three must make zero content
	// reads no matter how many jobs are queued.
	for i := 2; i <= 3; i++ {
		now = now.Add(100 * time.Millisecond)
		p.idx.refresh(now)
		if delta := p.scanReads.Load() - firstPass; delta != 0 {
			t.Fatalf("idle tick %d made %d content reads, want 0", i, delta)
		}
	}

	// One lease renews: exactly the changed file is re-read.
	if err := writeLease(p.leasePath("scale-0007"), lease{Owner: "other", Epoch: 1, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	before := p.scanReads.Load()
	now = now.Add(100 * time.Millisecond)
	p.idx.refresh(now)
	delta := p.scanReads.Load() - before
	if delta < 1 || delta > 2 {
		t.Fatalf("tick after one lease renewal made %d content reads, want ~1", delta)
	}
	if got := p.idx.leases["scale-0007"].Seq; got != 2 {
		t.Fatalf("renewed lease seq in index = %d, want 2", got)
	}

	// The forced full relist (every 16th tick, armor against coarse
	// directory timestamps) relists shards but still reads no content.
	before = p.scanReads.Load()
	for i := 0; i < 16; i++ {
		now = now.Add(100 * time.Millisecond)
		p.idx.refresh(now)
	}
	if delta := p.scanReads.Load() - before; delta != 0 {
		t.Fatalf("16 idle ticks (incl. a forced relist) made %d content reads, want 0", delta)
	}
	if got := len(p.idx.queueJobs); got != jobs {
		t.Fatalf("after forced relist the index sees %d queue jobs, want %d", got, jobs)
	}
}

// TestScanSkipsOrphanQueueFiles: a spec file no sweep record names —
// a crashed submit's debris, or a stray file — must never be claimed;
// it becomes claimable the moment a (re)submitted sweep names it.
func TestScanSkipsOrphanQueueFiles(t *testing.T) {
	dir := t.TempDir()
	p := newIdlePeer(t, dir, "claimer")

	spec := fleetSpec("orphan-1")
	norm, err := jobd.NormalizeSweep(jobd.SweepSpec{Name: "orphan", Jobs: []jobd.JobSpec{spec}})
	if err != nil {
		t.Fatal(err)
	}
	// Plant the spec exactly where SubmitSweep would, but with no
	// sweep record: the crashed-submit shape the pending-marker
	// ordering makes impossible going forward, and which older fleets
	// could still have on disk.
	specJSON, err := json.MarshalIndent(norm[0], "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(p.queuePath(norm[0].Name), append(specJSON, '\n')); err != nil {
		t.Fatal(err)
	}

	now := time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)
	p.idx.refresh(now)
	p.scanQueue(now)
	if _, err := os.Stat(p.leasePath(norm[0].Name)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan spec was claimed (lease stat: %v); nothing will ever summarize it", err)
	}

	// The resubmitted sweep names the job; now it is real work.
	if err := p.SubmitSweep(jobd.SweepSpec{Name: "orphan", Jobs: []jobd.JobSpec{spec}}); err != nil {
		t.Fatal(err)
	}
	now = now.Add(100 * time.Millisecond)
	p.idx.refresh(now)
	p.scanQueue(now)
	l, err := readLease(p.leasePath(norm[0].Name))
	if err != nil {
		t.Fatalf("sweep-named job was not claimed: %v", err)
	}
	if l.Owner != "claimer" || l.Epoch != 1 {
		t.Fatalf("claimed lease = %+v, want claimer@1", l)
	}
}

// TestStealCorruptLeaseRecoversEpochFloor: a torn lease file reads as
// the corrupt sentinel with epoch 0. Stealing it must not restart the
// fencing chain at 1 — the old owner's checkpoints carry the real
// epoch and would pass later checks — so the thief recovers the floor
// from checkpoint v2 metadata and surviving steal markers.
func TestStealCorruptLeaseRecoversEpochFloor(t *testing.T) {
	dir := t.TempDir()
	p := newLeasePeer(t, dir, "thief")

	// Floor from checkpoint metadata: the last owner durably stamped
	// epoch 5 before the crash tore the lease.
	if err := os.WriteFile(p.leasePath("ckptjob"), []byte("{\"owner\": \"pe"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap := chkpt.NewSnapshot(chkpt.Meta{Cycle: 42, Config: "c", Workload: "w", Epoch: 5})
	snap.Add("state", []byte("payload"))
	if err := snap.WriteFile(filepath.Join(dir, "checkpoints", "ckptjob.ckpt")); err != nil {
		t.Fatal(err)
	}
	observed, err := readLease(p.leasePath("ckptjob"))
	if err != nil {
		t.Fatal(err)
	}
	if observed.Owner != corruptOwner || observed.Epoch != 0 {
		t.Fatalf("torn lease read as %+v, want the corrupt sentinel at epoch 0", observed)
	}
	epoch, err := p.trySteal("ckptjob", observed)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 6 {
		t.Fatalf("steal of torn lease got epoch %d, want 6 (checkpoint floor 5 + 1)", epoch)
	}

	// Floor from a surviving steal marker: epoch 7 was claimed by some
	// thief that died before (or while) rewriting the lease.
	if err := os.WriteFile(p.leasePath("markerjob"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p.stealMarkerPath("markerjob", 7), []byte("gone\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	observed, err = readLease(p.leasePath("markerjob"))
	if err != nil {
		t.Fatal(err)
	}
	epoch, err = p.trySteal("markerjob", observed)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 8 {
		t.Fatalf("steal of torn lease got epoch %d, want 8 (marker floor 7 + 1)", epoch)
	}

	// A readable lease never consults the floor: the observed epoch is
	// authoritative, and marker-derived floors during live races could
	// fork the chain.
	if err := writeLease(p.leasePath("cleanjob"), lease{Owner: "dead", Epoch: 3, Seq: 9}); err != nil {
		t.Fatal(err)
	}
	snap = chkpt.NewSnapshot(chkpt.Meta{Cycle: 7, Config: "c", Workload: "w", Epoch: 9})
	snap.Add("state", []byte("payload"))
	if err := snap.WriteFile(filepath.Join(dir, "checkpoints", "cleanjob.ckpt")); err != nil {
		t.Fatal(err)
	}
	observed, err = readLease(p.leasePath("cleanjob"))
	if err != nil {
		t.Fatal(err)
	}
	epoch, err = p.trySteal("cleanjob", observed)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 4 {
		t.Fatalf("steal of readable lease got epoch %d, want observed+1 = 4", epoch)
	}
}

// TestGCLeaseDirMarkers: steal-marker lifecycle under the GC pass —
// a spent marker (lease already at its epoch) goes immediately, an
// abandoned one blocks its epoch's steal until it ages out on the
// observation clock, then the steal goes through.
func TestGCLeaseDirMarkers(t *testing.T) {
	dir := t.TempDir()
	p := newIdlePeer(t, dir, "janitor")
	ttl := p.opts.LeaseTTL

	if _, err := p.tryClaim("job"); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	p.owned["job"] = &ownedJob{epoch: 1}
	p.mu.Unlock()

	// Spent: the winner of the epoch-1 claim race died between rewrite
	// and marker removal. The lease reached the epoch; the marker is
	// pure debris.
	if err := os.WriteFile(p.stealMarkerPath("job", 1), []byte("x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	now := time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)
	p.idx.refresh(now)
	p.gcLeaseDir(now)
	if _, err := os.Stat(p.stealMarkerPath("job", 1)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("spent marker not removed (stat: %v)", err)
	}

	// Abandoned: a thief created the epoch-2 marker and died before
	// rewriting the lease. Until GC, the O_EXCL exclusion means nobody
	// can steal at epoch 2.
	if err := os.WriteFile(p.stealMarkerPath("job", 2), []byte("x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	now = now.Add(100 * time.Millisecond)
	p.idx.refresh(now)
	p.gcLeaseDir(now) // too fresh to judge
	firstSeen := now

	thief := newLeasePeer(t, dir, "thief")
	observed, err := readLease(p.leasePath("job"))
	if err != nil {
		t.Fatal(err)
	}
	if _, serr := thief.trySteal("job", observed); !errors.Is(serr, errLeaseHeld) {
		t.Fatalf("steal under an abandoned marker = %v, want errLeaseHeld", serr)
	}

	// Under 2×TTL of observed age the marker survives...
	now = firstSeen.Add(2*ttl - time.Millisecond)
	p.idx.refresh(now)
	p.gcLeaseDir(now)
	if _, err := os.Stat(p.stealMarkerPath("job", 2)); err != nil {
		t.Fatalf("marker GC'd before 2×TTL (stat: %v)", err)
	}
	// ...at 2×TTL it is judged abandoned and removed, unblocking the
	// epoch.
	now = firstSeen.Add(2 * ttl)
	p.idx.refresh(now)
	p.gcLeaseDir(now)
	if _, err := os.Stat(p.stealMarkerPath("job", 2)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("abandoned marker survived 2×TTL (stat: %v)", err)
	}
	epoch, err := thief.trySteal("job", observed)
	if err != nil {
		t.Fatalf("steal after marker GC failed: %v", err)
	}
	if epoch != 2 {
		t.Fatalf("post-GC steal epoch = %d, want 2", epoch)
	}

	// Handoff GC: a record addressed to someone else whose lease
	// already reached the offered epoch is consumed debris.
	if err := writeFileAtomic(p.handoffPath("job"), []byte(`{"job":"job","from":"janitor","to":"someone-else","epoch":2}`)); err != nil {
		t.Fatal(err)
	}
	now = now.Add(100 * time.Millisecond)
	p.idx.refresh(now)
	p.gcLeaseDir(now)
	if _, err := os.Stat(p.handoffPath("job")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("consumed handoff record not GC'd (stat: %v)", err)
	}
}
