package fleet

import (
	"encoding/json"
	"net/http"
)

// Handler wraps the local job server's HTTP API and adds the
// fleet-level routes:
//
//	GET /fleet/peers   watched peers, detector states, and this
//	                   peer's control-plane stats (gauges + counters)
//
// Everything else (/jobs, /sweeps, /fleet/metrics) is served by the
// embedded jobd handler, so a fleet peer mounts exactly like a
// single-host job server under the obsv status server. The same
// stats render as OpenMetrics families when the status server is
// given ServerOptions.Fleet = peer.FleetStats.
func (p *Peer) Handler() http.Handler {
	jobs := p.srv.Handler()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fleet/peers", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{
			"self":  p.opts.PeerID,
			"peers": p.Peers(),
			"stats": p.FleetStats(),
		})
	})
	mux.Handle("/", jobs)
	return mux
}
