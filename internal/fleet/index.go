package fleet

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// The incremental control-plane index. PR 9's peer loop re-read every
// queue spec, lease, result, sweep record, and heartbeat on each
// TTL/3 tick — O(jobs) file-content reads per peer per tick, which at
// 10k jobs×N peers turns the shared filesystem into the bottleneck.
// The index replaces that with the classic mtime-keyed view: each
// tick lists the directory (cheap — one getdents stream plus a stat
// per entry, no content I/O) and re-reads a file's *contents* only
// when its (size, mtime) pair changed since the last look. Steady
// state cost is O(changed): an idle 10k-job sweep costs zero content
// reads per tick.
//
// The queue directory goes one step further and is sharded —
// queue/<prefix>/<job>.json with a 2-hex-digit fnv1a prefix — so even
// the per-entry stat cost scales with churn, not queue size: a shard
// directory's own mtime only changes when an entry is added or
// removed (queue specs are immutable), so unchanged shards are
// skipped without listing them. Every 16th tick forces a full relist
// as armor against filesystems with coarse directory timestamps.
//
// Correctness note: the index is a *hint*, never an authority. Every
// mutating path re-reads the authoritative file directly before
// acting — trySteal re-verifies the lease under its marker, fenceCheck
// and renewLease always hit the file — so a stale index entry can at
// worst delay an action by a tick, never corrupt the protocol.

// fileMeta identifies a file version by directory metadata alone.
type fileMeta struct {
	size    int64
	mtimeNS int64
}

func metaOf(e os.DirEntry) (fileMeta, bool) {
	info, err := e.Info()
	if err != nil {
		return fileMeta{}, false
	}
	return fileMeta{size: info.Size(), mtimeNS: info.ModTime().UnixNano()}, true
}

// skipEntry filters the transient debris atomic writes leave while in
// flight (CreateTemp patterns *.tmp* and *.claim*).
func skipEntry(name string) bool {
	return strings.Contains(name, ".tmp") || strings.Contains(name, ".claim")
}

// refreshDir is the generic incremental pass over one flat directory:
// onChange fires for entries whose metadata differs from the last
// look, onRemove for entries that vanished. Subdirectories are
// ignored.
func refreshDir(dir string, known map[string]fileMeta, onChange func(name string), onRemove func(name string)) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		if e.IsDir() || skipEntry(e.Name()) {
			continue
		}
		name := e.Name()
		m, ok := metaOf(e)
		if !ok {
			continue
		}
		seen[name] = true
		if old, had := known[name]; had && old == m {
			continue
		}
		known[name] = m
		onChange(name)
	}
	for name := range known {
		if !seen[name] {
			delete(known, name)
			onRemove(name)
		}
	}
}

// markerInfo is an indexed steal marker leases/<job>.steal.<epoch>.
type markerInfo struct {
	job       string
	epoch     int64
	firstSeen time.Time // local observation clock, for abandoned-marker GC
}

// handoffInfo is an indexed drain-handoff record leases/<job>.handoff.
type handoffInfo struct {
	h         handoff
	firstSeen time.Time
}

// fleetIndex is one peer's in-memory view of the shared control
// plane. It is owned by the peer loop goroutine; nothing here is
// locked. Cross-goroutine consumers (HTTP, FleetStats) read mu-guarded
// snapshots the loop publishes each tick.
type fleetIndex struct {
	p     *Peer
	ticks int

	queueShards map[string]fileMeta // shard dir name -> dir metadata
	queueJobs   map[string]string   // job -> shard name ("" = legacy flat file)

	leaseMeta map[string]fileMeta
	leases    map[string]lease       // job -> last parsed lease
	markers   map[string]markerInfo  // marker file name -> info
	handoffs  map[string]handoffInfo // job -> parsed handoff

	resultMeta map[string]fileMeta
	results    map[string]Result // job -> parsed result

	sweepMeta map[string]fileMeta
	sweeps    map[string]sweepRecord
	sweepJobs map[string]bool // union of jobs named by any sweep record

	peerMeta map[string]fileMeta
	beats    map[string]heartbeat // peer id -> last parsed heartbeat
}

func newFleetIndex(p *Peer) *fleetIndex {
	return &fleetIndex{
		p:           p,
		queueShards: make(map[string]fileMeta),
		queueJobs:   make(map[string]string),
		leaseMeta:   make(map[string]fileMeta),
		leases:      make(map[string]lease),
		markers:     make(map[string]markerInfo),
		handoffs:    make(map[string]handoffInfo),
		resultMeta:  make(map[string]fileMeta),
		results:     make(map[string]Result),
		sweepMeta:   make(map[string]fileMeta),
		sweeps:      make(map[string]sweepRecord),
		sweepJobs:   make(map[string]bool),
		peerMeta:    make(map[string]fileMeta),
		beats:       make(map[string]heartbeat),
	}
}

// refresh brings every view up to date; called once per loop tick
// before the scan/observe/finalize passes consume the cached state.
func (ix *fleetIndex) refresh(now time.Time) {
	ix.ticks++
	ix.refreshQueue(ix.ticks%16 == 1)
	ix.refreshLeaseDir(now)
	ix.refreshResults()
	ix.refreshSweeps()
	ix.refreshPeers()
}

// --- queue ---

// refreshQueue walks queue/: shard directories are relisted only when
// their own mtime changed (an entry was added or removed — specs are
// immutable), legacy flat files are indexed by name. force relists
// every shard.
func (ix *fleetIndex) refreshQueue(force bool) {
	root := filepath.Join(ix.p.opts.Dir, "queue")
	entries, err := os.ReadDir(root)
	if err != nil {
		return
	}
	seenShard := make(map[string]bool)
	seenFlat := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			seenShard[name] = true
			m, ok := metaOf(e)
			if !ok {
				continue
			}
			if old, had := ix.queueShards[name]; had && old == m && !force {
				continue
			}
			ix.queueShards[name] = m
			ix.relistShard(root, name)
			continue
		}
		if skipEntry(name) {
			continue
		}
		if job, ok := jobName(name, ".json"); ok {
			seenFlat[job] = true
			ix.queueJobs[job] = ""
		}
	}
	for job, shard := range ix.queueJobs {
		if shard == "" && !seenFlat[job] {
			delete(ix.queueJobs, job)
		}
	}
	for shard := range ix.queueShards {
		if !seenShard[shard] {
			delete(ix.queueShards, shard)
			for job, s := range ix.queueJobs {
				if s == shard {
					delete(ix.queueJobs, job)
				}
			}
		}
	}
}

func (ix *fleetIndex) relistShard(root, shard string) {
	for job, s := range ix.queueJobs {
		if s == shard {
			delete(ix.queueJobs, job)
		}
	}
	entries, err := os.ReadDir(filepath.Join(root, shard))
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() || skipEntry(e.Name()) {
			continue
		}
		if job, ok := jobName(e.Name(), ".json"); ok {
			ix.queueJobs[job] = shard
		}
	}
}

// --- leases, steal markers, handoffs ---

func (ix *fleetIndex) refreshLeaseDir(now time.Time) {
	dir := filepath.Join(ix.p.opts.Dir, "leases")
	refreshDir(dir, ix.leaseMeta,
		func(name string) {
			switch {
			case strings.HasSuffix(name, ".handoff"):
				job := strings.TrimSuffix(name, ".handoff")
				h, err := readHandoff(filepath.Join(dir, name))
				ix.p.scanReads.Add(1)
				if err != nil {
					return
				}
				first := now
				if prev, ok := ix.handoffs[job]; ok {
					first = prev.firstSeen
				}
				ix.handoffs[job] = handoffInfo{h: h, firstSeen: first}
			case strings.Contains(name, ".steal."):
				job, epoch, ok := parseMarkerName(name)
				if !ok {
					return
				}
				if prev, had := ix.markers[name]; had {
					ix.markers[name] = markerInfo{job: job, epoch: epoch, firstSeen: prev.firstSeen}
					return
				}
				ix.markers[name] = markerInfo{job: job, epoch: epoch, firstSeen: now}
			default:
				job, ok := jobName(name, ".json")
				if !ok {
					return
				}
				l, err := readLease(filepath.Join(dir, name))
				ix.p.scanReads.Add(1)
				if err != nil {
					return
				}
				ix.leases[job] = l
			}
		},
		func(name string) {
			switch {
			case strings.HasSuffix(name, ".handoff"):
				delete(ix.handoffs, strings.TrimSuffix(name, ".handoff"))
			case strings.Contains(name, ".steal."):
				delete(ix.markers, name)
			default:
				if job, ok := jobName(name, ".json"); ok {
					delete(ix.leases, job)
				}
			}
		})
}

func parseMarkerName(name string) (job string, epoch int64, ok bool) {
	i := strings.Index(name, ".steal.")
	if i <= 0 {
		return "", 0, false
	}
	e, err := strconv.ParseInt(name[i+len(".steal."):], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return name[:i], e, true
}

// --- results ---

func (ix *fleetIndex) refreshResults() {
	dir := filepath.Join(ix.p.opts.Dir, "results")
	refreshDir(dir, ix.resultMeta,
		func(name string) {
			job, ok := jobName(name, ".json")
			if !ok {
				return
			}
			res, err := ix.p.readResult(job)
			ix.p.scanReads.Add(1)
			if err != nil {
				return
			}
			ix.results[job] = res
		},
		func(name string) {
			if job, ok := jobName(name, ".json"); ok {
				delete(ix.results, job)
			}
		})
}

// --- sweeps ---

func (ix *fleetIndex) refreshSweeps() {
	dir := filepath.Join(ix.p.opts.Dir, "sweeps")
	changed := false
	refreshDir(dir, ix.sweepMeta,
		func(name string) {
			sw, ok := jobName(name, ".json")
			if !ok {
				return
			}
			rec, err := ix.p.readSweepRecord(sw)
			ix.p.scanReads.Add(1)
			if err != nil {
				return
			}
			ix.sweeps[sw] = rec
			changed = true
		},
		func(name string) {
			if sw, ok := jobName(name, ".json"); ok {
				delete(ix.sweeps, sw)
				changed = true
			}
		})
	if changed {
		ix.sweepJobs = make(map[string]bool)
		for _, rec := range ix.sweeps {
			for _, job := range rec.Jobs {
				ix.sweepJobs[job] = true
			}
		}
	}
}

// --- peer heartbeats ---

func (ix *fleetIndex) refreshPeers() {
	dir := filepath.Join(ix.p.opts.Dir, "peers")
	refreshDir(dir, ix.peerMeta,
		func(name string) {
			id, ok := jobName(name, ".json")
			if !ok {
				return
			}
			hb, err := readHeartbeat(filepath.Join(dir, name))
			ix.p.scanReads.Add(1)
			if err != nil {
				return
			}
			ix.beats[id] = hb
		},
		func(name string) {
			if id, ok := jobName(name, ".json"); ok {
				delete(ix.beats, id)
			}
		})
}

// ownerCounts tallies live (unfinished) leases per owner from the
// cached view — the per-tick replacement for the direct scan in
// leaseCountsByOwner.
func (ix *fleetIndex) ownerCounts() map[string]int {
	counts := make(map[string]int)
	for job, l := range ix.leases {
		if _, done := ix.results[job]; done {
			continue // finished: the lease is a tombstone, not held work
		}
		counts[l.Owner]++
	}
	return counts
}
