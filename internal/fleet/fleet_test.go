package fleet

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"attila/internal/chaos"
	"attila/internal/jobd"
)

const testTTL = 300 * time.Millisecond

// fleetSpec mirrors the jobd test workload: multi-frame so quiesced
// checkpoints exist mid-run, small enough that a job finishes in
// well under a second.
func fleetSpec(name string) jobd.JobSpec {
	return jobd.JobSpec{
		Name: name, Config: "baseline", Workload: "simple",
		Width: 96, Height: 64, Frames: 3, Aniso: 2, Seed: 1,
		MaxCycles: 200_000_000, TimeoutSec: -1,
	}
}

func fleetSweep(name string, jobs ...string) jobd.SweepSpec {
	spec := jobd.SweepSpec{Name: name}
	for _, j := range jobs {
		spec.Jobs = append(spec.Jobs, fleetSpec(j))
	}
	return spec
}

var (
	measureOnce   sync.Once
	measureCycles int64
	measureErr    error
)

// measuredCycles runs the test workload once per binary to place
// chaos fault cycles and checkpoint intervals.
func measuredCycles(t *testing.T) int64 {
	t.Helper()
	measureOnce.Do(func() {
		dir, err := os.MkdirTemp("", "fleet-measure-*")
		if err != nil {
			measureErr = err
			return
		}
		defer os.RemoveAll(dir)
		st, err := jobd.RunSweep(context.Background(),
			jobd.Options{OutDir: dir, Workers: 1, Retries: -1},
			fleetSweep("measure", "measure-1"))
		if err != nil {
			measureErr = err
			return
		}
		measureCycles = st.Jobs[0].Cycles
	})
	if measureErr != nil {
		t.Fatalf("reference measurement failed: %v", measureErr)
	}
	if measureCycles <= 0 {
		t.Fatal("reference measurement reported zero cycles")
	}
	return measureCycles
}

// cleanReference runs the sweep on a plain single-host jobd server and
// returns its output directory — the byte-identity reference every
// fleet convergence test compares against.
func cleanReference(t *testing.T, spec jobd.SweepSpec) string {
	t.Helper()
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	if _, err := jobd.RunSweep(ctx, jobd.Options{OutDir: dir, Workers: 2, Retries: -1}, spec); err != nil {
		t.Fatalf("clean single-host sweep failed: %v", err)
	}
	return dir
}

// assertConverged compares every job CSV and the sweep summary between
// the clean single-host run and the fleet's shared out/ directory.
func assertConverged(t *testing.T, cleanDir, fleetDir string, spec jobd.SweepSpec) {
	t.Helper()
	outDir := filepath.Join(fleetDir, "out")
	for _, js := range spec.Jobs {
		want, err := os.ReadFile(filepath.Join(cleanDir, js.Name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(outDir, js.Name+".csv"))
		if err != nil {
			t.Fatalf("fleet output for %s missing: %v", js.Name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s.csv differs between fleet and clean single-host runs", js.Name)
		}
	}
	want, err := os.ReadFile(filepath.Join(cleanDir, spec.Name+"-summary.txt"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(outDir, spec.Name+"-summary.txt"))
	if err != nil {
		t.Fatalf("fleet summary missing: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("sweep summaries differ:\nclean:\n%s\nfleet:\n%s", want, got)
	}
}

func startPeer(t *testing.T, dir, id string, plan *chaos.ServerPlan, maxClaims int) *Peer {
	t.Helper()
	total := measuredCycles(t)
	p, err := NewPeer(Options{
		Dir: dir, PeerID: id, LeaseTTL: testTTL,
		Chaos: plan, MaxClaims: maxClaims,
		Jobd: jobd.Options{
			Workers: 1, Retries: -1,
			CheckpointInterval: total / 8,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFleetOfOneMatchesSingleHost: graceful degradation's base case —
// a fleet of one behaves exactly like a single-host job server, down
// to the output bytes.
func TestFleetOfOneMatchesSingleHost(t *testing.T) {
	spec := fleetSweep("solo", "solo-1", "solo-2")
	cleanDir := cleanReference(t, spec)

	dir := t.TempDir()
	p := startPeer(t, dir, "only", nil, 0)
	defer p.Close()
	if err := p.SubmitSweep(spec); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	res, err := p.WaitSweep(ctx, "solo")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.State != string(jobd.StateDone) {
			t.Errorf("job %s: state %s, want done", r.Name, r.State)
		}
		if r.Epoch != 1 {
			t.Errorf("job %s: epoch %d, want 1 (nothing to steal in a fleet of one)", r.Name, r.Epoch)
		}
	}
	assertConverged(t, cleanDir, dir, spec)
}

// TestFleetSmokeTwoPeers is the make fleet-smoke scenario: two
// in-process peers split a sweep, one is killed mid-run, the survivor
// steals its leases and the sweep still converges to clean bytes.
func TestFleetSmokeTwoPeers(t *testing.T) {
	spec := fleetSweep("smoke", "smoke-1", "smoke-2", "smoke-3")
	cleanDir := cleanReference(t, spec)

	dir := t.TempDir()
	a := startPeer(t, dir, "peer-a", nil, 1)
	defer a.Close()
	b := startPeer(t, dir, "peer-b", nil, 1)
	defer b.Close()
	if err := a.SubmitSweep(spec); err != nil {
		t.Fatal(err)
	}

	// Kill b the moment it is actually simulating something.
	deadline := time.Now().Add(time.Minute)
	killed := false
	for !killed {
		for _, st := range b.Server().Jobs() {
			if st.State == jobd.StateRunning && st.Cycle > 0 {
				t.Logf("killing peer-b while it runs %s at cycle %d", st.Name, st.Cycle)
				b.Kill()
				killed = true
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("peer-b never started running a job")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	res, err := a.WaitSweep(ctx, "smoke")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.State != string(jobd.StateDone) {
			t.Errorf("job %s: state %s, want done", r.Name, r.State)
		}
	}
	assertConverged(t, cleanDir, dir, spec)
}

// TestFleetLoseAllButOne: a three-peer fleet loses two members
// mid-sweep; the last peer steals everything and finishes with clean
// bytes — the strongest graceful-degradation case short of total loss.
func TestFleetLoseAllButOne(t *testing.T) {
	spec := fleetSweep("last1", "last1-1", "last1-2", "last1-3")
	cleanDir := cleanReference(t, spec)

	dir := t.TempDir()
	a := startPeer(t, dir, "peer-a", nil, 1)
	defer a.Close()
	b := startPeer(t, dir, "peer-b", nil, 1)
	defer b.Close()
	c := startPeer(t, dir, "peer-c", nil, 1)
	defer c.Close()
	if err := a.SubmitSweep(spec); err != nil {
		t.Fatal(err)
	}

	// Let the sweep get going, then kill b and c outright.
	deadline := time.Now().Add(time.Minute)
	for {
		running := 0
		for _, p := range []*Peer{a, b, c} {
			for _, st := range p.Server().Jobs() {
				if st.State == jobd.StateRunning && st.Cycle > 0 {
					running++
				}
			}
		}
		if running >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never spread across the fleet")
		}
		time.Sleep(5 * time.Millisecond)
	}
	b.Kill()
	c.Kill()

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	res, err := a.WaitSweep(ctx, "last1")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.State != string(jobd.StateDone) {
			t.Errorf("job %s: state %s, want done", r.Name, r.State)
		}
	}
	assertConverged(t, cleanDir, dir, spec)
}

// TestFleetChaosConvergence is the acceptance gate: a seeded 3-peer
// fleet run under the full fleet chaos plan — one host killed
// mid-job, another's heartbeats paused past the lease TTL, and one
// job's lease yanked out from under its owner — must converge to
// sweep outputs byte-identical to a clean single-host run.
func TestFleetChaosConvergence(t *testing.T) {
	total := measuredCycles(t)
	spec := fleetSweep("conv3", "conv3-1", "conv3-2", "conv3-3", "conv3-4")
	cleanDir := cleanReference(t, spec)

	mid := strconv.FormatInt(total/3, 10)
	plan, err := chaos.ParseServer(
		"seed=11,killhost=peer-b@" + mid +
			",pauseheart=peer-c@" + mid + ":900ms" +
			",leaseyank=conv3-4")
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	a := startPeer(t, dir, "peer-a", plan, 1)
	defer a.Close()
	b := startPeer(t, dir, "peer-b", plan, 1)
	defer b.Close()
	c := startPeer(t, dir, "peer-c", plan, 1)
	defer c.Close()
	if err := a.SubmitSweep(spec); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	res, err := a.WaitSweep(ctx, "conv3")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.State != string(jobd.StateDone) {
			t.Errorf("job %s: state %s, want done (peer %s, epoch %d)", r.Name, r.State, r.Peer, r.Epoch)
		}
	}

	// The faults must actually have fired; a run where nothing went
	// wrong proves nothing.
	if !b.Server().Killed() {
		t.Error("killhost never fired: peer-b survived the whole sweep")
	}
	c.mu.Lock()
	paused := c.pauseFired
	c.mu.Unlock()
	if !paused {
		t.Error("pauseheart never fired on peer-c")
	}
	yanked := false
	for _, p := range []*Peer{a, b, c} {
		p.mu.Lock()
		yanked = yanked || p.yankFired
		p.mu.Unlock()
	}
	if !yanked {
		t.Error("leaseyank never fired for conv3-4")
	}
	// At least one job must have changed hands (epoch > 1): the kill
	// guarantees peer-b's claim was stolen.
	stolen := 0
	for _, r := range res.Rows {
		if r.Epoch > 1 {
			stolen++
		}
	}
	if stolen == 0 {
		t.Error("no job was ever stolen despite a killed host")
	}

	assertConverged(t, cleanDir, dir, spec)
}

// TestFleetPeersEndpoint: the failure detector sees a killed peer go
// suspect and then dead, and /fleet/peers reports it.
func TestFleetPeersEndpoint(t *testing.T) {
	dir := t.TempDir()
	a := startPeer(t, dir, "peer-a", nil, 1)
	defer a.Close()
	b := startPeer(t, dir, "peer-b", nil, 1)
	defer b.Close()

	// a must first see b alive.
	deadline := time.Now().Add(time.Minute)
	for {
		peers := a.Peers()
		if len(peers) == 1 && peers[0].ID == "peer-b" && peers[0].State == PeerAlive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer-a never saw peer-b alive: %+v", peers)
		}
		time.Sleep(10 * time.Millisecond)
	}

	b.Kill()
	for {
		peers := a.Peers()
		if len(peers) == 1 && (peers[0].State == PeerDead || peers[0].State == PeerReclaimed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer-a never declared peer-b dead: %+v", peers)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
