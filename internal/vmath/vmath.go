// Package vmath provides the 4-component 32-bit float vector and 4x4
// matrix math used throughout the simulator. All GPU-internal data is
// held in Vec4 values (the paper's "internal format: 4 component 32
// bit float point vectors").
package vmath

import "math"

// Vec4 is a 4-component float32 vector (x, y, z, w).
type Vec4 [4]float32

// X, Y, Z and W return the named component.
func (v Vec4) X() float32 { return v[0] }

// Y returns the second component.
func (v Vec4) Y() float32 { return v[1] }

// Z returns the third component.
func (v Vec4) Z() float32 { return v[2] }

// W returns the fourth component.
func (v Vec4) W() float32 { return v[3] }

// Add returns v + o componentwise.
func (v Vec4) Add(o Vec4) Vec4 {
	return Vec4{v[0] + o[0], v[1] + o[1], v[2] + o[2], v[3] + o[3]}
}

// Sub returns v - o componentwise.
func (v Vec4) Sub(o Vec4) Vec4 {
	return Vec4{v[0] - o[0], v[1] - o[1], v[2] - o[2], v[3] - o[3]}
}

// Mul returns v * o componentwise.
func (v Vec4) Mul(o Vec4) Vec4 {
	return Vec4{v[0] * o[0], v[1] * o[1], v[2] * o[2], v[3] * o[3]}
}

// Scale returns v * s.
func (v Vec4) Scale(s float32) Vec4 {
	return Vec4{v[0] * s, v[1] * s, v[2] * s, v[3] * s}
}

// Dot3 returns the 3-component dot product.
func (v Vec4) Dot3(o Vec4) float32 {
	return v[0]*o[0] + v[1]*o[1] + v[2]*o[2]
}

// Dot4 returns the 4-component dot product.
func (v Vec4) Dot4(o Vec4) float32 {
	return v[0]*o[0] + v[1]*o[1] + v[2]*o[2] + v[3]*o[3]
}

// Cross returns the 3-component cross product (w = 0).
func (v Vec4) Cross(o Vec4) Vec4 {
	return Vec4{
		v[1]*o[2] - v[2]*o[1],
		v[2]*o[0] - v[0]*o[2],
		v[0]*o[1] - v[1]*o[0],
		0,
	}
}

// Length3 returns the euclidean length of the xyz part.
func (v Vec4) Length3() float32 {
	return float32(math.Sqrt(float64(v.Dot3(v))))
}

// Normalize3 returns v with its xyz part scaled to unit length; w is
// preserved. The zero vector is returned unchanged.
func (v Vec4) Normalize3() Vec4 {
	l := v.Length3()
	if l == 0 {
		return v
	}
	inv := 1 / l
	return Vec4{v[0] * inv, v[1] * inv, v[2] * inv, v[3]}
}

// Clamp01 clamps every component to [0, 1].
func (v Vec4) Clamp01() Vec4 {
	return Vec4{clamp01(v[0]), clamp01(v[1]), clamp01(v[2]), clamp01(v[3])}
}

func clamp01(f float32) float32 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Clamp01 clamps a scalar to [0, 1].
func Clamp01(f float32) float32 { return clamp01(f) }

// Lerp returns a + t*(b-a) componentwise.
func Lerp(a, b Vec4, t float32) Vec4 {
	return a.Add(b.Sub(a).Scale(t))
}

// Mat4 is a 4x4 float32 matrix in row-major order: m[row][col].
type Mat4 [4]Vec4

// Identity returns the identity matrix.
func Identity() Mat4 {
	return Mat4{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 1, 0},
		{0, 0, 0, 1},
	}
}

// MulVec returns m * v (v as a column vector).
func (m Mat4) MulVec(v Vec4) Vec4 {
	return Vec4{m[0].Dot4(v), m[1].Dot4(v), m[2].Dot4(v), m[3].Dot4(v)}
}

// Mul returns the matrix product m * o.
func (m Mat4) Mul(o Mat4) Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s float32
			for k := 0; k < 4; k++ {
				s += m[i][k] * o[k][j]
			}
			r[i][j] = s
		}
	}
	return r
}

// Transpose returns the transposed matrix.
func (m Mat4) Transpose() Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			r[i][j] = m[j][i]
		}
	}
	return r
}

// Row returns row i as a Vec4 (useful for loading matrices into
// shader constant banks as four DP4 rows).
func (m Mat4) Row(i int) Vec4 { return m[i] }

// Translate returns a translation matrix.
func Translate(x, y, z float32) Mat4 {
	m := Identity()
	m[0][3], m[1][3], m[2][3] = x, y, z
	return m
}

// ScaleM returns a scaling matrix.
func ScaleM(x, y, z float32) Mat4 {
	var m Mat4
	m[0][0], m[1][1], m[2][2], m[3][3] = x, y, z, 1
	return m
}

// RotateY returns a rotation matrix about the Y axis (radians).
func RotateY(rad float32) Mat4 {
	s := float32(math.Sin(float64(rad)))
	c := float32(math.Cos(float64(rad)))
	m := Identity()
	m[0][0], m[0][2] = c, s
	m[2][0], m[2][2] = -s, c
	return m
}

// RotateX returns a rotation matrix about the X axis (radians).
func RotateX(rad float32) Mat4 {
	s := float32(math.Sin(float64(rad)))
	c := float32(math.Cos(float64(rad)))
	m := Identity()
	m[1][1], m[1][2] = c, -s
	m[2][1], m[2][2] = s, c
	return m
}

// Perspective returns an OpenGL-style perspective projection matrix.
// fovy is in radians; near and far are positive distances.
func Perspective(fovy, aspect, near, far float32) Mat4 {
	f := float32(1 / math.Tan(float64(fovy)/2))
	var m Mat4
	m[0][0] = f / aspect
	m[1][1] = f
	m[2][2] = (far + near) / (near - far)
	m[2][3] = 2 * far * near / (near - far)
	m[3][2] = -1
	return m
}

// LookAt returns a view matrix for an eye position looking at a
// target with the given up direction.
func LookAt(eye, center, up Vec4) Mat4 {
	f := center.Sub(eye).Normalize3()
	s := f.Cross(up).Normalize3()
	u := s.Cross(f)
	m := Mat4{
		{s[0], s[1], s[2], -s.Dot3(eye)},
		{u[0], u[1], u[2], -u.Dot3(eye)},
		{-f[0], -f[1], -f[2], f.Dot3(eye)},
		{0, 0, 0, 1},
	}
	return m
}

// Ortho returns an orthographic projection matrix.
func Ortho(left, right, bottom, top, near, far float32) Mat4 {
	var m Mat4
	m[0][0] = 2 / (right - left)
	m[0][3] = -(right + left) / (right - left)
	m[1][1] = 2 / (top - bottom)
	m[1][3] = -(top + bottom) / (top - bottom)
	m[2][2] = -2 / (far - near)
	m[2][3] = -(far + near) / (far - near)
	m[3][3] = 1
	return m
}
