package vmath

import (
	"math"
	"testing"
	"testing/quick"
)

func nearf(a, b float32) bool { return math.Abs(float64(a-b)) < 1e-5 }

func vecNear(a, b Vec4, eps float64) bool {
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > eps {
			return false
		}
	}
	return true
}

func TestVecOps(t *testing.T) {
	a := Vec4{1, 2, 3, 4}
	b := Vec4{5, 6, 7, 8}
	if got := a.Add(b); got != (Vec4{6, 8, 10, 12}) {
		t.Fatalf("Add: %v", got)
	}
	if got := b.Sub(a); got != (Vec4{4, 4, 4, 4}) {
		t.Fatalf("Sub: %v", got)
	}
	if got := a.Mul(b); got != (Vec4{5, 12, 21, 32}) {
		t.Fatalf("Mul: %v", got)
	}
	if got := a.Dot3(b); got != 38 {
		t.Fatalf("Dot3: %v", got)
	}
	if got := a.Dot4(b); got != 70 {
		t.Fatalf("Dot4: %v", got)
	}
	if got := a.Scale(2); got != (Vec4{2, 4, 6, 8}) {
		t.Fatalf("Scale: %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float32) bool {
		// Keep inputs in a range where float32 products don't
		// overflow; quick generates values up to ~1e38.
		cl := func(x float32) float32 {
			if x != x {
				return 0
			}
			for x > 1e4 || x < -1e4 {
				x /= 1e4
			}
			return x
		}
		a := Vec4{cl(ax), cl(ay), cl(az), 0}
		b := Vec4{cl(bx), cl(by), cl(bz), 0}
		c := a.Cross(b)
		// Cross product is orthogonal to both inputs (within fp
		// tolerance scaled by magnitudes).
		tol := 1e-3 * (1 + float64(a.Length3())*float64(b.Length3()))
		return math.Abs(float64(c.Dot3(a))) <= tol && math.Abs(float64(c.Dot3(b))) <= tol
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize3(t *testing.T) {
	v := Vec4{3, 4, 0, 9}.Normalize3()
	if !nearf(v.Length3(), 1) {
		t.Fatalf("length: %v", v.Length3())
	}
	if v[3] != 9 {
		t.Fatalf("w not preserved: %v", v)
	}
	zero := Vec4{}
	if zero.Normalize3() != zero {
		t.Fatal("zero vector changed by Normalize3")
	}
}

func TestClamp(t *testing.T) {
	v := Vec4{-1, 0.5, 2, 1}.Clamp01()
	if v != (Vec4{0, 0.5, 1, 1}) {
		t.Fatalf("Clamp01: %v", v)
	}
}

func TestLerp(t *testing.T) {
	a := Vec4{0, 0, 0, 0}
	b := Vec4{2, 4, 6, 8}
	if got := Lerp(a, b, 0.5); got != (Vec4{1, 2, 3, 4}) {
		t.Fatalf("Lerp: %v", got)
	}
	if Lerp(a, b, 0) != a || Lerp(a, b, 1) != b {
		t.Fatal("Lerp endpoints wrong")
	}
}

func TestMatIdentity(t *testing.T) {
	v := Vec4{1, 2, 3, 1}
	if got := Identity().MulVec(v); got != v {
		t.Fatalf("Identity.MulVec: %v", got)
	}
	m := Translate(1, 2, 3)
	if got := m.MulVec(Vec4{0, 0, 0, 1}); got != (Vec4{1, 2, 3, 1}) {
		t.Fatalf("Translate: %v", got)
	}
}

func TestMatMulAssociativityWithVec(t *testing.T) {
	f := func(tx, ty, tz, ang float32) bool {
		if ang != ang || tx != tx || ty != ty || tz != tz { // NaN guard
			return true
		}
		// Keep magnitudes sane for fp comparison.
		clampf := func(x float32) float32 {
			if x > 100 {
				return 100
			}
			if x < -100 {
				return -100
			}
			return x
		}
		tx, ty, tz = clampf(tx), clampf(ty), clampf(tz)
		ang = float32(math.Mod(float64(ang), math.Pi*2))
		a := Translate(tx, ty, tz)
		b := RotateY(ang)
		v := Vec4{1, 2, 3, 1}
		lhs := a.Mul(b).MulVec(v)
		rhs := a.MulVec(b.MulVec(v))
		return vecNear(lhs, rhs, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := Perspective(1.0, 1.333, 0.1, 100)
	if m.Transpose().Transpose() != m {
		t.Fatal("transpose not an involution")
	}
}

func TestPerspectiveMapsNearFar(t *testing.T) {
	near, far := float32(1), float32(101)
	m := Perspective(math.Pi/2, 1, near, far)
	// Point on the near plane maps to z_ndc = -1, far plane to +1.
	pn := m.MulVec(Vec4{0, 0, -near, 1})
	pf := m.MulVec(Vec4{0, 0, -far, 1})
	if !nearf(pn[2]/pn[3], -1) {
		t.Fatalf("near plane z: %v", pn[2]/pn[3])
	}
	if !nearf(pf[2]/pf[3], 1) {
		t.Fatalf("far plane z: %v", pf[2]/pf[3])
	}
}

func TestLookAtMapsEyeToOrigin(t *testing.T) {
	eye := Vec4{5, 3, 8, 1}
	m := LookAt(eye, Vec4{0, 0, 0, 1}, Vec4{0, 1, 0, 0})
	p := m.MulVec(eye)
	if !vecNear(p, Vec4{0, 0, 0, 1}, 1e-4) {
		t.Fatalf("eye maps to %v", p)
	}
	// The target should land on the -Z axis.
	q := m.MulVec(Vec4{0, 0, 0, 1})
	if !nearf(q[0], 0) || !nearf(q[1], 0) || q[2] >= 0 {
		t.Fatalf("target maps to %v", q)
	}
}

func TestOrthoMapsCorners(t *testing.T) {
	m := Ortho(-2, 2, -1, 1, 0, 10)
	p := m.MulVec(Vec4{2, 1, -10, 1})
	if !vecNear(p, Vec4{1, 1, 1, 1}, 1e-5) {
		t.Fatalf("corner maps to %v", p)
	}
}

func TestScaleM(t *testing.T) {
	m := ScaleM(2, 3, 4)
	if got := m.MulVec(Vec4{1, 1, 1, 1}); got != (Vec4{2, 3, 4, 1}) {
		t.Fatalf("ScaleM: %v", got)
	}
}

func TestRotateXPreservesX(t *testing.T) {
	m := RotateX(math.Pi / 2)
	got := m.MulVec(Vec4{0, 1, 0, 1})
	if !vecNear(got, Vec4{0, 0, 1, 1}, 1e-6) {
		t.Fatalf("RotateX(pi/2) of +Y: %v", got)
	}
	got = m.MulVec(Vec4{5, 0, 0, 1})
	if !vecNear(got, Vec4{5, 0, 0, 1}, 1e-6) {
		t.Fatalf("RotateX must keep X: %v", got)
	}
}

func TestRotationsPreserveLengthProperty(t *testing.T) {
	f := func(ang float32, x, y, z float32) bool {
		cl := func(v float32) float32 {
			if v != v || v > 1e3 || v < -1e3 {
				return 1
			}
			return v
		}
		x, y, z = cl(x), cl(y), cl(z)
		ang = float32(math.Mod(float64(cl(ang)), math.Pi*2))
		v := Vec4{x, y, z, 0}
		for _, m := range []Mat4{RotateX(ang), RotateY(ang)} {
			r := m.MulVec(v)
			if math.Abs(float64(r.Length3()-v.Length3())) > 1e-2*(1+float64(v.Length3())) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRowAccess(t *testing.T) {
	m := Translate(1, 2, 3)
	if m.Row(0) != (Vec4{1, 0, 0, 1}) {
		t.Fatalf("Row(0): %v", m.Row(0))
	}
}
