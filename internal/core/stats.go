package core

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Stat is one named statistic collected during simulation. Stats are
// registered with a StatManager, which snapshots them at a sampling
// interval and dumps a CSV with one column per stat (the paper's
// ~300-statistic CSV output).
type Stat interface {
	// StatName returns the fully qualified name, conventionally
	// "Box.metric".
	StatName() string
	// Value returns the current cumulative value.
	Value() float64
}

// Counter is a monotonically increasing statistic (events, cycles
// busy, bytes transferred). The zero value is unusable; create
// counters through StatManager.Counter so they are registered.
type Counter struct {
	name string
	v    float64
}

// StatName implements Stat.
func (c *Counter) StatName() string { return c.name }

// Value implements Stat.
func (c *Counter) Value() float64 { return c.v }

// Inc adds 1.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n float64) { c.v += n }

// Shadow is a counter embedded by value in its owning box: the hot
// path increments a plain struct field (same cache lines as the rest
// of the box state, no pointer chase to a separately allocated heap
// Counter per event), and the per-cycle delta is folded into the
// cumulative value once at the simulator's barrier
// (StatManager.FoldShadows).
//
// Value always includes the unfolded delta, so readers (the
// watchdog's ProgressReporter counters, BusyCycles, the command
// processor's frame count, Lookup in manual-clock test harnesses) see
// exact values whether or not the fold for the current cycle has
// happened yet. Counts are integers well below 2^53, so fold-once-
// per-cycle is bit-identical to per-event increments.
//
// Like Counter, a Shadow is mutated only by its owning box and read
// at the cycle barrier, so parallel simulation needs no locking.
type Shadow struct {
	name string
	v    float64 // folded cumulative value, authoritative at barriers
	n    float64 // pending delta since the last fold
}

// StatName implements Stat.
func (s *Shadow) StatName() string { return s.name }

// Value returns the cumulative value including the unfolded delta.
func (s *Shadow) Value() float64 { return s.v + s.n }

// Inc adds 1 to the local delta.
func (s *Shadow) Inc() { s.n++ }

// Add adds n to the local delta.
func (s *Shadow) Add(v float64) { s.n += v }

// Gauge is a statistic that records the latest and maximum observed
// value (queue occupancies, threads in flight).
type Gauge struct {
	name string
	v    float64
	max  float64
}

// StatName implements Stat.
func (g *Gauge) StatName() string { return g.name }

// Value implements Stat.
func (g *Gauge) Value() float64 { return g.v }

// Max returns the largest value ever set.
func (g *Gauge) Max() float64 { return g.max }

// Set records the current value.
func (g *Gauge) Set(v float64) {
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// StatManager registers statistics and produces the CSV output. A
// sample records, for each counter, the delta of its value over the
// sampling interval (so utilization-style plots fall directly out of
// counters); gauges are sampled by value, since a delta of a sampled
// quantity is meaningless. Cumulative values remain available at end
// of run.
//
// Stats are mutated by their owning box and sampled at the cycle
// barrier, so no locking is needed in parallel simulation mode.
type StatManager struct {
	stats    []Stat
	byName   map[string]Stat
	interval int64
	rows     []sampleRow
	last     []float64
	shadows  []*Shadow

	lastSample int64
	hasSample  bool
}

type sampleRow struct {
	cycle  int64
	deltas []float64
}

// NewStatManager creates a manager sampling every interval cycles.
// Pass interval 0 to disable interval sampling (cumulative values are
// still available).
func NewStatManager(interval int64) *StatManager {
	return &StatManager{byName: make(map[string]Stat), interval: interval}
}

// Counter creates and registers a Counter with the given name. The
// name must be unique.
func (m *StatManager) Counter(name string) *Counter {
	c := &Counter{name: name}
	m.register(c)
	return c
}

// ShadowCounter registers sh under the given name. sh must be a
// field of the owning box (its address must stay stable for the life
// of the manager — never a reallocating slice element).
func (m *StatManager) ShadowCounter(sh *Shadow, name string) {
	*sh = Shadow{name: name}
	m.register(sh)
	m.shadows = append(m.shadows, sh)
}

// FoldShadows folds every shadow's pending delta into its cumulative
// value. The simulator calls it at each cycle barrier; extra calls
// are harmless no-ops, and Shadow.Value is exact either way — the
// fold only guarantees checkpoints snapshot with zero pending delta.
func (m *StatManager) FoldShadows() {
	for _, sh := range m.shadows {
		if sh.n != 0 {
			sh.v += sh.n
			sh.n = 0
		}
	}
}

// Gauge creates and registers a Gauge with the given name.
func (m *StatManager) Gauge(name string) *Gauge {
	g := &Gauge{name: name}
	m.register(g)
	return g
}

func (m *StatManager) register(s Stat) {
	if _, dup := m.byName[s.StatName()]; dup {
		panic(fmt.Sprintf("stat %q registered twice", s.StatName()))
	}
	m.byName[s.StatName()] = s
	m.stats = append(m.stats, s)
	m.last = append(m.last, 0)
}

// Snapshot returns the cumulative value of every stat by name, for
// embedding in crash reports.
func (m *StatManager) Snapshot() map[string]float64 {
	out := make(map[string]float64, len(m.stats))
	for _, s := range m.stats {
		out[s.StatName()] = s.Value()
	}
	return out
}

// Lookup returns the stat registered under name, or nil.
func (m *StatManager) Lookup(name string) Stat { return m.byName[name] }

// Names returns all registered stat names, sorted.
func (m *StatManager) Names() []string {
	out := make([]string, 0, len(m.stats))
	for _, s := range m.stats {
		out = append(out, s.StatName())
	}
	sort.Strings(out)
	return out
}

// Tick is called once per cycle and records a sample row whenever the
// sampling interval elapses.
func (m *StatManager) Tick(cycle int64) { m.TickBatch(cycle, cycle) }

// TickBatch is the batched form of Tick, called by the simulator at
// each full sync covering cycles [first, last]: it records one sample
// row when the batch contains a sampling boundary. With first == last
// it is exactly Tick; with skew batching the row is stamped at the
// batch's last cycle, identically in serial and parallel mode (batch
// boundaries are derived from the topology, not the worker count).
func (m *StatManager) TickBatch(first, last int64) {
	if m.interval <= 0 {
		return
	}
	// A boundary k*interval (k >= 1) lies in [first, last] exactly
	// when the interval count advances across the batch; prev clamps
	// at 0 so the cycle-0 pseudo-boundary never counts.
	prev := first - 1
	if prev < 0 {
		prev = 0
	}
	if last/m.interval > prev/m.interval {
		m.sample(last)
	}
}

// Flush records a final partial sample covering the cycles since the
// last boundary. cycle is the simulator's cycle *count* — one past
// the last executed cycle — so the row is stamped cycle-1, the cycle
// the stats (gauges in particular) were actually last mutated at; a
// run whose length is not a multiple of the interval used to stamp
// its partial row one cycle past the end of the run. When the run
// ended on a sampling boundary, the boundary sample already covers
// every completed cycle and Flush skips the redundant row.
func (m *StatManager) Flush(cycle int64) {
	if m.interval <= 0 || cycle <= 0 {
		return
	}
	last := cycle - 1
	if m.hasSample && last <= m.lastSample {
		return
	}
	m.sample(last)
}

func (m *StatManager) sample(cycle int64) {
	row := sampleRow{cycle: cycle, deltas: make([]float64, len(m.stats))}
	for i, s := range m.stats {
		v := s.Value()
		if _, byValue := s.(*Gauge); byValue {
			row.deltas[i] = v
		} else {
			row.deltas[i] = v - m.last[i]
		}
		m.last[i] = v
	}
	m.rows = append(m.rows, row)
	m.lastSample = cycle
	m.hasSample = true
}

// Samples returns the recorded samples for one stat — per-interval
// deltas for counters, instantaneous values for gauges — with the
// cycle at which each sample was taken.
func (m *StatManager) Samples(name string) (cycles []int64, deltas []float64) {
	idx := -1
	for i, s := range m.stats {
		if s.StatName() == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, nil
	}
	for _, r := range m.rows {
		cycles = append(cycles, r.cycle)
		deltas = append(deltas, r.deltas[idx])
	}
	return cycles, deltas
}

// WriteCSV dumps all interval samples: header row of stat names, then
// one row per sample (counter deltas, gauge values).
func (m *StatManager) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("cycle")
	for _, s := range m.stats {
		sb.WriteByte(',')
		sb.WriteString(s.StatName())
	}
	sb.WriteByte('\n')
	for _, r := range m.rows {
		sb.WriteString(strconv.FormatInt(r.cycle, 10))
		for _, d := range r.deltas {
			sb.WriteByte(',')
			sb.WriteString(strconv.FormatFloat(d, 'g', -1, 64))
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteSummary dumps the cumulative value of every stat, one per
// line, sorted by name.
func (m *StatManager) WriteSummary(w io.Writer) error {
	names := m.Names()
	var sb strings.Builder
	for _, n := range names {
		fmt.Fprintf(&sb, "%s,%g\n", n, m.byName[n].Value())
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
