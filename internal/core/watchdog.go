package core

import (
	"errors"
	"fmt"
	"strings"
)

// ProgressReporter is implemented by boxes whose forward progress is
// not fully visible as signal traffic (cache-resident texture
// filtering, fast-clear block state updates, command stream
// advancement). The returned counter must be non-decreasing while the
// box makes progress; the watchdog treats any change as activity.
type ProgressReporter interface {
	ProgressCount() int64
}

// QueueStat describes one internal queue or credit pool of a box for
// the deadlock report: Occupied items out of Capacity slots. An
// output-flow credit pool reports the credits held downstream, so
// Occupied == Capacity reads as "consumer has absorbed the whole
// queue and released nothing".
type QueueStat struct {
	Name     string `json:"name"`
	Occupied int    `json:"occupied"`
	Capacity int    `json:"capacity"`
}

// StallReporter is implemented by boxes that can describe their
// internal queue and credit occupancy. The watchdog collects these
// snapshots into the deadlock report; they are read at the cycle
// barrier, never concurrently with box clocks.
type StallReporter interface {
	Queues() []QueueStat
}

// BusyReporter is implemented by boxes that count the cycles they did
// useful work. The observability layer (internal/obsv) derives
// per-box utilization from the counter's per-window delta. Like the
// other reporter interfaces it is read only at the cycle barrier.
type BusyReporter interface {
	BusyCycles() float64
}

// SignalState is the deadlock-report snapshot of one signal with
// unconsumed objects.
type SignalState struct {
	Name     string   `json:"name"`
	Produced uint64   `json:"produced"`
	Consumed uint64   `json:"consumed"`
	InFlight []string `json:"inFlight,omitempty"` // "tag#id @arrival" per stuck object
}

// BoxState is the deadlock-report snapshot of one box's queues.
type BoxState struct {
	Name   string      `json:"name"`
	Queues []QueueStat `json:"queues"`
}

// ActivitySample records one cycle of signal traffic, for the
// trailing activity window of the deadlock report.
type ActivitySample struct {
	Cycle    int64  `json:"cycle"`
	Produced uint64 `json:"produced"` // objects written this cycle
	Consumed uint64 `json:"consumed"` // objects read this cycle
}

// DeadlockReport is the structured diagnosis the watchdog produces
// when no box makes forward progress for a full window: which signals
// hold unconsumed objects, what every stalled box's queues and credit
// pools look like, and the trailing per-cycle traffic so the moment
// activity died is visible.
type DeadlockReport struct {
	Cycle  int64            `json:"cycle"`  // cycle the watchdog fired
	Since  int64            `json:"since"`  // last cycle with observed progress
	Window int64            `json:"window"` // configured no-progress window
	Signal []SignalState    `json:"signals,omitempty"`
	Boxes  []BoxState       `json:"boxes,omitempty"`
	Recent []ActivitySample `json:"recent,omitempty"`
}

// String renders the report for humans, one finding per line.
func (r *DeadlockReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "deadlock: no forward progress for %d cycles (last progress at cycle %d, aborted at %d)\n",
		r.Cycle-r.Since, r.Since, r.Cycle)
	if len(r.Signal) > 0 {
		sb.WriteString("signals with unconsumed objects:\n")
		for _, s := range r.Signal {
			fmt.Fprintf(&sb, "  %-32s produced=%d consumed=%d stuck=%d",
				s.Name, s.Produced, s.Consumed, s.Produced-s.Consumed)
			if len(s.InFlight) > 0 {
				fmt.Fprintf(&sb, "  [%s]", strings.Join(s.InFlight, " "))
			}
			sb.WriteByte('\n')
		}
	}
	if len(r.Boxes) > 0 {
		sb.WriteString("stalled box queues and credit pools:\n")
		for _, b := range r.Boxes {
			fmt.Fprintf(&sb, "  %s\n", b.Name)
			for _, q := range b.Queues {
				if q.Capacity > 0 {
					fmt.Fprintf(&sb, "    %-32s %d/%d\n", q.Name, q.Occupied, q.Capacity)
				} else {
					// Capacity <= 0: unbounded or unknown.
					fmt.Fprintf(&sb, "    %-32s %d\n", q.Name, q.Occupied)
				}
			}
		}
	}
	if n := len(r.Recent); n > 0 {
		first, last := r.Recent[0], r.Recent[n-1]
		fmt.Fprintf(&sb, "trailing traffic (cycles %d..%d): ", first.Cycle, last.Cycle)
		for i, a := range r.Recent {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d/%d", a.Produced, a.Consumed)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ErrDeadlock matches (via errors.Is) the error Run returns when the
// progress watchdog fires.
var ErrDeadlock = errors.New("core: pipeline deadlock")

// DeadlockError carries the watchdog's structured report out of Run.
type DeadlockError struct {
	Report *DeadlockReport
}

// Error implements error; the full report is in Report.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("core: pipeline deadlock: no forward progress between cycles %d and %d (window %d)",
		e.Report.Since, e.Report.Cycle, e.Report.Window)
}

// Unwrap makes errors.Is(err, ErrDeadlock) true.
func (e *DeadlockError) Unwrap() error { return ErrDeadlock }

// recentWindow is how many trailing cycles of traffic the report
// keeps.
const recentWindow = 32

// watchdog tracks per-cycle forward progress: total signal traffic
// plus every ProgressReporter box's counter. It runs on the
// coordinating goroutine at the cycle barrier.
type watchdog struct {
	window    int64
	signals   []*Signal
	reporters []ProgressReporter

	lastTotal    uint64
	lastProgress int64
	prevProd     uint64
	prevCons     uint64
	recent       []ActivitySample

	// restored marks fingerprint state loaded from a checkpoint; the
	// next reset keeps it so the restored run's progress view (and the
	// metrics bus watchdog fields derived from it) matches the
	// uninterrupted run's.
	restored bool
}

// reset captures the signal and reporter sets at the start of Run.
func (w *watchdog) reset(s *Simulator) {
	w.signals = s.Binder.Signals()
	w.reporters = w.reporters[:0]
	for _, b := range s.boxes {
		if r, ok := b.(ProgressReporter); ok {
			w.reporters = append(w.reporters, r)
		}
	}
	if w.restored {
		w.restored = false
		w.recent = w.recent[:0]
		return
	}
	w.lastProgress = s.cycle
	w.lastTotal = 0
	w.prevProd, w.prevCons = 0, 0
	w.recent = w.recent[:0]
}

// check runs once per cycle after the barrier. It returns a report
// when no progress has been observed for a full window.
func (w *watchdog) check(s *Simulator, cycle int64) *DeadlockReport {
	var prod, cons uint64
	for _, sig := range w.signals {
		p, c := sig.Traffic()
		prod += p
		cons += c
	}
	total := prod + cons
	for _, r := range w.reporters {
		total += uint64(r.ProgressCount())
	}
	w.recent = append(w.recent, ActivitySample{
		Cycle: cycle, Produced: prod - w.prevProd, Consumed: cons - w.prevCons,
	})
	if len(w.recent) > recentWindow {
		w.recent = w.recent[1:]
	}
	w.prevProd, w.prevCons = prod, cons
	if total != w.lastTotal {
		w.lastTotal = total
		w.lastProgress = cycle
		return nil
	}
	if cycle-w.lastProgress < w.window {
		return nil
	}
	return w.report(s, cycle)
}

func (w *watchdog) report(s *Simulator, cycle int64) *DeadlockReport {
	r := &DeadlockReport{
		Cycle:  cycle,
		Since:  w.lastProgress,
		Window: w.window,
		Recent: append([]ActivitySample(nil), w.recent...),
	}
	for _, sig := range w.signals {
		if !sig.Pending() {
			continue
		}
		p, c := sig.Traffic()
		r.Signal = append(r.Signal, SignalState{
			Name: sig.Name(), Produced: p, Consumed: c, InFlight: sig.InFlight(),
		})
	}
	for _, b := range s.boxes {
		sr, ok := b.(StallReporter)
		if !ok {
			continue
		}
		qs := sr.Queues()
		occupied := false
		for _, q := range qs {
			if q.Occupied > 0 {
				occupied = true
				break
			}
		}
		if !occupied {
			continue
		}
		r.Boxes = append(r.Boxes, BoxState{Name: b.BoxName(), Queues: qs})
	}
	return r
}
