package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// SigTraceWriter dumps every object leaving a signal as one line of a
// signal trace file, the input to the Signal Trace Visualizer
// (cmd/sigtrace). Format, one record per line:
//
//	cycle;signal;id;parent;color;tag
type SigTraceWriter struct {
	w   *bufio.Writer
	err error
}

// NewSigTraceWriter wraps w. Call Close to flush.
func NewSigTraceWriter(w io.Writer) *SigTraceWriter {
	return &SigTraceWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// Trace implements Tracer.
func (t *SigTraceWriter) Trace(cycle int64, signal string, obj *DynObject) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, "%d;%s;%d;%d;%d;%s\n",
		cycle, signal, obj.ID, obj.Parent, obj.Color, obj.Tag)
}

// Close flushes buffered records and returns the first write error.
func (t *SigTraceWriter) Close() error {
	if err := t.w.Flush(); t.err == nil {
		t.err = err
	}
	return t.err
}

// SigTraceRecord is one parsed line of a signal trace file.
type SigTraceRecord struct {
	Cycle  int64
	Signal string
	ID     uint64
	Parent uint64
	Color  uint32
	Tag    string
}

// ReadSigTrace parses a signal trace stream produced by
// SigTraceWriter.
func ReadSigTrace(r io.Reader) ([]SigTraceRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var out []SigTraceRecord
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, ";", 6)
		if len(parts) != 6 {
			return nil, fmt.Errorf("sigtrace line %d: want 6 fields, got %d", line, len(parts))
		}
		var rec SigTraceRecord
		var err error
		if rec.Cycle, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
			return nil, fmt.Errorf("sigtrace line %d: cycle: %v", line, err)
		}
		rec.Signal = parts[1]
		if rec.ID, err = strconv.ParseUint(parts[2], 10, 64); err != nil {
			return nil, fmt.Errorf("sigtrace line %d: id: %v", line, err)
		}
		if rec.Parent, err = strconv.ParseUint(parts[3], 10, 64); err != nil {
			return nil, fmt.Errorf("sigtrace line %d: parent: %v", line, err)
		}
		c, err := strconv.ParseUint(parts[4], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("sigtrace line %d: color: %v", line, err)
		}
		rec.Color = uint32(c)
		rec.Tag = parts[5]
		out = append(out, rec)
	}
	return out, sc.Err()
}
