package core

import (
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
)

// BarrierBoxName is the pseudo-box under which the parallel
// coordinator reports its join-barrier wait time to the clock
// observer. Keeping sync cost out of the real boxes' attribution
// matters now that per-box host time drives the shard partition; the
// parenthesized name cannot collide with a registered box (box names
// are identifiers) and cost models must ignore it (see BoxCoster).
const BarrierBoxName = "(barrier)"

// pseudoBox satisfies Box for observer-only entities like the
// barrier row; it is never registered or clocked.
type pseudoBox struct{ name string }

func (p pseudoBox) BoxName() string { return p.name }
func (p pseudoBox) Clock(int64)     {}

// BoxCoster is implemented by clock observers (the obsv profiler)
// that can estimate per-box host cost. BoxCosts returns mean
// nanoseconds per Clock call keyed by box name; boxes absent from the
// map get a uniform default. Implementations must exclude
// BarrierBoxName — barrier wait is sync cost, not box cost, and
// counting it would re-skew the very partition this interface feeds.
type BoxCoster interface {
	BoxCosts() map[string]float64
}

// costCollector is the fallback cost source for the warm-up re-shard
// when no user observer implements BoxCoster: a minimal ClockObserver
// accumulating mean ns per Clock call. It is installed only for the
// warm-up window of a parallel run and dropped at the re-shard.
type costCollector struct {
	mu   sync.Mutex
	ns   map[string]int64
	hits map[string]int64
}

// collectorSample is the sampling period of the warm-up collector:
// frequent enough to rank boxes within a few thousand cycles, cheap
// enough to not distort the run it is measuring.
const collectorSample = 16

func newCostCollector() *costCollector {
	return &costCollector{ns: make(map[string]int64), hits: make(map[string]int64)}
}

func (c *costCollector) BoxClocked(shard int, box Box, hostNs int64) {
	name := box.BoxName()
	c.mu.Lock()
	c.ns[name] += hostNs
	c.hits[name]++
	c.mu.Unlock()
}

func (c *costCollector) BoxCosts() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.ns))
	for name, ns := range c.ns {
		if name == BarrierBoxName {
			continue
		}
		if h := c.hits[name]; h > 0 {
			out[name] = float64(ns) / float64(h)
		}
	}
	return out
}

// pinUnit is one indivisible scheduling unit of the partition: a pin
// group or a single unpinned box, anchored at its first registration
// position so the unit order is deterministic.
type pinUnit struct {
	boxes []Box
	order int     // first registration index
	cost  float64 // summed per-box cost, for bin packing
}

// minBoxCost floors every box's cost so a unit never weighs zero: a
// zero-cost unit could be stacked without bound onto one shard,
// leaving workers idle on uniform-cost topologies.
const minBoxCost = 1e-3

// pinUnits groups the registered boxes into indivisible units. The
// grouping depends only on registration and pin order.
func (s *Simulator) pinUnits() []pinUnit {
	var units []pinUnit
	groupIdx := make(map[string]int)
	for i, b := range s.boxes {
		if g, pinned := s.pinGroup[b]; pinned {
			if u, seen := groupIdx[g]; seen {
				units[u].boxes = append(units[u].boxes, b)
				continue
			}
			groupIdx[g] = len(units)
		}
		units = append(units, pinUnit{boxes: []Box{b}, order: i})
	}
	return units
}

// costOf returns the configured cost estimate for one box, floored at
// minBoxCost. costs may be nil (uniform).
func costOf(costs map[string]float64, b Box) float64 {
	c := 1.0
	if costs != nil {
		if v, ok := costs[b.BoxName()]; ok {
			c = v
		}
	}
	if c < minBoxCost {
		c = minBoxCost
	}
	return c
}

// partition splits the registered boxes into per-worker shards using
// the current cost model (SetBoxCosts, or uniform costs by default):
// boxes pinned to one group form an indivisible unit, every unpinned
// box is its own unit, and units are placed by greedy
// longest-processing-time bin packing — heaviest unit first, each
// onto the least-loaded shard. Ties break by registration order and
// lowest shard index, so the split depends only on registration, pin
// order and the cost model, never on scheduling. Within a shard,
// boxes stay in registration order.
func (s *Simulator) partition(nw int) [][]Box {
	return partitionUnits(s.pinUnits(), nw, s.boxCosts)
}

func partitionUnits(units []pinUnit, nw int, costs map[string]float64) [][]Box {
	if nw > len(units) {
		nw = len(units)
	}
	for i := range units {
		units[i].cost = 0
		for _, b := range units[i].boxes {
			units[i].cost += costOf(costs, b)
		}
	}
	order := make([]int, len(units))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ua, ub := &units[order[a]], &units[order[b]]
		if ua.cost != ub.cost {
			return ua.cost > ub.cost
		}
		return ua.order < ub.order
	})
	load := make([]float64, nw)
	assigned := make([][]int, nw) // unit indexes per shard
	for _, u := range order {
		best := 0
		for w := 1; w < nw; w++ {
			if load[w] < load[best] {
				best = w
			}
		}
		load[best] += units[u].cost
		assigned[best] = append(assigned[best], u)
	}
	shards := make([][]Box, nw)
	for w := range assigned {
		sort.Ints(assigned[w]) // registration order within the shard
		for _, u := range assigned[w] {
			shards[w] = append(shards[w], units[u].boxes...)
		}
	}
	return shards
}

// skewEdge is one cross-box dependency outside the signal model,
// registered with ConstrainSkew: state written by (or about) box a is
// observed by box b after lat cycles.
type skewEdge struct {
	a, b string
	lat  int
}

// minWriteLat is the tightest latency any write on this signal can
// carry: signals allowing per-write latency overrides (maxLat beyond
// the default) are conservatively treated as latency 1.
func (s *Signal) minWriteLat() int {
	if s.maxLat > s.lat {
		return 1
	}
	return s.lat
}

// defaultSkewLimit caps the free-run batch even when the topology
// would allow more: beyond this, barrier savings are negligible and
// full-sync work (watchdog, metrics, checkpoints) gets too coarse.
const defaultSkewLimit = 64

// computeSkew derives the skew batch length B from the pin-unit
// topology: the minimum latency of any signal or ConstrainSkew edge
// crossing unit boundaries. Shards free-running B cycles between full
// syncs can never observe a cross-shard value early, because any
// cross-unit write lands at least B cycles ahead of its read. The
// result is partition- and mode-independent (it depends on units, not
// shards), so serial and parallel runs batch identically — which is
// what keeps their outputs bit-identical. A topology with no
// cross-unit edges degenerates to B=1: nothing constrains skew, but
// nothing bounds it either, so the conservative choice keeps full
// syncs (and the done predicate) per-cycle.
func (s *Simulator) computeSkew() int {
	if !s.skewOn {
		return 1
	}
	unitOf := make(map[string]int)
	for i, u := range s.pinUnits() {
		for _, b := range u.boxes {
			unitOf[b.BoxName()] = i
		}
	}
	crossUnit := func(a, b string) bool {
		ua, aok := unitOf[a]
		ub, bok := unitOf[b]
		// Unknown endpoints (a signal provided under a non-box name)
		// are conservatively treated as crossing.
		return !aok || !bok || ua != ub
	}
	minLat := 0
	for name, sig := range s.Binder.signals {
		if !crossUnit(s.Binder.producers[name], s.Binder.consumers[name]) {
			continue
		}
		if l := sig.minWriteLat(); minLat == 0 || l < minLat {
			minLat = l
		}
	}
	for _, e := range s.constraints {
		if !crossUnit(e.a, e.b) {
			continue
		}
		if minLat == 0 || e.lat < minLat {
			minLat = e.lat
		}
	}
	if minLat <= 1 {
		return 1
	}
	if minLat > s.skewLimit {
		minLat = s.skewLimit
	}
	return minLat
}

// warnedWorkers dedupes the worker-sizing warnings: one line per
// distinct situation per process, not one per Run (sweeps and test
// suites would otherwise drown in them).
var warnedWorkers sync.Map

func warnWorkersOnce(key, msg string, args ...any) {
	if _, dup := warnedWorkers.LoadOrStore(key, true); !dup {
		slog.Warn(msg, args...)
	}
}

// resolveWorkers translates the configured worker count into the
// effective shard count for this Run: -1 auto-sizes to
// runtime.GOMAXPROCS(0), and any request is clamped to both the
// schedulable processors and the shardable unit count (extra workers
// would only add barrier participants). A request exceeding the
// online CPUs is honored up to GOMAXPROCS but flagged, since such a
// run measures scheduling overhead, not parallel speedup.
func (s *Simulator) resolveWorkers() int {
	req := s.workers
	units := len(s.pinUnits())
	maxProcs := runtime.GOMAXPROCS(0)
	n := req
	if req < 0 {
		n = maxProcs
	}
	if n > units {
		n = units
	}
	if n > maxProcs {
		warnWorkersOnce(
			fmt.Sprintf("clamp:%d:%d", req, maxProcs),
			"parallel workers clamped to schedulable processors",
			"requested", req, "effective", maxProcs,
			"gomaxprocs", maxProcs, "cpus_online", runtime.NumCPU(),
			"shardable_units", units)
		n = maxProcs
	}
	if n > 1 && n > runtime.NumCPU() {
		warnWorkersOnce(
			fmt.Sprintf("cpus:%d:%d", n, runtime.NumCPU()),
			"parallel workers exceed online CPUs; run measures overhead, not speedup",
			"requested", req, "effective", n,
			"gomaxprocs", maxProcs, "cpus_online", runtime.NumCPU(),
			"shardable_units", units)
	}
	if n < 0 {
		n = 0
	}
	return n
}
