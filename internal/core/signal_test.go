package core

import (
	"testing"
	"testing/quick"
)

type testObj struct {
	DynObject
	val int
}

func newObj(ids *IDSource, val int) *testObj {
	return &testObj{DynObject: DynObject{ID: ids.Next()}, val: val}
}

func expectSimError(t *testing.T, fn func()) *SimError {
	t.Helper()
	var got *SimError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("expected SimError panic, got none")
			}
			se, ok := r.(*SimError)
			if !ok {
				t.Fatalf("expected *SimError, got %v", r)
			}
			got = se
		}()
		fn()
	}()
	return got
}

func TestSignalDeliversAtLatency(t *testing.T) {
	var ids IDSource
	s := NewSignal("wire", 1, 3, 0)
	o := newObj(&ids, 42)
	s.Write(10, o)
	for c := int64(10); c < 13; c++ {
		if got := s.Read(c); got != nil {
			t.Fatalf("cycle %d: object arrived early: %v", c, got)
		}
	}
	got := s.Read(13)
	if len(got) != 1 || got[0].(*testObj).val != 42 {
		t.Fatalf("cycle 13: want [42], got %v", got)
	}
	if s.Read(13) != nil {
		t.Fatal("second read returned data")
	}
	if s.Pending() {
		t.Fatal("signal still pending after delivery")
	}
}

func TestSignalBandwidthEnforced(t *testing.T) {
	var ids IDSource
	s := NewSignal("wire", 2, 1, 0)
	s.Write(5, newObj(&ids, 1))
	s.Write(5, newObj(&ids, 2))
	se := expectSimError(t, func() { s.Write(5, newObj(&ids, 3)) })
	if se.Cycle != 5 || se.Where != "wire" {
		t.Fatalf("wrong error context: %+v", se)
	}
	// A new cycle resets the budget.
	s.Read(6)
	s.Write(6, newObj(&ids, 4))
}

func TestSignalDataLossDetected(t *testing.T) {
	var ids IDSource
	s := NewSignal("wire", 1, 1, 0)
	s.Write(0, newObj(&ids, 1)) // arrives cycle 1, never read
	// ring size is maxLat+1 = 2, so a write at cycle 2 (arrival 3)
	// lands on the same slot as the unread cycle-1 object.
	expectSimError(t, func() { s.Write(2, newObj(&ids, 2)) })
}

func TestSignalWriteLat(t *testing.T) {
	var ids IDSource
	s := NewSignal("alu", 4, 1, 9)
	s.WriteLat(0, 9, newObj(&ids, 9))
	s.WriteLat(0, 1, newObj(&ids, 1))
	if got := s.Read(1); len(got) != 1 || got[0].(*testObj).val != 1 {
		t.Fatalf("lat-1 object: got %v", got)
	}
	if got := s.Read(9); len(got) != 1 || got[0].(*testObj).val != 9 {
		t.Fatalf("lat-9 object: got %v", got)
	}
	expectSimError(t, func() { s.WriteLat(10, 10, newObj(&ids, 0)) })
	expectSimError(t, func() { s.WriteLat(10, 0, newObj(&ids, 0)) })
}

func TestSignalTimeMovesForward(t *testing.T) {
	var ids IDSource
	s := NewSignal("wire", 1, 1, 0)
	s.Write(10, newObj(&ids, 1))
	expectSimError(t, func() { s.Write(9, newObj(&ids, 2)) })
}

func TestSignalFIFOWithinCycleProperty(t *testing.T) {
	// All objects written in one cycle are delivered together, in
	// write order, exactly latency cycles later.
	f := func(vals []int8, latRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		lat := int(latRaw%16) + 1
		var ids IDSource
		s := NewSignal("wire", len(vals), lat, 0)
		for _, v := range vals {
			s.Write(100, newObj(&ids, int(v)))
		}
		got := s.Read(100 + int64(lat))
		if len(got) != len(vals) {
			return false
		}
		for i, o := range got {
			if o.(*testObj).val != int(vals[i]) {
				return false
			}
		}
		return !s.Pending()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSignalTrafficCounts(t *testing.T) {
	var ids IDSource
	s := NewSignal("wire", 4, 2, 0)
	for i := 0; i < 3; i++ {
		s.Write(0, newObj(&ids, i))
	}
	p, c := s.Traffic()
	if p != 3 || c != 0 {
		t.Fatalf("traffic after writes: %d/%d", p, c)
	}
	s.Read(2)
	p, c = s.Traffic()
	if p != 3 || c != 3 {
		t.Fatalf("traffic after read: %d/%d", p, c)
	}
}

func TestNewSignalValidation(t *testing.T) {
	for _, tc := range []struct{ bw, lat int }{{0, 1}, {1, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSignal(bw=%d,lat=%d) did not panic", tc.bw, tc.lat)
				}
			}()
			NewSignal("bad", tc.bw, tc.lat, 0)
		}()
	}
}

func TestIDSourceUniqueAndNonZero(t *testing.T) {
	var ids IDSource
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := ids.Next()
		if id == 0 {
			t.Fatal("IDSource returned 0")
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestSignalSteadyStateAllocFree(t *testing.T) {
	// Once the ring slots have grown to their high-water capacity,
	// Write/Read must not allocate: Read hands the slot's backing
	// array back to the signal for reuse, and with tracing disabled
	// no trace bookkeeping runs. Guards the hot path against
	// reintroduced per-cycle allocation.
	var ids IDSource
	s := NewSignal("wire", 4, 2, 0)
	objs := make([]Dynamic, 4)
	for i := range objs {
		objs[i] = newObj(&ids, i)
	}
	cycle := int64(0)
	// Warm up: reach steady-state slot capacity.
	for i := 0; i < 8; i++ {
		for _, o := range objs {
			s.Write(cycle, o)
		}
		s.Read(cycle + 2)
		cycle++
	}
	avg := testing.AllocsPerRun(100, func() {
		for _, o := range objs {
			s.Write(cycle, o)
		}
		if got := s.Read(cycle + 2); len(got) != len(objs) {
			t.Fatalf("read %d objects, want %d", len(got), len(objs))
		}
		cycle++
	})
	if avg != 0 {
		t.Fatalf("Signal.Write/Read steady state allocates %.1f allocs/cycle, want 0", avg)
	}
}

func TestSignalReadReusesBacking(t *testing.T) {
	// The slice returned by Read shares its backing array with the
	// ring slot; a later write into the same slot reuses it instead
	// of allocating. Consumers finish with the slice inside their
	// clock cycle, so this is invisible to the simulation.
	var ids IDSource
	s := NewSignal("wire", 2, 1, 0)
	s.Write(0, newObj(&ids, 1))
	got := s.Read(1)
	if len(got) != 1 {
		t.Fatalf("read: %v", got)
	}
	s.Write(2, newObj(&ids, 2)) // arrives cycle 3, same slot as cycle 1
	if &got[:1][0] != &s.ring[1][0] {
		t.Fatal("ring slot did not reuse the returned slice's backing array")
	}
	if got2 := s.Read(3); len(got2) != 1 || got2[0].(*testObj).val != 2 {
		t.Fatalf("reused slot read: %v", got2)
	}
}
