package core

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// stuckSender models the classic credit deadlock: it has work queued
// but only a fixed credit budget, and nothing ever releases credits.
// After the budget is spent the pipeline is legal but frozen.
type stuckSender struct {
	BoxBase
	out     *Signal
	ids     *IDSource
	credits int
	budget  int
}

func (b *stuckSender) Clock(cycle int64) {
	if b.credits > 0 {
		b.out.Write(cycle, newObj(b.ids, b.credits))
		b.credits--
	}
}

// Queues implements StallReporter: the deadlock report should show the
// credit pool fully absorbed downstream.
func (b *stuckSender) Queues() []QueueStat {
	return []QueueStat{{Name: "sender.credits", Occupied: b.budget - b.credits, Capacity: b.budget}}
}

// blackhole never reads its input, so the sender's objects stay in
// flight forever.
type blackhole struct {
	BoxBase
	in *Signal
}

func (b *blackhole) Clock(cycle int64) {}

func buildStall(sim *Simulator) *stuckSender {
	s := &stuckSender{ids: &sim.IDs, credits: 2, budget: 2}
	s.Init("StuckSender")
	h := &blackhole{}
	h.Init("Blackhole")
	s.out = sim.Binder.Provide(s.BoxName(), "stall.wire", 1, 1, 0)
	sim.Binder.Bind(h.BoxName(), "stall.wire", &h.in)
	sim.Register(s)
	sim.Register(h)
	return s
}

// A synthetic credit deadlock must be detected within the configured
// window — in both execution modes — and produce a report naming the
// stalled box, its queue occupancy, and the stuck in-flight objects.
// It must NOT be reported as cycle-limit exhaustion.
func TestWatchdogDetectsDeadlock(t *testing.T) {
	for _, workers := range []int{0, 3} {
		sim := NewSimulator(0)
		buildStall(sim)
		buildPipe(sim, 3) // live boxes that also go quiet once drained
		sim.SetWorkers(workers)
		sim.SetWatchdog(20)
		sim.SetDone(func() bool { return false })
		err := sim.Run(100000)
		if errors.Is(err, ErrCycleLimit) {
			t.Fatalf("workers=%d: deadlock burned the cycle budget instead of tripping the watchdog", workers)
		}
		var de *DeadlockError
		if !errors.As(err, &de) {
			t.Fatalf("workers=%d: want *DeadlockError, got %v", workers, err)
		}
		if !errors.Is(err, ErrDeadlock) {
			t.Errorf("workers=%d: error does not match ErrDeadlock", workers)
		}
		rep := de.Report
		// Last traffic: pipe consumer reads its 3rd object at cycle 4.
		if rep.Cycle-rep.Since < 20 {
			t.Errorf("workers=%d: fired after %d quiet cycles, window is 20", workers, rep.Cycle-rep.Since)
		}
		if sim.Cycle() > rep.Since+25 {
			t.Errorf("workers=%d: watchdog let the run spin to cycle %d (last progress %d)",
				workers, sim.Cycle(), rep.Since)
		}
		var haveBox bool
		for _, b := range rep.Boxes {
			if b.Name == "StuckSender" && len(b.Queues) == 1 &&
				b.Queues[0].Occupied == 2 && b.Queues[0].Capacity == 2 {
				haveBox = true
			}
		}
		if !haveBox {
			t.Errorf("workers=%d: report missing StuckSender 2/2 occupancy: %+v", workers, rep.Boxes)
		}
		var haveSig bool
		for _, s := range rep.Signal {
			if s.Name == "stall.wire" && s.Produced == 2 && len(s.InFlight) > 0 {
				haveSig = true
			}
		}
		if !haveSig {
			t.Errorf("workers=%d: report missing stall.wire in-flight objects: %+v", workers, rep.Signal)
		}
		if len(rep.Recent) == 0 {
			t.Errorf("workers=%d: no trailing activity samples", workers)
		}
		if !strings.Contains(rep.String(), "StuckSender") {
			t.Errorf("workers=%d: human-readable report does not name the stalled box", workers)
		}
		cr := sim.Crash()
		if cr == nil || cr.Kind != "deadlock" || cr.Deadlock == nil {
			t.Fatalf("workers=%d: crash report %+v, want kind=deadlock with embedded report", workers, cr)
		}
	}
}

// A healthy run that completes, and a live run that merely exhausts
// its budget, must not trip the watchdog.
func TestWatchdogNoFalsePositive(t *testing.T) {
	sim := NewSimulator(0)
	_, c := buildPipe(sim, 5)
	sim.SetWatchdog(3) // tighter than the pipe's 2-cycle latency
	sim.SetDone(func() bool { return len(c.received) == 5 })
	if err := sim.Run(1000); err != nil {
		t.Fatalf("healthy run tripped the watchdog: %v", err)
	}

	sim = NewSimulator(0)
	buildPipe(sim, 1<<30) // produces forever
	sim.SetWatchdog(5)
	sim.SetDone(func() bool { return false })
	if err := sim.Run(50); !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("live run hitting its budget: want ErrCycleLimit, got %v", err)
	}
}

// ticker makes progress invisible to signals (cache-hit work) and
// publishes it via ProgressReporter.
type ticker struct {
	BoxBase
	n int64
}

func (b *ticker) Clock(cycle int64)    { b.n++ }
func (b *ticker) ProgressCount() int64 { return b.n }

// Signal-silent progress reported through ProgressReporter must hold
// the watchdog off.
func TestWatchdogHonorsProgressReporter(t *testing.T) {
	sim := NewSimulator(0)
	buildStall(sim) // signal traffic dies at cycle 1
	tk := &ticker{}
	tk.Init("Ticker")
	sim.Register(tk)
	sim.SetWatchdog(10)
	sim.SetDone(func() bool { return false })
	if err := sim.Run(200); !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("reporter progress ignored: want ErrCycleLimit, got %v", err)
	}
}

// Stop halts the run at the next cycle boundary with an
// ErrCanceled-matching error, in both execution modes, with
// statistics flushed and a "canceled" black box recorded.
func TestStopCancelsRun(t *testing.T) {
	for _, workers := range []int{0, 3} {
		sim := NewSimulator(10)
		buildPipe(sim, 1<<30)
		sim.SetWorkers(workers)
		sim.OnEndCycle(func(cycle int64) {
			if cycle == 25 {
				sim.Stop()
			}
		})
		sim.SetDone(func() bool { return false })
		err := sim.Run(100000)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: want ErrCanceled, got %v", workers, err)
		}
		if sim.Cycle() != 26 {
			t.Errorf("workers=%d: stopped at cycle %d, want 26", workers, sim.Cycle())
		}
		if cr := sim.Crash(); cr == nil || cr.Kind != "canceled" {
			t.Fatalf("workers=%d: crash report %+v, want kind=canceled", workers, cr)
		}
	}
}

// A canceled context stops the run and surfaces the cancellation
// cause; the partial statistics are still flushed.
func TestRunContextCancel(t *testing.T) {
	sim := NewSimulator(10)
	p, _ := buildPipe(sim, 1<<30)
	ctx, cancel := context.WithCancel(context.Background())
	cyclesStat := sim.Stats.Counter("Sim.cycles")
	sim.OnEndCycle(func(cycle int64) {
		cyclesStat.Inc()
		if cycle == 30 {
			cancel()
		}
	})
	sim.SetDone(func() bool { return false })
	err := sim.RunContext(ctx, 100000)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("cancellation cause missing from %q", err)
	}
	// Cancelled at cycle 30; the synchronous context poll bounds the
	// stop at the next 1024-cycle boundary even if the watcher
	// goroutine never gets scheduled.
	if sim.Cycle() > 1100 {
		t.Fatalf("run ignored the canceled context until cycle %d", sim.Cycle())
	}
	if p.sent == 0 {
		t.Fatal("run did no work before cancel")
	}
	// The partial run's samples are flushed (interval 10, >= 30 cycles).
	if cycles, _ := sim.Stats.Samples("Sim.cycles"); len(cycles) < 3 {
		t.Fatalf("partial stats not flushed: %d sample rows", len(cycles))
	}
}

// An already-canceled context stops before the first cycle.
func TestRunContextPreCanceled(t *testing.T) {
	sim := NewSimulator(0)
	p, _ := buildPipe(sim, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sim.SetDone(func() bool { return false })
	err := sim.RunContext(ctx, 1000)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if p.sent > 1 {
		t.Fatalf("pre-canceled run clocked %d cycles", p.sent)
	}
}
