package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// buildFanout wires n independent producer/consumer pairs, the
// smallest network that actually exercises sharding (each pair may
// land on a different worker). Each producer gets a private IDSource:
// the shared one hands out IDs in host scheduling order across
// shards, which would make trace bytes (and nothing else) vary.
func buildFanout(sim *Simulator, pairs, count int) []*consumer {
	consumers := make([]*consumer, pairs)
	for i := 0; i < pairs; i++ {
		p := &producer{ids: new(IDSource), count: count}
		p.Init(fmt.Sprintf("Producer%d", i))
		c := &consumer{}
		c.Init(fmt.Sprintf("Consumer%d", i))
		name := fmt.Sprintf("pipe%d", i)
		p.out = sim.Binder.Provide(p.BoxName(), name, 1, 2, 0)
		sim.Binder.Bind(c.BoxName(), name, &c.in)
		sim.Register(c)
		sim.Register(p)
		consumers[i] = c
	}
	return consumers
}

func allReceived(consumers []*consumer, count int) func() bool {
	return func() bool {
		for _, c := range consumers {
			if len(c.received) != count {
				return false
			}
		}
		return true
	}
}

// A parallel run must be indistinguishable from the serial one: same
// cycle count, same delivery order, byte-identical statistics CSV and
// signal trace.
func TestParallelMatchesSerialCore(t *testing.T) {
	type result struct {
		cycles int64
		recv   [][]int
		csv    []byte
		trace  []byte
	}
	run := func(workers int) result {
		sim := NewSimulator(10)
		consumers := buildFanout(sim, 5, 37)
		var traceBuf bytes.Buffer
		tr := NewSigTraceWriter(&traceBuf)
		sim.Binder.SetTracer(tr)
		sim.SetWorkers(workers)
		sim.SetDone(allReceived(consumers, 37))
		if err := sim.Run(1000); err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		var csv bytes.Buffer
		if err := sim.Stats.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		res := result{cycles: sim.Cycle(), csv: csv.Bytes(), trace: traceBuf.Bytes()}
		for _, c := range consumers {
			res.recv = append(res.recv, c.received)
		}
		return res
	}

	serial := run(0)
	for _, workers := range []int{2, 3, 8} {
		par := run(workers)
		if par.cycles != serial.cycles {
			t.Errorf("workers=%d: %d cycles, serial %d", workers, par.cycles, serial.cycles)
		}
		for i := range serial.recv {
			if len(par.recv[i]) != len(serial.recv[i]) {
				t.Fatalf("workers=%d consumer %d: %d received, serial %d",
					workers, i, len(par.recv[i]), len(serial.recv[i]))
			}
			for j := range serial.recv[i] {
				if par.recv[i][j] != serial.recv[i][j] {
					t.Fatalf("workers=%d consumer %d: delivery order differs", workers, i)
				}
			}
		}
		if !bytes.Equal(par.csv, serial.csv) {
			t.Errorf("workers=%d: stats CSV differs from serial", workers)
		}
		if !bytes.Equal(par.trace, serial.trace) {
			t.Errorf("workers=%d: signal trace differs from serial", workers)
		}
	}
}

// overdriver owns a bandwidth-1 signal and writes it twice per cycle:
// a model violation raised from whichever shard clocks it, with the
// single-writer contract intact.
type overdriver struct {
	BoxBase
	out *Signal
	ids *IDSource
}

func (o *overdriver) Clock(cycle int64) {
	o.out.Write(cycle, newObj(o.ids, 0))
	o.out.Write(cycle, newObj(o.ids, 1))
}

// A model violation on a worker shard must surface as *SimError from
// Run — not a panic, not a deadlocked barrier.
func TestParallelSimErrorSurfaces(t *testing.T) {
	sim := NewSimulator(0)
	buildPipe(sim, 10)
	bad := &overdriver{ids: &sim.IDs}
	bad.Init("Bad")
	bad.out = sim.Binder.Provide("Bad", "bad.out", 1, 1, 0)
	sink := &consumer{}
	sink.Init("BadSink")
	sim.Binder.Bind("BadSink", "bad.out", &sink.in)
	sim.Register(bad)
	sim.Register(sink)
	sim.SetWorkers(4)
	sim.SetDone(func() bool { return false })
	err := sim.Run(10)
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("want *SimError, got %v", err)
	}
}

type panicBox struct {
	BoxBase
	at int64
}

func (b *panicBox) Clock(cycle int64) {
	if cycle == b.at {
		panic("programming error in a box")
	}
}

// Non-SimError panics are programming errors; Run recovers them into
// a *CrashError naming the failing box, cycle, and shard — in parallel
// mode exactly as in serial mode.
func TestParallelPanicPropagates(t *testing.T) {
	for _, workers := range []int{0, 3} {
		sim := NewSimulator(0)
		buildFanout(sim, 3, 100)
		pb := &panicBox{at: 5}
		pb.Init("Panicker")
		sim.Register(pb)
		sim.SetWorkers(workers)
		sim.SetDone(func() bool { return false })
		err := sim.Run(100)
		var ce *CrashError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: want *CrashError, got %v", workers, err)
		}
		if !errors.Is(err, ErrPanic) {
			t.Errorf("workers=%d: error does not match ErrPanic", workers)
		}
		if ce.Box != "Panicker" {
			t.Errorf("workers=%d: crash names box %q, want Panicker", workers, ce.Box)
		}
		if ce.Cycle != 5 {
			t.Errorf("workers=%d: crash at cycle %d, want 5", workers, ce.Cycle)
		}
		if ce.Value != "programming error in a box" {
			t.Errorf("workers=%d: panic value %v not preserved", workers, ce.Value)
		}
		if len(ce.Stack) == 0 {
			t.Errorf("workers=%d: no stack captured", workers)
		}
		// The black box names the same failure and carries stats.
		cr := sim.Crash()
		if cr == nil || cr.Kind != "panic" || cr.Box != "Panicker" {
			t.Fatalf("workers=%d: crash report %+v, want kind=panic box=Panicker", workers, cr)
		}
	}
}

type hookRecorder struct {
	BoxBase
	clocked *atomic.Int64
}

func (h *hookRecorder) Clock(cycle int64) { h.clocked.Add(1) }

// End-of-cycle hooks run on the coordinator after every box clock of
// the cycle, in registration order — in both execution modes.
func TestEndCycleHookOrder(t *testing.T) {
	for _, workers := range []int{0, 4} {
		sim := NewSimulator(0)
		var clocked atomic.Int64
		for i := 0; i < 6; i++ {
			b := &hookRecorder{clocked: &clocked}
			b.Init(fmt.Sprintf("Box%d", i))
			sim.Register(b)
		}
		var order []int
		for i := 0; i < 3; i++ {
			i := i
			sim.OnEndCycle(func(cycle int64) {
				if got := clocked.Load(); got != 6*(cycle+1) {
					t.Errorf("workers=%d hook %d at cycle %d: %d clocks, want %d",
						workers, i, cycle, got, 6*(cycle+1))
				}
				order = append(order, i)
			})
		}
		sim.SetWorkers(workers)
		cycles := 0
		sim.SetDone(func() bool { cycles++; return cycles == 4 })
		if err := sim.Run(100); err != nil {
			t.Fatal(err)
		}
		if len(order) != 12 {
			t.Fatalf("workers=%d: %d hook runs, want 12", workers, len(order))
		}
		for i, v := range order {
			if v != i%3 {
				t.Fatalf("workers=%d: hooks out of registration order: %v", workers, order)
			}
		}
	}
}

// Pinned boxes must share a shard; the split must depend only on
// registration and pin order.
func TestPartitionPinning(t *testing.T) {
	sim := NewSimulator(0)
	boxes := make([]Box, 8)
	for i := range boxes {
		b := &panicBox{at: -1}
		b.Init(fmt.Sprintf("Box%d", i))
		boxes[i] = b
		sim.Register(b)
	}
	sim.Pin("grp", boxes[1], boxes[4], boxes[6])
	shards := sim.partition(3)
	if len(shards) != 3 {
		t.Fatalf("want 3 shards, got %d", len(shards))
	}
	shardOf := make(map[Box]int)
	total := 0
	for i, sh := range shards {
		for _, b := range sh {
			shardOf[b] = i
			total++
		}
	}
	if total != 8 {
		t.Fatalf("partition lost boxes: %d of 8", total)
	}
	if shardOf[boxes[1]] != shardOf[boxes[4]] || shardOf[boxes[1]] != shardOf[boxes[6]] {
		t.Fatalf("pinned boxes split across shards: %d %d %d",
			shardOf[boxes[1]], shardOf[boxes[4]], shardOf[boxes[6]])
	}
	// More workers than units: shard count collapses to the unit count.
	if got := len(sim.partition(100)); got != 6 {
		t.Fatalf("want 6 shards for 6 units, got %d", got)
	}
}

// Stress the single-writer/single-reader signal contract across
// shards; meaningful under `go test -race`, which would flag any
// cross-goroutine slot the latency argument does not actually
// separate.
func TestSignalParallelStress(t *testing.T) {
	sim := NewSimulator(0)
	consumers := buildFanout(sim, 16, 200)
	sim.SetWorkers(8)
	sim.SetDone(allReceived(consumers, 200))
	if err := sim.Run(5000); err != nil {
		t.Fatal(err)
	}
	for i, c := range consumers {
		for j, v := range c.received {
			if v != j {
				t.Fatalf("consumer %d: out of order delivery at %d", i, j)
			}
		}
	}
}
