package core

import (
	"fmt"
	"sync/atomic"
)

// Signal models a wire between two boxes. A signal is created with a
// bandwidth (maximum objects written per cycle) and a latency (cycles
// between write and read). Writes above the bandwidth and reads that
// would lose unconsumed data are simulation errors, reported via
// panic(*SimError) so the offending cycle is impossible to miss.
//
// Boxes with variable-latency operations (multistage ALUs, memory)
// may override the latency per write with WriteLat, up to the MaxLat
// the signal was created with.
//
// Concurrency contract (parallel simulation mode): a signal has
// exactly one producing box and one consuming box, which may be
// clocked on different goroutines within the same cycle. This is safe
// because latency >= 1 keeps their ring slots disjoint: the ring has
// maxLat+1 slots, a write at cycle C with latency L lands in slot
// (C+L) mod (maxLat+1), and a read at cycle C touches slot C mod
// (maxLat+1); those collide only if L == 0 mod (maxLat+1), which
// L in [1, maxLat] rules out. The writer-only fields (wrCycle,
// wrCount) and reader-only fields (traceBuf) are single-goroutine;
// produced/consumed are atomic so Pending and Traffic may be read
// from either side. Cross-cycle accesses are ordered by the
// simulator's cycle barrier.
type Signal struct {
	name     string
	bw       int
	lat      int
	maxLat   int
	ring     [][]Dynamic // indexed by cycle % len(ring)
	stamp    []int64     // cycle each ring slot was last written for
	wrCycle  int64       // cycle of the most recent writes (writer-only)
	wrCount  int         // writes performed during wrCycle (writer-only)
	produced atomic.Uint64
	consumed atomic.Uint64

	// Tracing: the reader appends to traceBuf during its clock; the
	// simulator drains every buffer into the shared tracer at the
	// cycle barrier, in signal-name order, so the trace is identical
	// for any worker count.
	tracer   Tracer
	traceBuf []traceEntry
}

type traceEntry struct {
	cycle int64
	obj   *DynObject
}

// SimError reports a violation of the simulation model (bandwidth
// exceeded, data lost on a signal, binding mistakes). The framework
// panics with *SimError; the Simulator converts it into an error from
// Run so tools can report it cleanly.
type SimError struct {
	Where string
	Cycle int64
	Msg   string
}

func (e *SimError) Error() string {
	return fmt.Sprintf("sim error at cycle %d in %s: %s", e.Cycle, e.Where, e.Msg)
}

func simFail(where string, cycle int64, format string, args ...any) {
	panic(&SimError{Where: where, Cycle: cycle, Msg: fmt.Sprintf(format, args...)})
}

// NewSignal creates a signal. Latency must be at least 1 cycle: the
// framework relies on it for determinism and for race-free parallel
// clocking. maxLat extends the ring for WriteLat; pass 0 to allow
// only the default latency.
func NewSignal(name string, bandwidth, latency, maxLat int) *Signal {
	if bandwidth < 1 {
		panic(fmt.Sprintf("signal %s: bandwidth must be >= 1", name))
	}
	if latency < 1 {
		panic(fmt.Sprintf("signal %s: latency must be >= 1", name))
	}
	if maxLat < latency {
		maxLat = latency
	}
	n := maxLat + 1
	return &Signal{
		name:   name,
		bw:     bandwidth,
		lat:    latency,
		maxLat: maxLat,
		ring:   make([][]Dynamic, n),
		stamp:  make([]int64, n),
	}
}

// growRing widens the ring to at least n slots, re-placing any
// in-flight objects by their arrival stamp. The simulator grows
// cross-unit signals to maxLat+B slots before a skew-batched run:
// with shards free-running B cycles apart, a reader up to B-1 cycles
// behind the writer must still find slot (C+L) mod len untouched by
// writes it has not yet observed, which needs len >= maxLat+B.
// Growth changes no normal-path behavior — slot arithmetic stays
// cycle mod len and every in-flight arrival keeps its stamp.
func (s *Signal) growRing(n int) {
	if n <= len(s.ring) {
		return
	}
	ring := make([][]Dynamic, n)
	stamp := make([]int64, n)
	for i, objs := range s.ring {
		if len(objs) == 0 {
			continue
		}
		slot := int(s.stamp[i] % int64(n))
		ring[slot] = objs
		stamp[slot] = s.stamp[i]
	}
	s.ring = ring
	s.stamp = stamp
}

// Name returns the signal's registered name.
func (s *Signal) Name() string { return s.name }

// Bandwidth returns the configured objects-per-cycle limit.
func (s *Signal) Bandwidth() int { return s.bw }

// Latency returns the configured default latency in cycles.
func (s *Signal) Latency() int { return s.lat }

// Write sends obj through the signal at the default latency: a reader
// calling Read(cycle+Latency()) receives it.
func (s *Signal) Write(cycle int64, obj Dynamic) {
	s.WriteLat(cycle, s.lat, obj)
}

// WriteLat sends obj with an explicit latency between 1 and the
// signal's maximum latency.
func (s *Signal) WriteLat(cycle int64, lat int, obj Dynamic) {
	if lat < 1 || lat > s.maxLat {
		simFail(s.name, cycle, "latency %d outside [1,%d]", lat, s.maxLat)
	}
	if cycle == s.wrCycle {
		if s.wrCount >= s.bw {
			simFail(s.name, cycle, "bandwidth exceeded (%d objects/cycle)", s.bw)
		}
		s.wrCount++
	} else {
		if cycle < s.wrCycle {
			simFail(s.name, cycle, "write moved backwards in time (last write at %d)", s.wrCycle)
		}
		s.wrCycle = cycle
		s.wrCount = 1
	}
	arrive := cycle + int64(lat)
	slot := int(arrive % int64(len(s.ring)))
	if len(s.ring[slot]) > 0 && s.stamp[slot] != arrive {
		simFail(s.name, cycle, "data lost: %d unread objects from cycle %d", len(s.ring[slot]), s.stamp[slot])
	}
	s.stamp[slot] = arrive
	s.ring[slot] = append(s.ring[slot], obj)
	s.produced.Add(1)
}

// Read returns the objects arriving at the given cycle, removing them
// from the wire. It returns nil when nothing arrives. Objects not
// read during their arrival cycle are detected as lost data on a
// later conflicting write.
//
// The returned slice's backing array is owned by the signal and
// reused for later writes into the same ring slot; the consumer must
// finish with it during the clock cycle it was read on (which every
// box does — the earliest conflicting write lands at cycle+1, on the
// far side of the cycle barrier). This keeps the steady state
// allocation-free: the ring reaches its high-water capacity once and
// never reallocates.
func (s *Signal) Read(cycle int64) []Dynamic {
	slot := int(cycle % int64(len(s.ring)))
	if len(s.ring[slot]) == 0 || s.stamp[slot] != cycle {
		return nil
	}
	out := s.ring[slot]
	s.ring[slot] = out[:0]
	s.consumed.Add(uint64(len(out)))
	if s.tracer != nil {
		for _, o := range out {
			s.traceBuf = append(s.traceBuf, traceEntry{cycle, o.DynInfo()})
		}
	}
	return out
}

// Pending reports whether any objects are still in flight (written
// but not yet read). Used by drain logic and the end-of-simulation
// assertion; safe to call from either side of the wire.
func (s *Signal) Pending() bool { return s.produced.Load() != s.consumed.Load() }

// Traffic returns the total objects produced and consumed so far.
func (s *Signal) Traffic() (produced, consumed uint64) {
	return s.produced.Load(), s.consumed.Load()
}

// inFlightMax bounds how many stuck objects InFlight lists per signal.
const inFlightMax = 8

// InFlight describes the unread objects still on the wire, one entry
// per object formatted "tag#id @arrival", capped at inFlightMax with a
// trailing "+N more" marker. Intended for deadlock reports; call only
// at the cycle barrier (it reads ring slots both sides touch).
func (s *Signal) InFlight() []string {
	var out []string
	total := 0
	for slot, objs := range s.ring {
		if len(objs) == 0 {
			continue
		}
		arrive := s.stamp[slot]
		for _, o := range objs {
			total++
			if len(out) < inFlightMax {
				d := o.DynInfo()
				out = append(out, fmt.Sprintf("%s#%d @%d", d.Tag, d.ID, arrive))
			}
		}
	}
	if total > len(out) {
		out = append(out, fmt.Sprintf("+%d more", total-len(out)))
	}
	return out
}

// CorruptOne replaces the first in-flight object on the wire with a
// nil payload, returning whether anything was corrupted. This is the
// chaos engine's signal-corruption fault: the consumer's next Read
// delivers the nil Dynamic and its type switch or method call panics,
// which the simulator converts into a *CrashError naming the consumer
// box. Call only at the cycle barrier (it touches ring slots both
// sides of the wire use).
func (s *Signal) CorruptOne() bool {
	for slot, objs := range s.ring {
		if len(objs) > 0 {
			s.ring[slot][0] = nil
			return true
		}
	}
	return false
}

// Tracer receives every object as it leaves a signal, one call per
// object. The signal trace file consumed by the Signal Trace
// Visualizer (cmd/sigtrace) is produced through this interface.
// Tracers are shared by every signal, so the framework buffers trace
// entries per signal and drains them single-threaded at each cycle
// barrier: a Tracer implementation needs no locking of its own.
type Tracer interface {
	Trace(cycle int64, signal string, obj *DynObject)
}

func (s *Signal) setTracer(t Tracer) { s.tracer = t }

// flushTrace drains the buffered trace entries into the tracer. The
// simulator calls it at the cycle barrier, never concurrently with
// the consumer's Read.
func (s *Signal) flushTrace() {
	if s.tracer == nil || len(s.traceBuf) == 0 {
		return
	}
	for _, e := range s.traceBuf {
		s.tracer.Trace(e.cycle, s.name, e.obj)
	}
	s.traceBuf = s.traceBuf[:0]
}
