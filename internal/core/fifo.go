package core

// FIFO is an allocation-friendly queue for hot-path box state. Popping
// advances a head index instead of reslicing away the front, and
// pushing compacts the backing array once the consumed prefix
// dominates it, so steady-state producer/consumer traffic reuses one
// backing array instead of reallocating on every wrap (a plain
// `q = append(q, v)` / `q = q[1:]` pair strands its capacity behind
// the advancing head and allocates forever).
//
// The zero value is an empty queue.
type FIFO[T any] struct {
	buf  []T
	head int
}

// Len returns the number of queued elements.
func (q *FIFO[T]) Len() int { return len(q.buf) - q.head }

// Push appends v at the tail.
func (q *FIFO[T]) Push(v T) {
	if q.head > 0 && (q.head == len(q.buf) || 2*q.head >= cap(q.buf)) {
		n := copy(q.buf, q.buf[q.head:])
		clear(q.buf[n:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, v)
}

// Peek returns the head element without removing it. It panics on an
// empty queue, like indexing an empty slice would.
func (q *FIFO[T]) Peek() T { return q.buf[q.head] }

// Pop removes and returns the head element, clearing the vacated slot
// so pooled objects do not linger behind the head.
func (q *FIFO[T]) Pop() T {
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return v
}
