package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Box is a timing module. Clock is called exactly once per simulated
// cycle; a box reads its input signals, updates local state (queues,
// registers), calls its emulator library for any rendering
// computation, and writes its output signals.
type Box interface {
	BoxName() string
	Clock(cycle int64)
}

// BoxBase provides the name plumbing shared by all boxes; embed it
// and call Init in the box constructor.
type BoxBase struct {
	name string
}

// Init sets the box name.
func (b *BoxBase) Init(name string) { b.name = name }

// BoxName implements Box.
func (b *BoxBase) BoxName() string { return b.name }

// EndCycleFunc runs after boxes have been clocked and before
// statistics are sampled. Hooks registered with OnEndCycle run on the
// coordinating goroutine at every full-sync boundary, in registration
// order, in both serial and parallel mode: they are the barrier at
// which cross-shard state is published (quiesce snapshots taken,
// trace buffers drained, checkpoints captured). Hooks registered with
// OnLocalCycle additionally run once per simulated cycle even inside
// a skew batch, on the shard that owns their anchor boxes.
type EndCycleFunc func(cycle int64)

// hookEntry is one registered end-of-cycle hook. Global hooks (local
// == false) run at full syncs on the coordinator. Local hooks run
// every simulated cycle: merged into the global sequence when the
// skew batch is 1 (exactly the historical behavior), or on the shard
// owning their anchor boxes when shards free-run.
type hookEntry struct {
	fn      EndCycleFunc
	local   bool
	anchors []string // box names owning the hook's state (local only)
}

// Simulator owns the clock loop: a set of boxes, the signal binder,
// the statistics manager, and an object-identifier source shared by
// everything in one simulated GPU.
//
// By default all boxes are clocked serially from one goroutine. With
// SetWorkers(n > 1), boxes are partitioned into shards that are
// clocked concurrently and synchronized on a sense-reversing spin
// barrier. Because every signal has latency >= 1 (a cycle's reads
// never observe that cycle's writes) and all non-signal cross-box
// state is only touched at sync boundaries, parallel runs are
// bit-identical to serial runs. Boxes that share mutable state
// directly (method calls, shared counters) must be kept on one shard
// with Pin; cross-box dependencies outside the signal model are
// declared with ConstrainSkew.
//
// With EnableSkewBatching, shards additionally free-run for B cycles
// between full syncs, where B is the minimum latency of any signal or
// constraint edge crossing pin-unit boundaries — the paper's
// observation that a wire with latency L needs cross-shard
// synchronization only every L cycles. B is derived from the box/pin
// topology alone, so serial and parallel runs batch identically and
// stay bit-identical.
//
// Run failures are classified into typed errors — ErrCycleLimit,
// ErrDeadlock, ErrPanic, ErrCanceled, *SimError — and every abnormal
// outcome except plain budget exhaustion leaves a black-box
// CrashReport behind (see Crash).
type Simulator struct {
	Binder *Binder
	Stats  *StatManager
	IDs    IDSource

	boxes     []Box
	cycle     int64
	done      func() bool
	workers   int
	pinGroup  map[Box]string
	hooks     []hookEntry
	traced    []*Signal // signals with a tracer, flushed each cycle
	tracedSet bool

	// Skew batching (EnableSkewBatching): skew is the batch length B
	// computed at Run start; syncCycle is the last cycle of the batch
	// currently being finalized, so FullSync can recognize a partial
	// final batch. serialLocals caches the local hooks for the serial
	// loop. constraints are the ConstrainSkew edges.
	skewOn       bool
	skewLimit    int
	skew         int
	syncCycle    int64
	serialLocals []EndCycleFunc
	constraints  []skewEdge

	// Profile-guided sharding: boxCosts seeds the bin-packing
	// partition (SetBoxCosts); reshardAt arms the one-shot warm-up
	// re-shard (SetAutoReshard).
	boxCosts  map[string]float64
	reshardAt int64

	wd     *watchdog
	crash  *CrashReport
	flight func(max int) []FlightEvent // crash flight-recorder source

	// Host-time attribution (SetClockObserver): on cycles where
	// cycle%obsEvery == 0 every box clock is individually timed and
	// reported. Nil obs (the default) costs one branch per shard per
	// cycle and nothing else.
	obs      ClockObserver
	obsEvery int64

	// Fault injection (SetClockGate): consulted before every box
	// clock. Nil (the default) costs one branch per box per cycle.
	gate ClockGate

	// Cooperative cancellation: Stop (or a context watcher) raises
	// stopped; the clock loop polls it once per batch. The atomic is
	// the only cross-goroutine state — the cancellation cause is
	// derived from the context itself when the loop stops, so the
	// watcher goroutine never writes a plain field the loop might be
	// writing too. The loop additionally polls the context directly
	// every ctxPollMask+1 cycles, bounding cancellation latency in
	// cycles even when the watcher goroutine is slow to schedule.
	stopped atomic.Bool
	runCtx  context.Context
	ctxDone <-chan struct{}

	curBox Box // serial mode: box being clocked, for panic attribution
}

// NewSimulator creates a simulator with the given statistics sampling
// interval (0 disables interval sampling).
func NewSimulator(statInterval int64) *Simulator {
	return &Simulator{
		Binder:    NewBinder(),
		Stats:     NewStatManager(statInterval),
		skewLimit: defaultSkewLimit,
		syncCycle: -1,
	}
}

// Register adds a box to the clock loop in registration order.
func (s *Simulator) Register(b Box) { s.boxes = append(s.boxes, b) }

// Boxes returns the registered boxes in registration order. The slice
// is a copy; the boxes are shared — read their state only at the
// cycle barrier (an OnEndCycle hook) or outside Run.
func (s *Simulator) Boxes() []Box { return append([]Box(nil), s.boxes...) }

// ClockObserver receives sampled host-time measurements of individual
// box clocks (see SetClockObserver). In parallel mode BoxClocked is
// called concurrently from different shards; implementations must be
// safe for that. The coordinator additionally reports its barrier
// wait under the BarrierBoxName pseudo-box, so sync cost never skews
// the per-box attribution.
type ClockObserver interface {
	// BoxClocked reports that box's Clock call on the given shard took
	// hostNs wall-clock nanoseconds.
	BoxClocked(shard int, box Box, hostNs int64)
}

// SetClockObserver installs an observer that times every box's Clock
// call on cycles where cycle%sampleEvery == 0 (sampleEvery <= 1 times
// every cycle). Pass nil to remove the observer (the default). A
// sampled cycle costs two monotonic clock reads per box; unsampled
// cycles pay one branch per shard. Observation never changes
// simulation results.
func (s *Simulator) SetClockObserver(o ClockObserver, sampleEvery int64) {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	s.obs = o
	s.obsEvery = sampleEvery
}

// ClockGate intercepts box clocks for fault injection (the chaos
// engine): BeforeClock runs immediately before each box's Clock call
// and may skip the clock (return false — a stalled box), panic (an
// injected crash, attributed to the gated box like any box panic), or
// pass through (return true). In parallel mode BeforeClock is called
// concurrently from different shards and must be safe for that;
// deterministic injectors precompute their decisions from (cycle,
// box) only. Gating is invisible when nil (the default).
type ClockGate interface {
	BeforeClock(cycle int64, box Box) bool
}

// SetClockGate installs a fault-injection gate (nil removes it).
func (s *Simulator) SetClockGate(g ClockGate) { s.gate = g }

// WatchdogProgress reports the armed watchdog's view of forward
// progress: the last cycle with observed activity and the cumulative
// activity fingerprint (total signal traffic plus every
// ProgressReporter counter). ok is false when no watchdog is armed.
// The state is barrier-published: call only from the coordinating
// goroutine (an OnEndCycle hook, or outside Run).
func (s *Simulator) WatchdogProgress() (lastProgress int64, fingerprint uint64, ok bool) {
	if s.wd == nil {
		return 0, 0, false
	}
	return s.wd.lastProgress, s.wd.lastTotal, true
}

// SetDone installs the termination predicate checked at every full
// sync (typically "command processor has retired all commands"). The
// predicate runs at the sync boundary, never concurrently with box
// clocks.
func (s *Simulator) SetDone(done func() bool) { s.done = done }

// SetWorkers selects the execution mode: 0 or 1 clocks all boxes
// serially (the default), n > 1 clocks box shards on n goroutines,
// and -1 auto-sizes to the schedulable processors. The effective
// count is clamped to runtime.GOMAXPROCS(0) and to the number of
// shardable units (see EffectiveWorkers); results are identical in
// every mode.
func (s *Simulator) SetWorkers(n int) {
	if n < -1 {
		n = -1
	}
	s.workers = n
}

// Workers returns the configured worker count (0 or 1 means serial,
// -1 auto-sizes). See EffectiveWorkers for the clamped value a Run
// will actually use.
func (s *Simulator) Workers() int { return s.workers }

// EffectiveWorkers returns the shard count Run will use right now:
// the configured worker count resolved against GOMAXPROCS and the
// shardable unit count (0 or 1 means serial).
func (s *Simulator) EffectiveWorkers() int { return s.resolveWorkers() }

// SetWatchdog arms the progress watchdog: if no signal traffic and no
// ProgressReporter counter changes for window consecutive cycles, Run
// aborts with a *DeadlockError carrying a structured report instead
// of spinning to the cycle budget. Pass 0 to disable (the default).
// The watchdog runs at full syncs and does not perturb timing.
func (s *Simulator) SetWatchdog(window int64) {
	if window <= 0 {
		s.wd = nil
		return
	}
	s.wd = &watchdog{window: window}
}

// Stop requests cooperative cancellation: the clock loop returns an
// ErrCanceled-wrapping error at the next sync boundary, with all
// statistics and traces produced so far flushed. Safe to call from
// any goroutine (e.g. a signal handler).
func (s *Simulator) Stop() { s.stopped.Store(true) }

// Pin assigns boxes to a named affinity group: all boxes pinned to
// the same group are clocked on the same worker, in registration
// order relative to each other. Pin boxes that share mutable state
// outside the signal model (direct method calls, a shared batch
// descriptor); unpinned boxes may each be clocked on any worker.
func (s *Simulator) Pin(group string, boxes ...Box) {
	if s.pinGroup == nil {
		s.pinGroup = make(map[Box]string)
	}
	for _, b := range boxes {
		s.pinGroup[b] = group
	}
}

// OnEndCycle registers a hook to run at every full-sync boundary, on
// the coordinating goroutine, in registration order.
func (s *Simulator) OnEndCycle(fn EndCycleFunc) {
	s.hooks = append(s.hooks, hookEntry{fn: fn})
}

// OnLocalCycle registers a hook that must run once per simulated
// cycle — flow-credit folds and other state owned by specific boxes.
// Without skew batching it behaves exactly like OnEndCycle (merged
// into the global hook sequence in registration order). When skew
// batching splits the run into free-running batches, the hook runs on
// the shard owning the anchor boxes at the end of every simulated
// cycle; all anchors must land on one shard, which the partition
// guarantees for boxes connected by latency-1 dependencies (their
// ConstrainSkew edge forces batch length 1 across units).
func (s *Simulator) OnLocalCycle(fn EndCycleFunc, anchors ...string) {
	s.hooks = append(s.hooks, hookEntry{fn: fn, local: true, anchors: anchors})
}

// ConstrainSkew declares a cross-box dependency outside the signal
// model: state produced by (or about) box a is observed by box b no
// earlier than lat cycles later. The skew computation treats it like
// a signal of that latency between the two boxes' pin units — a
// latency-1 edge (flow credit release, barrier-published quiesce
// flags) forces full syncs every cycle whenever the two boxes can
// land on different shards.
func (s *Simulator) ConstrainSkew(a, b string, lat int) {
	if lat < 1 {
		lat = 1
	}
	s.constraints = append(s.constraints, skewEdge{a: a, b: b, lat: lat})
}

// EnableSkewBatching lets shards free-run between full syncs for up
// to the computed latency bound (see SkewBatch), capped at limit
// (<= 0 selects the default cap of 64 cycles). Off by default: the
// batch length is then 1 and every cycle is a full sync, the
// historical behavior. Batching never changes simulation results —
// the batch length is derived from the pin topology, identically in
// serial and parallel mode — but it does coarsen full-sync
// consumers: the watchdog, the metrics bus and the checkpoint engine
// observe the run every B cycles.
func (s *Simulator) EnableSkewBatching(limit int) {
	if limit <= 0 {
		limit = defaultSkewLimit
	}
	s.skewOn = true
	s.skewLimit = limit
}

// SkewBatch returns the skew batch length B the current topology
// yields: 1 unless EnableSkewBatching is on and every cross-unit
// dependency has latency >= 2.
func (s *Simulator) SkewBatch() int {
	if s.skew > 0 {
		return s.skew
	}
	return s.computeSkew()
}

// FullSync reports whether the given cycle is a full-sync boundary of
// the current run — a cycle at which global hooks run and the whole
// machine state is barrier-published. Checkpoint engines use it to
// refuse captures at skewed cycles. Every cycle is a full sync when
// skew batching is off or the computed batch is 1.
func (s *Simulator) FullSync(cycle int64) bool {
	if s.skew <= 1 {
		return true
	}
	if cycle == s.syncCycle {
		return true // partial final batch ends at the cycle limit
	}
	return (cycle+1)%int64(s.skew) == 0
}

// SetBoxCosts seeds the partition's cost model: estimated relative
// host cost per Clock call, keyed by box name (boxes absent from the
// map count as 1). The partition packs pin units onto shards by
// summed cost. Pass nil to restore uniform costs.
func (s *Simulator) SetBoxCosts(costs map[string]float64) { s.boxCosts = costs }

// SetAutoReshard arms the warm-up re-shard of parallel runs: after
// warmupCycles, the next full sync re-partitions the boxes using
// measured per-box host time — from the attached ClockObserver when
// it implements BoxCoster (the obsv profiler does), else from a
// temporary sampling collector installed just for the warm-up — and
// the run continues on the rebalanced shards. Results are unchanged
// by construction: any partition is bit-identical. Pass 0 to disable
// (the default).
func (s *Simulator) SetAutoReshard(warmupCycles int64) {
	if warmupCycles < 0 {
		warmupCycles = 0
	}
	s.reshardAt = warmupCycles
}

// Cycle returns the current simulation cycle.
func (s *Simulator) Cycle() int64 { return s.cycle }

// ErrCycleLimit is returned by Run when the cycle budget is exhausted
// before the termination predicate fires.
var ErrCycleLimit = errors.New("core: cycle limit reached")

// Run clocks all boxes until the done predicate reports true or
// maxCycles elapse. Equivalent to RunContext with a background
// context.
func (s *Simulator) Run(maxCycles int64) error {
	return s.RunContext(context.Background(), maxCycles)
}

// RunContext clocks all boxes until the done predicate reports true,
// maxCycles elapse, the context is canceled, or a failure occurs.
//
// Failures are returned as typed errors, never raised as panics:
// model violations (signal bandwidth, lost data) as *SimError, box
// panics as *CrashError (errors.Is ErrPanic), watchdog deadlocks as
// *DeadlockError (errors.Is ErrDeadlock), cancellation as an
// ErrCanceled-wrapping error, and budget exhaustion as an
// ErrCycleLimit-wrapping error. On every path — including failures —
// the statistics rows and signal-trace entries produced so far are
// flushed, so a partial run still yields its outputs; abnormal
// failures additionally record a black-box CrashReport (see Crash).
func (s *Simulator) RunContext(ctx context.Context, maxCycles int64) error {
	if err := s.Binder.Validate(); err != nil {
		return err
	}
	if s.done == nil {
		return errors.New("core: no termination predicate installed")
	}
	s.refreshTraced()
	s.crash = nil
	s.stopped.Store(false)
	s.runCtx = nil
	s.ctxDone = nil
	if ctx != nil && ctx.Done() != nil {
		s.runCtx = ctx
		s.ctxDone = ctx.Done()
		if ctx.Err() != nil {
			// Already canceled: fail deterministically before the
			// first cycle instead of racing the watcher goroutine.
			s.stopped.Store(true)
		} else {
			quit := make(chan struct{})
			go func() {
				select {
				case <-ctx.Done():
					s.stopped.Store(true)
				case <-quit:
				}
			}()
			defer close(quit)
		}
	}
	if s.wd != nil {
		s.wd.reset(s)
	}
	s.skew = s.computeSkew()
	s.syncCycle = -1
	s.serialLocals = s.serialLocals[:0]
	if s.skew > 1 {
		for _, h := range s.hooks {
			if h.local {
				s.serialLocals = append(s.serialLocals, h.fn)
			}
		}
		s.growCrossUnitRings()
	}
	var err error
	if nw := s.resolveWorkers(); nw > 1 {
		err = s.runParallel(maxCycles, nw)
	} else {
		err = s.runSerial(maxCycles)
	}
	// A failing cycle stops before its barrier: drain whatever trace
	// entries its boxes produced so the trace shows the violation.
	s.flushTraces()
	s.Stats.FoldShadows()
	s.Stats.Flush(s.cycle)
	s.crash = s.buildCrashReport(err)
	return err
}

// growCrossUnitRings widens the ring of every signal crossing
// pin-unit boundaries to maxLat+B slots: with shards free-running B
// cycles apart, a reader up to B-1 cycles behind the writer must
// still find every in-flight arrival in its own slot. Ring growth
// only re-places in-flight objects by arrival stamp; normal-path
// behavior is unchanged (the slot arithmetic stays cycle mod len).
// Every cross-unit signal is grown — not just cross-shard ones — so a
// warm-up re-shard never needs to touch rings mid-run.
func (s *Simulator) growCrossUnitRings() {
	unitOf := make(map[string]int)
	for i, u := range s.pinUnits() {
		for _, b := range u.boxes {
			unitOf[b.BoxName()] = i
		}
	}
	for name, sig := range s.Binder.signals {
		pu, pok := unitOf[s.Binder.producers[name]]
		cu, cok := unitOf[s.Binder.consumers[name]]
		if pok && cok && pu == cu {
			continue
		}
		sig.growRing(sig.maxLat + s.skew)
	}
}

// ctxPollMask: the loop does a non-blocking poll of the run context
// every 1024 cycles, so cancellation latency is bounded in simulated
// cycles (the watcher goroutine bounds it in wall time).
const ctxPollMask = 1<<10 - 1

// shouldStop is the per-batch cancellation check at the top of both
// run loops.
func (s *Simulator) shouldStop(cycle int64) bool {
	if s.stopped.Load() {
		return true
	}
	if s.ctxDone != nil && cycle&ctxPollMask < int64(s.skewOrOne()) {
		select {
		case <-s.ctxDone:
			s.stopped.Store(true)
			return true
		default:
		}
	}
	return false
}

func (s *Simulator) skewOrOne() int {
	if s.skew > 1 {
		return s.skew
	}
	return 1
}

// stopErr builds the cancellation error, folding in the context
// cause when the run context was canceled (a bare Stop has none).
func (s *Simulator) stopErr() error {
	if s.runCtx != nil {
		if cause := context.Cause(s.runCtx); cause != nil {
			return fmt.Errorf("%w at cycle %d: %v", ErrCanceled, s.cycle, cause)
		}
	}
	return fmt.Errorf("%w at cycle %d", ErrCanceled, s.cycle)
}

// endOfBatch runs the shared full-sync tail after the batch of cycles
// [first, last] has been clocked: watchdog, barrier hooks, stats,
// termination check. With skew batching off, first == last and this
// is exactly the historical per-cycle barrier. It returns (true, err)
// when the run loop should return err.
func (s *Simulator) endOfBatch(first, last int64) (bool, error) {
	// Advance the counter before the barrier hooks run: a checkpoint
	// captured in a hook must record the next cycle to execute, not
	// re-execute the batch on resume. Hooks still observe last as
	// their argument. The watchdog check also precedes the hooks so
	// the captured watchdog fingerprint is the post-barrier state — a
	// restored run continues the progress tracking exactly where the
	// uninterrupted run left it.
	s.cycle = last + 1
	s.syncCycle = last
	var rep *DeadlockReport
	if s.wd != nil {
		rep = s.wd.check(s, last)
	}
	s.Stats.FoldShadows()
	for _, h := range s.hooks {
		if h.local && s.skew > 1 {
			continue // already ran per cycle on its owning shard
		}
		h.fn(last)
	}
	s.flushTraces()
	s.Stats.TickBatch(first, last)
	if s.done() {
		return true, nil
	}
	if rep != nil {
		return true, &DeadlockError{Report: rep}
	}
	return false, nil
}

// EndCycle runs the end-of-cycle hooks (global and local, in
// registration order) and drains signal trace buffers. Run calls the
// equivalent automatically at every full sync; only test harnesses
// that clock boxes manually (outside Run) need to call it themselves.
func (s *Simulator) EndCycle(cycle int64) {
	s.Stats.FoldShadows()
	for _, h := range s.hooks {
		h.fn(cycle)
	}
	s.flushTraces()
}

// batchEnd returns one past the last cycle of the batch starting at
// first: batches are aligned to absolute multiples of the batch
// length (so checkpoint-restored runs re-batch identically) and
// clipped to the cycle limit.
func (s *Simulator) batchEnd(first, limit int64) int64 {
	b := int64(s.skew)
	if b <= 1 {
		return first + 1
	}
	end := first - first%b + b
	if end > limit {
		end = limit
	}
	return end
}

// refreshTraced caches the traced-signal list. Sorted by signal name
// (Binder.Signals order), so the drained trace is deterministic
// regardless of worker count or clocking order.
func (s *Simulator) refreshTraced() {
	s.traced = s.traced[:0]
	for _, sig := range s.Binder.Signals() {
		if sig.tracer != nil {
			s.traced = append(s.traced, sig)
		}
	}
	s.tracedSet = true
}

func (s *Simulator) flushTraces() {
	if !s.tracedSet {
		// Manual harness clocking boxes outside Run: resolve the
		// traced set on first use.
		s.refreshTraced()
	}
	for _, sig := range s.traced {
		sig.flushTrace()
	}
}

func boxNameOf(b Box) string {
	if b == nil {
		return ""
	}
	return b.BoxName()
}

func (s *Simulator) runSerial(maxCycles int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(*SimError); ok {
				err = se
				return
			}
			err = &CrashError{
				Box: boxNameOf(s.curBox), Cycle: s.cycle,
				Value: r, Stack: debug.Stack(),
			}
		}
	}()
	limit := s.cycle + maxCycles
	for s.cycle < limit {
		if s.shouldStop(s.cycle) {
			return s.stopErr()
		}
		first := s.cycle
		last := s.batchEnd(first, limit) - 1
		for c := first; c <= last; c++ {
			s.cycle = c
			if s.obs != nil && c%s.obsEvery == 0 {
				for _, b := range s.boxes {
					s.curBox = b
					if s.gate != nil && !s.gate.BeforeClock(c, b) {
						continue
					}
					t0 := time.Now()
					b.Clock(c)
					s.obs.BoxClocked(0, b, time.Since(t0).Nanoseconds())
				}
			} else {
				for _, b := range s.boxes {
					s.curBox = b
					if s.gate != nil && !s.gate.BeforeClock(c, b) {
						continue
					}
					b.Clock(c)
				}
			}
			s.curBox = nil
			if s.skew > 1 {
				for _, fn := range s.serialLocals {
					fn(c)
				}
			}
		}
		if stop, err := s.endOfBatch(first, last); stop {
			return err
		}
	}
	return fmt.Errorf("%w after %d cycles", ErrCycleLimit, maxCycles)
}

// worker is one member of the persistent pool: it owns a shard of
// boxes (and the local hooks anchored there) and rendezvouses with
// its peers on the shared spin barrier twice per batch.
type worker struct {
	shard    int
	boxes    []Box
	locals   []EndCycleFunc // local hooks anchored on this shard
	skew     int
	obs      ClockObserver // sampled box-clock timing, nil when off
	obsEvery int64
	gate     ClockGate // fault injection, nil when off
	// Failure state, written before the join barrier and read by the
	// coordinator after it (the barrier orders both).
	simErr   *SimError
	crash    *CrashError
	curCycle int64
}

// clockBatch clocks the shard through cycles [first, last]. A failing
// box parks the shard at the join barrier like any other; the
// coordinator inspects the recorded failure after the rendezvous.
func (w *worker) clockBatch(first, last int64) {
	var cur Box
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(*SimError); ok {
				w.simErr = se
				return
			}
			// Wrap the raw panic with box and cycle context so a
			// parallel-mode crash names the failing box like serial
			// mode does, and capture the stack here: it still shows
			// the panicking frames during unwinding.
			w.crash = &CrashError{
				Box: boxNameOf(cur), Shard: w.shard, Cycle: w.curCycle,
				Value: r, Stack: debug.Stack(),
			}
		}
	}()
	for c := first; c <= last; c++ {
		w.curCycle = c
		if w.obs != nil && c%w.obsEvery == 0 {
			for _, b := range w.boxes {
				cur = b
				if w.gate != nil && !w.gate.BeforeClock(c, b) {
					continue
				}
				t0 := time.Now()
				b.Clock(c)
				w.obs.BoxClocked(w.shard, b, time.Since(t0).Nanoseconds())
			}
		} else {
			for _, b := range w.boxes {
				cur = b
				if w.gate != nil && !w.gate.BeforeClock(c, b) {
					continue
				}
				b.Clock(c)
			}
		}
		cur = nil
		if w.skew > 1 {
			for _, fn := range w.locals {
				fn(c)
			}
		}
	}
}

// localHooksByShard distributes the local hooks over the shard plan:
// each hook lands on the shard owning its anchor boxes. Only needed
// when shards free-run (skew > 1); with batch length 1 local hooks
// run in the global sequence instead. An anchor set spanning shards
// is a wiring error — latency-1-coupled boxes must share a pin unit.
func (s *Simulator) localHooksByShard(shards [][]Box) ([][]EndCycleFunc, error) {
	locals := make([][]EndCycleFunc, len(shards))
	if s.skew <= 1 {
		return locals, nil
	}
	shardOf := make(map[string]int)
	for i, sh := range shards {
		for _, b := range sh {
			shardOf[b.BoxName()] = i
		}
	}
	for _, h := range s.hooks {
		if !h.local {
			continue
		}
		target := -1
		for _, a := range h.anchors {
			w, ok := shardOf[a]
			if !ok {
				return nil, fmt.Errorf("core: local hook anchor %q is not a registered box", a)
			}
			if target < 0 {
				target = w
			} else if w != target {
				return nil, fmt.Errorf("core: local hook anchors %v span shards under skew batching; pin them together", h.anchors)
			}
		}
		if target < 0 {
			target = 0 // no anchors: coordinator shard
		}
		locals[target] = append(locals[target], h.fn)
	}
	return locals, nil
}

// barrierBox is the pseudo-box the coordinator's join-barrier wait is
// attributed to (see BarrierBoxName).
var barrierBox = pseudoBox{name: BarrierBoxName}

// parState is the coordinator-to-worker mailbox of the parallel loop:
// plain fields published by the release barrier (written only while
// every worker is blocked in it) and read by workers after it opens.
type parState struct {
	first, last int64
	stop        bool
}

func (s *Simulator) runParallel(maxCycles int64, nw int) (err error) {
	defer func() {
		// Coordinator-side panics (end-of-cycle hooks, the done
		// predicate) get the same black-box treatment as box panics.
		if r := recover(); r != nil {
			if se, ok := r.(*SimError); ok {
				err = se
				return
			}
			err = &CrashError{Cycle: s.cycle, Value: r, Stack: debug.Stack()}
		}
	}()

	// Warm-up cost measurement for the auto re-shard: use the attached
	// observer when it can already cost boxes, otherwise install a
	// temporary sampling collector (restored below).
	var collector *costCollector
	coster, _ := s.obs.(BoxCoster)
	if s.reshardAt > 0 && coster == nil && s.obs == nil {
		collector = newCostCollector()
		prevObs, prevEvery := s.obs, s.obsEvery
		s.obs, s.obsEvery = collector, collectorSample
		coster = collector
		defer func() { s.obs, s.obsEvery = prevObs, prevEvery }()
	}

	shards := s.partition(nw)
	locals, lerr := s.localHooksByShard(shards)
	if lerr != nil {
		return lerr
	}
	workers := make([]*worker, len(shards))
	for i, shard := range shards {
		workers[i] = &worker{
			shard: i, boxes: shard, locals: locals[i], skew: s.skew,
			obs: s.obs, obsEvery: s.obsEvery, gate: s.gate,
		}
	}
	// Shard 0 runs inline on the coordinating goroutine — it would
	// otherwise sleep through the whole batch — so only shards 1..n-1
	// get pool goroutines. The one barrier object serves both
	// rendezvous: release (coordinator has published the next batch in
	// ps) and join (every shard finished clocking it).
	bar := newSpinBarrier(nw)
	ps := &parState{}
	for _, w := range workers[1:] {
		go func(w *worker) {
			for {
				bar.await() // release: ps is published
				if ps.stop {
					return
				}
				w.clockBatch(ps.first, ps.last)
				bar.await() // join: failures recorded, state readable
			}
		}(w)
	}
	// The coordinator always exits between a join and the next
	// release, where every pool worker is blocked in the release
	// rendezvous: raising stop and joining it once releases them all
	// into their return path.
	defer func() {
		ps.stop = true
		bar.await()
	}()

	resharded := s.reshardAt <= 0
	limit := s.cycle + maxCycles
	for s.cycle < limit {
		if s.shouldStop(s.cycle) {
			return s.stopErr()
		}
		first := s.cycle
		last := s.batchEnd(first, limit) - 1
		ps.first, ps.last = first, last
		bar.await() // release the batch
		workers[0].clockBatch(first, last)
		// Join, attributing the coordinator's wait to the barrier
		// pseudo-box on sampled batches so sync cost never pollutes
		// the per-box host-time table that drives sharding.
		if s.obs != nil && first%s.obsEvery == 0 {
			t0 := time.Now()
			bar.await()
			s.obs.BoxClocked(0, barrierBox, time.Since(t0).Nanoseconds())
		} else {
			bar.await()
		}
		// Several shards may fail in the same batch; report the lowest
		// worker index for a deterministic error. Programming errors
		// (panics) outrank model violations.
		for _, w := range workers {
			if w.crash != nil {
				return w.crash
			}
		}
		for _, w := range workers {
			if w.simErr != nil {
				return w.simErr
			}
		}
		if stop, err := s.endOfBatch(first, last); stop {
			return err
		}
		if !resharded && s.cycle >= s.reshardAt && coster != nil {
			// Warm-up re-shard: every pool worker is parked in the
			// release rendezvous, so reassigning shard contents here is
			// ordered by the next barrier. Any partition yields
			// bit-identical results; only host time changes.
			resharded = true
			costs := coster.BoxCosts()
			newShards := partitionUnits(s.pinUnits(), nw, costs)
			newLocals, lerr := s.localHooksByShard(newShards)
			if lerr == nil {
				for i, w := range workers {
					w.boxes = newShards[i]
					w.locals = newLocals[i]
				}
			}
			if collector != nil {
				// Sampling did its job; drop the collector's overhead
				// for the rest of the run.
				s.obs, s.obsEvery = nil, 1
				for _, w := range workers {
					w.obs, w.obsEvery = nil, 1
				}
			}
		}
	}
	return fmt.Errorf("%w after %d cycles", ErrCycleLimit, maxCycles)
}
