package core

import (
	"errors"
	"fmt"
	"sync"
)

// Box is a timing module. Clock is called exactly once per simulated
// cycle; a box reads its input signals, updates local state (queues,
// registers), calls its emulator library for any rendering
// computation, and writes its output signals.
type Box interface {
	BoxName() string
	Clock(cycle int64)
}

// BoxBase provides the name plumbing shared by all boxes; embed it
// and call Init in the box constructor.
type BoxBase struct {
	name string
}

// Init sets the box name.
func (b *BoxBase) Init(name string) { b.name = name }

// BoxName implements Box.
func (b *BoxBase) BoxName() string { return b.name }

// EndCycleFunc runs once per simulated cycle after every box has been
// clocked and before statistics are sampled. Hooks always run on the
// coordinating goroutine, in registration order, in both serial and
// parallel mode: they are the cycle barrier at which cross-shard
// state is published (flow credits folded, quiesce snapshots taken,
// trace buffers drained).
type EndCycleFunc func(cycle int64)

// Simulator owns the clock loop: a set of boxes, the signal binder,
// the statistics manager, and an object-identifier source shared by
// everything in one simulated GPU.
//
// By default all boxes are clocked serially from one goroutine. With
// SetWorkers(n > 1), boxes are partitioned into shards that are
// clocked concurrently with one barrier per simulated cycle. Because
// every signal has latency >= 1 (a cycle's reads never observe that
// cycle's writes) and all non-signal cross-box state is only touched
// at the barrier, parallel runs are bit-identical to serial runs.
// Boxes that share mutable state directly (method calls, shared
// counters) must be kept on one shard with Pin.
type Simulator struct {
	Binder *Binder
	Stats  *StatManager
	IDs    IDSource

	boxes     []Box
	cycle     int64
	done      func() bool
	workers   int
	pinGroup  map[Box]string
	hooks     []EndCycleFunc
	traced    []*Signal // signals with a tracer, flushed each cycle
	tracedSet bool
}

// NewSimulator creates a simulator with the given statistics sampling
// interval (0 disables interval sampling).
func NewSimulator(statInterval int64) *Simulator {
	return &Simulator{
		Binder: NewBinder(),
		Stats:  NewStatManager(statInterval),
	}
}

// Register adds a box to the clock loop in registration order.
func (s *Simulator) Register(b Box) { s.boxes = append(s.boxes, b) }

// SetDone installs the termination predicate checked after every
// cycle (typically "command processor has retired all commands"). The
// predicate runs at the cycle barrier, never concurrently with box
// clocks.
func (s *Simulator) SetDone(done func() bool) { s.done = done }

// SetWorkers selects the execution mode: n <= 1 clocks all boxes
// serially (the default), n > 1 clocks box shards on n goroutines
// with a barrier per cycle. Results are identical in both modes.
func (s *Simulator) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	s.workers = n
}

// Workers returns the configured worker count (0 or 1 means serial).
func (s *Simulator) Workers() int { return s.workers }

// Pin assigns boxes to a named affinity group: all boxes pinned to
// the same group are clocked on the same worker, in registration
// order relative to each other. Pin boxes that share mutable state
// outside the signal model (direct method calls, a shared batch
// descriptor); unpinned boxes may each be clocked on any worker.
func (s *Simulator) Pin(group string, boxes ...Box) {
	if s.pinGroup == nil {
		s.pinGroup = make(map[Box]string)
	}
	for _, b := range boxes {
		s.pinGroup[b] = group
	}
}

// OnEndCycle registers a hook to run at every cycle barrier, in
// registration order.
func (s *Simulator) OnEndCycle(fn EndCycleFunc) { s.hooks = append(s.hooks, fn) }

// Cycle returns the current simulation cycle.
func (s *Simulator) Cycle() int64 { return s.cycle }

// ErrCycleLimit is returned by Run when the cycle budget is exhausted
// before the termination predicate fires.
var ErrCycleLimit = errors.New("core: cycle limit reached")

// Run clocks all boxes until the done predicate reports true or
// maxCycles elapse. Model violations (signal bandwidth, lost data)
// surface as *SimError — also from worker goroutines in parallel
// mode, without deadlocking the cycle barrier.
func (s *Simulator) Run(maxCycles int64) error {
	if err := s.Binder.Validate(); err != nil {
		return err
	}
	if s.done == nil {
		return errors.New("core: no termination predicate installed")
	}
	s.refreshTraced()
	var err error
	if s.workers > 1 {
		err = s.runParallel(maxCycles, s.workers)
	} else {
		err = s.runSerial(maxCycles)
	}
	// A failing cycle stops before its barrier: drain whatever trace
	// entries its boxes produced so the trace shows the violation.
	s.flushTraces()
	s.Stats.Flush(s.cycle)
	return err
}

// EndCycle runs the end-of-cycle hooks and drains signal trace
// buffers. Run calls it automatically after every cycle; only test
// harnesses that clock boxes manually (outside Run) need to call it
// themselves.
func (s *Simulator) EndCycle(cycle int64) {
	for _, fn := range s.hooks {
		fn(cycle)
	}
	s.flushTraces()
}

// refreshTraced caches the traced-signal list. Sorted by signal name
// (Binder.Signals order), so the drained trace is deterministic
// regardless of worker count or clocking order.
func (s *Simulator) refreshTraced() {
	s.traced = s.traced[:0]
	for _, sig := range s.Binder.Signals() {
		if sig.tracer != nil {
			s.traced = append(s.traced, sig)
		}
	}
	s.tracedSet = true
}

func (s *Simulator) flushTraces() {
	if !s.tracedSet {
		// Manual harness clocking boxes outside Run: resolve the
		// traced set on first use.
		s.refreshTraced()
	}
	for _, sig := range s.traced {
		sig.flushTrace()
	}
}

func (s *Simulator) runSerial(maxCycles int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(*SimError); ok {
				err = se
				return
			}
			panic(r)
		}
	}()
	limit := s.cycle + maxCycles
	for s.cycle < limit {
		for _, b := range s.boxes {
			b.Clock(s.cycle)
		}
		s.EndCycle(s.cycle)
		s.Stats.Tick(s.cycle)
		s.cycle++
		if s.done() {
			return nil
		}
	}
	return fmt.Errorf("%w after %d cycles", ErrCycleLimit, maxCycles)
}

// worker is one member of the persistent pool: it owns a shard of
// boxes and sleeps on its wake channel between cycles.
type worker struct {
	wake  chan int64
	boxes []Box
	// Failure state, written before wg.Done and read by the
	// coordinator after wg.Wait (the barrier orders both).
	simErr *SimError
	panicV any
}

func (w *worker) clock(cycle int64, wg *sync.WaitGroup) {
	// The barrier must complete even when a box fails, so the recover
	// and the Done are both deferred: a panicking shard parks like any
	// other and the coordinator inspects the failure after Wait.
	defer wg.Done()
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(*SimError); ok {
				w.simErr = se
			} else {
				w.panicV = r
			}
		}
	}()
	for _, b := range w.boxes {
		b.Clock(cycle)
	}
}

// partition splits the registered boxes into per-worker shards: boxes
// pinned to one group form an indivisible unit anchored at the
// group's first registration position, every unpinned box is its own
// unit, and units are dealt round-robin to workers. The split depends
// only on registration and pin order, never on scheduling.
func (s *Simulator) partition(nw int) [][]Box {
	var units [][]Box
	groupIdx := make(map[string]int)
	for _, b := range s.boxes {
		if g, pinned := s.pinGroup[b]; pinned {
			if i, seen := groupIdx[g]; seen {
				units[i] = append(units[i], b)
				continue
			}
			groupIdx[g] = len(units)
		}
		units = append(units, []Box{b})
	}
	if nw > len(units) {
		nw = len(units)
	}
	shards := make([][]Box, nw)
	for i, u := range units {
		w := i % nw
		shards[w] = append(shards[w], u...)
	}
	return shards
}

func (s *Simulator) runParallel(maxCycles int64, nw int) error {
	shards := s.partition(nw)
	// Shard 0 runs inline on the coordinating goroutine — it would
	// otherwise sleep through the whole cycle — so only shards 1..n-1
	// get pool workers.
	workers := make([]*worker, len(shards))
	var wg sync.WaitGroup
	for i, shard := range shards {
		w := &worker{boxes: shard}
		workers[i] = w
		if i == 0 {
			continue
		}
		w.wake = make(chan int64, 1)
		go func() {
			for cycle := range w.wake {
				w.clock(cycle, &wg)
			}
		}()
	}
	defer func() {
		for _, w := range workers[1:] {
			close(w.wake)
		}
	}()

	limit := s.cycle + maxCycles
	for s.cycle < limit {
		wg.Add(len(workers))
		for _, w := range workers[1:] {
			w.wake <- s.cycle
		}
		workers[0].clock(s.cycle, &wg)
		wg.Wait()
		for _, w := range workers {
			if w.panicV != nil {
				panic(w.panicV) // programming error: propagate like serial mode
			}
		}
		for _, w := range workers {
			if w.simErr != nil {
				// Several shards may fail in the same cycle; report
				// the lowest worker index for a deterministic error.
				return w.simErr
			}
		}
		s.EndCycle(s.cycle)
		s.Stats.Tick(s.cycle)
		s.cycle++
		if s.done() {
			return nil
		}
	}
	return fmt.Errorf("%w after %d cycles", ErrCycleLimit, maxCycles)
}
