package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Box is a timing module. Clock is called exactly once per simulated
// cycle; a box reads its input signals, updates local state (queues,
// registers), calls its emulator library for any rendering
// computation, and writes its output signals.
type Box interface {
	BoxName() string
	Clock(cycle int64)
}

// BoxBase provides the name plumbing shared by all boxes; embed it
// and call Init in the box constructor.
type BoxBase struct {
	name string
}

// Init sets the box name.
func (b *BoxBase) Init(name string) { b.name = name }

// BoxName implements Box.
func (b *BoxBase) BoxName() string { return b.name }

// EndCycleFunc runs once per simulated cycle after every box has been
// clocked and before statistics are sampled. Hooks always run on the
// coordinating goroutine, in registration order, in both serial and
// parallel mode: they are the cycle barrier at which cross-shard
// state is published (flow credits folded, quiesce snapshots taken,
// trace buffers drained).
type EndCycleFunc func(cycle int64)

// Simulator owns the clock loop: a set of boxes, the signal binder,
// the statistics manager, and an object-identifier source shared by
// everything in one simulated GPU.
//
// By default all boxes are clocked serially from one goroutine. With
// SetWorkers(n > 1), boxes are partitioned into shards that are
// clocked concurrently with one barrier per simulated cycle. Because
// every signal has latency >= 1 (a cycle's reads never observe that
// cycle's writes) and all non-signal cross-box state is only touched
// at the barrier, parallel runs are bit-identical to serial runs.
// Boxes that share mutable state directly (method calls, shared
// counters) must be kept on one shard with Pin.
//
// Run failures are classified into typed errors — ErrCycleLimit,
// ErrDeadlock, ErrPanic, ErrCanceled, *SimError — and every abnormal
// outcome except plain budget exhaustion leaves a black-box
// CrashReport behind (see Crash).
type Simulator struct {
	Binder *Binder
	Stats  *StatManager
	IDs    IDSource

	boxes     []Box
	cycle     int64
	done      func() bool
	workers   int
	pinGroup  map[Box]string
	hooks     []EndCycleFunc
	traced    []*Signal // signals with a tracer, flushed each cycle
	tracedSet bool

	wd    *watchdog
	crash *CrashReport

	// Host-time attribution (SetClockObserver): on cycles where
	// cycle%obsEvery == 0 every box clock is individually timed and
	// reported. Nil obs (the default) costs one branch per shard per
	// cycle and nothing else.
	obs      ClockObserver
	obsEvery int64

	// Fault injection (SetClockGate): consulted before every box
	// clock. Nil (the default) costs one branch per box per cycle.
	gate ClockGate

	// Cooperative cancellation: Stop (or a context watcher) raises
	// stopped; the clock loop polls it once per cycle. The atomic is
	// the only cross-goroutine state — the cancellation cause is
	// derived from the context itself when the loop stops, so the
	// watcher goroutine never writes a plain field the loop might be
	// writing too. The loop additionally polls the context directly
	// every ctxPollMask+1 cycles, bounding cancellation latency in
	// cycles even when the watcher goroutine is slow to schedule.
	stopped atomic.Bool
	runCtx  context.Context
	ctxDone <-chan struct{}

	curBox Box // serial mode: box being clocked, for panic attribution
}

// NewSimulator creates a simulator with the given statistics sampling
// interval (0 disables interval sampling).
func NewSimulator(statInterval int64) *Simulator {
	return &Simulator{
		Binder: NewBinder(),
		Stats:  NewStatManager(statInterval),
	}
}

// Register adds a box to the clock loop in registration order.
func (s *Simulator) Register(b Box) { s.boxes = append(s.boxes, b) }

// Boxes returns the registered boxes in registration order. The slice
// is a copy; the boxes are shared — read their state only at the
// cycle barrier (an OnEndCycle hook) or outside Run.
func (s *Simulator) Boxes() []Box { return append([]Box(nil), s.boxes...) }

// ClockObserver receives sampled host-time measurements of individual
// box clocks (see SetClockObserver). In parallel mode BoxClocked is
// called concurrently from different shards; implementations must be
// safe for that.
type ClockObserver interface {
	// BoxClocked reports that box's Clock call on the given shard took
	// hostNs wall-clock nanoseconds.
	BoxClocked(shard int, box Box, hostNs int64)
}

// SetClockObserver installs an observer that times every box's Clock
// call on cycles where cycle%sampleEvery == 0 (sampleEvery <= 1 times
// every cycle). Pass nil to remove the observer (the default). A
// sampled cycle costs two monotonic clock reads per box; unsampled
// cycles pay one branch per shard. Observation never changes
// simulation results.
func (s *Simulator) SetClockObserver(o ClockObserver, sampleEvery int64) {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	s.obs = o
	s.obsEvery = sampleEvery
}

// ClockGate intercepts box clocks for fault injection (the chaos
// engine): BeforeClock runs immediately before each box's Clock call
// and may skip the clock (return false — a stalled box), panic (an
// injected crash, attributed to the gated box like any box panic), or
// pass through (return true). In parallel mode BeforeClock is called
// concurrently from different shards and must be safe for that;
// deterministic injectors precompute their decisions from (cycle,
// box) only. Gating is invisible when nil (the default).
type ClockGate interface {
	BeforeClock(cycle int64, box Box) bool
}

// SetClockGate installs a fault-injection gate (nil removes it).
func (s *Simulator) SetClockGate(g ClockGate) { s.gate = g }

// WatchdogProgress reports the armed watchdog's view of forward
// progress: the last cycle with observed activity and the cumulative
// activity fingerprint (total signal traffic plus every
// ProgressReporter counter). ok is false when no watchdog is armed.
// The state is barrier-published: call only from the coordinating
// goroutine (an OnEndCycle hook, or outside Run).
func (s *Simulator) WatchdogProgress() (lastProgress int64, fingerprint uint64, ok bool) {
	if s.wd == nil {
		return 0, 0, false
	}
	return s.wd.lastProgress, s.wd.lastTotal, true
}

// SetDone installs the termination predicate checked after every
// cycle (typically "command processor has retired all commands"). The
// predicate runs at the cycle barrier, never concurrently with box
// clocks.
func (s *Simulator) SetDone(done func() bool) { s.done = done }

// SetWorkers selects the execution mode: n <= 1 clocks all boxes
// serially (the default), n > 1 clocks box shards on n goroutines
// with a barrier per cycle. Results are identical in both modes.
func (s *Simulator) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	s.workers = n
}

// Workers returns the configured worker count (0 or 1 means serial).
func (s *Simulator) Workers() int { return s.workers }

// SetWatchdog arms the progress watchdog: if no signal traffic and no
// ProgressReporter counter changes for window consecutive cycles, Run
// aborts with a *DeadlockError carrying a structured report instead
// of spinning to the cycle budget. Pass 0 to disable (the default).
// The watchdog runs at the cycle barrier and does not perturb timing.
func (s *Simulator) SetWatchdog(window int64) {
	if window <= 0 {
		s.wd = nil
		return
	}
	s.wd = &watchdog{window: window}
}

// Stop requests cooperative cancellation: the clock loop returns an
// ErrCanceled-wrapping error at the next cycle boundary, with all
// statistics and traces produced so far flushed. Safe to call from
// any goroutine (e.g. a signal handler).
func (s *Simulator) Stop() { s.stopped.Store(true) }

// Pin assigns boxes to a named affinity group: all boxes pinned to
// the same group are clocked on the same worker, in registration
// order relative to each other. Pin boxes that share mutable state
// outside the signal model (direct method calls, a shared batch
// descriptor); unpinned boxes may each be clocked on any worker.
func (s *Simulator) Pin(group string, boxes ...Box) {
	if s.pinGroup == nil {
		s.pinGroup = make(map[Box]string)
	}
	for _, b := range boxes {
		s.pinGroup[b] = group
	}
}

// OnEndCycle registers a hook to run at every cycle barrier, in
// registration order.
func (s *Simulator) OnEndCycle(fn EndCycleFunc) { s.hooks = append(s.hooks, fn) }

// Cycle returns the current simulation cycle.
func (s *Simulator) Cycle() int64 { return s.cycle }

// ErrCycleLimit is returned by Run when the cycle budget is exhausted
// before the termination predicate fires.
var ErrCycleLimit = errors.New("core: cycle limit reached")

// Run clocks all boxes until the done predicate reports true or
// maxCycles elapse. Equivalent to RunContext with a background
// context.
func (s *Simulator) Run(maxCycles int64) error {
	return s.RunContext(context.Background(), maxCycles)
}

// RunContext clocks all boxes until the done predicate reports true,
// maxCycles elapse, the context is canceled, or a failure occurs.
//
// Failures are returned as typed errors, never raised as panics:
// model violations (signal bandwidth, lost data) as *SimError, box
// panics as *CrashError (errors.Is ErrPanic), watchdog deadlocks as
// *DeadlockError (errors.Is ErrDeadlock), cancellation as an
// ErrCanceled-wrapping error, and budget exhaustion as an
// ErrCycleLimit-wrapping error. On every path — including failures —
// the statistics rows and signal-trace entries produced so far are
// flushed, so a partial run still yields its outputs; abnormal
// failures additionally record a black-box CrashReport (see Crash).
func (s *Simulator) RunContext(ctx context.Context, maxCycles int64) error {
	if err := s.Binder.Validate(); err != nil {
		return err
	}
	if s.done == nil {
		return errors.New("core: no termination predicate installed")
	}
	s.refreshTraced()
	s.crash = nil
	s.stopped.Store(false)
	s.runCtx = nil
	s.ctxDone = nil
	if ctx != nil && ctx.Done() != nil {
		s.runCtx = ctx
		s.ctxDone = ctx.Done()
		if ctx.Err() != nil {
			// Already canceled: fail deterministically before the
			// first cycle instead of racing the watcher goroutine.
			s.stopped.Store(true)
		} else {
			quit := make(chan struct{})
			go func() {
				select {
				case <-ctx.Done():
					s.stopped.Store(true)
				case <-quit:
				}
			}()
			defer close(quit)
		}
	}
	if s.wd != nil {
		s.wd.reset(s)
	}
	var err error
	if s.workers > 1 {
		err = s.runParallel(maxCycles, s.workers)
	} else {
		err = s.runSerial(maxCycles)
	}
	// A failing cycle stops before its barrier: drain whatever trace
	// entries its boxes produced so the trace shows the violation.
	s.flushTraces()
	s.Stats.FoldShadows()
	s.Stats.Flush(s.cycle)
	s.crash = s.buildCrashReport(err)
	return err
}

// ctxPollMask: the loop does a non-blocking poll of the run context
// every 1024 cycles, so cancellation latency is bounded in simulated
// cycles (the watcher goroutine bounds it in wall time).
const ctxPollMask = 1<<10 - 1

// shouldStop is the per-cycle cancellation check at the top of both
// run loops.
func (s *Simulator) shouldStop(cycle int64) bool {
	if s.stopped.Load() {
		return true
	}
	if s.ctxDone != nil && cycle&ctxPollMask == 0 {
		select {
		case <-s.ctxDone:
			s.stopped.Store(true)
			return true
		default:
		}
	}
	return false
}

// stopErr builds the cancellation error, folding in the context
// cause when the run context was canceled (a bare Stop has none).
func (s *Simulator) stopErr() error {
	if s.runCtx != nil {
		if cause := context.Cause(s.runCtx); cause != nil {
			return fmt.Errorf("%w at cycle %d: %v", ErrCanceled, s.cycle, cause)
		}
	}
	return fmt.Errorf("%w at cycle %d", ErrCanceled, s.cycle)
}

// endOfCycle runs the shared per-cycle tail: barrier hooks, stats,
// termination and watchdog checks. It returns (true, err) when the
// run loop should return err.
func (s *Simulator) endOfCycle() (bool, error) {
	cyc := s.cycle
	// Advance the counter before the barrier hooks run: a checkpoint
	// captured in a hook must record the next cycle to execute, not
	// re-execute cyc on resume. Hooks still observe cyc as their
	// argument. The watchdog check also precedes the hooks so the
	// captured watchdog fingerprint is the post-barrier state — a
	// restored run continues the progress tracking exactly where the
	// uninterrupted run left it.
	s.cycle++
	var rep *DeadlockReport
	if s.wd != nil {
		rep = s.wd.check(s, cyc)
	}
	s.EndCycle(cyc)
	s.Stats.Tick(cyc)
	if s.done() {
		return true, nil
	}
	if rep != nil {
		return true, &DeadlockError{Report: rep}
	}
	return false, nil
}

// EndCycle runs the end-of-cycle hooks and drains signal trace
// buffers. Run calls it automatically after every cycle; only test
// harnesses that clock boxes manually (outside Run) need to call it
// themselves.
func (s *Simulator) EndCycle(cycle int64) {
	s.Stats.FoldShadows()
	for _, fn := range s.hooks {
		fn(cycle)
	}
	s.flushTraces()
}

// refreshTraced caches the traced-signal list. Sorted by signal name
// (Binder.Signals order), so the drained trace is deterministic
// regardless of worker count or clocking order.
func (s *Simulator) refreshTraced() {
	s.traced = s.traced[:0]
	for _, sig := range s.Binder.Signals() {
		if sig.tracer != nil {
			s.traced = append(s.traced, sig)
		}
	}
	s.tracedSet = true
}

func (s *Simulator) flushTraces() {
	if !s.tracedSet {
		// Manual harness clocking boxes outside Run: resolve the
		// traced set on first use.
		s.refreshTraced()
	}
	for _, sig := range s.traced {
		sig.flushTrace()
	}
}

func boxNameOf(b Box) string {
	if b == nil {
		return ""
	}
	return b.BoxName()
}

func (s *Simulator) runSerial(maxCycles int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(*SimError); ok {
				err = se
				return
			}
			err = &CrashError{
				Box: boxNameOf(s.curBox), Cycle: s.cycle,
				Value: r, Stack: debug.Stack(),
			}
		}
	}()
	limit := s.cycle + maxCycles
	for s.cycle < limit {
		if s.shouldStop(s.cycle) {
			return s.stopErr()
		}
		if s.obs != nil && s.cycle%s.obsEvery == 0 {
			for _, b := range s.boxes {
				s.curBox = b
				if s.gate != nil && !s.gate.BeforeClock(s.cycle, b) {
					continue
				}
				t0 := time.Now()
				b.Clock(s.cycle)
				s.obs.BoxClocked(0, b, time.Since(t0).Nanoseconds())
			}
		} else {
			for _, b := range s.boxes {
				s.curBox = b
				if s.gate != nil && !s.gate.BeforeClock(s.cycle, b) {
					continue
				}
				b.Clock(s.cycle)
			}
		}
		s.curBox = nil
		if stop, err := s.endOfCycle(); stop {
			return err
		}
	}
	return fmt.Errorf("%w after %d cycles", ErrCycleLimit, maxCycles)
}

// worker is one member of the persistent pool: it owns a shard of
// boxes and sleeps on its wake channel between cycles.
type worker struct {
	shard    int
	wake     chan int64
	boxes    []Box
	obs      ClockObserver // sampled box-clock timing, nil when off
	obsEvery int64
	gate     ClockGate // fault injection, nil when off
	// Failure state, written before wg.Done and read by the
	// coordinator after wg.Wait (the barrier orders both).
	simErr *SimError
	crash  *CrashError
}

func (w *worker) clock(cycle int64, wg *sync.WaitGroup) {
	// The barrier must complete even when a box fails, so the recover
	// and the Done are both deferred: a panicking shard parks like any
	// other and the coordinator inspects the failure after Wait.
	defer wg.Done()
	var cur Box
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(*SimError); ok {
				w.simErr = se
				return
			}
			// Wrap the raw panic with box and cycle context so a
			// parallel-mode crash names the failing box like serial
			// mode does, and capture the stack here: it still shows
			// the panicking frames during unwinding.
			w.crash = &CrashError{
				Box: boxNameOf(cur), Shard: w.shard, Cycle: cycle,
				Value: r, Stack: debug.Stack(),
			}
		}
	}()
	if w.obs != nil && cycle%w.obsEvery == 0 {
		for _, b := range w.boxes {
			cur = b
			if w.gate != nil && !w.gate.BeforeClock(cycle, b) {
				continue
			}
			t0 := time.Now()
			b.Clock(cycle)
			w.obs.BoxClocked(w.shard, b, time.Since(t0).Nanoseconds())
		}
		return
	}
	for _, b := range w.boxes {
		cur = b
		if w.gate != nil && !w.gate.BeforeClock(cycle, b) {
			continue
		}
		b.Clock(cycle)
	}
}

// partition splits the registered boxes into per-worker shards: boxes
// pinned to one group form an indivisible unit anchored at the
// group's first registration position, every unpinned box is its own
// unit, and units are dealt round-robin to workers. The split depends
// only on registration and pin order, never on scheduling.
func (s *Simulator) partition(nw int) [][]Box {
	var units [][]Box
	groupIdx := make(map[string]int)
	for _, b := range s.boxes {
		if g, pinned := s.pinGroup[b]; pinned {
			if i, seen := groupIdx[g]; seen {
				units[i] = append(units[i], b)
				continue
			}
			groupIdx[g] = len(units)
		}
		units = append(units, []Box{b})
	}
	if nw > len(units) {
		nw = len(units)
	}
	shards := make([][]Box, nw)
	for i, u := range units {
		w := i % nw
		shards[w] = append(shards[w], u...)
	}
	return shards
}

func (s *Simulator) runParallel(maxCycles int64, nw int) (err error) {
	defer func() {
		// Coordinator-side panics (end-of-cycle hooks, the done
		// predicate) get the same black-box treatment as box panics.
		if r := recover(); r != nil {
			if se, ok := r.(*SimError); ok {
				err = se
				return
			}
			err = &CrashError{Cycle: s.cycle, Value: r, Stack: debug.Stack()}
		}
	}()
	shards := s.partition(nw)
	// Shard 0 runs inline on the coordinating goroutine — it would
	// otherwise sleep through the whole cycle — so only shards 1..n-1
	// get pool workers.
	workers := make([]*worker, len(shards))
	var wg sync.WaitGroup
	for i, shard := range shards {
		w := &worker{shard: i, boxes: shard, obs: s.obs, obsEvery: s.obsEvery, gate: s.gate}
		workers[i] = w
		if i == 0 {
			continue
		}
		w.wake = make(chan int64, 1)
		go func() {
			for cycle := range w.wake {
				w.clock(cycle, &wg)
			}
		}()
	}
	defer func() {
		for _, w := range workers[1:] {
			close(w.wake)
		}
	}()

	limit := s.cycle + maxCycles
	for s.cycle < limit {
		if s.shouldStop(s.cycle) {
			return s.stopErr()
		}
		wg.Add(len(workers))
		for _, w := range workers[1:] {
			w.wake <- s.cycle
		}
		workers[0].clock(s.cycle, &wg)
		wg.Wait()
		// Several shards may fail in the same cycle; report the
		// lowest worker index for a deterministic error. Programming
		// errors (panics) outrank model violations.
		for _, w := range workers {
			if w.crash != nil {
				return w.crash
			}
		}
		for _, w := range workers {
			if w.simErr != nil {
				return w.simErr
			}
		}
		if stop, err := s.endOfCycle(); stop {
			return err
		}
	}
	return fmt.Errorf("%w after %d cycles", ErrCycleLimit, maxCycles)
}
