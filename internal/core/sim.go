package core

import (
	"errors"
	"fmt"
)

// Box is a timing module. Clock is called exactly once per simulated
// cycle; a box reads its input signals, updates local state (queues,
// registers), calls its emulator library for any rendering
// computation, and writes its output signals.
type Box interface {
	BoxName() string
	Clock(cycle int64)
}

// BoxBase provides the name plumbing shared by all boxes; embed it
// and call Init in the box constructor.
type BoxBase struct {
	name string
}

// Init sets the box name.
func (b *BoxBase) Init(name string) { b.name = name }

// BoxName implements Box.
func (b *BoxBase) BoxName() string { return b.name }

// Simulator owns the clock loop: a set of boxes, the signal binder,
// the statistics manager, and an object-identifier source shared by
// everything in one simulated GPU.
type Simulator struct {
	Binder *Binder
	Stats  *StatManager
	IDs    IDSource

	boxes []Box
	cycle int64
	done  func() bool
}

// NewSimulator creates a simulator with the given statistics sampling
// interval (0 disables interval sampling).
func NewSimulator(statInterval int64) *Simulator {
	return &Simulator{
		Binder: NewBinder(),
		Stats:  NewStatManager(statInterval),
	}
}

// Register adds a box to the clock loop in registration order.
func (s *Simulator) Register(b Box) { s.boxes = append(s.boxes, b) }

// SetDone installs the termination predicate checked after every
// cycle (typically "command processor has retired all commands").
func (s *Simulator) SetDone(done func() bool) { s.done = done }

// Cycle returns the current simulation cycle.
func (s *Simulator) Cycle() int64 { return s.cycle }

// ErrCycleLimit is returned by Run when the cycle budget is exhausted
// before the termination predicate fires.
var ErrCycleLimit = errors.New("core: cycle limit reached")

// Run clocks all boxes until the done predicate reports true or
// maxCycles elapse. Model violations (signal bandwidth, lost data)
// surface as *SimError.
func (s *Simulator) Run(maxCycles int64) error {
	if err := s.Binder.Validate(); err != nil {
		return err
	}
	if s.done == nil {
		return errors.New("core: no termination predicate installed")
	}
	err := s.run(maxCycles)
	s.Stats.Flush(s.cycle)
	return err
}

func (s *Simulator) run(maxCycles int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(*SimError); ok {
				err = se
				return
			}
			panic(r)
		}
	}()
	limit := s.cycle + maxCycles
	for s.cycle < limit {
		for _, b := range s.boxes {
			b.Clock(s.cycle)
		}
		s.Stats.Tick(s.cycle)
		s.cycle++
		if s.done() {
			return nil
		}
	}
	return fmt.Errorf("%w after %d cycles", ErrCycleLimit, maxCycles)
}
