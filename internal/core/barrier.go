package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// spinBarrier is the rendezvous used by the parallel clock loop: a
// sense-reversing (generation-counted) barrier over a fixed set of
// participants. The previous implementation — sync.WaitGroup plus a
// wake channel per worker per cycle — cost ~1.7µs per barrier in
// scheduler round trips; here the steady-state cost is two atomic
// operations per participant plus a bounded spin, because a worker
// that arrives while its peers are still clocking almost always sees
// the generation advance within a few hundred loads.
//
// Protocol: every participant calls await. The last arriver of a
// generation resets the count, advances the generation and wakes any
// parked peers; everyone else spins on the generation counter for
// spinBudget iterations (yielding the processor periodically, so a
// host with fewer cores than participants still makes progress) and
// then parks on a condition variable. The same barrier object serves
// both the release rendezvous (coordinator publishes the next batch)
// and the join rendezvous (all shards finished the batch) — the two
// are simply alternating generations.
//
// Memory ordering: a participant's writes before await happen-before
// every other participant's reads after await, through the count
// add/reset and the generation load — all sync/atomic operations,
// which the race detector also recognizes.
type spinBarrier struct {
	n     int32
	count atomic.Int32
	gen   atomic.Uint32

	mu     sync.Mutex
	cond   *sync.Cond
	parked int // guarded by mu
}

// spinBudget bounds the busy-wait before a participant parks. At
// ~1ns per atomic load this is a few microseconds — longer than any
// healthy shard imbalance, far shorter than a descheduled peer.
const spinBudget = 4096

func newSpinBarrier(n int) *spinBarrier {
	b := &spinBarrier{n: int32(n)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all n participants have called it (for the
// current generation), then returns in every participant.
func (b *spinBarrier) await() {
	g := b.gen.Load()
	if b.count.Add(1) == b.n {
		// Last arriver: reset for the next generation before opening
		// this one. Peers cannot re-enter await until they observe the
		// generation change, so the reset never races their Add.
		b.count.Store(0)
		b.gen.Add(1)
		b.mu.Lock()
		if b.parked > 0 {
			b.cond.Broadcast()
		}
		b.mu.Unlock()
		return
	}
	for i := 0; i < spinBudget; i++ {
		if b.gen.Load() != g {
			return
		}
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
	b.mu.Lock()
	b.parked++
	for b.gen.Load() == g {
		b.cond.Wait()
	}
	b.parked--
	b.mu.Unlock()
}
