package core

import (
	"fmt"

	"attila/internal/chkpt"
)

// This file implements the chkpt.Snapshotter interface for the
// framework-owned state: the simulator (cycle, object-ID source,
// watchdog fingerprint), the statistics manager (cumulative values and
// interval rows — what makes a restored run's CSV byte-identical), and
// the binder (per-signal traffic counters). Snapshots are taken only
// at a quiesced cycle barrier, where every signal has
// produced == consumed and no transient state is in flight.

// SnapshotName implements chkpt.Snapshotter.
func (s *Simulator) SnapshotName() string { return "core.Sim" }

// SnapshotState serializes the cycle counter, the dynamic-object ID
// source, and (when armed) the watchdog's progress fingerprint.
func (s *Simulator) SnapshotState(e *chkpt.Encoder) {
	e.I64(s.cycle)
	e.U64(s.IDs.next.Load())
	if s.wd != nil {
		e.Bool(true)
		e.I64(s.wd.lastProgress)
		e.U64(s.wd.lastTotal)
		e.U64(s.wd.prevProd)
		e.U64(s.wd.prevCons)
	} else {
		e.Bool(false)
	}
}

// RestoreState implements chkpt.Snapshotter. The next Run continues
// from the restored cycle (Run's budget counts from there). Watchdog
// state only applies when a watchdog is armed on the restored
// simulator; arming is a host knob, so a checkpoint from a
// watchdog-less run restores fine into a guarded one and vice versa.
func (s *Simulator) RestoreState(d *chkpt.Decoder) error {
	cycle := d.I64()
	nextID := d.U64()
	var lastProgress int64
	var lastTotal, prevProd, prevCons uint64
	hasWd := d.Bool()
	if hasWd {
		lastProgress = d.I64()
		lastTotal = d.U64()
		prevProd = d.U64()
		prevCons = d.U64()
	}
	if err := d.Err(); err != nil {
		return err
	}
	if cycle < 0 {
		return fmt.Errorf("%w: negative cycle %d", chkpt.ErrCorrupt, cycle)
	}
	s.cycle = cycle
	s.IDs.next.Store(nextID)
	if hasWd && s.wd != nil {
		s.wd.lastProgress = lastProgress
		s.wd.lastTotal = lastTotal
		s.wd.prevProd = prevProd
		s.wd.prevCons = prevCons
		s.wd.restored = true
	}
	return nil
}

// SnapshotName implements chkpt.Snapshotter.
func (m *StatManager) SnapshotName() string { return "core.Stats" }

// SnapshotState serializes every registered stat's cumulative value
// (plus gauge maxima), the per-stat last-sample baseline, and all
// interval rows recorded so far, so the restored run's CSV and
// summary outputs are byte-identical to the uninterrupted run's.
func (m *StatManager) SnapshotState(e *chkpt.Encoder) {
	e.U32(uint32(len(m.stats)))
	for _, s := range m.stats {
		e.Str(s.StatName())
		e.F64(s.Value())
		if g, ok := s.(*Gauge); ok {
			e.Bool(true)
			e.F64(g.max)
		} else {
			e.Bool(false)
		}
	}
	e.F64s(m.last)
	e.I64(m.lastSample)
	e.Bool(m.hasSample)
	e.U32(uint32(len(m.rows)))
	for _, r := range m.rows {
		e.I64(r.cycle)
		e.F64s(r.deltas)
	}
}

// RestoreState implements chkpt.Snapshotter. The stat registry of the
// restored machine must match the snapshot exactly (same names, same
// order — both follow from building the same configuration).
func (m *StatManager) RestoreState(d *chkpt.Decoder) error {
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(m.stats) {
		return fmt.Errorf("%w: snapshot has %d stats, machine has %d", chkpt.ErrMismatch, n, len(m.stats))
	}
	for i := 0; i < n; i++ {
		name := d.Str()
		val := d.F64()
		isGauge := d.Bool()
		var gmax float64
		if isGauge {
			gmax = d.F64()
		}
		if d.Err() != nil {
			return d.Err()
		}
		s := m.stats[i]
		if s.StatName() != name {
			return fmt.Errorf("%w: stat %d is %q in snapshot, %q in machine", chkpt.ErrMismatch, i, name, s.StatName())
		}
		switch st := s.(type) {
		case *Counter:
			if isGauge {
				return fmt.Errorf("%w: stat %q is a gauge in snapshot, a counter in machine", chkpt.ErrMismatch, name)
			}
			st.v = val
		case *Shadow:
			if isGauge {
				return fmt.Errorf("%w: stat %q is a gauge in snapshot, a counter in machine", chkpt.ErrMismatch, name)
			}
			st.v = val
			st.n = 0
		case *Gauge:
			if !isGauge {
				return fmt.Errorf("%w: stat %q is a counter in snapshot, a gauge in machine", chkpt.ErrMismatch, name)
			}
			st.v = val
			st.max = gmax
		default:
			return fmt.Errorf("%w: stat %q has unknown type", chkpt.ErrMismatch, name)
		}
	}
	last := d.F64s()
	lastSample := d.I64()
	hasSample := d.Bool()
	nrows := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if len(last) != len(m.stats) && !(len(last) == 0 && len(m.stats) == 0) {
		return fmt.Errorf("%w: baseline has %d entries, machine has %d stats", chkpt.ErrMismatch, len(last), len(m.stats))
	}
	rows := make([]sampleRow, 0, nrows)
	for i := 0; i < nrows; i++ {
		cycle := d.I64()
		deltas := d.F64s()
		if d.Err() != nil {
			return d.Err()
		}
		if len(deltas) != len(m.stats) {
			return fmt.Errorf("%w: row %d has %d deltas, machine has %d stats", chkpt.ErrMismatch, i, len(deltas), len(m.stats))
		}
		rows = append(rows, sampleRow{cycle: cycle, deltas: deltas})
	}
	m.last = last
	m.lastSample = lastSample
	m.hasSample = hasSample
	m.rows = rows
	return nil
}

// SnapshotName implements chkpt.Snapshotter.
func (b *Binder) SnapshotName() string { return "core.Signals" }

// SnapshotState serializes every signal's cumulative traffic
// counters. At a quiesced barrier produced == consumed on every wire,
// but both values feed the watchdog fingerprint and the deadlock
// report, so the absolute counts are preserved.
func (b *Binder) SnapshotState(e *chkpt.Encoder) {
	sigs := b.Signals()
	e.U32(uint32(len(sigs)))
	for _, s := range sigs {
		e.Str(s.name)
		p, c := s.Traffic()
		e.U64(p)
		e.U64(c)
	}
}

// RestoreState implements chkpt.Snapshotter.
func (b *Binder) RestoreState(d *chkpt.Decoder) error {
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(b.signals) {
		return fmt.Errorf("%w: snapshot has %d signals, machine has %d", chkpt.ErrMismatch, n, len(b.signals))
	}
	for i := 0; i < n; i++ {
		name := d.Str()
		p := d.U64()
		c := d.U64()
		if d.Err() != nil {
			return d.Err()
		}
		sig, ok := b.signals[name]
		if !ok {
			return fmt.Errorf("%w: snapshot signal %q does not exist in machine", chkpt.ErrMismatch, name)
		}
		sig.produced.Store(p)
		sig.consumed.Store(c)
	}
	return nil
}

// Idle reports whether every registered signal has no objects in
// flight — one clause of the global quiesce predicate checkpoints
// require.
func (b *Binder) Idle() bool {
	for _, s := range b.signals {
		if s.Pending() {
			return false
		}
	}
	return true
}
