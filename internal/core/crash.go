package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrPanic matches (via errors.Is) the error Run returns when a box
// panicked with anything other than a *SimError.
var ErrPanic = errors.New("core: box panic")

// ErrCanceled matches (via errors.Is) the error Run returns when the
// run was stopped by Simulator.Stop or a canceled context before
// completing.
var ErrCanceled = errors.New("core: run canceled")

// CrashError is a box panic recovered by the clock loop: the
// simulator's black box records which box on which shard failed at
// which cycle, with the panicking goroutine's stack. It unwraps to
// ErrPanic.
type CrashError struct {
	Box   string // failing box, "" when the panic escaped a hook or predicate
	Shard int    // worker shard (0 in serial mode and for the inline shard)
	Cycle int64
	Value any    // the original panic value
	Stack []byte // stack of the panicking goroutine
}

// Error implements error.
func (e *CrashError) Error() string {
	where := e.Box
	if where == "" {
		where = "coordinator"
	}
	return fmt.Sprintf("core: panic in %s (shard %d) at cycle %d: %v", where, e.Shard, e.Cycle, e.Value)
}

// Unwrap makes errors.Is(err, ErrPanic) true.
func (e *CrashError) Unwrap() error { return ErrPanic }

// FlightEvent is one entry of the crash flight recorder: something
// the machine was doing shortly before it failed. The observability
// layer (a span collector, typically) supplies them through
// Simulator.SetFlightRecorder; core defines only the record so the
// black box stays dependency-free.
type FlightEvent struct {
	Cycle int64  `json:"cycle"`
	Kind  string `json:"kind"` // "span", "note", ...
	What  string `json:"what"`
}

// CrashReport is the black-box record a failed run leaves behind:
// enough to diagnose the failure without rerunning a multi-hour
// simulation. Run builds one for every non-completion outcome except
// the plain cycle-limit budget; tools persist it with WriteJSON.
type CrashReport struct {
	Kind     string             `json:"kind"` // "panic", "model", "deadlock" or "canceled"
	Box      string             `json:"box,omitempty"`
	Shard    int                `json:"shard"`
	Cycle    int64              `json:"cycle"`
	Err      string             `json:"error"`
	Stack    string             `json:"stack,omitempty"`
	Stats    map[string]float64 `json:"stats,omitempty"` // cumulative statistics at failure
	Deadlock *DeadlockReport    `json:"deadlock,omitempty"`
	// Flight is the flight recorder: the last span terminations and
	// structured events before the failure, so the report shows what
	// the machine was doing, not just where it stopped.
	Flight []FlightEvent `json:"flight,omitempty"`
}

// WriteJSON serializes the report, indented for humans.
func (r *CrashReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile persists the report to path (the conventional black-box
// file tools write next to their outputs).
func (r *CrashReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// buildCrashReport classifies a Run error into the black-box record,
// snapshotting the statistics. Cycle-limit exhaustion and nil errors
// produce no report.
func (s *Simulator) buildCrashReport(err error) *CrashReport {
	if err == nil || errors.Is(err, ErrCycleLimit) {
		return nil
	}
	r := &CrashReport{Cycle: s.cycle, Err: err.Error(), Stats: s.Stats.Snapshot()}
	var ce *CrashError
	var se *SimError
	var de *DeadlockError
	switch {
	case errors.As(err, &ce):
		r.Kind = "panic"
		r.Box = ce.Box
		r.Shard = ce.Shard
		r.Cycle = ce.Cycle
		r.Stack = string(ce.Stack)
	case errors.As(err, &se):
		r.Kind = "model"
		r.Box = se.Where
		r.Cycle = se.Cycle
	case errors.As(err, &de):
		r.Kind = "deadlock"
		r.Deadlock = de.Report
	case errors.Is(err, ErrCanceled):
		r.Kind = "canceled"
	default:
		return nil // configuration errors (binder validation) need no black box
	}
	if s.flight != nil {
		r.Flight = s.flight(flightDepth)
	}
	return r
}

// flightDepth is how many flight-recorder events a crash report
// embeds.
const flightDepth = 64

// SetFlightRecorder installs the flight-recorder source consulted
// when a crash report is built: fn returns the last max events,
// oldest first. Call before Run; nil clears it.
func (s *Simulator) SetFlightRecorder(fn func(max int) []FlightEvent) { s.flight = fn }

// Crash returns the black-box report of the most recent failed Run,
// or nil after a clean completion (or plain cycle-limit exhaustion).
func (s *Simulator) Crash() *CrashReport { return s.crash }
