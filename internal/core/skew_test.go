package core

import (
	"bytes"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"attila/internal/chkpt"
)

// buildLatFanout is buildFanout with a configurable signal latency:
// every producer/consumer pair is its own pin unit, so a latency of
// lat on every pipe makes lat the minimum cross-unit latency — the
// skew batch length once batching is enabled.
func buildLatFanout(sim *Simulator, pairs, count, lat int) []*consumer {
	consumers := make([]*consumer, pairs)
	for i := 0; i < pairs; i++ {
		p := &producer{ids: new(IDSource), count: count}
		p.Init(fmt.Sprintf("Producer%d", i))
		c := &consumer{}
		c.Init(fmt.Sprintf("Consumer%d", i))
		name := fmt.Sprintf("pipe%d", i)
		p.out = sim.Binder.Provide(p.BoxName(), name, 1, lat, 0)
		sim.Binder.Bind(c.BoxName(), name, &c.in)
		sim.Register(c)
		sim.Register(p)
		consumers[i] = c
	}
	return consumers
}

// The skew batch must be derived from the pin-unit topology alone:
// minimum cross-unit latency, floored to 1, capped at the limit, and
// 1 whenever batching is off or a latency-1 edge pins units together.
func TestSkewBatchFromTopology(t *testing.T) {
	build := func(lat int) *Simulator {
		sim := NewSimulator(0)
		buildLatFanout(sim, 2, 5, lat)
		return sim
	}

	sim := build(4)
	if got := sim.SkewBatch(); got != 1 {
		t.Errorf("batching off: SkewBatch() = %d, want 1", got)
	}
	sim.EnableSkewBatching(0)
	if got := sim.SkewBatch(); got != 4 {
		t.Errorf("lat-4 topology: SkewBatch() = %d, want 4", got)
	}

	sim = build(4)
	sim.EnableSkewBatching(3)
	if got := sim.SkewBatch(); got != 3 {
		t.Errorf("limit 3: SkewBatch() = %d, want 3", got)
	}

	sim = build(4)
	sim.EnableSkewBatching(0)
	sim.ConstrainSkew("Producer0", "Consumer1", 2)
	if got := sim.SkewBatch(); got != 2 {
		t.Errorf("lat-2 constraint: SkewBatch() = %d, want 2", got)
	}

	sim = build(1)
	sim.EnableSkewBatching(0)
	if got := sim.SkewBatch(); got != 1 {
		t.Errorf("lat-1 topology: SkewBatch() = %d, want 1", got)
	}

	// All boxes in one pin unit: no cross-unit edges, conservative 1.
	sim = NewSimulator(0)
	buildLatFanout(sim, 2, 5, 4)
	sim.Pin("all", sim.Boxes()...)
	sim.EnableSkewBatching(0)
	if got := sim.SkewBatch(); got != 1 {
		t.Errorf("single unit: SkewBatch() = %d, want 1", got)
	}
}

// Skew batching must never change what a run computes: serial and
// 2/3/4-worker runs with free-running shards (with and without the
// warm-up re-shard) must produce the same cycle count, delivery
// order, statistics CSV and signal trace as the unbatched serial run.
func TestSkewedParallelMatchesSerial(t *testing.T) {
	type result struct {
		cycles int64
		batch  int
		recv   [][]int
		csv    []byte
		trace  []byte
	}
	run := func(workers int, batching bool, reshardAt int64) result {
		sim := NewSimulator(10)
		consumers := buildLatFanout(sim, 4, 37, 4)
		var traceBuf bytes.Buffer
		tr := NewSigTraceWriter(&traceBuf)
		sim.Binder.SetTracer(tr)
		if batching {
			sim.EnableSkewBatching(0)
		}
		sim.SetAutoReshard(reshardAt)
		sim.SetWorkers(workers)
		sim.SetDone(allReceived(consumers, 37))
		if err := sim.Run(1000); err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		var csv bytes.Buffer
		if err := sim.Stats.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		res := result{cycles: sim.Cycle(), batch: sim.SkewBatch(), csv: csv.Bytes(), trace: traceBuf.Bytes()}
		for _, c := range consumers {
			res.recv = append(res.recv, c.received)
		}
		return res
	}

	// The done predicate is only polled at full syncs, so enabling
	// batching may stop the run up to B-1 cycles later than the
	// unbatched run — but what was computed must be identical, and
	// serial/parallel batched runs must match byte for byte.
	unbatched := run(0, false, 0)
	serial := run(0, true, 0)
	for i := range unbatched.recv {
		if len(serial.recv[i]) != len(unbatched.recv[i]) {
			t.Fatalf("batching changed consumer %d: %d received, unbatched %d",
				i, len(serial.recv[i]), len(unbatched.recv[i]))
		}
		for j := range unbatched.recv[i] {
			if serial.recv[i][j] != unbatched.recv[i][j] {
				t.Fatalf("batching changed consumer %d delivery order", i)
			}
		}
	}
	cases := []struct {
		name      string
		workers   int
		batching  bool
		reshardAt int64
	}{
		{"2w", 2, true, 0},
		{"3w", 3, true, 0},
		{"4w", 4, true, 0},
		{"4w-reshard", 4, true, 16},
	}
	for _, tc := range cases {
		par := run(tc.workers, tc.batching, tc.reshardAt)
		if par.batch != 4 {
			t.Errorf("%s: skew batch %d, want 4", tc.name, par.batch)
		}
		if par.cycles != serial.cycles {
			t.Errorf("%s: %d cycles, serial %d", tc.name, par.cycles, serial.cycles)
		}
		for i := range serial.recv {
			if len(par.recv[i]) != len(serial.recv[i]) {
				t.Fatalf("%s consumer %d: %d received, serial %d",
					tc.name, i, len(par.recv[i]), len(serial.recv[i]))
			}
			for j := range serial.recv[i] {
				if par.recv[i][j] != serial.recv[i][j] {
					t.Fatalf("%s consumer %d: delivery order differs", tc.name, i)
				}
			}
		}
		if !bytes.Equal(par.csv, serial.csv) {
			t.Errorf("%s: stats CSV differs from serial", tc.name)
		}
		if !bytes.Equal(par.trace, serial.trace) {
			t.Errorf("%s: signal trace differs from serial", tc.name)
		}
	}
}

// A cycle limit that is not a multiple of the batch length ends on a
// partial batch: global hooks must run at every full-sync boundary
// plus the clipped final cycle, and FullSync must report exactly
// those cycles.
func TestSkewPartialFinalBatch(t *testing.T) {
	for _, workers := range []int{0, 2} {
		sim := NewSimulator(0)
		buildLatFanout(sim, 2, 1000, 4)
		sim.EnableSkewBatching(0)
		sim.SetWorkers(workers)
		var hookCycles []int64
		sim.OnEndCycle(func(c int64) { hookCycles = append(hookCycles, c) })
		sim.SetDone(func() bool { return false })
		err := sim.Run(18)
		if !errors.Is(err, ErrCycleLimit) {
			t.Fatalf("workers=%d: want ErrCycleLimit, got %v", workers, err)
		}
		if sim.Cycle() != 18 {
			t.Fatalf("workers=%d: stopped at cycle %d, want 18", workers, sim.Cycle())
		}
		want := []int64{3, 7, 11, 15, 17}
		if len(hookCycles) != len(want) {
			t.Fatalf("workers=%d: hooks at %v, want %v", workers, hookCycles, want)
		}
		for i, c := range want {
			if hookCycles[i] != c {
				t.Fatalf("workers=%d: hooks at %v, want %v", workers, hookCycles, want)
			}
		}
		if !sim.FullSync(17) {
			t.Errorf("workers=%d: clipped final cycle 17 must be a full sync", workers)
		}
		if sim.FullSync(16) {
			t.Errorf("workers=%d: mid-batch cycle 16 reported as full sync", workers)
		}
		if !sim.FullSync(19) {
			t.Errorf("workers=%d: batch boundary 19 must be a full sync", workers)
		}
	}
}

// Local hooks anchored to a box run once per simulated cycle on the
// owning shard, even while shards free-run between full syncs.
func TestOnLocalCycleRunsPerCycle(t *testing.T) {
	for _, workers := range []int{0, 2} {
		sim := NewSimulator(0)
		consumers := buildLatFanout(sim, 2, 37, 4)
		sim.EnableSkewBatching(0)
		sim.SetWorkers(workers)
		var calls atomic.Int64
		sim.OnLocalCycle(func(c int64) { calls.Add(1) }, "Producer0")
		sim.SetDone(allReceived(consumers, 37))
		if err := sim.Run(1000); err != nil {
			t.Fatal(err)
		}
		if got := calls.Load(); got != sim.Cycle() {
			t.Errorf("workers=%d: local hook ran %d times over %d cycles", workers, got, sim.Cycle())
		}
	}
}

// A local hook anchored to a name that is not a registered box is a
// wiring bug; the parallel run must refuse it instead of silently
// dropping the hook on some default shard.
func TestOnLocalCycleUnknownAnchor(t *testing.T) {
	sim := NewSimulator(0)
	consumers := buildLatFanout(sim, 2, 5, 4)
	sim.EnableSkewBatching(0)
	sim.SetWorkers(2)
	sim.OnLocalCycle(func(c int64) {}, "NoSuchBox")
	sim.SetDone(allReceived(consumers, 5))
	err := sim.Run(100)
	if err == nil || !strings.Contains(err.Error(), "NoSuchBox") {
		t.Fatalf("want unknown-anchor error, got %v", err)
	}
}

// The profile-guided partition must place units by summed cost —
// heaviest first onto the least-loaded shard — and stay deterministic
// for equal inputs.
func TestPartitionByCost(t *testing.T) {
	sim := NewSimulator(0)
	boxes := make([]Box, 6)
	for i := range boxes {
		b := &panicBox{at: -1}
		b.Init(fmt.Sprintf("Box%d", i))
		boxes[i] = b
		sim.Register(b)
	}
	sim.SetBoxCosts(map[string]float64{
		"Box0": 10, "Box1": 1, "Box2": 1, "Box3": 1, "Box4": 1, "Box5": 1,
	})
	shards := sim.partition(2)
	if len(shards) != 2 {
		t.Fatalf("want 2 shards, got %d", len(shards))
	}
	// LPT: the 10-cost box goes first onto shard 0; the five 1-cost
	// boxes all land on shard 1 (load 5 < 10 throughout).
	if len(shards[0]) != 1 || shards[0][0].BoxName() != "Box0" {
		t.Errorf("heavy box not isolated: shard 0 = %d boxes", len(shards[0]))
	}
	if len(shards[1]) != 5 {
		t.Errorf("light boxes split: shard 1 = %d boxes, want 5", len(shards[1]))
	}
	// Registration order within the shard.
	for i := 1; i < len(shards[1]); i++ {
		if shards[1][i-1].BoxName() > shards[1][i].BoxName() {
			t.Fatalf("shard 1 out of registration order: %v", shards[1])
		}
	}
	// Determinism: same inputs, same split.
	again := sim.partition(2)
	for w := range shards {
		if len(again[w]) != len(shards[w]) {
			t.Fatalf("partition not deterministic")
		}
		for i := range shards[w] {
			if again[w][i] != shards[w][i] {
				t.Fatalf("partition not deterministic")
			}
		}
	}
}

// Worker resolution: -1 auto-sizes to GOMAXPROCS, requests clamp to
// the shardable unit count and to GOMAXPROCS (with a warning).
func TestWorkerResolution(t *testing.T) {
	maxProcs := runtime.GOMAXPROCS(0)

	sim := NewSimulator(0)
	buildLatFanout(sim, 20, 5, 1) // 40 units
	sim.SetWorkers(-1)
	if got := sim.EffectiveWorkers(); got != maxProcs {
		t.Errorf("auto-size: %d workers, want GOMAXPROCS %d", got, maxProcs)
	}

	small := NewSimulator(0)
	buildLatFanout(small, 2, 5, 1) // 4 units
	small.SetWorkers(9)
	if got := small.EffectiveWorkers(); got != 4 {
		t.Errorf("unit clamp: %d workers, want 4", got)
	}

	var logBuf bytes.Buffer
	old := slog.Default()
	slog.SetDefault(slog.New(slog.NewTextHandler(&logBuf, nil)))
	defer slog.SetDefault(old)
	sim.SetWorkers(37)
	if got := sim.EffectiveWorkers(); got != maxProcs {
		t.Errorf("GOMAXPROCS clamp: %d workers, want %d", got, maxProcs)
	}
	if !strings.Contains(logBuf.String(), "parallel workers clamped") {
		t.Errorf("clamp warning not logged: %q", logBuf.String())
	}
}

// recObserver counts BoxClocked calls per box name; safe for
// concurrent shards.
type recObserver struct {
	mu    sync.Mutex
	calls map[string]int
}

func (o *recObserver) BoxClocked(shard int, box Box, hostNs int64) {
	o.mu.Lock()
	o.calls[box.BoxName()]++
	o.mu.Unlock()
}

// The parallel coordinator reports its join-barrier wait under the
// barrier pseudo-box, keeping sync cost out of the real boxes'
// attribution.
func TestBarrierWaitObserved(t *testing.T) {
	sim := NewSimulator(0)
	consumers := buildLatFanout(sim, 4, 50, 4)
	sim.EnableSkewBatching(0)
	sim.SetWorkers(2)
	obs := &recObserver{calls: make(map[string]int)}
	sim.SetClockObserver(obs, 1)
	sim.SetDone(allReceived(consumers, 50))
	if err := sim.Run(1000); err != nil {
		t.Fatal(err)
	}
	if obs.calls[BarrierBoxName] == 0 {
		t.Errorf("no barrier-wait samples reported under %q", BarrierBoxName)
	}
	if obs.calls["Producer0"] == 0 {
		t.Errorf("no box samples reported alongside the barrier row: %v", obs.calls)
	}
}

// ckptProducer sends ten objects in each of two bursts (cycles 0-9
// and 30-39) with an idle window between them, so a mid-run
// checkpoint can capture at a quiesced full sync. Its state is
// snapshottable for the round-trip test.
type ckptProducer struct {
	BoxBase
	out  *Signal
	ids  IDSource
	sent int
}

func (p *ckptProducer) Clock(cycle int64) {
	if (cycle >= 0 && cycle < 10) || (cycle >= 30 && cycle < 40) {
		p.out.Write(cycle, newObj(&p.ids, p.sent))
		p.sent++
	}
}

func (p *ckptProducer) SnapshotName() string { return "test." + p.BoxName() }

func (p *ckptProducer) SnapshotState(e *chkpt.Encoder) {
	e.I64(int64(p.sent))
	e.U64(p.ids.next.Load())
}

func (p *ckptProducer) RestoreState(d *chkpt.Decoder) error {
	p.sent = int(d.I64())
	p.ids.next.Store(d.U64())
	return d.Err()
}

// ckptConsumer is the snapshottable consumer for the round-trip test.
type ckptConsumer struct {
	BoxBase
	in       *Signal
	received []int
}

func (c *ckptConsumer) Clock(cycle int64) {
	for _, o := range c.in.Read(cycle) {
		c.received = append(c.received, o.(*testObj).val)
	}
}

func (c *ckptConsumer) SnapshotName() string { return "test." + c.BoxName() }

func (c *ckptConsumer) SnapshotState(e *chkpt.Encoder) {
	e.U32(uint32(len(c.received)))
	for _, v := range c.received {
		e.I64(int64(v))
	}
}

func (c *ckptConsumer) RestoreState(d *chkpt.Decoder) error {
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	c.received = c.received[:0]
	for i := 0; i < n; i++ {
		c.received = append(c.received, int(d.I64()))
	}
	return d.Err()
}

// Checkpointing under skew batching: with a checkpoint interval (7)
// that is not divisible by the batch length (4), the engine must
// capture at the next quiesced full sync, and a run restored from
// that snapshot must be bit-identical to the uninterrupted one.
func TestSkewedCheckpointRoundTrip(t *testing.T) {
	build := func() (*Simulator, []*ckptConsumer, []chkpt.Snapshotter) {
		sim := NewSimulator(10)
		consumers := make([]*ckptConsumer, 2)
		parts := []chkpt.Snapshotter{sim, sim.Stats, sim.Binder}
		for i := range consumers {
			p := &ckptProducer{}
			p.Init(fmt.Sprintf("Producer%d", i))
			c := &ckptConsumer{}
			c.Init(fmt.Sprintf("Consumer%d", i))
			name := fmt.Sprintf("pipe%d", i)
			p.out = sim.Binder.Provide(p.BoxName(), name, 1, 4, 0)
			sim.Binder.Bind(c.BoxName(), name, &c.in)
			sim.Register(c)
			sim.Register(p)
			parts = append(parts, p, c)
			consumers[i] = c
		}
		sim.EnableSkewBatching(0)
		sim.SetWorkers(2)
		done := func() bool {
			for _, c := range consumers {
				if len(c.received) != 20 {
					return false
				}
			}
			return true
		}
		sim.SetDone(done)
		return sim, consumers, parts
	}

	finish := func(sim *Simulator, consumers []*ckptConsumer) (int64, []byte, [][]int) {
		var csv bytes.Buffer
		if err := sim.Stats.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		recv := make([][]int, len(consumers))
		for i, c := range consumers {
			recv[i] = c.received
		}
		return sim.Cycle(), csv.Bytes(), recv
	}

	// Reference: the uninterrupted run.
	ref, refCons, _ := build()
	if ref.SkewBatch() != 4 {
		t.Fatalf("skew batch %d, want 4", ref.SkewBatch())
	}
	if err := ref.Run(200); err != nil {
		t.Fatal(err)
	}
	refCycles, refCSV, refRecv := finish(ref, refCons)

	// Checkpointed run: identical, with the engine attached.
	sim2, cons2, parts2 := build()
	var snaps []*chkpt.Snapshot
	var snapCycles []int64
	eng := &chkpt.Engine{
		Interval:  7,
		Path:      filepath.Join(t.TempDir(), "skew.ckpt"),
		Quiesced:  sim2.Binder.Idle,
		SafeCycle: sim2.FullSync,
		Capture: func() (*chkpt.Snapshot, error) {
			s := chkpt.Capture(chkpt.Meta{Cycle: sim2.Cycle()}, parts2)
			snaps = append(snaps, s)
			snapCycles = append(snapCycles, sim2.Cycle())
			return s, nil
		},
	}
	sim2.OnEndCycle(eng.EndCycle)
	if err := sim2.Run(200); err != nil {
		t.Fatal(err)
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no checkpoint captured")
	}
	// The first capture lands at the first quiesced full sync past the
	// interval: cycle 15 (hook cycles are 3,7,11,15,...; the pipes
	// drain by cycle 13). sim.Cycle() inside the hook is already
	// last+1 = 16.
	if snapCycles[0] != 16 {
		t.Errorf("first capture at cycle %d, want 16", snapCycles[0])
	}
	if !sim2.FullSync(snapCycles[0] - 1) {
		t.Errorf("capture cycle %d is not a full-sync boundary", snapCycles[0]-1)
	}
	// The engine must not have perturbed the run.
	c2, csv2, recv2 := finish(sim2, cons2)
	if c2 != refCycles || !bytes.Equal(csv2, refCSV) {
		t.Fatalf("checkpointed run diverged: %d cycles vs %d", c2, refCycles)
	}
	for i := range refRecv {
		if len(recv2[i]) != len(refRecv[i]) {
			t.Fatalf("consumer %d: checkpointed run received %d values, reference %d",
				i, len(recv2[i]), len(refRecv[i]))
		}
	}

	// Restore from the first snapshot (through the wire codec) and run
	// to completion.
	var buf bytes.Buffer
	if err := snaps[0].Encode(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := chkpt.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sim3, cons3, parts3 := build()
	if err := chkpt.Restore(snap, parts3, false); err != nil {
		t.Fatal(err)
	}
	if sim3.Cycle() != snapCycles[0] {
		t.Fatalf("restored at cycle %d, want %d", sim3.Cycle(), snapCycles[0])
	}
	if err := sim3.Run(200); err != nil {
		t.Fatal(err)
	}
	c3, csv3, recv3 := finish(sim3, cons3)
	if c3 != refCycles {
		t.Errorf("restored run stopped at %d cycles, reference %d", c3, refCycles)
	}
	if !bytes.Equal(csv3, refCSV) {
		t.Errorf("restored run's stats CSV differs from the uninterrupted run")
	}
	for i := range refRecv {
		if len(recv3[i]) != len(refRecv[i]) {
			t.Fatalf("consumer %d: restored %d values, reference %d", i, len(recv3[i]), len(refRecv[i]))
		}
		for j := range refRecv[i] {
			if recv3[i][j] != refRecv[i][j] {
				t.Fatalf("consumer %d: restored delivery differs at %d", i, j)
			}
		}
	}
}
