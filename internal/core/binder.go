package core

import (
	"fmt"
	"sort"
)

// Binder is the framework's name server for signals (the paper's
// SignalBinder). A producing box registers a signal with Provide, the
// consuming box looks it up with Bind; registration order does not
// matter. Validate checks that every signal ends up with exactly one
// producer and one consumer, which is what lets a box be swapped for
// an alternative implementation that registers the same signals.
type Binder struct {
	signals   map[string]*Signal
	producers map[string]string // signal name -> box name
	consumers map[string]string
	pending   map[string][]func(*Signal) // Bind calls before Provide
}

// NewBinder creates an empty signal registry.
func NewBinder() *Binder {
	return &Binder{
		signals:   make(map[string]*Signal),
		producers: make(map[string]string),
		consumers: make(map[string]string),
		pending:   make(map[string][]func(*Signal)),
	}
}

// Provide registers box as the single producer of the named signal,
// creating it with the given parameters. Providing the same name
// twice is a configuration error.
func (b *Binder) Provide(box, name string, bandwidth, latency, maxLat int) *Signal {
	if prev, ok := b.producers[name]; ok {
		panic(fmt.Sprintf("signal %q already provided by box %q (now also %q)", name, prev, box))
	}
	s := NewSignal(name, bandwidth, latency, maxLat)
	b.signals[name] = s
	b.producers[name] = box
	for _, fn := range b.pending[name] {
		fn(s)
	}
	delete(b.pending, name)
	return s
}

// Bind registers box as the single consumer of the named signal and
// stores the resolved *Signal through dst once available (immediately
// if the producer registered first).
func (b *Binder) Bind(box, name string, dst **Signal) {
	if prev, ok := b.consumers[name]; ok {
		panic(fmt.Sprintf("signal %q already bound by box %q (now also %q)", name, prev, box))
	}
	b.consumers[name] = box
	if s, ok := b.signals[name]; ok {
		*dst = s
		return
	}
	b.pending[name] = append(b.pending[name], func(s *Signal) { *dst = s })
}

// Validate returns an error when any signal is missing a producer or
// a consumer. Call it after all boxes have registered.
func (b *Binder) Validate() error {
	var problems []string
	for name := range b.consumers {
		if _, ok := b.producers[name]; !ok {
			problems = append(problems, fmt.Sprintf("signal %q bound but never provided", name))
		}
	}
	for name := range b.producers {
		if _, ok := b.consumers[name]; !ok {
			problems = append(problems, fmt.Sprintf("signal %q provided but never bound", name))
		}
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		return fmt.Errorf("binder: %d unconnected signals: %v", len(problems), problems)
	}
	return nil
}

// Signals returns every registered signal, sorted by name, for
// tracing and diagnostics.
func (b *Binder) Signals() []*Signal {
	names := make([]string, 0, len(b.signals))
	for n := range b.signals {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Signal, len(names))
	for i, n := range names {
		out[i] = b.signals[n]
	}
	return out
}

// SetTracer installs t on every currently registered signal. Install
// after wiring is complete (Validate) so no signal is missed.
func (b *Binder) SetTracer(t Tracer) {
	for _, s := range b.signals {
		s.setTracer(t)
	}
}
