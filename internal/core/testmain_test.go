package core

import (
	"os"
	"runtime"
	"testing"
)

// TestMain raises GOMAXPROCS so the parallel clock-loop tests shard
// for real on single-CPU hosts: resolveWorkers clamps requests to
// GOMAXPROCS, so without the bump every multi-worker test would
// silently run serial and the spin barrier, skew batching and crash
// propagation paths would go unexercised under -race.
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 8 {
		runtime.GOMAXPROCS(8)
	}
	os.Exit(m.Run())
}
