package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// producer/consumer boxes used by the simulator tests: producer sends
// count objects, one per cycle; consumer counts arrivals.
type producer struct {
	BoxBase
	out   *Signal
	ids   *IDSource
	count int
	sent  int
}

func (p *producer) Clock(cycle int64) {
	if p.sent < p.count {
		p.out.Write(cycle, newObj(p.ids, p.sent))
		p.sent++
	}
}

type consumer struct {
	BoxBase
	in       *Signal
	received []int
}

func (c *consumer) Clock(cycle int64) {
	for _, o := range c.in.Read(cycle) {
		c.received = append(c.received, o.(*testObj).val)
	}
}

func buildPipe(sim *Simulator, count int) (*producer, *consumer) {
	p := &producer{ids: &sim.IDs, count: count}
	p.Init("Producer")
	c := &consumer{}
	c.Init("Consumer")
	p.out = sim.Binder.Provide(p.BoxName(), "pipe", 1, 2, 0)
	sim.Binder.Bind(c.BoxName(), "pipe", &c.in)
	// Register consumer first to prove clocking order is irrelevant
	// with latency >= 1.
	sim.Register(c)
	sim.Register(p)
	return p, c
}

func TestSimulatorRunsToCompletion(t *testing.T) {
	sim := NewSimulator(0)
	_, c := buildPipe(sim, 5)
	sim.SetDone(func() bool { return len(c.received) == 5 })
	if err := sim.Run(1000); err != nil {
		t.Fatal(err)
	}
	for i, v := range c.received {
		if v != i {
			t.Fatalf("out of order delivery: %v", c.received)
		}
	}
	// 5 objects at 1/cycle with latency 2: last written at cycle 4,
	// read at cycle 6, done checked after cycle 6 -> Cycle()==7.
	if sim.Cycle() != 7 {
		t.Fatalf("expected 7 cycles, got %d", sim.Cycle())
	}
}

func TestSimulatorCycleLimit(t *testing.T) {
	sim := NewSimulator(0)
	buildPipe(sim, 5)
	sim.SetDone(func() bool { return false })
	err := sim.Run(50)
	if !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("want ErrCycleLimit, got %v", err)
	}
}

func TestSimulatorValidatesBinding(t *testing.T) {
	sim := NewSimulator(0)
	p := &producer{ids: &sim.IDs, count: 1}
	p.Init("Producer")
	p.out = sim.Binder.Provide(p.BoxName(), "dangling", 1, 1, 0)
	sim.Register(p)
	sim.SetDone(func() bool { return true })
	if err := sim.Run(10); err == nil || !strings.Contains(err.Error(), "dangling") {
		t.Fatalf("want binder error naming the signal, got %v", err)
	}
}

func TestSimulatorConvertsSimErrorPanics(t *testing.T) {
	sim := NewSimulator(0)
	p, _ := buildPipe(sim, 10)
	// Sabotage: make the producer write twice per cycle over a bw-1
	// signal by calling Clock manually inside a box.
	bad := &badBox{sig: p.out, ids: &sim.IDs}
	bad.Init("Bad")
	sim.Register(bad)
	sim.SetDone(func() bool { return false })
	err := sim.Run(10)
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("want *SimError, got %v", err)
	}
}

type badBox struct {
	BoxBase
	sig *Signal
	ids *IDSource
}

func (b *badBox) Clock(cycle int64) {
	b.sig.Write(cycle, newObj(b.ids, 0)) // second write this cycle: bandwidth violation
}

func TestBinderDoubleProvidePanics(t *testing.T) {
	b := NewBinder()
	b.Provide("A", "x", 1, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double Provide did not panic")
		}
	}()
	b.Provide("B", "x", 1, 1, 0)
}

func TestBinderBindBeforeProvide(t *testing.T) {
	b := NewBinder()
	var in *Signal
	b.Bind("C", "late", &in)
	if in != nil {
		t.Fatal("bind resolved before provide")
	}
	s := b.Provide("P", "late", 1, 1, 0)
	if in != s {
		t.Fatal("pending bind not resolved by Provide")
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBinderDoubleBindPanics(t *testing.T) {
	b := NewBinder()
	var s1, s2 *Signal
	b.Bind("C1", "x", &s1)
	defer func() {
		if recover() == nil {
			t.Fatal("double Bind did not panic")
		}
	}()
	b.Bind("C2", "x", &s2)
}

func TestStatManagerSampling(t *testing.T) {
	m := NewStatManager(10)
	c := m.Counter("Box.events")
	g := m.Gauge("Box.queue")
	for cyc := int64(0); cyc < 35; cyc++ {
		if cyc < 20 {
			c.Inc()
		}
		g.Set(float64(cyc % 7))
		m.Tick(cyc)
	}
	m.Flush(35)
	cycles, deltas := m.Samples("Box.events")
	if len(cycles) != 4 { // cycles 10, 20, 30 and the flush row at 34
		t.Fatalf("want 4 samples, got %d (%v)", len(cycles), cycles)
	}
	// Ticks at cycle 10 and 20 happen after the increments of those
	// cycles: 11 increments by the cycle-10 tick, 9 more by cycle 20.
	want := []float64{11, 9, 0, 0}
	for i, d := range deltas {
		if d != want[i] {
			t.Fatalf("sample deltas: want %v, got %v", want, deltas)
		}
	}
	if c.Value() != 20 {
		t.Fatalf("counter value: want 20, got %g", c.Value())
	}
	if g.Max() != 6 {
		t.Fatalf("gauge max: want 6, got %g", g.Max())
	}
}

func TestStatManagerCSV(t *testing.T) {
	m := NewStatManager(5)
	a := m.Counter("A.x")
	m.Counter("B.y")
	for cyc := int64(0); cyc < 12; cyc++ {
		a.Add(2)
		m.Tick(cyc)
	}
	m.Flush(12)
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "cycle,A.x,B.y" {
		t.Fatalf("header: %q", lines[0])
	}
	if len(lines) != 4 { // header + samples at 5, 10, 12
		t.Fatalf("want 4 lines, got %d: %v", len(lines), lines)
	}
	var sum bytes.Buffer
	if err := m.WriteSummary(&sum); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum.String(), "A.x,24") {
		t.Fatalf("summary missing cumulative value: %q", sum.String())
	}
}

func TestStatManagerDuplicateNamePanics(t *testing.T) {
	m := NewStatManager(0)
	m.Counter("dup")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate stat name did not panic")
		}
	}()
	m.Counter("dup")
}

func TestSigTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewSigTraceWriter(&buf)
	w.Trace(3, "Setup.out", &DynObject{ID: 7, Parent: 2, Color: 5, Tag: "tri"})
	w.Trace(4, "FGen.tiles", &DynObject{ID: 8, Parent: 7, Tag: "tile 0,8"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadSigTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("want 2 records, got %d", len(recs))
	}
	if recs[0].Signal != "Setup.out" || recs[0].ID != 7 || recs[0].Parent != 2 || recs[0].Color != 5 {
		t.Fatalf("record 0 mismatch: %+v", recs[0])
	}
	if recs[1].Tag != "tile 0,8" || recs[1].Cycle != 4 {
		t.Fatalf("record 1 mismatch: %+v", recs[1])
	}
}

// A run ending exactly on a sampling boundary already has its final
// interval sampled by Tick; the Flush one cycle later (cycle counter
// post-incremented) must not append a near-duplicate row.
func TestStatManagerFlushOnBoundary(t *testing.T) {
	m := NewStatManager(10)
	c := m.Counter("Box.events")
	for cyc := int64(0); cyc <= 20; cyc++ {
		c.Inc()
		m.Tick(cyc)
	}
	// Simulator.Run flushes at Cycle(), one past the last clocked
	// cycle 20 whose Tick just sampled.
	m.Flush(21)
	cycles, deltas := m.Samples("Box.events")
	if len(cycles) != 2 || cycles[0] != 10 || cycles[1] != 20 {
		t.Fatalf("want samples at cycles [10 20], got %v", cycles)
	}
	if deltas[0] != 11 || deltas[1] != 10 {
		t.Fatalf("want deltas [11 10], got %v", deltas)
	}
	// A later flush with real uncovered cycles still records, stamped
	// at the last executed cycle (24), not the cycle count (25).
	c.Add(5)
	m.Flush(25)
	if cycles, _ := m.Samples("Box.events"); len(cycles) != 3 || cycles[2] != 24 {
		t.Fatalf("flush past the boundary lost data or mis-stamped the row: %v", cycles)
	}
}

// The final partial window of a run whose cycle count is not a
// multiple of the sampling interval must be stamped with the cycle
// the values were sampled at (count-1), not the count itself — a
// gauge set during the last executed cycle would otherwise appear in
// a CSV row labelled one cycle past the end of the run.
func TestStatManagerFlushPartialWindowCycle(t *testing.T) {
	m := NewStatManager(10)
	g := m.Gauge("Box.queue")
	for cyc := int64(0); cyc < 17; cyc++ { // cycles 0..16, count 17
		g.Set(float64(cyc))
		m.Tick(cyc)
	}
	m.Flush(17)
	cycles, vals := m.Samples("Box.queue")
	if len(cycles) != 2 || cycles[0] != 10 || cycles[1] != 16 {
		t.Fatalf("want samples at cycles [10 16], got %v", cycles)
	}
	if vals[1] != 16 {
		t.Fatalf("partial-window gauge: want value 16 at its sampling cycle, got %g", vals[1])
	}
	// A run that never executed a cycle has nothing to flush.
	m2 := NewStatManager(10)
	m2.Counter("Box.events")
	m2.Flush(0)
	if c, _ := m2.Samples("Box.events"); len(c) != 0 {
		t.Fatalf("flush of an empty run recorded %v", c)
	}
}

// Gauges sample by value: a delta of an instantaneous quantity is
// meaningless (a steady queue depth of 40 would show as 0).
func TestStatManagerGaugeByValue(t *testing.T) {
	m := NewStatManager(10)
	g := m.Gauge("Box.queue")
	for cyc := int64(0); cyc < 25; cyc++ {
		g.Set(40)
		m.Tick(cyc)
	}
	m.Flush(25)
	_, vals := m.Samples("Box.queue")
	if len(vals) != 3 {
		t.Fatalf("want 3 samples, got %v", vals)
	}
	for i, v := range vals {
		if v != 40 {
			t.Fatalf("sample %d: want the gauge value 40, got %g (delta sampling?)", i, v)
		}
	}
}

func TestBinderTracerSeesTraffic(t *testing.T) {
	sim := NewSimulator(0)
	_, c := buildPipe(sim, 3)
	var buf bytes.Buffer
	tr := NewSigTraceWriter(&buf)
	sim.Binder.SetTracer(tr)
	sim.SetDone(func() bool { return len(c.received) == 3 })
	if err := sim.Run(100); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	recs, err := ReadSigTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("want 3 trace records, got %d", len(recs))
	}
}
