// Package core implements the box-and-signal simulation framework the
// ATTILA simulator is built on (paper §3).
//
// Boxes are timing modules that abstract a "large enough" piece of the
// pipeline (the Clipper, the Fragment Generator, ...). Signals are the
// wires connecting boxes: every signal has a configured bandwidth
// (objects per cycle) and latency (cycles), and the framework verifies
// both on every access, turning modelling mistakes into immediate,
// loud simulation errors instead of silent timing bugs.
//
// The framework is deterministic: the simulator clocks every box once
// per cycle, and because every signal has a latency of at least one
// cycle, the order in which boxes are clocked within a cycle cannot
// affect results. The same property makes the optional parallel
// execution mode (Simulator.SetWorkers) bit-identical to serial runs:
// box shards are clocked concurrently and synchronize at one barrier
// per cycle, where all cross-shard state is published.
package core

import "sync/atomic"

// DynObject carries the bookkeeping the framework keeps for every
// object travelling through signals: a unique identifier, the
// identifier of the parent object it derives from (fragments point at
// their triangle, memory transactions at the fragment that caused
// them, forming a multilevel hierarchy), a color used by the signal
// trace visualizer, and a free-form tag.
type DynObject struct {
	ID     uint64
	Parent uint64
	Color  uint32
	Tag    string
}

// DynInfo returns the object's tracking record. It makes *DynObject
// satisfy Dynamic, so any payload struct that embeds DynObject can
// travel through signals.
func (d *DynObject) DynInfo() *DynObject { return d }

// Dynamic is implemented by every payload that travels through a
// Signal. Embedding DynObject provides the implementation.
type Dynamic interface {
	DynInfo() *DynObject
}

// IDSource hands out unique object identifiers. The zero value is
// ready to use, and Next is safe to call from concurrently clocked
// boxes in parallel simulation mode. Identifiers are unique but their
// assignment order across shards is scheduling-dependent; nothing in
// the timing model depends on identifier values.
type IDSource struct {
	next atomic.Uint64
}

// Next returns a fresh identifier. Identifier 0 is never returned so
// it can mean "no parent".
func (s *IDSource) Next() uint64 {
	return s.next.Add(1)
}
