// Package chkpt implements the checkpoint/restore subsystem: a
// versioned, CRC-guarded, gzip-compressed container of named state
// sections, a bounded binary codec for writing them, and a cycle
// barrier engine that captures checkpoints at quiesced safe points.
//
// The design leans on the same property that makes the parallel clock
// loop bit-identical to the serial one: at a cycle barrier where the
// pipeline is globally quiesced (no objects in flight on any signal,
// no outstanding memory transactions, no batch being rendered), the
// entire machine state is the *persistent* state of each box — caches,
// counters, the command-processor program counter, the memory image —
// and none of the transient per-batch plumbing. Each stateful
// component implements Snapshotter; the engine serializes every
// section at the barrier and a restored simulator continues execution
// bit-identically (stats CSV, frame hashes, metrics NDJSON), serial
// or parallel.
//
// The package is stdlib-only and imports nothing from the simulator,
// so every layer (core, mem, gpu, obsv) can depend on it.
package chkpt

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"syscall"
)

// Typed failure taxonomy. Every decode failure wraps one of these
// sentinels so tools can distinguish "not a checkpoint" from "damaged
// checkpoint" from "checkpoint for a different machine".
var (
	// ErrFormat reports a file that is not a checkpoint (bad magic) or
	// uses an unknown container version.
	ErrFormat = errors.New("chkpt: not a valid checkpoint file")
	// ErrCorrupt reports a checkpoint whose CRC or structure is
	// damaged.
	ErrCorrupt = errors.New("chkpt: corrupt checkpoint")
	// ErrTruncated reports a checkpoint that ends mid-structure.
	ErrTruncated = errors.New("chkpt: truncated checkpoint")
	// ErrMismatch reports a structurally valid checkpoint that does not
	// match the machine it is being restored into (different config,
	// workload, or section set).
	ErrMismatch = errors.New("chkpt: checkpoint does not match this run")
)

// Snapshotter is implemented by every component with persistent state.
// SnapshotState is called only at a quiesced cycle barrier;
// RestoreState is called on a freshly built component before the run
// starts. The interface is structural — implementations in packages
// that must not import chkpt (none today) would still satisfy it.
type Snapshotter interface {
	// SnapshotName returns the unique section name, conventionally the
	// box name.
	SnapshotName() string
	// SnapshotState serializes the component's persistent state.
	SnapshotState(e *Encoder)
	// RestoreState rebuilds the component's state; it returns an error
	// (normally d.Err()) when the section cannot be decoded.
	RestoreState(d *Decoder) error
}

// Format constants.
const (
	magic = "ATTILACKPT"
	// version 2 added Meta.Epoch (the fleet lease fencing epoch);
	// version-1 files still read back with Epoch 0.
	version    = 2
	minVersion = 1
	// maxPayload caps the decompressed payload so a corrupt or
	// malicious length field cannot balloon memory (the decoder is
	// fuzzed against exactly that).
	maxPayload = 1 << 30
	// maxSections caps the section count.
	maxSections = 1 << 16
	// maxBlob caps a single length-prefixed byte field.
	maxBlob = 1 << 28
	// maxSlice caps element counts of decoded slices.
	maxSlice = 1 << 26
)

// Meta identifies the run a checkpoint belongs to. Config and
// Workload are full fingerprint strings (not hashes) so a mismatch
// error can say exactly what differs. Host-only knobs (worker count,
// watchdog) must be excluded by the caller: a checkpoint taken
// serially restores into a parallel run and vice versa.
type Meta struct {
	Cycle    int64
	Config   string
	Workload string
	// Epoch is the fleet lease fencing epoch the owning host held when
	// it wrote the checkpoint (0 outside fleet mode). It is provenance,
	// not machine state: restores ignore it, but a host whose lease was
	// stolen must never produce a file stamped with its stale epoch —
	// the Engine's Gate hook enforces that before every write.
	Epoch int64
}

// Snapshot is an in-memory checkpoint: meta plus named sections.
type Snapshot struct {
	Meta     Meta
	sections map[string][]byte
	order    []string
}

// NewSnapshot creates an empty snapshot with the given meta.
func NewSnapshot(meta Meta) *Snapshot {
	return &Snapshot{Meta: meta, sections: make(map[string][]byte)}
}

// Add stores one named section. Adding a duplicate name is a
// programming error.
func (s *Snapshot) Add(name string, data []byte) {
	if _, dup := s.sections[name]; dup {
		panic("chkpt: duplicate section " + name)
	}
	s.sections[name] = data
	s.order = append(s.order, name)
}

// Section returns a named section's bytes, or nil.
func (s *Snapshot) Section(name string) []byte { return s.sections[name] }

// Sections returns the section names in capture order.
func (s *Snapshot) Sections() []string { return append([]string(nil), s.order...) }

// Capture serializes every Snapshotter into a fresh snapshot.
func Capture(meta Meta, parts []Snapshotter) *Snapshot {
	snap := NewSnapshot(meta)
	for _, p := range parts {
		var e Encoder
		p.SnapshotState(&e)
		snap.Add(p.SnapshotName(), e.Bytes())
	}
	return snap
}

// Restore applies a snapshot to freshly built components. Every
// registered Snapshotter must find its section and every section must
// find its Snapshotter; set lenient to tolerate extra sections
// (forward compatibility for observers that were attached on capture
// but not on restore).
func Restore(snap *Snapshot, parts []Snapshotter, lenient bool) error {
	seen := make(map[string]bool, len(parts))
	for _, p := range parts {
		name := p.SnapshotName()
		seen[name] = true
		data, ok := snap.sections[name]
		if !ok {
			return fmt.Errorf("%w: missing section %q", ErrMismatch, name)
		}
		d := NewDecoder(data)
		if err := p.RestoreState(d); err != nil {
			return fmt.Errorf("chkpt: section %q: %w", name, err)
		}
	}
	if !lenient {
		var extra []string
		for name := range snap.sections {
			if !seen[name] {
				extra = append(extra, name)
			}
		}
		if len(extra) > 0 {
			sort.Strings(extra)
			return fmt.Errorf("%w: unknown sections %v", ErrMismatch, extra)
		}
	}
	return nil
}

// Encode serializes the snapshot: magic, version, CRC32-Castagnoli of
// the uncompressed payload, payload length, then the gzip-compressed
// payload (meta + sections).
func (s *Snapshot) Encode(w io.Writer) error {
	var payload Encoder
	payload.I64(s.Meta.Cycle)
	payload.Str(s.Meta.Config)
	payload.Str(s.Meta.Workload)
	payload.I64(s.Meta.Epoch)
	payload.U32(uint32(len(s.order)))
	for _, name := range s.order {
		payload.Str(name)
		payload.Blob(s.sections[name])
	}
	raw := payload.Bytes()

	var hdr [len(magic) + 4 + 4 + 8]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint32(hdr[len(magic):], version)
	binary.LittleEndian.PutUint32(hdr[len(magic)+4:], crc32.Checksum(raw, crcTable))
	binary.LittleEndian.PutUint64(hdr[len(magic)+8:], uint64(len(raw)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	zw, err := gzip.NewWriterLevel(w, gzip.BestSpeed)
	if err != nil {
		return err
	}
	if _, err := zw.Write(raw); err != nil {
		return err
	}
	return zw.Close()
}

// WriteFile writes the snapshot atomically and durably: to a temp
// file in the destination directory, fsync'd before the rename, and
// the parent directory fsync'd after it. A crash mid-write never
// clobbers the previous checkpoint, and a power loss after the rename
// cannot surface a zero-length "latest" checkpoint — without the
// fsyncs the rename can reach disk before the data does. The parent
// directory is created if missing, so a checkpoint destination that
// was removed mid-run (disk yanked, cleanup raced) heals on the next
// capture instead of failing forever.
func (s *Snapshot) WriteFile(path string) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	err = s.Encode(tmp)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename is durable.
// Filesystems that cannot sync a directory handle report EINVAL; the
// rename is still atomic there, so that case is not an error.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && errors.Is(err, syscall.EINVAL) {
		return nil
	}
	return err
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Read parses a checkpoint stream, verifying magic, version, payload
// length and CRC before decoding any structure. All failures carry a
// typed sentinel; no input can make it panic or allocate beyond the
// declared (capped) payload size.
func Read(r io.Reader) (*Snapshot, error) {
	var hdr [len(magic) + 4 + 4 + 8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	v := binary.LittleEndian.Uint32(hdr[len(magic):])
	if v < minVersion || v > version {
		return nil, fmt.Errorf("%w: unsupported version %d (want %d..%d)", ErrFormat, v, minVersion, version)
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[len(magic)+4:])
	size := binary.LittleEndian.Uint64(hdr[len(magic)+8:])
	if size > maxPayload {
		return nil, fmt.Errorf("%w: declared payload %d exceeds limit", ErrCorrupt, size)
	}
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("%w: gzip: %v", ErrCorrupt, err)
	}
	defer zr.Close()
	raw := make([]byte, 0, min64(size, 1<<20))
	buf := bytes.NewBuffer(raw)
	if _, err := io.Copy(buf, io.LimitReader(zr, int64(size)+1)); err != nil {
		return nil, fmt.Errorf("%w: gzip payload: %v", ErrCorrupt, err)
	}
	raw = buf.Bytes()
	if uint64(len(raw)) != size {
		return nil, fmt.Errorf("%w: payload is %d bytes, header declares %d", ErrTruncated, len(raw), size)
	}
	if got := crc32.Checksum(raw, crcTable); got != wantCRC {
		return nil, fmt.Errorf("%w: CRC mismatch (file %08x, computed %08x)", ErrCorrupt, wantCRC, got)
	}

	d := NewDecoder(raw)
	var snap Snapshot
	snap.sections = make(map[string][]byte)
	snap.Meta.Cycle = d.I64()
	snap.Meta.Config = d.Str()
	snap.Meta.Workload = d.Str()
	if v >= 2 {
		snap.Meta.Epoch = d.I64()
	}
	n := d.U32()
	if n > maxSections {
		return nil, fmt.Errorf("%w: %d sections exceeds limit", ErrCorrupt, n)
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		name := d.Str()
		data := d.Blob()
		if d.Err() != nil {
			break
		}
		if _, dup := snap.sections[name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorrupt, name)
		}
		snap.sections[name] = data
		snap.order = append(snap.order, name)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return &snap, nil
}

// ReadFile reads and verifies a checkpoint file.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	snap, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

// metaPrefix bounds how much decompressed payload ReadMeta inspects.
// The meta block is a cycle count, two fingerprint strings, and an
// epoch — well under this even for elaborate configs.
const metaPrefix = 64 << 10

// ReadMeta decodes only the Meta block (cycle, config, workload,
// epoch) of a checkpoint file, without reading sections or verifying
// the payload CRC. It exists for the fleet's epoch-floor recovery: a
// peer stealing over a torn lease must learn the highest epoch any
// previous owner durably stamped, and the v2 container records it at
// the head of the payload. Because the CRC is not checked, callers
// must treat the result as advisory — a damaged file yields either an
// error or a stale-but-valid floor, never an inflated one (epochs are
// stamped before the data they fence).
func ReadMeta(path string) (Meta, error) {
	var meta Meta
	f, err := os.Open(path)
	if err != nil {
		return meta, err
	}
	defer f.Close()
	var hdr [len(magic) + 4 + 4 + 8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return meta, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if string(hdr[:len(magic)]) != magic {
		return meta, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	v := binary.LittleEndian.Uint32(hdr[len(magic):])
	if v < minVersion || v > version {
		return meta, fmt.Errorf("%w: unsupported version %d (want %d..%d)", ErrFormat, v, minVersion, version)
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		return meta, fmt.Errorf("%w: gzip: %v", ErrCorrupt, err)
	}
	defer zr.Close()
	prefix := make([]byte, metaPrefix)
	n, err := io.ReadFull(zr, prefix)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return meta, fmt.Errorf("%w: gzip payload: %v", ErrCorrupt, err)
	}
	d := NewDecoder(prefix[:n])
	meta.Cycle = d.I64()
	meta.Config = d.Str()
	meta.Workload = d.Str()
	if v >= 2 {
		meta.Epoch = d.I64()
	}
	if err := d.Err(); err != nil {
		return Meta{}, err
	}
	return meta, nil
}

func min64(a uint64, b int) int {
	if a < uint64(b) {
		return int(a)
	}
	return b
}

// Encoder serializes checkpoint sections: fixed-width little-endian
// integers and length-prefixed blobs. Writes cannot fail (memory
// buffer); the matching Decoder enforces the caps.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded section.
func (e *Encoder) Bytes() []byte { return e.buf }

// U8 writes one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool writes a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 writes a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 writes a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 writes an int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 writes a float64 bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str writes a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob writes a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// F64s writes a length-prefixed []float64.
func (e *Encoder) F64s(v []float64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}

// Decoder reads a section with a sticky error: after any failure every
// read returns zero values and Err reports the first failure. Length
// fields are validated against both the caps and the remaining input,
// so corrupt sections fail typed instead of over-allocating.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps section bytes.
func NewDecoder(data []byte) *Decoder { return &Decoder{buf: data} }

// Err returns the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: offset %d: %s", ErrCorrupt, d.off, fmt.Sprintf(format, args...))
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf)-d.off {
		if d.err == nil {
			d.err = fmt.Errorf("%w: offset %d: need %d bytes, have %d", ErrTruncated, d.off, n, len(d.buf)-d.off)
		}
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := d.U32()
	if n > maxBlob {
		d.fail("string length %d exceeds limit", n)
		return ""
	}
	return string(d.take(int(n)))
}

// Blob reads a length-prefixed byte slice (copied).
func (d *Decoder) Blob() []byte {
	n := d.U32()
	if n > maxBlob {
		d.fail("blob length %d exceeds limit", n)
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Len reads a slice length, validating it against the caps and the
// remaining input at the given minimum element width.
func (d *Decoder) Len(elemBytes int) int {
	n := d.U32()
	if n > maxSlice || (elemBytes > 0 && int(n) > (len(d.buf)-d.off)/elemBytes+1) {
		d.fail("slice length %d exceeds remaining input", n)
		return 0
	}
	return int(n)
}

// F64s reads a length-prefixed []float64.
func (d *Decoder) F64s() []float64 {
	n := d.Len(8)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Engine takes checkpoints at the cycle barrier: once Interval cycles
// have elapsed since the previous checkpoint, the next barrier at
// which Quiesced reports true captures a snapshot and atomically
// replaces the file at Path. Quiesced safe points occur at command
// boundaries with the pipeline drained — at least once per rendered
// frame — so the effective checkpoint cadence is max(Interval, frame
// length).
//
// The count/cycle/error accessors are safe to call from other
// goroutines (the status server reads them live).
type Engine struct {
	// Interval is the minimum cycle distance between checkpoints.
	Interval int64
	// Path is the checkpoint file, atomically replaced on every
	// capture.
	Path string
	// Quiesced reports whether the machine is at a safe point. Called
	// at the barrier only.
	Quiesced func() bool
	// SafeCycle, when non-nil, additionally gates captures to
	// full-sync cycles: under skew batching, shards free-run between
	// full syncs and a snapshot at a skewed cycle would capture shards
	// at different points in simulated time. Wire it to
	// core.Simulator.FullSync. A refused cycle does not advance the
	// interval clock, so the capture simply happens at the next
	// eligible full sync.
	SafeCycle func(cycle int64) bool
	// Capture serializes the machine. Called at the barrier only, and
	// only when Quiesced returned true.
	Capture func() (*Snapshot, error)
	// Gate, when non-nil, is consulted immediately before a captured
	// snapshot is written: a non-nil error refuses the write (surfaced
	// via Err, the run continues). The fleet layer wires lease-ownership
	// checks here so a host whose lease was stolen — paused, revived,
	// still simulating — can never clobber the new owner's checkpoint
	// with a stale-epoch file.
	Gate func() error
	// Epoch, when non-nil, stamps the current lease fencing epoch into
	// Meta.Epoch of every capture.
	Epoch func() int64

	last      int64
	force     atomic.Bool
	count     atomic.Int64
	lastCycle atomic.Int64
	errv      atomic.Value // error
}

// ForceNext requests a checkpoint at the next eligible safe point
// regardless of how recently one was taken. It is safe to call from
// any goroutine; the job server uses it to checkpoint a run that is
// about to be preempted or drained. The request stays armed — across
// failed writes too — until a capture lands, then clears.
func (e *Engine) ForceNext() { e.force.Store(true) }

// EndCycle is the barrier hook; register it with
// core.Simulator.OnEndCycle.
func (e *Engine) EndCycle(cycle int64) {
	forced := e.force.Load()
	if !forced && (e.Interval <= 0 || cycle-e.last < e.Interval) {
		return
	}
	if e.SafeCycle != nil && !e.SafeCycle(cycle) {
		return
	}
	if !e.Quiesced() {
		return
	}
	e.last = cycle
	snap, err := e.Capture()
	if err == nil && e.Epoch != nil {
		snap.Meta.Epoch = e.Epoch()
	}
	// The gate runs after capture, immediately before the write: the
	// narrowest window between "lease still ours" and the rename.
	if err == nil && e.Gate != nil {
		err = e.Gate()
	}
	if err == nil {
		err = snap.WriteFile(e.Path)
	}
	if err != nil {
		e.errv.Store(err)
		return
	}
	if forced {
		e.force.Store(false)
	}
	e.count.Add(1)
	e.lastCycle.Store(cycle)
}

// Count returns how many checkpoints have been written.
func (e *Engine) Count() int64 { return e.count.Load() }

// LastCycle returns the cycle of the most recent checkpoint (0 before
// the first).
func (e *Engine) LastCycle() int64 { return e.lastCycle.Load() }

// Err returns the most recent capture/write failure, or nil.
// Checkpoint failures never interrupt the run; they surface here and
// in /progress.
func (e *Engine) Err() error {
	if v := e.errv.Load(); v != nil {
		return v.(error)
	}
	return nil
}
