package chkpt

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// fakePart is a Snapshotter over a few fields of every codec type.
type fakePart struct {
	name  string
	a     int64
	b     uint32
	c     bool
	d     float64
	blob  []byte
	fs    []float64
	label string
}

func (f *fakePart) SnapshotName() string { return f.name }

func (f *fakePart) SnapshotState(e *Encoder) {
	e.I64(f.a)
	e.U32(f.b)
	e.Bool(f.c)
	e.F64(f.d)
	e.Blob(f.blob)
	e.F64s(f.fs)
	e.Str(f.label)
}

func (f *fakePart) RestoreState(d *Decoder) error {
	f.a = d.I64()
	f.b = d.U32()
	f.c = d.Bool()
	f.d = d.F64()
	f.blob = d.Blob()
	f.fs = d.F64s()
	f.label = d.Str()
	return d.Err()
}

func testParts() []Snapshotter {
	return []Snapshotter{
		&fakePart{name: "alpha", a: -7, b: 42, c: true, d: 3.5, blob: []byte{1, 2, 3}, fs: []float64{1, 2.5}, label: "hello"},
		&fakePart{name: "beta", a: 1 << 40, blob: []byte{}, label: ""},
	}
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	meta := Meta{Cycle: 12345, Config: "cfg-A", Workload: "wl-B"}
	src := testParts()
	snap := Capture(meta, src)

	dst := []Snapshotter{
		&fakePart{name: "alpha"},
		&fakePart{name: "beta"},
	}
	if err := Restore(snap, dst, false); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		want, got := src[i].(*fakePart), dst[i].(*fakePart)
		if want.a != got.a || want.b != got.b || want.c != got.c || want.d != got.d ||
			!bytes.Equal(want.blob, got.blob) || want.label != got.label {
			t.Errorf("part %s: restored %+v, want %+v", want.name, got, want)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	meta := Meta{Cycle: 99, Config: "c", Workload: "w"}
	snap := Capture(meta, testParts())
	path := filepath.Join(t.TempDir(), "test.ckpt")
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != meta {
		t.Errorf("meta %+v, want %+v", got.Meta, meta)
	}
	for _, name := range snap.Sections() {
		if !bytes.Equal(got.Section(name), snap.Section(name)) {
			t.Errorf("section %q differs after round trip", name)
		}
	}
}

func TestRestoreMismatch(t *testing.T) {
	snap := Capture(Meta{}, testParts())
	// A part with no matching section must fail.
	err := Restore(snap, []Snapshotter{&fakePart{name: "gamma"}}, true)
	if !errors.Is(err, ErrMismatch) {
		t.Errorf("missing section: got %v, want ErrMismatch", err)
	}
	// Extra sections fail strict, pass lenient.
	only := []Snapshotter{&fakePart{name: "alpha"}}
	if err := Restore(snap, only, false); !errors.Is(err, ErrMismatch) {
		t.Errorf("strict extra sections: got %v, want ErrMismatch", err)
	}
	if err := Restore(snap, only, true); err != nil {
		t.Errorf("lenient extra sections: got %v, want nil", err)
	}
}

func TestReadTypedErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Capture(Meta{Cycle: 1}, testParts()).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	check := func(name string, data []byte, want error) {
		t.Helper()
		_, err := Read(bytes.NewReader(data))
		if !errors.Is(err, want) {
			t.Errorf("%s: got %v, want %v", name, err, want)
		}
	}

	badMagic := append([]byte(nil), valid...)
	badMagic[0] ^= 0xFF
	check("bad magic", badMagic, ErrFormat)

	badVersion := append([]byte(nil), valid...)
	badVersion[len(magic)] = 0xEE
	check("bad version", badVersion, ErrFormat)

	// Flipping a compressed payload byte breaks the gzip stream or the
	// CRC; either way it is corruption.
	badPayload := append([]byte(nil), valid...)
	badPayload[len(badPayload)-5] ^= 0x01
	check("damaged payload", badPayload, ErrCorrupt)

	check("cut header", valid[:8], ErrTruncated)

	hugeLen := append([]byte(nil), valid...)
	for i := 0; i < 8; i++ {
		hugeLen[len(magic)+8+i] = 0xFF
	}
	check("huge declared payload", hugeLen, ErrCorrupt)
}

func TestDecoderSticky(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	if v := d.U64(); v != 0 {
		t.Errorf("truncated U64 = %d, want 0", v)
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", d.Err())
	}
	// Every later read stays zero without disturbing the first error.
	if d.U32() != 0 || d.Bool() || d.Str() != "" || d.Blob() != nil {
		t.Error("reads after failure should return zero values")
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Errorf("err after more reads = %v, want the original ErrTruncated", d.Err())
	}
}

func TestDecoderBlobCap(t *testing.T) {
	var e Encoder
	e.U32(maxBlob + 1)
	d := NewDecoder(e.Bytes())
	if b := d.Blob(); b != nil {
		t.Errorf("oversized blob = %d bytes, want nil", len(b))
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", d.Err())
	}
}

func TestEngine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "eng.ckpt")
	quiesced := false
	captures := 0
	eng := &Engine{
		Interval: 100,
		Path:     path,
		Quiesced: func() bool { return quiesced },
		Capture: func() (*Snapshot, error) {
			captures++
			return Capture(Meta{Cycle: int64(captures)}, testParts()), nil
		},
	}
	// Below the interval: never fires, quiesced or not.
	quiesced = true
	for c := int64(0); c < 100; c++ {
		eng.EndCycle(c)
	}
	if eng.Count() != 0 {
		t.Fatalf("fired %d times below interval", eng.Count())
	}
	// At the interval but not quiesced: holds off.
	quiesced = false
	eng.EndCycle(100)
	if eng.Count() != 0 {
		t.Fatal("fired while not quiesced")
	}
	// First quiesced barrier past the interval: fires exactly once.
	quiesced = true
	eng.EndCycle(101)
	eng.EndCycle(102)
	if eng.Count() != 1 || eng.LastCycle() != 101 {
		t.Fatalf("count %d last %d, want 1 at cycle 101", eng.Count(), eng.LastCycle())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint file not written: %v", err)
	}
	// A write failure surfaces in Err without stopping anything. A
	// merely missing directory no longer fails (WriteFile recreates
	// it); a regular file blocking the path still does.
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng.Path = filepath.Join(blocker, "x.ckpt")
	eng.EndCycle(300)
	if eng.Err() == nil {
		t.Fatal("expected a write error for an unwritable path")
	}
	if eng.Count() != 1 {
		t.Fatalf("failed write still counted: %d", eng.Count())
	}
}

// ForceNext must capture at the next eligible quiesced barrier even
// when the interval has not elapsed, stay armed across refused or
// failed cycles, and disarm only once a capture lands.
func TestEngineForceNext(t *testing.T) {
	dir := t.TempDir()
	quiesced := false
	eng := &Engine{
		Interval: 1_000_000,
		Path:     filepath.Join(dir, "force.ckpt"),
		Quiesced: func() bool { return quiesced },
		Capture: func() (*Snapshot, error) {
			return Capture(Meta{Cycle: 1}, testParts()), nil
		},
	}
	eng.EndCycle(10)
	if eng.Count() != 0 {
		t.Fatal("fired below interval without a force request")
	}
	eng.ForceNext()
	eng.EndCycle(11) // not quiesced: stays armed
	if eng.Count() != 0 {
		t.Fatal("forced capture fired while not quiesced")
	}
	quiesced = true
	eng.EndCycle(12)
	if eng.Count() != 1 || eng.LastCycle() != 12 {
		t.Fatalf("count %d last %d, want forced capture at cycle 12", eng.Count(), eng.LastCycle())
	}
	// Disarmed: the next quiesced barrier below the interval is quiet.
	eng.EndCycle(13)
	if eng.Count() != 1 {
		t.Fatal("force request did not disarm after capturing")
	}
}

// SafeCycle gates captures to full-sync cycles: an interval-eligible
// cycle that is not a full sync must be refused WITHOUT advancing the
// interval clock, so the capture happens at the next safe cycle, and
// the interval still meters the distance between captures.
func TestEngineSafeCycle(t *testing.T) {
	dir := t.TempDir()
	eng := &Engine{
		Interval: 7,
		Path:     filepath.Join(dir, "safe.ckpt"),
		Quiesced: func() bool { return true },
		// Full syncs every 5 cycles (a skew batch of 5): the interval
		// of 7 is deliberately not divisible by it.
		SafeCycle: func(c int64) bool { return (c+1)%5 == 0 },
		Capture: func() (*Snapshot, error) {
			return Capture(Meta{}, testParts()), nil
		},
	}
	// Cycles 7 and 8 are past the interval but skewed: refused. Cycle
	// 9 is the next full sync: captured.
	for c := int64(0); c <= 8; c++ {
		eng.EndCycle(c)
	}
	if eng.Count() != 0 {
		t.Fatalf("captured at a skewed cycle: count %d last %d", eng.Count(), eng.LastCycle())
	}
	eng.EndCycle(9)
	if eng.Count() != 1 || eng.LastCycle() != 9 {
		t.Fatalf("count %d last %d, want 1 at cycle 9", eng.Count(), eng.LastCycle())
	}
	// Cycle 14 is a full sync but only 5 cycles past the last capture:
	// the interval holds it off; 19 is the next eligible full sync.
	for c := int64(10); c <= 18; c++ {
		eng.EndCycle(c)
	}
	if eng.Count() != 1 {
		t.Fatalf("interval not honored after a refusal: count %d last %d", eng.Count(), eng.LastCycle())
	}
	eng.EndCycle(19)
	if eng.Count() != 2 || eng.LastCycle() != 19 {
		t.Fatalf("count %d last %d, want 2 at cycle 19", eng.Count(), eng.LastCycle())
	}
	if eng.Err() != nil {
		t.Fatal(eng.Err())
	}
}

// FuzzRead feeds arbitrary bytes to the checkpoint reader: it must
// return a typed error or a valid snapshot, never panic, and never
// allocate beyond the caps regardless of what length fields claim.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	if err := Capture(Meta{Cycle: 7, Config: "cfg", Workload: "wl"}, testParts()).Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(magic))
	f.Add([]byte{})
	for i := 0; i < len(valid); i += 7 {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x40
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Read(bytes.NewReader(data))
		if err == nil {
			// A parsed snapshot must survive re-encoding.
			var out bytes.Buffer
			if err := snap.Encode(&out); err != nil {
				t.Fatalf("re-encode of accepted snapshot failed: %v", err)
			}
			return
		}
		for _, want := range []error{ErrFormat, ErrCorrupt, ErrTruncated} {
			if errors.Is(err, want) {
				return
			}
		}
		t.Fatalf("untyped error %v (%T)", err, err)
	})
}

// FuzzDecoder drives the section codec with arbitrary bytes through
// every read method; the sticky error must always be typed.
func FuzzDecoder(f *testing.F) {
	var e Encoder
	e.I64(-1)
	e.U32(7)
	e.Bool(true)
	e.F64(2.5)
	e.Blob([]byte("abc"))
	e.F64s([]float64{1, 2, 3})
	e.Str("tail")
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		d.I64()
		d.U32()
		d.Bool()
		d.F64()
		d.Blob()
		d.F64s()
		d.Str()
		if err := d.Err(); err != nil && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("untyped decoder error %v", err)
		}
	})
}

// TestEpochRoundTripAndV1Compat: the lease fencing epoch survives the
// container round trip, and a version-1 file (pre-epoch) still reads
// back with Epoch 0 instead of failing.
func TestEpochRoundTripAndV1Compat(t *testing.T) {
	meta := Meta{Cycle: 7, Config: "c", Workload: "w", Epoch: 42}
	snap := Capture(meta, testParts())
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != meta {
		t.Errorf("meta %+v, want %+v", got.Meta, meta)
	}

	// Hand-build a version-1 payload: same layout without the epoch
	// field. The reader must accept it and report Epoch 0.
	var payload Encoder
	payload.I64(meta.Cycle)
	payload.Str(meta.Config)
	payload.Str(meta.Workload)
	payload.U32(0) // no sections
	v1 := encodeRawContainer(t, 1, payload.Bytes())
	old, err := Read(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("version-1 container rejected: %v", err)
	}
	if old.Meta.Epoch != 0 || old.Meta.Cycle != meta.Cycle {
		t.Errorf("v1 meta %+v, want epoch 0 cycle %d", old.Meta, meta.Cycle)
	}

	// An unknown future version still fails typed.
	v9 := encodeRawContainer(t, 9, payload.Bytes())
	if _, err := Read(bytes.NewReader(v9)); !errors.Is(err, ErrFormat) {
		t.Errorf("version 9: got %v, want ErrFormat", err)
	}
}

// encodeRawContainer writes a container with an explicit version
// number around a raw payload (test helper for compatibility checks).
func encodeRawContainer(t *testing.T, ver uint32, raw []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	var hdr [len(magic) + 4 + 4 + 8]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint32(hdr[len(magic):], ver)
	binary.LittleEndian.PutUint32(hdr[len(magic)+4:], crc32.Checksum(raw, crcTable))
	binary.LittleEndian.PutUint64(hdr[len(magic)+8:], uint64(len(raw)))
	buf.Write(hdr[:])
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEngineGateRefusesWrite: a non-nil Gate error must prevent the
// checkpoint file write (the stale-epoch fencing path) and surface via
// Err, while a passing gate writes normally with the epoch stamped.
func TestEngineGateRefusesWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gated.ckpt")
	fenced := errors.New("lease lost")
	var gateErr error
	epoch := int64(3)
	eng := &Engine{
		Interval: 1,
		Path:     path,
		Quiesced: func() bool { return true },
		Gate:     func() error { return gateErr },
		Epoch:    func() int64 { return epoch },
		Capture: func() (*Snapshot, error) {
			return Capture(Meta{Cycle: 10, Config: "c", Workload: "w"}, testParts()), nil
		},
	}

	eng.EndCycle(10)
	if eng.Count() != 1 {
		t.Fatalf("clean gate: %d checkpoints written, want 1", eng.Count())
	}
	snap, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Meta.Epoch != 3 {
		t.Errorf("stamped epoch %d, want 3", snap.Meta.Epoch)
	}

	// Lease lost: the write must be refused, the file untouched.
	gateErr = fenced
	epoch = 1 // a revived host would still hold its old epoch
	eng.EndCycle(20)
	if eng.Count() != 1 {
		t.Fatalf("fenced gate wrote a checkpoint (count %d)", eng.Count())
	}
	if !errors.Is(eng.Err(), fenced) {
		t.Errorf("engine error %v, want the gate error", eng.Err())
	}
	snap, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Meta.Epoch != 3 || snap.Meta.Cycle != 10 {
		t.Errorf("fenced write reached disk: meta %+v", snap.Meta)
	}
}
