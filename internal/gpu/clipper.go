package gpu

import (
	"attila/internal/core"
	"attila/internal/emu/clipemu"
	"attila/internal/isa"
)

// Clipper performs trivial rejection of triangles completely outside
// the view frustum (paper §2.2: all other triangles, including
// partially visible ones, flow free to the rasterizer).
type Clipper struct {
	core.BoxBase
	triIn  *Flow
	triOut *Flow
	queue  core.FIFO[*TriWork]

	statIn       core.Shadow
	statRejected core.Shadow
	statBusy     core.Shadow
}

// NewClipper builds the box. The output flow's signal latency models
// the 6-cycle clipper pipeline (Table 1).
func NewClipper(sim *core.Simulator, triIn, triOut *Flow) *Clipper {
	c := &Clipper{triIn: triIn, triOut: triOut}
	c.Init("Clipper")
	sim.Stats.ShadowCounter(&c.statIn, "Clipper.triangles")
	sim.Stats.ShadowCounter(&c.statRejected, "Clipper.rejected")
	sim.Stats.ShadowCounter(&c.statBusy, "Clipper.busyCycles")
	sim.Register(c)
	return c
}

// Clock implements core.Box.
func (c *Clipper) Clock(cycle int64) {
	for _, obj := range c.triIn.Recv(cycle) {
		c.queue.Push(obj.(*TriWork))
	}
	if c.queue.Len() == 0 {
		return
	}
	tri := c.queue.Peek()
	rejected := clipemu.TriviallyRejected(
		tri.V[0].Out[isa.AttrPos],
		tri.V[1].Out[isa.AttrPos],
		tri.V[2].Out[isa.AttrPos])
	if !rejected && !c.triOut.CanSend(cycle, 1) {
		return
	}
	c.queue.Pop()
	c.triIn.Release(1)
	c.statIn.Inc()
	c.statBusy.Inc()
	if rejected {
		tri.Batch.TrisRetired++
		c.statRejected.Inc()
		return
	}
	c.triOut.Send(cycle, tri)
}
