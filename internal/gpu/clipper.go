package gpu

import (
	"attila/internal/core"
	"attila/internal/emu/clipemu"
	"attila/internal/isa"
)

// Clipper performs trivial rejection of triangles completely outside
// the view frustum (paper §2.2: all other triangles, including
// partially visible ones, flow free to the rasterizer).
type Clipper struct {
	core.BoxBase
	triIn  *Flow
	triOut *Flow
	queue  []*TriWork

	statIn       *core.Counter
	statRejected *core.Counter
	statBusy     *core.Counter
}

// NewClipper builds the box. The output flow's signal latency models
// the 6-cycle clipper pipeline (Table 1).
func NewClipper(sim *core.Simulator, triIn, triOut *Flow) *Clipper {
	c := &Clipper{triIn: triIn, triOut: triOut}
	c.Init("Clipper")
	c.statIn = sim.Stats.Counter("Clipper.triangles")
	c.statRejected = sim.Stats.Counter("Clipper.rejected")
	c.statBusy = sim.Stats.Counter("Clipper.busyCycles")
	sim.Register(c)
	return c
}

// Clock implements core.Box.
func (c *Clipper) Clock(cycle int64) {
	for _, obj := range c.triIn.Recv(cycle) {
		c.queue = append(c.queue, obj.(*TriWork))
	}
	if len(c.queue) == 0 {
		return
	}
	tri := c.queue[0]
	rejected := clipemu.TriviallyRejected(
		tri.V[0].Out[isa.AttrPos],
		tri.V[1].Out[isa.AttrPos],
		tri.V[2].Out[isa.AttrPos])
	if !rejected && !c.triOut.CanSend(cycle, 1) {
		return
	}
	c.queue = c.queue[1:]
	c.triIn.Release(1)
	c.statIn.Inc()
	c.statBusy.Inc()
	if rejected {
		tri.Batch.TrisRetired++
		c.statRejected.Inc()
		return
	}
	c.triOut.Send(cycle, tri)
}
