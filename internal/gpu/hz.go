package gpu

import (
	"attila/internal/core"
	"attila/internal/emu/fragemu"
)

// HierarchicalZ tests generated fragment tiles against an on-chip
// Hierarchical Z buffer to remove non-visible tiles at a very fast
// rate (up to two 8x8 tiles per cycle, paper §2.2). The buffer holds
// one conservative maximum depth per 8x8 framebuffer block; reference
// values are refreshed when lines are evicted from the Z cache and
// compressed. Surviving tiles are split into 2x2 quads, the work unit
// of the fragment pipeline, and distributed over the ROP units by
// block interleaving.
type HierarchicalZ struct {
	core.BoxBase
	cfg     *Config
	pool    *pipePool
	layout  SurfaceLayout
	tileIn  *Flow
	earlyZ  []*Flow // per-ROP, early-Z path (HZ -> Z test)
	lateOut *Flow   // late-Z path (HZ -> interpolator)
	queue   core.FIFO[*Tile]
	maxZ    []uint32 // per block

	statTiles  core.Shadow
	statCulled core.Shadow
	statQuads  core.Shadow
	statBusy   core.Shadow
}

// NewHierarchicalZ builds the box. earlyZ carries one flow per ROP
// unit; lateOut feeds the interpolator when the batch performs Z
// after shading.
func NewHierarchicalZ(sim *core.Simulator, cfg *Config, pool *pipePool, layout SurfaceLayout,
	tileIn *Flow, earlyZ []*Flow, lateOut *Flow) *HierarchicalZ {
	h := &HierarchicalZ{
		cfg: cfg, pool: pool, layout: layout,
		tileIn: tileIn, earlyZ: earlyZ, lateOut: lateOut,
		maxZ: make([]uint32, layout.NumBlocks()),
	}
	h.Init("HierarchicalZ")
	for i := range h.maxZ {
		h.maxZ[i] = fragemu.MaxDepth
	}
	sim.Stats.ShadowCounter(&h.statTiles, "HZ.tiles")
	sim.Stats.ShadowCounter(&h.statCulled, "HZ.culledTiles")
	sim.Stats.ShadowCounter(&h.statQuads, "HZ.quadsOut")
	sim.Stats.ShadowCounter(&h.statBusy, "HZ.busyCycles")
	sim.Register(h)
	return h
}

// Update refreshes a block's reference depth from a compressed Z
// cache eviction (key is the block's memory address).
func (h *HierarchicalZ) Update(key uint32, maxDepth uint32) {
	idx := int(key-h.layout.Base) / SurfaceBlockBytes
	if idx >= 0 && idx < len(h.maxZ) {
		h.maxZ[idx] = maxDepth
	}
}

// Clear resets every block reference to the clear depth (fast Z
// clear).
func (h *HierarchicalZ) Clear(depth uint32) {
	for i := range h.maxZ {
		h.maxZ[i] = depth
	}
}

// ropFor interleaves framebuffer blocks over the ROP units.
func (h *HierarchicalZ) ropFor(x, y int) int {
	return h.layout.BlockIndex(x, y) % len(h.earlyZ)
}

// Clock implements core.Box.
func (h *HierarchicalZ) Clock(cycle int64) {
	for _, obj := range h.tileIn.Recv(cycle) {
		h.queue.Push(obj.(*Tile))
	}
	if h.queue.Len() == 0 {
		return
	}
	worked := false
	for n := 0; n < h.cfg.HZTilesPerCycle && h.queue.Len() > 0; n++ {
		tile := h.queue.Peek()
		if !h.process(cycle, tile) {
			break // downstream full; retry next cycle
		}
		worked = true
		h.queue.Pop()
		h.tileIn.Release(1)
		h.statTiles.Inc()
		h.pool.putTile(tile) // quads culled or forwarded; wrapper done
	}
	// A cycle spent entirely blocked on a full consumer is not busy:
	// busyCycles must reflect tiles actually tested, or utilization
	// reads 100% during downstream stalls.
	if worked {
		h.statBusy.Inc()
	}
}

func (h *HierarchicalZ) process(cycle int64, tile *Tile) bool {
	b := tile.Batch
	if b.HZ {
		idx := h.layout.BlockIndex(tile.X, tile.Y)
		if idx >= 0 && idx < len(h.maxZ) && tile.MinDepth > h.maxZ[idx] {
			// The whole tile is behind everything drawn to the
			// block: cull it without touching memory.
			b.QuadsRetired += len(tile.Quads)
			b.HZCulledQuads += len(tile.Quads)
			h.statCulled.Inc()
			for _, q := range tile.Quads {
				h.pool.putQuad(q)
			}
			return true
		}
	}
	// Split into quads and route. All quads of the tile go out in
	// one cycle (the 2x64 fragment bandwidth of Table 1); the flow
	// credits provide backpressure.
	if b.EarlyZ {
		rop := h.ropFor(tile.X, tile.Y)
		if !h.earlyZ[rop].CanSend(cycle, len(tile.Quads)) {
			return false
		}
		for _, q := range tile.Quads {
			h.earlyZ[rop].Send(cycle, q)
		}
	} else {
		if !h.lateOut.CanSend(cycle, len(tile.Quads)) {
			return false
		}
		for _, q := range tile.Quads {
			h.lateOut.Send(cycle, q)
		}
	}
	h.statQuads.Add(float64(len(tile.Quads)))
	return true
}
