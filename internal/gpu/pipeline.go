package gpu

import (
	"context"
	"fmt"
	"io"

	"attila/internal/core"
	"attila/internal/isa"
	"attila/internal/mem"
	"attila/internal/obsv/trace"
)

// Framebuffer owns the double-buffered color surface and the
// depth-stencil surface, plus an optional offscreen render target
// override (render to texture).
type Framebuffer struct {
	color    [2]SurfaceLayout
	z        SurfaceLayout
	draw     int
	override *SurfaceLayout
}

// Draw returns the current color render target: the offscreen
// override when set, else the back buffer.
func (f *Framebuffer) Draw() SurfaceLayout {
	if f.override != nil {
		return *f.override
	}
	return f.color[f.draw]
}

// SetOverride redirects color rendering (nil restores the back
// buffer). Only the command processor calls this, at a drained
// pipeline point.
func (f *Framebuffer) SetOverride(l *SurfaceLayout) { f.override = l }

// Front returns the displayed buffer.
func (f *Framebuffer) Front() SurfaceLayout { return f.color[1-f.draw] }

// Z returns the depth-stencil surface.
func (f *Framebuffer) Z() SurfaceLayout { return f.z }

// Swap flips front and back.
func (f *Framebuffer) Swap() { f.draw = 1 - f.draw }

// FramebufferPlan places the two color buffers and the depth-stencil
// buffer at fixed GPU memory addresses for a render target size, and
// returns the first free address after them. The timing pipeline and
// the functional reference renderer share this plan, which is what
// makes their memory images directly comparable.
func FramebufferPlan(w, h int) (color0, color1, z SurfaceLayout, reserved uint32) {
	bytes := uint32(NewSurfaceLayout(0, w, h).Bytes())
	color0 = NewSurfaceLayout(0, w, h)
	color1 = NewSurfaceLayout(bytes, w, h)
	z = NewSurfaceLayout(2*bytes, w, h)
	return color0, color1, z, 3 * bytes
}

// Pipeline assembles the complete ATTILA GPU from boxes and signals
// (Figure 5) for a given configuration and framebuffer size, and
// drives the simulation.
type Pipeline struct {
	Cfg *Config
	Sim *core.Simulator
	Mem *mem.GPUMemory
	FB  *Framebuffer

	CP     *CommandProcessor
	DACBox *DAC

	streamer *Streamer
	setupBox *Setup
	hz       *HierarchicalZ
	ropzs    []*ZStencil
	ropcs    []*ColorWrite
	shaders  []*ShaderUnit
	tus      []*TextureUnit
	ffifo    *FragmentFIFO
	mc       *mem.Controller
	spans    *trace.Collector

	alloc *mem.Allocator
	w, h  int
}

// flow provides a signal under the producer's name and binds it for
// the consumer, wrapping it with queue credits. Credit releases fold
// at the simulator's cycle barrier.
func pFlow(sim *core.Simulator, producer, consumer, name string, bw, lat, maxLat, queue int) *Flow {
	sig := sim.Binder.Provide(producer, name, bw, lat, maxLat)
	var bound *core.Signal
	sim.Binder.Bind(consumer, name, &bound)
	f := NewFlow(sig, queue)
	// Credit release is a latency-1 consumer-to-producer dependency
	// outside the signal model: the fold must happen every simulated
	// cycle on the shard owning both endpoints, and the declared edge
	// keeps the skew batch at 1 whenever the two boxes could land on
	// different shards.
	sim.OnLocalCycle(f.EndCycle, producer, consumer)
	sim.ConstrainSkew(producer, consumer, 1)
	return f
}

// New builds a pipeline for the configuration and render target size.
func New(cfg Config, width, height int) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Pipeline{Cfg: &cfg, w: width, h: height}
	p.Sim = core.NewSimulator(cfg.StatInterval)
	p.Mem = mem.NewGPUMemory(cfg.GPUMemBytes)

	// Framebuffer allocation: two color buffers plus depth-stencil,
	// always at the fixed plan addresses so the functional reference
	// renderer sees identical memory layout.
	c0, c1, zb, reserved := FramebufferPlan(width, height)
	if int(reserved) > cfg.GPUMemBytes {
		return nil, &ConfigError{Config: cfg.Name, Msg: "GPU memory too small for framebuffer"}
	}
	p.alloc = mem.NewAllocator(reserved, uint32(cfg.GPUMemBytes)-reserved)
	p.FB = &Framebuffer{color: [2]SurfaceLayout{c0, c1}, z: zb}

	sim := p.Sim
	nROP := cfg.NumROPs
	nShaders := cfg.NumShaders
	if !cfg.UnifiedShaders {
		nShaders += cfg.NumVertexShaders
	}
	nTU := cfg.NumTextureUnits

	// Flows. Producer/consumer names are the box names; the binder
	// verifies every signal ends up with exactly one of each.
	drawFlow := pFlow(sim, "CommandProcessor", "Streamer", "CP.Draw", 1, 1, 0, 2)
	shadeOut := pFlow(sim, "Streamer", "FragmentFIFO", "Streamer.ShadeIn", 1, 1, 0, 16)
	vtxShaded := pFlow(sim, "FragmentFIFO", "Streamer", "FFIFO.VtxShaded", 1, 1, 0, 16)
	vtxOut := pFlow(sim, "Streamer", "PrimAssembly", "Streamer.VtxOut", 1, 1, 0, cfg.PAQueue)
	paOut := pFlow(sim, "PrimAssembly", "Clipper", "PA.TriOut", 1, 1, 0, cfg.ClipQueue)
	clipOut := pFlow(sim, "Clipper", "TriangleSetup", "Clipper.TriOut", 1, cfg.ClipLatency, 0, cfg.SetupQueue)
	setupOut := pFlow(sim, "TriangleSetup", "FragmentGenerator", "Setup.TriOut", 1, cfg.SetupLatency, 0, cfg.FGenQueue)
	fgenOut := pFlow(sim, "FragmentGenerator", "HierarchicalZ", "FGen.Tiles", cfg.FGenTilesPerCycle, 1, 0, cfg.HZQueue)

	hzEarly := make([]*Flow, nROP)
	for i := 0; i < nROP; i++ {
		hzEarly[i] = pFlow(sim, "HierarchicalZ", nameIdx("ZStencil", i),
			nameIdx("HZ.QuadsEarly.", i), 32, 1, 0, cfg.ROPQueue)
	}
	interpIns := make([]*Flow, 0, nROP+1)
	ropzEarly := make([]*Flow, nROP)
	for i := 0; i < nROP; i++ {
		ropzEarly[i] = pFlow(sim, nameIdx("ZStencil", i), "Interpolator",
			nameIdx("ZStencil.Early.", i), 1, 2, 0, cfg.InterpQueue)
		interpIns = append(interpIns, ropzEarly[i])
	}
	hzLate := pFlow(sim, "HierarchicalZ", "Interpolator", "HZ.QuadsLate", 32, 1, 0, cfg.InterpQueue)
	interpIns = append(interpIns, hzLate)

	interpMaxLat := cfg.InterpBaseLat + cfg.InterpPerAttrLat*isa.MaxInputs
	interpOut := pFlow(sim, "Interpolator", "FragmentFIFO", "Interp.Out",
		cfg.InterpQuadsPerCycle, cfg.InterpBaseLat, interpMaxLat, 32)

	shaderIn := make([]*Flow, nShaders)
	shaderOut := make([]*Flow, nShaders)
	texFromShader := make([]*Flow, nShaders)
	texToShader := make([]*Flow, nShaders)
	for i := 0; i < nShaders; i++ {
		vertexOnly := !cfg.UnifiedShaders && i < cfg.NumVertexShaders
		threads := cfg.ThreadsPerShader
		if vertexOnly {
			threads = cfg.VertexThreadsPerShader
		}
		shaderIn[i] = pFlow(sim, "FragmentFIFO", nameIdx("Shader", i),
			nameIdx("FFIFO.ShaderIn.", i), 1, 1, 0, threads)
		shaderOut[i] = pFlow(sim, nameIdx("Shader", i), "FragmentFIFO",
			nameIdx("Shader.Out.", i), 1, 1, 0, 4)
		if !vertexOnly {
			texFromShader[i] = pFlow(sim, nameIdx("Shader", i), "TexCrossbar",
				nameIdx("Shader.TexReq.", i), 1, 1, 0, 8)
			texToShader[i] = pFlow(sim, "TexCrossbar", nameIdx("Shader", i),
				nameIdx("XBar.Rep.", i), 1, 1, 0, 8)
		}
	}
	texToTU := make([]*Flow, nTU)
	texFromTU := make([]*Flow, nTU)
	for i := 0; i < nTU; i++ {
		texToTU[i] = pFlow(sim, "TexCrossbar", nameIdx("TextureUnit", i),
			nameIdx("XBar.TUReq.", i), 1, 1, 0, cfg.TexQueue)
		filterLat := cfg.TexFilterLat
		if filterLat < 1 {
			filterLat = 1
		}
		texFromTU[i] = pFlow(sim, nameIdx("TextureUnit", i), "TexCrossbar",
			nameIdx("TU.Rep.", i), 1, 1, filterLat, 8)
	}

	ffifoEarly := make([]*Flow, nROP) // FFIFO -> ColorWrite (early-Z)
	ffifoLate := make([]*Flow, nROP)  // FFIFO -> ZStencil (late-Z)
	ropzLate := make([]*Flow, nROP)   // ZStencil -> ColorWrite (late-Z)
	for i := 0; i < nROP; i++ {
		ffifoEarly[i] = pFlow(sim, "FragmentFIFO", nameIdx("ColorWrite", i),
			nameIdx("FFIFO.ROPc.", i), 4, 1, 0, cfg.ROPQueue)
		ffifoLate[i] = pFlow(sim, "FragmentFIFO", nameIdx("ZStencil", i),
			nameIdx("FFIFO.ROPzLate.", i), 4, 1, 0, cfg.ROPQueue)
		ropzLate[i] = pFlow(sim, nameIdx("ZStencil", i), nameIdx("ColorWrite", i),
			nameIdx("ZStencil.Late.", i), 1, 2, 0, cfg.ROPQueue)
	}

	// Boxes. Registration order is the clocking order; with all
	// signal latencies >= 1 it does not affect results.
	// Shared free lists for tiles, quads and shader-work wrappers. All
	// alloc/release sites are on boxes pinned to the "pipe" shard, so
	// the pool is single-goroutine even under Workers>1.
	pool := &pipePool{}
	p.streamer = NewStreamer(sim, &cfg, p.Mem, drawFlow, shadeOut, vtxShaded, vtxOut)
	pa := NewPrimAssembly(sim, vtxOut, paOut)
	clip := NewClipper(sim, paOut, clipOut)
	p.setupBox = NewSetup(sim, clipOut, setupOut)
	fgen := NewFragmentGenerator(sim, &cfg, pool, setupOut, fgenOut)
	p.hz = NewHierarchicalZ(sim, &cfg, pool, p.FB.Z(), fgenOut, hzEarly, hzLate)
	p.ropzs = make([]*ZStencil, nROP)
	p.ropcs = make([]*ColorWrite, nROP)
	for i := 0; i < nROP; i++ {
		p.ropzs[i] = NewZStencil(sim, &cfg, i, pool, p.FB.Z(),
			[]*Flow{hzEarly[i], ffifoLate[i]}, ropzEarly[i], ropzLate[i])
		p.ropzs[i].SetHZ(p.hz)
		p.ropcs[i] = NewColorWrite(sim, &cfg, i, pool, p.FB.Draw,
			[]*Flow{ffifoEarly[i], ropzLate[i]})
	}
	interp := NewInterpolator(sim, &cfg, interpIns, interpOut)
	ffifo := NewFragmentFIFO(sim, &cfg, pool, p.FB.Z(), shadeOut, interpOut, vtxShaded,
		ffifoEarly, ffifoLate, shaderIn, shaderOut)
	p.ffifo = ffifo
	p.shaders = make([]*ShaderUnit, nShaders)
	for i := 0; i < nShaders; i++ {
		vertexOnly := !cfg.UnifiedShaders && i < cfg.NumVertexShaders
		p.shaders[i] = NewShaderUnit(sim, &cfg, i, vertexOnly,
			shaderIn[i], shaderOut[i], texFromShader[i], texToShader[i])
	}
	xbar := NewTexCrossbar(sim, texFromShader, texToTU, texFromTU, texToShader)
	p.tus = make([]*TextureUnit, nTU)
	for i := 0; i < nTU; i++ {
		p.tus[i] = NewTextureUnit(sim, &cfg, i, texToTU[i], texFromTU[i])
	}
	p.DACBox = NewDAC(sim, p.ropcs, cfg.DACRefreshCycles, p.FB.Front)
	p.CP = NewCommandProcessor(sim, &cfg, p.FB, drawFlow, p.ropzs, p.ropcs, p.tus, p.DACBox)

	// Memory controller: one client per port registered above.
	clients := []string{"CP", "Streamer", "DAC"}
	for i := 0; i < nROP; i++ {
		clients = append(clients, nameIdx("ZCache", i), nameIdx("ColorCache", i))
	}
	for i := 0; i < nTU; i++ {
		clients = append(clients, nameIdx("TexCache", i))
	}
	mc := mem.NewController(sim, cfg.Memory, p.Mem, clients)
	p.mc = mc

	// Shard affinity for the parallel clock loop: the fixed-pipeline
	// boxes couple through shared state outside the signal model (the
	// BatchState counters, direct CP <-> ROP/DAC method calls, HZ
	// updates from Z-stencil, GPU memory touched by the streamer and
	// the controller) and therefore form one indivisible unit. Shader
	// units, the texture crossbar and the texture units interact with
	// the rest of the chip only through signals, so each may be
	// clocked on its own worker — they are also where the host time
	// goes, which is what makes the parallel mode pay off.
	pinned := []core.Box{p.streamer, pa, clip, p.setupBox, fgen, p.hz}
	for _, z := range p.ropzs {
		pinned = append(pinned, z)
	}
	for _, c := range p.ropcs {
		pinned = append(pinned, c)
	}
	pinned = append(pinned, interp, ffifo, p.DACBox, p.CP, mc)
	sim.Pin("pipe", pinned...)
	_ = xbar // free: flow-mediated only, may land on any shard
	sim.SetWorkers(cfg.Workers)
	sim.SetWatchdog(cfg.WatchdogWindow)

	// Parallel-mode tuning. Skew batching is armed but computes a
	// batch of 1 for this topology: every flow declares a latency-1
	// credit edge, so cross-shard free-running is provably unsafe here
	// and the simulator keeps per-cycle full syncs (bit-identity with
	// the serial run is the contract). The cost seeds mirror the
	// profiled host-time ranking (texture units ~2x shaders ~2x fixed
	// pipeline) so the initial bin-packing partition spreads the
	// expensive free boxes instead of dealing them round-robin; the
	// warm-up re-shard then rebalances from measured per-box time.
	sim.EnableSkewBatching(0)
	costs := make(map[string]float64, nShaders+nTU)
	for i := 0; i < nShaders; i++ {
		costs[nameIdx("Shader", i)] = 2
	}
	for i := 0; i < nTU; i++ {
		costs[nameIdx("TextureUnit", i)] = 4
	}
	sim.SetBoxCosts(costs)
	sim.SetAutoReshard(8192)

	sim.SetDone(p.CP.Finished)
	return p, nil
}

// TraceSignals installs a signal tracer on every wire; the produced
// signal trace feeds the Signal Trace Visualizer (cmd/sigtrace).
func (p *Pipeline) TraceSignals(t core.Tracer) { p.Sim.Binder.SetTracer(t) }

// EnableSpanTracing attaches request-lifecycle tracing: every memory
// port and the shader-work scheduler get a tracing handle, a sampled
// fraction of their requests carry pooled span records through the
// machine, and the returned collector folds terminations into
// per-client latency histograms at the cycle barrier.
//
// Call after New and BEFORE attaching any barrier consumer that reads
// the collector (the metrics bus): barrier hooks run in registration
// order, and windowed percentiles must see the current cycle's
// terminations. The collector also feeds the crash flight recorder.
func (p *Pipeline) EnableSpanTracing(opts trace.Options) *trace.Collector {
	col := trace.NewCollector(opts)
	// Client registration order is the fold order and therefore part
	// of the deterministic output; keep it fixed: the MC client list
	// order, then the shader-work clients.
	p.CP.port.SetTracer(col.Client("CP"))
	p.streamer.fetch.SetTracer(col.Client("Streamer"))
	p.DACBox.port.SetTracer(col.Client("DAC"))
	for i, z := range p.ropzs {
		z.cache.SetTracer(col.Client(nameIdx("ZCache", i)))
	}
	for i, c := range p.ropcs {
		c.cache.SetTracer(col.Client(nameIdx("ColorCache", i)))
	}
	for i, t := range p.tus {
		t.cache.SetTracer(col.Client(nameIdx("TexCache", i)))
	}
	p.ffifo.SetTracers(col.Client("FFIFO.vtx"), col.Client("FFIFO.frag"))
	p.Sim.OnEndCycle(col.EndCycle)
	p.Sim.SetFlightRecorder(col.Recent)
	p.spans = col
	return col
}

// Spans returns the span collector installed by EnableSpanTracing,
// or nil when tracing is off.
func (p *Pipeline) Spans() *trace.Collector { return p.spans }

// Alloc reserves GPU memory for driver objects (buffers, textures).
func (p *Pipeline) Alloc(n int, align uint32) (uint32, error) {
	return p.alloc.Alloc(n, align)
}

// Width and Height return the render target size.
func (p *Pipeline) Width() int { return p.w }

// Height returns the render target height.
func (p *Pipeline) Height() int { return p.h }

// Run executes the command stream to completion (or the cycle limit).
func (p *Pipeline) Run(cmds []Command, maxCycles int64) error {
	p.CP.SetCommands(cmds)
	return p.Sim.Run(maxCycles)
}

// RunContext is Run with cooperative cancellation: when ctx is
// canceled (Ctrl-C handler, -timeout), the run stops at the next cycle
// boundary with an error matching core.ErrCanceled, partial statistics
// and frames intact. See core.Simulator.RunContext for the full error
// contract.
func (p *Pipeline) RunContext(ctx context.Context, cmds []Command, maxCycles int64) error {
	p.CP.SetCommands(cmds)
	return p.Sim.RunContext(ctx, maxCycles)
}

// Cycles returns the simulated cycle count so far.
func (p *Pipeline) Cycles() int64 { return p.Sim.Cycle() }

// Frames returns the DAC frame dumps.
func (p *Pipeline) Frames() []*Frame { return p.DACBox.Frames() }

// TexCaches exposes the texture caches (Figure 8 statistics).
func (p *Pipeline) TexCaches() []*mem.Cache {
	out := make([]*mem.Cache, len(p.tus))
	for i, t := range p.tus {
		out[i] = t.Cache()
	}
	return out
}

// FPS converts the cycles spent so far into frames per second at the
// configured clock.
func (p *Pipeline) FPS() float64 {
	frames := float64(p.CP.Frames())
	if frames == 0 || p.Sim.Cycle() == 0 {
		return 0
	}
	seconds := float64(p.Sim.Cycle()) / (float64(p.Cfg.ClockMHz) * 1e6)
	return frames / seconds
}

// DumpStats writes the cumulative statistics summary.
func (p *Pipeline) DumpStats(w io.Writer) error {
	return p.Sim.Stats.WriteSummary(w)
}

// DumpCSV writes the interval-sampled statistics (the paper's CSV
// output with ~300 statistics).
func (p *Pipeline) DumpCSV(w io.Writer) error {
	return p.Sim.Stats.WriteCSV(w)
}

// String summarizes the configuration.
func (p *Pipeline) String() string {
	return fmt.Sprintf("ATTILA %s: %d shaders (unified=%v), %d ROPs, %d TUs, %dx%d",
		p.Cfg.Name, p.Cfg.NumShaders, p.Cfg.UnifiedShaders, p.Cfg.NumROPs,
		p.Cfg.NumTextureUnits, p.w, p.h)
}
