package gpu

import (
	"encoding/binary"
	"math"
	"testing"

	"attila/internal/emu/fragemu"
	"attila/internal/emu/rastemu"
	"attila/internal/isa"
	"attila/internal/vmath"
)

// floatBuf packs float32s little endian.
func floatBuf(vals ...float32) []byte {
	out := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
	return out
}

// testState builds a minimal draw state: positions in attrib 0,
// colors in attrib 1, pass-through shaders.
func testState(t *testing.T, p *Pipeline, count int) (*DrawState, uint32) {
	t.Helper()
	vp := isa.MustAssemble(isa.VertexProgram, "vp", `
MOV o0, v0
MOV o1, v1
END`)
	fp := isa.MustAssemble(isa.FragmentProgram, "fp", `
MOV o0, v1
END`)
	vbuf, err := p.Alloc(count*7*4, 64)
	if err != nil {
		t.Fatal(err)
	}
	st := &DrawState{
		VertexProg: vp, FragmentProg: fp,
		Viewport:  rastemu.Viewport{X: 0, Y: 0, W: p.Width(), H: p.Height(), Near: 0, Far: 1},
		Depth:     fragemu.DepthState{Enabled: true, Func: fragemu.CmpLess, WriteMask: true},
		ColorMask: [4]bool{true, true, true, true},
		Count:     count,
		Primitive: Triangles,
	}
	st.Attribs[0] = AttribBinding{Enabled: true, Addr: vbuf, Stride: 28, Size: 3}
	st.Attribs[1] = AttribBinding{Enabled: true, Addr: vbuf + 12, Stride: 28, Size: 4}
	return st, vbuf
}

// vtx serializes interleaved position(3) + color(4).
func vtx(x, y, z float32, c vmath.Vec4) []float32 {
	return []float32{x, y, z, c[0], c[1], c[2], c[3]}
}

func buildVerts(vs ...[]float32) []byte {
	var flat []float32
	for _, v := range vs {
		flat = append(flat, v...)
	}
	return floatBuf(flat...)
}

func runPipeline(t *testing.T, cfg Config, w, h int, cmds []Command) *Pipeline {
	t.Helper()
	p, err := New(cfg, w, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(cmds, 3_000_000); err != nil {
		t.Fatalf("pipeline run: %v", err)
	}
	return p
}

func pixel(f *Frame, x, y int) [4]byte {
	var c [4]byte
	copy(c[:], f.Pix[(y*f.W+x)*4:])
	return c
}

func TestPipelineRendersTriangle(t *testing.T) {
	cfg := BaselineUnified()
	cfg.StatInterval = 0
	p, err := New(cfg, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	red := vmath.Vec4{1, 0, 0, 1}
	st, vbuf := testState(t, p, 3)
	verts := buildVerts(
		vtx(-1, -1, 0, red),
		vtx(1, -1, 0, red),
		vtx(0, 1, 0, red),
	)
	cmds := []Command{
		CmdBufferWrite{Addr: vbuf, Data: verts},
		CmdClearZS{Depth: 1, Stencil: 0},
		CmdClearColor{Value: [4]byte{0, 0, 64, 255}},
		CmdDraw{State: st},
		CmdSwap{},
	}
	if err := p.Run(cmds, 3_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	frames := p.Frames()
	if len(frames) != 1 {
		t.Fatalf("frames: %d", len(frames))
	}
	f := frames[0]
	// Center covered by the triangle: red.
	if c := pixel(f, 32, 32); c != [4]byte{255, 0, 0, 255} {
		t.Fatalf("center pixel: %v", c)
	}
	// Top corners outside: clear color.
	if c := pixel(f, 0, 63); c != [4]byte{0, 0, 64, 255} {
		t.Fatalf("corner pixel: %v", c)
	}
	if p.CP.Frames() != 1 {
		t.Fatalf("frame count: %d", p.CP.Frames())
	}
	if p.Cycles() <= 0 {
		t.Fatal("no cycles simulated")
	}
}

func TestPipelineDepthTestOrderIndependent(t *testing.T) {
	// A far red triangle drawn after a near green one must lose.
	for _, order := range []string{"near-first", "far-first"} {
		cfg := BaselineUnified()
		cfg.StatInterval = 0
		p, err := New(cfg, 64, 64)
		if err != nil {
			t.Fatal(err)
		}
		green := vmath.Vec4{0, 1, 0, 1}
		red := vmath.Vec4{1, 0, 0, 1}
		stNear, vbufNear := testState(t, p, 3)
		stFar, vbufFar := testState(t, p, 3)
		near := buildVerts(
			vtx(-3, -3, -0.5, green), vtx(3, -3, -0.5, green), vtx(0, 3, -0.5, green))
		far := buildVerts(
			vtx(-3, -3, 0.5, red), vtx(3, -3, 0.5, red), vtx(0, 3, 0.5, red))
		draws := []Command{CmdDraw{State: stNear}, CmdDraw{State: stFar}}
		if order == "far-first" {
			draws = []Command{CmdDraw{State: stFar}, CmdDraw{State: stNear}}
		}
		cmds := []Command{
			CmdBufferWrite{Addr: vbufNear, Data: near},
			CmdBufferWrite{Addr: vbufFar, Data: far},
			CmdClearZS{Depth: 1, Stencil: 0},
			CmdClearColor{Value: [4]byte{0, 0, 0, 255}},
		}
		cmds = append(cmds, draws...)
		cmds = append(cmds, CmdSwap{})
		if err := p.Run(cmds, 5_000_000); err != nil {
			t.Fatalf("%s: run: %v", order, err)
		}
		f := p.Frames()[0]
		if c := pixel(f, 32, 32); c != [4]byte{0, 255, 0, 255} {
			t.Fatalf("%s: center pixel: %v", order, c)
		}
	}
}

func TestPipelineHZCullsOccludedWork(t *testing.T) {
	// Draw a big near quad (two triangles), then a far fullscreen
	// triangle: HZ should cull most of the far triangle's tiles.
	// The framebuffer must exceed the Z cache capacity (64 lines):
	// HZ references only refresh when lines are evicted and
	// compressed (paper §2.2).
	cfg := BaselineUnified()
	cfg.StatInterval = 0
	p, err := New(cfg, 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	blue := vmath.Vec4{0, 0, 1, 1}
	red := vmath.Vec4{1, 0, 0, 1}
	stNear, vbufNear := testState(t, p, 6)
	stFar, vbufFar := testState(t, p, 3)
	near := buildVerts(
		vtx(-1, -1, -0.5, blue), vtx(1, -1, -0.5, blue), vtx(1, 1, -0.5, blue),
		vtx(-1, -1, -0.5, blue), vtx(1, 1, -0.5, blue), vtx(-1, 1, -0.5, blue))
	far := buildVerts(
		vtx(-3, -3, 0.5, red), vtx(3, -3, 0.5, red), vtx(0, 3, 0.5, red))
	cmds := []Command{
		CmdBufferWrite{Addr: vbufNear, Data: near},
		CmdBufferWrite{Addr: vbufFar, Data: far},
		CmdClearZS{Depth: 1, Stencil: 0},
		CmdClearColor{Value: [4]byte{0, 0, 0, 255}},
		CmdDraw{State: stNear},
		CmdDraw{State: stFar},
		CmdSwap{},
	}
	if err := p.Run(cmds, 5_000_000); err != nil {
		t.Fatal(err)
	}
	f := p.Frames()[0]
	if c := pixel(f, 32, 32); c != [4]byte{0, 0, 255, 255} {
		t.Fatalf("center pixel: %v", c)
	}
	culled := p.Sim.Stats.Lookup("HZ.culledTiles").Value()
	if culled == 0 {
		t.Fatal("HZ culled nothing for a fully occluded triangle")
	}
}

func TestPipelineNonUnifiedRenders(t *testing.T) {
	cfg := Baseline()
	cfg.StatInterval = 0
	p, err := New(cfg, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	white := vmath.Vec4{1, 1, 1, 1}
	st, vbuf := testState(t, p, 3)
	verts := buildVerts(
		vtx(-3, -3, 0, white), vtx(3, -3, 0, white), vtx(0, 3, 0, white))
	cmds := []Command{
		CmdBufferWrite{Addr: vbuf, Data: verts},
		CmdClearZS{Depth: 1, Stencil: 0},
		CmdClearColor{Value: [4]byte{10, 20, 30, 255}},
		CmdDraw{State: st},
		CmdSwap{},
	}
	if err := p.Run(cmds, 3_000_000); err != nil {
		t.Fatal(err)
	}
	f := p.Frames()[0]
	if c := pixel(f, 16, 16); c != [4]byte{255, 255, 255, 255} {
		t.Fatalf("center pixel: %v", c)
	}
}

func TestPipelineIndexedDrawUsesVertexCache(t *testing.T) {
	cfg := BaselineUnified()
	cfg.StatInterval = 0
	p, err := New(cfg, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	white := vmath.Vec4{1, 1, 1, 1}
	st, vbuf := testState(t, p, 6)
	// 4 unique vertices, 6 indices (two triangles sharing an edge).
	verts := buildVerts(
		vtx(-1, -1, 0, white), vtx(1, -1, 0, white),
		vtx(1, 1, 0, white), vtx(-1, 1, 0, white))
	ibuf, err := p.Alloc(12, 64)
	if err != nil {
		t.Fatal(err)
	}
	indices := make([]byte, 12)
	for i, v := range []uint16{0, 1, 2, 0, 2, 3} {
		binary.LittleEndian.PutUint16(indices[i*2:], v)
	}
	st.IndexAddr = ibuf
	st.IndexSize = 2
	cmds := []Command{
		CmdBufferWrite{Addr: vbuf, Data: verts},
		CmdBufferWrite{Addr: ibuf, Data: indices},
		CmdClearZS{Depth: 1, Stencil: 0},
		CmdClearColor{Value: [4]byte{0, 0, 0, 255}},
		CmdDraw{State: st},
		CmdSwap{},
	}
	if err := p.Run(cmds, 3_000_000); err != nil {
		t.Fatal(err)
	}
	f := p.Frames()[0]
	for _, xy := range [][2]int{{5, 5}, {16, 16}, {28, 28}, {5, 28}, {28, 5}} {
		if c := pixel(f, xy[0], xy[1]); c != [4]byte{255, 255, 255, 255} {
			t.Fatalf("pixel %v: %v (quad has a crack?)", xy, c)
		}
	}
	hits := p.Sim.Stats.Lookup("Streamer.vcacheHits").Value()
	if hits < 2 {
		t.Fatalf("vertex cache hits: %v", hits)
	}
	// Shared-edge exactness: with depth LESS and a second pass over
	// the same quad no pixel may be drawn twice... verified via the
	// rasterizer property tests; here just confirm full coverage.
}

func TestPipelineScissor(t *testing.T) {
	cfg := BaselineUnified()
	cfg.StatInterval = 0
	p, err := New(cfg, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	white := vmath.Vec4{1, 1, 1, 1}
	st, vbuf := testState(t, p, 3)
	st.ScissorEnabled = true
	st.ScissorX, st.ScissorY, st.ScissorW, st.ScissorH = 0, 0, 32, 64
	verts := buildVerts(
		vtx(-3, -3, 0, white), vtx(3, -3, 0, white), vtx(0, 3, 0, white))
	cmds := []Command{
		CmdBufferWrite{Addr: vbuf, Data: verts},
		CmdClearZS{Depth: 1, Stencil: 0},
		CmdClearColor{Value: [4]byte{0, 0, 0, 255}},
		CmdDraw{State: st},
		CmdSwap{},
	}
	if err := p.Run(cmds, 3_000_000); err != nil {
		t.Fatal(err)
	}
	f := p.Frames()[0]
	if c := pixel(f, 16, 32); c != [4]byte{255, 255, 255, 255} {
		t.Fatalf("inside scissor: %v", c)
	}
	if c := pixel(f, 48, 32); c != [4]byte{0, 0, 0, 255} {
		t.Fatalf("outside scissor: %v", c)
	}
}
