package gpu

import (
	"encoding/binary"
	"strconv"

	"attila/internal/core"
	"attila/internal/emu/fragemu"
	"attila/internal/mem"
)

// zBlockState tracks each depth-stencil framebuffer block for fast
// clear and compression (paper §2.2, after the ATI Hot3D presentation
// and patent): cleared blocks are synthesized on chip, compressed
// blocks fetch and write 1:2 or 1:4 of the line.
type zBlockState uint8

const (
	zStateClear zBlockState = iota
	zStateUncompressed
	zStateHalf
	zStateQuarter
)

// ZStencil is one Z and Stencil Test unit (ROPz): it tests fragment
// quads against the stencil and depth buffer through a Z cache with
// lossless compression and fast clear, culls dead quads, and feeds
// the Hierarchical Z buffer with reference updates on evictions.
type ZStencil struct {
	core.BoxBase
	cfg    *Config
	pool   *pipePool
	layout SurfaceLayout
	cache  *mem.Cache
	hz     *HierarchicalZ

	quadIns  []*Flow // early path from HZ, late path from FragmentFIFO
	earlyOut *Flow   // to interpolator (early-Z path)
	lateOut  *Flow   // to color write (late-Z path)

	queue      core.FIFO[*Quad]
	headLooked bool

	states     []zBlockState
	clearValue uint32

	clearPending bool
	flushPending bool
	flushIssued  bool

	statQuads  core.Shadow
	statFrags  core.Shadow
	statCulled core.Shadow
	statBusy   core.Shadow
	statStall  core.Shadow
}

// NewZStencil builds ROPz unit idx.
func NewZStencil(sim *core.Simulator, cfg *Config, idx int, pool *pipePool, layout SurfaceLayout,
	quadIns []*Flow, earlyOut, lateOut *Flow) *ZStencil {
	z := &ZStencil{
		cfg: cfg, pool: pool, layout: layout,
		quadIns: quadIns, earlyOut: earlyOut, lateOut: lateOut,
		states:     make([]zBlockState, layout.NumBlocks()),
		clearValue: fragemu.PackDS(fragemu.MaxDepth, 0),
	}
	z.Init(nameIdx("ZStencil", idx))
	for i := range z.states {
		z.states[i] = zStateUncompressed
	}
	cc := mem.CacheConfig{
		Name: nameIdx("ZCache", idx), Sets: cfg.ZCacheSets, Assoc: cfg.ZCacheAssoc,
		LineBytes: SurfaceBlockBytes, MissQ: 8, PortLimit: 8,
	}
	z.cache = mem.NewCache(sim, cc, &zHooks{z: z})
	sim.Stats.ShadowCounter(&z.statQuads, z.BoxName()+".quads")
	sim.Stats.ShadowCounter(&z.statFrags, z.BoxName()+".fragments")
	sim.Stats.ShadowCounter(&z.statCulled, z.BoxName()+".culledQuads")
	sim.Stats.ShadowCounter(&z.statBusy, z.BoxName()+".busyCycles")
	sim.Stats.ShadowCounter(&z.statStall, z.BoxName()+".stallCycles")
	sim.Register(z)
	return z
}

func nameIdx(base string, idx int) string {
	return base + strconv.Itoa(idx)
}

// SetHZ wires the Hierarchical Z feedback (called by the pipeline
// after both boxes exist).
func (z *ZStencil) SetHZ(hz *HierarchicalZ) { z.hz = hz }

// Cache exposes the Z cache for statistics.
func (z *ZStencil) Cache() *mem.Cache { return z.cache }

// StartClear begins a fast Z/stencil clear to the packed value.
func (z *ZStencil) StartClear(value uint32) {
	z.clearPending = true
	z.clearValue = value
}

// ClearDone reports clear completion.
func (z *ZStencil) ClearDone() bool { return !z.clearPending }

// StartFlush begins writing back all dirty Z cache lines.
func (z *ZStencil) StartFlush() {
	z.flushPending = true
	z.flushIssued = false
}

// FlushDone reports flush completion.
func (z *ZStencil) FlushDone() bool { return !z.flushPending }

// Clock implements core.Box.
func (z *ZStencil) Clock(cycle int64) {
	z.cache.Clock(cycle)

	if z.clearPending {
		if z.queue.Len() == 0 && z.cache.Quiesce() {
			for i := range z.states {
				z.states[i] = zStateClear
			}
			z.cache.InvalidateAll()
			if z.hz != nil {
				d, _ := fragemu.UnpackDS(z.clearValue)
				z.hz.Clear(d)
			}
			z.clearPending = false
		}
		return
	}
	if z.flushPending {
		if z.queue.Len() == 0 {
			if !z.flushIssued {
				if z.cache.FlushDirty(cycle) {
					z.flushIssued = true
				}
			} else if z.cache.Quiesce() {
				z.flushPending = false
			}
		}
		return
	}

	for _, in := range z.quadIns {
		for _, obj := range in.Recv(cycle) {
			q := obj.(*Quad)
			q.srcFlow = in
			z.queue.Push(q)
		}
	}
	if z.queue.Len() == 0 {
		return
	}

	// One quad per cycle (4 fragments, Table 1).
	q := z.queue.Peek()
	if q.ZDone {
		// Tested on an earlier cycle but the output was full: only
		// retry the forward, never the (stencil-updating) test.
		if z.forward(cycle, q) {
			z.pop()
			z.statBusy.Inc()
		} else {
			z.statStall.Inc()
		}
		return
	}
	st := q.Batch.State
	if !st.Depth.Enabled && !st.Stencil.Enabled {
		if z.forward(cycle, q) {
			z.pop()
			z.statBusy.Inc()
		} else {
			z.statStall.Inc()
		}
		return
	}

	key := z.layout.BlockAddr(q.X, q.Y)
	if !z.cache.Probe(key) {
		if !z.headLooked {
			z.cache.Lookup(cycle, key) // count the miss once
			z.headLooked = true
		}
		z.cache.RequestFill(cycle, key)
		z.statStall.Inc()
		return
	}
	if !z.headLooked {
		z.cache.Lookup(cycle, key) // count the hit
	}

	// Test and update each live fragment. With two-sided stencil
	// the back-facing state applies to back-facing triangles.
	stencil := st.Stencil
	if st.TwoSidedStencil && !q.Tri.Tri.FrontFacing {
		stencil = st.StencilBack
		stencil.Enabled = st.Stencil.Enabled
	}
	var buf [4]byte
	for l := 0; l < 4; l++ {
		if !q.Mask[l] {
			continue
		}
		px, py := q.X+l%2, q.Y+l/2
		off := z.layout.Offset(px, py)
		z.cache.Read(key, off, buf[:])
		stored := binary.LittleEndian.Uint32(buf[:])
		res := fragemu.ZStencilTest(st.Depth, stencil, q.Depth[l], stored)
		if res.Out != stored {
			binary.LittleEndian.PutUint32(buf[:], res.Out)
			z.cache.Write(key, off, buf[:])
		}
		if !res.Pass {
			q.Mask[l] = false
		}
		z.statFrags.Inc()
	}
	q.ZDone = true
	z.statQuads.Inc()
	z.statBusy.Inc()

	if !q.Alive() {
		q.Batch.QuadsRetired++
		q.Batch.ZCulledQuads++
		z.statCulled.Inc()
		z.pop()
		z.pool.putQuad(q)
		return
	}
	if z.forward(cycle, q) {
		z.pop()
	}
	// If forwarding stalled the quad is retried next cycle; the
	// depth/stencil update is idempotent because the head flag keeps
	// us from re-testing (ZDone short-circuits).
}

func (z *ZStencil) pop() {
	q := z.queue.Pop()
	q.srcFlow.Release(1)
	q.srcFlow = nil
	z.headLooked = false
}

// forward routes the tested quad downstream. It does not count stall
// cycles itself: a cycle is a stall only when the unit did no work at
// all, which the caller knows (a failed forward right after a test is
// still a busy cycle — busyCycles and stallCycles partition time).
func (z *ZStencil) forward(cycle int64, q *Quad) bool {
	out := z.lateOut
	if q.Batch.EarlyZ {
		out = z.earlyOut
	}
	if !out.CanSend(cycle, 1) {
		return false
	}
	out.Send(cycle, q)
	return true
}

// zHooks implements the Z cache's fill/evict behaviour: fast clear,
// compression and HZ feedback.
type zHooks struct {
	z   *ZStencil
	enc []byte // Encode scratch; Port.Write copies payloads, so it is reused per call
}

func (h *zHooks) blockIdx(key uint32) int {
	return int(key-h.z.layout.Base) / SurfaceBlockBytes
}

// FillPlan implements mem.Hooks.
func (h *zHooks) FillPlan(key uint32) mem.FillPlan {
	switch h.z.states[h.blockIdx(key)] {
	case zStateClear:
		return mem.FillPlan{Synth: true}
	case zStateHalf:
		return mem.FillPlan{FetchAddr: key, FetchBytes: fragemu.CompHalf.Bytes()}
	case zStateQuarter:
		return mem.FillPlan{FetchAddr: key, FetchBytes: fragemu.CompQuarter.Bytes()}
	default:
		return mem.FillPlan{FetchAddr: key, FetchBytes: SurfaceBlockBytes}
	}
}

// Synthesize implements mem.Hooks: fast-cleared lines materialize on
// chip in a few cycles without memory traffic.
func (h *zHooks) Synthesize(key uint32, line []byte) {
	for i := 0; i < len(line); i += 4 {
		binary.LittleEndian.PutUint32(line[i:], h.z.clearValue)
	}
}

// Decode implements mem.Hooks: decompress per the block state.
func (h *zHooks) Decode(key uint32, raw, line []byte) {
	var level fragemu.CompLevel
	switch h.z.states[h.blockIdx(key)] {
	case zStateHalf:
		level = fragemu.CompHalf
	case zStateQuarter:
		level = fragemu.CompQuarter
	default:
		copy(line, raw)
		return
	}
	var vals [fragemu.ZBlockElems]uint32
	fragemu.DecompressZBlock(level, raw, &vals)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(line[i*4:], v)
	}
}

// Encode implements mem.Hooks: compress the line, update the block
// state and refresh the Hierarchical Z reference.
func (h *zHooks) Encode(key uint32, line []byte) (uint32, []byte) {
	var vals [fragemu.ZBlockElems]uint32
	for i := range vals {
		vals[i] = binary.LittleEndian.Uint32(line[i*4:])
	}
	idx := h.blockIdx(key)
	if !h.z.cfg.ZCompression {
		maxD := uint32(0)
		for _, v := range vals {
			if d, _ := fragemu.UnpackDS(v); d > maxD {
				maxD = d
			}
		}
		if h.z.hz != nil {
			h.z.hz.Update(key, maxD)
		}
		h.z.states[idx] = zStateUncompressed
		return key, line
	}
	level, data, maxD := fragemu.CompressZBlock(&vals, h.enc)
	h.enc = data
	switch level {
	case fragemu.CompHalf:
		h.z.states[idx] = zStateHalf
	case fragemu.CompQuarter:
		h.z.states[idx] = zStateQuarter
	default:
		h.z.states[idx] = zStateUncompressed
	}
	if h.z.hz != nil {
		h.z.hz.Update(key, maxD)
	}
	return key, data
}
