package gpu

import (
	"context"
	"fmt"
	"sort"

	"attila/internal/chkpt"
	"attila/internal/mem"
)

// This file implements checkpoint and restore for the whole pipeline.
//
// The simulator never serializes in-flight work: a checkpoint is only
// taken at a globally quiesced cycle barrier — the command processor
// sits between commands, every signal has produced == consumed, every
// cache has no misses or outstanding transactions, and the memory
// controller is idle. At such a point the transient object graph
// (batches, quads, shader threads) is empty and the machine state is
// exactly the persistent registers this file captures: cycle and ID
// counters, statistics, the memory image, cache line arrays,
// framebuffer block state, and the various round-robin pointers.
// Quiesced barriers occur at least once per frame (a swap drains the
// pipeline), so the effective checkpoint cadence is
// max(interval, frame length).

// checkpointReady is implemented by boxes whose idle condition is not
// already implied by the global predicate (CP between commands, all
// signals drained, memory controller idle). Checked at the cycle
// barrier on the coordinating goroutine.
type checkpointReady interface {
	CheckpointReady() bool
}

// SafePoint reports that the command processor sits between commands
// with nothing in flight: no batch, no buffer upload, no pending
// clear, swap or render-target switch.
func (cp *CommandProcessor) SafePoint() bool {
	return cp.writing == nil && !cp.waitClear && !cp.waitSwap && !cp.rtt.active && cp.quiet()
}

// CheckpointReady implements checkpointReady.
func (cp *CommandProcessor) CheckpointReady() bool { return cp.SafePoint() }

// CheckpointReady implements checkpointReady.
func (s *Streamer) CheckpointReady() bool {
	return s.batch == nil && len(s.cmdQ) == 0 && s.group == nil && s.fetch.Quiesce()
}

// CheckpointReady implements checkpointReady.
func (z *ZStencil) CheckpointReady() bool {
	return z.queue.Len() == 0 && !z.clearPending && !z.flushPending && z.cache.Quiesce()
}

// CheckpointReady implements checkpointReady.
func (c *ColorWrite) CheckpointReady() bool {
	return c.queue.Len() == 0 && !c.clearPending && !c.flushPending && c.cache.Quiesce()
}

// CheckpointReady implements checkpointReady.
func (d *DAC) CheckpointReady() bool {
	return !d.active && d.port.Outstanding() == 0
}

// CheckpointReady implements checkpointReady. Unlike Quiesce (the
// barrier-published snapshot the CP polls cross-shard), this reads the
// live condition: it is only called at the barrier, on the
// coordinating goroutine.
func (t *TextureUnit) CheckpointReady() bool {
	return t.current == nil && t.queue.Len() == 0 && t.cache.Quiesce()
}

// CheckpointReady implements checkpointReady.
func (f *FragmentFIFO) CheckpointReady() bool {
	return f.windowUsed == 0 && f.vtxArrived.Len() == 0 && f.fragArrived.Len() == 0 && f.outbox.Len() == 0
}

// CheckpointReady implements checkpointReady.
func (s *ShaderUnit) CheckpointReady() bool {
	for i := range s.threads {
		if s.threads[i].state != threadFree {
			return false
		}
	}
	return true
}

// CheckpointReady implements checkpointReady.
func (x *TexCrossbar) CheckpointReady() bool {
	return x.queue.Len() == 0 && x.replies.Len() == 0
}

// ---- Per-box persistent state ----

// SnapshotName implements chkpt.Snapshotter.
func (cp *CommandProcessor) SnapshotName() string { return "CommandProcessor" }

// SnapshotState implements chkpt.Snapshotter: the program counter into
// the command stream and the batch ID source. Everything else is
// empty at a safe point.
func (cp *CommandProcessor) SnapshotState(e *chkpt.Encoder) {
	e.U32(uint32(cp.pc))
	e.U32(uint32(cp.nextBatchID))
}

// RestoreState implements chkpt.Snapshotter. The caller must have
// loaded the same command stream (SetCommands) first; pc indexes it.
func (cp *CommandProcessor) RestoreState(d *chkpt.Decoder) error {
	pc := int(d.U32())
	next := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if pc < 0 || pc > len(cp.cmds) {
		return fmt.Errorf("%w: command pc %d outside the %d-command stream", chkpt.ErrMismatch, pc, len(cp.cmds))
	}
	cp.pc = pc
	cp.nextBatchID = next
	cp.finished = false
	return nil
}

// SnapshotName implements chkpt.Snapshotter.
func (f *Framebuffer) SnapshotName() string { return "Framebuffer" }

// SnapshotState implements chkpt.Snapshotter: which color buffer is
// the draw target plus any render-to-texture override (a checkpoint
// may land between the batches of an offscreen pass).
func (f *Framebuffer) SnapshotState(e *chkpt.Encoder) {
	e.U8(uint8(f.draw))
	if f.override != nil {
		e.Bool(true)
		e.U32(f.override.Base)
		e.U32(uint32(f.override.W))
		e.U32(uint32(f.override.H))
	} else {
		e.Bool(false)
	}
}

// RestoreState implements chkpt.Snapshotter.
func (f *Framebuffer) RestoreState(d *chkpt.Decoder) error {
	draw := int(d.U8())
	var override *SurfaceLayout
	if d.Bool() {
		base := d.U32()
		w := int(d.U32())
		h := int(d.U32())
		l := NewSurfaceLayout(base, w, h)
		override = &l
	}
	if err := d.Err(); err != nil {
		return err
	}
	if draw != 0 && draw != 1 {
		return fmt.Errorf("%w: draw buffer index %d", chkpt.ErrCorrupt, draw)
	}
	f.draw = draw
	f.override = override
	return nil
}

// SnapshotName implements chkpt.Snapshotter.
func (d *DAC) SnapshotName() string { return "DAC" }

// SnapshotState implements chkpt.Snapshotter: the refresh scan cursor
// and the frames dumped so far (so a restored run's frame outputs are
// identical to an uninterrupted one's).
func (d *DAC) SnapshotState(e *chkpt.Encoder) {
	e.U32(uint32(d.refreshAddr))
	e.U32(uint32(len(d.frames)))
	for _, f := range d.frames {
		e.U32(uint32(f.W))
		e.U32(uint32(f.H))
		e.Blob(f.Pix)
	}
}

// RestoreState implements chkpt.Snapshotter.
func (d *DAC) RestoreState(dec *chkpt.Decoder) error {
	refreshAddr := int(dec.U32())
	n := int(dec.U32())
	if err := dec.Err(); err != nil {
		return err
	}
	frames := make([]*Frame, 0, minInt(n, 1024))
	for i := 0; i < n; i++ {
		w := int(dec.U32())
		h := int(dec.U32())
		pix := dec.Blob()
		if err := dec.Err(); err != nil {
			return err
		}
		if len(pix) != w*h*4 {
			return fmt.Errorf("%w: frame %d is %dx%d but has %d pixel bytes", chkpt.ErrCorrupt, i, w, h, len(pix))
		}
		frames = append(frames, &Frame{W: w, H: h, Pix: pix})
	}
	d.refreshAddr = refreshAddr
	d.frames = frames
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SnapshotName implements chkpt.Snapshotter.
func (s *Streamer) SnapshotName() string { return "Streamer" }

// SnapshotState implements chkpt.Snapshotter: only the attribute
// fetch cache persists across batches.
func (s *Streamer) SnapshotState(e *chkpt.Encoder) { s.fetch.SnapshotTo(e) }

// RestoreState implements chkpt.Snapshotter.
func (s *Streamer) RestoreState(d *chkpt.Decoder) error { return s.fetch.RestoreFrom(d) }

// SnapshotName implements chkpt.Snapshotter.
func (z *ZStencil) SnapshotName() string { return z.BoxName() }

// SnapshotState implements chkpt.Snapshotter: the per-block
// compression/clear states, the clear value and the Z cache.
func (z *ZStencil) SnapshotState(e *chkpt.Encoder) {
	e.U32(uint32(len(z.states)))
	for _, st := range z.states {
		e.U8(uint8(st))
	}
	e.U32(z.clearValue)
	z.cache.SnapshotTo(e)
}

// RestoreState implements chkpt.Snapshotter.
func (z *ZStencil) RestoreState(d *chkpt.Decoder) error {
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(z.states) {
		return fmt.Errorf("%w: %s has %d block states in snapshot, %d in machine", chkpt.ErrMismatch, z.BoxName(), n, len(z.states))
	}
	for i := 0; i < n; i++ {
		v := d.U8()
		if v > uint8(zStateQuarter) {
			return fmt.Errorf("%w: %s block %d has state %d", chkpt.ErrCorrupt, z.BoxName(), i, v)
		}
		z.states[i] = zBlockState(v)
	}
	z.clearValue = d.U32()
	if err := d.Err(); err != nil {
		return err
	}
	return z.cache.RestoreFrom(d)
}

// SnapshotName implements chkpt.Snapshotter.
func (c *ColorWrite) SnapshotName() string { return c.BoxName() }

// SnapshotState implements chkpt.Snapshotter: the fast-clear block
// state per color buffer (maps serialized in key order for
// determinism), the current clear color and the color cache.
func (c *ColorWrite) SnapshotState(e *chkpt.Encoder) {
	bases := make([]uint32, 0, len(c.clearFlags))
	for base := range c.clearFlags {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	e.U32(uint32(len(bases)))
	for _, base := range bases {
		e.U32(base)
		flags := c.clearFlags[base]
		e.U32(uint32(len(flags)))
		for _, f := range flags {
			e.Bool(f)
		}
		val := c.clearVals[base]
		e.Blob(val[:])
	}
	e.Blob(c.clearValue[:])
	c.cache.SnapshotTo(e)
}

// RestoreState implements chkpt.Snapshotter.
func (c *ColorWrite) RestoreState(d *chkpt.Decoder) error {
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	flags := make(map[uint32][]bool, n)
	vals := make(map[uint32][4]byte, n)
	for i := 0; i < n; i++ {
		base := d.U32()
		nf := int(d.U32())
		if err := d.Err(); err != nil {
			return err
		}
		if nf > 1<<24 {
			return fmt.Errorf("%w: %s clear state for %#x has %d blocks", chkpt.ErrCorrupt, c.BoxName(), base, nf)
		}
		fl := make([]bool, nf)
		for j := range fl {
			fl[j] = d.Bool()
		}
		vb := d.Blob()
		if err := d.Err(); err != nil {
			return err
		}
		if len(vb) != 4 {
			return fmt.Errorf("%w: %s clear value has %d bytes", chkpt.ErrCorrupt, c.BoxName(), len(vb))
		}
		flags[base] = fl
		var v [4]byte
		copy(v[:], vb)
		vals[base] = v
	}
	cv := d.Blob()
	if err := d.Err(); err != nil {
		return err
	}
	if len(cv) != 4 {
		return fmt.Errorf("%w: %s current clear value has %d bytes", chkpt.ErrCorrupt, c.BoxName(), len(cv))
	}
	c.clearFlags = flags
	c.clearVals = vals
	copy(c.clearValue[:], cv)
	return c.cache.RestoreFrom(d)
}

// SnapshotName implements chkpt.Snapshotter.
func (h *HierarchicalZ) SnapshotName() string { return "HierarchicalZ" }

// SnapshotState implements chkpt.Snapshotter: the per-block maximum
// depth references.
func (h *HierarchicalZ) SnapshotState(e *chkpt.Encoder) {
	e.U32(uint32(len(h.maxZ)))
	for _, v := range h.maxZ {
		e.U32(v)
	}
}

// RestoreState implements chkpt.Snapshotter.
func (h *HierarchicalZ) RestoreState(d *chkpt.Decoder) error {
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(h.maxZ) {
		return fmt.Errorf("%w: HZ has %d blocks in snapshot, %d in machine", chkpt.ErrMismatch, n, len(h.maxZ))
	}
	for i := 0; i < n; i++ {
		h.maxZ[i] = d.U32()
	}
	return d.Err()
}

// SnapshotName implements chkpt.Snapshotter.
func (x *TexCrossbar) SnapshotName() string { return "TexCrossbar" }

// SnapshotState implements chkpt.Snapshotter: the round-robin
// distribution pointer.
func (x *TexCrossbar) SnapshotState(e *chkpt.Encoder) { e.U32(uint32(x.rrTU)) }

// RestoreState implements chkpt.Snapshotter.
func (x *TexCrossbar) RestoreState(d *chkpt.Decoder) error {
	v := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if v < 0 {
		return fmt.Errorf("%w: crossbar pointer %d", chkpt.ErrCorrupt, v)
	}
	x.rrTU = v
	return nil
}

// SnapshotName implements chkpt.Snapshotter.
func (f *FragmentFIFO) SnapshotName() string { return "FragmentFIFO" }

// SnapshotState implements chkpt.Snapshotter: the shader dispatch
// round-robin pointer.
func (f *FragmentFIFO) SnapshotState(e *chkpt.Encoder) { e.U32(uint32(f.rr)) }

// RestoreState implements chkpt.Snapshotter.
func (f *FragmentFIFO) RestoreState(d *chkpt.Decoder) error {
	v := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if v < 0 || v >= len(f.shaderIn) {
		return fmt.Errorf("%w: dispatch pointer %d outside %d shaders", chkpt.ErrMismatch, v, len(f.shaderIn))
	}
	f.rr = v
	return nil
}

// SnapshotName implements chkpt.Snapshotter.
func (s *ShaderUnit) SnapshotName() string { return s.BoxName() }

// SnapshotState implements chkpt.Snapshotter: the issue round-robin
// pointer and the arrival sequence source.
func (s *ShaderUnit) SnapshotState(e *chkpt.Encoder) {
	e.U32(uint32(s.rr))
	e.I64(s.seq)
}

// RestoreState implements chkpt.Snapshotter.
func (s *ShaderUnit) RestoreState(d *chkpt.Decoder) error {
	rr := int(d.U32())
	seq := d.I64()
	if err := d.Err(); err != nil {
		return err
	}
	if rr < 0 || rr >= len(s.threads) {
		return fmt.Errorf("%w: %s thread pointer %d outside %d threads", chkpt.ErrMismatch, s.BoxName(), rr, len(s.threads))
	}
	s.rr = rr
	s.seq = seq
	return nil
}

// SnapshotName implements chkpt.Snapshotter.
func (t *TextureUnit) SnapshotName() string { return t.BoxName() }

// SnapshotState implements chkpt.Snapshotter: the texture cache holds
// decoded texels that persist across requests. (The fill-format map is
// not state: it is rewritten immediately before every fill request.)
func (t *TextureUnit) SnapshotState(e *chkpt.Encoder) { t.cache.SnapshotTo(e) }

// RestoreState implements chkpt.Snapshotter.
func (t *TextureUnit) RestoreState(d *chkpt.Decoder) error { return t.cache.RestoreFrom(d) }

// ---- Pipeline-level API ----

// Quiesced reports whether the machine is at a checkpointable safe
// point: the command processor between commands, every signal drained,
// the memory controller idle and every box's private idle condition
// met. Called at the cycle barrier on the coordinating goroutine.
func (p *Pipeline) Quiesced() bool {
	if !p.Sim.Binder.Idle() || p.mc.Pending() {
		return false
	}
	for _, b := range p.Sim.Boxes() {
		if q, ok := b.(checkpointReady); ok && !q.CheckpointReady() {
			return false
		}
	}
	return true
}

// Snapshotters returns the parts of the machine serialized into a
// checkpoint, in a fixed order: framework state (cycle, stats,
// signals), the memory system, then every box that carries persistent
// state, in registration order.
func (p *Pipeline) Snapshotters() []chkpt.Snapshotter {
	parts := []chkpt.Snapshotter{
		p.Sim, p.Sim.Stats, p.Sim.Binder,
		p.Mem, p.alloc, p.mc, p.FB,
	}
	// Some of the explicit parts (the memory controller) are also
	// registered boxes; skip anything already captured.
	seen := make(map[string]bool, len(parts))
	for _, s := range parts {
		seen[s.SnapshotName()] = true
	}
	for _, b := range p.Sim.Boxes() {
		if s, ok := b.(chkpt.Snapshotter); ok && !seen[s.SnapshotName()] {
			seen[s.SnapshotName()] = true
			parts = append(parts, s)
		}
	}
	return parts
}

// ConfigFingerprint identifies the machine configuration a checkpoint
// belongs to. Host-only knobs (worker count, watchdog window) are
// excluded: they do not affect simulated state, so a checkpoint from a
// serial run restores into a parallel one and vice versa.
func (p *Pipeline) ConfigFingerprint() string {
	c := *p.Cfg
	c.Workers = 0
	c.WatchdogWindow = 0
	return fmt.Sprintf("%dx%d %+v", p.w, p.h, c)
}

// Checkpoint captures the full machine state. It fails unless the
// pipeline is quiesced (see Quiesced); callers normally use
// EnableCheckpoints, which only fires at quiesced barriers.
func (p *Pipeline) Checkpoint(workload string) (*chkpt.Snapshot, error) {
	if !p.Quiesced() {
		return nil, fmt.Errorf("gpu: checkpoint at cycle %d: pipeline not quiesced", p.Sim.Cycle())
	}
	meta := chkpt.Meta{
		Cycle:    p.Sim.Cycle(),
		Config:   p.ConfigFingerprint(),
		Workload: workload,
	}
	return chkpt.Capture(meta, p.Snapshotters()), nil
}

// EnableCheckpoints installs a periodic checkpoint engine: at the
// first quiesced cycle barrier at least interval cycles after the
// previous checkpoint, the machine state is written atomically to
// path. extra snapshotters (e.g. the metrics bus) are captured along
// with the machine. Returns the engine for progress/error inspection.
func (p *Pipeline) EnableCheckpoints(path, workload string, interval int64, extra ...chkpt.Snapshotter) *chkpt.Engine {
	eng := &chkpt.Engine{
		Interval:  interval,
		Path:      path,
		Quiesced:  p.Quiesced,
		SafeCycle: p.Sim.FullSync,
		Capture: func() (*chkpt.Snapshot, error) {
			meta := chkpt.Meta{
				Cycle:    p.Sim.Cycle(),
				Config:   p.ConfigFingerprint(),
				Workload: workload,
			}
			return chkpt.Capture(meta, append(p.Snapshotters(), extra...)), nil
		},
	}
	p.Sim.OnEndCycle(eng.EndCycle)
	return eng
}

// RestoreCheckpoint loads a snapshot into a freshly built pipeline of
// the same configuration. cmds must be the same command stream the
// checkpointed run used (the snapshot stores an index into it). extra
// snapshotters are restored too when their sections exist; sections
// with no matching snapshotter (e.g. a metrics bus the restored run
// does not have) are ignored. Continue with ResumeContext — not Run or
// RunContext, which would reset the command stream position.
func (p *Pipeline) RestoreCheckpoint(snap *chkpt.Snapshot, cmds []Command, extra ...chkpt.Snapshotter) error {
	if cfg := p.ConfigFingerprint(); snap.Meta.Config != cfg {
		return fmt.Errorf("%w: checkpoint is for configuration %q, machine is %q", chkpt.ErrMismatch, snap.Meta.Config, cfg)
	}
	p.CP.SetCommands(cmds)
	return chkpt.Restore(snap, append(p.Snapshotters(), extra...), true)
}

// ResumeContext continues a restored run: the cycle budget counts from
// the restored cycle, and the command stream position set by
// RestoreCheckpoint is preserved (unlike Run/RunContext, no
// SetCommands reset happens here).
func (p *Pipeline) ResumeContext(ctx context.Context, maxCycles int64) error {
	return p.Sim.RunContext(ctx, maxCycles)
}

// MemController exposes the memory controller (fault injection,
// statistics).
func (p *Pipeline) MemController() *mem.Controller { return p.mc }
