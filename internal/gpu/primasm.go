package gpu

import (
	"attila/internal/core"
)

// PrimAssembly stores incoming shaded vertices and assembles them
// into triangles for the five supported OpenGL primitive modes
// (paper §2.2): triangle lists, strips and fans, quad lists and
// strips.
type PrimAssembly struct {
	core.BoxBase
	ids *core.IDSource

	vtxIn  *Flow
	triOut *Flow

	queue   core.FIFO[*ShadedVertex] // input queue (Table 1: 8 entries)
	window  []*ShadedVertex // primitive assembly window
	count   int             // vertices consumed for the current batch
	pending *TriWork        // second triangle of a completed quad

	statTris core.Shadow
	statBusy core.Shadow
}

// NewPrimAssembly builds the box.
func NewPrimAssembly(sim *core.Simulator, vtxIn, triOut *Flow) *PrimAssembly {
	p := &PrimAssembly{ids: &sim.IDs, vtxIn: vtxIn, triOut: triOut}
	p.Init("PrimAssembly")
	sim.Stats.ShadowCounter(&p.statTris, "PrimAssembly.triangles")
	sim.Stats.ShadowCounter(&p.statBusy, "PrimAssembly.busyCycles")
	sim.Register(p)
	return p
}

// Clock implements core.Box.
func (p *PrimAssembly) Clock(cycle int64) {
	for _, obj := range p.vtxIn.Recv(cycle) {
		p.queue.Push(obj.(*ShadedVertex))
	}
	// A quad's fourth vertex completes two triangles; the second one
	// goes out the cycle after (one triangle per cycle, Table 1).
	if p.pending != nil {
		if !p.triOut.CanSend(cycle, 1) {
			return
		}
		tri := p.pending
		p.pending = nil
		p.triOut.Send(cycle, tri)
		tri.Batch.TrisIn++
		p.statTris.Inc()
		p.statBusy.Inc()
		p.finishBatch(tri.Batch)
		return
	}
	if p.queue.Len() == 0 {
		return
	}
	// One vertex consumed, at most one triangle emitted per cycle
	// (Table 1). A vertex can complete a triangle only when there is
	// room to send it.
	v := p.queue.Peek()
	tri, second, emits := p.assemble(v)
	if emits && !p.triOut.CanSend(cycle, 1) {
		return
	}
	p.queue.Pop()
	p.vtxIn.Release(1)
	p.commit(v)
	if emits {
		p.triOut.Send(cycle, tri)
		v.Batch.TrisIn++
		p.statTris.Inc()
		p.pending = second
	}
	p.statBusy.Inc()
	p.finishBatch(v.Batch)
}

// finishBatch marks the batch through primitive assembly once every
// vertex is consumed and no triangle is still waiting to go out.
func (p *PrimAssembly) finishBatch(b *BatchState) {
	if p.pending == nil && p.count == b.State.Count {
		b.PADone = true
		p.window = p.window[:0]
		p.count = 0
	}
}

// assemble inspects (without consuming) what accepting v would emit:
// the triangle to send now, and for quads, the second triangle held
// for the next cycle.
func (p *PrimAssembly) assemble(v *ShadedVertex) (*TriWork, *TriWork, bool) {
	mode := v.Batch.State.Primitive
	w := p.window
	n := p.count // vertices consumed before v
	mk := func(a, b, c *ShadedVertex) *TriWork {
		return &TriWork{
			DynObject: core.DynObject{ID: p.ids.Next(), Parent: v.ID, Tag: "tri"},
			Batch:     v.Batch,
			V:         [3]*ShadedVertex{a, b, c},
		}
	}
	switch mode {
	case Triangles:
		if n%3 == 2 {
			return mk(w[0], w[1], v), nil, true
		}
	case TriangleStrip:
		if n >= 2 {
			if n%2 == 0 {
				return mk(w[0], w[1], v), nil, true
			}
			return mk(w[1], w[0], v), nil, true
		}
	case TriangleFan:
		if n >= 2 {
			return mk(w[0], w[1], v), nil, true
		}
	case Quads:
		// Quad (0,1,2,3) becomes triangles (0,1,2) and (0,2,3),
		// both emitted only once the quad completes (an incomplete
		// trailing quad is discarded, per the OpenGL rule).
		if n%4 == 3 {
			return mk(w[0], w[1], w[2]), mk(w[0], w[2], v), true
		}
	case QuadStrip:
		// Quad i has perimeter (2i, 2i+1, 2i+3, 2i+2), split along
		// the 2i+1..2i+2 diagonal so each arriving vertex from the
		// third on completes exactly one triangle.
		if n >= 2 && n%2 == 0 {
			return mk(w[0], w[1], v), nil, true // (2i, 2i+1, 2i+2)
		}
		if n >= 3 {
			return mk(w[1], v, w[2]), nil, true // (2i+1, 2i+3, 2i+2)
		}
	}
	return nil, nil, false
}

// commit updates the assembly window after consuming v.
func (p *PrimAssembly) commit(v *ShadedVertex) {
	mode := v.Batch.State.Primitive
	n := p.count
	switch mode {
	case Triangles:
		if n%3 == 2 {
			p.window = p.window[:0]
		} else {
			p.window = append(p.window, v)
		}
	case TriangleStrip:
		if n < 2 {
			p.window = append(p.window, v)
		} else {
			p.window = []*ShadedVertex{p.window[1], v}
		}
	case TriangleFan:
		if n == 0 {
			p.window = append(p.window, v)
		} else if n == 1 {
			p.window = append(p.window, v)
		} else {
			p.window = []*ShadedVertex{p.window[0], v}
		}
	case Quads:
		switch n % 4 {
		case 3:
			p.window = p.window[:0]
		default:
			p.window = append(p.window, v)
		}
	case QuadStrip:
		if n < 2 || n%2 == 0 {
			p.window = append(p.window, v) // [2i, 2i+1] or [2i, 2i+1, 2i+2]
		} else {
			p.window = []*ShadedVertex{p.window[2], v} // [2i+2, 2i+3]
		}
	}
	p.count = n + 1
}
