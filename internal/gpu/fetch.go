package gpu

import (
	"encoding/binary"
	"math"

	"attila/internal/mem"
	"attila/internal/vmath"
)

// FetchIndex reads index number seq of a batch from GPU memory (pure
// data path, no timing); sequential draws synthesize indices.
func FetchIndex(gm *mem.GPUMemory, st *DrawState, seq int) uint32 {
	if st.IndexAddr == 0 {
		return uint32(st.First + seq)
	}
	addr := st.IndexAddr + uint32((st.First+seq)*st.IndexSize)
	var buf [4]byte
	gm.ReadBytes(addr, buf[:st.IndexSize])
	if st.IndexSize == 2 {
		return uint32(binary.LittleEndian.Uint16(buf[:2]))
	}
	return binary.LittleEndian.Uint32(buf[:4])
}

// FetchAttr converts one vertex attribute to the internal 4-float
// format: enabled arrays read Size float32 components with the rest
// defaulting to (0, 0, 0, 1); disabled slots return the constant.
// Both the Streamer box and the reference renderer use this exact
// conversion.
func FetchAttr(gm *mem.GPUMemory, st *DrawState, slot int, idx uint32) vmath.Vec4 {
	a := &st.Attribs[slot]
	if !a.Enabled {
		return a.Const
	}
	base := a.Addr + idx*a.Stride
	out := vmath.Vec4{0, 0, 0, 1}
	var buf [16]byte
	gm.ReadBytes(base, buf[:a.Size*4])
	for c := 0; c < a.Size; c++ {
		out[c] = math.Float32frombits(binary.LittleEndian.Uint32(buf[c*4:]))
	}
	return out
}

// TriangleIndices expands a primitive stream into triangles: for each
// output triangle, the three vertex ordinals (positions in the batch
// vertex sequence) in rasterization winding order. The PrimAssembly
// box produces exactly this sequence incrementally; a unit test keeps
// the two in lockstep.
func TriangleIndices(mode PrimMode, count int) [][3]int {
	var out [][3]int
	switch mode {
	case Triangles:
		for i := 2; i < count; i += 3 {
			out = append(out, [3]int{i - 2, i - 1, i})
		}
	case TriangleStrip:
		for i := 2; i < count; i++ {
			if i%2 == 0 {
				out = append(out, [3]int{i - 2, i - 1, i})
			} else {
				out = append(out, [3]int{i - 1, i - 2, i})
			}
		}
	case TriangleFan:
		for i := 2; i < count; i++ {
			out = append(out, [3]int{0, i - 1, i})
		}
	case Quads:
		for i := 3; i < count; i += 4 {
			out = append(out, [3]int{i - 3, i - 2, i - 1})
			out = append(out, [3]int{i - 3, i - 1, i})
		}
	case QuadStrip:
		for i := 2; i < count; i++ {
			if i%2 == 0 {
				out = append(out, [3]int{i - 2, i - 1, i})
			} else {
				out = append(out, [3]int{i - 2, i, i - 1})
			}
		}
	}
	return out
}
