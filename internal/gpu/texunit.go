package gpu

import (
	"attila/internal/core"
	"attila/internal/emu/shaderemu"
	"attila/internal/emu/texemu"
	"attila/internal/mem"
)

// TexCrossbar routes texture requests from shader units to texture
// units (round-robin — the paper notes its distribution was not
// specially optimized, which is what spreads overlapping quads over
// TUs and drives the Figure 8 hit-rate effect) and routes the
// filtered results back to the requesting shader.
type TexCrossbar struct {
	core.BoxBase
	fromShader []*Flow // one per shader
	toTU       []*Flow
	fromTU     []*Flow
	toShader   []*Flow
	rrTU       int
	queue      core.FIFO[*TexReqMsg]
	replies    core.FIFO[*TexRepMsg]
}

// NewTexCrossbar builds the box.
func NewTexCrossbar(sim *core.Simulator, fromShader, toTU, fromTU, toShader []*Flow) *TexCrossbar {
	x := &TexCrossbar{fromShader: fromShader, toTU: toTU, fromTU: fromTU, toShader: toShader}
	x.Init("TexCrossbar")
	sim.Register(x)
	return x
}

// Clock implements core.Box.
func (x *TexCrossbar) Clock(cycle int64) {
	for _, in := range x.fromShader {
		if in == nil {
			continue
		}
		for _, obj := range in.Recv(cycle) {
			x.queue.Push(obj.(*TexReqMsg))
			in.Release(1)
		}
	}
	for _, in := range x.fromTU {
		for _, obj := range in.Recv(cycle) {
			x.replies.Push(obj.(*TexRepMsg))
			in.Release(1)
		}
	}
	// Distribute requests round-robin over TUs.
	for x.queue.Len() > 0 {
		tu := x.rrTU % len(x.toTU)
		if !x.toTU[tu].CanSend(cycle, 1) {
			break
		}
		x.toTU[tu].Send(cycle, x.queue.Pop())
		x.rrTU++
	}
	// Return replies to their shaders.
	for x.replies.Len() > 0 {
		rep := x.replies.Peek()
		out := x.toShader[rep.Shader]
		if !out.CanSend(cycle, 1) {
			break
		}
		out.Send(cycle, x.replies.Pop())
	}
}

// texWork is one in-flight quad sample on a texture unit. Each unit
// owns a single instance that is reset per request, keeping the plan
// and texel-value backing arrays across requests.
type texWork struct {
	msg    *TexReqMsg
	plans  [shaderLanes]texemu.SamplePlan
	vals   [shaderLanes][]texemu.RGBA // fetched texels per lane
	lane   int                        // next texel cursor
	texel  int
	looked bool // current texel's cache access already counted
}

// TextureUnit processes texture requests for whole fragment quads
// (paper §2.2): it computes the mipmap level of detail from the
// quad's coordinate derivatives, plans bilinear/trilinear/anisotropic
// samples, fetches texels through a small texture cache (decompressed
// on fill) and filters them. Throughput is one bilinear sample per
// cycle, one trilinear every two cycles.
type TextureUnit struct {
	core.BoxBase
	cfg   *Config
	idx   int
	cache *mem.Cache
	hooks *texHooks

	reqIn  *Flow
	repOut *Flow

	queue   core.FIFO[*TexReqMsg]
	current *texWork
	work    texWork // the single in-flight request's reusable scratch
	// freeReps holds recycled reply messages: a consumed TexRepMsg
	// rides back from its shader on the next TexReqMsg's spent field
	// (any unit may receive it — the free lists are per-box and the
	// handoff is barrier-ordered through the signals).
	freeReps []*TexRepMsg
	// quiesced is the barrier-published snapshot of the idle
	// condition, read by the command processor, which may be clocked
	// on a different worker shard.
	quiesced bool

	statReqs     core.Shadow
	statTexels   core.Shadow
	statBilinear core.Shadow
	statBusy     core.Shadow
	statStall    core.Shadow
}

// texHooks decode compressed texture tiles into the cache on fill
// (the cache stores decoded RGBA8 texels; compressed formats fetch
// fewer bytes from memory).
type texHooks struct {
	fmtOf map[uint32]texemu.Format
}

// FillPlan implements mem.Hooks.
func (h *texHooks) FillPlan(key uint32) mem.FillPlan {
	f := h.fmtOf[key]
	return mem.FillPlan{FetchAddr: key, FetchBytes: f.TileBytes()}
}

// Synthesize implements mem.Hooks.
func (h *texHooks) Synthesize(key uint32, line []byte) {
	panic("gpu: texture lines are never synthesized")
}

// Decode implements mem.Hooks.
func (h *texHooks) Decode(key uint32, raw, line []byte) {
	var tile [texemu.TileTexels * texemu.TileTexels]texemu.RGBA
	texemu.DecodeTile(h.fmtOf[key], raw, &tile)
	for i, c := range tile {
		copy(line[i*4:], c[:])
	}
}

// Encode implements mem.Hooks (texture caches are read only).
func (h *texHooks) Encode(key uint32, line []byte) (uint32, []byte) {
	panic("gpu: texture cache lines are never written back")
}

// NewTextureUnit builds texture unit idx.
func NewTextureUnit(sim *core.Simulator, cfg *Config, idx int, reqIn, repOut *Flow) *TextureUnit {
	t := &TextureUnit{cfg: cfg, idx: idx, reqIn: reqIn, repOut: repOut, quiesced: true}
	t.Init(nameIdx("TextureUnit", idx))
	// The quiesce flag is published per cycle and read by the command
	// processor across the shard boundary: a latency-1 dependency
	// outside the signal model, so it anchors locally and pins the
	// skew batch to 1 between this unit and the CP's shard.
	sim.OnLocalCycle(t.publishQuiesce, t.BoxName())
	sim.ConstrainSkew(t.BoxName(), "CommandProcessor", 1)
	t.hooks = &texHooks{fmtOf: make(map[uint32]texemu.Format)}
	cc := mem.CacheConfig{
		Name: nameIdx("TexCache", idx), Sets: cfg.TexCacheSets, Assoc: cfg.TexCacheAssoc,
		LineBytes: texemu.TileTexels * texemu.TileTexels * 4, MissQ: 8, PortLimit: 8,
	}
	t.cache = mem.NewCache(sim, cc, t.hooks)
	sim.Stats.ShadowCounter(&t.statReqs, t.BoxName()+".requests")
	sim.Stats.ShadowCounter(&t.statTexels, t.BoxName()+".texels")
	sim.Stats.ShadowCounter(&t.statBilinear, t.BoxName()+".bilinearSamples")
	sim.Stats.ShadowCounter(&t.statBusy, t.BoxName()+".busyCycles")
	sim.Stats.ShadowCounter(&t.statStall, t.BoxName()+".missStallCycles")
	sim.Register(t)
	return t
}

// Cache exposes the texture cache for statistics (Figure 8).
func (t *TextureUnit) Cache() *mem.Cache { return t.cache }

// Quiesce reports whether the unit had no request in progress and no
// cache traffic in flight as of the last cycle barrier (render-target
// switches invalidate the cache at such a point). The snapshot is
// published at the barrier so the command processor may poll it from
// another worker shard; a true snapshot stays true while the pipeline
// is drained, which is the only state in which it is consulted.
func (t *TextureUnit) Quiesce() bool { return t.quiesced }

// publishQuiesce snapshots the live idle condition at the cycle
// barrier (core.EndCycleFunc).
func (t *TextureUnit) publishQuiesce(cycle int64) {
	t.quiesced = t.current == nil && t.queue.Len() == 0 && t.cache.Quiesce()
}

// Clock implements core.Box.
func (t *TextureUnit) Clock(cycle int64) {
	t.cache.Clock(cycle)
	for _, obj := range t.reqIn.Recv(cycle) {
		msg := obj.(*TexReqMsg)
		if sp := msg.spent; sp != nil {
			msg.spent = nil
			t.freeReps = append(t.freeReps, sp)
		}
		t.queue.Push(msg)
	}
	if t.current == nil {
		if t.queue.Len() == 0 {
			return
		}
		t.current = t.startWork(t.queue.Pop())
		t.reqIn.Release(1)
		t.statReqs.Inc()
	}
	t.statBusy.Inc()

	w := t.current
	// Fetch up to TexelsPerCycle texels through the cache ports (4
	// per cycle = one bilinear sample, matching Table 2's texture
	// cache port configuration).
	fetched := 0
	for fetched < t.cfg.TexelsPerCycle {
		ref, ok := w.peekTexel()
		if !ok {
			break
		}
		tex := w.msg.Texture
		key, texelIdx := tex.TileAddr(ref.Face, ref.Level, ref.Slice, ref.X, ref.Y)
		if !t.cache.Probe(key) {
			t.hooks.fmtOf[key] = tex.Format
			if !w.looked {
				t.cache.Lookup(cycle, key) // count the miss once
				w.looked = true
			}
			t.cache.RequestFill(cycle, key)
			t.statStall.Inc()
			return
		}
		if !w.looked {
			t.cache.Lookup(cycle, key) // count the hit
		}
		var buf [4]byte
		t.cache.Read(key, texelIdx*4, buf[:])
		w.vals[w.lane] = append(w.vals[w.lane], texemu.RGBA(buf))
		w.advanceTexel()
		fetched++
		t.statTexels.Inc()
	}

	if !w.done() {
		return
	}
	// All texels present: filter and reply (fixed filter latency).
	if !t.repOut.CanSend(cycle, 1) {
		return
	}
	rep := t.getRep()
	rep.DynObject = core.DynObject{ID: w.msg.ID, Parent: w.msg.Parent, Tag: "texrep"}
	rep.Shader, rep.Slot = w.msg.Shader, w.msg.Slot
	for l := 0; l < shaderLanes; l++ {
		i := 0
		rep.Result[l] = texemu.FilterPlan(w.plans[l], func(texemu.TexelRef) texemu.RGBA {
			v := w.vals[l][i]
			i++
			return v
		})
	}
	// The consumed request rides the reply back to its issuing shader.
	rep.spent = w.msg
	w.msg = nil
	lat := t.cfg.TexFilterLat
	if lat < 1 {
		lat = 1
	}
	t.repOut.SendLat(cycle, rep, lat)
	t.current = nil
}

// getRep pops a recycled reply message (fully zeroed) or allocates one.
func (t *TextureUnit) getRep() *TexRepMsg {
	if n := len(t.freeReps); n > 0 {
		r := t.freeReps[n-1]
		t.freeReps = t.freeReps[:n-1]
		*r = TexRepMsg{}
		return r
	}
	return &TexRepMsg{}
}

// startWork computes the LOD and sample plans for a quad request into
// the unit's reusable scratch.
func (t *TextureUnit) startWork(msg *TexReqMsg) *texWork {
	w := &t.work
	w.msg = msg
	w.lane, w.texel, w.looked = 0, 0, false
	tex := msg.Texture
	mode := texemu.ModeNormal
	lodArg := float32(0)
	switch msg.Req.Mode {
	case shaderemu.TexModeBias:
		mode = texemu.ModeBias
		lodArg = msg.Req.Coord[0][3]
	case shaderemu.TexModeProj:
		mode = texemu.ModeProj
	case shaderemu.TexModeLod:
		mode = texemu.ModeLod
		lodArg = msg.Req.Coord[0][3]
	}
	info := tex.QuadLOD(msg.Req.Coord, mode, lodArg)
	bilinear := 0
	for l := 0; l < shaderLanes; l++ {
		c := texemu.PrepareCoord(msg.Req.Coord[l], mode)
		tex.PlanInto(&w.plans[l], c, info)
		bilinear += w.plans[l].BilinearSamples
		w.vals[l] = w.vals[l][:0]
	}
	t.statBilinear.Add(float64(bilinear))
	return w
}

func (w *texWork) peekTexel() (texemu.TexelRef, bool) {
	for w.lane < shaderLanes {
		if w.texel < len(w.plans[w.lane].Texels) {
			return w.plans[w.lane].Texels[w.texel], true
		}
		w.lane++
		w.texel = 0
	}
	return texemu.TexelRef{}, false
}

func (w *texWork) advanceTexel() {
	w.texel++
	w.looked = false
}

func (w *texWork) done() bool {
	_, more := w.peekTexel()
	return !more
}
