package gpu

import (
	"fmt"
	"testing"

	"attila/internal/vmath"
)

func TestDebugHang(t *testing.T) {
	cfg := BaselineUnified()
	cfg.StatInterval = 0
	p, err := New(cfg, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	red := vmath.Vec4{1, 0, 0, 1}
	st, vbuf := testState(t, p, 3)
	verts := buildVerts(
		vtx(-3, -3, 0, red),
		vtx(3, -3, 0, red),
		vtx(0, 3, 0, red),
	)
	cmds := []Command{
		CmdBufferWrite{Addr: vbuf, Data: verts},
		CmdClearZS{Depth: 1, Stencil: 0},
		CmdClearColor{Value: [4]byte{0, 0, 64, 255}},
		CmdDraw{State: st},
		CmdSwap{},
	}
	err = p.Run(cmds, 100_000)
	if err == nil {
		t.Skip("no hang")
	}
	fmt.Println("cycles:", p.Cycles(), "err:", err)
	fmt.Println("cp.pc:", p.CP.pc, "active batches:", len(p.CP.active),
		"waitClear:", p.CP.waitClear, "waitSwap:", p.CP.waitSwap, "swapState:", p.CP.swapState)
	for _, b := range p.CP.active {
		fmt.Printf("batch %d: vtxIssued=%d streamerDone=%v paDone=%v trisIn=%d trisRet=%d quadsIn=%d quadsRet=%d shadedQ=%d shadedV=%d\n",
			b.ID, b.VtxIssued, b.StreamerDone, b.PADone, b.TrisIn, b.TrisRetired,
			b.QuadsIn, b.QuadsRetired, b.ShadedQuads, b.ShadedVerts)
	}
	for _, name := range p.Sim.Stats.Names() {
		v := p.Sim.Stats.Lookup(name).Value()
		if v != 0 {
			fmt.Printf("  %s = %g\n", name, v)
		}
	}
}
