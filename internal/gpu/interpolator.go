package gpu

import (
	"math/bits"

	"attila/internal/core"
	"attila/internal/isa"
	"attila/internal/vmath"
)

// Interpolator computes the fragment attributes from the triangle
// vertex attributes using the perspective-corrected linear
// interpolation of the OpenGL specification (paper §2.2). Latency
// grows with the number of active attributes (2 to 8 cycles in
// Table 1), modelled through the output signal's variable latency.
type Interpolator struct {
	core.BoxBase
	cfg     *Config
	quadIns []*Flow // early path: one per ROPz; late path: from HZ
	quadOut *Flow   // to FragmentFIFO for shading
	queue   core.FIFO[*Quad]
	rr      int

	statQuads core.Shadow
	statBusy  core.Shadow
}

// NewInterpolator builds the box.
func NewInterpolator(sim *core.Simulator, cfg *Config, quadIns []*Flow, quadOut *Flow) *Interpolator {
	ip := &Interpolator{cfg: cfg, quadIns: quadIns, quadOut: quadOut}
	ip.Init("Interpolator")
	sim.Stats.ShadowCounter(&ip.statQuads, "Interpolator.quads")
	sim.Stats.ShadowCounter(&ip.statBusy, "Interpolator.busyCycles")
	sim.Register(ip)
	return ip
}

// Clock implements core.Box.
func (ip *Interpolator) Clock(cycle int64) {
	for _, in := range ip.quadIns {
		for _, obj := range in.Recv(cycle) {
			ip.queue.Push(obj.(*Quad))
			in.Release(1)
		}
	}
	if ip.queue.Len() == 0 {
		return
	}
	worked := false
	for n := 0; n < ip.cfg.InterpQuadsPerCycle && ip.queue.Len() > 0; n++ {
		if !ip.quadOut.CanSend(cycle, 1) {
			break
		}
		q := ip.queue.Pop()
		lat := ip.interpolate(q)
		ip.quadOut.SendLat(cycle, q, lat)
		ip.statQuads.Inc()
		worked = true
	}
	// Busy only when at least one quad was interpolated; a cycle
	// blocked on a full FragmentFIFO is a stall, not work.
	if worked {
		ip.statBusy.Inc()
	}
}

// interpolate fills the quad's fragment inputs and returns the
// modelled latency. All four lanes are interpolated, including dead
// ones, because texture derivatives need complete quads.
func (ip *Interpolator) interpolate(q *Quad) int {
	mask := q.Batch.State.InterpAttrs()
	tri := &q.Tri.Tri
	for l := 0; l < 4; l++ {
		px, py := q.X+l%2, q.Y+l/2
		e := tri.EvalEdges(px, py)
		for slot := 0; slot < isa.MaxInputs; slot++ {
			if mask&(1<<slot) == 0 {
				continue
			}
			if slot == isa.AttrPos {
				continue // window position computed below
			}
			q.In[l][slot] = tri.Interpolate(e, &q.Tri.Attr[slot])
		}
		// Fragment input slot 0 carries the window position
		// (x, y, z, 1/w), whether or not the program reads it.
		invW := (e[0]*tri.InvW[0] + e[1]*tri.InvW[1] + e[2]*tri.InvW[2]) / tri.Area
		q.In[l][isa.AttrPos] = vmath.Vec4{
			float32(px) + 0.5,
			float32(py) + 0.5,
			float32(q.Depth[l]) / float32(1<<24-1),
			invW,
		}
	}
	attrs := bits.OnesCount32(mask)
	lat := ip.cfg.InterpBaseLat + ip.cfg.InterpPerAttrLat*attrs
	max := ip.cfg.InterpBaseLat + ip.cfg.InterpPerAttrLat*isa.MaxInputs
	if lat > max {
		lat = max
	}
	if lat < 1 {
		lat = 1
	}
	return lat
}
