package gpu

import (
	"attila/internal/core"
	"attila/internal/emu/rastemu"
	"attila/internal/isa"
	"attila/internal/vmath"
)

// TriangleSetup computes the triangle half-plane edge equations and
// the depth interpolation equation from the homogeneous vertex
// positions (paper §2.2, following Olano and Greer). It is also the
// entry of the fragment phase: triangles of the next batch wait here
// until the current fragment-phase batch retires, implementing the
// two-phase batch pipelining of §2.2.
type Setup struct {
	core.BoxBase
	triIn  *Flow
	triOut *Flow
	queue  core.FIFO[*TriWork]

	fragBatch *BatchState // batch currently owning the fragment phase

	statIn     core.Shadow
	statCulled core.Shadow
	statBusy   core.Shadow
}

// NewSetup builds the box; the output flow's latency models the
// 10-cycle setup pipeline (Table 1).
func NewSetup(sim *core.Simulator, triIn, triOut *Flow) *Setup {
	s := &Setup{triIn: triIn, triOut: triOut}
	s.Init("TriangleSetup")
	sim.Stats.ShadowCounter(&s.statIn, "Setup.triangles")
	sim.Stats.ShadowCounter(&s.statCulled, "Setup.culled")
	sim.Stats.ShadowCounter(&s.statBusy, "Setup.busyCycles")
	sim.Register(s)
	return s
}

// FragmentBatch returns the batch currently in the fragment phase
// (nil when none).
func (s *Setup) FragmentBatch() *BatchState { return s.fragBatch }

// Clock implements core.Box.
func (s *Setup) Clock(cycle int64) {
	for _, obj := range s.triIn.Recv(cycle) {
		s.queue.Push(obj.(*TriWork))
	}
	// Release the fragment phase when its batch fully retires.
	if s.fragBatch != nil && s.fragBatch.Done() {
		s.fragBatch = nil
	}
	if s.queue.Len() == 0 {
		return
	}
	tw := s.queue.Peek()
	if s.fragBatch == nil {
		s.fragBatch = tw.Batch
	}
	if tw.Batch != s.fragBatch {
		return // next batch waits for the fragment phase
	}
	st := tw.Batch.State

	clip := [3]vmath.Vec4{}
	for i := 0; i < 3; i++ {
		clip[i] = tw.V[i].Out[isa.AttrPos]
	}
	tri, ok := rastemu.Setup(clip, st.Viewport, st.CullFront, st.CullBack)

	if ok && !s.triOut.CanSend(cycle, 1) {
		return
	}
	s.queue.Pop()
	s.triIn.Release(1)
	s.statIn.Inc()
	s.statBusy.Inc()
	if !ok {
		tw.Batch.TrisRetired++
		s.statCulled.Inc()
		return
	}

	out := &SetupTri{
		DynObject: core.DynObject{ID: tw.ID, Parent: tw.Parent, Tag: "setup"},
		Batch:     tw.Batch,
		Tri:       tri,
	}
	// Copy the vertex attributes the interpolator will need: the
	// fragment program's inputs (position is handled separately).
	mask := st.InterpAttrs()
	for slot := 0; slot < isa.MaxOutputs; slot++ {
		if mask&(1<<slot) == 0 && slot != isa.AttrPos {
			continue
		}
		for v := 0; v < 3; v++ {
			out.Attr[slot][v] = tw.V[v].Out[slot]
		}
	}
	s.triOut.Send(cycle, out)
}
