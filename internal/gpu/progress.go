package gpu

import "attila/internal/core"

// This file implements the watchdog's core.ProgressReporter and
// core.StallReporter interfaces for the pipeline boxes.
//
// ProgressCount publishes forward progress that is invisible as
// signal traffic: command-stream advancement, cache-hit texture
// filtering, shader instruction execution, quads retired into the
// framebuffer caches. Only genuinely forward-moving counters qualify
// — busy/stall counters tick while deadlocked and would mask a hang.
//
// Queues snapshots each box's input queues and the credit pools of
// its *output* flows (the producer's view of downstream backpressure),
// so each Flow appears in exactly one box's report. Both methods run
// on the coordinator at the cycle barrier, never concurrently with
// box clocks.

func flowStats(flows ...*Flow) []core.QueueStat {
	out := make([]core.QueueStat, 0, len(flows))
	for _, f := range flows {
		if f != nil {
			out = append(out, f.QueueStat())
		}
	}
	return out
}

// ProgressCount implements core.ProgressReporter: command retirement
// and bus upload streaming advance without signal traffic.
func (c *CommandProcessor) ProgressCount() int64 {
	return int64(c.statCmds.Value()+c.statBatches.Value()+c.statFrames.Value()+c.statBytesUp.Value()) + int64(c.pc)
}

// Queues implements core.StallReporter.
func (c *CommandProcessor) Queues() []core.QueueStat {
	qs := []core.QueueStat{
		{Name: "CP.activeBatches", Occupied: len(c.active), Capacity: 2},
		{Name: "CP.memPort", Occupied: c.port.Outstanding(), Capacity: c.port.Outstanding() + c.port.Free()},
	}
	return append(qs, c.drawOut.QueueStat())
}

// ProgressCount implements core.ProgressReporter: vertex-cache hits
// commit vertices without shader traffic.
func (s *Streamer) ProgressCount() int64 {
	return int64(s.statVtx.Value() + s.statVCacheHit.Value() + s.statVCacheMis.Value())
}

// Queues implements core.StallReporter.
func (s *Streamer) Queues() []core.QueueStat {
	qs := []core.QueueStat{
		{Name: "Streamer.cmdQueue", Occupied: len(s.cmdQ), Capacity: 2},
		{Name: "Streamer.reorder", Occupied: len(s.ready)},
		{Name: "Streamer.shadePending", Occupied: len(s.pendingV)},
	}
	return append(qs, flowStats(s.shadeOut, s.vtxOut)...)
}

// Queues implements core.StallReporter.
func (p *PrimAssembly) Queues() []core.QueueStat {
	qs := []core.QueueStat{{Name: "PA.queue", Occupied: p.queue.Len(), Capacity: 8}}
	return append(qs, p.triOut.QueueStat())
}

// Queues implements core.StallReporter.
func (c *Clipper) Queues() []core.QueueStat {
	qs := []core.QueueStat{{Name: "Clipper.queue", Occupied: c.queue.Len()}}
	return append(qs, c.triOut.QueueStat())
}

// Queues implements core.StallReporter.
func (s *Setup) Queues() []core.QueueStat {
	qs := []core.QueueStat{{Name: "Setup.queue", Occupied: s.queue.Len()}}
	return append(qs, s.triOut.QueueStat())
}

// ProgressCount implements core.ProgressReporter: recursive-descent
// traversal can spend cycles on empty regions between tile emissions.
func (g *FragmentGenerator) ProgressCount() int64 {
	return int64(g.statTiles.Value() + g.statQuads.Value())
}

// Queues implements core.StallReporter.
func (g *FragmentGenerator) Queues() []core.QueueStat {
	qs := []core.QueueStat{{Name: "FGen.queue", Occupied: g.queue.Len()}}
	return append(qs, g.tileOut.QueueStat())
}

// ProgressCount implements core.ProgressReporter: HZ-culled tiles
// retire quads with no downstream traffic.
func (h *HierarchicalZ) ProgressCount() int64 {
	return int64(h.statTiles.Value() + h.statCulled.Value())
}

// Queues implements core.StallReporter.
func (h *HierarchicalZ) Queues() []core.QueueStat {
	qs := []core.QueueStat{{Name: "HZ.queue", Occupied: h.queue.Len()}}
	qs = append(qs, flowStats(h.earlyZ...)...)
	return append(qs, h.lateOut.QueueStat())
}

// Queues implements core.StallReporter.
func (ip *Interpolator) Queues() []core.QueueStat {
	qs := []core.QueueStat{{Name: ip.BoxName() + ".queue", Occupied: ip.queue.Len()}}
	return append(qs, ip.quadOut.QueueStat())
}

// ProgressCount implements core.ProgressReporter: thread launches and
// in-place fragment kills.
func (f *FragmentFIFO) ProgressCount() int64 {
	return int64(f.statVtxThreads.Value() + f.statFragThreads.Value() + f.statKilled.Value())
}

// Queues implements core.StallReporter.
func (f *FragmentFIFO) Queues() []core.QueueStat {
	qs := []core.QueueStat{
		{Name: "FFIFO.window", Occupied: f.windowUsed, Capacity: f.cfg.WindowThreads},
		{Name: "FFIFO.fragRegs", Occupied: f.fragRegs, Capacity: f.cfg.PhysRegsFragment},
		{Name: "FFIFO.vtxRegs", Occupied: f.vtxRegs, Capacity: f.cfg.PhysRegsVertex},
		{Name: "FFIFO.arrived", Occupied: f.vtxArrived.Len() + f.fragArrived.Len()},
		{Name: "FFIFO.pending", Occupied: f.vtxPending.Len() + f.fragPending.Len()},
		{Name: "FFIFO.outbox", Occupied: f.outbox.Len()},
	}
	qs = append(qs, f.vtxOut.QueueStat())
	qs = append(qs, flowStats(f.fragEarly...)...)
	qs = append(qs, flowStats(f.fragLate...)...)
	return append(qs, flowStats(f.shaderIn...)...)
}

// ProgressCount implements core.ProgressReporter: instruction
// execution is signal-silent.
func (s *ShaderUnit) ProgressCount() int64 { return int64(s.statInstr.Value()) }

// Queues implements core.StallReporter.
func (s *ShaderUnit) Queues() []core.QueueStat {
	used := 0
	for i := range s.threads {
		if s.threads[i].state != threadFree {
			used++
		}
	}
	qs := []core.QueueStat{{Name: s.BoxName() + ".threads", Occupied: used, Capacity: len(s.threads)}}
	return append(qs, flowStats(s.workOut, s.texReq)...)
}

// Queues implements core.StallReporter.
func (x *TexCrossbar) Queues() []core.QueueStat {
	qs := []core.QueueStat{
		{Name: "TexXBar.requests", Occupied: x.queue.Len()},
		{Name: "TexXBar.replies", Occupied: x.replies.Len()},
	}
	qs = append(qs, flowStats(x.toTU...)...)
	return append(qs, flowStats(x.toShader...)...)
}

// ProgressCount implements core.ProgressReporter: cache-hit filtering
// consumes texels with no memory traffic.
func (t *TextureUnit) ProgressCount() int64 {
	return int64(t.statReqs.Value() + t.statTexels.Value())
}

// Queues implements core.StallReporter.
func (t *TextureUnit) Queues() []core.QueueStat {
	qs := []core.QueueStat{{Name: t.BoxName() + ".queue", Occupied: t.queue.Len(), Capacity: t.cfg.TexQueue}}
	return append(qs, t.repOut.QueueStat())
}

// ProgressCount implements core.ProgressReporter: culled quads retire
// with no output traffic, and fast clears flip block states in place.
func (z *ZStencil) ProgressCount() int64 {
	return int64(z.statQuads.Value() + z.statCulled.Value())
}

// Queues implements core.StallReporter.
func (z *ZStencil) Queues() []core.QueueStat {
	qs := []core.QueueStat{{Name: z.BoxName() + ".queue", Occupied: z.queue.Len(), Capacity: z.cfg.ROPQueue}}
	return append(qs, flowStats(z.earlyOut, z.lateOut)...)
}

// ProgressCount implements core.ProgressReporter: quads retire into
// the color cache with no further signal traffic.
func (c *ColorWrite) ProgressCount() int64 {
	return int64(c.statQuads.Value() + c.statFrags.Value())
}

// Queues implements core.StallReporter.
func (c *ColorWrite) Queues() []core.QueueStat {
	return []core.QueueStat{{Name: c.BoxName() + ".queue", Occupied: c.queue.Len(), Capacity: c.cfg.ROPQueue}}
}

// Queues implements core.StallReporter.
func (d *DAC) Queues() []core.QueueStat {
	return []core.QueueStat{{Name: "DAC.pending", Occupied: len(d.pending)}}
}

// BusyCycles implements core.BusyReporter for every box that already
// keeps a busy-cycle counter; the observability layer derives
// per-window utilization fractions from the deltas. Counters are read
// only at the cycle barrier, like the other reporter interfaces.

func (s *Streamer) BusyCycles() float64          { return s.statBusy.Value() }
func (p *PrimAssembly) BusyCycles() float64      { return p.statBusy.Value() }
func (c *Clipper) BusyCycles() float64           { return c.statBusy.Value() }
func (s *Setup) BusyCycles() float64             { return s.statBusy.Value() }
func (g *FragmentGenerator) BusyCycles() float64 { return g.statBusy.Value() }
func (h *HierarchicalZ) BusyCycles() float64     { return h.statBusy.Value() }
func (ip *Interpolator) BusyCycles() float64     { return ip.statBusy.Value() }
func (s *ShaderUnit) BusyCycles() float64        { return s.statBusy.Value() }
func (t *TextureUnit) BusyCycles() float64       { return t.statBusy.Value() }
func (z *ZStencil) BusyCycles() float64          { return z.statBusy.Value() }
func (c *ColorWrite) BusyCycles() float64        { return c.statBusy.Value() }
