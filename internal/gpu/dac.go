package gpu

import (
	"fmt"
	"io"

	"attila/internal/core"
	"attila/internal/mem"
)

// DAC models the display output unit (paper §2.2): its main task in
// the simulator is dumping the color buffer into an image so the
// rendered output can be verified against a reference. It reads the
// front buffer block by block through its own memory controller
// port, consuming real memory bandwidth; fast-cleared blocks are
// synthesized from the ROP clear state without memory traffic.
type DAC struct {
	core.BoxBase
	port  *mem.Port
	ropcs []*ColorWrite

	refreshCycles int64
	frontFn       func() SurfaceLayout
	refreshAddr   int

	active  bool
	layout  SurfaceLayout
	image   []byte         // RGBA, W*H*4
	block   int            // next block to request
	pending map[uint64]int // transaction id -> block*4+piece
	left    int

	frames []*Frame

	statBlocks  core.Shadow
	statSynth   core.Shadow
	statRefresh core.Shadow
}

// Frame is one dumped image.
type Frame struct {
	W, H int
	Pix  []byte // RGBA rows top to bottom... stored bottom-up like GL; WritePPM flips
}

// NewDAC builds the box; ropcs provide fast-clear block state.
// refreshCycles > 0 enables continuous screen-refresh reads of the
// front buffer (frontFn) between frame dumps.
func NewDAC(sim *core.Simulator, ropcs []*ColorWrite, refreshCycles int64, frontFn func() SurfaceLayout) *DAC {
	d := &DAC{
		ropcs: ropcs, pending: make(map[uint64]int),
		refreshCycles: refreshCycles, frontFn: frontFn,
	}
	d.Init("DAC")
	d.port = mem.NewPort(sim, "DAC", 8)
	sim.Stats.ShadowCounter(&d.statBlocks, "DAC.blocksRead")
	sim.Stats.ShadowCounter(&d.statSynth, "DAC.blocksSynthesized")
	sim.Stats.ShadowCounter(&d.statRefresh, "DAC.refreshBytes")
	sim.Register(d)
	return d
}

// StartDump begins reading the given buffer; Done reports completion
// and Frames accumulates the images.
func (d *DAC) StartDump(layout SurfaceLayout) {
	if d.active {
		panic("gpu: DAC dump already in progress")
	}
	d.active = true
	d.layout = layout
	d.image = make([]byte, layout.W*layout.H*4)
	d.block = 0
	d.left = layout.NumBlocks()
}

// Done reports whether no dump is in progress.
func (d *DAC) Done() bool { return !d.active }

// Frames returns the dumped frames in order.
func (d *DAC) Frames() []*Frame { return d.frames }

// Clock implements core.Box.
func (d *DAC) Clock(cycle int64) {
	if !d.active {
		// Screen refresh: a steady trickle of front-buffer reads,
		// scanning the surface round robin. Replies are discarded
		// (the "display" consumes them); only the bandwidth matters.
		if d.refreshCycles > 0 && cycle%d.refreshCycles == 0 && d.port.CanIssue() {
			layout := d.frontFn()
			total := layout.Bytes() / 64
			if total > 0 {
				addr := layout.Base + uint32((d.refreshAddr%total)*64)
				d.port.Read(cycle, addr, 64, 0)
				d.refreshAddr++
				d.statRefresh.Add(64)
			}
		}
		d.port.Replies(cycle)
		return
	}
	for _, rep := range d.port.Replies(cycle) {
		tag, ok := d.pending[rep.ReqID]
		if !ok {
			continue // refresh reply still in flight at dump start
		}
		delete(d.pending, rep.ReqID)
		blk := tag / 4
		piece := tag % 4
		d.storeBlockPiece(blk, piece, rep.Data)
		if piece == 3 {
			d.left--
			d.statBlocks.Inc()
		}
	}
	total := d.layout.NumBlocks()
	for d.block < total && d.port.CanIssue() {
		blk := d.block
		bx := blk % ((d.layout.W + SurfaceTile - 1) / SurfaceTile)
		by := blk / ((d.layout.W + SurfaceTile - 1) / SurfaceTile)
		x, y := bx*SurfaceTile, by*SurfaceTile
		rop := d.ropcs[d.layout.BlockIndex(x, y)%len(d.ropcs)]
		if clear, val := rop.BlockClear(d.layout.Base, blk); clear {
			var line [SurfaceBlockBytes]byte
			for i := 0; i < SurfaceBlockBytes; i += 4 {
				copy(line[i:], val[:])
			}
			for piece := 0; piece < 4; piece++ {
				d.storeBlockPiece(blk, piece, line[piece*64:piece*64+64])
			}
			d.left--
			d.statSynth.Inc()
			d.block++
			continue
		}
		// 256-byte block = four 64-byte transactions.
		addr := d.layout.BlockAddr(x, y)
		canAll := true
		if d.port.Outstanding()+4 > 8 {
			canAll = false
		}
		if !canAll {
			break
		}
		for piece := 0; piece < 4; piece++ {
			id := d.port.Read(cycle, addr+uint32(piece*64), 64, 0)
			d.pending[id] = blk*4 + piece
		}
		d.block++
	}
	if d.left == 0 && d.block == total {
		d.frames = append(d.frames, &Frame{W: d.layout.W, H: d.layout.H, Pix: d.image})
		d.active = false
	}
}

// storeBlockPiece scatters 64 bytes (16 pixels of the tiled block)
// into the linear image.
func (d *DAC) storeBlockPiece(blk, piece int, data []byte) {
	tilesX := (d.layout.W + SurfaceTile - 1) / SurfaceTile
	bx, by := blk%tilesX, blk/tilesX
	for i := 0; i < 16; i++ {
		idx := piece*16 + i // pixel index within the 8x8 tile
		px := bx*SurfaceTile + idx%SurfaceTile
		py := by*SurfaceTile + idx/SurfaceTile
		if px >= d.layout.W || py >= d.layout.H {
			continue
		}
		copy(d.image[(py*d.layout.W+px)*4:], data[i*4:i*4+4])
	}
}

// WritePPM writes the frame as a binary PPM (colors only, alpha
// dropped), top row first. GL window coordinates have y up, so rows
// are flipped.
func (f *Frame) WritePPM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", f.W, f.H); err != nil {
		return err
	}
	row := make([]byte, f.W*3)
	for y := f.H - 1; y >= 0; y-- {
		for x := 0; x < f.W; x++ {
			copy(row[x*3:], f.Pix[(y*f.W+x)*4:(y*f.W+x)*4+3])
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// DiffFrames compares two frames and returns the count of differing
// pixels and the maximum per-channel difference; the Figure 10 style
// verification between the simulator's DAC dump and the reference
// renderer.
func DiffFrames(a, b *Frame) (diffPixels int, maxDelta int) {
	if a.W != b.W || a.H != b.H {
		return a.W*a.H + b.W*b.H, 255
	}
	for i := 0; i < len(a.Pix); i += 4 {
		differs := false
		for c := 0; c < 4; c++ {
			d := int(a.Pix[i+c]) - int(b.Pix[i+c])
			if d < 0 {
				d = -d
			}
			if d > 0 {
				differs = true
			}
			if d > maxDelta {
				maxDelta = d
			}
		}
		if differs {
			diffPixels++
		}
	}
	return diffPixels, maxDelta
}
