package gpu

import (
	"attila/internal/core"
	"attila/internal/emu/fragemu"
	"attila/internal/emu/shaderemu"
	"attila/internal/emu/texemu"
	"attila/internal/isa"
	"attila/internal/vmath"
)

// TexReqMsg is a quad texture request travelling from a shader unit
// through the texture crossbar to a texture unit.
type TexReqMsg struct {
	core.DynObject
	Shader  int
	Slot    int // thread slot within the shader
	Req     *shaderemu.TexRequest
	Texture *texemu.Texture

	// spent piggybacks a consumed TexRepMsg back to the texture units
	// for recycling. Carries no simulation state.
	spent *TexRepMsg
}

// TexRepMsg carries the filtered texels back.
type TexRepMsg struct {
	core.DynObject
	Shader int
	Slot   int
	Result [shaderLanes]vmath.Vec4

	// spent piggybacks the consumed TexReqMsg back to its issuing
	// shader for recycling.
	spent *TexReqMsg
}

type threadState uint8

const (
	threadFree threadState = iota
	threadRunning
	threadBlockedTex
	threadWaitSend // texture request built, waiting for crossbar room
	threadDone
)

type shaderThread struct {
	state   threadState
	work    *ShaderWork
	emu     *shaderemu.Emulator
	t       *shaderemu.Thread
	ready   [isa.MaxTemps]int64 // temp register scoreboard
	pending *TexReqMsg
	arrival int64 // for in-order scheduling
}

// ShaderUnit is one multithreaded shader processor (paper §2.3): an
// in-order pipeline (fetch, decode, 1-9 execution stages, write back)
// that hides instruction and texture latency by interleaving threads,
// each thread executing a group of four shader inputs in lockstep.
type ShaderUnit struct {
	core.BoxBase
	cfg        *Config
	idx        int
	vertexOnly bool

	workIn  *Flow
	workOut *Flow
	texReq  *Flow // to crossbar (nil for vertex-only units)
	texRep  *Flow // from crossbar

	threads []shaderThread
	rr      int
	seq     int64

	// Maintained thread-state class counts (updated by setState) so
	// the per-cycle scheduler can early-out instead of scanning every
	// thread slot: resident = non-free, blocked = waiting on a texture
	// request (sent or pending).
	resident int
	running  int
	blocked  int

	// Texture message recycling (no simulation state): completed
	// requests come back on TexRepMsg.spent; consumed replies ride out
	// on the next TexReqMsg.spent. Both lists are touched only on this
	// box's clocking goroutine.
	freeReqs  []*TexReqMsg
	spentReps []*TexRepMsg

	statInstr   core.Shadow
	statBusy    core.Shadow
	statTexWait core.Shadow
	statThreads *core.Gauge
}

// NewShaderUnit builds shader unit idx. vertexOnly marks the
// dedicated vertex shaders of the non-unified model, which have no
// texture path.
func NewShaderUnit(sim *core.Simulator, cfg *Config, idx int, vertexOnly bool,
	workIn, workOut, texReq, texRep *Flow) *ShaderUnit {
	threads := cfg.ThreadsPerShader
	if vertexOnly {
		threads = cfg.VertexThreadsPerShader
	}
	s := &ShaderUnit{
		cfg: cfg, idx: idx, vertexOnly: vertexOnly,
		workIn: workIn, workOut: workOut, texReq: texReq, texRep: texRep,
		threads: make([]shaderThread, threads),
	}
	s.Init(nameIdx("Shader", idx))
	sim.Stats.ShadowCounter(&s.statInstr, s.BoxName()+".instructions")
	sim.Stats.ShadowCounter(&s.statBusy, s.BoxName()+".busyCycles")
	sim.Stats.ShadowCounter(&s.statTexWait, s.BoxName()+".texWaitCycles")
	s.statThreads = sim.Stats.Gauge(s.BoxName() + ".threads")
	sim.Register(s)
	return s
}

// Clock implements core.Box.
func (s *ShaderUnit) Clock(cycle int64) {
	s.completeTextures(cycle)
	s.acceptWork(cycle)
	s.sendPendingTex(cycle)
	issued := s.issue(cycle)
	s.retire(cycle)

	s.statThreads.Set(float64(s.resident))
	if issued > 0 {
		s.statBusy.Inc()
	} else if s.resident > 0 && s.blocked == s.resident {
		s.statTexWait.Inc()
	}
}

// setState moves a thread between states, keeping the class counts in
// sync. Every state transition must go through here.
func (s *ShaderUnit) setState(th *shaderThread, ns threadState) {
	s.adjCount(th.state, -1)
	s.adjCount(ns, 1)
	th.state = ns
}

func (s *ShaderUnit) adjCount(st threadState, d int) {
	switch st {
	case threadFree:
	case threadRunning:
		s.resident += d
		s.running += d
	case threadBlockedTex, threadWaitSend:
		s.resident += d
		s.blocked += d
	case threadDone:
		s.resident += d
	}
}

func (s *ShaderUnit) completeTextures(cycle int64) {
	if s.texRep == nil {
		return
	}
	for _, obj := range s.texRep.Recv(cycle) {
		rep := obj.(*TexRepMsg)
		s.texRep.Release(1)
		th := &s.threads[rep.Slot]
		if th.state != threadBlockedTex {
			panic("gpu: texture reply for non-blocked thread")
		}
		dst := th.t.Blocked.Dst
		th.emu.CompleteTexture(th.t, rep.Result)
		if dst.Bank == isa.BankTemp {
			th.ready[dst.Index] = cycle + 1
		}
		s.setState(th, threadRunning)
		if th.t.Done {
			s.setState(th, threadDone)
		}
		if sp := rep.spent; sp != nil {
			rep.spent = nil
			s.freeReqs = append(s.freeReqs, sp)
		}
		s.spentReps = append(s.spentReps, rep)
	}
}

func (s *ShaderUnit) acceptWork(cycle int64) {
	for _, obj := range s.workIn.Recv(cycle) {
		w := obj.(*ShaderWork)
		slot := -1
		for i := range s.threads {
			if s.threads[i].state == threadFree {
				slot = i
				break
			}
		}
		if slot < 0 {
			panic("gpu: shader received work with no free thread (flow credits broken)")
		}
		th := &s.threads[slot]
		emu := fragEmulator(w.Batch)
		if w.Kind == workVertex {
			emu = vtxEmulator(w.Batch)
		}
		th.work = w
		th.emu = emu
		if th.t == nil {
			th.t = emu.NewThread()
		} else {
			th.t.Reset(emu.Program().TempsUsed())
		}
		for i := range th.ready {
			th.ready[i] = 0
		}
		if w.Kind == workVertex {
			for l := 0; l < w.Vtx.Count; l++ {
				th.t.Active[l] = true
				th.t.In[l] = w.Vtx.In[l]
			}
		} else {
			// All four lanes run, including dead ones: texture
			// derivatives need complete quads (§2.2).
			for l := 0; l < shaderLanes; l++ {
				th.t.Active[l] = true
				th.t.In[l] = w.Frag.In[l]
			}
		}
		s.setState(th, threadRunning)
		th.arrival = s.seq
		s.seq++
	}
}

// getTexReq pops a recycled request message (fully zeroed) or
// allocates one, and gives a waiting spent reply its ride back to the
// texture units.
func (s *ShaderUnit) getTexReq() *TexReqMsg {
	var msg *TexReqMsg
	if n := len(s.freeReqs); n > 0 {
		msg = s.freeReqs[n-1]
		s.freeReqs = s.freeReqs[:n-1]
		*msg = TexReqMsg{}
	} else {
		msg = &TexReqMsg{}
	}
	if n := len(s.spentReps); n > 0 {
		msg.spent = s.spentReps[n-1]
		s.spentReps = s.spentReps[:n-1]
	}
	return msg
}

func (s *ShaderUnit) sendPendingTex(cycle int64) {
	if s.blocked == 0 {
		return
	}
	for i := range s.threads {
		th := &s.threads[i]
		if th.state != threadWaitSend {
			continue
		}
		if !s.texReq.CanSend(cycle, 1) {
			return
		}
		s.texReq.Send(cycle, th.pending)
		th.pending = nil
		s.setState(th, threadBlockedTex)
	}
}

// pickThread selects the next thread allowed to issue. The thread
// window configuration issues from any ready thread (hiding texture
// latency); the in-order input queue configuration only ever executes
// the oldest resident thread, stalling while it waits (§5).
func (s *ShaderUnit) pickThread() int {
	if s.running == 0 {
		return -1
	}
	if s.cfg.Schedule == ScheduleInOrderQueue {
		oldest, best := -1, int64(0)
		for i := range s.threads {
			th := &s.threads[i]
			if th.state == threadFree || th.state == threadDone {
				continue
			}
			if oldest < 0 || th.arrival < best {
				oldest, best = i, th.arrival
			}
		}
		if oldest >= 0 && s.threads[oldest].state == threadRunning {
			return oldest
		}
		return -1
	}
	n := len(s.threads)
	for k := 0; k < n; k++ {
		i := (s.rr + k) % n
		if s.threads[i].state == threadRunning {
			s.rr = (i + 1) % n
			return i
		}
	}
	return -1
}

func (s *ShaderUnit) issue(cycle int64) int {
	issued := 0
	attempts := len(s.threads)
	for n := 0; issued < s.cfg.ShaderIssueRate && n < attempts; n++ {
		i := s.pickThread()
		if i < 0 {
			break
		}
		th := &s.threads[i]
		in := th.emu.Program().Instr[th.t.PC]
		if !s.depsReady(cycle, th, in) {
			// In the window configuration another thread may issue
			// instead; round-robin already advanced, so just try
			// again next iteration (bounded by issue rate).
			continue
		}
		if in.Op.Info().Texture && (s.texReq == nil || th.pending != nil) {
			continue
		}
		executed := th.emu.Step(th.t)
		s.statInstr.Inc()
		issued++
		if th.t.Blocked != nil {
			msg := s.getTexReq()
			msg.DynObject = core.DynObject{ID: th.work.ID, Parent: th.work.Parent, Tag: "texreq"}
			msg.Shader, msg.Slot = s.idx, i
			msg.Req = th.t.Blocked
			msg.Texture = th.work.Batch.State.Textures[th.t.Blocked.Sampler]
			if s.texReq.CanSend(cycle, 1) {
				s.texReq.Send(cycle, msg)
				s.setState(th, threadBlockedTex)
			} else {
				th.pending = msg
				s.setState(th, threadWaitSend)
			}
			continue
		}
		info := executed.Op.Info()
		if info.HasDst && executed.Dst.Bank == isa.BankTemp {
			th.ready[executed.Dst.Index] = cycle + int64(s.execLatency(info.LatencyClass))
		}
		if th.t.Done {
			s.setState(th, threadDone)
		}
	}
	return issued
}

func (s *ShaderUnit) execLatency(class isa.LatClass) int {
	lat := 1
	switch class {
	case isa.LatSimple:
		lat = s.cfg.ExecLatSimple
	case isa.LatMAD:
		lat = s.cfg.ExecLatMAD
	case isa.LatScalar:
		lat = s.cfg.ExecLatScalar
	}
	if lat < 1 {
		lat = 1
	}
	return lat
}

// depsReady checks the scoreboard: all temp-register sources written
// by earlier instructions must have completed execution.
func (s *ShaderUnit) depsReady(cycle int64, th *shaderThread, in isa.Instruction) bool {
	info := in.Op.Info()
	for i := 0; i < info.NSrc; i++ {
		if in.Src[i].Bank == isa.BankTemp && th.ready[in.Src[i].Index] > cycle {
			return false
		}
	}
	// Write-after-write on a still-executing destination also stalls.
	if info.HasDst && in.Dst.Bank == isa.BankTemp && th.ready[in.Dst.Index] > cycle {
		return false
	}
	return true
}

func (s *ShaderUnit) retire(cycle int64) {
	if s.resident-s.running-s.blocked == 0 {
		return
	}
	for i := range s.threads {
		th := &s.threads[i]
		if th.state != threadDone {
			continue
		}
		if !s.workOut.CanSend(cycle, 1) {
			return
		}
		w := th.work
		if w.Kind == workVertex {
			for l := 0; l < w.Vtx.Count; l++ {
				w.Vtx.Out[l] = th.t.Out[l]
			}
		} else {
			prog := th.emu.Program()
			writesDepth := prog.Outputs()&(1<<isa.FragOutDepth) != 0
			for l := 0; l < shaderLanes; l++ {
				w.Frag.Color[l] = th.t.Out[l][isa.FragOutColor]
				if th.t.Killed[l] {
					w.Frag.Mask[l] = false
				}
				if writesDepth {
					w.Frag.Depth[l] = fragemu.DepthToFixed(th.t.Out[l][isa.FragOutDepth][0])
				}
			}
		}
		s.workOut.Send(cycle, w)
		s.setState(th, threadFree)
		th.work = nil
		s.workIn.Release(1) // thread slot is free again
	}
}

// Batch emulator caches: one ShaderEmulator per program+constants,
// shared by every thread of the batch. The command processor builds
// them eagerly in newBatch (shader units must not mutate shared batch
// state in parallel mode); the lazy path below only serves test
// harnesses that construct a BatchState directly.
func fragEmulator(b *BatchState) *shaderemu.Emulator {
	if b.fragEmu == nil {
		b.fragEmu = shaderemu.New(b.State.FragmentProg, b.State.FragConsts)
	}
	return b.fragEmu
}

func vtxEmulator(b *BatchState) *shaderemu.Emulator {
	if b.vtxEmu == nil {
		b.vtxEmu = shaderemu.New(b.State.VertexProg, b.State.VertConsts)
	}
	return b.vtxEmu
}
