package gpu

import (
	"attila/internal/core"
	"attila/internal/emu/fragemu"
	"attila/internal/emu/shaderemu"
	"attila/internal/emu/texemu"
	"attila/internal/isa"
	"attila/internal/vmath"
)

// TexReqMsg is a quad texture request travelling from a shader unit
// through the texture crossbar to a texture unit.
type TexReqMsg struct {
	core.DynObject
	Shader  int
	Slot    int // thread slot within the shader
	Req     *shaderemu.TexRequest
	Texture *texemu.Texture
}

// TexRepMsg carries the filtered texels back.
type TexRepMsg struct {
	core.DynObject
	Shader int
	Slot   int
	Result [shaderLanes]vmath.Vec4
}

type threadState uint8

const (
	threadFree threadState = iota
	threadRunning
	threadBlockedTex
	threadWaitSend // texture request built, waiting for crossbar room
	threadDone
)

type shaderThread struct {
	state   threadState
	work    *ShaderWork
	emu     *shaderemu.Emulator
	t       *shaderemu.Thread
	ready   [isa.MaxTemps]int64 // temp register scoreboard
	pending *TexReqMsg
	arrival int64 // for in-order scheduling
}

// ShaderUnit is one multithreaded shader processor (paper §2.3): an
// in-order pipeline (fetch, decode, 1-9 execution stages, write back)
// that hides instruction and texture latency by interleaving threads,
// each thread executing a group of four shader inputs in lockstep.
type ShaderUnit struct {
	core.BoxBase
	cfg        *Config
	idx        int
	vertexOnly bool

	workIn  *Flow
	workOut *Flow
	texReq  *Flow // to crossbar (nil for vertex-only units)
	texRep  *Flow // from crossbar

	threads []shaderThread
	rr      int
	seq     int64

	statInstr   *core.Counter
	statBusy    *core.Counter
	statTexWait *core.Counter
	statThreads *core.Gauge
}

// NewShaderUnit builds shader unit idx. vertexOnly marks the
// dedicated vertex shaders of the non-unified model, which have no
// texture path.
func NewShaderUnit(sim *core.Simulator, cfg *Config, idx int, vertexOnly bool,
	workIn, workOut, texReq, texRep *Flow) *ShaderUnit {
	threads := cfg.ThreadsPerShader
	if vertexOnly {
		threads = cfg.VertexThreadsPerShader
	}
	s := &ShaderUnit{
		cfg: cfg, idx: idx, vertexOnly: vertexOnly,
		workIn: workIn, workOut: workOut, texReq: texReq, texRep: texRep,
		threads: make([]shaderThread, threads),
	}
	s.Init(nameIdx("Shader", idx))
	s.statInstr = sim.Stats.Counter(s.BoxName() + ".instructions")
	s.statBusy = sim.Stats.Counter(s.BoxName() + ".busyCycles")
	s.statTexWait = sim.Stats.Counter(s.BoxName() + ".texWaitCycles")
	s.statThreads = sim.Stats.Gauge(s.BoxName() + ".threads")
	sim.Register(s)
	return s
}

// Clock implements core.Box.
func (s *ShaderUnit) Clock(cycle int64) {
	s.completeTextures(cycle)
	s.acceptWork(cycle)
	s.sendPendingTex(cycle)
	issued := s.issue(cycle)
	s.retire(cycle)

	resident := 0
	blocked := 0
	for i := range s.threads {
		switch s.threads[i].state {
		case threadFree:
		case threadBlockedTex, threadWaitSend:
			resident++
			blocked++
		default:
			resident++
		}
	}
	s.statThreads.Set(float64(resident))
	if issued > 0 {
		s.statBusy.Inc()
	} else if resident > 0 && blocked == resident {
		s.statTexWait.Inc()
	}
}

func (s *ShaderUnit) completeTextures(cycle int64) {
	if s.texRep == nil {
		return
	}
	for _, obj := range s.texRep.Recv(cycle) {
		rep := obj.(*TexRepMsg)
		s.texRep.Release(1)
		th := &s.threads[rep.Slot]
		if th.state != threadBlockedTex {
			panic("gpu: texture reply for non-blocked thread")
		}
		dst := th.t.Blocked.Dst
		th.emu.CompleteTexture(th.t, rep.Result)
		if dst.Bank == isa.BankTemp {
			th.ready[dst.Index] = cycle + 1
		}
		th.state = threadRunning
		if th.t.Done {
			th.state = threadDone
		}
	}
}

func (s *ShaderUnit) acceptWork(cycle int64) {
	for _, obj := range s.workIn.Recv(cycle) {
		w := obj.(*ShaderWork)
		slot := -1
		for i := range s.threads {
			if s.threads[i].state == threadFree {
				slot = i
				break
			}
		}
		if slot < 0 {
			panic("gpu: shader received work with no free thread (flow credits broken)")
		}
		th := &s.threads[slot]
		emu := fragEmulator(w.Batch)
		if w.Kind == workVertex {
			emu = vtxEmulator(w.Batch)
		}
		th.work = w
		th.emu = emu
		if th.t == nil {
			th.t = emu.NewThread()
		} else {
			th.t.Reset(emu.Program().TempsUsed())
		}
		for i := range th.ready {
			th.ready[i] = 0
		}
		if w.Kind == workVertex {
			for l := 0; l < w.Vtx.Count; l++ {
				th.t.Active[l] = true
				th.t.In[l] = w.Vtx.In[l]
			}
		} else {
			// All four lanes run, including dead ones: texture
			// derivatives need complete quads (§2.2).
			for l := 0; l < shaderLanes; l++ {
				th.t.Active[l] = true
				th.t.In[l] = w.Frag.In[l]
			}
		}
		th.state = threadRunning
		th.arrival = s.seq
		s.seq++
	}
}

func (s *ShaderUnit) sendPendingTex(cycle int64) {
	for i := range s.threads {
		th := &s.threads[i]
		if th.state != threadWaitSend {
			continue
		}
		if !s.texReq.CanSend(cycle, 1) {
			return
		}
		s.texReq.Send(cycle, th.pending)
		th.pending = nil
		th.state = threadBlockedTex
	}
}

// pickThread selects the next thread allowed to issue. The thread
// window configuration issues from any ready thread (hiding texture
// latency); the in-order input queue configuration only ever executes
// the oldest resident thread, stalling while it waits (§5).
func (s *ShaderUnit) pickThread() int {
	if s.cfg.Schedule == ScheduleInOrderQueue {
		oldest, best := -1, int64(0)
		for i := range s.threads {
			th := &s.threads[i]
			if th.state == threadFree || th.state == threadDone {
				continue
			}
			if oldest < 0 || th.arrival < best {
				oldest, best = i, th.arrival
			}
		}
		if oldest >= 0 && s.threads[oldest].state == threadRunning {
			return oldest
		}
		return -1
	}
	n := len(s.threads)
	for k := 0; k < n; k++ {
		i := (s.rr + k) % n
		if s.threads[i].state == threadRunning {
			s.rr = (i + 1) % n
			return i
		}
	}
	return -1
}

func (s *ShaderUnit) issue(cycle int64) int {
	issued := 0
	attempts := len(s.threads)
	for n := 0; issued < s.cfg.ShaderIssueRate && n < attempts; n++ {
		i := s.pickThread()
		if i < 0 {
			break
		}
		th := &s.threads[i]
		in := th.emu.Program().Instr[th.t.PC]
		if !s.depsReady(cycle, th, in) {
			// In the window configuration another thread may issue
			// instead; round-robin already advanced, so just try
			// again next iteration (bounded by issue rate).
			continue
		}
		if in.Op.Info().Texture && (s.texReq == nil || th.pending != nil) {
			continue
		}
		executed := th.emu.Step(th.t)
		s.statInstr.Inc()
		issued++
		if th.t.Blocked != nil {
			msg := &TexReqMsg{
				DynObject: core.DynObject{ID: th.work.ID, Parent: th.work.Parent, Tag: "texreq"},
				Shader:    s.idx, Slot: i,
				Req:     th.t.Blocked,
				Texture: th.work.Batch.State.Textures[th.t.Blocked.Sampler],
			}
			if s.texReq.CanSend(cycle, 1) {
				s.texReq.Send(cycle, msg)
				th.state = threadBlockedTex
			} else {
				th.pending = msg
				th.state = threadWaitSend
			}
			continue
		}
		info := executed.Op.Info()
		if info.HasDst && executed.Dst.Bank == isa.BankTemp {
			th.ready[executed.Dst.Index] = cycle + int64(s.execLatency(info.LatencyClass))
		}
		if th.t.Done {
			th.state = threadDone
		}
	}
	return issued
}

func (s *ShaderUnit) execLatency(class isa.LatClass) int {
	lat := 1
	switch class {
	case isa.LatSimple:
		lat = s.cfg.ExecLatSimple
	case isa.LatMAD:
		lat = s.cfg.ExecLatMAD
	case isa.LatScalar:
		lat = s.cfg.ExecLatScalar
	}
	if lat < 1 {
		lat = 1
	}
	return lat
}

// depsReady checks the scoreboard: all temp-register sources written
// by earlier instructions must have completed execution.
func (s *ShaderUnit) depsReady(cycle int64, th *shaderThread, in isa.Instruction) bool {
	info := in.Op.Info()
	for i := 0; i < info.NSrc; i++ {
		if in.Src[i].Bank == isa.BankTemp && th.ready[in.Src[i].Index] > cycle {
			return false
		}
	}
	// Write-after-write on a still-executing destination also stalls.
	if info.HasDst && in.Dst.Bank == isa.BankTemp && th.ready[in.Dst.Index] > cycle {
		return false
	}
	return true
}

func (s *ShaderUnit) retire(cycle int64) {
	for i := range s.threads {
		th := &s.threads[i]
		if th.state != threadDone {
			continue
		}
		if !s.workOut.CanSend(cycle, 1) {
			return
		}
		w := th.work
		if w.Kind == workVertex {
			for l := 0; l < w.Vtx.Count; l++ {
				w.Vtx.Out[l] = th.t.Out[l]
			}
		} else {
			prog := th.emu.Program()
			writesDepth := prog.Outputs()&(1<<isa.FragOutDepth) != 0
			for l := 0; l < shaderLanes; l++ {
				w.Frag.Color[l] = th.t.Out[l][isa.FragOutColor]
				if th.t.Killed[l] {
					w.Frag.Mask[l] = false
				}
				if writesDepth {
					w.Frag.Depth[l] = fragemu.DepthToFixed(th.t.Out[l][isa.FragOutDepth][0])
				}
			}
		}
		s.workOut.Send(cycle, w)
		th.state = threadFree
		th.work = nil
		s.workIn.Release(1) // thread slot is free again
	}
}

// Batch emulator caches: one ShaderEmulator per program+constants,
// shared by every thread of the batch. The command processor builds
// them eagerly in newBatch (shader units must not mutate shared batch
// state in parallel mode); the lazy path below only serves test
// harnesses that construct a BatchState directly.
func fragEmulator(b *BatchState) *shaderemu.Emulator {
	if b.fragEmu == nil {
		b.fragEmu = shaderemu.New(b.State.FragmentProg, b.State.FragConsts)
	}
	return b.fragEmu
}

func vtxEmulator(b *BatchState) *shaderemu.Emulator {
	if b.vtxEmu == nil {
		b.vtxEmu = shaderemu.New(b.State.VertexProg, b.State.VertConsts)
	}
	return b.vtxEmu
}
