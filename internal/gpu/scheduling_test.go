package gpu

import (
	"testing"

	"attila/internal/emu/texemu"
	"attila/internal/isa"
	"attila/internal/vmath"
)

// textureHeavyScene renders a fullscreen textured quad with a given
// scheduling mode and TU count, returning total cycles. The texture
// is large enough to miss the cache regularly, so the run exposes
// texture latency.
func textureHeavyScene(t *testing.T, mode ScheduleMode, tus int) int64 {
	t.Helper()
	cfg := CaseStudy(tus, mode)
	cfg.StatInterval = 0
	p, err := New(cfg, 96, 96)
	if err != nil {
		t.Fatal(err)
	}

	// Build a 64x64 texture directly in GPU memory; sampled
	// magnified so the texture cache hits and TU throughput (not
	// memory bandwidth) is the exposed cost.
	tex := &texemu.Texture{
		Target: isa.Tex2D, Format: texemu.FmtRGBA8,
		Width: 64, Height: 64, Depth: 1, Levels: 1,
		MinFilter: texemu.FilterLinear, MagFilter: texemu.FilterLinear,
		MaxAniso: 1,
	}
	base, err := p.Alloc(tex.TotalBytes(), 256)
	if err != nil {
		t.Fatal(err)
	}
	tex.Base[0][0] = base
	texData := make([]byte, tex.TotalBytes())
	for i := range texData {
		texData[i] = byte(i * 31)
	}

	vp := isa.MustAssemble(isa.VertexProgram, "vp", "MOV o0, v0\nMOV o4, v1\nEND")
	fp := isa.MustAssemble(isa.FragmentProgram, "fp", `
TEX r0, v4, t0, 2D
TEX r1, v4.yxzw, t0, 2D
ADD o0, r0, r1
END`)
	st, vbuf := testState(t, p, 6)
	st.VertexProg, st.FragmentProg = vp, fp
	st.Textures[0] = tex
	verts := buildVerts(
		vtx(-1, -1, 0, vmath.Vec4{0, 0, 0, 0}),
		vtx(1, -1, 0, vmath.Vec4{1, 0, 0, 0}),
		vtx(1, 1, 0, vmath.Vec4{1, 1, 0, 0}),
		vtx(-1, -1, 0, vmath.Vec4{0, 0, 0, 0}),
		vtx(1, 1, 0, vmath.Vec4{1, 1, 0, 0}),
		vtx(-1, 1, 0, vmath.Vec4{0, 1, 0, 0}),
	)
	cmds := []Command{
		CmdBufferWrite{Addr: base, Data: texData},
		CmdBufferWrite{Addr: vbuf, Data: verts},
		CmdClearZS{Depth: 1, Stencil: 0},
		CmdClearColor{Value: [4]byte{0, 0, 0, 255}},
		CmdDraw{State: st},
		CmdSwap{},
	}
	if err := p.Run(cmds, 50_000_000); err != nil {
		t.Fatal(err)
	}
	return p.Cycles()
}

// The thread window must hide texture latency better than the
// in-order input queue (the §5 case study's core claim).
func TestWindowBeatsInOrderQueue(t *testing.T) {
	window := textureHeavyScene(t, ScheduleWindow, 2)
	inorder := textureHeavyScene(t, ScheduleInOrderQueue, 2)
	if inorder <= window {
		t.Fatalf("in-order (%d cycles) not slower than window (%d cycles)", inorder, window)
	}
	// The gap should be substantial on a texture-bound scene.
	if float64(inorder) < 1.2*float64(window) {
		t.Logf("warning: small scheduling gap: window=%d inorder=%d", window, inorder)
	}
}

// On a cache-friendly texture-bound scene, extra TUs must help (on
// memory-bound scenes the Figure 8 line-duplication effect can make
// extra TUs a wash, which Fig7ShapeTiny covers separately).
func TestTextureUnitScaling(t *testing.T) {
	c1 := textureHeavyScene(t, ScheduleWindow, 1)
	c3 := textureHeavyScene(t, ScheduleWindow, 3)
	if c3 >= c1 {
		t.Fatalf("3 TUs (%d cycles) not faster than 1 TU (%d cycles)", c3, c1)
	}
}

// Batch pipelining: the geometry phase of batch N+1 overlaps the
// fragment phase of batch N (§2.2 two-phase pipelining): with two
// draws in the stream, the command processor must have two batches in
// flight at some point.
func TestBatchOverlap(t *testing.T) {
	cfg := BaselineUnified()
	cfg.StatInterval = 0
	p, err := New(cfg, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	red := vmath.Vec4{1, 0, 0, 1}
	st1, vbuf := testState(t, p, 3)
	st2, _ := testState(t, p, 3)
	st2.Attribs = st1.Attribs
	verts := buildVerts(
		vtx(-1, -1, 0.4, red), vtx(1, -1, 0.4, red), vtx(0, 1, 0.4, red))
	cmds := []Command{
		CmdBufferWrite{Addr: vbuf, Data: verts},
		CmdClearZS{Depth: 1, Stencil: 0},
		CmdClearColor{Value: [4]byte{0, 0, 0, 255}},
		CmdDraw{State: st1},
		CmdDraw{State: st2},
		CmdSwap{},
	}
	if err := p.Run(cmds, 5_000_000); err != nil {
		t.Fatal(err)
	}
	if v := p.Sim.Stats.Lookup("CP.overlapCycles").Value(); v <= 0 {
		t.Fatalf("no batch overlap observed for back-to-back draws (%v cycles)", v)
	}
}

// DAC screen refresh (paper §2.2): enabling it must add front-buffer
// read traffic during rendering without changing the image.
func TestDACRefreshTraffic(t *testing.T) {
	render := func(refresh int64) (*Frame, float64) {
		cfg := BaselineUnified()
		cfg.StatInterval = 0
		cfg.DACRefreshCycles = refresh
		p, err := New(cfg, 64, 64)
		if err != nil {
			t.Fatal(err)
		}
		red := vmath.Vec4{1, 0, 0, 1}
		st, vbuf := testState(t, p, 3)
		verts := buildVerts(
			vtx(-1, -1, 0, red), vtx(1, -1, 0, red), vtx(0, 1, 0, red))
		cmds := []Command{
			CmdBufferWrite{Addr: vbuf, Data: verts},
			CmdClearZS{Depth: 1, Stencil: 0},
			CmdClearColor{Value: [4]byte{0, 0, 0, 255}},
			CmdDraw{State: st},
			CmdSwap{},
		}
		if err := p.Run(cmds, 5_000_000); err != nil {
			t.Fatal(err)
		}
		return p.Frames()[0], p.Sim.Stats.Lookup("DAC.refreshBytes").Value()
	}
	fOff, rOff := render(0)
	fOn, rOn := render(16)
	if rOff != 0 {
		t.Fatalf("refresh traffic with refresh disabled: %v", rOff)
	}
	if rOn <= 0 {
		t.Fatal("no refresh traffic with refresh enabled")
	}
	if diff, _ := DiffFrames(fOff, fOn); diff != 0 {
		t.Fatalf("refresh changed the image: %d px", diff)
	}
}
