package gpu

import (
	"fmt"

	"attila/internal/core"
	"attila/internal/emu/fragemu"
	"attila/internal/emu/shaderemu"
	"attila/internal/mem"
)

// CommandProcessor controls the whole pipeline (paper §2.2 and §4):
// it consumes the command stream produced by the driver (render a
// batch, write a buffer from system memory, fast clear the color or
// depth-stencil buffers, swap the color buffers), pipelines buffer
// writes and state changes with batch rendering, and overlaps the
// geometry phase of one batch with the fragment phase of the
// previous one.
type CommandProcessor struct {
	core.BoxBase
	cfg  *Config
	port *mem.Port

	cmds []Command
	pc   int

	// Buffer write streaming, rate limited by the system bus.
	writing  *CmdBufferWrite
	writeOff int
	busDebt  int

	drawOut *Flow

	active      []*BatchState
	nextBatchID int

	ropzs []*ZStencil
	ropcs []*ColorWrite
	dac   *DAC
	fb    *Framebuffer

	waitClear bool
	waitSwap  bool
	swapState int // 0 flush, 1 dac

	// Render-to-texture sequencing.
	rtt struct {
		active  bool
		stage   int // 0 flush ROPc, 1 switch/stream
		cmdSet  *CmdSetRenderTarget
		clear   *CmdClearColor // RTT clears stream memory directly
		block   int
		tusDone bool
	}
	tus []*TextureUnit

	finished bool

	statCmds    core.Shadow
	statBatches core.Shadow
	statFrames  core.Shadow
	statBytesUp core.Shadow
	statOverlap core.Shadow
}

// NewCommandProcessor builds the box.
func NewCommandProcessor(sim *core.Simulator, cfg *Config, fb *Framebuffer,
	drawOut *Flow, ropzs []*ZStencil, ropcs []*ColorWrite, tus []*TextureUnit, dac *DAC) *CommandProcessor {
	cp := &CommandProcessor{
		cfg: cfg, fb: fb, drawOut: drawOut,
		ropzs: ropzs, ropcs: ropcs, tus: tus, dac: dac,
	}
	cp.Init("CommandProcessor")
	cp.port = mem.NewPort(sim, "CP", 8)
	sim.Stats.ShadowCounter(&cp.statCmds, "CP.commands")
	sim.Stats.ShadowCounter(&cp.statBatches, "CP.batches")
	sim.Stats.ShadowCounter(&cp.statFrames, "CP.frames")
	sim.Stats.ShadowCounter(&cp.statBytesUp, "CP.uploadBytes")
	sim.Stats.ShadowCounter(&cp.statOverlap, "CP.overlapCycles")
	sim.Register(cp)
	return cp
}

// SetCommands loads the command stream (before running).
func (cp *CommandProcessor) SetCommands(cmds []Command) {
	cp.cmds = cmds
	cp.pc = 0
	cp.finished = false
}

// Finished reports completion of every command, with the pipeline
// drained.
func (cp *CommandProcessor) Finished() bool { return cp.finished }

// Frames returns the number of completed frames (swaps).
func (cp *CommandProcessor) Frames() int { return int(cp.statFrames.Value()) }

// Clock implements core.Box.
func (cp *CommandProcessor) Clock(cycle int64) {
	cp.port.Replies(cycle)

	// Retire completed batches in order.
	for len(cp.active) > 0 && cp.active[0].Done() {
		cp.active = cp.active[1:]
	}
	if len(cp.active) >= 2 {
		cp.statOverlap.Inc()
	}

	if cp.writing != nil {
		cp.streamWrite(cycle)
		return
	}
	if cp.waitClear {
		done := true
		for _, z := range cp.ropzs {
			done = done && z.ClearDone()
		}
		for _, c := range cp.ropcs {
			done = done && c.ClearDone()
		}
		if done {
			cp.waitClear = false
			cp.pc++
		}
		return
	}
	if cp.waitSwap {
		cp.stepSwap(cycle)
		return
	}
	if cp.rtt.active {
		cp.stepRTT(cycle)
		return
	}

	if cp.pc >= len(cp.cmds) {
		if len(cp.active) == 0 && cp.port.Outstanding() == 0 {
			cp.finished = true
		}
		return
	}

	switch cmd := cp.cmds[cp.pc].(type) {
	case CmdBufferWrite:
		// Buffer writes pipeline with rendering, but must drain
		// before a draw that could read them starts.
		cp.writing = &cmd
		cp.writeOff = 0
		cp.busDebt = 0
		cp.statCmds.Inc()
	case CmdDraw:
		if !cp.canDraw() {
			return
		}
		b := cp.newBatch(cmd.State)
		if !cp.drawOut.CanSend(cycle, 1) {
			return
		}
		cp.active = append(cp.active, b)
		cp.drawOut.Send(cycle, b)
		cp.statBatches.Inc()
		cp.statCmds.Inc()
		cp.pc++
	case CmdClearColor:
		if !cp.quiet() {
			return
		}
		if cp.fb.override != nil {
			// Offscreen targets are cleared by writing memory so
			// the texture units later read real data (no fast-clear
			// block state survives on a sampleable surface).
			cmdCopy := cmd
			cp.startRTT(nil, &cmdCopy)
			return
		}
		for _, c := range cp.ropcs {
			c.StartClear(cmd.Value)
		}
		cp.waitClear = true
		cp.statCmds.Inc()
	case CmdClearZS:
		if !cp.quiet() {
			return
		}
		value := fragemu.PackDS(fragemu.DepthToFixed(cmd.Depth), cmd.Stencil)
		for _, z := range cp.ropzs {
			z.StartClear(value)
		}
		cp.waitClear = true
		cp.statCmds.Inc()
	case CmdSetRenderTarget:
		if !cp.quiet() {
			return
		}
		cmdCopy := cmd
		cp.startRTT(&cmdCopy, nil)
		return
	case CmdSwap:
		if !cp.quiet() {
			return
		}
		if cp.fb.override != nil {
			panic("gpu: CmdSwap while rendering to a texture; restore the default target first")
		}
		for _, z := range cp.ropzs {
			z.StartFlush()
		}
		for _, c := range cp.ropcs {
			c.StartFlush()
		}
		cp.waitSwap = true
		cp.swapState = 0
		cp.statCmds.Inc()
	default:
		panic(fmt.Sprintf("gpu: unknown command %T", cmd))
	}
}

// quiet reports that no batch is in flight and uploads are drained.
func (cp *CommandProcessor) quiet() bool {
	return len(cp.active) == 0 && cp.port.Outstanding() == 0
}

// canDraw applies the two-phase batch pipelining rule: at most two
// batches in flight, and the previous batch must have finished its
// geometry phase; pending uploads must have reached memory.
func (cp *CommandProcessor) canDraw() bool {
	if cp.port.Outstanding() > 0 {
		return false
	}
	if len(cp.active) >= 2 {
		return false
	}
	if len(cp.active) == 1 && !cp.active[0].GeomDone() {
		return false
	}
	return true
}

func (cp *CommandProcessor) newBatch(st *DrawState) *BatchState {
	cp.nextBatchID++
	b := &BatchState{
		DynObject: core.DynObject{ID: uint64(cp.nextBatchID), Tag: "batch"},
		State:     st,
	}
	// The shader emulators are built eagerly: shader units run on
	// other worker shards and must never mutate shared batch state.
	if st.FragmentProg != nil {
		b.fragEmu = shaderemu.New(st.FragmentProg, st.FragConsts)
	}
	if st.VertexProg != nil {
		b.vtxEmu = shaderemu.New(st.VertexProg, st.VertConsts)
	}
	b.EarlyZ = cp.cfg.EarlyZ && st.EarlyZAllowed()
	// Hierarchical Z is only sound when the depth test culls
	// strictly farther fragments and no stencil update depends on
	// failing fragments (shadow volume passes update stencil on
	// depth fail: HZ-culled tiles would skip those updates).
	hzFunc := st.Depth.Enabled &&
		(st.Depth.Func == fragemu.CmpLess || st.Depth.Func == fragemu.CmpLEqual)
	stencilSafe := !st.Stencil.Enabled ||
		(st.Stencil.SFail == fragemu.StKeep && st.Stencil.DPFail == fragemu.StKeep &&
			(!st.TwoSidedStencil ||
				(st.StencilBack.SFail == fragemu.StKeep && st.StencilBack.DPFail == fragemu.StKeep)))
	b.HZ = cp.cfg.HZEnabled && b.EarlyZ && hzFunc && stencilSafe
	return b
}

// streamWrite feeds one buffer upload through the system bus (paper:
// PCIe-like, SystemBusBW bytes/cycle) into GDDR transactions.
func (cp *CommandProcessor) streamWrite(cycle int64) {
	cp.busDebt += cp.cfg.SystemBusBW
	data := cp.writing.Data
	for cp.writeOff < len(data) {
		n := len(data) - cp.writeOff
		if n > mem.TransactionSize {
			n = mem.TransactionSize
		}
		if cp.busDebt < n || !cp.port.CanIssue() {
			return
		}
		buf := data[cp.writeOff : cp.writeOff+n]
		cp.port.Write(cycle, cp.writing.Addr+uint32(cp.writeOff), buf, 0)
		cp.writeOff += n
		cp.busDebt -= n
		cp.statBytesUp.Add(float64(n))
	}
	cp.writing = nil
	cp.pc++
}

// startRTT begins a render-target switch or an offscreen clear: both
// flush the color caches first so the old target's data reaches
// memory.
func (cp *CommandProcessor) startRTT(set *CmdSetRenderTarget, clear *CmdClearColor) {
	cp.rtt.active = true
	cp.rtt.stage = 0
	cp.rtt.cmdSet = set
	cp.rtt.clear = clear
	cp.rtt.block = 0
	cp.rtt.tusDone = false
	for _, c := range cp.ropcs {
		c.StartFlush()
	}
	cp.statCmds.Inc()
}

func (cp *CommandProcessor) stepRTT(cycle int64) {
	switch cp.rtt.stage {
	case 0:
		for _, c := range cp.ropcs {
			if !c.FlushDone() {
				return
			}
		}
		// Color caches are clean: drop them (the next target's
		// addresses alias nothing stale) and drop the texture caches
		// (they may hold pre-render texel data of the target).
		for _, c := range cp.ropcs {
			c.Cache().InvalidateAll()
		}
		if !cp.rtt.tusDone {
			for _, t := range cp.tus {
				if !t.Quiesce() {
					return
				}
			}
			for _, t := range cp.tus {
				t.Cache().InvalidateAll()
			}
			cp.rtt.tusDone = true
		}
		if cp.rtt.cmdSet != nil {
			if cp.rtt.cmdSet.Default {
				cp.fb.SetOverride(nil)
			} else {
				target := cp.rtt.cmdSet.Target
				cp.fb.SetOverride(&target)
			}
			cp.rtt.active = false
			cp.pc++
			return
		}
		cp.rtt.stage = 1
		fallthrough
	case 1:
		// Stream the clear color into the offscreen target's memory
		// (256-byte blocks through the CP port).
		target := cp.fb.Draw()
		total := target.NumBlocks()
		cp.busDebt += cp.cfg.SystemBusBW * 8 // GPU-side fill, faster than uploads
		const pieces = SurfaceBlockBytes / mem.TransactionSize
		for cp.rtt.block < total {
			// A block is written whole or not at all: partial issue
			// would leave holes in the cleared surface.
			if cp.port.Free() < pieces || cp.busDebt < SurfaceBlockBytes {
				return
			}
			line := make([]byte, SurfaceBlockBytes)
			for i := 0; i < SurfaceBlockBytes; i += 4 {
				copy(line[i:], cp.rtt.clear.Value[:])
			}
			base := target.Base + uint32(cp.rtt.block*SurfaceBlockBytes)
			for off := 0; off < SurfaceBlockBytes; off += mem.TransactionSize {
				cp.port.Write(cycle, base+uint32(off), line[off:off+mem.TransactionSize], 0)
			}
			cp.busDebt -= SurfaceBlockBytes
			cp.rtt.block++
		}
		if cp.port.Outstanding() > 0 {
			return
		}
		cp.rtt.active = false
		cp.pc++
	}
}

func (cp *CommandProcessor) stepSwap(cycle int64) {
	switch cp.swapState {
	case 0:
		for _, z := range cp.ropzs {
			if !z.FlushDone() {
				return
			}
		}
		for _, c := range cp.ropcs {
			if !c.FlushDone() {
				return
			}
		}
		// Flip buffers, then dump the new front buffer.
		cp.fb.Swap()
		cp.dac.StartDump(cp.fb.Front())
		cp.swapState = 1
	case 1:
		if !cp.dac.Done() {
			return
		}
		cp.waitSwap = false
		cp.statFrames.Inc()
		cp.pc++
	}
}
