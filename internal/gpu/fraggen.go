package gpu

import (
	"attila/internal/core"
	"attila/internal/emu/fragemu"
)

// FragmentGenerator traverses the triangle's projected area and
// generates 8x8 fragment tiles (paper §2.2). Two algorithms are
// implemented: the recursive rasterization of McCool [15] (default)
// and a Neon-style tile scanner [16]. Fragments outside the triangle,
// viewport or scissor window are culled at generation.
type FragmentGenerator struct {
	core.BoxBase
	cfg     *Config
	ids     *core.IDSource
	pool    *pipePool
	triIn   *Flow
	tileOut *Flow
	queue   core.FIFO[*SetupTri]

	// Traversal state for the current triangle.
	cur   *SetupTri
	stack []region // recursive descent
	scanX int      // scanline traversal
	scanY int

	statTiles core.Shadow
	statQuads core.Shadow
	statFrags core.Shadow
	statBusy  core.Shadow
}

type region struct {
	x, y, size int
}

// NewFragmentGenerator builds the box.
func NewFragmentGenerator(sim *core.Simulator, cfg *Config, pool *pipePool, triIn, tileOut *Flow) *FragmentGenerator {
	f := &FragmentGenerator{cfg: cfg, ids: &sim.IDs, pool: pool, triIn: triIn, tileOut: tileOut}
	f.Init("FragmentGenerator")
	sim.Stats.ShadowCounter(&f.statTiles, "FGen.tiles")
	sim.Stats.ShadowCounter(&f.statQuads, "FGen.quads")
	sim.Stats.ShadowCounter(&f.statFrags, "FGen.fragments")
	sim.Stats.ShadowCounter(&f.statBusy, "FGen.busyCycles")
	sim.Register(f)
	return f
}

// Clock implements core.Box.
func (f *FragmentGenerator) Clock(cycle int64) {
	for _, obj := range f.triIn.Recv(cycle) {
		f.queue.Push(obj.(*SetupTri))
	}
	if f.cur == nil {
		if f.queue.Len() == 0 {
			return
		}
		f.cur = f.queue.Pop()
		f.triIn.Release(1)
		f.startTraversal()
	}
	// Process up to FGenTilesPerCycle tile candidates. Busy counts
	// cycles where traversal advanced; a cycle spent blocked on a full
	// tile output is a stall and must not inflate utilization.
	worked := false
	for n := 0; n < f.cfg.FGenTilesPerCycle && f.cur != nil; {
		if !f.tileOut.CanSend(cycle, 1) {
			break
		}
		x, y, ok := f.nextTile()
		worked = true
		if !ok {
			f.cur.Batch.TrisRetired++
			f.cur = nil
			break
		}
		n++
		tile := f.buildTile(x, y)
		if tile != nil {
			f.tileOut.Send(cycle, tile)
			f.statTiles.Inc()
		}
	}
	if worked {
		f.statBusy.Inc()
	}
}

func (f *FragmentGenerator) startTraversal() {
	tri := &f.cur.Tri
	if f.cfg.FGenAlgorithm == FGenScanline {
		f.scanX = tri.MinX &^ (SurfaceTile - 1)
		f.scanY = tri.MinY &^ (SurfaceTile - 1)
		return
	}
	// Recursive: start from the smallest power-of-two aligned region
	// covering the bounding box.
	size := SurfaceTile
	for {
		x0 := tri.MinX &^ (size - 1)
		y0 := tri.MinY &^ (size - 1)
		if x0+size > tri.MaxX && y0+size > tri.MaxY {
			f.stack = append(f.stack[:0], region{x0, y0, size})
			return
		}
		size *= 2
	}
}

// nextTile returns the next candidate 8x8 tile, consuming traversal
// state; ok=false when the triangle is fully traversed.
func (f *FragmentGenerator) nextTile() (x, y int, ok bool) {
	tri := &f.cur.Tri
	if f.cfg.FGenAlgorithm == FGenScanline {
		for f.scanY <= tri.MaxY {
			x, y = f.scanX, f.scanY
			f.scanX += SurfaceTile
			if f.scanX > tri.MaxX {
				f.scanX = tri.MinX &^ (SurfaceTile - 1)
				f.scanY += SurfaceTile
			}
			if tri.TileIntersects(x, y, SurfaceTile) {
				return x, y, true
			}
		}
		return 0, 0, false
	}
	for len(f.stack) > 0 {
		r := f.stack[len(f.stack)-1]
		f.stack = f.stack[:len(f.stack)-1]
		if !tri.TileIntersects(r.x, r.y, r.size) {
			continue
		}
		if r.size == SurfaceTile {
			return r.x, r.y, true
		}
		h := r.size / 2
		f.stack = append(f.stack,
			region{r.x + h, r.y + h, h},
			region{r.x, r.y + h, h},
			region{r.x + h, r.y, h},
			region{r.x, r.y, h},
		)
	}
	return 0, 0, false
}

// buildTile evaluates coverage for the 8x8 tile and returns it with
// its live quads, or nil when nothing is covered.
func (f *FragmentGenerator) buildTile(x0, y0 int) *Tile {
	st := f.cur.Batch.State
	tri := &f.cur.Tri
	tile := f.pool.getTile()
	tile.DynObject = core.DynObject{ID: f.ids.Next(), Parent: f.cur.ID, Tag: "tile"}
	tile.Batch = f.cur.Batch
	tile.Tri = f.cur
	tile.X = x0
	tile.Y = y0
	for qy := 0; qy < SurfaceTile; qy += 2 {
		for qx := 0; qx < SurfaceTile; qx += 2 {
			var q *Quad
			for l := 0; l < 4; l++ {
				px := x0 + qx + l%2
				py := y0 + qy + l/2
				if !f.covered(st, px, py) {
					continue
				}
				e := tri.EvalEdges(px, py)
				if !tri.Inside(e) {
					continue
				}
				if q == nil {
					q = f.pool.getQuad()
					q.DynObject = core.DynObject{ID: f.ids.Next(), Parent: tile.ID, Tag: "quad"}
					q.Batch = f.cur.Batch
					q.Tri = f.cur
					q.X = x0 + qx
					q.Y = y0 + qy
				}
				q.Mask[l] = true
				q.Depth[l] = fragemu.DepthToFixed(tri.Depth(px, py))
				f.statFrags.Inc()
			}
			if q != nil {
				tile.Quads = append(tile.Quads, q)
			}
		}
	}
	if len(tile.Quads) == 0 {
		f.pool.putTile(tile)
		return nil
	}
	minD := tri.TileMinDepth(x0, y0, SurfaceTile)
	tile.MinDepth = fragemu.DepthToFixed(minD)
	f.cur.Batch.QuadsIn += len(tile.Quads)
	f.statQuads.Add(float64(len(tile.Quads)))
	return tile
}

// covered applies the viewport and scissor rectangle tests.
func (f *FragmentGenerator) covered(st *DrawState, x, y int) bool {
	vp := st.Viewport
	if x < vp.X || y < vp.Y || x >= vp.X+vp.W || y >= vp.Y+vp.H {
		return false
	}
	if st.ScissorEnabled {
		if x < st.ScissorX || y < st.ScissorY ||
			x >= st.ScissorX+st.ScissorW || y >= st.ScissorY+st.ScissorH {
			return false
		}
	}
	return true
}
