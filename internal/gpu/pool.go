package gpu

// pipePool recycles the high-churn fragment-pipeline objects — tiles,
// quads and shader-work wrappers, the bulk of the simulator's per-
// frame heap traffic. Every allocation and release site lives on a
// box the pipeline pins to the "pipe" worker shard, so the free lists
// need no locking even under Workers>1.
//
// Ownership and release rules (see DESIGN.md §10):
//
//   - The FragmentGenerator allocates tiles and quads (buildTile).
//   - HierarchicalZ releases each tile once it has culled or
//     forwarded the tile's quads.
//   - A quad is released at exactly one of its four terminal sites,
//     the places that account it in Batch.QuadsRetired: HZ cull,
//     Z/stencil cull, every-lane-killed in the FragmentFIFO's route,
//     or ColorWrite retire.
//   - The FragmentFIFO allocates one ShaderWork wrapper per arriving
//     thread input and releases it after routing the completed thread.
//
// A recycled object is fully zeroed before reuse, so pooling is
// invisible to the simulation: results and statistics are
// bit-identical with the pool disabled. Chaos faults that drop or
// corrupt objects in flight simply leak them — the pool allocates
// replacements on demand. Checkpoints only happen at quiesced
// command boundaries with no objects in flight, so free lists carry
// no simulation state and are not serialized; after a restore they
// start empty and refill.
type pipePool struct {
	quads []*Quad
	tiles []*Tile
	works []*ShaderWork
}

func (p *pipePool) getQuad() *Quad {
	if n := len(p.quads); n > 0 {
		q := p.quads[n-1]
		p.quads = p.quads[:n-1]
		*q = Quad{}
		return q
	}
	return &Quad{}
}

// putQuad returns a retired quad. The caller must hold the only
// reference (quad popped from its input queue, credit released).
func (p *pipePool) putQuad(q *Quad) { p.quads = append(p.quads, q) }

func (p *pipePool) getTile() *Tile {
	if n := len(p.tiles); n > 0 {
		t := p.tiles[n-1]
		p.tiles = p.tiles[:n-1]
		qs := t.Quads[:0]
		*t = Tile{}
		t.Quads = qs // keep the slice's backing array across reuses
		return t
	}
	return &Tile{}
}

// putTile returns a processed tile. The tile's quads are owned by
// their own release sites and are not touched here.
func (p *pipePool) putTile(t *Tile) { p.tiles = append(p.tiles, t) }

func (p *pipePool) getWork() *ShaderWork {
	if n := len(p.works); n > 0 {
		w := p.works[n-1]
		p.works = p.works[:n-1]
		*w = ShaderWork{}
		return w
	}
	return &ShaderWork{}
}

// putWork returns a routed ShaderWork wrapper.
func (p *pipePool) putWork(w *ShaderWork) { p.works = append(p.works, w) }
