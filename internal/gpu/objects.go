package gpu

import (
	"attila/internal/core"
	"attila/internal/emu/fragemu"
	"attila/internal/emu/rastemu"
	"attila/internal/emu/shaderemu"
	"attila/internal/emu/texemu"
	"attila/internal/isa"
	"attila/internal/vmath"
)

// PrimMode is an OpenGL primitive assembly mode; the paper's pipeline
// supports triangle lists, strips and fans plus quad lists and strips
// (quads are assembled as two triangles).
type PrimMode uint8

// Primitive modes.
const (
	Triangles PrimMode = iota
	TriangleStrip
	TriangleFan
	Quads
	QuadStrip
)

// String names the mode.
func (m PrimMode) String() string {
	switch m {
	case Triangles:
		return "triangles"
	case TriangleStrip:
		return "tristrip"
	case TriangleFan:
		return "trifan"
	case Quads:
		return "quads"
	case QuadStrip:
		return "quadstrip"
	}
	return "prim?"
}

// AttribBinding describes one vertex input attribute: either a
// constant value or an array in GPU memory of Size float32 components
// per vertex at the given stride.
type AttribBinding struct {
	Enabled bool
	Const   vmath.Vec4 // used when not Enabled
	Addr    uint32
	Stride  uint32
	Size    int // components 1..4
}

// DrawState is the complete render-state snapshot captured with each
// draw command, so state changes pipeline freely with batch rendering
// (paper §2.2 command processor).
type DrawState struct {
	VertexProg   *isa.Program
	FragmentProg *isa.Program
	VertConsts   []vmath.Vec4
	FragConsts   []vmath.Vec4

	Viewport       rastemu.Viewport
	ScissorEnabled bool
	ScissorX       int
	ScissorY       int
	ScissorW       int
	ScissorH       int
	CullFront      bool
	CullBack       bool

	Depth   fragemu.DepthState
	Stencil fragemu.StencilState
	// TwoSidedStencil applies StencilBack to back-facing triangles
	// (the paper lists double-sided stencil as future work; it lets
	// shadow volumes render in a single pass).
	TwoSidedStencil bool
	StencilBack     fragemu.StencilState
	Blend           fragemu.BlendState
	ColorMask       [4]bool

	Textures [16]*texemu.Texture

	Attribs   [isa.MaxInputs]AttribBinding
	IndexAddr uint32 // 0 means sequential indices
	IndexSize int    // bytes per index (2 or 4)
	First     int    // first index/vertex
	Count     int    // vertices in the batch
	Primitive PrimMode
}

// EarlyZAllowed reports whether Z and stencil may run before shading
// for this state: the fragment program must not modify depth and must
// not kill fragments (the alpha-test replacement), per §2.1.
func (s *DrawState) EarlyZAllowed() bool {
	if s.FragmentProg == nil {
		return true
	}
	if s.FragmentProg.HasKill() {
		return false
	}
	return s.FragmentProg.Outputs()&(1<<isa.FragOutDepth) == 0
}

// InterpAttrs returns the bitmask of fragment input attributes the
// interpolator must produce (the fragment program's inputs).
func (s *DrawState) InterpAttrs() uint32 {
	if s.FragmentProg == nil {
		return 0
	}
	return s.FragmentProg.Inputs()
}

// Command is one entry of the command stream the CPU (trace player)
// feeds to the Command Processor.
type Command interface{ isCommand() }

// CmdBufferWrite uploads data from system memory into GPU memory,
// consuming system bus and GDDR bandwidth.
type CmdBufferWrite struct {
	Addr uint32
	Data []byte
}

// CmdDraw renders one batch with a full state snapshot.
type CmdDraw struct {
	State *DrawState
}

// CmdClearColor fast-clears the color buffer.
type CmdClearColor struct {
	Value [4]byte
}

// CmdClearZS fast-clears the depth-stencil buffer.
type CmdClearZS struct {
	Depth   float32
	Stencil uint8
}

// CmdSwap finishes the frame: caches are flushed and the DAC dumps
// the color buffer.
type CmdSwap struct{}

// CmdSetRenderTarget redirects color writes to an offscreen surface
// (render to texture — an RGBA8 texture level shares the framebuffer
// block layout, so its memory doubles as a color buffer). Default
// restores the window's back buffer. The command processor drains the
// pipeline, flushes the color caches and invalidates the texture
// caches at the switch so subsequent sampling sees the rendered data.
type CmdSetRenderTarget struct {
	Default bool
	Target  SurfaceLayout
}

func (CmdBufferWrite) isCommand()     {}
func (CmdDraw) isCommand()            {}
func (CmdClearColor) isCommand()      {}
func (CmdClearZS) isCommand()         {}
func (CmdSwap) isCommand()            {}
func (CmdSetRenderTarget) isCommand() {}

// BatchState tracks one draw through the pipeline. All boxes share
// the pointer; counters retire the batch when every vertex, triangle
// and fragment quad is accounted for. The counters are mutated by the
// fixed-pipeline boxes only, which the pipeline pins to one worker
// shard ("pipe"); shader and texture units treat the batch as
// read-only (the emulators are created eagerly by the command
// processor), which is what lets them run on other shards.
type BatchState struct {
	core.DynObject
	State *DrawState

	// Derived per-batch decisions.
	EarlyZ bool // Z/stencil before shading on this batch
	HZ     bool // Hierarchical Z test usable

	// Vertex accounting.
	VtxIssued    int // streamer issued (cache hits + shader returns)
	VtxConsumed  int // primitive assembly consumed
	StreamerDone bool
	PADone       bool // primitive assembly consumed the whole batch

	// Triangle accounting.
	TrisIn      int // emitted by primitive assembly
	TrisRetired int // rejected by clip/setup or fully traversed

	// Quad accounting.
	QuadsIn      int // emitted by the fragment generator
	QuadsRetired int // culled or written to the framebuffer

	ShadedQuads   int
	ShadedVerts   int
	KilledQuads   int
	HZCulledQuads int
	ZCulledQuads  int

	// Per-batch shader emulators, created lazily and shared by all
	// threads of the batch.
	fragEmu *shaderemu.Emulator
	vtxEmu  *shaderemu.Emulator
}

// GeomDone reports the end of the geometry phase (through primitive
// assembly), the point at which the next batch may enter it.
func (b *BatchState) GeomDone() bool { return b.StreamerDone && b.PADone }

// Done reports full retirement of the batch.
func (b *BatchState) Done() bool {
	return b.GeomDone() &&
		b.TrisRetired == b.TrisIn &&
		b.QuadsRetired == b.QuadsIn
}

// SetupTri is a triangle after setup: the rasterizer equations plus
// the three shaded vertices' attributes for interpolation.
type SetupTri struct {
	core.DynObject
	Batch *BatchState
	Tri   rastemu.Triangle
	// Attr[slot][vertex] ordering is chosen for the interpolator's
	// access pattern.
	Attr [isa.MaxOutputs][3]vmath.Vec4
}

// Tile is an 8x8 fragment tile ("stamp" pair of the generator): the
// generator emits up to two per cycle. Quads lists the covered 2x2
// quads with per-fragment coverage and depth already evaluated.
type Tile struct {
	core.DynObject
	Batch *BatchState
	Tri   *SetupTri
	X, Y  int
	Quads []*Quad
	// MinDepth is the conservative tile depth bound for HZ.
	MinDepth uint32
}

// Quad is the 2x2 fragment work unit of the fragment pipeline
// (§2.2).
type Quad struct {
	core.DynObject
	Batch *BatchState
	Tri   *SetupTri
	X, Y  int // origin (even coordinates)
	// Per-fragment state; lane l covers pixel (X+l%2, Y+l/2).
	Mask  [4]bool // fragment alive
	Depth [4]uint32
	// In carries interpolated fragment inputs (filled by the
	// Interpolator box); Color carries the shaded output color.
	In    [4][isa.MaxInputs]vmath.Vec4
	Color [4]vmath.Vec4
	ZDone bool // depth/stencil already performed (early Z)

	// srcFlow remembers which input flow carried the quad into the
	// consuming box so its credit is returned on retirement.
	srcFlow *Flow
}

// Alive reports whether any fragment in the quad is still live.
func (q *Quad) Alive() bool {
	return q.Mask[0] || q.Mask[1] || q.Mask[2] || q.Mask[3]
}

// VtxGroup is a group of up to four vertices shaded as one thread in
// the unified model.
type VtxGroup struct {
	core.DynObject
	Batch *BatchState
	Seq   [4]int    // streamer sequence numbers
	Index [4]uint32 // original vertex indices (vertex cache keys)
	Count int
	In    [4][isa.MaxInputs]vmath.Vec4
	Out   [4][isa.MaxOutputs]vmath.Vec4
}

// shaderLanes is the number of shader inputs processed in lockstep
// per thread (one fragment quad or four vertices).
const shaderLanes = 4

// ShadedVertex is one post-shading vertex on its way to primitive
// assembly.
type ShadedVertex struct {
	core.DynObject
	Batch *BatchState
	Seq   int
	Out   [isa.MaxOutputs]vmath.Vec4
}

// TriWork is an assembled triangle (three shaded vertices) flowing
// from primitive assembly through the clipper to setup.
type TriWork struct {
	core.DynObject
	Batch *BatchState
	V     [3]*ShadedVertex
}

// Flow pairs a signal with a credit count so producers observe
// consumer queue backpressure: Send consumes a credit, the consumer
// returns it with Release when the item leaves its input queue. Flow
// also tracks the signal's per-cycle bandwidth so producers can ask
// "may I send now" with CanSend instead of tripping the signal's
// bandwidth check.
//
// Released credits take effect at the end of the cycle, not
// immediately: Release accumulates into a consumer-side count that
// EndCycle folds into the producer-visible credit pool at the
// simulator's cycle barrier. This makes the credit protocol
// independent of box clocking order (a producer clocked after its
// consumer no longer sees same-cycle releases early) and race-free
// when producer and consumer are clocked on different worker shards.
// Flows built by the pipeline register EndCycle with
// core.Simulator.OnEndCycle; standalone harnesses must drive it
// themselves (e.g. via Simulator.EndCycle).
type Flow struct {
	sig       *core.Signal
	cap       int   // total credits (consumer queue capacity)
	credits   int   // producer-visible pool (producer side)
	released  int   // returned this cycle, folded at the barrier (consumer side)
	sentCycle int64 // producer side
	sentCount int
}

// NewFlow wraps a provided signal with capacity credits (typically
// the consumer's input queue size from Table 1).
func NewFlow(sig *core.Signal, capacity int) *Flow {
	return &Flow{sig: sig, cap: capacity, credits: capacity, sentCycle: -1}
}

// QueueStat reports the flow's credit occupancy from the producer's
// view: Occupied credits are held downstream (items on the wire or in
// the consumer's input queue). Occupied == Capacity in a deadlock
// report reads "the consumer absorbed everything and released
// nothing". Boxes include their output flows in core.StallReporter
// snapshots; read only at the cycle barrier.
func (f *Flow) QueueStat() core.QueueStat {
	return core.QueueStat{Name: f.sig.Name(), Occupied: f.cap - f.credits, Capacity: f.cap}
}

// CanSend reports whether n more objects can be sent this cycle: the
// consumer queue has room and the wire has bandwidth left.
func (f *Flow) CanSend(cycle int64, n int) bool {
	if f.credits < n {
		return false
	}
	used := 0
	if cycle == f.sentCycle {
		used = f.sentCount
	}
	return used+n <= f.sig.Bandwidth()
}

func (f *Flow) note(cycle int64) {
	if cycle != f.sentCycle {
		f.sentCycle = cycle
		f.sentCount = 0
	}
	if f.credits <= 0 || f.sentCount >= f.sig.Bandwidth() {
		panic("gpu: Flow send without credit/bandwidth: producer must check CanSend")
	}
	f.credits--
	f.sentCount++
}

// Send writes an object, consuming one credit.
func (f *Flow) Send(cycle int64, obj core.Dynamic) {
	f.note(cycle)
	f.sig.Write(cycle, obj)
}

// SendLat writes an object with an explicit latency (variable-latency
// pipelines such as the interpolator), consuming one credit.
func (f *Flow) SendLat(cycle int64, obj core.Dynamic, lat int) {
	f.note(cycle)
	f.sig.WriteLat(cycle, lat, obj)
}

// Recv reads the objects arriving this cycle (they occupy credits
// until Release).
func (f *Flow) Recv(cycle int64) []core.Dynamic { return f.sig.Read(cycle) }

// Release returns n credits after the consumer retires items from
// its input queue. The credits become visible to the producer at the
// next cycle barrier.
func (f *Flow) Release(n int) { f.released += n }

// EndCycle folds released credits into the producer-visible pool. It
// runs at the simulator's cycle barrier (core.EndCycleFunc).
func (f *Flow) EndCycle(cycle int64) {
	f.credits += f.released
	f.released = 0
}

// SurfaceLayout maps framebuffer pixels to tiled GPU memory: 8x8
// pixel blocks of 4 bytes per pixel, one block per 256-byte cache
// line, blocks stored row major (the third tiling level of §2.2).
type SurfaceLayout struct {
	Base   uint32
	W, H   int
	tilesX int
}

// SurfaceTile is the framebuffer block edge in pixels.
const SurfaceTile = 8

// SurfaceBlockBytes is the memory footprint of one block.
const SurfaceBlockBytes = SurfaceTile * SurfaceTile * 4

// NewSurfaceLayout builds the layout for a w x h surface at base.
func NewSurfaceLayout(base uint32, w, h int) SurfaceLayout {
	return SurfaceLayout{Base: base, W: w, H: h, tilesX: (w + SurfaceTile - 1) / SurfaceTile}
}

// BlockAddr returns the memory address of the block containing pixel
// (x, y) — the cache line key.
func (s SurfaceLayout) BlockAddr(x, y int) uint32 {
	bx, by := x/SurfaceTile, y/SurfaceTile
	return s.Base + uint32((by*s.tilesX+bx)*SurfaceBlockBytes)
}

// BlockIndex returns the block ordinal for block-state tables.
func (s SurfaceLayout) BlockIndex(x, y int) int {
	return (y/SurfaceTile)*s.tilesX + x/SurfaceTile
}

// Offset returns the pixel's byte offset within its block.
func (s SurfaceLayout) Offset(x, y int) int {
	return ((y%SurfaceTile)*SurfaceTile + x%SurfaceTile) * 4
}

// NumBlocks returns the total block count.
func (s SurfaceLayout) NumBlocks() int {
	tilesY := (s.H + SurfaceTile - 1) / SurfaceTile
	return s.tilesX * tilesY
}

// Bytes returns the surface's memory footprint.
func (s SurfaceLayout) Bytes() int { return s.NumBlocks() * SurfaceBlockBytes }
