package gpu

import (
	"fmt"
	"testing"

	"attila/internal/core"
	"attila/internal/isa"
	"attila/internal/vmath"
)

// paHarness drives a PrimAssembly box standalone.
type paHarness struct {
	sim   *core.Simulator
	pa    *PrimAssembly
	in    *Flow
	out   *Flow
	tris  [][3]int
	batch *BatchState
}

func newPAHarness(t *testing.T, mode PrimMode, count int) *paHarness {
	t.Helper()
	sim := core.NewSimulator(0)
	in := pFlow(sim, "src", "PrimAssembly", "Streamer.VtxOut", 1, 1, 0, 8)
	out := pFlow(sim, "PrimAssembly", "sink", "PA.TriOut", 1, 1, 0, 1024)
	h := &paHarness{sim: sim, in: in, out: out}
	h.pa = NewPrimAssembly(sim, in, out)
	h.batch = &BatchState{State: &DrawState{Primitive: mode, Count: count}}
	return h
}

// run feeds count vertices (seq as payload) and collects emitted
// triangles as ordinal triples.
func (h *paHarness) run(t *testing.T, count int) [][3]int {
	t.Helper()
	seq := 0
	ids := &h.sim.IDs
	for cycle := int64(0); cycle < int64(count*4+64); cycle++ {
		if seq < count && h.in.CanSend(cycle, 1) {
			sv := &ShadedVertex{
				DynObject: core.DynObject{ID: ids.Next()},
				Batch:     h.batch, Seq: seq,
			}
			h.in.Send(cycle, sv)
			seq++
		}
		h.pa.Clock(cycle)
		for _, obj := range h.out.Recv(cycle) {
			tw := obj.(*TriWork)
			h.out.Release(1)
			h.tris = append(h.tris, [3]int{tw.V[0].Seq, tw.V[1].Seq, tw.V[2].Seq})
		}
		// Manual harness: run the cycle barrier so released flow
		// credits become visible to the producer next cycle.
		h.sim.EndCycle(cycle)
	}
	return h.tris
}

// The PrimAssembly box must emit exactly the triangles of the pure
// TriangleIndices decomposition (used by the reference renderer), in
// the same order and winding, for every primitive mode.
func TestPrimAssemblyMatchesTriangleIndices(t *testing.T) {
	for _, mode := range []PrimMode{Triangles, TriangleStrip, TriangleFan, Quads, QuadStrip} {
		for _, count := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 11, 16} {
			h := newPAHarness(t, mode, count)
			got := h.run(t, count)
			want := TriangleIndices(mode, count)
			if len(got) != len(want) {
				t.Fatalf("%v count=%d: box emitted %d tris, pure %d (%v vs %v)",
					mode, count, len(got), len(want), got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v count=%d tri %d: box %v pure %v", mode, count, i, got[i], want[i])
				}
			}
			if count > 0 && !h.batch.PADone {
				t.Fatalf("%v count=%d: PADone not set", mode, count)
			}
		}
	}
}

func TestTriangleIndicesCounts(t *testing.T) {
	cases := []struct {
		mode  PrimMode
		count int
		tris  int
	}{
		{Triangles, 9, 3},
		{Triangles, 10, 3}, // trailing partial dropped
		{TriangleStrip, 7, 5},
		{TriangleFan, 7, 5},
		{Quads, 8, 4},
		{Quads, 11, 4},
		{QuadStrip, 8, 6},
	}
	for _, c := range cases {
		if got := len(TriangleIndices(c.mode, c.count)); got != c.tris {
			t.Errorf("%v x%d: %d tris, want %d", c.mode, c.count, got, c.tris)
		}
	}
}

// Both fragment generator algorithms must produce identical images
// and identical quad counts (they traverse in different orders but
// cover the same fragments).
func TestFragmentGeneratorAlgorithmsEquivalent(t *testing.T) {
	render := func(alg FGenAlgorithm) (*Frame, float64) {
		cfg := BaselineUnified()
		cfg.StatInterval = 0
		cfg.FGenAlgorithm = alg
		p, err := New(cfg, 64, 64)
		if err != nil {
			t.Fatal(err)
		}
		red := vmath.Vec4{1, 0, 0, 1}
		blue := vmath.Vec4{0, 0, 1, 1}
		st, vbuf := testState(t, p, 6)
		verts := buildVerts(
			vtx(-0.9, -0.8, 0.2, red), vtx(0.8, -0.7, 0.2, red), vtx(0.1, 0.9, 0.2, red),
			vtx(-0.5, -0.9, 0.1, blue), vtx(0.9, 0.2, 0.1, blue), vtx(-0.7, 0.6, 0.1, blue),
		)
		cmds := []Command{
			CmdBufferWrite{Addr: vbuf, Data: verts},
			CmdClearZS{Depth: 1, Stencil: 0},
			CmdClearColor{Value: [4]byte{0, 0, 0, 255}},
			CmdDraw{State: st},
			CmdSwap{},
		}
		if err := p.Run(cmds, 5_000_000); err != nil {
			t.Fatal(err)
		}
		return p.Frames()[0], p.Sim.Stats.Lookup("FGen.quads").Value()
	}
	fRec, qRec := render(FGenRecursive)
	fScan, qScan := render(FGenScanline)
	if diff, _ := DiffFrames(fRec, fScan); diff != 0 {
		t.Fatalf("algorithms render differently: %d px", diff)
	}
	if qRec != qScan {
		t.Fatalf("quad counts differ: recursive %v scanline %v", qRec, qScan)
	}
}

func TestConfigValidation(t *testing.T) {
	good := Baseline()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NumShaders = 0 },
		func(c *Config) { c.NumROPs = 0 },
		func(c *Config) { c.NumTextureUnits = 0 },
		func(c *Config) { c.UnifiedShaders = false; c.NumVertexShaders = 0 },
		func(c *Config) { c.ROPFragsPerCycle = 2 },
		func(c *Config) { c.Memory.Channels = 0 },
		func(c *Config) { c.GPUMemBytes = 1024 },
	}
	for i, mod := range bad {
		cfg := Baseline()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestConfigPresets(t *testing.T) {
	for _, cfg := range []Config{
		Baseline(), BaselineUnified(), CaseStudy(3, ScheduleWindow),
		CaseStudy(1, ScheduleInOrderQueue), Embedded(), HighEnd(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	cs := CaseStudy(2, ScheduleInOrderQueue)
	if cs.NumTextureUnits != 2 || cs.Schedule != ScheduleInOrderQueue ||
		cs.NumShaders != 3 || cs.NumROPs != 1 || cs.Memory.Channels != 2 {
		t.Fatalf("case study config wrong: %+v", cs)
	}
}

func TestSurfaceLayout(t *testing.T) {
	l := NewSurfaceLayout(1024, 64, 48)
	if l.NumBlocks() != 8*6 {
		t.Fatalf("blocks: %d", l.NumBlocks())
	}
	if l.Bytes() != 48*256 {
		t.Fatalf("bytes: %d", l.Bytes())
	}
	// Pixels in the same 8x8 tile share a block address.
	if l.BlockAddr(0, 0) != l.BlockAddr(7, 7) {
		t.Fatal("tile pixels in different blocks")
	}
	if l.BlockAddr(7, 7) == l.BlockAddr(8, 7) {
		t.Fatal("adjacent tiles share a block")
	}
	// Offsets distinct within a tile and 4-byte aligned.
	seen := map[int]bool{}
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			off := l.Offset(x, y)
			if off%4 != 0 || off < 0 || off >= 256 || seen[off] {
				t.Fatalf("bad offset %d at (%d,%d)", off, x, y)
			}
			seen[off] = true
		}
	}
	// BlockIndex covers the whole surface injectively per tile.
	if l.BlockIndex(63, 47) != 8*6-1 {
		t.Fatalf("last block index: %d", l.BlockIndex(63, 47))
	}
}

func TestFlowCreditAccounting(t *testing.T) {
	sim := core.NewSimulator(0)
	f := pFlow(sim, "a", "b", "x", 2, 1, 0, 3)
	var ids core.IDSource
	mk := func() core.Dynamic {
		return &ShadedVertex{DynObject: core.DynObject{ID: ids.Next()}}
	}
	if !f.CanSend(0, 2) {
		t.Fatal("fresh flow refuses credits")
	}
	// A burst above the wire bandwidth is refused even with credits.
	if f.CanSend(0, 3) {
		t.Fatal("bandwidth not limiting burst size")
	}
	f.Send(0, mk())
	f.Send(0, mk())
	if f.CanSend(0, 1) {
		t.Fatal("bandwidth not enforced by CanSend")
	}
	// Next cycle the wire is free but only 1 credit remains.
	if !f.CanSend(1, 1) || f.CanSend(1, 2) {
		t.Fatal("credit accounting wrong")
	}
	f.Send(1, mk())
	if f.CanSend(2, 1) {
		t.Fatal("credits not exhausted")
	}
	// Releases are deferred: they fold into the producer-visible
	// credit pool at the cycle barrier, not the instant Release runs
	// (that is what makes box clocking order irrelevant).
	f.Release(2)
	if f.CanSend(2, 1) {
		t.Fatal("release visible before the cycle barrier")
	}
	f.EndCycle(2)
	if !f.CanSend(2, 2) {
		t.Fatal("release did not restore credits after the barrier")
	}
}

func TestEarlyZDecision(t *testing.T) {
	plain := isa.MustAssemble(isa.FragmentProgram, "p", "MOV o0, v1\nEND")
	killer := isa.MustAssemble(isa.FragmentProgram, "k", "KIL v1\nMOV o0, v1\nEND")
	depthW := isa.MustAssemble(isa.FragmentProgram, "d", "MOV o0, v1\nMOV o1.x, v0.z\nEND")
	if !(&DrawState{FragmentProg: plain}).EarlyZAllowed() {
		t.Fatal("plain program should allow early Z")
	}
	if (&DrawState{FragmentProg: killer}).EarlyZAllowed() {
		t.Fatal("KIL program must disable early Z")
	}
	if (&DrawState{FragmentProg: depthW}).EarlyZAllowed() {
		t.Fatal("depth-writing program must disable early Z")
	}
}

func TestHZDecisionForShadowVolumes(t *testing.T) {
	// Stencil ops that update on depth fail must disable HZ even
	// with a LESS depth test (the shadow volume correctness rule).
	cfg := BaselineUnified()
	p, err := New(cfg, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := testState(t, p, 3)
	st.Stencil.Enabled = true
	st.Stencil.DPFail = 4 // StIncr
	b := p.CP.newBatch(st)
	if b.HZ {
		t.Fatal("HZ enabled for depth-fail stencil updates")
	}
	st2, _ := testState(t, p, 3)
	b2 := p.CP.newBatch(st2)
	if !b2.HZ {
		t.Fatal("HZ disabled for a plain LESS depth test")
	}
}

func TestPipelineString(t *testing.T) {
	p, err := New(BaselineUnified(), 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	s := fmt.Sprintf("%v", p)
	if s == "" {
		t.Fatal("empty description")
	}
}
