package gpu

import (
	"errors"
	"testing"

	"attila/internal/core"
)

// creditProducer pushes work through a Flow while credits last; once
// the consumer stops releasing, it goes silent — the GPU pipeline's
// deadlock signature.
type creditProducer struct {
	core.BoxBase
	out  *Flow
	ids  *core.IDSource
	sent int
}

func (p *creditProducer) Clock(cycle int64) {
	if p.out.CanSend(cycle, 1) {
		p.sent++
		p.out.Send(cycle, &core.DynObject{ID: p.ids.Next(), Tag: "work"})
	}
}

// Queues implements core.StallReporter via the output flow's credit
// pool, exactly how the pipeline boxes report.
func (p *creditProducer) Queues() []core.QueueStat {
	return []core.QueueStat{p.out.QueueStat()}
}

// creditHoarder receives work but never calls Release: a consumer bug
// (or a lost retirement) that starves the producer forever.
type creditHoarder struct {
	core.BoxBase
	in   *Flow
	held int
}

func (h *creditHoarder) Clock(cycle int64) {
	h.held += len(h.in.Recv(cycle))
}

// A consumer that withholds Flow credits must trip the watchdog with
// a report naming the starved producer and its fully-absorbed credit
// pool — in serial and parallel mode — instead of burning the cycle
// budget.
func TestFlowCreditDeadlockDetected(t *testing.T) {
	for _, workers := range []int{0, 2} {
		sim := core.NewSimulator(0)
		f := pFlow(sim, "Prod", "Hoard", "prod.work", 1, 1, 0, 4)
		p := &creditProducer{out: f, ids: &sim.IDs}
		p.Init("Prod")
		h := &creditHoarder{in: f}
		h.Init("Hoard")
		sim.Register(p)
		sim.Register(h)
		sim.SetWorkers(workers)
		sim.SetWatchdog(50)
		sim.SetDone(func() bool { return false })

		err := sim.Run(1_000_000)
		if errors.Is(err, core.ErrCycleLimit) {
			t.Fatalf("workers=%d: credit deadlock spun to the cycle limit", workers)
		}
		var de *core.DeadlockError
		if !errors.As(err, &de) {
			t.Fatalf("workers=%d: want deadlock report, got %v", workers, err)
		}
		if h.held != 4 || p.sent != 4 {
			t.Fatalf("workers=%d: flow moved %d/%d objects, want all 4 credits consumed", workers, p.sent, h.held)
		}
		var found bool
		for _, b := range de.Report.Boxes {
			if b.Name != "Prod" {
				continue
			}
			for _, q := range b.Queues {
				if q.Name == "prod.work" && q.Occupied == 4 && q.Capacity == 4 {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("workers=%d: report does not show Prod's prod.work credits at 4/4: %+v",
				workers, de.Report.Boxes)
		}
		// Detection latency: last send at cycle 3, window 50.
		if c := sim.Cycle(); c > 100 {
			t.Fatalf("workers=%d: watchdog fired only at cycle %d", workers, c)
		}
	}
}

// A pipeline built with WatchdogWindow=0 must not arm the watchdog
// (presets default to disabled so results stay bit-identical), and
// the Config knob must reach the simulator when set.
func TestConfigWatchdogWiring(t *testing.T) {
	cfg := Baseline()
	cfg.GPUMemBytes = 8 << 20
	cfg.WatchdogWindow = 1000
	pipe, err := New(cfg, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	// An empty command stream finishes immediately; the armed watchdog
	// must not misfire on a healthy (if trivial) run.
	if err := pipe.Run(nil, 10_000); err != nil {
		t.Fatalf("armed watchdog broke a clean run: %v", err)
	}
}

// The pipeline's own boxes satisfy the reporting interfaces, so real
// deadlock reports carry queue occupancy for every stage.
func TestPipelineBoxesReport(t *testing.T) {
	cfg := Baseline()
	cfg.GPUMemBytes = 8 << 20
	pipe, err := New(cfg, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	var progress, stall int
	for _, b := range []core.Box{pipe.CP, pipe.streamer, pipe.hz, pipe.DACBox} {
		if _, ok := b.(core.ProgressReporter); ok {
			progress++
		}
		if _, ok := b.(core.StallReporter); ok {
			stall++
		}
	}
	if stall != 4 {
		t.Fatalf("%d of 4 sampled boxes implement StallReporter", stall)
	}
	if progress < 3 {
		t.Fatalf("%d of 4 sampled boxes implement ProgressReporter", progress)
	}
	for _, s := range pipe.shaders {
		if _, ok := interface{}(s).(core.StallReporter); !ok {
			t.Fatal("shader units must report queue occupancy")
		}
	}
	for _, z := range pipe.ropzs {
		if _, ok := interface{}(z).(core.ProgressReporter); !ok {
			t.Fatal("ZStencil must report signal-silent progress")
		}
	}
}
