package gpu

import (
	"attila/internal/core"
	"attila/internal/emu/fragemu"
	"attila/internal/mem"
)

// ColorWrite is one color write unit (ROPc, paper §2.2): it blends
// shaded fragment colors into the framebuffer through a color cache
// with fast color clear, implementing all OpenGL blend update
// functions.
type ColorWrite struct {
	core.BoxBase
	cfg     *Config
	pool    *pipePool
	cache   *mem.Cache
	quadIns []*Flow

	queue      core.FIFO[*Quad]
	headLooked bool

	// Fast-clear block state, kept per color buffer (double
	// buffering): buffer base address -> per-block cleared flag.
	clearFlags map[uint32][]bool
	clearVals  map[uint32][4]byte
	clearValue [4]byte

	clearPending bool
	flushPending bool
	flushIssued  bool

	layoutFn func() SurfaceLayout // draw buffer (changes on swap)

	statQuads core.Shadow
	statFrags core.Shadow
	statBusy  core.Shadow
	statStall core.Shadow
}

// NewColorWrite builds ROPc unit idx. layoutFn returns the current
// draw color buffer (double buffering swaps it).
func NewColorWrite(sim *core.Simulator, cfg *Config, idx int, pool *pipePool,
	layoutFn func() SurfaceLayout, quadIns []*Flow) *ColorWrite {
	c := &ColorWrite{
		cfg: cfg, pool: pool, quadIns: quadIns, layoutFn: layoutFn,
		clearFlags: make(map[uint32][]bool),
		clearVals:  make(map[uint32][4]byte),
		clearValue: [4]byte{0, 0, 0, 255},
	}
	c.Init(nameIdx("ColorWrite", idx))
	cc := mem.CacheConfig{
		Name: nameIdx("ColorCache", idx), Sets: cfg.ColorCacheSets, Assoc: cfg.ColorCacheAssoc,
		LineBytes: SurfaceBlockBytes, MissQ: 8, PortLimit: 8,
	}
	c.cache = mem.NewCache(sim, cc, &colorHooks{c: c})
	sim.Stats.ShadowCounter(&c.statQuads, c.BoxName()+".quads")
	sim.Stats.ShadowCounter(&c.statFrags, c.BoxName()+".fragments")
	sim.Stats.ShadowCounter(&c.statBusy, c.BoxName()+".busyCycles")
	sim.Stats.ShadowCounter(&c.statStall, c.BoxName()+".stallCycles")
	sim.Register(c)
	return c
}

// Cache exposes the color cache for statistics.
func (c *ColorWrite) Cache() *mem.Cache { return c.cache }

// StartClear begins a fast color clear.
func (c *ColorWrite) StartClear(value [4]byte) {
	c.clearPending = true
	c.clearValue = value
}

// ClearDone reports clear completion.
func (c *ColorWrite) ClearDone() bool { return !c.clearPending }

// StartFlush begins writing back dirty color lines (frame end).
func (c *ColorWrite) StartFlush() {
	c.flushPending = true
	c.flushIssued = false
}

// FlushDone reports flush completion.
func (c *ColorWrite) FlushDone() bool { return !c.flushPending }

// Clock implements core.Box.
func (c *ColorWrite) Clock(cycle int64) {
	c.cache.Clock(cycle)

	if c.clearPending {
		if c.queue.Len() == 0 && c.cache.Quiesce() {
			flags := c.flags()
			for i := range flags {
				flags[i] = true
			}
			c.clearVals[c.layoutFn().Base] = c.clearValue
			c.cache.InvalidateAll()
			c.clearPending = false
		}
		return
	}
	if c.flushPending {
		if c.queue.Len() == 0 {
			if !c.flushIssued {
				if c.cache.FlushDirty(cycle) {
					c.flushIssued = true
				}
			} else if c.cache.Quiesce() {
				c.flushPending = false
			}
		}
		return
	}

	for _, in := range c.quadIns {
		for _, obj := range in.Recv(cycle) {
			q := obj.(*Quad)
			q.srcFlow = in
			c.queue.Push(q)
		}
	}
	if c.queue.Len() == 0 {
		return
	}

	q := c.queue.Peek()
	st := q.Batch.State
	mask := st.ColorMask
	if !mask[0] && !mask[1] && !mask[2] && !mask[3] {
		// Depth-only or stencil-only pass: no color traffic.
		c.retire(q)
		c.statBusy.Inc()
		return
	}

	layout := c.layoutFn()
	key := layout.BlockAddr(q.X, q.Y)
	if !c.cache.Probe(key) {
		if !c.headLooked {
			c.cache.Lookup(cycle, key)
			c.headLooked = true
		}
		c.cache.RequestFill(cycle, key)
		c.statStall.Inc()
		return
	}
	if !c.headLooked {
		c.cache.Lookup(cycle, key)
	}

	var buf [4]byte
	for l := 0; l < 4; l++ {
		if !q.Mask[l] {
			continue
		}
		px, py := q.X+l%2, q.Y+l/2
		off := layout.Offset(px, py)
		c.cache.Read(key, off, buf[:])
		dst := fragemu.UnpackColor(buf)
		blended := fragemu.Blend(st.Blend, q.Color[l], dst)
		out := fragemu.ApplyColorMask(mask, buf, fragemu.PackColor(blended))
		if out != buf {
			c.cache.Write(key, off, out[:])
		}
		c.statFrags.Inc()
	}
	c.statQuads.Inc()
	c.statBusy.Inc()
	c.retire(q)
}

func (c *ColorWrite) retire(q *Quad) {
	q.srcFlow.Release(1)
	q.srcFlow = nil
	c.queue.Pop()
	c.headLooked = false
	q.Batch.QuadsRetired++
	c.pool.putQuad(q)
}

// flags returns (creating if needed) the clear-state array for the
// current draw buffer.
func (c *ColorWrite) flags() []bool {
	layout := c.layoutFn()
	f, ok := c.clearFlags[layout.Base]
	if !ok {
		f = make([]bool, layout.NumBlocks())
		c.clearFlags[layout.Base] = f
	}
	return f
}

// BlockClear reports whether a block of the buffer at base is in fast
// clear state (its data exists only on chip) and the clear color; the
// DAC uses it to synthesize never-written blocks without memory
// reads.
func (c *ColorWrite) BlockClear(base uint32, idx int) (bool, [4]byte) {
	f, ok := c.clearFlags[base]
	if !ok || idx < 0 || idx >= len(f) || !f[idx] {
		return false, [4]byte{}
	}
	return true, c.clearVals[base]
}

// colorHooks implement fast color clear for the color cache; lines
// are otherwise stored verbatim (the paper lists color compression as
// future work).
type colorHooks struct{ c *ColorWrite }

func (h *colorHooks) blockIdx(key uint32) int {
	return int(key-h.c.layoutFn().Base) / SurfaceBlockBytes
}

// FillPlan implements mem.Hooks.
func (h *colorHooks) FillPlan(key uint32) mem.FillPlan {
	flags := h.c.flags()
	idx := h.blockIdx(key)
	if idx >= 0 && idx < len(flags) && flags[idx] {
		return mem.FillPlan{Synth: true}
	}
	return mem.FillPlan{FetchAddr: key, FetchBytes: SurfaceBlockBytes}
}

// Synthesize implements mem.Hooks.
func (h *colorHooks) Synthesize(key uint32, line []byte) {
	val := h.c.clearVals[h.c.layoutFn().Base]
	for i := 0; i < len(line); i += 4 {
		copy(line[i:], val[:])
	}
}

// Decode implements mem.Hooks.
func (h *colorHooks) Decode(key uint32, raw, line []byte) { copy(line, raw) }

// Encode implements mem.Hooks: once written back, the block is real
// memory, not clear state.
func (h *colorHooks) Encode(key uint32, line []byte) (uint32, []byte) {
	flags := h.c.flags()
	idx := h.blockIdx(key)
	if idx >= 0 && idx < len(flags) {
		flags[idx] = false
	}
	return key, line
}
