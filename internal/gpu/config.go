// Package gpu implements the ATTILA GPU pipeline (paper §2.2) on the
// box-and-signal simulation framework: command processor, streamer,
// primitive assembly, clipper, triangle setup, fragment generation,
// Hierarchical Z, Z and stencil test with a compressed Z cache, the
// perspective-corrected interpolator, the Fragment FIFO
// crossbar/scheduler, multithreaded unified (or partitioned) shader
// units with texture units and caches, color write, the memory
// controller and the DAC.
package gpu

import (
	"attila/internal/mem"
)

// ScheduleMode selects how shader inputs are scheduled (the two
// configurations of the paper's §5 case study).
type ScheduleMode uint8

// Scheduling modes.
const (
	// ScheduleWindow keeps a window of threads per shader and
	// issues from any ready thread, enabling out-of-order thread
	// execution that hides texture latency.
	ScheduleWindow ScheduleMode = iota
	// ScheduleInOrderQueue executes shader inputs strictly in
	// order: a shader runs one thread at a time and stalls while it
	// waits on a texture access.
	ScheduleInOrderQueue
)

// String names the mode.
func (m ScheduleMode) String() string {
	if m == ScheduleWindow {
		return "window"
	}
	return "inorder"
}

// FGenAlgorithm selects the fragment generator implementation: the
// tile-by-tile scanner described for Neon [16] or McCool's recursive
// descent [15] (the paper's default).
type FGenAlgorithm uint8

// Fragment generation algorithms.
const (
	FGenRecursive FGenAlgorithm = iota
	FGenScanline
)

// Config holds every architectural parameter of the simulated GPU
// (the paper's configuration files expose over 100 parameters; the
// important ones are reproduced here, with Table 1 and Table 2 as the
// baseline).
type Config struct {
	Name string

	// Shader organization.
	UnifiedShaders   bool
	NumShaders       int // unified (or fragment) shader units
	NumVertexShaders int // dedicated vertex shaders (non-unified only)
	// ThreadsPerShader bounds resident threads per unit (1 thread =
	// 1 fragment quad or 4 vertices). The baseline fragment shader
	// supports 112+16 inputs = 28+4 threads; vertex shaders 12.
	ThreadsPerShader       int
	VertexThreadsPerShader int
	// PhysRegs* are the physical temporary-register pools that
	// further limit thread admission (§2.3): a thread needs
	// 4*TempsUsed registers.
	PhysRegsFragment int
	PhysRegsVertex   int
	ShaderIssueRate  int // instructions issued per shader per cycle
	// Execution latencies per opcode class (1..9 cycle range).
	ExecLatSimple int
	ExecLatMAD    int
	ExecLatScalar int

	// Shader input scheduling (§5 case study).
	Schedule      ScheduleMode
	WindowThreads int // global thread window / input queue capacity

	// Geometry front end (Table 1).
	StreamerQueue      int // vertex request queue
	VertexCacheEntries int // post-shading vertex cache
	VertexFetchLines   int // 64-byte attribute fetch buffer lines
	PAQueue            int
	ClipQueue          int
	ClipLatency        int
	SetupQueue         int
	SetupLatency       int
	FGenQueue          int
	FGenTilesPerCycle  int
	FGenAlgorithm      FGenAlgorithm

	// Hierarchical Z.
	HZEnabled       bool
	HZQueue         int
	HZTilesPerCycle int

	// Fragment back end.
	NumROPs          int // paired Z-stencil + color write units
	ROPQueue         int
	ROPFragsPerCycle int
	ZCompression     bool
	FastClear        bool
	EarlyZ           bool // allow Z/stencil before shading when legal

	// Interpolator (latency 2 to 8 by active attribute count).
	InterpQuadsPerCycle int
	InterpBaseLat       int
	InterpPerAttrLat    int
	InterpQueue         int

	// Texture units.
	NumTextureUnits int
	TexQueue        int
	TexelsPerCycle  int // cache read ports: 4 = one bilinear/cycle
	TexFilterLat    int

	// Caches (Table 2 geometry by default).
	TexCacheSets, TexCacheAssoc     int
	ZCacheSets, ZCacheAssoc         int
	ColorCacheSets, ColorCacheAssoc int

	// Memory system.
	Memory      mem.ControllerConfig
	GPUMemBytes int
	SystemBusBW int // bytes/cycle from system memory (PCIe-like)

	// DACRefreshCycles models the display refresh traffic the paper
	// chose to support (§2.2): every N cycles the DAC reads one
	// 64-byte piece of the front buffer. 0 disables refresh (the
	// default, so experiment numbers isolate rendering traffic).
	DACRefreshCycles int64

	// Statistics sampling interval in cycles (paper figures sample
	// every 10K cycles).
	StatInterval int64

	// ClockMHz scales cycle counts to frame rates for reporting.
	ClockMHz int

	// Workers selects the host-side clocking mode: 0 or 1 clocks
	// every box on one goroutine; >1 shards the boxes over that many
	// persistent workers synchronized on a spin barrier; -1
	// auto-sizes to the schedulable processors. Requests are clamped
	// to runtime.GOMAXPROCS(0) and to the shardable unit count, with
	// a structured warning when they exceed the online CPUs. Results
	// are bit-identical in every mode — the knob only trades host
	// time. Presets leave it 0 (serial).
	Workers int

	// WatchdogWindow arms the no-progress watchdog: a run with no
	// signal traffic and no box progress for this many consecutive
	// cycles aborts with a structured deadlock report instead of
	// spinning to the cycle limit. 0 (the presets' value) disables
	// it. Purely diagnostic — it never alters simulation results.
	WatchdogWindow int64
}

// Baseline returns the paper's baseline architecture (Tables 1 and
// 2): four non-unified vertex shaders, two fragment shaders
// processing 4 fragments per cycle, two ROP pairs, four 16-byte GDDR
// channels.
func Baseline() Config {
	return Config{
		Name:                   "baseline",
		UnifiedShaders:         false,
		NumShaders:             2,
		NumVertexShaders:       4,
		ThreadsPerShader:       28, // 112 fragment inputs in flight
		VertexThreadsPerShader: 12,
		PhysRegsFragment:       448,
		PhysRegsVertex:         96,
		ShaderIssueRate:        1,
		ExecLatSimple:          1,
		ExecLatMAD:             3,
		ExecLatScalar:          9,
		Schedule:               ScheduleWindow,
		WindowThreads:          64,
		StreamerQueue:          48,
		VertexCacheEntries:     16,
		VertexFetchLines:       16,
		PAQueue:                8,
		ClipQueue:              4,
		ClipLatency:            6,
		SetupQueue:             12,
		SetupLatency:           10,
		FGenQueue:              16,
		FGenTilesPerCycle:      2,
		FGenAlgorithm:          FGenRecursive,
		HZEnabled:              true,
		HZQueue:                64,
		HZTilesPerCycle:        2,
		NumROPs:                2,
		ROPQueue:               64,
		ROPFragsPerCycle:       4,
		ZCompression:           true,
		FastClear:              true,
		EarlyZ:                 true,
		InterpQuadsPerCycle:    2,
		InterpBaseLat:          2,
		InterpPerAttrLat:       1,
		InterpQueue:            32,
		NumTextureUnits:        2,
		TexQueue:               16,
		TexelsPerCycle:         4,
		TexFilterLat:           4,
		TexCacheSets:           16,
		TexCacheAssoc:          4,
		ZCacheSets:             16,
		ZCacheAssoc:            4,
		ColorCacheSets:         16,
		ColorCacheAssoc:        4,
		Memory:                 mem.DefaultControllerConfig(),
		GPUMemBytes:            64 << 20,
		SystemBusBW:            8,
		StatInterval:           10000,
		ClockMHz:               600,
	}
}

// BaselineUnified returns the baseline with the unified shader model:
// the same four-plus-two shader budget pooled into unified units.
func BaselineUnified() Config {
	c := Baseline()
	c.Name = "baseline-unified"
	c.UnifiedShaders = true
	c.NumShaders = 4
	c.NumVertexShaders = 0
	c.PhysRegsFragment = 448 + 96
	return c
}

// CaseStudy returns the §5 test configuration: three unified shaders,
// one ROP pair, two 64-bit DDR buses, a global 96-thread window (384
// inputs) with 1536 physical registers, and a configurable number of
// texture units (3 to 1).
func CaseStudy(textureUnits int, mode ScheduleMode) Config {
	c := BaselineUnified()
	c.Name = "casestudy"
	c.NumShaders = 3
	c.NumROPs = 1
	c.NumTextureUnits = textureUnits
	c.Schedule = mode
	c.WindowThreads = 96
	c.ThreadsPerShader = 32
	c.PhysRegsFragment = 1536
	c.Memory.Channels = 2
	return c
}

// Embedded returns the low-end configuration of the paper's [2]: a
// single unified shader doing all vertex and fragment work, one ROP,
// one narrow memory channel and halved caches.
func Embedded() Config {
	c := BaselineUnified()
	c.Name = "embedded"
	c.NumShaders = 1
	c.NumROPs = 1
	c.NumTextureUnits = 1
	c.ThreadsPerShader = 16
	c.WindowThreads = 16
	c.PhysRegsFragment = 256
	c.FGenTilesPerCycle = 1
	c.HZTilesPerCycle = 1
	c.InterpQuadsPerCycle = 1
	c.Memory.Channels = 1
	c.Memory.ChannelBW = 8
	c.TexCacheSets = 8
	c.ZCacheSets = 8
	c.ColorCacheSets = 8
	c.GPUMemBytes = 16 << 20
	c.ClockMHz = 200
	return c
}

// HighEnd returns a scaled-up future configuration in the spirit of
// the paper's [1]: eight unified shaders, four ROP pairs, four
// texture units.
func HighEnd() Config {
	c := BaselineUnified()
	c.Name = "highend"
	c.NumShaders = 8
	c.NumROPs = 4
	c.NumTextureUnits = 4
	c.WindowThreads = 128
	c.PhysRegsFragment = 2048
	c.Memory.Channels = 4
	c.Memory.ChannelBW = 32
	return c
}

// Validate checks the configuration for values the pipeline cannot
// operate with.
func (c *Config) Validate() error {
	checks := []struct {
		ok  bool
		msg string
	}{
		{c.NumShaders >= 1, "NumShaders must be >= 1"},
		{c.UnifiedShaders || c.NumVertexShaders >= 1, "non-unified config needs vertex shaders"},
		{c.NumROPs >= 1, "NumROPs must be >= 1"},
		{c.NumTextureUnits >= 1, "NumTextureUnits must be >= 1"},
		{c.ThreadsPerShader >= 1, "ThreadsPerShader must be >= 1"},
		{c.WindowThreads >= 1, "WindowThreads must be >= 1"},
		{c.FGenTilesPerCycle >= 1, "FGenTilesPerCycle must be >= 1"},
		{c.ROPFragsPerCycle >= 4, "ROPFragsPerCycle must cover a quad"},
		{c.Memory.Channels >= 1, "memory channels must be >= 1"},
		{c.GPUMemBytes >= 1<<20, "GPU memory too small"},
		{c.StatInterval >= 0, "StatInterval must be >= 0"},
		{c.Workers >= -1, "Workers must be >= -1 (-1 auto-sizes to CPUs)"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return &ConfigError{Config: c.Name, Msg: ch.msg}
		}
	}
	return nil
}

// ConfigError reports an invalid configuration.
type ConfigError struct {
	Config string
	Msg    string
}

func (e *ConfigError) Error() string {
	return "gpu: config " + e.Config + ": " + e.Msg
}
