package gpu

import (
	"attila/internal/core"
	"attila/internal/isa"
	"attila/internal/mem"
	"attila/internal/vmath"
)

// Streamer is the vertex front end (paper §2.2): it fetches input
// vertex attribute data from memory, converts it to the internal
// 4-float format and issues vertices for shading, reusing results of
// indexed vertices through a post-shading vertex cache. Shaded
// vertices are committed to Primitive Assembly in input order
// (StreamerLoader and StreamerCommit folded into one box).
type Streamer struct {
	core.BoxBase
	cfg   *Config
	gm    *mem.GPUMemory
	ids   *core.IDSource
	fetch *mem.Cache // 64-byte attribute/index fetch buffer

	cmdIn    *Flow // draw commands from CP
	shadeOut *Flow // vertex groups to FragmentFIFO
	shadeIn  *Flow // shaded groups back
	vtxOut   *Flow // ordered vertices to Primitive Assembly

	cmdQ  []*BatchState
	batch *BatchState
	seq   int // next vertex ordinal to fetch

	// Post-shading vertex cache: index -> shaded outputs.
	vcache   map[uint32]*vcacheEntry
	vcacheQ  []uint32         // FIFO replacement order
	pendingV map[uint32][]int // index -> seqs waiting on a shading miss

	// Group being accumulated for shading.
	group *VtxGroup

	// Reorder buffer: seq -> shaded outputs ready to commit.
	ready   map[int]*[isa.MaxOutputs]vmath.Vec4
	commit  int // next seq to send to PA
	fetchSt struct {
		active bool
		index  uint32
		lines  []uint32
		looked bool
	}

	statVtx       core.Shadow
	statVCacheHit core.Shadow
	statVCacheMis core.Shadow
	statBusy      core.Shadow
}

type vcacheEntry struct {
	out     [isa.MaxOutputs]vmath.Vec4
	ready   bool
	pending bool
}

// NewStreamer builds the box; flows are provided by the pipeline
// wiring.
func NewStreamer(sim *core.Simulator, cfg *Config, gm *mem.GPUMemory,
	cmdIn, shadeOut, shadeIn, vtxOut *Flow) *Streamer {
	s := &Streamer{
		cfg: cfg, gm: gm, ids: &sim.IDs,
		cmdIn: cmdIn, shadeOut: shadeOut, shadeIn: shadeIn, vtxOut: vtxOut,
	}
	s.Init("Streamer")
	fc := mem.CacheConfig{
		Name: "Streamer", Sets: cfg.VertexFetchLines / 2, Assoc: 2,
		LineBytes: 64, MissQ: 8, PortLimit: 8,
	}
	s.fetch = mem.NewCache(sim, fc, mem.PassThrough{})
	sim.Stats.ShadowCounter(&s.statVtx, "Streamer.vertices")
	sim.Stats.ShadowCounter(&s.statVCacheHit, "Streamer.vcacheHits")
	sim.Stats.ShadowCounter(&s.statVCacheMis, "Streamer.vcacheMisses")
	sim.Stats.ShadowCounter(&s.statBusy, "Streamer.busyCycles")
	sim.Register(s)
	return s
}

// Clock implements core.Box.
func (s *Streamer) Clock(cycle int64) {
	s.fetch.Clock(cycle)

	// Drain the command wire every cycle; start the next batch when
	// idle.
	for _, obj := range s.cmdIn.Recv(cycle) {
		s.cmdQ = append(s.cmdQ, obj.(*BatchState))
	}
	if s.batch == nil && len(s.cmdQ) > 0 {
		s.startBatch(s.cmdQ[0])
		s.cmdQ = s.cmdQ[1:]
		s.cmdIn.Release(1)
	}

	// Collect shaded vertex groups.
	for _, obj := range s.shadeIn.Recv(cycle) {
		g := obj.(*VtxGroup)
		s.shadeIn.Release(1)
		for l := 0; l < g.Count; l++ {
			s.ready[g.Seq[l]] = &g.Out[l]
			g.Batch.ShadedVerts++
		}
		s.resolveShaded(g)
	}

	if s.batch == nil {
		return
	}
	busy := false

	// Commit shaded vertices to Primitive Assembly in order.
	if out, ok := s.ready[s.commit]; ok && s.vtxOut.CanSend(cycle, 1) {
		sv := &ShadedVertex{
			DynObject: core.DynObject{ID: s.ids.Next(), Tag: "vtx"},
			Batch:     s.batch, Seq: s.commit,
		}
		sv.Out = *out
		delete(s.ready, s.commit)
		s.vtxOut.Send(cycle, sv)
		s.commit++
		busy = true
	}

	// Fetch and issue the next vertex (one index per cycle,
	// Table 1).
	s.stepFetch(cycle, &busy)

	// Batch completion: all vertices committed.
	if s.seq == s.batch.State.Count && s.commit == s.batch.State.Count &&
		s.group == nil && !s.batch.StreamerDone {
		s.batch.StreamerDone = true
		s.batch = nil
	}
	if busy {
		s.statBusy.Inc()
	}
}

func (s *Streamer) startBatch(b *BatchState) {
	s.batch = b
	s.seq = 0
	s.commit = 0
	s.vcache = make(map[uint32]*vcacheEntry)
	s.vcacheQ = nil
	s.pendingV = make(map[uint32][]int)
	s.ready = make(map[int]*[isa.MaxOutputs]vmath.Vec4)
	s.group = nil
	s.fetchSt.active = false
}

func (s *Streamer) stepFetch(cycle int64, busy *bool) {
	st := s.batch.State
	if s.seq >= st.Count {
		// Flush a trailing partial group.
		s.flushGroup(cycle, true)
		return
	}

	if !s.fetchSt.active {
		idx, stall := s.fetchIndex(cycle, s.seq)
		if stall {
			return
		}
		s.fetchSt.active = true
		s.fetchSt.index = idx
		s.fetchSt.lines = s.attrLines(idx)
		s.fetchSt.looked = false
	}
	*busy = true

	idx := s.fetchSt.index

	// Post-shading vertex cache: only meaningful for indexed draws.
	if st.IndexAddr != 0 {
		if e, ok := s.vcache[idx]; ok {
			if e.pending {
				// Another copy of this vertex is being shaded; queue
				// this seq on its completion.
				s.pendingV[idx] = append(s.pendingV[idx], s.seq)
				s.statVCacheHit.Inc()
				s.advance()
				return
			}
			if e.ready {
				s.statVCacheHit.Inc()
				s.ready[s.seq] = &e.out
				s.advance()
				return
			}
		}
	}

	// Attribute fetch: all covering 64-byte lines must be resident.
	allIn := true
	for _, line := range s.fetchSt.lines {
		if s.fetch.Probe(line) {
			continue
		}
		allIn = false
		if !s.fetchSt.looked {
			s.fetch.Lookup(cycle, line)
		}
		s.fetch.RequestFill(cycle, line)
	}
	if !s.fetchSt.looked {
		// Count hits for lines that were resident on first touch.
		for _, line := range s.fetchSt.lines {
			if s.fetch.Probe(line) {
				s.fetch.Lookup(cycle, line)
			}
		}
		s.fetchSt.looked = true
	}
	if !allIn {
		return
	}

	// Build the vertex input and add it to the shading group.
	if s.group == nil {
		s.group = &VtxGroup{
			DynObject: core.DynObject{ID: s.ids.Next(), Tag: "vtxgroup"},
			Batch:     s.batch,
		}
	}
	if s.group.Count == shaderLanes {
		// Group full and not yet sent: wait for shadeOut space.
		s.flushGroup(cycle, false)
		return
	}
	l := s.group.Count
	s.group.Seq[l] = s.seq
	s.group.Index[l] = idx
	for slot := 0; slot < isa.MaxInputs; slot++ {
		s.group.In[l][slot] = FetchAttr(s.gm, st, slot, idx)
	}
	s.group.Count++
	s.statVtx.Inc()
	if st.IndexAddr != 0 {
		s.vcacheInsert(idx)
	}
	s.advance()
	if s.group.Count == shaderLanes {
		s.flushGroup(cycle, false)
	}
}

func (s *Streamer) advance() {
	s.seq++
	s.batch.VtxIssued++
	s.fetchSt.active = false
}

func (s *Streamer) flushGroup(cycle int64, force bool) {
	if s.group == nil || s.group.Count == 0 {
		s.group = nil
		return
	}
	if !force && s.group.Count < shaderLanes {
		return
	}
	if !s.shadeOut.CanSend(cycle, 1) {
		return
	}
	s.shadeOut.Send(cycle, s.group)
	s.group = nil
}

// fetchIndex reads index number seq of the batch; stall=true while
// the index line is being fetched.
func (s *Streamer) fetchIndex(cycle int64, seq int) (idx uint32, stall bool) {
	st := s.batch.State
	if st.IndexAddr == 0 {
		return uint32(st.First + seq), false
	}
	addr := st.IndexAddr + uint32((st.First+seq)*st.IndexSize)
	line := addr &^ 63
	if !s.fetch.Probe(line) {
		s.fetch.Lookup(cycle, line)
		s.fetch.RequestFill(cycle, line)
		return 0, true
	}
	return FetchIndex(s.gm, st, seq), false
}

// attrLines returns the unique 64-byte lines covering the vertex's
// enabled attributes.
func (s *Streamer) attrLines(idx uint32) []uint32 {
	st := s.batch.State
	seen := map[uint32]bool{}
	var lines []uint32
	for slot := range st.Attribs {
		a := &st.Attribs[slot]
		if !a.Enabled {
			continue
		}
		base := a.Addr + idx*a.Stride
		end := base + uint32(a.Size*4) - 1
		for line := base &^ 63; line <= end&^63; line += 64 {
			if !seen[line] {
				seen[line] = true
				lines = append(lines, line)
			}
		}
	}
	return lines
}

func (s *Streamer) vcacheInsert(idx uint32) {
	s.statVCacheMis.Inc()
	if len(s.vcacheQ) >= s.cfg.VertexCacheEntries {
		// Evict the oldest non-pending entry; pending entries have
		// waiters that must still be woken by resolveShaded.
		evicted := false
		for i, old := range s.vcacheQ {
			if e := s.vcache[old]; e != nil && !e.pending {
				delete(s.vcache, old)
				s.vcacheQ = append(s.vcacheQ[:i], s.vcacheQ[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // cache full of pending entries: shade uncached
		}
	}
	s.vcache[idx] = &vcacheEntry{pending: true}
	s.vcacheQ = append(s.vcacheQ, idx)
}

// resolveShaded is called (via the FragmentFIFO result routing) when
// a vertex group completes: it fills the vertex cache and wakes any
// seqs waiting on the same index.
func (s *Streamer) resolveShaded(g *VtxGroup) {
	for l := 0; l < g.Count; l++ {
		idx := g.Index[l]
		if e, ok := s.vcache[idx]; ok && e.pending {
			e.out = g.Out[l]
			e.ready = true
			e.pending = false
			for _, seq := range s.pendingV[idx] {
				s.ready[seq] = &e.out
			}
			delete(s.pendingV, idx)
		}
	}
}
