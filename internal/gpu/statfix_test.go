package gpu

import (
	"testing"

	"attila/internal/core"
	"attila/internal/emu/fragemu"
)

// These tests pin corrected statistics against miscounts that used to
// inflate them under downstream backpressure:
//
//   - FragmentFIFO.route incremented Batch.ShadedQuads before checking
//     the consumer's CanSend, and drainOutbox retries route every
//     stalled cycle — a quad stuck behind a full ROP queue was counted
//     shaded once per retry cycle.
//   - ZStencil counted the same cycle both busy (test performed) and
//     stalled (forward blocked), so busy+stall exceeded wall cycles.
//   - HierarchicalZ and the Interpolator counted a cycle busy whenever
//     their queue was non-empty, even when a full consumer blocked all
//     work that cycle — utilization read 100% during downstream stalls.
//
// Each harness clocks a single box manually with hand-built flows, so
// the backpressure pattern is exact and the pinned values are stable.

// testFlow builds a flow over a fresh signal (latency 1).
func testFlow(name string, bw, maxLat, queue int) *Flow {
	return NewFlow(core.NewSignal(name, bw, 1, maxLat), queue)
}

// barrier folds flow credits and shadow stats like the simulator's
// cycle barrier.
func barrier(sim *core.Simulator, cycle int64, flows ...*Flow) {
	for _, f := range flows {
		f.EndCycle(cycle)
	}
	sim.EndCycle(cycle)
}

func TestShadedQuadsCountedOncePerQuad(t *testing.T) {
	sim := core.NewSimulator(0)
	cfg := Baseline()
	layout := NewSurfaceLayout(0, 64, 64)
	vtxIn := testFlow("t.vtxIn", 8, 8, 8)
	fragIn := testFlow("t.fragIn", 8, 8, 8)
	vtxOut := testFlow("t.vtxOut", 8, 8, 8)
	fragEarly := []*Flow{testFlow("t.fe0", 8, 8, 8)}
	// One credit: the second quad must wait until the consumer
	// releases the first.
	fragLate := []*Flow{testFlow("t.fl0", 8, 8, 1)}
	shaderIn := []*Flow{testFlow("t.si0", 8, 8, 8)}
	shaderOut := []*Flow{testFlow("t.so0", 8, 8, 8)}
	f := NewFragmentFIFO(sim, &cfg, &pipePool{}, layout,
		vtxIn, fragIn, vtxOut, fragEarly, fragLate, shaderIn, shaderOut)

	// Two live late-Z quads sitting completed in the outbox, both
	// routing to ROP 0.
	batch := &BatchState{}
	q1 := &Quad{Batch: batch, Mask: [4]bool{true, true, true, true}}
	q2 := &Quad{Batch: batch, Mask: [4]bool{true, true, true, true}, X: 2}
	f.outbox.Push(&ShaderWork{Batch: batch, Kind: workFragment, Frag: q1})
	f.outbox.Push(&ShaderWork{Batch: batch, Kind: workFragment, Frag: q2})
	f.windowUsed = 2

	flows := []*Flow{vtxIn, fragIn, vtxOut, fragEarly[0], fragLate[0], shaderIn[0], shaderOut[0]}
	for c := int64(1); c <= 6; c++ {
		f.Clock(c)
		fragLate[0].Recv(c)
		if c == 4 {
			// The consumer retires q1 after holding it for a while;
			// q2 was blocked on cycles 2-4.
			fragLate[0].Release(1)
		}
		barrier(sim, c, flows...)
	}

	// Cycle 1 routes q1 and counts it; q2 retries on cycles 2-4 and
	// must not be recounted per retry; cycle 5 routes q2. The old
	// entry-point increment yielded 5.
	if batch.ShadedQuads != 2 {
		t.Fatalf("ShadedQuads = %d, want 2 (one per quad, not per routing retry)", batch.ShadedQuads)
	}
	if f.windowUsed != 0 || f.outbox.Len() != 0 {
		t.Fatalf("outbox not drained: windowUsed=%d outbox=%d", f.windowUsed, f.outbox.Len())
	}
}

func TestHZBusyNotCountedWhenBlocked(t *testing.T) {
	sim := core.NewSimulator(0)
	cfg := Baseline()
	layout := NewSurfaceLayout(0, 64, 64)
	tileIn := testFlow("t.tiles", 8, 8, 8)
	early := []*Flow{testFlow("t.early", 8, 8, 8)}
	// Four credits: a 1-quad tile passes, then a 4-quad tile blocks
	// until the consumer releases one.
	late := testFlow("t.late", 8, 8, 4)
	h := NewHierarchicalZ(sim, &cfg, &pipePool{}, layout, tileIn, early, late)

	b := &BatchState{} // HZ off, late Z: tiles forward to lateOut
	quad := func(x int) *Quad { return &Quad{Batch: b, Mask: [4]bool{true}, X: x} }
	tileA := &Tile{Batch: b, Quads: []*Quad{quad(0)}}
	tileB := &Tile{Batch: b, Quads: []*Quad{quad(8), quad(10), quad(12), quad(14)}, X: 8}

	for c := int64(1); c <= 6; c++ {
		if c == 1 {
			tileIn.Send(c, tileA)
			tileIn.Send(c, tileB)
		}
		h.Clock(c)
		late.Recv(c)
		if c == 4 {
			late.Release(1)
		}
		barrier(sim, c, tileIn, early[0], late)
	}

	// Cycle 2: tile A forwarded (busy), tile B blocked. Cycles 3-4:
	// no work at all — must not count busy (the old code counted
	// every non-empty-queue cycle, giving 4). Cycle 5: tile B goes.
	if got := sim.Stats.Lookup("HZ.busyCycles").Value(); got != 2 {
		t.Fatalf("HZ.busyCycles = %v, want 2 (blocked cycles are not busy)", got)
	}
	if got := sim.Stats.Lookup("HZ.tiles").Value(); got != 2 {
		t.Fatalf("HZ.tiles = %v, want 2", got)
	}
}

func TestInterpolatorBusyNotCountedWhenBlocked(t *testing.T) {
	sim := core.NewSimulator(0)
	cfg := Baseline()
	in := testFlow("t.qin", 8, 8, 8)
	out := testFlow("t.qout", 8, 32, 1) // one credit downstream
	ip := NewInterpolator(sim, &cfg, []*Flow{in}, out)

	b := &BatchState{State: &DrawState{}}
	tri := &SetupTri{}
	q1 := &Quad{Batch: b, Tri: tri, Mask: [4]bool{true}}
	q2 := &Quad{Batch: b, Tri: tri, Mask: [4]bool{true}, X: 2}

	for c := int64(1); c <= 6; c++ {
		if c == 1 {
			in.Send(c, q1)
			in.Send(c, q2)
		}
		ip.Clock(c)
		out.Recv(c)
		if c == 4 {
			out.Release(1)
		}
		barrier(sim, c, in, out)
	}

	// Cycle 2 interpolates q1; cycles 3-4 are fully blocked on the
	// FragmentFIFO credit and must not count busy (old code: 4);
	// cycle 5 interpolates q2.
	if got := sim.Stats.Lookup("Interpolator.busyCycles").Value(); got != 2 {
		t.Fatalf("Interpolator.busyCycles = %v, want 2 (blocked cycles are not busy)", got)
	}
	if got := sim.Stats.Lookup("Interpolator.quads").Value(); got != 2 {
		t.Fatalf("Interpolator.quads = %v, want 2", got)
	}
}

func TestZStencilBusyStallPartitionCycles(t *testing.T) {
	sim := core.NewSimulator(0)
	cfg := Baseline()
	layout := NewSurfaceLayout(0, 64, 64)
	// The Z cache's memory port reply wire normally comes from the
	// controller; fast-cleared blocks synthesize on chip, so a bare
	// signal keeps the port happy without any memory model.
	sim.Binder.Provide("MC", "MC.ZCache0.Reply", 8, 1, 0)
	in := testFlow("t.zin", 8, 8, 8)
	earlyOut := testFlow("t.zearly", 8, 8, 8)
	lateOut := testFlow("t.zlate", 8, 8, 1) // one credit downstream
	z := NewZStencil(sim, &cfg, 0, &pipePool{}, layout, []*Flow{in}, earlyOut, lateOut)
	z.StartClear(fragemu.PackDS(fragemu.MaxDepth, 0))

	st := &DrawState{Depth: fragemu.DepthState{Enabled: true, Func: fragemu.CmpLess, WriteMask: true}}
	b := &BatchState{State: st} // EarlyZ off: tested quads forward to lateOut
	mk := func(x int) *Quad {
		return &Quad{Batch: b, Mask: [4]bool{true, true, true, true},
			X: x, Depth: [4]uint32{1, 1, 1, 1}}
	}
	q1, q2 := mk(0), mk(2) // same framebuffer block: one cache fill

	for c := int64(1); c <= 8; c++ {
		if c == 2 {
			in.Send(c, q1)
			in.Send(c, q2)
		}
		z.Clock(c)
		lateOut.Recv(c)
		if c == 7 {
			lateOut.Release(1)
		}
		barrier(sim, c, in, earlyOut, lateOut)
	}

	// Cycle 1 clears. Cycle 3: q1 misses the cold cache (stall 1).
	// Cycle 4: synth fill lands, q1 tests and forwards (busy 1).
	// Cycle 5: q2 tests (busy 2) but the forward blocks — the cycle
	// did work, so it is busy, NOT also a stall (the old code counted
	// both, making busy+stall exceed occupied cycles). Cycles 6-7:
	// blocked retries, stalls 2 and 3. Cycle 8: q2 forwards (busy 3).
	busy := sim.Stats.Lookup("ZStencil0.busyCycles").Value()
	stall := sim.Stats.Lookup("ZStencil0.stallCycles").Value()
	if busy != 3 || stall != 3 {
		t.Fatalf("busy=%v stall=%v, want busy=3 stall=3 (old code double-counted the blocked test cycle as stall=4)", busy, stall)
	}
	if got := sim.Stats.Lookup("ZStencil0.quads").Value(); got != 2 {
		t.Fatalf("ZStencil0.quads = %v, want 2", got)
	}
	// The two counters partition the unit's occupied time: cycles 3-8
	// with a quad at head, six in total.
	if busy+stall != 6 {
		t.Fatalf("busy+stall = %v, want 6 (they must partition occupied cycles)", busy+stall)
	}
}
