package gpu

import (
	"os"
	"runtime"
	"testing"
)

// TestMain raises GOMAXPROCS so pipeline tests that set Workers > 1
// shard for real on single-CPU hosts (the simulator clamps worker
// counts to GOMAXPROCS, silently degrading to serial otherwise).
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 8 {
		runtime.GOMAXPROCS(8)
	}
	os.Exit(m.Run())
}
