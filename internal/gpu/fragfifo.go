package gpu

import (
	"attila/internal/core"
	"attila/internal/obsv/trace"
)

// workKind distinguishes shader work.
type workKind uint8

const (
	workVertex workKind = iota
	workFragment
)

// ShaderWork is one thread's worth of shader input: a vertex group or
// a fragment quad, dispatched by the FragmentFIFO to a shader unit.
type ShaderWork struct {
	core.DynObject
	Batch *BatchState
	Kind  workKind
	Vtx   *VtxGroup
	Frag  *Quad
	Regs  int  // physical registers reserved for the thread
	VPool bool // reserved from the vertex register pool

	// span traces a sampled work item's lifecycle (arrival → window
	// admission → dispatch → shader completion → downstream routing).
	// All hops are stamped by the FragmentFIFO, which owns the item at
	// every stamping point.
	span *trace.Span
}

// FragmentFIFO is the crossbar and scheduler between the fixed
// pipeline and the programmable shader pool (paper §3: it receives
// vertices and fragments from producing boxes, feeds shader units,
// and returns outputs to the consuming boxes; it also implements the
// early/late Z datapaths). The §5 case study's global thread window
// (or in-order shader input queue) lives here.
type FragmentFIFO struct {
	core.BoxBase
	cfg    *Config
	pool   *pipePool
	layout SurfaceLayout

	vtxIn  *Flow // vertex groups from the streamer
	fragIn *Flow // interpolated quads

	vtxOut    *Flow   // shaded vertex groups back to the streamer
	fragEarly []*Flow // per ROP: shaded quads to Color Write (early Z done)
	fragLate  []*Flow // per ROP: shaded quads to Z Stencil (late Z)

	shaderIn  []*Flow // new threads to each shader
	shaderOut []*Flow // completed threads from each shader

	vtxArrived  core.FIFO[*ShaderWork] // received, flow credit still held
	fragArrived core.FIFO[*ShaderWork]
	vtxPending  core.FIFO[*ShaderWork] // admitted to the thread window
	fragPending core.FIFO[*ShaderWork]
	outbox      core.FIFO[*ShaderWork] // completed, waiting for downstream room

	windowUsed int
	fragRegs   int // fragment/unified register pool in use
	vtxRegs    int // vertex pool in use (non-unified)
	rr         int

	// Span tracing handles, one per work kind (nil: tracing off).
	trVtx  *trace.Tracer
	trFrag *trace.Tracer

	statVtxThreads  core.Shadow
	statFragThreads core.Shadow
	statKilled      core.Shadow
	statWindowFull  core.Shadow
	statRegStall    core.Shadow
	windowGauge     *core.Gauge
}

// NewFragmentFIFO builds the box.
func NewFragmentFIFO(sim *core.Simulator, cfg *Config, pool *pipePool, layout SurfaceLayout,
	vtxIn, fragIn, vtxOut *Flow, fragEarly, fragLate, shaderIn, shaderOut []*Flow) *FragmentFIFO {
	f := &FragmentFIFO{
		cfg: cfg, pool: pool, layout: layout,
		vtxIn: vtxIn, fragIn: fragIn, vtxOut: vtxOut,
		fragEarly: fragEarly, fragLate: fragLate,
		shaderIn: shaderIn, shaderOut: shaderOut,
	}
	f.Init("FragmentFIFO")
	sim.Stats.ShadowCounter(&f.statVtxThreads, "FFIFO.vertexThreads")
	sim.Stats.ShadowCounter(&f.statFragThreads, "FFIFO.fragmentThreads")
	sim.Stats.ShadowCounter(&f.statKilled, "FFIFO.killedQuads")
	sim.Stats.ShadowCounter(&f.statWindowFull, "FFIFO.windowFullCycles")
	sim.Stats.ShadowCounter(&f.statRegStall, "FFIFO.regStallCycles")
	f.windowGauge = sim.Stats.Gauge("FFIFO.windowOccupancy")
	sim.Register(f)
	return f
}

// SetTracers installs the per-kind span tracing handles (nil
// disables). Call before Run.
func (f *FragmentFIFO) SetTracers(vtx, frag *trace.Tracer) {
	f.trVtx, f.trFrag = vtx, frag
}

// Clock implements core.Box.
func (f *FragmentFIFO) Clock(cycle int64) {
	f.collectCompletions(cycle)
	f.drainOutbox(cycle)
	f.acceptInputs(cycle)
	f.dispatch(cycle)
	f.windowGauge.Set(float64(f.windowUsed))
}

func (f *FragmentFIFO) acceptInputs(cycle int64) {
	// Signals must be drained every cycle; arrivals hold their flow
	// credit until admitted into the thread window.
	for _, obj := range f.vtxIn.Recv(cycle) {
		g := obj.(*VtxGroup)
		w := f.pool.getWork()
		w.DynObject = core.DynObject{ID: g.ID, Parent: g.Parent, Tag: "vwork"}
		w.Batch, w.Kind, w.Vtx = g.Batch, workVertex, g
		if f.trVtx != nil {
			w.span = f.trVtx.Start(trace.KindVertex, cycle, 0)
		}
		f.vtxArrived.Push(w)
	}
	for _, obj := range f.fragIn.Recv(cycle) {
		q := obj.(*Quad)
		w := f.pool.getWork()
		w.DynObject = core.DynObject{ID: q.ID, Parent: q.Parent, Tag: "fwork"}
		w.Batch, w.Kind, w.Frag = q.Batch, workFragment, q
		if f.trFrag != nil {
			w.span = f.trFrag.Start(trace.KindFrag, cycle, 0)
		}
		f.fragArrived.Push(w)
	}
	// Admit into the window, vertices first (geometry starvation
	// stalls the whole pipeline).
	for f.windowUsed < f.cfg.WindowThreads && f.vtxArrived.Len() > 0 {
		w := f.vtxArrived.Pop()
		if w.span != nil {
			w.span.Enqueue = cycle
		}
		f.vtxPending.Push(w)
		f.vtxIn.Release(1)
		f.windowUsed++
	}
	for f.windowUsed < f.cfg.WindowThreads && f.fragArrived.Len() > 0 {
		w := f.fragArrived.Pop()
		if w.span != nil {
			w.span.Enqueue = cycle
		}
		f.fragPending.Push(w)
		f.fragIn.Release(1)
		f.windowUsed++
	}
	if f.windowUsed >= f.cfg.WindowThreads {
		f.statWindowFull.Inc()
	}
}

// eligible reports whether shader s may run the given work kind.
func (f *FragmentFIFO) eligible(s int, kind workKind) bool {
	if f.cfg.UnifiedShaders {
		return true
	}
	if kind == workVertex {
		return s < f.cfg.NumVertexShaders
	}
	return s >= f.cfg.NumVertexShaders
}

func (f *FragmentFIFO) dispatch(cycle int64) {
	n := len(f.shaderIn)
	for k := 0; k < n; k++ {
		s := (f.rr + k) % n
		if !f.shaderIn[s].CanSend(cycle, 1) {
			continue
		}
		var w *ShaderWork
		switch {
		case f.vtxPending.Len() > 0 && f.eligible(s, workVertex):
			w = f.vtxPending.Peek()
			if !f.reserveRegs(w) {
				w = nil
			} else {
				f.vtxPending.Pop()
			}
		case f.fragPending.Len() > 0 && f.eligible(s, workFragment):
			w = f.fragPending.Peek()
			if !f.reserveRegs(w) {
				w = nil
			} else {
				f.fragPending.Pop()
			}
		}
		if w == nil {
			continue
		}
		if w.span != nil {
			w.span.Sched = cycle
		}
		f.shaderIn[s].Send(cycle, w)
		if w.Kind == workVertex {
			f.statVtxThreads.Inc()
		} else {
			f.statFragThreads.Inc()
		}
	}
	f.rr = (f.rr + 1) % n
}

// reserveRegs applies the §2.3 physical-register admission rule: a
// thread needs 4 registers per temporary the program uses.
func (f *FragmentFIFO) reserveRegs(w *ShaderWork) bool {
	prog := w.Batch.State.FragmentProg
	if w.Kind == workVertex {
		prog = w.Batch.State.VertexProg
	}
	need := shaderLanes * prog.TempsUsed()
	usesVPool := !f.cfg.UnifiedShaders && w.Kind == workVertex
	if usesVPool {
		if f.vtxRegs+need > f.cfg.PhysRegsVertex {
			f.statRegStall.Inc()
			return false
		}
		f.vtxRegs += need
	} else {
		if f.fragRegs+need > f.cfg.PhysRegsFragment {
			f.statRegStall.Inc()
			return false
		}
		f.fragRegs += need
	}
	w.Regs = need
	w.VPool = usesVPool
	return true
}

func (f *FragmentFIFO) collectCompletions(cycle int64) {
	for s := range f.shaderOut {
		for _, obj := range f.shaderOut[s].Recv(cycle) {
			w := obj.(*ShaderWork)
			f.shaderOut[s].Release(1)
			if w.span != nil {
				w.span.Complete = cycle
			}
			if w.VPool {
				f.vtxRegs -= w.Regs
			} else {
				f.fragRegs -= w.Regs
			}
			f.outbox.Push(w)
		}
	}
}

func (f *FragmentFIFO) drainOutbox(cycle int64) {
	for f.outbox.Len() > 0 {
		w := f.outbox.Peek()
		if !f.route(cycle, w) {
			return
		}
		f.outbox.Pop()
		f.windowUsed--
		if sp := w.span; sp != nil {
			w.span = nil
			sp.Finish(cycle)
		}
		f.pool.putWork(w)
	}
}

// route sends completed work to its consumer; false when the
// destination has no room this cycle.
func (f *FragmentFIFO) route(cycle int64, w *ShaderWork) bool {
	if w.Kind == workVertex {
		if !f.vtxOut.CanSend(cycle, 1) {
			return false
		}
		f.vtxOut.Send(cycle, w.Vtx)
		return true
	}
	q := w.Frag
	if !q.Alive() {
		// Every lane killed by KIL: the quad retires here.
		q.Batch.ShadedQuads++
		q.Batch.QuadsRetired++
		q.Batch.KilledQuads++
		f.statKilled.Inc()
		f.pool.putQuad(q)
		return true
	}
	rop := f.layout.BlockIndex(q.X, q.Y) % len(f.fragEarly)
	out := f.fragLate[rop]
	if q.Batch.EarlyZ {
		out = f.fragEarly[rop]
	}
	if !out.CanSend(cycle, 1) {
		return false
	}
	// Count only on successful routing: route is retried every cycle
	// while the consumer is full, and each quad is shaded once.
	q.Batch.ShadedQuads++
	out.Send(cycle, q)
	return true
}
