package trace_test

import (
	"bytes"
	"errors"
	"testing"

	"attila/internal/gpu"
	"attila/internal/mem"
	"attila/internal/refrender"
	"attila/internal/trace"
	"attila/internal/workload"
)

const memBytes = 48 << 20

func buildTrace(t testing.TB, name string, frames int) ([]gpu.Command, trace.Header) {
	t.Helper()
	p := workload.DefaultParams()
	p.Width, p.Height = 128, 96
	p.Frames = frames
	alloc := mem.NewAllocator(1<<20, memBytes)
	cmds, hdr, err := workload.Build(name, alloc, p)
	if err != nil {
		t.Fatal(err)
	}
	return cmds, hdr
}

func roundTrip(t *testing.T, cmds []gpu.Command, hdr trace.Header, start, end int) []gpu.Command {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCommands(cmds); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header() != hdr {
		t.Fatalf("header mismatch: %+v vs %+v", r.Header(), hdr)
	}
	out, err := r.ReadAll(start, end)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func render(t *testing.T, cmds []gpu.Command, w, h int) []*gpu.Frame {
	t.Helper()
	ref := refrender.New(memBytes+1<<20, w, h)
	if err := ref.Execute(cmds); err != nil {
		t.Fatal(err)
	}
	return ref.Frames()
}

func TestTraceRoundTripRendersIdentically(t *testing.T) {
	for _, name := range []string{"simple", "doom3"} {
		cmds, hdr := buildTrace(t, name, 1)
		replayed := roundTrip(t, cmds, hdr, 0, -1)
		f1 := render(t, cmds, hdr.Width, hdr.Height)
		f2 := render(t, replayed, hdr.Width, hdr.Height)
		if len(f1) != len(f2) {
			t.Fatalf("%s: frame counts %d vs %d", name, len(f1), len(f2))
		}
		for i := range f1 {
			if diff, _ := gpu.DiffFrames(f1[i], f2[i]); diff != 0 {
				t.Fatalf("%s: frame %d differs after trace roundtrip (%d px)", name, i, diff)
			}
		}
	}
}

func TestTraceHotStart(t *testing.T) {
	cmds, hdr := buildTrace(t, "spinner", 3)
	full := render(t, roundTrip(t, cmds, hdr, 0, -1), hdr.Width, hdr.Height)
	// Hot start at frame 2: buffer writes preserved, earlier frames'
	// draws dropped.
	hot := roundTrip(t, cmds, hdr, 2, -1)
	hotFrames := render(t, hot, hdr.Width, hdr.Height)
	if len(hotFrames) != 1 {
		t.Fatalf("hot start frames: %d", len(hotFrames))
	}
	if diff, maxd := gpu.DiffFrames(full[2], hotFrames[0]); diff != 0 {
		t.Fatalf("hot-start frame differs from full run: %d px (max %d)", diff, maxd)
	}
	// Draw commands of skipped frames must be gone.
	var draws int
	for _, c := range hot {
		if _, ok := c.(gpu.CmdDraw); ok {
			draws++
		}
	}
	fullDraws := 0
	for _, c := range cmds {
		if _, ok := c.(gpu.CmdDraw); ok {
			fullDraws++
		}
	}
	if draws >= fullDraws || draws == 0 {
		t.Fatalf("hot start draws: %d of %d", draws, fullDraws)
	}
}

func TestTraceFrameRange(t *testing.T) {
	cmds, hdr := buildTrace(t, "spinner", 3)
	// Only the first frame.
	head := roundTrip(t, cmds, hdr, 0, 1)
	frames := render(t, head, hdr.Width, hdr.Height)
	if len(frames) != 1 {
		t.Fatalf("frames: %d", len(frames))
	}
	full := render(t, roundTrip(t, cmds, hdr, 0, -1), hdr.Width, hdr.Height)
	if diff, _ := gpu.DiffFrames(full[0], frames[0]); diff != 0 {
		t.Fatalf("first frame differs: %d px", diff)
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	_, err := trace.NewReader(bytes.NewReader([]byte("NOTATRACE___")))
	if !errors.Is(err, trace.ErrCorrupt) {
		t.Fatalf("garbage magic: want ErrCorrupt, got %v", err)
	}
	var buf bytes.Buffer
	w, _ := trace.NewWriter(&buf, trace.Header{Width: 8, Height: 8})
	w.Close()
	data := buf.Bytes()
	// Cut the end-of-trace marker: the reader must fail with the
	// truncation sentinel, not EOF or a panic.
	r, err := trace.NewReader(bytes.NewReader(data[:len(data)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAll(0, -1); !errors.Is(err, trace.ErrTruncated) {
		t.Fatalf("truncated stream: want ErrTruncated, got %v", err)
	}
}
