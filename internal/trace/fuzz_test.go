package trace_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"runtime"
	"testing"

	"attila/internal/trace"
)

// rawTrace hand-assembles trace bytes so tests can lie about length
// fields in ways the Writer never would.
type rawTrace struct{ bytes.Buffer }

func (r *rawTrace) u8(v byte) { r.WriteByte(v) }

func (r *rawTrace) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	r.Write(b[:])
}

func (r *rawTrace) header(w, h, frames int, label string) {
	r.WriteString(trace.Magic)
	r.u32(uint32(w))
	r.u32(uint32(h))
	r.u32(uint32(frames))
	r.u32(uint32(len(label)))
	r.WriteString(label)
}

// onlyReader hides the Seeker so the reader takes the unknown-size
// (streaming) path.
type onlyReader struct{ r io.Reader }

func (o onlyReader) Read(p []byte) (int, error) { return o.r.Read(p) }

// encode serializes a built workload into trace bytes.
func encode(tb testing.TB, name string, frames int) []byte {
	tb.Helper()
	cmds, hdr := buildTrace(tb, name, frames)
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, hdr)
	if err != nil {
		tb.Fatal(err)
	}
	if err := w.WriteCommands(cmds); err != nil {
		tb.Fatal(err)
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// typedTraceErr reports whether err carries one of the reader's two
// sentinels — the contract for every malformed input.
func typedTraceErr(err error) bool {
	return errors.Is(err, trace.ErrTruncated) || errors.Is(err, trace.ErrCorrupt)
}

// A valid trace cut off at any byte must produce a typed error — never
// a panic, never a silent success, never an allocation the remaining
// bytes cannot back.
func TestTraceTruncationAlwaysTyped(t *testing.T) {
	data := encode(t, "simple", 1)
	step := len(data) / 512
	if step < 1 {
		step = 1
	}
	for cut := 0; cut < len(data); cut += step {
		r, err := trace.NewReader(bytes.NewReader(data[:cut]))
		if err == nil {
			_, err = r.ReadAll(0, -1)
		}
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes read as a complete trace", cut, len(data))
		}
		if !typedTraceErr(err) {
			t.Fatalf("prefix of %d bytes: untyped error %v", cut, err)
		}
	}
}

// A buffer-write record claiming ~4 GiB over a few dozen input bytes
// must be rejected as corrupt by the seekable path before any
// allocation proportional to the lying length field.
func TestTraceCorruptLengthRejectedWithoutAllocation(t *testing.T) {
	var raw rawTrace
	raw.header(8, 8, 1, "lie")
	raw.u8(1)           // recBufferWrite
	raw.u32(0)          // addr
	raw.u32(0xFFFF0000) // claims ~4 GiB of payload
	data := raw.Bytes()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	r, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.ReadAll(0, -1)
	runtime.ReadMemStats(&after)
	if !errors.Is(err, trace.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if delta := after.TotalAlloc - before.TotalAlloc; delta > 1<<20 {
		t.Fatalf("rejecting a corrupt length allocated %d bytes", delta)
	}
}

// The same lying record over a non-seekable stream cannot be rejected
// up front, but chunked reads bound memory by the bytes actually
// present: the read fails as truncated after at most one chunk.
func TestTraceCorruptLengthStreamingBounded(t *testing.T) {
	var raw rawTrace
	raw.header(8, 8, 1, "lie")
	raw.u8(1)
	raw.u32(0)
	raw.u32(0xFFFF0000)
	data := raw.Bytes()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	r, err := trace.NewReader(onlyReader{bytes.NewReader(data)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.ReadAll(0, -1)
	runtime.ReadMemStats(&after)
	if !errors.Is(err, trace.ErrTruncated) {
		t.Fatalf("want ErrTruncated on the streaming path, got %v", err)
	}
	// One blobChunk (1 MiB) plus reader buffers — nothing near 4 GiB.
	if delta := after.TotalAlloc - before.TotalAlloc; delta > 8<<20 {
		t.Fatalf("streaming reject allocated %d bytes", delta)
	}
}

// FuzzReader feeds arbitrary bytes through both reader paths. The
// invariant: no panic, and every failure carries ErrTruncated or
// ErrCorrupt. Seeds are real workload traces so mutations explore deep
// record structure, not just the header.
func FuzzReader(f *testing.F) {
	for _, name := range []string{"simple", "spinner"} {
		f.Add(encode(f, name, 1))
	}
	f.Add([]byte(trace.Magic))
	f.Add([]byte("NOTATRACE___"))
	var raw rawTrace
	raw.header(8, 8, 1, "seed")
	raw.u8(5)    // recSwap
	raw.u8(0xFF) // recEnd
	f.Add(raw.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		srcs := []io.Reader{
			bytes.NewReader(data),
			onlyReader{bytes.NewReader(data)},
		}
		for i, src := range srcs {
			r, err := trace.NewReader(src)
			if err == nil {
				_, err = r.ReadAll(0, -1)
			}
			if err != nil && !typedTraceErr(err) {
				t.Fatalf("path %d: untyped reader error %v", i, err)
			}
		}
	})
}
