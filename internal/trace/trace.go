// Package trace implements the trace file format of the OpenGL
// framework (paper §4): a self-contained stream of low-level GPU
// commands with all referenced buffer and texture data inlined, the
// equivalent of the files GLInterceptor captures from running
// applications. Traces are replayed into the timing simulator
// (cmd/attilasim) or validated with the functional reference renderer
// (cmd/traceplay, the GLPlayer stand-in).
//
// The reader supports the paper's "hot start" technique: because
// frames are independent, simulation can start at any frame; draws,
// clears and swaps of skipped frames are dropped while state and
// buffer writes are preserved.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"attila/internal/emu/fragemu"
	"attila/internal/emu/texemu"
	"attila/internal/gpu"
	"attila/internal/isa"
	"attila/internal/vmath"
)

// Magic identifies trace files; the trailing digit is the format
// version.
const Magic = "ATTILATRACE2"

// Header carries the trace-wide metadata.
type Header struct {
	Width  int
	Height int
	Frames int
	Label  string // workload name
}

const (
	recBufferWrite byte = 1
	recDraw        byte = 2
	recClearColor  byte = 3
	recClearZS     byte = 4
	recSwap        byte = 5
	recSetTarget   byte = 6
	recEnd         byte = 0xFF
)

// Writer serializes a command stream.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	tw := &Writer{w: bufio.NewWriterSize(w, 1<<16)}
	tw.bytes([]byte(Magic))
	tw.u32(uint32(h.Width))
	tw.u32(uint32(h.Height))
	tw.u32(uint32(h.Frames))
	tw.str(h.Label)
	return tw, tw.err
}

// WriteCommands appends commands to the trace.
func (t *Writer) WriteCommands(cmds []gpu.Command) error {
	for _, cmd := range cmds {
		switch c := cmd.(type) {
		case gpu.CmdBufferWrite:
			t.u8(recBufferWrite)
			t.u32(c.Addr)
			t.u32(uint32(len(c.Data)))
			t.bytes(c.Data)
		case gpu.CmdDraw:
			t.u8(recDraw)
			t.drawState(c.State)
		case gpu.CmdClearColor:
			t.u8(recClearColor)
			t.bytes(c.Value[:])
		case gpu.CmdClearZS:
			t.u8(recClearZS)
			t.f32(c.Depth)
			t.u8(c.Stencil)
		case gpu.CmdSwap:
			t.u8(recSwap)
		case gpu.CmdSetRenderTarget:
			t.u8(recSetTarget)
			t.boolb(c.Default)
			t.u32(c.Target.Base)
			t.i32(c.Target.W)
			t.i32(c.Target.H)
		default:
			return fmt.Errorf("trace: unknown command %T", cmd)
		}
	}
	return t.err
}

// Close finishes the trace.
func (t *Writer) Close() error {
	t.u8(recEnd)
	if err := t.w.Flush(); t.err == nil {
		t.err = err
	}
	return t.err
}

func (t *Writer) u8(v byte) {
	if t.err == nil {
		t.err = t.w.WriteByte(v)
	}
}

func (t *Writer) bytes(b []byte) {
	if t.err == nil {
		_, t.err = t.w.Write(b)
	}
}

func (t *Writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	t.bytes(b[:])
}

func (t *Writer) i32(v int) { t.u32(uint32(int32(v))) }

func (t *Writer) f32(v float32) { t.u32(math.Float32bits(v)) }

func (t *Writer) boolb(v bool) {
	if v {
		t.u8(1)
	} else {
		t.u8(0)
	}
}

func (t *Writer) str(s string) {
	t.u32(uint32(len(s)))
	t.bytes([]byte(s))
}

func (t *Writer) vec(v vmath.Vec4) {
	for i := 0; i < 4; i++ {
		t.f32(v[i])
	}
}

func (t *Writer) vecs(vs []vmath.Vec4) {
	t.u32(uint32(len(vs)))
	for _, v := range vs {
		t.vec(v)
	}
}

func (t *Writer) drawState(st *gpu.DrawState) {
	t.str(st.VertexProg.Disassemble())
	t.str(st.FragmentProg.Disassemble())
	t.vecs(st.VertConsts)
	t.vecs(st.FragConsts)

	t.i32(st.Viewport.X)
	t.i32(st.Viewport.Y)
	t.i32(st.Viewport.W)
	t.i32(st.Viewport.H)
	t.f32(st.Viewport.Near)
	t.f32(st.Viewport.Far)
	t.boolb(st.ScissorEnabled)
	t.i32(st.ScissorX)
	t.i32(st.ScissorY)
	t.i32(st.ScissorW)
	t.i32(st.ScissorH)
	t.boolb(st.CullFront)
	t.boolb(st.CullBack)

	t.boolb(st.Depth.Enabled)
	t.u8(byte(st.Depth.Func))
	t.boolb(st.Depth.WriteMask)

	t.boolb(st.Stencil.Enabled)
	t.u8(byte(st.Stencil.Func))
	t.u8(st.Stencil.Ref)
	t.u8(st.Stencil.ReadMask)
	t.u8(st.Stencil.WriteMask)
	t.u8(byte(st.Stencil.SFail))
	t.u8(byte(st.Stencil.DPFail))
	t.u8(byte(st.Stencil.DPPass))
	t.boolb(st.TwoSidedStencil)
	t.u8(byte(st.StencilBack.Func))
	t.u8(st.StencilBack.Ref)
	t.u8(st.StencilBack.ReadMask)
	t.u8(st.StencilBack.WriteMask)
	t.u8(byte(st.StencilBack.SFail))
	t.u8(byte(st.StencilBack.DPFail))
	t.u8(byte(st.StencilBack.DPPass))

	t.boolb(st.Blend.Enabled)
	t.u8(byte(st.Blend.SrcRGB))
	t.u8(byte(st.Blend.DstRGB))
	t.u8(byte(st.Blend.SrcA))
	t.u8(byte(st.Blend.DstA))
	t.u8(byte(st.Blend.EqRGB))
	t.u8(byte(st.Blend.EqA))
	t.vec(st.Blend.Const)

	for i := 0; i < 4; i++ {
		t.boolb(st.ColorMask[i])
	}

	// Textures.
	n := 0
	for _, tex := range st.Textures {
		if tex != nil {
			n++
		}
	}
	t.u32(uint32(n))
	for unit, tex := range st.Textures {
		if tex == nil {
			continue
		}
		t.u32(uint32(unit))
		t.texture(tex)
	}

	// Attributes.
	for i := range st.Attribs {
		a := &st.Attribs[i]
		t.boolb(a.Enabled)
		t.vec(a.Const)
		t.u32(a.Addr)
		t.u32(a.Stride)
		t.i32(a.Size)
	}

	t.u32(st.IndexAddr)
	t.i32(st.IndexSize)
	t.i32(st.First)
	t.i32(st.Count)
	t.u8(byte(st.Primitive))
}

func (t *Writer) texture(tex *texemu.Texture) {
	t.u8(byte(tex.Target))
	t.u8(byte(tex.Format))
	t.i32(tex.Width)
	t.i32(tex.Height)
	t.i32(tex.Depth)
	t.i32(tex.Levels)
	t.u8(byte(tex.WrapS))
	t.u8(byte(tex.WrapT))
	t.u8(byte(tex.WrapR))
	t.u8(byte(tex.MinFilter))
	t.u8(byte(tex.MagFilter))
	t.i32(tex.MaxAniso)
	for f := 0; f < tex.Faces(); f++ {
		for l := 0; l < tex.Levels; l++ {
			t.u32(tex.Base[f][l])
		}
	}
}

// ErrTruncated matches (via errors.Is) reader errors caused by the
// input ending before a complete record: a cut-short download or
// interrupted capture. The prefix read so far was well formed.
var ErrTruncated = errors.New("trace: truncated stream")

// ErrCorrupt matches (via errors.Is) reader errors caused by input
// that cannot be a valid trace: bad magic, unknown record types,
// length fields exceeding the input or any sane cap, invalid
// dimensions. Distinct from ErrTruncated so tools can suggest
// re-capturing vs re-copying.
var ErrCorrupt = errors.New("trace: corrupt stream")

// Sanity caps on length fields. A corrupt or hostile length must
// never drive an allocation the actual input cannot back.
const (
	maxSurfaceDim = 1 << 14 // render target / surface edge in pixels
	maxFrameCount = 1 << 24
	maxStringLen  = 1 << 26 // shader text, labels
	blobChunk     = 1 << 20 // read granularity when input size is unknown

	// maxResyncScan bounds how far past a corrupt record the reader
	// will look for the next parseable record in skip-corrupt mode.
	maxResyncScan = 1 << 16
)

// Reader deserializes a trace. Length fields are validated against
// the remaining input (when the source is seekable) and against
// absolute caps before any allocation, so a corrupt trace fails with
// a typed error instead of an out-of-memory demand.
type Reader struct {
	r    *bufio.Reader
	hdr  Header
	err  error
	off  int64 // bytes consumed so far
	size int64 // total input bytes, -1 when unknown

	// Skip-corrupt mode (SetSkipCorrupt): on a corrupt record body the
	// reader rewinds to the byte after the bad record's start and scans
	// forward for the next offset where a whole record parses, instead
	// of failing the read. Needs a seekable source.
	src          io.ReadSeeker // nil when the source cannot seek
	base         int64         // absolute source offset of the stream start
	skipCorrupt  bool
	skipped      int   // corrupt regions skipped over
	skippedBytes int64 // bytes discarded by skipping
}

// inputSize returns how many bytes remain in r when it is seekable,
// else -1.
func inputSize(r io.Reader) int64 {
	s, ok := r.(io.Seeker)
	if !ok {
		return -1
	}
	cur, err := s.Seek(0, io.SeekCurrent)
	if err != nil {
		return -1
	}
	end, err := s.Seek(0, io.SeekEnd)
	if err != nil {
		return -1
	}
	if _, err := s.Seek(cur, io.SeekStart); err != nil {
		return -1
	}
	return end - cur
}

// NewReader reads and validates the header. Errors match ErrTruncated
// or ErrCorrupt.
func NewReader(r io.Reader) (*Reader, error) {
	tr := &Reader{r: bufio.NewReaderSize(r, 1<<16), size: inputSize(r)}
	if s, ok := r.(io.ReadSeeker); ok {
		if base, err := s.Seek(0, io.SeekCurrent); err == nil {
			tr.src, tr.base = s, base
		}
	}
	magic := make([]byte, len(Magic))
	tr.readFull(magic)
	if tr.err != nil {
		return nil, tr.err
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	tr.hdr.Width = int(tr.u32())
	tr.hdr.Height = int(tr.u32())
	tr.hdr.Frames = int(tr.u32())
	tr.hdr.Label = tr.str()
	if tr.err != nil {
		return nil, tr.err
	}
	if tr.hdr.Width <= 0 || tr.hdr.Width > maxSurfaceDim ||
		tr.hdr.Height <= 0 || tr.hdr.Height > maxSurfaceDim {
		return nil, fmt.Errorf("%w: implausible render target %dx%d", ErrCorrupt, tr.hdr.Width, tr.hdr.Height)
	}
	if tr.hdr.Frames < 0 || tr.hdr.Frames > maxFrameCount {
		return nil, fmt.Errorf("%w: implausible frame count %d", ErrCorrupt, tr.hdr.Frames)
	}
	return tr, nil
}

// Header returns the trace metadata.
func (t *Reader) Header() Header { return t.hdr }

// SetSkipCorrupt switches the reader into graceful-degradation mode:
// a record that fails to parse as corrupt is skipped by scanning
// forward (up to maxResyncScan bytes) for the next offset where a
// whole record parses, instead of failing the read. Skipped regions
// are counted; see Skipped. Resynchronization needs a seekable source
// (a file, not a pipe) — on an unseekable source the flag has no
// effect. Truncation still fails: there is nothing after the end to
// resync onto.
func (t *Reader) SetSkipCorrupt(on bool) { t.skipCorrupt = on }

// Skipped reports how many corrupt regions were skipped over and how
// many bytes they covered. Nonzero counts mean the command stream has
// holes: the simulation still runs, but rendered output may differ
// from the original capture.
func (t *Reader) Skipped() (regions int, bytes int64) {
	return t.skipped, t.skippedBytes
}

// ReadAll reads every command. startFrame > 0 applies hot start:
// commands belonging to earlier frames are dropped except buffer
// writes. endFrame < 0 reads to the end; otherwise reading stops
// after that frame's swap (exclusive upper bound on frame index).
//
// Failures are typed: errors.Is(err, ErrTruncated) for input that
// stops mid-stream, errors.Is(err, ErrCorrupt) for input that cannot
// be a valid trace.
func (t *Reader) ReadAll(startFrame, endFrame int) ([]gpu.Command, error) {
	var out []gpu.Command
	frame := 0
	for {
		recStart := t.off
		rec := t.u8()
		if t.err != nil {
			return nil, t.err
		}
		if rec == recEnd {
			return out, t.err
		}
		cmd := t.readRecordBody(rec)
		if t.err != nil {
			if t.skipCorrupt && errors.Is(t.err, ErrCorrupt) && t.resync(recStart) {
				continue
			}
			return nil, t.err
		}
		skip := frame < startFrame
		switch c := cmd.(type) {
		case gpu.CmdBufferWrite, gpu.CmdSetRenderTarget:
			// State carriers survive hot start: later frames depend on
			// the buffers and targets earlier frames established.
			out = append(out, c)
		case gpu.CmdSwap:
			if !skip {
				out = append(out, c)
			}
			frame++
			if endFrame >= 0 && frame >= endFrame {
				return out, t.err
			}
		default:
			if !skip {
				out = append(out, c)
			}
		}
	}
}

// readRecordBody parses the body of one record of the given type and
// returns the decoded command. On any parse failure it records a typed
// error and returns nil.
func (t *Reader) readRecordBody(rec byte) gpu.Command {
	switch rec {
	case recBufferWrite:
		addr := t.u32()
		n := t.u32()
		data := t.blob(n, "buffer write")
		return gpu.CmdBufferWrite{Addr: addr, Data: data}
	case recDraw:
		return gpu.CmdDraw{State: t.drawState()}
	case recClearColor:
		var v [4]byte
		t.readFull(v[:])
		return gpu.CmdClearColor{Value: v}
	case recClearZS:
		d := t.f32()
		s := t.u8()
		return gpu.CmdClearZS{Depth: d, Stencil: s}
	case recSetTarget:
		def := t.boolb()
		base := t.u32()
		w := t.i32()
		hh := t.i32()
		cmd := gpu.CmdSetRenderTarget{Default: def}
		if !def {
			if t.err == nil && (w <= 0 || w > maxSurfaceDim || hh <= 0 || hh > maxSurfaceDim) {
				t.fail(ErrCorrupt, "implausible render target %dx%d", w, hh)
				return nil
			}
			cmd.Target = gpu.NewSurfaceLayout(base, w, hh)
		}
		return cmd
	case recSwap:
		return gpu.CmdSwap{}
	default:
		t.fail(ErrCorrupt, "unknown record type %d", rec)
		return nil
	}
}

// seekTo repositions the reader at stream offset off (relative to the
// stream start, like t.off). Only callable when the source can seek.
func (t *Reader) seekTo(off int64) bool {
	if _, err := t.src.Seek(t.base+off, io.SeekStart); err != nil {
		t.err = err
		return false
	}
	t.r.Reset(t.src)
	t.off = off
	return true
}

// resync recovers from a corrupt record starting at recStart: it
// retries the parse at each successive byte offset until a whole
// record (or the end marker) parses cleanly, then repositions the
// stream there so the caller's loop continues with that record. The
// scan is bounded by maxResyncScan; if no offset works — or the source
// cannot seek — the original error is reinstated and resync reports
// false.
func (t *Reader) resync(recStart int64) bool {
	if t.src == nil {
		return false
	}
	firstErr := t.err
	limit := recStart + 1 + maxResyncScan
	if t.size >= 0 && limit > t.size {
		limit = t.size
	}
	for cand := recStart + 1; cand < limit; cand++ {
		if !t.seekTo(cand) {
			return false
		}
		t.err = nil
		rec := t.u8()
		if t.err == nil && rec != recEnd {
			t.readRecordBody(rec)
		}
		if t.err != nil {
			continue
		}
		// The candidate parses. Rewind to it so the caller re-reads the
		// record for real (the trial discarded the decoded command).
		if !t.seekTo(cand) {
			t.err = firstErr
			return false
		}
		t.err = nil
		t.skipped++
		t.skippedBytes += cand - recStart
		return true
	}
	t.err = firstErr
	return false
}

// fail records the first error, tagged with the stream offset so a
// corrupt byte is locatable with a hex dump.
func (t *Reader) fail(sentinel error, format string, args ...any) {
	if t.err == nil {
		t.err = fmt.Errorf("%w: %s (at byte %d)", sentinel, fmt.Sprintf(format, args...), t.off)
	}
}

// ioErr classifies a raw read error: any flavor of EOF means the
// input stopped mid-record.
func (t *Reader) ioErr(err error) {
	if err == nil || t.err != nil {
		return
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		t.err = fmt.Errorf("%w: input ends mid-record (at byte %d)", ErrTruncated, t.off)
		return
	}
	t.err = err
}

func (t *Reader) readFull(b []byte) {
	if t.err != nil {
		return
	}
	n, err := io.ReadFull(t.r, b)
	t.off += int64(n)
	t.ioErr(err)
}

// blob allocates and reads an n-byte field. When the input size is
// known, a length beyond the remaining bytes is rejected before any
// allocation; when it is not (a pipe), the field is read in
// blobChunk pieces so memory use is bounded by the bytes actually
// present, never by the corrupt length itself.
func (t *Reader) blob(n uint32, what string) []byte {
	if t.err != nil {
		return nil
	}
	if t.size >= 0 {
		if int64(n) > t.size-t.off {
			t.fail(ErrCorrupt, "%s length %d exceeds the %d bytes of remaining input", what, n, t.size-t.off)
			return nil
		}
		b := make([]byte, n)
		t.readFull(b)
		return b
	}
	var out []byte
	for left := int64(n); left > 0 && t.err == nil; {
		c := left
		if c > blobChunk {
			c = blobChunk
		}
		buf := make([]byte, c)
		t.readFull(buf)
		if t.err != nil {
			return nil
		}
		out = append(out, buf...)
		left -= c
	}
	return out
}

func (t *Reader) u8() byte {
	if t.err != nil {
		return 0
	}
	b, err := t.r.ReadByte()
	if err != nil {
		t.ioErr(err)
		return 0
	}
	t.off++
	return b
}

func (t *Reader) u32() uint32 {
	var b [4]byte
	t.readFull(b[:])
	if t.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

func (t *Reader) i32() int { return int(int32(t.u32())) }

func (t *Reader) f32() float32 { return math.Float32frombits(t.u32()) }

func (t *Reader) boolb() bool { return t.u8() != 0 }

func (t *Reader) str() string {
	n := t.u32()
	if t.err != nil {
		return ""
	}
	if n > maxStringLen {
		t.fail(ErrCorrupt, "unreasonable string length %d", n)
		return ""
	}
	return string(t.blob(n, "string"))
}

func (t *Reader) vec() vmath.Vec4 {
	var v vmath.Vec4
	for i := 0; i < 4; i++ {
		v[i] = t.f32()
	}
	return v
}

func (t *Reader) vecs() []vmath.Vec4 {
	n := t.u32()
	if t.err != nil {
		return nil
	}
	if n > isa.MaxConsts {
		t.fail(ErrCorrupt, "constant bank too large: %d", n)
		return nil
	}
	out := make([]vmath.Vec4, n)
	for i := range out {
		out[i] = t.vec()
	}
	return out
}

func (t *Reader) drawState() *gpu.DrawState {
	st := &gpu.DrawState{}
	vpText := t.str()
	fpText := t.str()
	if t.err == nil {
		vp, err := isa.Assemble(isa.VertexProgram, "trace-vp", vpText)
		if err != nil {
			t.fail(ErrCorrupt, "vertex program does not assemble: %v", err)
			return st
		}
		fp, err := isa.Assemble(isa.FragmentProgram, "trace-fp", fpText)
		if err != nil {
			t.fail(ErrCorrupt, "fragment program does not assemble: %v", err)
			return st
		}
		st.VertexProg, st.FragmentProg = vp, fp
	}
	st.VertConsts = t.vecs()
	st.FragConsts = t.vecs()

	st.Viewport.X = t.i32()
	st.Viewport.Y = t.i32()
	st.Viewport.W = t.i32()
	st.Viewport.H = t.i32()
	st.Viewport.Near = t.f32()
	st.Viewport.Far = t.f32()
	st.ScissorEnabled = t.boolb()
	st.ScissorX = t.i32()
	st.ScissorY = t.i32()
	st.ScissorW = t.i32()
	st.ScissorH = t.i32()
	st.CullFront = t.boolb()
	st.CullBack = t.boolb()

	st.Depth.Enabled = t.boolb()
	st.Depth.Func = fragemu.CompareFunc(t.u8())
	st.Depth.WriteMask = t.boolb()

	st.Stencil.Enabled = t.boolb()
	st.Stencil.Func = fragemu.CompareFunc(t.u8())
	st.Stencil.Ref = t.u8()
	st.Stencil.ReadMask = t.u8()
	st.Stencil.WriteMask = t.u8()
	st.Stencil.SFail = fragemu.StencilOp(t.u8())
	st.Stencil.DPFail = fragemu.StencilOp(t.u8())
	st.Stencil.DPPass = fragemu.StencilOp(t.u8())
	st.TwoSidedStencil = t.boolb()
	st.StencilBack.Func = fragemu.CompareFunc(t.u8())
	st.StencilBack.Ref = t.u8()
	st.StencilBack.ReadMask = t.u8()
	st.StencilBack.WriteMask = t.u8()
	st.StencilBack.SFail = fragemu.StencilOp(t.u8())
	st.StencilBack.DPFail = fragemu.StencilOp(t.u8())
	st.StencilBack.DPPass = fragemu.StencilOp(t.u8())

	st.Blend.Enabled = t.boolb()
	st.Blend.SrcRGB = fragemu.BlendFactor(t.u8())
	st.Blend.DstRGB = fragemu.BlendFactor(t.u8())
	st.Blend.SrcA = fragemu.BlendFactor(t.u8())
	st.Blend.DstA = fragemu.BlendFactor(t.u8())
	st.Blend.EqRGB = fragemu.BlendEq(t.u8())
	st.Blend.EqA = fragemu.BlendEq(t.u8())
	st.Blend.Const = t.vec()

	for i := 0; i < 4; i++ {
		st.ColorMask[i] = t.boolb()
	}

	nTex := t.u32()
	if t.err == nil && nTex > 16 {
		t.fail(ErrCorrupt, "too many textures: %d", nTex)
		return st
	}
	for i := uint32(0); i < nTex && t.err == nil; i++ {
		unit := t.u32()
		tex := t.texture()
		if unit < 16 {
			st.Textures[unit] = tex
		}
	}

	for i := range st.Attribs {
		a := &st.Attribs[i]
		a.Enabled = t.boolb()
		a.Const = t.vec()
		a.Addr = t.u32()
		a.Stride = t.u32()
		a.Size = t.i32()
	}

	st.IndexAddr = t.u32()
	st.IndexSize = t.i32()
	st.First = t.i32()
	st.Count = t.i32()
	st.Primitive = gpu.PrimMode(t.u8())
	return st
}

func (t *Reader) texture() *texemu.Texture {
	tex := &texemu.Texture{}
	tex.Target = isa.TexTarget(t.u8())
	tex.Format = texemu.Format(t.u8())
	tex.Width = t.i32()
	tex.Height = t.i32()
	tex.Depth = t.i32()
	tex.Levels = t.i32()
	tex.WrapS = texemu.Wrap(t.u8())
	tex.WrapT = texemu.Wrap(t.u8())
	tex.WrapR = texemu.Wrap(t.u8())
	tex.MinFilter = texemu.Filter(t.u8())
	tex.MagFilter = texemu.Filter(t.u8())
	tex.MaxAniso = t.i32()
	if t.err != nil {
		return tex
	}
	if err := tex.Validate(); err != nil {
		t.fail(ErrCorrupt, "invalid texture: %v", err)
		return tex
	}
	for f := 0; f < tex.Faces(); f++ {
		for l := 0; l < tex.Levels; l++ {
			tex.Base[f][l] = t.u32()
		}
	}
	return tex
}
