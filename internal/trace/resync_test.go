package trace_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"attila/internal/gpu"
	"attila/internal/trace"
)

// encodeTrace serializes cmds and returns the byte stream plus the
// offset of every record's type byte (found by encoding each prefix:
// a closed trace of k commands is the k+1'th record's offset plus the
// end marker).
func encodeTrace(t *testing.T, cmds []gpu.Command, hdr trace.Header) (data []byte, recOffs []int64) {
	t.Helper()
	for k := 0; k <= len(cmds); k++ {
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf, hdr)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteCommands(cmds[:k]); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if k < len(cmds) {
			recOffs = append(recOffs, int64(buf.Len()-1))
		} else {
			data = buf.Bytes()
		}
	}
	return data, recOffs
}

// unseekable hides the Seeker interface of a bytes.Reader, like a
// pipe would.
type unseekable struct{ r io.Reader }

func (u unseekable) Read(b []byte) (int, error) { return u.r.Read(b) }

func readMutated(t *testing.T, data []byte, seekable, skip bool) (*trace.Reader, []gpu.Command, error) {
	t.Helper()
	var src io.Reader = bytes.NewReader(data)
	if !seekable {
		src = unseekable{src}
	}
	r, err := trace.NewReader(src)
	if err != nil {
		t.Fatal(err)
	}
	r.SetSkipCorrupt(skip)
	cmds, err := r.ReadAll(0, -1)
	return r, cmds, err
}

func TestResyncSkipsCorruptRecord(t *testing.T) {
	cmds, hdr := buildTrace(t, "simple", 1)
	if len(cmds) < 6 {
		t.Fatalf("workload too small: %d commands", len(cmds))
	}
	data, recOffs := encodeTrace(t, cmds, hdr)

	// Smash one mid-stream record's type byte.
	victim := len(recOffs) / 2
	mut := append([]byte(nil), data...)
	mut[recOffs[victim]] = 0xEE

	// Strict mode: typed corruption error.
	if _, _, err := readMutated(t, mut, true, false); !errors.Is(err, trace.ErrCorrupt) {
		t.Fatalf("strict read: got %v, want ErrCorrupt", err)
	}

	// Skip mode on a seekable source: resync past the bad record and
	// deliver the rest.
	r, got, err := readMutated(t, mut, true, true)
	if err != nil {
		t.Fatalf("skip mode failed: %v", err)
	}
	regions, bytesSkipped := r.Skipped()
	if regions < 1 || bytesSkipped < 1 {
		t.Errorf("skipped %d regions / %d bytes, want at least one", regions, bytesSkipped)
	}
	if len(got) == 0 || len(got) >= len(cmds) {
		t.Errorf("recovered %d commands out of %d; a bad record must cost at least one", len(got), len(cmds))
	}

	// A clean trace must skip nothing.
	r, got, err = readMutated(t, data, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if regions, _ := r.Skipped(); regions != 0 {
		t.Errorf("clean trace skipped %d regions", regions)
	}
	if len(got) != len(cmds) {
		t.Errorf("clean trace yielded %d commands, want %d", len(got), len(cmds))
	}
}

// Resync needs to rewind; on a pipe-like source the skip flag cannot
// help and the typed error must come through unchanged.
func TestResyncNeedsSeekableSource(t *testing.T) {
	cmds, hdr := buildTrace(t, "simple", 1)
	data, recOffs := encodeTrace(t, cmds, hdr)
	mut := append([]byte(nil), data...)
	mut[recOffs[len(recOffs)/2]] = 0xEE

	if _, _, err := readMutated(t, mut, false, true); !errors.Is(err, trace.ErrCorrupt) {
		t.Fatalf("unseekable skip read: got %v, want ErrCorrupt", err)
	}
}

// Truncation is not corruption: there is nothing after the cut to
// resync onto, so skip mode still reports ErrTruncated.
func TestResyncDoesNotMaskTruncation(t *testing.T) {
	cmds, hdr := buildTrace(t, "simple", 1)
	data, recOffs := encodeTrace(t, cmds, hdr)
	cut := data[:recOffs[len(recOffs)/2]+2]

	if _, _, err := readMutated(t, cut, true, true); !errors.Is(err, trace.ErrTruncated) {
		t.Fatalf("truncated skip read: got %v, want ErrTruncated", err)
	}
}

// Every record type byte, when flipped to garbage, must be either
// resynced past or reported as a typed error — never a panic or an
// untyped failure.
func TestResyncEveryRecordMutation(t *testing.T) {
	cmds, hdr := buildTrace(t, "simple", 1)
	data, recOffs := encodeTrace(t, cmds, hdr)
	for _, off := range recOffs {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x5A
		// The mutation may decode as a valid record of another type
		// (no error, nothing skipped); only parse failures must be
		// resynced past or typed.
		_, _, err := readMutated(t, mut, true, true)
		if err != nil &&
			!errors.Is(err, trace.ErrCorrupt) && !errors.Is(err, trace.ErrTruncated) {
			t.Errorf("offset %d: untyped error %v", off, err)
		}
	}
}
