// Package fsatomic provides the single durable atomic-write primitive
// every control-plane file in this repository goes through: lease
// files, heartbeats, queue specs, sweep records, results, and the jobd
// state file. The sequence is write-to-temp, fsync the temp, rename
// over the target, then fsync the parent directory so the rename
// itself survives a power cut. Skipping either fsync reintroduces the
// torn-lease bug this package exists to close: after a crash the
// rename can surface an empty or partial file that readers then treat
// as corrupt — and a corrupt lease is stealable, so a live owner loses
// its jobs to a failure that never happened.
//
// The checkpoint container (internal/chkpt) keeps its own copy of this
// sequence because it streams gzip through the temp file rather than
// buffering the payload; both implementations must stay semantically
// identical.
package fsatomic

import (
	"os"
	"path/filepath"
	"syscall"
)

// WriteFile atomically and durably replaces path with data. The parent
// directory is created if missing. On any error the temp file is
// removed and the previous contents of path (if any) are untouched.
func WriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so a preceding rename is durable. Some
// filesystems (and some CI sandboxes) refuse fsync on directories with
// EINVAL or ENOTSUP; that is tolerated — the rename is still atomic,
// just not guaranteed durable, which matches the behavior of the
// checkpoint writer on the same filesystem.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if pe, ok := err.(*os.PathError); ok {
			if errno, ok := pe.Err.(syscall.Errno); ok && (errno == syscall.EINVAL || errno == syscall.ENOTSUP) {
				return nil
			}
		}
		return err
	}
	return nil
}
