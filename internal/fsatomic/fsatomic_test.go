package fsatomic

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "deeper", "state.json")

	if err := WriteFile(path, []byte("v1")); err != nil {
		t.Fatalf("WriteFile (create): %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("after create: got %q err %v", got, err)
	}

	if err := WriteFile(path, []byte("v2 longer")); err != nil {
		t.Fatalf("WriteFile (replace): %v", err)
	}
	got, err = os.ReadFile(path)
	if err != nil || !bytes.Equal(got, []byte("v2 longer")) {
		t.Fatalf("after replace: got %q err %v", got, err)
	}
}

func TestWriteFileLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 5; i++ {
		if err := WriteFile(filepath.Join(dir, "f.json"), []byte("x")); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 1 || entries[0].Name() != "f.json" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("want exactly [f.json], got %v", names)
	}
}

func TestSyncDirOnRealDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatalf("SyncDir on missing dir: want error, got nil")
	}
}
