package mem

import (
	"testing"
)

// TestTransactionRoundTripAllocFree pins the transaction recycling
// scheme: after warm-up, a full write+read round trip through the
// port and controller — request enqueue, controller scheduling,
// reply dequeue — must not allocate. Requests ride back to the port
// on Reply.spent and replies ride back to the controller on
// Request.spent, so the free lists feed each other and the hot loop
// reaches a zero-allocation steady state.
func TestTransactionRoundTripAllocFree(t *testing.T) {
	cfg := DefaultControllerConfig()
	h := newMCHarness(t, cfg, 1<<16, "U")
	p := h.ports[0]

	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	cycle := int64(0)

	// One write and one read per trip, drained to completion so the
	// next trip starts from an idle controller.
	roundTrip := func() {
		p.Write(cycle, 512, data, 0)
		p.Read(cycle, 1024, 64, 0)
		seen := 0
		for seen < 2 {
			h.step(cycle)
			seen += len(p.Replies(cycle))
			cycle++
			if cycle > 1<<20 {
				t.Fatal("replies never arrived")
			}
		}
	}

	// Warm the free lists: the first trips allocate the request and
	// reply objects plus the signal ring and queue backing arrays.
	for i := 0; i < 32; i++ {
		roundTrip()
	}
	if avg := testing.AllocsPerRun(100, roundTrip); avg != 0 {
		t.Fatalf("steady-state transaction round trip allocates %.1f objects, want 0", avg)
	}
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding after drain: %d", p.Outstanding())
	}
}
