// Package mem models the GPU memory system (paper §2.2): a flat GDDR
// memory backing store, a memory controller with multiple interleaved
// channels, page-hit timing and read/write turnaround penalties, a
// crossbar of per-unit request queues, and the generic timing cache
// used to build the texture, Z and color caches (Table 2), including
// the fast-clear and compressed-line states.
package mem

import "fmt"

// TransactionSize is the memory access unit: a 64-byte transaction
// (4-cycle transfer from a double-rate 64-bit DDR channel, paper
// §2.2). Compressed lines issue smaller 16/32-byte transactions.
const TransactionSize = 64

// GPUMemory is the flat GDDR backing store. It is shared by the
// timing memory controller and the functional paths (the reference
// renderer and the DAC verification dump read it directly).
type GPUMemory struct {
	data []byte
}

// NewGPUMemory allocates size bytes of GPU memory.
func NewGPUMemory(size int) *GPUMemory {
	return &GPUMemory{data: make([]byte, size)}
}

// Size returns the memory capacity in bytes.
func (m *GPUMemory) Size() int { return len(m.data) }

func (m *GPUMemory) check(addr uint32, n int) {
	if int(addr)+n > len(m.data) {
		panic(fmt.Sprintf("mem: access [%d, %d) beyond %d-byte memory", addr, int(addr)+n, len(m.data)))
	}
}

// ReadBytes copies memory into dst (implements texemu.MemReader).
func (m *GPUMemory) ReadBytes(addr uint32, dst []byte) {
	m.check(addr, len(dst))
	copy(dst, m.data[addr:])
}

// WriteBytes copies src into memory.
func (m *GPUMemory) WriteBytes(addr uint32, src []byte) {
	m.check(addr, len(src))
	copy(m.data[addr:], src)
}

// Read32 reads a little-endian 32-bit word.
func (m *GPUMemory) Read32(addr uint32) uint32 {
	m.check(addr, 4)
	return uint32(m.data[addr]) | uint32(m.data[addr+1])<<8 |
		uint32(m.data[addr+2])<<16 | uint32(m.data[addr+3])<<24
}

// Write32 writes a little-endian 32-bit word.
func (m *GPUMemory) Write32(addr uint32, v uint32) {
	m.check(addr, 4)
	m.data[addr] = byte(v)
	m.data[addr+1] = byte(v >> 8)
	m.data[addr+2] = byte(v >> 16)
	m.data[addr+3] = byte(v >> 24)
}

// Allocator hands out GPU memory regions; the driver layer uses it
// for buffer, texture and framebuffer placement. Alignment keeps
// framebuffer tiles on transaction boundaries.
type Allocator struct {
	next uint32
	size uint32
}

// NewAllocator manages [base, base+size).
func NewAllocator(base, size uint32) *Allocator {
	return &Allocator{next: base, size: base + size}
}

// Alloc reserves n bytes aligned to align (power of two) and returns
// the base address.
func (a *Allocator) Alloc(n int, align uint32) (uint32, error) {
	if align == 0 {
		align = 1
	}
	base := (a.next + align - 1) &^ (align - 1)
	if base+uint32(n) > a.size {
		return 0, fmt.Errorf("mem: out of GPU memory (want %d bytes at %d, limit %d)", n, base, a.size)
	}
	a.next = base + uint32(n)
	return base, nil
}

// Used returns the bytes allocated so far.
func (a *Allocator) Used() uint32 { return a.next }
