package mem

import (
	"testing"

	"attila/internal/core"
)

type cacheHarness struct {
	sim   *core.Simulator
	mc    *Controller
	cache *Cache
	gm    *GPUMemory
	cycle int64
}

func newCacheHarness(t *testing.T, cfg CacheConfig, hooks Hooks) *cacheHarness {
	t.Helper()
	sim := core.NewSimulator(0)
	h := &cacheHarness{sim: sim}
	h.gm = NewGPUMemory(1 << 20)
	h.cache = NewCache(sim, cfg, hooks)
	h.mc = NewController(sim, DefaultControllerConfig(), h.gm, []string{cfg.Name})
	if err := sim.Binder.Validate(); err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *cacheHarness) step() {
	h.cache.Clock(h.cycle)
	h.mc.Clock(h.cycle)
	h.cycle++
}

// fetchLine drives the cache until key is resident.
func (h *cacheHarness) fetchLine(t *testing.T, key uint32) {
	t.Helper()
	if !h.cache.RequestFill(h.cycle, key) {
		t.Fatalf("RequestFill(%#x) rejected", key)
	}
	for i := 0; i < 1000; i++ {
		if h.cache.Probe(key) {
			return
		}
		h.step()
	}
	t.Fatalf("line %#x never filled", key)
}

func TestCacheMissThenHit(t *testing.T) {
	h := newCacheHarness(t, DefaultCacheConfig("C"), PassThrough{})
	// Seed memory with a recognizable pattern.
	line := make([]byte, 256)
	for i := range line {
		line[i] = byte(i ^ 0x5A)
	}
	h.gm.WriteBytes(0x1000, line)

	if h.cache.Lookup(h.cycle, 0x1000) {
		t.Fatal("cold cache reported hit")
	}
	h.fetchLine(t, 0x1000)
	if !h.cache.Lookup(h.cycle, 0x1000) {
		t.Fatal("line not hit after fill")
	}
	buf := make([]byte, 16)
	h.cache.Read(0x1000, 32, buf)
	for i := range buf {
		if buf[i] != byte((32+i)^0x5A) {
			t.Fatalf("data at %d: %#x", i, buf[i])
		}
	}
	hits, misses := h.cache.HitMissCounts()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats: %v/%v", hits, misses)
	}
}

func TestCacheWritebackOnEviction(t *testing.T) {
	cfg := CacheConfig{Name: "C", Sets: 1, Assoc: 2, LineBytes: 256, MissQ: 4, PortLimit: 8}
	h := newCacheHarness(t, cfg, PassThrough{})

	h.fetchLine(t, 0x0000)
	h.cache.Write(0x0000, 0, []byte{0xAA, 0xBB})

	// Fill two more lines into the 2-way set: 0x0000 is evicted and
	// must be written back.
	h.fetchLine(t, 0x4000)
	h.fetchLine(t, 0x8000)
	// Drain all memory traffic.
	for i := 0; i < 500 && !h.cache.Quiesce(); i++ {
		h.step()
	}
	if !h.cache.Quiesce() {
		t.Fatal("cache did not quiesce")
	}
	if h.gm.data[0] != 0xAA || h.gm.data[1] != 0xBB {
		t.Fatalf("writeback lost: %#x %#x", h.gm.data[0], h.gm.data[1])
	}
	// Refetch: data must round trip.
	h.fetchLine(t, 0x0000)
	buf := make([]byte, 2)
	h.cache.Read(0x0000, 0, buf)
	if buf[0] != 0xAA || buf[1] != 0xBB {
		t.Fatalf("refetched data: %v", buf)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	cfg := CacheConfig{Name: "C", Sets: 1, Assoc: 2, LineBytes: 256, MissQ: 4, PortLimit: 8}
	h := newCacheHarness(t, cfg, PassThrough{})
	h.fetchLine(t, 0x0000)
	h.fetchLine(t, 0x4000)
	// Touch 0x0000 so 0x4000 is LRU.
	h.cache.Lookup(h.cycle, 0x0000)
	h.fetchLine(t, 0x8000)
	if !h.cache.Probe(0x0000) {
		t.Fatal("recently used line evicted")
	}
	if h.cache.Probe(0x4000) {
		t.Fatal("LRU line survived")
	}
}

func TestCacheMissQueueBound(t *testing.T) {
	cfg := CacheConfig{Name: "C", Sets: 16, Assoc: 4, LineBytes: 256, MissQ: 2, PortLimit: 8}
	h := newCacheHarness(t, cfg, PassThrough{})
	if !h.cache.RequestFill(0, 0x0000) || !h.cache.RequestFill(0, 0x1000) {
		t.Fatal("first two misses rejected")
	}
	if h.cache.RequestFill(0, 0x2000) {
		t.Fatal("third miss accepted beyond MissQ")
	}
	// Duplicate request for a pending line is accepted without a slot.
	if !h.cache.RequestFill(0, 0x0000) {
		t.Fatal("duplicate pending request rejected")
	}
	if h.cache.PendingMisses() != 2 {
		t.Fatalf("pending: %d", h.cache.PendingMisses())
	}
}

// clearHooks simulates a fast-cleared framebuffer: every line is
// synthesized with a clear pattern, no memory traffic.
type clearHooks struct{ fills *int }

func (h clearHooks) FillPlan(key uint32) FillPlan { return FillPlan{Synth: true} }
func (h clearHooks) Synthesize(key uint32, line []byte) {
	*h.fills++
	for i := range line {
		line[i] = 0xC1
	}
}
func (h clearHooks) Decode(key uint32, raw, line []byte)             { copy(line, raw) }
func (h clearHooks) Encode(key uint32, line []byte) (uint32, []byte) { return key, line }

func TestCacheSynthesizedFill(t *testing.T) {
	fills := 0
	h := newCacheHarness(t, DefaultCacheConfig("C"), clearHooks{fills: &fills})
	before := h.sim.Stats.Lookup("MC.readBytes")
	h.fetchLine(t, 0x3000)
	if fills != 1 {
		t.Fatalf("synthesize calls: %d", fills)
	}
	buf := make([]byte, 4)
	h.cache.Read(0x3000, 0, buf)
	if buf[0] != 0xC1 {
		t.Fatalf("synth data: %v", buf)
	}
	if before.Value() != 0 {
		t.Fatal("synthesized fill touched memory")
	}
}

// compressHooks emulate a compressed line: memory holds each byte
// once (128 bytes) and the decoded line duplicates it.
type compressHooks struct{}

func (compressHooks) FillPlan(key uint32) FillPlan {
	return FillPlan{FetchAddr: key, FetchBytes: 128}
}
func (compressHooks) Synthesize(key uint32, line []byte) { panic("no synth") }
func (compressHooks) Decode(key uint32, raw, line []byte) {
	for i, b := range raw {
		line[2*i] = b
		line[2*i+1] = b
	}
}
func (compressHooks) Encode(key uint32, line []byte) (uint32, []byte) {
	raw := make([]byte, len(line)/2)
	for i := range raw {
		raw[i] = line[2*i]
	}
	return key, raw
}

func TestCacheCompressedFill(t *testing.T) {
	h := newCacheHarness(t, DefaultCacheConfig("C"), compressHooks{})
	for i := 0; i < 128; i++ {
		h.gm.data[0x5000+i] = byte(i)
	}
	h.fetchLine(t, 0x5000)
	buf := make([]byte, 4)
	h.cache.Read(0x5000, 10, buf)
	if buf[0] != 5 || buf[1] != 5 || buf[2] != 6 || buf[3] != 6 {
		t.Fatalf("decoded data: %v", buf)
	}
	// Only 128 bytes fetched.
	if got := h.sim.Stats.Lookup("MC.readBytes").Value(); got != 128 {
		t.Fatalf("fetched bytes: %v", got)
	}
	// Dirty the line and force writeback via FlushDirty.
	h.cache.Write(0x5000, 0, []byte{0x77, 0x77})
	for i := 0; i < 500; i++ {
		if h.cache.FlushDirty(h.cycle) {
			break
		}
		h.step()
	}
	for i := 0; i < 500 && !h.cache.Quiesce(); i++ {
		h.step()
	}
	if h.gm.data[0x5000] != 0x77 {
		t.Fatalf("compressed writeback: %#x", h.gm.data[0x5000])
	}
	if got := h.sim.Stats.Lookup("MC.writeBytes").Value(); got != 128 {
		t.Fatalf("written bytes: %v", got)
	}
}

func TestCacheInvalidateAll(t *testing.T) {
	h := newCacheHarness(t, DefaultCacheConfig("C"), PassThrough{})
	h.fetchLine(t, 0x1000)
	h.cache.InvalidateAll()
	if h.cache.Probe(0x1000) {
		t.Fatal("line survived invalidation")
	}
}

func TestCacheHitRate(t *testing.T) {
	h := newCacheHarness(t, DefaultCacheConfig("C"), PassThrough{})
	h.fetchLine(t, 0x1000)
	h.cache.Lookup(h.cycle, 0x1000)
	h.cache.Lookup(h.cycle, 0x1000)
	h.cache.Lookup(h.cycle, 0x2000) // miss
	// 2 hits, 1 fill miss (from fetchLine's Lookup... fetchLine does
	// not call Lookup) + 1 explicit miss.
	if r := h.cache.HitRate(); r != 2.0/3.0 {
		t.Fatalf("hit rate: %v", r)
	}
}
