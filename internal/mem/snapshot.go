package mem

import (
	"fmt"

	"attila/internal/chkpt"
)

// This file implements chkpt.Snapshotter for the memory system. All
// snapshots are taken at a quiesced cycle barrier: no client queue
// holds a request, no channel has a transaction in flight, and every
// cache has neither misses nor outstanding port transactions — so the
// persistent state is the memory image, the allocator cursor, the
// controller's page/turnaround registers, and the cache line arrays.

// gpuMemPage is the sparse-snapshot granule: pages that are entirely
// zero (most of an idle GPU memory) are skipped.
const gpuMemPage = 64 << 10

// SnapshotName implements chkpt.Snapshotter.
func (m *GPUMemory) SnapshotName() string { return "mem.GPU" }

// SnapshotState writes the memory image sparsely: total size, then
// (pageIndex, bytes) for every page with nonzero content.
func (m *GPUMemory) SnapshotState(e *chkpt.Encoder) {
	e.U64(uint64(len(m.data)))
	count := 0
	for off := 0; off < len(m.data); off += gpuMemPage {
		if !isZero(m.data[off:minInt(off+gpuMemPage, len(m.data))]) {
			count++
		}
	}
	e.U32(uint32(count))
	for off := 0; off < len(m.data); off += gpuMemPage {
		page := m.data[off:minInt(off+gpuMemPage, len(m.data))]
		if isZero(page) {
			continue
		}
		e.U32(uint32(off / gpuMemPage))
		e.Blob(page)
	}
}

// RestoreState implements chkpt.Snapshotter.
func (m *GPUMemory) RestoreState(d *chkpt.Decoder) error {
	size := d.U64()
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if size != uint64(len(m.data)) {
		return fmt.Errorf("%w: snapshot memory is %d bytes, machine has %d", chkpt.ErrMismatch, size, len(m.data))
	}
	maxPages := (len(m.data) + gpuMemPage - 1) / gpuMemPage
	if n > maxPages {
		return fmt.Errorf("%w: %d pages exceeds the %d-page memory", chkpt.ErrCorrupt, n, maxPages)
	}
	for i := range m.data {
		m.data[i] = 0
	}
	for i := 0; i < n; i++ {
		idx := int(d.U32())
		page := d.Blob()
		if err := d.Err(); err != nil {
			return err
		}
		off := idx * gpuMemPage
		if idx >= maxPages || off+len(page) > len(m.data) || len(page) > gpuMemPage {
			return fmt.Errorf("%w: page %d/%d bytes outside memory", chkpt.ErrCorrupt, idx, len(page))
		}
		copy(m.data[off:], page)
	}
	return nil
}

func isZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SnapshotName implements chkpt.Snapshotter.
func (a *Allocator) SnapshotName() string { return "mem.Alloc" }

// SnapshotState implements chkpt.Snapshotter.
func (a *Allocator) SnapshotState(e *chkpt.Encoder) {
	e.U32(a.next)
	e.U32(a.size)
}

// RestoreState implements chkpt.Snapshotter.
func (a *Allocator) RestoreState(d *chkpt.Decoder) error {
	next := d.U32()
	size := d.U32()
	if err := d.Err(); err != nil {
		return err
	}
	if size != a.size {
		return fmt.Errorf("%w: allocator arena is %d in snapshot, %d in machine", chkpt.ErrMismatch, size, a.size)
	}
	a.next = next
	return nil
}

// SnapshotName implements chkpt.Snapshotter.
func (c *Controller) SnapshotName() string { return "MemoryController" }

// SnapshotState serializes the arbitration pointer and the per-channel
// page/turnaround registers. Queues and in-flight transactions are
// empty by the quiesce precondition (Pending() == false); byte
// counters live in the statistics section.
func (c *Controller) SnapshotState(e *chkpt.Encoder) {
	e.U32(uint32(c.rr))
	e.U32(uint32(len(c.chans)))
	for i := range c.chans {
		ch := &c.chans[i]
		e.U32(ch.openPage)
		e.Bool(ch.hasPage)
		e.U8(uint8(ch.lastOp))
		e.Bool(ch.issued)
	}
}

// RestoreState implements chkpt.Snapshotter.
func (c *Controller) RestoreState(d *chkpt.Decoder) error {
	rr := int(d.U32())
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(c.chans) {
		return fmt.Errorf("%w: snapshot has %d channels, machine has %d", chkpt.ErrMismatch, n, len(c.chans))
	}
	if rr < 0 || rr >= len(c.clients) {
		return fmt.Errorf("%w: arbitration pointer %d outside %d clients", chkpt.ErrCorrupt, rr, len(c.clients))
	}
	for i := 0; i < n; i++ {
		ch := &c.chans[i]
		ch.openPage = d.U32()
		ch.hasPage = d.Bool()
		ch.lastOp = Op(d.U8())
		ch.issued = d.Bool()
		ch.active = false
	}
	if err := d.Err(); err != nil {
		return err
	}
	c.rr = rr
	return nil
}

// SnapshotTo serializes the cache's line array into the owner's
// section: per line valid/dirty/key/lastUse plus the decoded data of
// valid lines. The owner calls it at a quiesced barrier (no misses,
// no outstanding transactions).
func (c *Cache) SnapshotTo(e *chkpt.Encoder) {
	e.U32(uint32(c.cfg.Sets))
	e.U32(uint32(c.cfg.Assoc))
	e.U32(uint32(c.cfg.LineBytes))
	for s := range c.sets {
		for w := range c.sets[s] {
			ln := &c.sets[s][w]
			e.Bool(ln.valid)
			e.Bool(ln.dirty)
			e.U32(ln.key)
			e.I64(ln.lastUse)
			if ln.valid {
				e.Blob(ln.data)
			}
		}
	}
}

// RestoreFrom rebuilds the line array from SnapshotTo's encoding.
func (c *Cache) RestoreFrom(d *chkpt.Decoder) error {
	sets := int(d.U32())
	assoc := int(d.U32())
	lineBytes := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if sets != c.cfg.Sets || assoc != c.cfg.Assoc || lineBytes != c.cfg.LineBytes {
		return fmt.Errorf("%w: cache %s geometry %dx%dx%d in snapshot, %dx%dx%d in machine",
			chkpt.ErrMismatch, c.cfg.Name, sets, assoc, lineBytes, c.cfg.Sets, c.cfg.Assoc, c.cfg.LineBytes)
	}
	for s := range c.sets {
		for w := range c.sets[s] {
			ln := &c.sets[s][w]
			ln.valid = d.Bool()
			ln.dirty = d.Bool()
			ln.key = d.U32()
			ln.lastUse = d.I64()
			ln.pending = false
			if ln.valid {
				data := d.Blob()
				if d.Err() == nil && len(data) != c.cfg.LineBytes {
					return fmt.Errorf("%w: cache %s line has %d bytes, want %d",
						chkpt.ErrCorrupt, c.cfg.Name, len(data), c.cfg.LineBytes)
				}
				copy(ln.data, data)
			} else {
				for i := range ln.data {
					ln.data[i] = 0
				}
			}
			if err := d.Err(); err != nil {
				return err
			}
		}
	}
	c.miss = c.miss[:0]
	for id := range c.waiting {
		delete(c.waiting, id)
	}
	return nil
}
