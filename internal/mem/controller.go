package mem

import (
	"fmt"

	"attila/internal/core"
	"attila/internal/obsv/trace"
)

// Op distinguishes read and write transactions.
type Op uint8

// Transaction operations.
const (
	OpRead Op = iota
	OpWrite
)

// Request is a memory transaction travelling from a client unit to
// the memory controller. The port owns Data: Port.Write copies the
// caller's payload into a request-owned buffer, so callers are free
// to reuse theirs immediately.
type Request struct {
	core.DynObject
	Op   Op
	Addr uint32
	Size int    // bytes, <= TransactionSize
	Data []byte // writes only; owned by the request

	// spent piggybacks a consumed Reply back to the controller for
	// recycling. Carries no simulation state; see the recycling notes
	// on Controller.
	spent *Reply

	// span is the lifecycle trace record of a sampled transaction
	// (nil for the unsampled rest). Like spent it carries no
	// simulation state and rides the object through the signals, so
	// whoever owns the transaction owns the span — the cycle barrier
	// orders every cross-shard handoff.
	span *trace.Span
}

// Reply carries read data (or a write acknowledgement) back to the
// requesting unit. ReqID matches the request's DynObject ID.
type Reply struct {
	core.DynObject
	ReqID uint64
	Op    Op
	Addr  uint32
	Size  int
	Data  []byte // reads only

	// spent piggybacks the completed Request back to its issuing port
	// for recycling.
	spent *Request

	// span continues the request's trace record on the reply leg
	// (moved off the request at completion).
	span *trace.Span
}

// ControllerConfig is the GDDR3-style timing model (paper §2.2): four
// channels of 16 bytes/cycle in the baseline, modules interleaved on
// a 256-byte basis, configurable penalties for opening a new page and
// for read/write bus turnarounds.
type ControllerConfig struct {
	Channels      int
	ChannelBW     int    // bytes per cycle per channel
	Interleave    uint32 // channel interleave granularity in bytes
	PageSize      uint32 // bytes per open page (row)
	PagePenalty   int    // cycles to open a new page
	ReadToWrite   int    // bus turnaround penalty cycles
	WriteToRead   int
	BaseLatency   int // fixed command/CAS latency added to each transaction
	QueuePerUnit  int // per-client request queue capacity
	ReplyQueueLen int // max replies delivered per client per cycle
}

// DefaultControllerConfig returns the baseline of Table 1: four
// channels x 16 bytes/cycle.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{
		Channels:      4,
		ChannelBW:     16,
		Interleave:    256,
		PageSize:      4096,
		PagePenalty:   8,
		ReadToWrite:   4,
		WriteToRead:   6,
		BaseLatency:   10,
		QueuePerUnit:  16,
		ReplyQueueLen: 4,
	}
}

type channelState struct {
	busyUntil int64
	openPage  uint32
	hasPage   bool
	lastOp    Op
	issued    bool // a first op pays no turnaround (zero lastOp is OpRead)
	active    bool // current holds an in-flight transaction
	current   inflight
}

type inflight struct {
	req    *Request
	client int
	done   int64
	dup    bool // injected fault: deliver the reply twice
}

// FaultAction tells the controller how to mistreat one transaction.
// The zero value means "handle normally".
type FaultAction struct {
	Drop         bool // dequeue the request and never answer it
	ExtraLatency int  // stretch the channel occupancy by this many cycles
	Duplicate    bool // deliver the reply twice in the same cycle
}

// TxFault is the memory-side fault-injection seam consulted once per
// scheduled transaction. Implemented by the chaos engine
// (internal/chaos); nil means no faults. Called on the goroutine that
// clocks the controller, so implementations need no locking beyond
// what their own state requires.
type TxFault interface {
	OnTransaction(cycle int64, client string, addr uint32, write bool) FaultAction
}

// SetFault installs (or clears, with nil) the transaction fault
// injector. Call before Run.
func (c *Controller) SetFault(f TxFault) { c.fault = f }

// Controller is the memory controller box. Each client unit provides
// a request signal named "<client>.MemReq" and binds the reply signal
// "MC.<client>.Reply"; the controller binds and provides the
// counterparts, forming the crossbar of queues and buses the paper
// describes.
type Controller struct {
	core.BoxBase
	cfg     ControllerConfig
	mem     *GPUMemory
	ids     *core.IDSource
	clients []*mcClient
	chans   []channelState
	rr      int     // round-robin arbitration pointer
	fault   TxFault // optional chaos seam, consulted per scheduled transaction

	// Transaction recycling (no simulation state): a completed Request
	// rides back to its issuing port on Reply.spent; a consumed Reply
	// rides back here on Request.spent. freeReps and bufs are touched
	// only on the controller's clocking goroutine; the cross-shard
	// handoff happens through the signals, ordered by the cycle
	// barrier like any other payload. Chaos faults that drop or
	// corrupt objects in flight simply leak them.
	freeReps []*Reply
	bufs     [][]byte // read-data buffers stripped from recycled replies

	statReadBytes  core.Shadow
	statWriteBytes core.Shadow
	statPageMiss   core.Shadow
	statTurnaround core.Shadow
	statBusy       core.Shadow
	// Pre-sized before registration: ShadowCounter keeps the element
	// addresses, so these slices must never be reallocated.
	clientRead  []core.Shadow
	clientWrite []core.Shadow
}

type mcClient struct {
	name  string
	req   *core.Signal
	reply *core.Signal
	queue core.FIFO[*Request]
}

// NewController creates the controller and registers its signal
// endpoints for every client name.
func NewController(sim *core.Simulator, cfg ControllerConfig, mem *GPUMemory, clients []string) *Controller {
	c := &Controller{cfg: cfg, mem: mem, ids: &sim.IDs}
	c.Init("MemoryController")
	c.chans = make([]channelState, cfg.Channels)
	// One transaction can complete on each channel in the same cycle,
	// all for the same client, so the reply wire must carry at least
	// Channels objects per cycle regardless of ReplyQueueLen.
	replyBW := cfg.ReplyQueueLen
	if cfg.Channels > replyBW {
		replyBW = cfg.Channels
	}
	c.clientRead = make([]core.Shadow, len(clients))
	c.clientWrite = make([]core.Shadow, len(clients))
	for i, name := range clients {
		cl := &mcClient{name: name}
		sim.Binder.Bind(c.BoxName(), name+".MemReq", &cl.req)
		cl.reply = sim.Binder.Provide(c.BoxName(), "MC."+name+".Reply", replyBW, 1, 0)
		c.clients = append(c.clients, cl)
		sim.Stats.ShadowCounter(&c.clientRead[i], "MC."+name+".readBytes")
		sim.Stats.ShadowCounter(&c.clientWrite[i], "MC."+name+".writeBytes")
	}
	sim.Stats.ShadowCounter(&c.statReadBytes, "MC.readBytes")
	sim.Stats.ShadowCounter(&c.statWriteBytes, "MC.writeBytes")
	sim.Stats.ShadowCounter(&c.statPageMiss, "MC.pageMisses")
	sim.Stats.ShadowCounter(&c.statTurnaround, "MC.turnarounds")
	sim.Stats.ShadowCounter(&c.statBusy, "MC.busyCycles")
	sim.Register(c)
	return c
}

// Pending reports whether any transaction is queued or in flight;
// used by drain logic at batch boundaries.
func (c *Controller) Pending() bool {
	for _, cl := range c.clients {
		if cl.queue.Len() > 0 {
			return true
		}
	}
	for i := range c.chans {
		if c.chans[i].active {
			return true
		}
	}
	return false
}

// ProgressCount implements core.ProgressReporter: transferred bytes
// advance while a long transaction occupies its channel with no signal
// traffic.
func (c *Controller) ProgressCount() int64 {
	return int64(c.statReadBytes.Value() + c.statWriteBytes.Value())
}

// Queues implements core.StallReporter: per-client request queue
// occupancy plus the busy channels, the controller-side half of a
// deadlock report.
func (c *Controller) Queues() []core.QueueStat {
	qs := make([]core.QueueStat, 0, len(c.clients)+1)
	for _, cl := range c.clients {
		qs = append(qs, core.QueueStat{
			Name: "MC." + cl.name + ".queue", Occupied: cl.queue.Len(), Capacity: c.cfg.QueuePerUnit,
		})
	}
	busy := 0
	for i := range c.chans {
		if c.chans[i].active {
			busy++
		}
	}
	return append(qs, core.QueueStat{Name: "MC.channels", Occupied: busy, Capacity: c.cfg.Channels})
}

// BusyCycles implements core.BusyReporter: cycles with at least one
// channel transferring, read at the cycle barrier by the
// observability layer.
func (c *Controller) BusyCycles() float64 { return c.statBusy.Value() }

func (c *Controller) channelOf(addr uint32) int {
	return int(addr/c.cfg.Interleave) % c.cfg.Channels
}

// Clock implements core.Box.
func (c *Controller) Clock(cycle int64) {
	// Accept new requests into per-client queues.
	for ci, cl := range c.clients {
		for _, obj := range cl.req.Read(cycle) {
			req, ok := obj.(*Request)
			if !ok {
				panic(fmt.Sprintf("mem: non-Request on %s.MemReq", cl.name))
			}
			if req.Size <= 0 || req.Size > TransactionSize {
				panic(fmt.Sprintf("mem: bad transaction size %d from %s", req.Size, cl.name))
			}
			if cl.queue.Len() >= c.cfg.QueuePerUnit {
				panic(fmt.Sprintf("mem: %s exceeded its request queue (%d); client must bound outstanding requests", cl.name, c.cfg.QueuePerUnit))
			}
			if sp := req.spent; sp != nil {
				req.spent = nil
				if sp.Data != nil {
					c.bufs = append(c.bufs, sp.Data)
					sp.Data = nil
				}
				c.freeReps = append(c.freeReps, sp)
			}
			if req.span != nil {
				req.span.Enqueue = cycle
			}
			cl.queue.Push(req)
			_ = ci
		}
	}

	// Complete transactions whose channel time has elapsed.
	busy := false
	for i := range c.chans {
		ch := &c.chans[i]
		if ch.active {
			busy = true
			if cycle >= ch.current.done {
				c.complete(cycle, &ch.current)
				ch.active = false
			}
		}
	}
	if busy {
		c.statBusy.Inc()
	}

	// Arbitrate free channels: round-robin over client queue heads.
	for i := range c.chans {
		ch := &c.chans[i]
		if ch.active {
			continue
		}
		c.schedule(cycle, i, ch)
	}
}

func (c *Controller) schedule(cycle int64, chIdx int, ch *channelState) {
	n := len(c.clients)
	for k := 0; k < n; k++ {
		ci := (c.rr + k) % n
		cl := c.clients[ci]
		if cl.queue.Len() == 0 {
			continue
		}
		req := cl.queue.Peek()
		if c.channelOf(req.Addr) != chIdx {
			continue
		}
		cl.queue.Pop()
		c.rr = (ci + 1) % n

		var fa FaultAction
		if c.fault != nil {
			fa = c.fault.OnTransaction(cycle, cl.name, req.Addr, req.Op == OpWrite)
		}
		if fa.Drop {
			// The request vanishes: the client's outstanding budget never
			// drains, so the pipeline backs up and the watchdog reports a
			// deadlock — the observable signature of a lost transaction.
			// A span riding it leaks with it, like the request itself.
			return
		}
		if req.span != nil {
			req.span.Sched = cycle
		}

		dur := (req.Size + c.cfg.ChannelBW - 1) / c.cfg.ChannelBW
		dur += fa.ExtraLatency
		page := req.Addr / c.cfg.PageSize
		if !ch.hasPage || ch.openPage != page {
			dur += c.cfg.PagePenalty
			ch.openPage = page
			ch.hasPage = true
			c.statPageMiss.Inc()
		}
		if ch.issued && ch.lastOp != req.Op {
			if req.Op == OpWrite {
				dur += c.cfg.ReadToWrite
			} else {
				dur += c.cfg.WriteToRead
			}
			c.statTurnaround.Inc()
		}
		ch.lastOp = req.Op
		ch.issued = true
		dur += c.cfg.BaseLatency
		ch.current = inflight{req: req, client: ci, done: cycle + int64(dur), dup: fa.Duplicate}
		ch.active = true
		return
	}
}

func (c *Controller) complete(cycle int64, fl *inflight) {
	req := fl.req
	cl := c.clients[fl.client]
	reply := c.getReply()
	reply.DynObject = core.DynObject{ID: c.ids.Next(), Parent: req.ID, Tag: "memreply"}
	reply.ReqID = req.ID
	reply.Op = req.Op
	reply.Addr = req.Addr
	reply.Size = req.Size
	if req.Op == OpWrite {
		c.mem.WriteBytes(req.Addr, req.Data[:req.Size])
		c.statWriteBytes.Add(float64(req.Size))
		c.clientWrite[fl.client].Add(float64(req.Size))
	} else {
		reply.Data = c.getBuf(req.Size)
		c.mem.ReadBytes(req.Addr, reply.Data)
		c.statReadBytes.Add(float64(req.Size))
		c.clientRead[fl.client].Add(float64(req.Size))
	}
	// The completed request rides the reply back to its issuing port,
	// and a trace span moves to the reply leg with it.
	reply.spent = req
	if sp := req.span; sp != nil {
		sp.Complete = cycle
		reply.span = sp
		req.span = nil
	}
	cl.reply.Write(cycle, reply)
	if fl.dup {
		// Injected duplicate: a second reply with a fresh ID for the
		// same request. The client's bookkeeping (outstanding budget,
		// miss table) breaks on the echo and panics, which the
		// simulator reports as a crash in the client box. The echo
		// must not alias the recycling fields: the request may ride
		// back only once.
		echo := *reply
		echo.DynObject.ID = c.ids.Next()
		echo.spent = nil
		echo.span = nil
		if reply.Data != nil {
			echo.Data = append([]byte(nil), reply.Data...)
		}
		cl.reply.Write(cycle, &echo)
	}
}

// getReply pops a recycled Reply (fully zeroed) or allocates one.
func (c *Controller) getReply() *Reply {
	if n := len(c.freeReps); n > 0 {
		r := c.freeReps[n-1]
		c.freeReps = c.freeReps[:n-1]
		*r = Reply{}
		return r
	}
	return &Reply{}
}

// getBuf returns a read-data buffer of the given size, reusing a
// recycled buffer's backing array when it is large enough.
func (c *Controller) getBuf(size int) []byte {
	if n := len(c.bufs); n > 0 {
		b := c.bufs[n-1]
		c.bufs = c.bufs[:n-1]
		if cap(b) >= size {
			return b[:size]
		}
	}
	return make([]byte, size)
}

// Port is a client-side connection to the memory controller: it owns
// the request signal, tracks outstanding transactions against the
// controller's queue bound and collects replies.
//
// The port recycles transaction objects: completed Requests come back
// on Reply.spent and are reused by Read/Write; consumed Replies ride
// out on Request.spent for the controller to reuse. The slice handed
// out by Replies and the replies in it are valid until the next
// Replies call — every client consumes them inside the same Clock.
type Port struct {
	name        string
	req         *core.Signal
	reply       *core.Signal
	ids         *core.IDSource
	outstanding int
	limit       int
	tr          *trace.Tracer // nil: tracing off, one branch per issue

	freeReqs []*Request
	spentRep []*Reply // consumed replies awaiting a ride back
	out      []*Reply // reusable result buffer for Replies
}

// NewPort registers the client side of a controller connection. Call
// before or after NewController in any order; limit must not exceed
// the controller's QueuePerUnit.
func NewPort(sim *core.Simulator, client string, limit int) *Port {
	p := &Port{name: client, ids: &sim.IDs, limit: limit}
	// The request wire can burst up to the outstanding budget in one
	// cycle (cache flushes issue a whole line's transactions at
	// once); the controller's queues provide the real throttling.
	p.req = sim.Binder.Provide(client, client+".MemReq", limit, 1, 0)
	sim.Binder.Bind(client, "MC."+client+".Reply", &p.reply)
	return p
}

// SetTracer installs the port's span tracing handle (nil disables).
// Call before Run; the tracer's sampler decides per issue whether a
// transaction carries a span.
func (p *Port) SetTracer(t *trace.Tracer) { p.tr = t }

// CanIssue reports whether another transaction fits in the client's
// outstanding budget.
func (p *Port) CanIssue() bool { return p.outstanding < p.limit }

// Free returns how many transactions may still be issued.
func (p *Port) Free() int { return p.limit - p.outstanding }

// getReq pops a recycled Request (zeroed, keeping its payload
// buffer's backing array) or allocates one, and gives a waiting spent
// Reply its ride back to the controller.
func (p *Port) getReq() *Request {
	var req *Request
	if n := len(p.freeReqs); n > 0 {
		req = p.freeReqs[n-1]
		p.freeReqs = p.freeReqs[:n-1]
		data := req.Data[:0]
		*req = Request{}
		req.Data = data
	} else {
		req = &Request{}
	}
	if n := len(p.spentRep); n > 0 {
		req.spent = p.spentRep[n-1]
		p.spentRep = p.spentRep[:n-1]
	}
	return req
}

// Read issues a read transaction and returns its id. parent links the
// transaction to the object that caused it for signal tracing.
func (p *Port) Read(cycle int64, addr uint32, size int, parent uint64) uint64 {
	req := p.getReq()
	req.DynObject = core.DynObject{ID: p.ids.Next(), Parent: parent, Tag: "rd"}
	req.Op, req.Addr, req.Size = OpRead, addr, size
	if p.tr != nil {
		req.span = p.tr.Start(trace.KindRead, cycle, addr)
	}
	p.req.Write(cycle, req)
	p.outstanding++
	return req.ID
}

// Write issues a write transaction of len(data) bytes. The payload is
// copied into a request-owned buffer; the caller keeps ownership of
// data and may reuse it immediately.
func (p *Port) Write(cycle int64, addr uint32, data []byte, parent uint64) uint64 {
	req := p.getReq()
	req.DynObject = core.DynObject{ID: p.ids.Next(), Parent: parent, Tag: "wr"}
	req.Op, req.Addr, req.Size = OpWrite, addr, len(data)
	req.Data = append(req.Data[:0], data...)
	if p.tr != nil {
		req.span = p.tr.Start(trace.KindWrite, cycle, addr)
	}
	p.req.Write(cycle, req)
	p.outstanding++
	return req.ID
}

// Replies returns the transactions completed this cycle. The returned
// slice and the replies in it are recycled at the next Replies call;
// callers must finish with them within their own Clock (they all do —
// reply payloads are copied into cache lines or frames on the spot).
func (p *Port) Replies(cycle int64) []*Reply {
	// The previous batch is consumed by now: queue it for recycling.
	for _, rep := range p.out {
		p.spentRep = append(p.spentRep, rep)
	}
	p.out = p.out[:0]
	objs := p.reply.Read(cycle)
	if len(objs) == 0 {
		return nil
	}
	for _, o := range objs {
		rep := o.(*Reply)
		if sp := rep.spent; sp != nil {
			rep.spent = nil
			p.freeReqs = append(p.freeReqs, sp)
		}
		if sp := rep.span; sp != nil {
			rep.span = nil
			sp.Finish(cycle)
		}
		p.out = append(p.out, rep)
		p.outstanding--
	}
	return p.out
}

// Outstanding returns the number of in-flight transactions.
func (p *Port) Outstanding() int { return p.outstanding }
