package mem

import (
	"testing"

	"attila/internal/core"
)

func TestGPUMemoryReadWrite(t *testing.T) {
	m := NewGPUMemory(1024)
	m.Write32(64, 0xDEADBEEF)
	if got := m.Read32(64); got != 0xDEADBEEF {
		t.Fatalf("read32: %#x", got)
	}
	buf := make([]byte, 4)
	m.ReadBytes(64, buf)
	if buf[0] != 0xEF || buf[3] != 0xDE {
		t.Fatalf("little endian layout: %v", buf)
	}
	m.WriteBytes(100, []byte{1, 2, 3})
	m.ReadBytes(100, buf[:3])
	if buf[0] != 1 || buf[2] != 3 {
		t.Fatalf("bytes: %v", buf)
	}
}

func TestGPUMemoryBoundsPanic(t *testing.T) {
	m := NewGPUMemory(128)
	defer func() {
		if recover() == nil {
			t.Fatal("out of bounds access did not panic")
		}
	}()
	m.Read32(126)
}

func TestAllocatorAlignment(t *testing.T) {
	a := NewAllocator(100, 1000)
	addr, err := a.Alloc(10, 256)
	if err != nil {
		t.Fatal(err)
	}
	if addr != 256 {
		t.Fatalf("aligned alloc: %d", addr)
	}
	addr2, err := a.Alloc(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if addr2 != 266 {
		t.Fatalf("sequential alloc: %d", addr2)
	}
	if _, err := a.Alloc(10000, 1); err == nil {
		t.Fatal("overcommit accepted")
	}
}

// mcHarness wires a controller with one or two ports into a
// simulator.
type mcHarness struct {
	sim   *core.Simulator
	mc    *Controller
	ports []*Port
}

func newMCHarness(t *testing.T, cfg ControllerConfig, memSize int, clients ...string) *mcHarness {
	t.Helper()
	sim := core.NewSimulator(0)
	h := &mcHarness{sim: sim}
	gm := NewGPUMemory(memSize)
	for _, cl := range clients {
		h.ports = append(h.ports, NewPort(sim, cl, cfg.QueuePerUnit))
	}
	h.mc = NewController(sim, cfg, gm, clients)
	if err := sim.Binder.Validate(); err != nil {
		t.Fatal(err)
	}
	return h
}

// step clocks the controller one cycle (ports are passive).
func (h *mcHarness) step(cycle int64) { h.mc.Clock(cycle) }

func TestControllerRoundTrip(t *testing.T) {
	cfg := DefaultControllerConfig()
	h := newMCHarness(t, cfg, 1<<16, "U")
	p := h.ports[0]

	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	p.Write(0, 512, data, 0)

	var readID uint64
	var got []byte
	for cyc := int64(0); cyc < 200; cyc++ {
		h.step(cyc)
		for _, rep := range p.Replies(cyc) {
			if rep.Op == OpWrite {
				// After the write completes, read it back.
				readID = p.Read(cyc, 512, 64, 0)
			} else if rep.ReqID == readID {
				got = rep.Data
			}
		}
		if got != nil {
			break
		}
	}
	if got == nil {
		t.Fatal("read never completed")
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("data mismatch at %d: %d", i, got[i])
		}
	}
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding: %d", p.Outstanding())
	}
}

func TestControllerLatencyModel(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.PagePenalty = 20
	cfg.BaseLatency = 10
	h := newMCHarness(t, cfg, 1<<16, "U")
	p := h.ports[0]

	complete := func(issueCycle int64, addr uint32) int64 {
		p.Read(issueCycle, addr, 64, 0)
		for cyc := issueCycle; cyc < issueCycle+500; cyc++ {
			h.step(cyc)
			if len(p.Replies(cyc)) > 0 {
				return cyc
			}
		}
		t.Fatal("request never completed")
		return 0
	}

	// First access: page miss. 64B/16Bpc = 4 cycles + 20 page + 10 base.
	t0 := complete(0, 0)
	// Second access, same page: no page penalty -> faster.
	t1 := complete(t0+1, 64)
	d0 := t0 - 0
	d1 := t1 - (t0 + 1)
	if d1 >= d0 {
		t.Fatalf("page hit (%d cycles) not faster than page miss (%d cycles)", d1, d0)
	}
	if d0 < 34 {
		t.Fatalf("page miss too fast: %d cycles", d0)
	}
}

func TestControllerChannelInterleave(t *testing.T) {
	cfg := DefaultControllerConfig()
	h := newMCHarness(t, cfg, 1<<16, "U")
	if h.mc.channelOf(0) != 0 || h.mc.channelOf(256) != 1 ||
		h.mc.channelOf(512) != 2 || h.mc.channelOf(768) != 3 ||
		h.mc.channelOf(1024) != 0 {
		t.Fatal("256-byte channel interleave wrong")
	}
}

func TestControllerParallelChannels(t *testing.T) {
	// Two transactions on different channels should overlap; two on
	// the same channel must serialize.
	run := func(a1, a2 uint32) int64 {
		cfg := DefaultControllerConfig()
		h := newMCHarness(t, cfg, 1<<16, "U")
		p := h.ports[0]
		p.Read(0, a1, 64, 0)
		p.Read(0, a2, 64, 0)
		done := 0
		for cyc := int64(0); cyc < 500; cyc++ {
			h.step(cyc)
			done += len(p.Replies(cyc))
			if done == 2 {
				return cyc
			}
		}
		t.Fatal("requests never completed")
		return 0
	}
	parallel := run(0, 256) // channels 0 and 1
	serial := run(0, 64)    // both channel 0
	if parallel >= serial {
		t.Fatalf("parallel channels (%d) not faster than serial (%d)", parallel, serial)
	}
}

func TestControllerFairnessAcrossClients(t *testing.T) {
	cfg := DefaultControllerConfig()
	h := newMCHarness(t, cfg, 1<<16, "A", "B")
	pa, pb := h.ports[0], h.ports[1]
	// Both clients hammer channel 0.
	for i := 0; i < 4; i++ {
		pa.Read(0, uint32(i)*1024, 64, 0)
		pb.Read(0, uint32(i)*1024+64, 64, 0)
	}
	var aDone, bDone int
	var firstA, firstB int64 = -1, -1
	for cyc := int64(0); cyc < 2000 && (aDone < 4 || bDone < 4); cyc++ {
		h.step(cyc)
		if n := len(pa.Replies(cyc)); n > 0 {
			aDone += n
			if firstA < 0 {
				firstA = cyc
			}
		}
		if n := len(pb.Replies(cyc)); n > 0 {
			bDone += n
			if firstB < 0 {
				firstB = cyc
			}
		}
	}
	if aDone != 4 || bDone != 4 {
		t.Fatalf("completion: A=%d B=%d", aDone, bDone)
	}
	// Round-robin: neither client should finish all its requests
	// before the other gets any service.
	if firstB < 0 || firstA < 0 {
		t.Fatal("a client was starved")
	}
}

// One client with a transaction on every channel gets all the replies
// in the same cycle: the reply wire must carry Channels objects even
// when ReplyQueueLen is smaller (a bw-ReplyQueueLen wire used to
// panic with a bandwidth violation on 8-channel configs).
func TestControllerReplyBandwidthManyChannels(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.Channels = 8
	cfg.ReplyQueueLen = 4
	h := newMCHarness(t, cfg, 1<<16, "U")
	p := h.ports[0]
	// One read per channel (256-byte interleave), identical timing, so
	// all eight complete on the same cycle.
	for i := 0; i < 8; i++ {
		p.Read(0, uint32(i)*256, 64, 0)
	}
	done := 0
	burst := 0
	for cyc := int64(0); cyc < 500 && done < 8; cyc++ {
		h.step(cyc)
		if n := len(p.Replies(cyc)); n > 0 {
			done += n
			if n > burst {
				burst = n
			}
		}
	}
	if done != 8 {
		t.Fatalf("completed %d of 8", done)
	}
	if burst != 8 {
		t.Fatalf("replies did not complete in one cycle (largest burst %d)", burst)
	}
}

// The first operation on an idle channel pays no bus turnaround: the
// zero-valued channel state reads as "last op was a read", which used
// to charge every leading write a read-to-write penalty and count it
// in MC.turnarounds.
func TestControllerFirstWriteNoTurnaround(t *testing.T) {
	cfg := DefaultControllerConfig()
	h := newMCHarness(t, cfg, 1<<16, "U")
	p := h.ports[0]
	p.Write(0, 0, make([]byte, 64), 0)
	cyc := int64(0)
	for ; cyc < 200; cyc++ {
		h.step(cyc)
		if len(p.Replies(cyc)) > 0 {
			break
		}
	}
	if got := h.sim.Stats.Lookup("MC.turnarounds").Value(); got != 0 {
		t.Fatalf("first write charged a turnaround (count %v)", got)
	}
	// A genuine direction switch on the now-warm channel still counts.
	p.Read(cyc+1, 0, 64, 0)
	for end := cyc + 200; cyc < end; cyc++ {
		h.step(cyc)
		if len(p.Replies(cyc)) > 0 {
			break
		}
	}
	if got := h.sim.Stats.Lookup("MC.turnarounds").Value(); got != 1 {
		t.Fatalf("write-to-read turnaround not counted (count %v)", got)
	}
}

func TestControllerStats(t *testing.T) {
	cfg := DefaultControllerConfig()
	h := newMCHarness(t, cfg, 1<<16, "U")
	p := h.ports[0]
	p.Read(0, 0, 64, 0)
	p.Write(0, 4096, make([]byte, 32), 0)
	for cyc := int64(0); cyc < 300; cyc++ {
		h.step(cyc)
		p.Replies(cyc)
	}
	if got := h.sim.Stats.Lookup("MC.readBytes").Value(); got != 64 {
		t.Fatalf("readBytes: %v", got)
	}
	if got := h.sim.Stats.Lookup("MC.writeBytes").Value(); got != 32 {
		t.Fatalf("writeBytes: %v", got)
	}
	if got := h.sim.Stats.Lookup("MC.U.readBytes").Value(); got != 64 {
		t.Fatalf("client readBytes: %v", got)
	}
}
