package mem

import (
	"fmt"

	"attila/internal/core"
	"attila/internal/obsv/trace"
)

// CacheConfig describes one of the GPU's small caches (Table 2:
// texture, Z and color caches are all 16 KB, 4-way, 256-byte lines).
type CacheConfig struct {
	Name      string
	Sets      int
	Assoc     int
	LineBytes int // decoded line size held in the cache
	MissQ     int // outstanding miss limit
	PortLimit int // outstanding memory transactions
}

// DefaultCacheConfig returns the Table 2 geometry: 16 KB, 4-way
// associative with 256-byte lines (16 sets).
func DefaultCacheConfig(name string) CacheConfig {
	return CacheConfig{Name: name, Sets: 16, Assoc: 4, LineBytes: 256, MissQ: 8, PortLimit: 8}
}

// Size returns the cache capacity in bytes.
func (c CacheConfig) Size() int { return c.Sets * c.Assoc * c.LineBytes }

// FillPlan tells the cache how to obtain a missing line. Fast-cleared
// framebuffer blocks are synthesized on chip without any memory
// traffic; compressed blocks fetch fewer bytes than the decoded line.
type FillPlan struct {
	Synth      bool
	FetchAddr  uint32
	FetchBytes int // 0 means the decoded line size
}

// Hooks customize a cache for its owner unit: the Z cache plugs in
// fast clear, compression and decompression; the texture cache plugs
// in tile decompression; the color cache plugs in fast clear.
type Hooks interface {
	// FillPlan decides how to obtain the line identified by key.
	FillPlan(key uint32) FillPlan
	// Synthesize fills a line without memory access (Synth plans).
	Synthesize(key uint32, line []byte)
	// Decode expands fetched memory bytes into the decoded line.
	Decode(key uint32, raw, line []byte)
	// Encode packs a dirty line for writeback, returning the target
	// address and the bytes to write (compression shrinks them).
	Encode(key uint32, line []byte) (addr uint32, raw []byte)
}

// PassThrough implements Hooks for a plain cache whose lines are
// stored verbatim at their key address.
type PassThrough struct{}

// FillPlan implements Hooks.
func (PassThrough) FillPlan(key uint32) FillPlan { return FillPlan{FetchAddr: key} }

// Synthesize implements Hooks.
func (PassThrough) Synthesize(key uint32, line []byte) {
	panic("mem: PassThrough cannot synthesize lines")
}

// Decode implements Hooks.
func (PassThrough) Decode(key uint32, raw, line []byte) { copy(line, raw) }

// Encode implements Hooks.
func (PassThrough) Encode(key uint32, line []byte) (uint32, []byte) { return key, line }

type cacheLine struct {
	valid   bool
	dirty   bool
	pending bool // reserved for a fill in flight
	key     uint32
	lastUse int64
	data    []byte
}

type missState uint8

const (
	missQueued missState = iota
	missWaitWB
	missWaitFill
)

type missEntry struct {
	key   uint32
	set   int
	way   int
	state missState

	needWB bool
	wbKey  uint32
	wbData []byte
	wbLeft int // outstanding writeback transactions

	plan     FillPlan
	fillBuf  []byte
	fillLeft int // outstanding fill transactions
}

// Cache is the generic timing cache. The owner box clocks it once per
// cycle and accesses lines by key (the decoded line's base address:
// framebuffer block address or texture tile address; keys need not be
// aligned to the decoded line size — compressed texture tiles are
// smaller in memory than in the cache). Misses are queued and
// resolved through the cache's own memory controller port, with dirty
// victims written back before the fill.
type Cache struct {
	cfg     CacheConfig
	hooks   Hooks
	port    *Port
	sets    [][]cacheLine
	miss    []*missEntry
	waiting map[uint64]*missEntry // transaction id -> owning miss

	freeMiss []*missEntry // recycled entries (keep wb/fill buffer backing)

	statHits    core.Shadow
	statMisses  core.Shadow
	statFills   core.Shadow
	statEvicts  core.Shadow
	statSynth   core.Shadow
	statStalled core.Shadow
}

// NewCache builds a cache owned by the named client. The port is
// registered with the simulator's binder; the controller must list
// the same client name.
func NewCache(sim *core.Simulator, cfg CacheConfig, hooks Hooks) *Cache {
	c := &Cache{cfg: cfg, hooks: hooks, waiting: make(map[uint64]*missEntry)}
	c.port = NewPort(sim, cfg.Name, cfg.PortLimit)
	c.sets = make([][]cacheLine, cfg.Sets)
	for i := range c.sets {
		c.sets[i] = make([]cacheLine, cfg.Assoc)
		for j := range c.sets[i] {
			c.sets[i][j].data = make([]byte, cfg.LineBytes)
		}
	}
	sim.Stats.ShadowCounter(&c.statHits, cfg.Name+".hits")
	sim.Stats.ShadowCounter(&c.statMisses, cfg.Name+".misses")
	sim.Stats.ShadowCounter(&c.statFills, cfg.Name+".fills")
	sim.Stats.ShadowCounter(&c.statEvicts, cfg.Name+".evictions")
	sim.Stats.ShadowCounter(&c.statSynth, cfg.Name+".synthFills")
	sim.Stats.ShadowCounter(&c.statStalled, cfg.Name+".missStalls")
	return c
}

// SetTracer installs span tracing on the cache's memory port (nil
// disables). Call before Run.
func (c *Cache) SetTracer(t *trace.Tracer) { c.port.SetTracer(t) }

// HitRate returns the cumulative hit ratio.
func (c *Cache) HitRate() float64 {
	h, m := c.statHits.Value(), c.statMisses.Value()
	if h+m == 0 {
		return 0
	}
	return h / (h + m)
}

// HitMissCounts returns the cumulative lookup counts.
func (c *Cache) HitMissCounts() (hits, misses float64) {
	return c.statHits.Value(), c.statMisses.Value()
}

func (c *Cache) setOf(key uint32) int {
	return int(((key >> 5) ^ (key >> 9) ^ (key >> 13)) % uint32(c.cfg.Sets))
}

func (c *Cache) find(key uint32) (set, way int) {
	set = c.setOf(key)
	for w := range c.sets[set] {
		ln := &c.sets[set][w]
		if (ln.valid || ln.pending) && ln.key == key {
			return set, w
		}
	}
	return set, -1
}

// Lookup probes for the line, counting hit/miss statistics. It
// returns true only when the line is resident and usable this cycle.
func (c *Cache) Lookup(cycle int64, key uint32) bool {
	set, w := c.find(key)
	if w >= 0 && c.sets[set][w].valid {
		c.statHits.Inc()
		c.sets[set][w].lastUse = cycle
		return true
	}
	c.statMisses.Inc()
	return false
}

// Probe reports residency without touching statistics or LRU state.
func (c *Cache) Probe(key uint32) bool {
	set, w := c.find(key)
	return w >= 0 && c.sets[set][w].valid
}

// Read copies bytes at off within the resident line into dst.
func (c *Cache) Read(key uint32, off int, dst []byte) {
	set, w := c.find(key)
	if w < 0 || !c.sets[set][w].valid {
		panic(fmt.Sprintf("%s: Read of non-resident line %#x", c.cfg.Name, key))
	}
	copy(dst, c.sets[set][w].data[off:])
}

// Write stores bytes into the resident line and marks it dirty.
func (c *Cache) Write(key uint32, off int, src []byte) {
	set, w := c.find(key)
	if w < 0 || !c.sets[set][w].valid {
		panic(fmt.Sprintf("%s: Write of non-resident line %#x", c.cfg.Name, key))
	}
	copy(c.sets[set][w].data[off:], src)
	c.sets[set][w].dirty = true
}

// RequestFill queues a miss for the line. It returns false when the
// miss queue is full or no way can be reserved (caller retries next
// cycle). Requesting a resident or already-pending line succeeds
// immediately.
func (c *Cache) RequestFill(cycle int64, key uint32) bool {
	set, w := c.find(key)
	if w >= 0 {
		return true
	}
	if len(c.miss) >= c.cfg.MissQ {
		c.statStalled.Inc()
		return false
	}
	victim := -1
	var oldest int64
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.pending {
			continue
		}
		if !ln.valid {
			victim = i
			break
		}
		if victim < 0 || ln.lastUse < oldest {
			victim = i
			oldest = ln.lastUse
		}
	}
	if victim < 0 {
		c.statStalled.Inc()
		return false
	}
	ln := &c.sets[set][victim]
	entry := c.getMiss()
	entry.key, entry.set, entry.way = key, set, victim
	if ln.valid && ln.dirty {
		entry.needWB = true
		entry.wbKey = ln.key
		entry.wbData = append(entry.wbData[:0], ln.data...)
		c.statEvicts.Inc()
	}
	ln.valid = false
	ln.dirty = false
	ln.pending = true
	ln.key = key
	c.miss = append(c.miss, entry)
	return true
}

// Clock advances the miss state machine: collects memory replies,
// then issues writebacks and fills in miss order.
func (c *Cache) Clock(cycle int64) {
	for _, rep := range c.port.Replies(cycle) {
		e := c.waiting[rep.ReqID]
		if e == nil {
			continue // flush writeback acknowledgements
		}
		delete(c.waiting, rep.ReqID)
		switch e.state {
		case missWaitWB:
			e.wbLeft--
			if e.wbLeft == 0 {
				e.needWB = false
				e.state = missQueued
			}
		case missWaitFill:
			copy(e.fillBuf[rep.Addr-e.plan.FetchAddr:], rep.Data)
			e.fillLeft--
			if e.fillLeft == 0 {
				ln := &c.sets[e.set][e.way]
				c.hooks.Decode(e.key, e.fillBuf, ln.data)
				ln.valid = true
				ln.pending = false
				ln.lastUse = cycle
				c.statFills.Inc()
				c.removeMiss(e)
			}
		}
	}

	for _, e := range c.miss {
		if e.state != missQueued {
			continue
		}
		if e.needWB {
			pieces := transactionsFor(len(e.wbData))
			if c.port.limit-c.port.outstanding < pieces {
				return // wait for port budget; keep miss order
			}
			addr, raw := c.hooks.Encode(e.wbKey, e.wbData)
			pieces = transactionsFor(len(raw))
			e.wbLeft = pieces
			for off := 0; off < len(raw); off += TransactionSize {
				end := off + TransactionSize
				if end > len(raw) {
					end = len(raw)
				}
				// Port.Write copies the payload, so raw may be reused.
				id := c.port.Write(cycle, addr+uint32(off), raw[off:end], 0)
				c.waiting[id] = e
			}
			e.state = missWaitWB
			continue
		}
		plan := c.hooks.FillPlan(e.key)
		if plan.FetchBytes == 0 {
			plan.FetchBytes = c.cfg.LineBytes
		}
		if plan.Synth {
			ln := &c.sets[e.set][e.way]
			c.hooks.Synthesize(e.key, ln.data)
			ln.valid = true
			ln.pending = false
			ln.lastUse = cycle
			c.statSynth.Inc()
			c.removeMiss(e)
			// c.miss mutated; restart next cycle to keep it simple.
			return
		}
		pieces := transactionsFor(plan.FetchBytes)
		if c.port.limit-c.port.outstanding < pieces {
			return
		}
		e.plan = plan
		if cap(e.fillBuf) >= plan.FetchBytes {
			e.fillBuf = e.fillBuf[:plan.FetchBytes]
		} else {
			e.fillBuf = make([]byte, plan.FetchBytes)
		}
		e.fillLeft = pieces
		for off := 0; off < plan.FetchBytes; off += TransactionSize {
			size := plan.FetchBytes - off
			if size > TransactionSize {
				size = TransactionSize
			}
			id := c.port.Read(cycle, plan.FetchAddr+uint32(off), size, 0)
			c.waiting[id] = e
		}
		e.state = missWaitFill
	}
}

func transactionsFor(bytes int) int {
	return (bytes + TransactionSize - 1) / TransactionSize
}

func (c *Cache) removeMiss(target *missEntry) {
	for i, e := range c.miss {
		if e == target {
			c.miss = append(c.miss[:i], c.miss[i+1:]...)
			c.putMiss(e)
			return
		}
	}
}

// getMiss pops a recycled miss entry (zeroed, keeping its buffer
// backing arrays) or allocates one.
func (c *Cache) getMiss() *missEntry {
	if n := len(c.freeMiss); n > 0 {
		e := c.freeMiss[n-1]
		c.freeMiss = c.freeMiss[:n-1]
		wb, fb := e.wbData[:0], e.fillBuf[:0]
		*e = missEntry{}
		e.wbData, e.fillBuf = wb, fb
		return e
	}
	return &missEntry{}
}

func (c *Cache) putMiss(e *missEntry) { c.freeMiss = append(c.freeMiss, e) }

// PendingMisses returns the number of outstanding misses.
func (c *Cache) PendingMisses() int { return len(c.miss) }

// FlushDirty queues writebacks for every dirty line, clearing their
// dirty bits; returns false while some line's writeback could not be
// issued this cycle (call again next cycle). Used at frame boundaries
// so the DAC and the functional comparison read consistent memory.
func (c *Cache) FlushDirty(cycle int64) bool {
	done := true
	for s := range c.sets {
		for w := range c.sets[s] {
			ln := &c.sets[s][w]
			if !ln.valid || !ln.dirty {
				continue
			}
			addr, raw := c.hooks.Encode(ln.key, ln.data)
			need := transactionsFor(len(raw))
			if c.port.limit-c.port.outstanding < need {
				done = false
				continue
			}
			for off := 0; off < len(raw); off += TransactionSize {
				end := off + TransactionSize
				if end > len(raw) {
					end = len(raw)
				}
				c.port.Write(cycle, addr+uint32(off), raw[off:end], 0)
			}
			ln.dirty = false
			c.statEvicts.Inc()
		}
	}
	return done
}

// Quiesce reports whether the cache has no misses or transactions in
// flight.
func (c *Cache) Quiesce() bool {
	return len(c.miss) == 0 && c.port.Outstanding() == 0
}

// InvalidateAll drops every line, discarding dirty data; used after
// fast clears, which make all cached framebuffer data obsolete. The
// cache must be quiesced first.
func (c *Cache) InvalidateAll() {
	if len(c.miss) > 0 {
		panic(fmt.Sprintf("%s: InvalidateAll with misses in flight", c.cfg.Name))
	}
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w].valid = false
			c.sets[s][w].dirty = false
			c.sets[s][w].pending = false
		}
	}
}
