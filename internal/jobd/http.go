package jobd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Handler exposes the job server over HTTP. The routes (mounted under
// the obsv status server or standalone):
//
//	POST   /jobs               submit one job (JobSpec JSON) → 202
//	GET    /jobs               list all jobs
//	GET    /jobs/{ref}         one job by name or ID
//	GET    /jobs/{ref}/progress  live cycle/checkpoint progress
//	GET    /jobs/{ref}/crash   black-box report of the last failed attempt
//	GET    /jobs/{ref}/spans   sampled request spans of a completed job (NDJSON)
//	POST   /jobs/{ref}/cancel  cancel (also DELETE /jobs/{ref})
//	POST   /sweeps             submit a sweep (SweepSpec JSON) → 202
//	GET    /sweeps             list sweeps
//	GET    /sweeps/{ref}       one sweep with per-job detail
//	GET    /fleet/metrics      per-client latency histograms merged across jobs
//
// Admission control maps to status codes: a full queue is 429 with a
// Retry-After hint, a draining server is 503, a duplicate name 409.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})
	mux.HandleFunc("POST /jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /jobs/{ref}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.JobStatus(r.PathValue("ref"))
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /jobs/{ref}/progress", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.JobStatus(r.PathValue("ref"))
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"name": st.Name, "state": st.State,
			"cycle": st.Cycle, "checkpointCycle": st.CheckpointCycle,
			"attempts": st.Attempts, "preemptions": st.Preemptions,
		})
	})
	mux.HandleFunc("GET /jobs/{ref}/crash", func(w http.ResponseWriter, r *http.Request) {
		crash, err := s.JobCrash(r.PathValue("ref"))
		if err != nil {
			s.writeError(w, err)
			return
		}
		if crash == nil {
			s.writeError(w, fmt.Errorf("%w: job %q has no crash report", ErrNotFound, r.PathValue("ref")))
			return
		}
		writeJSON(w, http.StatusOK, crash)
	})
	mux.HandleFunc("GET /jobs/{ref}/spans", func(w http.ResponseWriter, r *http.Request) {
		dump, err := s.JobSpans(r.PathValue("ref"))
		if err != nil {
			s.writeError(w, err)
			return
		}
		if dump == nil {
			s.writeError(w, fmt.Errorf("%w: job %q has no span dump (tracing off or not finished)", ErrNotFound, r.PathValue("ref")))
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write(dump)
	})
	cancel := func(w http.ResponseWriter, r *http.Request) {
		ref := r.PathValue("ref")
		if err := s.CancelJob(ref); err != nil {
			s.writeError(w, err)
			return
		}
		st, _ := s.JobStatus(ref)
		writeJSON(w, http.StatusOK, st)
	}
	mux.HandleFunc("POST /jobs/{ref}/cancel", cancel)
	mux.HandleFunc("DELETE /jobs/{ref}", cancel)

	mux.HandleFunc("GET /sweeps", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Sweeps())
	})
	mux.HandleFunc("POST /sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /sweeps/{ref}", func(w http.ResponseWriter, r *http.Request) {
		sw, err := s.SweepByRef(r.PathValue("ref"))
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, s.SweepStatus(sw))
	})
	mux.HandleFunc("GET /fleet/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.FleetMetrics())
	})
	return mux
}

// maxSubmitBody bounds submit request bodies: no legitimate job or
// sweep spec approaches 1 MiB, and an unbounded decoder would let one
// client exhaust server memory.
const maxSubmitBody = 1 << 20

// decodeBody decodes a bounded JSON request body, distinguishing an
// oversized body (413) from malformed JSON (400).
func decodeBody(w http.ResponseWriter, r *http.Request, v any, what string) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, what+" too large", http.StatusRequestEntityTooLarge)
			return false
		}
		http.Error(w, "bad "+what+": "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if !decodeBody(w, r, &spec, "job spec") {
		return
	}
	j, err := s.SubmitJob(spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": j.ID, "name": j.Spec.Name})
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	if !decodeBody(w, r, &spec, "sweep spec") {
		return
	}
	sw, err := s.SubmitSweep(spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": sw.ID, "name": sw.Name, "jobs": len(sw.jobs)})
}

// writeError maps the typed submit/lookup errors to HTTP codes.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterHint()))
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrRateLimited):
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "30")
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrDuplicate):
		code = http.StatusConflict
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	}
	http.Error(w, err.Error(), code)
}

// retryAfterHint estimates (in seconds) when queue capacity may free
// up: one slot per worker, scaled by backlog, clamped to [1, 60].
func (s *Server) retryAfterHint() int {
	queued := int(s.queueLen.Load())
	hint := 1 + queued/s.opts.Workers
	if hint > 60 {
		hint = 60
	}
	if hint < 1 {
		hint = 1
	}
	return hint
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
