package jobd

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCancelAfterDoneKeepsTerminalState pins the cancel/complete
// race: a cancel that lands after the job completed must not
// overwrite the terminal state (and vice versa — a completion must
// not overwrite a cancel).
func TestCancelAfterDoneKeepsTerminalState(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{OutDir: dir, Workers: 1, Retries: -1})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.SubmitJob(testSpec("race-done")); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, s, "race-done", StateDone)
	if err := s.CancelJob("race-done"); err != nil {
		t.Fatalf("cancel of done job: %v", err)
	}
	st, _ = s.JobStatus("race-done")
	if st.State != StateDone {
		t.Fatalf("cancel overwrote terminal state: got %s, want done", st.State)
	}
	if _, err := os.Stat(dir + "/race-done.csv"); err != nil {
		t.Fatalf("done job lost its CSV after late cancel: %v", err)
	}
}

// TestCancelCompleteStress races CancelJob against completing jobs
// under the race detector: whatever interleaving happens, each job
// lands in exactly one terminal state and never leaves it.
func TestCancelCompleteStress(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{OutDir: dir, Workers: 2, Retries: -1, CheckpointInterval: 50_000})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const jobs = 4
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		name := fmt.Sprintf("stress-%d", i)
		if _, err := s.SubmitJob(testSpec(name)); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Hammer cancel while the job runs and completes.
			for {
				st, err := s.JobStatus(name)
				if err != nil {
					return
				}
				if st.State.terminal() {
					return
				}
				_ = s.CancelJob(name)
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	for i := 0; i < jobs; i++ {
		name := fmt.Sprintf("stress-%d", i)
		st := waitState(t, s, name, "")
		if st.State != StateDone && st.State != StateCanceled {
			t.Fatalf("job %s: unexpected terminal state %s (%s: %s)", name, st.State, st.FailKind, st.Error)
		}
		// Terminal states are sticky: re-read after the cancel goroutines
		// have certainly fired a few more times.
		time.Sleep(20 * time.Millisecond)
		again, _ := s.JobStatus(name)
		if again.State != st.State {
			t.Fatalf("job %s flipped terminal state: %s -> %s", name, st.State, again.State)
		}
	}
	wg.Wait()
}

// TestStateFileTornWrite pins the corrupt-state quarantine: a
// half-written jobd-state.json must not brick startup — the bytes are
// quarantined to .corrupt and the server starts fresh.
func TestStateFileTornWrite(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{OutDir: dir, Workers: 1, Retries: -1})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitJob(testSpec("torn-1")); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, "torn-1", StateDone)
	s.Close()

	// Tear the state file mid-JSON, as a crash mid-write would.
	statePath := dir + "/jobd-state.json"
	data, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(statePath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := New(Options{OutDir: dir, Workers: 1, Retries: -1})
	lerr := s2.loadState()
	if lerr == nil {
		t.Fatal("loadState accepted a torn state file")
	}
	if !errors.Is(lerr, ErrStateCorrupt) {
		t.Fatalf("torn state error = %v, want ErrStateCorrupt", lerr)
	}
	var sfe *StateFileError
	if !errors.As(lerr, &sfe) || sfe.Quarantine == "" {
		t.Fatalf("torn state error missing quarantine path: %v", lerr)
	}
	quarantined, err := os.ReadFile(sfe.Quarantine)
	if err != nil {
		t.Fatalf("quarantined bytes not preserved: %v", err)
	}
	if !bytes.Equal(quarantined, data[:len(data)/2]) {
		t.Fatal("quarantined bytes differ from the torn file")
	}
	if _, err := os.Stat(statePath); !os.IsNotExist(err) {
		t.Fatal("torn state file still in place after quarantine")
	}

	// A fresh server over the same directory starts clean.
	s3 := New(Options{OutDir: dir, Workers: 1, Retries: -1})
	if err := s3.Start(); err != nil {
		t.Fatalf("Start after quarantine: %v", err)
	}
	if len(s3.Jobs()) != 0 {
		t.Fatalf("expected fresh state after quarantine, got %d jobs", len(s3.Jobs()))
	}
	s3.Close()
}

// TestTenantWeightedScheduling drives nextJobLocked directly: tenants
// share dispatch slots by weight, ties break deterministically, and
// priority orders jobs within a tenant.
func TestTenantWeightedScheduling(t *testing.T) {
	s := New(Options{
		OutDir: t.TempDir(),
		Tenants: map[string]TenantClass{
			"heavy": {Weight: 2},
			"light": {Weight: 1},
		},
	})
	submit := func(name, tenant string, pri int) {
		spec := testSpec(name)
		spec.Tenant = tenant
		spec.Priority = pri
		if _, err := s.submitLocked(spec, nil, JobSpec{}); err != nil {
			t.Fatal(err)
		}
	}
	submit("l1", "light", 0)
	submit("l2", "light", 0)
	submit("l3", "light", 5) // outranks l2 within its tenant
	submit("h1", "heavy", 0)
	submit("h2", "heavy", 0)
	submit("h3", "heavy", 0)

	var got []string
	for {
		j := s.nextJobLocked()
		if j == nil {
			break
		}
		got = append(got, j.Spec.Name)
	}
	// Both tenants start at served=0; "heavy" < "light" breaks the tie,
	// and each dispatch charges 1/weight of virtual time: heavy pays 0.5,
	// light pays 1.0, so heavy gets two dispatches for every light one.
	// Within light, l3's priority 5 outranks submission order.
	//
	//	h1 (heavy .5) → l3 (light 1) → h2 (heavy 1, tie→heavy) →
	//	h3 (heavy 1.5) → l1 (light 2) → l2
	want := []string{"h1", "l3", "h2", "h3", "l1", "l2"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("dispatch order = %v, want %v", got, want)
	}
}

// TestTenantMaxRunningCap: a tenant at its running cap is skipped
// even when its jobs head the queue.
func TestTenantMaxRunningCap(t *testing.T) {
	s := New(Options{
		OutDir:  t.TempDir(),
		Tenants: map[string]TenantClass{"capped": {MaxRunning: 1}},
	})
	for i := 0; i < 2; i++ {
		spec := testSpec(fmt.Sprintf("cap-%d", i))
		spec.Tenant = "capped"
		if _, err := s.submitLocked(spec, nil, JobSpec{}); err != nil {
			t.Fatal(err)
		}
	}
	spec := testSpec("other")
	if _, err := s.submitLocked(spec, nil, JobSpec{}); err != nil {
		t.Fatal(err)
	}
	// The tenant is already at its running limit: both its queued jobs
	// must be skipped in favor of the default tenant's job, then starve
	// until the slot frees.
	s.tenantLocked("capped").running = 1
	j := s.nextJobLocked()
	if j == nil || j.Spec.Name != "other" {
		t.Fatalf("dispatch under cap = %v, want other", j)
	}
	if j := s.nextJobLocked(); j != nil {
		t.Fatalf("capped tenant dispatched past its limit: %s", j.Spec.Name)
	}
	s.tenantLocked("capped").running = 0
	for _, want := range []string{"cap-0", "cap-1"} {
		j = s.nextJobLocked()
		if j == nil || j.Spec.Name != want {
			t.Fatalf("dispatch after slot freed = %v, want %s", j, want)
		}
	}
}

// TestSubmitRateLimit: the tenant token bucket rejects submits past
// the burst with ErrRateLimited, and the HTTP layer maps it to 429.
func TestSubmitRateLimit(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{
		OutDir: dir, Workers: 1, Retries: -1,
		Tenants: map[string]TenantClass{"metered": {SubmitRate: 0.001, SubmitBurst: 1}},
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mkspec := func(name string) JobSpec {
		spec := testSpec(name)
		spec.Tenant = "metered"
		return spec
	}
	if _, err := s.SubmitJob(mkspec("metered-1")); err != nil {
		t.Fatalf("first submit within burst: %v", err)
	}
	_, err := s.SubmitJob(mkspec("metered-2"))
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second submit = %v, want ErrRateLimited", err)
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"name":"metered-3","tenant":"metered"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited submit status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
}

// TestSubmitBodyLimit: an oversized submit body is rejected with 413
// instead of being buffered into memory.
func TestSubmitBodyLimit(t *testing.T) {
	s := New(Options{OutDir: t.TempDir(), Workers: 1})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	huge := `{"name":"big","workload":"` + strings.Repeat("x", maxSubmitBody) + `"}`
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit status = %d, want 413", resp.StatusCode)
	}
}

// TestPriorityPreemption: with every worker busy, a higher-priority
// submission checkpoints the lowest-priority running job at its next
// barrier and takes its worker; the victim resumes afterwards and
// both finish with correct results.
func TestPriorityPreemption(t *testing.T) {
	total, wantCSV := cleanRun(t)
	dir := t.TempDir()
	s := New(Options{
		OutDir: dir, Workers: 1, Retries: -1,
		CheckpointInterval: total / 20,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	low := testSpec("low-pri")
	low.Priority = 1
	if _, err := s.SubmitJob(low); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, "low-pri", StateRunning)
	// Let it get past the first checkpoint so preemption has a barrier
	// to land on.
	deadline := time.Now().Add(time.Minute)
	for {
		st, _ := s.JobStatus("low-pri")
		if st.CheckpointCycle > 0 || st.State.terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("low-pri never checkpointed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	high := testSpec("high-pri")
	high.Priority = 10
	if _, err := s.SubmitJob(high); err != nil {
		t.Fatal(err)
	}
	hst := waitState(t, s, "high-pri", StateDone)
	lst, _ := s.JobStatus("low-pri")
	if lst.State == StateDone {
		// The low job finished before the preemption barrier was
		// reached — possible only if it was nearly done; the scheduling
		// property below still must hold for the common case.
		t.Logf("low-pri finished before preemption could land")
	} else if lst.Preemptions == 0 {
		t.Fatalf("high-pri done but low-pri was never preempted (state %s)", lst.State)
	}
	lst = waitState(t, s, "low-pri", StateDone)
	if hst.Cycles != total || lst.Cycles != total {
		t.Fatalf("cycles after preemption: high=%d low=%d want %d", hst.Cycles, lst.Cycles, total)
	}
	got, err := os.ReadFile(dir + "/low-pri.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantCSV) {
		t.Fatal("preempted-and-resumed job CSV differs from clean run")
	}
}
