package jobd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestFleetMetricsMergeAcrossJobs: a traced sweep's per-job span
// histograms must merge into one fleet view — span counts add, client
// histograms are bucket sums — and stay consistent while jobs are
// completing concurrently (this test runs under -race in make check).
func TestFleetMetricsMergeAcrossJobs(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{
		OutDir: dir, Workers: 2, Retries: -1, Logf: t.Logf,
		TraceSample: 4, TraceSeed: 1,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	spec := SweepSpec{Name: "fleet", Jobs: []JobSpec{
		testSpec("fleet-1"), testSpec("fleet-2"), testSpec("fleet-3"),
	}}
	if _, err := s.SubmitSweep(spec); err != nil {
		t.Fatal(err)
	}
	sw, err := s.SweepByRef("fleet")
	if err != nil {
		t.Fatal(err)
	}

	// Hammer the fleet view while the jobs finish: every intermediate
	// snapshot must be internally consistent (client counts sum to the
	// span total) even as completions land from both workers.
	stop := make(chan struct{})
	raced := make(chan error, 1)
	go func() {
		defer close(raced)
		for {
			select {
			case <-stop:
				return
			default:
			}
			fm := s.FleetMetrics()
			var sum uint64
			for _, cl := range fm.Clients {
				sum += cl.Count
			}
			if sum != fm.Spans {
				raced <- fmt.Errorf("fleet snapshot inconsistent: client counts sum to %d, span total %d", sum, fm.Spans)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.WaitSweep(ctx, sw); err != nil {
		t.Fatal(err)
	}
	close(stop)
	if err := <-raced; err != nil {
		t.Fatal(err)
	}

	fm := s.FleetMetrics()
	if fm.Jobs != 3 {
		t.Fatalf("fleet sees %d completed traced jobs, want 3", fm.Jobs)
	}
	if fm.SampleRate != 4 {
		t.Errorf("fleet sample rate %d, want 4", fm.SampleRate)
	}
	if fm.Spans == 0 || fm.Spans%3 != 0 {
		t.Errorf("fleet spans %d: identical jobs must contribute identical deterministic counts", fm.Spans)
	}
	var sum uint64
	for name, cl := range fm.Clients {
		if cl.Count%3 != 0 {
			t.Errorf("client %s count %d not divisible by 3 identical jobs", name, cl.Count)
		}
		if cl.Hist.N != cl.Count {
			t.Errorf("client %s: histogram N %d != count %d", name, cl.Hist.N, cl.Count)
		}
		if cl.P99 < cl.P50 {
			t.Errorf("client %s: p99 %d < p50 %d", name, cl.P99, cl.P50)
		}
		sum += cl.Count
	}
	if sum != fm.Spans {
		t.Errorf("client counts sum to %d, fleet total %d", sum, fm.Spans)
	}

	// The HTTP surface: /fleet/metrics serves the same merged view,
	// /jobs/{ref}/spans serves each job's NDJSON dump.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/fleet/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /fleet/metrics: %s", resp.Status)
	}
	var httpFM FleetMetrics
	if err := json.NewDecoder(resp.Body).Decode(&httpFM); err != nil {
		t.Fatal(err)
	}
	if httpFM.Jobs != fm.Jobs || httpFM.Spans != fm.Spans || len(httpFM.Clients) != len(fm.Clients) {
		t.Errorf("HTTP fleet view %+v differs from direct %+v", httpFM, fm)
	}

	var dumps []string
	for _, name := range []string{"fleet-1", "fleet-2", "fleet-3"} {
		resp, err := ts.Client().Get(ts.URL + "/jobs/" + name + "/spans")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET /jobs/%s/spans: %s", name, resp.Status)
		}
		if len(strings.TrimSpace(string(body))) == 0 {
			t.Fatalf("job %s: empty span dump", name)
		}
		dumps = append(dumps, string(body))
	}
	// Identical specs sample identical spans: the dumps must be
	// byte-identical across jobs (and therefore across workers).
	if dumps[0] != dumps[1] || dumps[1] != dumps[2] {
		t.Error("span dumps differ across identical jobs — sampling is not deterministic")
	}
}

// TestJobSpansWithoutTracing: a job run with tracing off answers 404
// on its span endpoint, not an empty dump.
func TestJobSpansWithoutTracing(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{OutDir: dir, Workers: 1, Retries: -1, Logf: t.Logf})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.SubmitJob(testSpec("plain-1")); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, "plain-1", StateDone)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/jobs/plain-1/spans")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("GET /jobs/plain-1/spans without tracing: %s, want 404", resp.Status)
	}
	fm := s.FleetMetrics()
	if fm.Jobs != 0 || fm.Spans != 0 {
		t.Errorf("untraced jobs leaked into fleet metrics: %+v", fm)
	}
}
