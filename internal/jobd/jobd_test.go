package jobd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// testSpec is the scaled-down run every jobd test uses: multi-frame so
// quiesced checkpoints exist mid-run (safe points occur at batch
// drains, about once per frame).
func testSpec(name string) JobSpec {
	return JobSpec{
		Name: name, Config: "baseline", Workload: "simple",
		Width: 96, Height: 64, Frames: 3, Aniso: 2, Seed: 1,
		MaxCycles: 200_000_000, TimeoutSec: -1,
	}
}

var (
	totalOnce   sync.Once
	totalCycles int64
	totalCSV    []byte
	totalErr    error
)

// cleanRun measures an unsupervised run of testSpec once per test
// binary: its total cycles place faults and checkpoint intervals, and
// its stats CSV is the byte-identity reference.
func cleanRun(t *testing.T) (int64, []byte) {
	t.Helper()
	totalOnce.Do(func() {
		dir, err := os.MkdirTemp("", "jobd-clean-*")
		if err != nil {
			totalErr = err
			return
		}
		defer os.RemoveAll(dir)
		st, err := RunSweep(context.Background(),
			Options{OutDir: dir, Workers: 1, Retries: -1},
			SweepSpec{Name: "measure", Jobs: []JobSpec{testSpec("measure-1")}})
		if err != nil {
			totalErr = err
			return
		}
		totalCycles = st.Jobs[0].Cycles
		totalCSV, totalErr = os.ReadFile(filepath.Join(dir, "measure-1.csv"))
	})
	if totalErr != nil {
		t.Fatalf("clean reference run failed: %v", totalErr)
	}
	if totalCycles <= 0 {
		t.Fatal("clean reference run reported zero cycles")
	}
	return totalCycles, totalCSV
}

// waitState polls until the job reaches a state (or any terminal one
// when want is empty), failing the test on timeout.
func waitState(t *testing.T, s *Server, ref string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st, err := s.JobStatus(ref)
		if err != nil {
			t.Fatal(err)
		}
		if (want != "" && st.State == want) || (want == "" && st.State.terminal()) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s (want %q)", ref, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// A sweep submitted over HTTP must run to completion, expose live
// job/sweep status on the API, and leave per-job CSVs, manifests, and
// the deterministic sweep summary on disk.
func TestJobdHTTPSweepLifecycle(t *testing.T) {
	_, cleanCSV := cleanRun(t)
	dir := t.TempDir()
	s := New(Options{OutDir: dir, Workers: 2, Retries: -1, Logf: t.Logf})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := SweepSpec{Name: "api", Jobs: []JobSpec{testSpec("api-1"), testSpec("api-2")}}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", resp.StatusCode)
	}

	// Resubmitting the same sweep is the restart-continuation path, not
	// a conflict.
	resp, err = http.Post(ts.URL+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit same sweep: status %d, want 202", resp.StatusCode)
	}

	// A clashing job name is a conflict.
	jb, _ := json.Marshal(testSpec("api-1"))
	resp, err = http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(jb))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate job: status %d, want 409", resp.StatusCode)
	}

	sw, err := s.SweepByRef("api")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.WaitSweep(ctx, sw); err != nil {
		t.Fatal(err)
	}

	var swStatus SweepStatus
	getJSON(t, ts.URL+"/sweeps/api", &swStatus)
	if swStatus.Done != 2 || !swStatus.Finalized {
		t.Fatalf("sweep status: %+v, want 2 done and finalized", swStatus)
	}
	var jobStatus JobStatus
	getJSON(t, ts.URL+"/jobs/api-1", &jobStatus)
	if jobStatus.State != StateDone || jobStatus.Attempts != 1 {
		t.Fatalf("job api-1: %+v, want done after 1 attempt", jobStatus)
	}
	var prog map[string]any
	getJSON(t, ts.URL+"/jobs/api-1/progress", &prog)
	if prog["state"] != string(StateDone) {
		t.Fatalf("progress state = %v, want done", prog["state"])
	}
	if resp, err := http.Get(ts.URL + "/jobs/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("missing job: status %d, want 404", resp.StatusCode)
		}
	}

	for _, name := range []string{"api-1", "api-2"} {
		csv, err := os.ReadFile(filepath.Join(dir, name+".csv"))
		if err != nil {
			t.Fatalf("stats csv missing: %v", err)
		}
		if !bytes.Equal(csv, cleanCSV) {
			t.Errorf("%s.csv differs from the clean reference run", name)
		}
		if _, err := os.Stat(filepath.Join(dir, name+"-manifest.json")); err != nil {
			t.Errorf("manifest missing: %v", err)
		}
	}
	summary, err := os.ReadFile(filepath.Join(dir, "api-summary.txt"))
	if err != nil {
		t.Fatalf("summary missing: %v", err)
	}
	if !strings.Contains(string(summary), "api-1 config=baseline workload=simple cycles=") {
		t.Errorf("summary does not list api-1:\n%s", summary)
	}
}

// Admission control: submits past the queue limit get ErrQueueFull
// (HTTP 429 with Retry-After), a draining server answers 503.
func TestJobdAdmissionControl(t *testing.T) {
	// No Start: the queue never drains, so the limit is hit exactly.
	s := New(Options{OutDir: t.TempDir(), QueueLimit: 2, Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 1; i <= 2; i++ {
		if _, err := s.SubmitJob(testSpec(fmt.Sprintf("adm-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	body, _ := json.Marshal(testSpec("adm-3"))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	// A sweep that would overflow the queue is rejected whole.
	swBody, _ := json.Marshal(SweepSpec{Name: "admsweep", Jobs: []JobSpec{testSpec("adm-4")}})
	resp, err = http.Post(ts.URL+"/sweeps", "application/json", bytes.NewReader(swBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit sweep: status %d, want 429", resp.StatusCode)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: status %d, want 503", resp.StatusCode)
	}
	s.Close()
}

// Cancel: a queued job is removed immediately; a running one stops at
// the next cycle boundary. Neither is retried.
func TestJobdCancel(t *testing.T) {
	cleanRun(t)
	s := New(Options{OutDir: t.TempDir(), Workers: 1, Retries: 3, Logf: t.Logf})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The running victim needs enough frames that the cancel lands
	// mid-run, not after completion.
	long := testSpec("run-a")
	long.Width, long.Height, long.Frames = 256, 256, 10
	if _, err := s.SubmitJob(long); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitJob(testSpec("queued-b")); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, "run-a", StateRunning)
	for {
		if st, _ := s.JobStatus("run-a"); st.Cycle > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Cancel the queued job over HTTP (DELETE form).
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/queued-b", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: status %d, want 200", resp.StatusCode)
	}
	if st := waitState(t, s, "queued-b", ""); st.State != StateCanceled {
		t.Fatalf("queued job state %s, want canceled", st.State)
	}

	// Cancel the running job (POST form).
	resp, err = http.Post(ts.URL+"/jobs/run-a/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := waitState(t, s, "run-a", "")
	if st.State != StateCanceled {
		t.Fatalf("running job state %s (kind %s), want canceled", st.State, st.FailKind)
	}
	if st.Attempts != 1 {
		t.Errorf("canceled job was attempted %d times, want 1 (cancel must not retry)", st.Attempts)
	}
}

// Fairness preemption: with one worker and two jobs, the quantum
// forces the running job to checkpoint and requeue so both make
// progress — and because restore is bit-identical, the final stats
// still match the clean run byte for byte.
func TestJobdPreemption(t *testing.T) {
	total, cleanCSV := cleanRun(t)
	dir := t.TempDir()
	s := New(Options{
		OutDir: dir, Workers: 1, Retries: -1,
		PreemptCycles:      total / 4,
		CheckpointInterval: total / 8,
		Logf:               t.Logf,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sw, err := s.SubmitSweep(SweepSpec{Name: "fair", Jobs: []JobSpec{testSpec("fair-1"), testSpec("fair-2")}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.WaitSweep(ctx, sw); err != nil {
		t.Fatal(err)
	}

	st := s.SweepStatus(sw)
	if st.Done != 2 {
		t.Fatalf("sweep: %d done of %d, status %+v", st.Done, st.Total, st)
	}
	preemptions := 0
	for _, j := range st.Jobs {
		preemptions += j.Preemptions
	}
	if preemptions == 0 {
		t.Error("no preemptions happened; quantum did not fire")
	}
	for _, name := range []string{"fair-1", "fair-2"} {
		csv, err := os.ReadFile(filepath.Join(dir, name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(csv, cleanCSV) {
			t.Errorf("%s.csv differs from the clean run after preemption", name)
		}
	}
}

// A stats CSV that cannot be written (the output path is blocked by a
// file where the directory should be) degrades the job to a typed
// failed state — the server survives.
func TestJobdDiskDegradation(t *testing.T) {
	cleanRun(t)
	base := t.TempDir()
	out := filepath.Join(base, "out")
	// The job's CSV parent "directory" is a regular file: every write
	// fails with ENOTDIR, even running as root.
	s := New(Options{
		OutDir:  filepath.Join(out, "blocked"),
		CkptDir: filepath.Join(base, "ckpt"), StatePath: filepath.Join(base, "state.json"),
		Workers: 1, Retries: -1, Logf: t.Logf,
	})
	if err := os.WriteFile(out, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// Start must fail cleanly (cannot create the output tree) — that is
	// admission-level degradation.
	if err := s.Start(); err == nil {
		t.Fatal("Start succeeded with a blocked output directory")
	}

	// Now let the server start, then block the directory mid-flight.
	os.Remove(out)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := os.RemoveAll(s.opts.OutDir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.opts.OutDir, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitJob(testSpec("disk-1")); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, s, "disk-1", "")
	if st.State != StateFailed || st.FailKind != FailDisk {
		t.Fatalf("job state %s kind %s, want failed/disk", st.State, st.FailKind)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
