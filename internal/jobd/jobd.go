// Package jobd is the sim-as-a-service layer: a long-lived,
// fault-tolerant job server that turns the one-shot experiments CLI
// into a supervised sweep service. Jobs (one simulation run each) and
// sweeps (named sets of jobs) are submitted over a small HTTP API,
// executed by a bounded worker pool, and supervised per job with the
// robustness primitives the repository already has:
//
//   - per-job wall-clock timeout and no-progress watchdog window;
//   - bounded retries with capped, seeded-jitter exponential backoff,
//     each retry resuming from the job's last checkpoint
//     (internal/chkpt) instead of replaying from cycle zero;
//   - panic and deadlock isolation: a crashing box surfaces as a
//     core.CrashError black box on the job, never as a dead server;
//   - checkpoint-based preemption: a job that has held a worker for a
//     full quantum while others wait is checkpointed at the next
//     quiesced barrier and requeued, so the pool stays fair;
//   - graceful degradation: SIGTERM drains the pool (in-flight jobs
//     checkpoint, stamp their manifest, and persist as resumable),
//     admission control rejects submits past the queue limit with
//     429 + Retry-After, and disk-write failures degrade the job to a
//     typed failed state instead of crashing the process.
//
// Because checkpoint restore is bit-identical, none of the supervision
// machinery can change results: a sweep that was killed, panicked,
// preempted, drained, and resumed converges to the same per-run stats
// CSVs and sweep summary, byte for byte, as a clean one-shot run. The
// seeded chaos convergence suite asserts exactly that.
package jobd

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"attila/internal/gpu"
	"attila/internal/workload"
)

// State is a job's lifecycle state.
type State string

const (
	// StateQueued: waiting for a worker (fresh, or requeued after a
	// drain/restart with a checkpoint to resume from).
	StateQueued State = "queued"
	// StateRunning: a worker is simulating it.
	StateRunning State = "running"
	// StatePreempted: checkpointed and requeued to keep the pool fair,
	// or parked resumable by a drain.
	StatePreempted State = "preempted"
	// StateDone: completed; stats CSV written.
	StateDone State = "done"
	// StateFailed: out of retries (FailKind says how it failed).
	StateFailed State = "failed"
	// StateCanceled: canceled by the user.
	StateCanceled State = "canceled"
	// StateLost: the job's fleet lease was fenced — another peer stole
	// it and owns the result now. Terminal on this server; the job
	// wrote nothing after the fence.
	StateLost State = "lost"
)

// terminal reports whether a state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateLost
}

// Failure kinds (JobStatus.FailKind) — the typed taxonomy of how a
// job's attempts died.
const (
	FailPanic    = "panic"    // box panic (core.ErrPanic black box)
	FailDeadlock = "deadlock" // watchdog fired (core.ErrDeadlock)
	FailDisk     = "disk"     // output writes kept failing (ErrDisk)
	FailTimeout  = "timeout"  // per-job wall-clock budget exhausted
	FailKilled   = "killed"   // worker killed mid-run (chaos)
	FailError    = "error"    // any other simulation error
	FailFenced   = "fenced"   // fleet lease lost; aborted without writes
)

// Typed submit failures the HTTP layer maps to status codes.
var (
	// ErrQueueFull: admission control rejected the submit (429).
	ErrQueueFull = errors.New("jobd: queue full")
	// ErrDraining: the server is shutting down (503).
	ErrDraining = errors.New("jobd: server draining")
	// ErrDuplicate: a job with that name already exists (409).
	ErrDuplicate = errors.New("jobd: duplicate job name")
	// ErrNotFound: no such job or sweep (404).
	ErrNotFound = errors.New("jobd: not found")
	// ErrRateLimited: the tenant's submit token bucket is empty (429).
	ErrRateLimited = errors.New("jobd: tenant rate limited")
)

// ErrFenced matches a fencing rejection: the job's fleet lease was
// lost to another peer, so every durable write on the old owner's
// behalf must be refused. The Fence hook (Options.Fence) returns an
// error wrapping this; a fenced job parks as StateLost/FailFenced
// having written nothing past the fence.
var ErrFenced = errors.New("jobd: lease fenced")

// ErrDisk matches (via errors.Is) a *DiskError: an output write that
// kept failing after retries. Jobs degrade to StateFailed/FailDisk on
// it; the server never crashes on a bad disk.
var ErrDisk = errors.New("jobd: disk write failed")

// DiskError is a failed durable write, wrapping the underlying OS
// error and matching ErrDisk.
type DiskError struct {
	Op   string // "stats csv", "manifest", "state"
	Path string
	Err  error
}

func (e *DiskError) Error() string {
	return fmt.Sprintf("jobd: writing %s %s: %v", e.Op, e.Path, e.Err)
}

func (e *DiskError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrDisk) hold for every DiskError.
func (e *DiskError) Is(target error) bool { return target == ErrDisk }

// JobSpec describes one simulation run. Zero fields inherit first from
// the sweep's Defaults, then from the package defaults (the same
// scaled-down case-study settings the experiments CLI uses).
type JobSpec struct {
	// Name uniquely identifies the job on the server; it is also the
	// stem of the job's output files (<name>.csv, <name>-manifest.json).
	Name string `json:"name"`
	// Config names the machine: baseline, baseline-unified (or
	// unified), highend, embedded, or casestudy:<tus>:<window|inorder>.
	Config string `json:"config,omitempty"`
	// Workload is a workload name from internal/workload.
	Workload string `json:"workload,omitempty"`

	Width  int   `json:"width,omitempty"`
	Height int   `json:"height,omitempty"`
	Frames int   `json:"frames,omitempty"`
	Aniso  int   `json:"aniso,omitempty"`
	Seed   int64 `json:"seed,omitempty"`

	// MaxCycles bounds the simulation; 0 inherits the default budget.
	MaxCycles int64 `json:"maxCycles,omitempty"`
	// WatchdogWindow arms the per-job no-progress watchdog; 0 inherits
	// the server default.
	WatchdogWindow int64 `json:"watchdogWindow,omitempty"`
	// TimeoutSec bounds the job's wall clock per attempt; 0 inherits
	// the server default, negative means no limit.
	TimeoutSec float64 `json:"timeoutSec,omitempty"`
	// Retries bounds re-attempts after a failure: 0 inherits the server
	// default, negative means fail fast.
	Retries int `json:"retries,omitempty"`

	// Tenant names the fairness class the job is billed to. Empty means
	// the default class. The scheduler shares workers between tenants by
	// weight (Options.Tenants) instead of global FIFO.
	Tenant string `json:"tenant,omitempty"`
	// Priority orders jobs within a tenant (higher first; default 0). A
	// submission that outranks every running job while all workers are
	// busy preempts the lowest-priority running job at its next
	// checkpoint barrier.
	Priority int `json:"priority,omitempty"`
	// Resume asks the server to keep and use any checkpoint already on
	// disk for this job name instead of starting from cycle zero. The
	// fleet layer sets it when a stolen job migrates to a new peer; a
	// plain fresh submit leaves it false and starts clean.
	Resume bool `json:"resume,omitempty"`
}

// TenantClass configures one fairness class (Options.Tenants).
type TenantClass struct {
	// Weight is the tenant's share of dispatch slots relative to other
	// tenants with queued work; 0 means 1. Scheduling is weighted fair
	// queuing on virtual service time: each dispatch charges the tenant
	// 1/Weight, and the tenant with the least accumulated charge goes
	// next.
	Weight int `json:"weight,omitempty"`
	// MaxRunning caps the tenant's concurrently running jobs; 0 means
	// no cap beyond the worker pool itself.
	MaxRunning int `json:"maxRunning,omitempty"`
	// SubmitRate > 0 arms a token-bucket limit on submissions (jobs per
	// second); SubmitBurst is the bucket depth (0 means max(1,
	// ceil(SubmitRate))). Submits past the bucket fail with
	// ErrRateLimited (HTTP 429 + Retry-After).
	SubmitRate  float64 `json:"submitRate,omitempty"`
	SubmitBurst int     `json:"submitBurst,omitempty"`
}

// SweepSpec is a named set of jobs submitted and summarized together.
type SweepSpec struct {
	Name string `json:"name"`
	// Defaults fills zero fields of every job in the sweep.
	Defaults JobSpec `json:"defaults,omitempty"`
	Jobs     []JobSpec `json:"jobs"`
}

// NormalizeSweep validates a sweep spec and returns its fully
// normalized job specs (sweep defaults and package defaults applied),
// without admitting anything. The fleet layer uses it to publish a
// sweep's jobs to the shared work queue exactly as a local server
// would admit them, so a fleet run and a single-host run execute
// identical specs.
func NormalizeSweep(spec SweepSpec) ([]JobSpec, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("jobd: sweep needs a name")
	}
	if spec.Name != sanitizeName(spec.Name) {
		return nil, fmt.Errorf("jobd: sweep name %q: only [a-zA-Z0-9.-] allowed", spec.Name)
	}
	if len(spec.Jobs) == 0 {
		return nil, fmt.Errorf("jobd: sweep %s has no jobs", spec.Name)
	}
	norm := make([]JobSpec, len(spec.Jobs))
	seen := make(map[string]bool, len(spec.Jobs))
	for i, js := range spec.Jobs {
		n, err := js.normalize(spec.Defaults)
		if err != nil {
			return nil, err
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("%w: %s (within sweep %s)", ErrDuplicate, n.Name, spec.Name)
		}
		seen[n.Name] = true
		norm[i] = n
	}
	return norm, nil
}

// withDefaults fills s's zero fields from d.
func (s JobSpec) withDefaults(d JobSpec) JobSpec {
	if s.Config == "" {
		s.Config = d.Config
	}
	if s.Workload == "" {
		s.Workload = d.Workload
	}
	if s.Width == 0 {
		s.Width = d.Width
	}
	if s.Height == 0 {
		s.Height = d.Height
	}
	if s.Frames == 0 {
		s.Frames = d.Frames
	}
	if s.Aniso == 0 {
		s.Aniso = d.Aniso
	}
	if s.Seed == 0 {
		s.Seed = d.Seed
	}
	if s.MaxCycles == 0 {
		s.MaxCycles = d.MaxCycles
	}
	if s.WatchdogWindow == 0 {
		s.WatchdogWindow = d.WatchdogWindow
	}
	if s.TimeoutSec == 0 {
		s.TimeoutSec = d.TimeoutSec
	}
	if s.Retries == 0 {
		s.Retries = d.Retries
	}
	if s.Tenant == "" {
		s.Tenant = d.Tenant
	}
	if s.Priority == 0 {
		s.Priority = d.Priority
	}
	return s
}

// packageDefaults mirrors experiments.DefaultRunParams.
var packageDefaults = JobSpec{
	Config: "baseline", Workload: "simple",
	Width: 192, Height: 144, Frames: 2, Aniso: 8, Seed: 1,
	MaxCycles: 2_000_000_000,
}

// normalize applies defaults and validates the spec.
func (s JobSpec) normalize(sweepDefaults JobSpec) (JobSpec, error) {
	s = s.withDefaults(sweepDefaults).withDefaults(packageDefaults)
	if strings.TrimSpace(s.Name) == "" {
		return s, fmt.Errorf("jobd: job needs a name")
	}
	if s.Name != sanitizeName(s.Name) {
		return s, fmt.Errorf("jobd: job name %q: only [a-zA-Z0-9.-] allowed", s.Name)
	}
	if _, err := ResolveConfig(s.Config); err != nil {
		return s, err
	}
	if _, err := workload.Lookup(s.Workload); err != nil {
		return s, err
	}
	if s.Width <= 0 || s.Height <= 0 || s.Frames <= 0 {
		return s, fmt.Errorf("jobd: job %s: width/height/frames must be positive", s.Name)
	}
	if s.Tenant != "" && s.Tenant != sanitizeName(s.Tenant) {
		return s, fmt.Errorf("jobd: tenant %q: only [a-zA-Z0-9.-] allowed", s.Tenant)
	}
	return s, nil
}

// ResolveConfig maps a config name to a gpu.Config. The casestudy form
// takes a texture-unit count and scheduling mode:
// "casestudy:2:window" or "casestudy:3:inorder".
func ResolveConfig(name string) (gpu.Config, error) {
	switch name {
	case "", "baseline":
		return gpu.Baseline(), nil
	case "baseline-unified", "unified":
		return gpu.BaselineUnified(), nil
	case "highend":
		return gpu.HighEnd(), nil
	case "embedded":
		return gpu.Embedded(), nil
	}
	if rest, ok := strings.CutPrefix(name, "casestudy:"); ok {
		tusStr, modeStr, ok := strings.Cut(rest, ":")
		if !ok {
			return gpu.Config{}, fmt.Errorf("jobd: config %q: want casestudy:<tus>:<window|inorder>", name)
		}
		tus, err := strconv.Atoi(tusStr)
		if err != nil || tus < 1 {
			return gpu.Config{}, fmt.Errorf("jobd: config %q: bad texture unit count %q", name, tusStr)
		}
		var mode gpu.ScheduleMode
		switch modeStr {
		case "window":
			mode = gpu.ScheduleWindow
		case "inorder":
			mode = gpu.ScheduleInOrderQueue
		default:
			return gpu.Config{}, fmt.Errorf("jobd: config %q: bad schedule mode %q", name, modeStr)
		}
		return gpu.CaseStudy(tus, mode), nil
	}
	return gpu.Config{}, fmt.Errorf("jobd: unknown config %q (want baseline, baseline-unified, highend, embedded, or casestudy:<tus>:<mode>)", name)
}

// sanitizeName keeps only file-name-safe runes.
func sanitizeName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
}
