package jobd

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"attila/internal/obsv"
)

// SIGTERM graceful drain (the satellite this test exists for): an
// in-flight sweep gets SIGTERM, the running job checkpoints at its
// next quiesced barrier and stamps its manifest "preempted", the queue
// persists to the state file, and a restarted invocation resumes the
// sweep to results byte-identical to a never-interrupted run.
func TestJobdSigtermDrainResume(t *testing.T) {
	total, cleanCSV := cleanRun(t)
	dir := t.TempDir()
	opts := Options{
		OutDir: dir, Workers: 1, Retries: -1,
		CheckpointInterval: total / 8,
		Logf:               t.Logf,
	}
	s := New(opts)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	spec := SweepSpec{Name: "drain", Jobs: []JobSpec{testSpec("drain-1"), testSpec("drain-2")}}
	if _, err := s.SubmitSweep(spec); err != nil {
		t.Fatal(err)
	}

	// Wait until the first job is genuinely mid-run, then deliver a
	// real SIGTERM to this process — the same signal path the CLI's
	// serve/sweep modes drain on.
	waitState(t, s, "drain-1", StateRunning)
	for {
		if st, _ := s.JobStatus("drain-1"); st.Cycle > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sigCtx.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("SIGTERM not delivered")
	}
	dctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}

	// The in-flight job parked resumable with a checkpoint…
	st, err := s.JobStatus("drain-1")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StatePreempted || !st.Resumable {
		t.Fatalf("drained job: state %s resumable %v, want preempted/resumable", st.State, st.Resumable)
	}
	if st.CheckpointCycle <= 0 {
		t.Error("drained job has no checkpoint cycle")
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoints", "drain-1.ckpt")); err != nil {
		t.Errorf("drained job's checkpoint file missing: %v", err)
	}
	// …stamped its manifest with the drain state…
	var man obsv.Manifest
	manData, err := os.ReadFile(filepath.Join(dir, "drain-1-manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(manData, &man); err != nil {
		t.Fatal(err)
	}
	if man.State != string(StatePreempted) {
		t.Errorf("manifest state %q, want %q", man.State, StatePreempted)
	}
	// …and the state file records a resumable sweep.
	if _, err := os.Stat(filepath.Join(dir, "jobd-state.json")); err != nil {
		t.Fatalf("state file missing after drain: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same output directory: the state loads, the
	// interrupted job resumes from its checkpoint, and re-submitting
	// the same sweep attaches to it instead of colliding.
	s2 := New(opts)
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sw, err := s2.SubmitSweep(spec)
	if err != nil {
		t.Fatalf("continuation resubmit failed: %v", err)
	}
	ctx, cancel2 := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel2()
	if err := s2.WaitSweep(ctx, sw); err != nil {
		t.Fatal(err)
	}
	final := s2.SweepStatus(sw)
	if final.Done != 2 {
		t.Fatalf("resumed sweep: %d done of %d (%+v)", final.Done, final.Total, final)
	}
	for _, name := range []string{"drain-1", "drain-2"} {
		csv, err := os.ReadFile(filepath.Join(dir, name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(csv, cleanCSV) {
			t.Errorf("%s.csv differs from the uninterrupted run after drain+resume", name)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "drain-summary.txt")); err != nil {
		t.Errorf("sweep summary missing after resume: %v", err)
	}
}
