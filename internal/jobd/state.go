package jobd

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// ErrStateCorrupt matches (via errors.Is) a *StateFileError: the
// durable state file exists but cannot be parsed (torn write, disk
// corruption). The server quarantines the file and starts fresh
// instead of refusing to start.
var ErrStateCorrupt = errors.New("jobd: corrupt state file")

// StateFileError reports an unusable jobd-state.json. Quarantine is
// the path the corrupt bytes were preserved at for post-mortem ("":
// the rename itself failed).
type StateFileError struct {
	Path       string
	Quarantine string
	Err        error
}

func (e *StateFileError) Error() string {
	if e.Quarantine != "" {
		return fmt.Sprintf("jobd: state file %s corrupt (quarantined to %s): %v", e.Path, e.Quarantine, e.Err)
	}
	return fmt.Sprintf("jobd: state file %s corrupt: %v", e.Path, e.Err)
}

func (e *StateFileError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrStateCorrupt) hold for every StateFileError.
func (e *StateFileError) Is(target error) bool { return target == ErrStateCorrupt }

// The state file is what makes the server itself crash-tolerant: every
// submit, completion, and drain persists the queue and job states, and
// Start loads them back — interrupted jobs requeue as resumable, done
// jobs keep their results (re-read from their stats CSVs), and sweeps
// re-finalize if their convergence pass was cut short.

type persistedJob struct {
	Spec        JobSpec `json:"spec"`
	State       State   `json:"state"`
	FailKind    string  `json:"failKind,omitempty"`
	Error       string  `json:"error,omitempty"`
	Attempts    int     `json:"attempts,omitempty"`
	Preemptions int     `json:"preemptions,omitempty"`
	Resumable   bool    `json:"resumable,omitempty"`
	Cycles      int64   `json:"cycles,omitempty"`
	FPS         float64 `json:"fps,omitempty"`
	Sweep       string  `json:"sweep,omitempty"`
}

type persistedState struct {
	NextID int64          `json:"nextId"`
	Sweeps []string       `json:"sweeps,omitempty"`
	Jobs   []persistedJob `json:"jobs"`
}

// saveState writes the durable queue/state file. Failure degrades to a
// log line: losing the state file costs resumability, never the
// running jobs.
func (s *Server) saveState() {
	if s.opts.StatePath == "" || s.killed.Load() {
		return
	}
	s.mu.Lock()
	st := persistedState{NextID: s.nextID}
	for _, sw := range s.sweeps {
		st.Sweeps = append(st.Sweeps, sw.Name)
	}
	for _, j := range s.order {
		pj := persistedJob{
			Spec: j.Spec, State: j.state,
			FailKind: j.failKind, Error: j.errMsg,
			Attempts: j.attempts, Preemptions: j.preemptions,
			Resumable: j.resumable, Cycles: j.cycles, FPS: j.fps,
		}
		if j.sweep != nil {
			pj.Sweep = j.sweep.Name
		}
		st.Jobs = append(st.Jobs, pj)
	}
	s.mu.Unlock()
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return
	}
	if werr := s.writeDurable("state", s.opts.StatePath, append(data, '\n')); werr != nil {
		s.logf("jobd: degraded: %v", werr)
	}
}

// loadState restores the previous life's jobs and sweeps. Non-terminal
// jobs requeue (resumable when a checkpoint may exist); done jobs
// reload their stats CSV so sweep finalization can verify and heal the
// on-disk copies, and requeue for a deterministic re-run if the CSV is
// gone and the sweep still needs it.
func (s *Server) loadState() error {
	if s.opts.StatePath == "" {
		return nil
	}
	data, err := os.ReadFile(s.opts.StatePath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var st persistedState
	if err := json.Unmarshal(data, &st); err != nil {
		// Torn write or corruption: quarantine the bytes for post-mortem
		// and start fresh rather than refusing to start. The rename is
		// what makes restarting safe — the corrupt file can never be
		// half-loaded twice.
		q := s.opts.StatePath + ".corrupt"
		if rerr := os.Rename(s.opts.StatePath, q); rerr != nil {
			q = ""
		}
		return &StateFileError{Path: s.opts.StatePath, Quarantine: q, Err: err}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID = st.NextID
	byName := make(map[string]*Sweep, len(st.Sweeps))
	for _, name := range st.Sweeps {
		sw := &Sweep{Name: name, done: make(chan struct{})}
		byName[name] = sw
		s.sweeps = append(s.sweeps, sw)
	}
	requeued := 0
	for _, pj := range st.Jobs {
		if _, dup := s.jobs[pj.Spec.Name]; dup {
			continue
		}
		s.nextID++
		j := &Job{
			ID: s.nextID, Spec: pj.Spec,
			state: pj.State, failKind: pj.FailKind, errMsg: pj.Error,
			attempts: pj.Attempts, preemptions: pj.Preemptions,
			resumable: pj.Resumable, cycles: pj.Cycles, fps: pj.FPS,
		}
		if sw := byName[pj.Sweep]; sw != nil {
			j.sweep = sw
			sw.jobs = append(sw.jobs, j)
		}
		switch pj.State {
		case StateDone:
			if csv, rerr := os.ReadFile(s.csvPath(j)); rerr == nil {
				j.csv = csv
				j.progress.Store(pj.Cycles)
			} else {
				// Result lost (crash between yank and convergence):
				// deterministic re-run reproduces it exactly.
				j.state = StateQueued
				j.attempts, j.resumable = 0, false
				j.cycles, j.fps = 0, 0
				s.pushQueueLocked(j)
				requeued++
			}
		case StateFailed, StateCanceled, StateLost:
			// Terminal; kept for the record. (A lost job belongs to
			// whichever peer stole its lease — never requeue it here.)
		default:
			// queued, running, or preempted when the previous life
			// ended: requeue. A job that was mid-run has a checkpoint
			// to resume from (or replays deterministically without one).
			j.state = StateQueued
			if pj.State != StateQueued {
				j.resumable = true
			}
			s.pushQueueLocked(j)
			requeued++
		}
		s.jobs[pj.Spec.Name] = j
		s.byID[j.ID] = j
		s.order = append(s.order, j)
	}
	if len(st.Jobs) > 0 {
		s.logf("jobd: state restored: %d jobs (%d requeued), %d sweeps",
			len(st.Jobs), requeued, len(st.Sweeps))
	}
	if s.nextID < st.NextID {
		s.nextID = st.NextID
	}
	return nil
}
