package jobd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"attila/internal/chaos"
	"attila/internal/chkpt"
	"attila/internal/core"
	"attila/internal/experiments"
	"attila/internal/fsatomic"
	"attila/internal/gpu"
	"attila/internal/obsv"
	"attila/internal/obsv/trace"
	"attila/internal/workload"
)

// Options configures a Server. Zero values select the documented
// defaults.
type Options struct {
	// OutDir receives per-job stats CSVs (<name>.csv), per-job
	// manifests (<name>-manifest.json), sweep summaries
	// (<sweep>-summary.txt) and, by default, the state file and
	// checkpoint directory. Required.
	OutDir string
	// CkptDir holds per-job checkpoint files; default OutDir/checkpoints.
	CkptDir string
	// StatePath is the durable queue/state file that makes a drained or
	// killed server resumable; default OutDir/jobd-state.json.
	StatePath string
	// Workers bounds the pool; default half of GOMAXPROCS, minimum 1.
	Workers int
	// QueueLimit is the admission-control bound on queued jobs: submits
	// past it fail with ErrQueueFull (HTTP 429 + Retry-After). Default
	// 256; negative disables the limit.
	QueueLimit int
	// Retries is the default per-job retry budget after a failed
	// attempt; default 2, negative means fail fast. JobSpec.Retries
	// overrides per job.
	Retries int
	// RetryBackoff is the base delay before the first retry, doubling
	// per attempt up to RetryBackoffMax with seeded jitter
	// (experiments.RetryDelay). Zero retries immediately.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// CheckpointInterval is the per-job checkpoint cadence in cycles;
	// default 100k. Checkpoints are what make retries resume instead of
	// replay and what preemption/drain park jobs with.
	CheckpointInterval int64
	// PreemptCycles, when > 0, is the fairness quantum: a job that has
	// run this many cycles in one dispatch while other jobs wait is
	// checkpointed at the next quiesced barrier and requeued.
	PreemptCycles int64
	// WatchdogWindow arms each job's no-progress watchdog; default 50M
	// cycles, negative disables. JobSpec.WatchdogWindow overrides.
	WatchdogWindow int64
	// JobTimeout bounds each attempt's wall clock; zero means no
	// limit. JobSpec.TimeoutSec overrides.
	JobTimeout time.Duration
	// TraceSample, when > 0, turns on request tracing for every job:
	// 1-in-N memory transactions and shader work items carry latency
	// spans, folded into per-job histograms that /fleet/metrics merges
	// across the fleet. Zero disables tracing.
	TraceSample uint64
	// TraceSeed seeds the deterministic span sampler; the same seed,
	// rate, and workload select the same spans on every run.
	TraceSeed uint64
	// Chaos, when non-nil, arms the jobd-level fault plan (worker
	// kills, injected box panics, output-directory yanks).
	Chaos *chaos.ServerPlan
	// Tenants configures the fairness classes jobs bill to
	// (JobSpec.Tenant). Tenants absent from the map get Weight 1, no
	// running cap, and no rate limit — so a server with a nil map
	// schedules exactly like the old global FIFO when every job shares
	// one tenant. Rate limits apply to direct job submissions; sweeps
	// are admitted as a unit under QueueLimit.
	Tenants map[string]TenantClass
	// Fence, when non-nil, is consulted before every durable write on a
	// job's behalf (checkpoint, stats CSV, manifest): a non-nil error
	// (wrapping ErrFenced) means the job's fleet lease was lost and the
	// write must be refused; the job parks as StateLost. Nil means no
	// fencing (single-host operation).
	Fence func(job string) error
	// LeaseEpoch, when non-nil, returns the fencing epoch the job's
	// lease currently holds; it is stamped into every checkpoint and
	// manifest the job writes so competing writes are orderable.
	LeaseEpoch func(job string) int64
	// PeerID names this server's fleet peer in manifests; empty for
	// single-host operation.
	PeerID string
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (o *Options) norm() {
	if o.CkptDir == "" {
		o.CkptDir = filepath.Join(o.OutDir, "checkpoints")
	}
	if o.StatePath == "" {
		o.StatePath = filepath.Join(o.OutDir, "jobd-state.json")
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0) / 2
		if o.Workers < 1 {
			o.Workers = 1
		}
	}
	if o.QueueLimit == 0 {
		o.QueueLimit = 256
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.CheckpointInterval <= 0 {
		o.CheckpointInterval = 100_000
	}
	if o.WatchdogWindow == 0 {
		o.WatchdogWindow = 50_000_000
	}
}

// Stop causes — why a running simulation was asked to stop.
const (
	causeNone int32 = iota
	causeCancel
	causePreempt
	causeDrain
	causeKilled
	causeTimeout
	causeFenced // fleet lease lost; abort without writing anything
	causeHalt   // host killed (chaos killhost); vanish without a trace
)

// Job is one supervised run. Mutable fields are guarded by the
// server's mutex except the atomics, which the simulation's cycle hook
// writes and the HTTP layer reads live.
type Job struct {
	ID   int64
	Spec JobSpec

	// Guarded by Server.mu.
	state       State
	failKind    string
	errMsg      string
	attempts    int
	preemptions int
	resumable   bool
	crash       *core.CrashReport
	csv         []byte
	cycles      int64
	fps         float64
	stopFn      func()
	sweep       *Sweep
	spanHists   map[string]trace.Histogram // per-client total-latency histograms at completion
	spanDump    []byte                     // retained sampled spans, NDJSON
	spanTotal   uint64                     // sampled spans terminated by the job

	// Written by the running simulation / cancel path.
	progress  atomic.Int64
	ckptCycle atomic.Int64
	cause     atomic.Int32
	cancelReq atomic.Bool
	// fencedReq: the fleet layer lost this job's lease; stop at the
	// next barrier and park as lost without writing anything.
	fencedReq atomic.Bool
	// preemptHint: a higher-priority submission wants this job's
	// worker; checkpoint at the next barrier and requeue.
	preemptHint atomic.Bool
}

// takeCause consumes the stop cause recorded by whoever stopped the
// run.
func (j *Job) takeCause() int32 { return j.cause.Swap(causeNone) }

func (j *Job) maxRetries(o Options) int {
	r := j.Spec.Retries
	if r == 0 {
		r = o.Retries
	}
	if r < 0 {
		return 0
	}
	return r
}

func (j *Job) timeout(o Options) time.Duration {
	if s := j.Spec.TimeoutSec; s > 0 {
		return time.Duration(s * float64(time.Second))
	} else if s < 0 {
		return 0
	}
	return o.JobTimeout
}

// Sweep is a named set of jobs finalized together: when the last job
// reaches a terminal state the server converges the on-disk outputs
// (rewriting any stats CSV a fault destroyed) and writes the sweep
// summary.
type Sweep struct {
	ID   int64
	Name string

	// Guarded by Server.mu.
	jobs       []*Job
	finalizing bool
	finalized  bool
	summary    []byte

	done chan struct{} // closed once finalized
}

// JobStatus is the API view of a job.
type JobStatus struct {
	ID              int64   `json:"id"`
	Name            string  `json:"name"`
	Config          string  `json:"config"`
	Workload        string  `json:"workload"`
	State           State   `json:"state"`
	FailKind        string  `json:"failKind,omitempty"`
	Error           string  `json:"error,omitempty"`
	Attempts        int     `json:"attempts"`
	Preemptions     int     `json:"preemptions,omitempty"`
	Resumable       bool    `json:"resumable,omitempty"`
	Cycle           int64   `json:"cycle"`
	CheckpointCycle int64   `json:"checkpointCycle,omitempty"`
	Cycles          int64   `json:"cycles,omitempty"`
	FPS             float64 `json:"fps,omitempty"`
	Sweep           string  `json:"sweep,omitempty"`
	Tenant          string  `json:"tenant,omitempty"`
	Priority        int     `json:"priority,omitempty"`
}

// SweepStatus is the API view of a sweep.
type SweepStatus struct {
	ID        int64       `json:"id"`
	Name      string      `json:"name"`
	Total     int         `json:"total"`
	Queued    int         `json:"queued"`
	Running   int         `json:"running"`
	Preempted int         `json:"preempted"`
	Done      int         `json:"done"`
	Failed    int         `json:"failed"`
	Canceled  int         `json:"canceled"`
	Lost      int         `json:"lost,omitempty"`
	Finalized bool        `json:"finalized"`
	Summary   string      `json:"summary,omitempty"`
	Jobs      []JobStatus `json:"jobs"`
}

// tenantState is one fairness class's live scheduling state.
type tenantState struct {
	class TenantClass
	// served is the tenant's weighted virtual service time: each
	// dispatch adds 1/Weight, and the scheduler always picks the
	// eligible tenant with the least served. Guarded by Server.mu.
	served  float64
	running int
	// Token bucket for submit rate limiting.
	tokens     float64
	lastRefill time.Time
}

// weight returns the effective scheduling weight (>= 1).
func (ts *tenantState) weight() float64 {
	if ts.class.Weight > 0 {
		return float64(ts.class.Weight)
	}
	return 1
}

// allowSubmit consumes one submit token, refilling by elapsed time.
func (ts *tenantState) allowSubmit(now time.Time) bool {
	rate := ts.class.SubmitRate
	if rate <= 0 {
		return true
	}
	burst := float64(ts.class.SubmitBurst)
	if burst < 1 {
		burst = float64(int(rate) + 1)
	}
	ts.tokens += now.Sub(ts.lastRefill).Seconds() * rate
	ts.lastRefill = now
	if ts.tokens > burst {
		ts.tokens = burst
	}
	if ts.tokens < 1 {
		return false
	}
	ts.tokens--
	return true
}

// Server is the supervised sweep job server.
type Server struct {
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job
	byID     map[int64]*Job
	order    []*Job
	queue    []*Job
	sweeps   []*Sweep
	tenants  map[string]*tenantState
	runningN int
	nextID   int64
	closed   bool
	yanked   bool
	stopOnce sync.Once

	draining atomic.Bool
	// killed: the host "died" (chaos killhost): every durable write
	// path is a no-op and running simulations halt without a state
	// transition, exactly as if the process had vanished.
	killed   atomic.Bool
	queueLen atomic.Int64
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// New builds a server; call Start to load persisted state and spawn
// the worker pool.
func New(opts Options) *Server {
	opts.norm()
	s := &Server{
		opts:    opts,
		jobs:    make(map[string]*Job),
		byID:    make(map[int64]*Job),
		tenants: make(map[string]*tenantState),
		stopCh:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Start creates the output tree, loads the state file from a previous
// life (requeuing interrupted jobs as resumable), and spawns the
// worker pool.
func (s *Server) Start() error {
	if s.opts.OutDir == "" {
		return fmt.Errorf("jobd: Options.OutDir is required")
	}
	if err := os.MkdirAll(s.opts.OutDir, 0o755); err != nil {
		return err
	}
	if err := os.MkdirAll(s.opts.CkptDir, 0o755); err != nil {
		return err
	}
	if err := s.loadState(); err != nil {
		s.logf("jobd: state file unusable, starting fresh: %v", err)
	}
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	// Sweeps that were already complete when the previous life ended
	// still need their convergence pass (the summary write may have
	// been interrupted).
	s.mu.Lock()
	sweeps := append([]*Sweep(nil), s.sweeps...)
	s.mu.Unlock()
	for _, sw := range sweeps {
		s.maybeFinalize(sw)
	}
	return nil
}

// tenantLocked returns (creating on demand) the live state for a
// tenant name. Caller holds mu.
func (s *Server) tenantLocked(name string) *tenantState {
	ts := s.tenants[name]
	if ts == nil {
		ts = &tenantState{class: s.opts.Tenants[name], lastRefill: time.Now()}
		// A tenant arriving late must not owe less virtual time than
		// everyone else and starve them; it joins at the floor of the
		// currently known tenants.
		floor := 0.0
		first := true
		for _, other := range s.tenants {
			if first || other.served < floor {
				floor = other.served
				first = false
			}
		}
		ts.served = floor
		if b := float64(ts.class.SubmitBurst); b >= 1 {
			ts.tokens = b
		} else if ts.class.SubmitRate > 0 {
			ts.tokens = float64(int(ts.class.SubmitRate) + 1)
		}
		s.tenants[name] = ts
	}
	return ts
}

// SubmitJob queues one job.
func (s *Server) SubmitJob(spec JobSpec) (*Job, error) {
	s.mu.Lock()
	norm, err := spec.normalize(JobSpec{})
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if !s.tenantLocked(norm.Tenant).allowSubmit(time.Now()) {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant %q", ErrRateLimited, norm.Tenant)
	}
	j, err := s.submitLocked(norm, nil, JobSpec{})
	if err == nil {
		s.maybePreemptForLocked(j)
	}
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	s.cond.Signal()
	s.saveState()
	return j, nil
}

// maybePreemptForLocked arms priority preemption for a fresh
// submission: when every worker is busy and the new job outranks the
// lowest-priority running job, that victim is asked to checkpoint at
// its next barrier and requeue, freeing its worker for the higher
// priority. Caller holds mu.
func (s *Server) maybePreemptForLocked(newJob *Job) {
	if s.runningN < s.opts.Workers {
		return // a free worker will dispatch it without violence
	}
	var victim *Job
	for _, j := range s.order {
		if j.state != StateRunning || j.preemptHint.Load() {
			continue
		}
		if victim == nil ||
			j.Spec.Priority < victim.Spec.Priority ||
			(j.Spec.Priority == victim.Spec.Priority && j.ID > victim.ID) {
			victim = j
		}
	}
	if victim == nil || victim.Spec.Priority >= newJob.Spec.Priority {
		return
	}
	victim.preemptHint.Store(true)
	s.logf("jobd: job %s (priority %d) preempting %s (priority %d)",
		newJob.Spec.Name, newJob.Spec.Priority, victim.Spec.Name, victim.Spec.Priority)
}

// SubmitSweep queues a named set of jobs atomically: either every job
// is admitted or none is. Resubmitting a sweep whose name and job
// names match an existing one returns the existing sweep — that is how
// a restarted one-shot invocation attaches to the persisted state
// instead of colliding with it.
func (s *Server) SubmitSweep(spec SweepSpec) (*Sweep, error) {
	norm, err := NormalizeSweep(spec)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(norm))
	for _, n := range norm {
		seen[n.Name] = true
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sw := range s.sweeps {
		if sw.Name != spec.Name {
			continue
		}
		// Continuation: same sweep resubmitted after a restart.
		for _, j := range sw.jobs {
			if !seen[j.Spec.Name] {
				return nil, fmt.Errorf("%w: sweep %s exists with different jobs", ErrDuplicate, spec.Name)
			}
		}
		return sw, nil
	}
	if s.draining.Load() || s.closed {
		return nil, ErrDraining
	}
	if lim := s.opts.QueueLimit; lim > 0 && len(s.queue)+len(norm) > lim {
		return nil, ErrQueueFull
	}
	s.nextID++
	sw := &Sweep{ID: s.nextID, Name: spec.Name, done: make(chan struct{})}
	for _, js := range norm {
		j, err := s.submitLocked(js, sw, JobSpec{})
		if err != nil {
			// Roll back the jobs admitted so far.
			for _, added := range sw.jobs {
				delete(s.jobs, added.Spec.Name)
				delete(s.byID, added.ID)
				s.removeQueuedLocked(added)
				s.order = s.order[:len(s.order)-1]
			}
			return nil, err
		}
		sw.jobs = append(sw.jobs, j)
	}
	s.sweeps = append(s.sweeps, sw)
	s.cond.Broadcast()
	go s.saveState()
	return sw, nil
}

// submitLocked admits one normalized-or-raw job spec. Caller holds mu.
func (s *Server) submitLocked(spec JobSpec, sw *Sweep, defaults JobSpec) (*Job, error) {
	if sw == nil {
		var err error
		spec, err = spec.normalize(defaults)
		if err != nil {
			return nil, err
		}
		if s.draining.Load() || s.closed {
			return nil, ErrDraining
		}
		if lim := s.opts.QueueLimit; lim > 0 && len(s.queue) >= lim {
			return nil, ErrQueueFull
		}
	}
	if _, dup := s.jobs[spec.Name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicate, spec.Name)
	}
	s.nextID++
	// Resume asks to keep and use an on-disk checkpoint under this name
	// (a stolen fleet job migrating here); plain submits start clean.
	j := &Job{ID: s.nextID, Spec: spec, state: StateQueued, sweep: sw, resumable: spec.Resume}
	s.jobs[spec.Name] = j
	s.byID[j.ID] = j
	s.order = append(s.order, j)
	s.pushQueueLocked(j)
	return j, nil
}

func (s *Server) pushQueueLocked(j *Job) {
	s.queue = append(s.queue, j)
	s.queueLen.Store(int64(len(s.queue)))
}

// nextJobLocked picks the next dispatchable job, or nil: the eligible
// tenant with the least weighted virtual service goes first (ties
// break on tenant name for determinism); within a tenant, the highest
// priority, then submission order. Tenants at their MaxRunning cap
// are skipped. Caller holds mu.
func (s *Server) nextJobLocked() *Job {
	var best *Job
	var bestTS *tenantState
	bestIdx := -1
	for idx, j := range s.queue {
		ts := s.tenantLocked(j.Spec.Tenant)
		if cap := ts.class.MaxRunning; cap > 0 && ts.running >= cap {
			continue
		}
		switch {
		case best == nil:
		case ts != bestTS:
			if ts.served > bestTS.served ||
				(ts.served == bestTS.served && j.Spec.Tenant >= best.Spec.Tenant) {
				continue
			}
		default:
			// Same tenant: queue order is submission order, so the first
			// job seen at the top priority wins.
			if j.Spec.Priority <= best.Spec.Priority {
				continue
			}
		}
		best, bestTS, bestIdx = j, ts, idx
	}
	if best == nil {
		return nil
	}
	s.queue = append(s.queue[:bestIdx], s.queue[bestIdx+1:]...)
	s.queueLen.Store(int64(len(s.queue)))
	bestTS.served += 1 / bestTS.weight()
	return best
}

func (s *Server) removeQueuedLocked(j *Job) bool {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.queueLen.Store(int64(len(s.queue)))
			return true
		}
	}
	return false
}

// ResubmitJob requeues a job that previously reached a terminal state
// on this server under the same name. The fleet layer uses it when a
// peer re-acquires the lease on a job it had lost (or finished
// locally but must redo after a yank): the spec replaces the old one
// and attempt/result bookkeeping resets. A non-terminal job under the
// name is a duplicate error; an unknown name submits fresh.
func (s *Server) ResubmitJob(spec JobSpec) (*Job, error) {
	norm, err := spec.normalize(JobSpec{})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	j, ok := s.jobs[norm.Name]
	if !ok {
		j, err = s.submitLocked(norm, nil, JobSpec{})
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		s.cond.Signal()
		s.saveState()
		return j, nil
	}
	if !j.state.terminal() {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s still %s", ErrDuplicate, norm.Name, j.state)
	}
	if s.draining.Load() || s.closed {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	j.Spec = norm
	j.state = StateQueued
	j.failKind, j.errMsg = "", ""
	j.attempts, j.preemptions = 0, 0
	j.resumable = norm.Resume
	j.crash, j.csv = nil, nil
	j.cycles, j.fps = 0, 0
	j.cancelReq.Store(false)
	j.fencedReq.Store(false)
	j.preemptHint.Store(false)
	j.cause.Store(causeNone)
	s.pushQueueLocked(j)
	s.mu.Unlock()
	s.cond.Signal()
	s.saveState()
	return j, nil
}

// CancelJob cancels a job by name or numeric ID: a queued job is
// removed, a running one is stopped at the next cycle boundary.
func (s *Server) CancelJob(ref string) error {
	s.mu.Lock()
	j := s.jobByRefLocked(ref)
	if j == nil {
		s.mu.Unlock()
		return fmt.Errorf("%w: job %q", ErrNotFound, ref)
	}
	if j.state.terminal() {
		s.mu.Unlock()
		return nil
	}
	j.cancelReq.Store(true)
	j.cause.CompareAndSwap(causeNone, causeCancel)
	if s.removeQueuedLocked(j) {
		j.state = StateCanceled
		sw := j.sweep
		s.mu.Unlock()
		s.stampManifest(j, string(StateCanceled), nil)
		if sw != nil {
			s.maybeFinalize(sw)
		}
		s.saveState()
		return nil
	}
	if j.stopFn != nil {
		j.stopFn()
	}
	s.mu.Unlock()
	return nil
}

func (s *Server) jobByRefLocked(ref string) *Job {
	if j, ok := s.jobs[ref]; ok {
		return j
	}
	var id int64
	if _, err := fmt.Sscanf(ref, "%d", &id); err == nil {
		return s.byID[id]
	}
	return nil
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, j := range s.order {
		out = append(out, s.statusLocked(j))
	}
	return out
}

// JobStatus returns one job's status by name or ID.
func (s *Server) JobStatus(ref string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobByRefLocked(ref)
	if j == nil {
		return JobStatus{}, fmt.Errorf("%w: job %q", ErrNotFound, ref)
	}
	return s.statusLocked(j), nil
}

// JobCrash returns the black-box report of a job's most recent failed
// attempt, or nil.
func (s *Server) JobCrash(ref string) (*core.CrashReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobByRefLocked(ref)
	if j == nil {
		return nil, fmt.Errorf("%w: job %q", ErrNotFound, ref)
	}
	return j.crash, nil
}

func (s *Server) statusLocked(j *Job) JobStatus {
	st := JobStatus{
		ID: j.ID, Name: j.Spec.Name,
		Config: j.Spec.Config, Workload: j.Spec.Workload,
		State: j.state, FailKind: j.failKind, Error: j.errMsg,
		Attempts: j.attempts, Preemptions: j.preemptions,
		Resumable: j.resumable,
		Cycle:     j.progress.Load(), CheckpointCycle: j.ckptCycle.Load(),
		Cycles: j.cycles, FPS: j.fps,
		Tenant: j.Spec.Tenant, Priority: j.Spec.Priority,
	}
	if j.sweep != nil {
		st.Sweep = j.sweep.Name
	}
	return st
}

// JobSpans returns the sampled-span NDJSON dump retained by a
// completed job, or nil when the job has not finished or ran with
// tracing off.
func (s *Server) JobSpans(ref string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobByRefLocked(ref)
	if j == nil {
		return nil, fmt.Errorf("%w: job %q", ErrNotFound, ref)
	}
	return j.spanDump, nil
}

// Draining reports whether the server has begun draining; the /readyz
// probe answers 503 while it is true.
func (s *Server) Draining() bool { return s.draining.Load() }

// FleetLatency is one client's merged latency across the fleet.
type FleetLatency struct {
	Count uint64          `json:"count"`
	P50   int64           `json:"p50"`
	P90   int64           `json:"p90"`
	P99   int64           `json:"p99"`
	Mean  float64         `json:"mean"`
	Hist  trace.Histogram `json:"hist"`
}

// FleetMetrics is the fleet-level latency view: per-client histograms
// merged across every completed job that ran with tracing on.
type FleetMetrics struct {
	SampleRate uint64                   `json:"sampleRate,omitempty"`
	Jobs       int                      `json:"jobs"`  // completed jobs contributing
	Spans      uint64                   `json:"spans"` // sampled spans across those jobs
	Clients    map[string]*FleetLatency `json:"clients,omitempty"`
}

// FleetMetrics merges the per-job span histograms into the fleet view.
// Histogram merging is bucket addition, so the result is independent of
// job completion order.
func (s *Server) FleetMetrics() FleetMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	fm := FleetMetrics{SampleRate: s.opts.TraceSample}
	merged := make(map[string]trace.Histogram)
	for _, j := range s.order {
		if j.spanHists == nil {
			continue
		}
		fm.Jobs++
		fm.Spans += j.spanTotal
		for name, h := range j.spanHists {
			m := merged[name]
			m.Merge(&h)
			merged[name] = m
		}
	}
	if len(merged) > 0 {
		fm.Clients = make(map[string]*FleetLatency, len(merged))
		for name, h := range merged {
			fm.Clients[name] = &FleetLatency{
				Count: h.N,
				P50:   h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
				Mean: h.Mean(), Hist: h,
			}
		}
	}
	return fm
}

// Sweeps lists every sweep.
func (s *Server) Sweeps() []SweepStatus {
	s.mu.Lock()
	sweeps := append([]*Sweep(nil), s.sweeps...)
	s.mu.Unlock()
	out := make([]SweepStatus, 0, len(sweeps))
	for _, sw := range sweeps {
		out = append(out, s.SweepStatus(sw))
	}
	return out
}

// SweepByRef finds a sweep by name or numeric ID.
func (s *Server) SweepByRef(ref string) (*Sweep, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var id int64
	fmt.Sscanf(ref, "%d", &id)
	for _, sw := range s.sweeps {
		if sw.Name == ref || sw.ID == id {
			return sw, nil
		}
	}
	return nil, fmt.Errorf("%w: sweep %q", ErrNotFound, ref)
}

// SweepStatus summarizes a sweep.
func (s *Server) SweepStatus(sw *Sweep) SweepStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SweepStatus{ID: sw.ID, Name: sw.Name, Total: len(sw.jobs), Finalized: sw.finalized, Summary: string(sw.summary)}
	for _, j := range sw.jobs {
		st.Jobs = append(st.Jobs, s.statusLocked(j))
		switch j.state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StatePreempted:
			st.Preempted++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCanceled:
			st.Canceled++
		case StateLost:
			st.Lost++
		}
	}
	return st
}

// WaitSweep blocks until the sweep is finalized or the context ends.
func (s *Server) WaitSweep(ctx context.Context, sw *Sweep) error {
	select {
	case <-sw.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Drain gracefully shuts the pool down: submits start failing with
// ErrDraining, every running job checkpoints at its next quiesced
// barrier, stamps its manifest, and is parked resumable; the queue and
// every job's state persist to the state file so a restarted server
// resumes where this one stopped. If ctx expires first, in-flight jobs
// are hard-stopped and resume from their last periodic checkpoint
// instead of a fresh one.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed || s.draining.Load() {
		s.mu.Unlock()
		return nil
	}
	s.draining.Store(true)
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.cond.Broadcast()
	s.logf("jobd: draining: %d queued", s.queueLen.Load())

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.logf("jobd: drain grace expired; hard-stopping in-flight jobs")
		s.mu.Lock()
		for _, j := range s.order {
			if j.state == StateRunning && j.stopFn != nil {
				j.cause.CompareAndSwap(causeNone, causeDrain)
				j.stopFn()
			}
		}
		s.mu.Unlock()
		<-done
	}
	s.saveState()
	return nil
}

// Close stops the server. Running jobs are canceled unless Drain ran
// first.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, j := range s.order {
		if j.state == StateRunning && j.stopFn != nil {
			j.cause.CompareAndSwap(causeNone, causeCancel)
			j.stopFn()
		}
	}
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.cond.Broadcast()
	s.wg.Wait()
	return nil
}

// worker pulls jobs off the queue until the server closes or drains.
// A non-empty queue can still yield no job when every queued tenant is
// at its MaxRunning cap; the worker then waits for a slot to free.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *Job
		for {
			if s.closed || s.draining.Load() {
				s.mu.Unlock()
				return
			}
			if j = s.nextJobLocked(); j != nil {
				break
			}
			s.cond.Wait()
		}
		j.state = StateRunning
		ts := s.tenantLocked(j.Spec.Tenant)
		ts.running++
		s.runningN++
		s.mu.Unlock()
		s.supervise(j)
		s.mu.Lock()
		ts.running--
		s.runningN--
		s.mu.Unlock()
		// The freed slot may unblock a capped tenant on another worker.
		s.cond.Broadcast()
	}
}

// supervise owns one job until it parks or reaches a terminal state:
// it retries failed attempts with capped jittered backoff, requeues
// preempted/drained runs, and — via the deferred recover — guarantees
// that nothing a job does can take the worker (or the server) down.
func (s *Server) supervise(j *Job) {
	defer func() {
		if r := recover(); r != nil {
			s.finishJob(j, StateFailed, FailPanic, fmt.Errorf("jobd: supervisor panic: %v", r))
		}
	}()
	seed := int64(1)
	if s.opts.Chaos != nil {
		seed = s.opts.Chaos.Seed
	}
	rng := rand.New(rand.NewSource(seed + j.ID))
	for {
		s.mu.Lock()
		if j.cancelReq.Load() {
			s.mu.Unlock()
			s.finishJob(j, StateCanceled, "", nil)
			return
		}
		if j.fencedReq.Load() {
			s.mu.Unlock()
			s.markLost(j, nil)
			return
		}
		j.state = StateRunning
		j.attempts++
		attempt := j.attempts
		s.mu.Unlock()

		runErr := s.attempt(j, attempt)
		cause := j.takeCause()

		if s.killed.Load() || cause == causeHalt {
			// The host "died": no state transition, no writes. A
			// surviving peer steals the lease and resumes from the last
			// checkpoint this host managed to write.
			return
		}
		if runErr == nil {
			s.completeJob(j)
			return
		}
		if cause == causeFenced {
			s.markLost(j, runErr)
			return
		}
		switch cause {
		case causePreempt, causeDrain:
			// Not a failure: the run checkpointed (or was hard-stopped
			// onto its last periodic checkpoint) and parks resumable.
			s.mu.Lock()
			j.attempts--
			if cause == causePreempt {
				j.preemptions++
			}
			j.state = StatePreempted
			j.resumable = true
			j.preemptHint.Store(false)
			s.pushQueueLocked(j)
			s.mu.Unlock()
			s.stampManifest(j, string(StatePreempted), nil)
			s.saveState()
			if cause == causePreempt {
				s.logf("jobd: job %s preempted at cycle %d (checkpoint %d)",
					j.Spec.Name, j.progress.Load(), j.ckptCycle.Load())
				s.cond.Signal()
			}
			return
		case causeCancel:
			s.finishJob(j, StateCanceled, "", runErr)
			return
		}
		kind := classifyFailure(runErr, cause)
		if kind == "" {
			// A cancellation we did not cause: the server is closing.
			s.finishJob(j, StateCanceled, "", runErr)
			return
		}
		if attempt > j.maxRetries(s.opts) {
			s.finishJob(j, StateFailed, kind, runErr)
			return
		}
		s.mu.Lock()
		j.resumable = true
		s.mu.Unlock()
		s.logf("jobd: job %s attempt %d failed (%s): %v; retrying from checkpoint",
			j.Spec.Name, attempt, kind, runErr)
		if d := experiments.RetryDelay(s.opts.RetryBackoff, s.opts.RetryBackoffMax, attempt, rng); d > 0 {
			select {
			case <-time.After(d):
			case <-s.stopCh:
				// Server draining/closing mid-backoff: park resumable.
				s.mu.Lock()
				j.attempts--
				j.state = StatePreempted
				s.pushQueueLocked(j)
				s.mu.Unlock()
				s.stampManifest(j, string(StatePreempted), nil)
				return
			}
		}
	}
}

// classifyFailure maps an attempt error and stop cause to a FailKind;
// "" means an external cancellation that should not count as failure.
func classifyFailure(err error, cause int32) string {
	switch cause {
	case causeKilled:
		return FailKilled
	case causeTimeout:
		return FailTimeout
	}
	switch {
	case errors.Is(err, ErrDisk):
		return FailDisk
	case errors.Is(err, core.ErrPanic):
		return FailPanic
	case errors.Is(err, core.ErrDeadlock):
		return FailDeadlock
	case errors.Is(err, core.ErrCanceled):
		return ""
	default:
		return FailError
	}
}

// attempt runs one try of the job: build a fresh pipeline, wire chaos
// on the first attempt, resume from the job's checkpoint when one
// exists, and record live progress/preemption through the cycle hook.
func (s *Server) attempt(j *Job, attempt int) error {
	spec := j.Spec
	cfg, err := ResolveConfig(spec.Config)
	if err != nil {
		return err
	}
	cfg.Workers = 0
	switch {
	case spec.WatchdogWindow > 0:
		cfg.WatchdogWindow = spec.WatchdogWindow
	case spec.WatchdogWindow == 0 && s.opts.WatchdogWindow > 0:
		cfg.WatchdogWindow = s.opts.WatchdogWindow
	default:
		cfg.WatchdogWindow = 0
	}
	pipe, err := gpu.New(cfg, spec.Width, spec.Height)
	if err != nil {
		return err
	}
	cmds, _, err := workload.Build(spec.Workload, pipe, workload.Params{
		Width: spec.Width, Height: spec.Height,
		Frames: spec.Frames, Aniso: spec.Aniso, Seed: spec.Seed,
	})
	if err != nil {
		return err
	}

	// Span tracing must attach before the checkpoint engine so the
	// collector's fold hook runs before each quiesced capture.
	var col *trace.Collector
	var extra []chkpt.Snapshotter
	if s.opts.TraceSample > 0 {
		col = pipe.EnableSpanTracing(trace.Options{SampleRate: s.opts.TraceSample, Seed: s.opts.TraceSeed})
		extra = append(extra, col)
	}

	ckptPath := s.ckptPath(j)
	s.mu.Lock()
	resumable := j.resumable
	j.stopFn = pipe.Sim.Stop
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		j.stopFn = nil
		s.mu.Unlock()
	}()
	if attempt == 1 && !resumable {
		// A fresh job must not resume from a stale checkpoint left by
		// an earlier life under the same name.
		os.Remove(ckptPath)
	}
	eng := pipe.EnableCheckpoints(ckptPath, spec.Workload, s.opts.CheckpointInterval, extra...)
	// Fencing: every checkpoint write consults the fleet lease first
	// and stamps its epoch, so a host that lost its lease (stolen,
	// yanked, or paused past TTL) can never publish a stale-epoch
	// checkpoint over the new owner's.
	if s.opts.Fence != nil {
		name := spec.Name
		eng.Gate = func() error { return s.opts.Fence(name) }
	}
	if s.opts.LeaseEpoch != nil {
		name := spec.Name
		eng.Epoch = func() int64 { return s.opts.LeaseEpoch(name) }
	}

	// Chaos faults arm on the first attempt only, so a recovered job
	// cannot re-hit its injected fault.
	if plan := s.opts.Chaos.PanicPlan(spec.Name); plan != nil && attempt == 1 {
		inj := chaos.NewInjector(plan, pipe.Sim.Binder)
		pipe.Sim.SetClockGate(inj)
	}
	var kill *chaos.KillFault
	if attempt == 1 {
		kill = s.opts.Chaos.KillFor(spec.Name)
	}

	ctx := context.Background()
	if d := j.timeout(s.opts); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	// The cycle hook runs on the coordinating goroutine at every
	// barrier: it publishes live progress and implements worker-kill
	// chaos, cancellation, fairness preemption and drain — the latter
	// two by forcing a checkpoint and stopping once it lands.
	dispatchStart := int64(-1)
	preemptReq := int64(-1)
	killArmed := kill != nil
	pipe.Sim.OnEndCycle(func(cycle int64) {
		j.progress.Store(cycle)
		if lc := eng.LastCycle(); lc > 0 {
			j.ckptCycle.Store(lc)
		}
		if dispatchStart < 0 {
			dispatchStart = cycle
		}
		if killArmed && cycle >= kill.Cycle {
			killArmed = false
			j.cause.CompareAndSwap(causeNone, causeKilled)
			pipe.Sim.Stop()
			return
		}
		if j.cancelReq.Load() {
			j.cause.CompareAndSwap(causeNone, causeCancel)
			pipe.Sim.Stop()
			return
		}
		if j.fencedReq.Load() {
			// Lease lost: stop now; nothing written past this barrier.
			j.cause.CompareAndSwap(causeNone, causeFenced)
			pipe.Sim.Stop()
			return
		}
		want := causeNone
		if s.draining.Load() {
			want = causeDrain
		} else if j.preemptHint.Load() && s.queueLen.Load() > 0 {
			// A higher-priority submission wants this worker.
			want = causePreempt
		} else if q := s.opts.PreemptCycles; q > 0 && cycle-dispatchStart >= q && s.queueLen.Load() > 0 {
			want = causePreempt
		}
		if want == causeNone {
			return
		}
		if preemptReq < 0 {
			preemptReq = cycle
			eng.ForceNext()
			return
		}
		if eng.LastCycle() >= preemptReq {
			j.cause.CompareAndSwap(causeNone, want)
			pipe.Sim.Stop()
		}
	})

	resumed := false
	if attempt > 1 || resumable {
		if snap, rerr := chkpt.ReadFile(ckptPath); rerr == nil && snap.Meta.Workload == spec.Workload {
			if pipe.RestoreCheckpoint(snap, cmds, extra...) == nil {
				resumed = true
				s.logf("jobd: job %s resuming from checkpoint at cycle %d", spec.Name, snap.Meta.Cycle)
			}
		}
		// No usable checkpoint (the fault hit before the first capture,
		// or the file was destroyed): replay from the start.
	}
	var runErr error
	if resumed {
		runErr = pipe.ResumeContext(ctx, spec.MaxCycles)
	} else {
		runErr = pipe.RunContext(ctx, cmds, spec.MaxCycles)
	}
	if runErr != nil {
		if errors.Is(runErr, core.ErrCanceled) && ctx.Err() != nil {
			j.cause.CompareAndSwap(causeNone, causeTimeout)
		}
		s.mu.Lock()
		j.crash = pipe.Sim.Crash()
		s.mu.Unlock()
		return runErr
	}

	var buf bytes.Buffer
	if err := pipe.DumpCSV(&buf); err != nil {
		return err
	}
	var spanHists map[string]trace.Histogram
	var spanDump []byte
	var spanTotal uint64
	if col != nil {
		spanHists = col.TotalHists(nil)
		spanTotal = col.Snapshot().Spans
		var sb bytes.Buffer
		if err := col.WriteSpansNDJSON(&sb); err == nil {
			spanDump = sb.Bytes()
		}
	}
	s.mu.Lock()
	j.csv = buf.Bytes()
	j.cycles = pipe.Cycles()
	j.fps = pipe.FPS()
	j.crash = nil
	j.progress.Store(pipe.Cycles())
	j.spanHists = spanHists
	j.spanDump = spanDump
	j.spanTotal = spanTotal
	s.mu.Unlock()
	return nil
}

// completeJob persists a finished job's outputs. A stats-CSV write
// that keeps failing degrades the job to StateFailed/FailDisk — the
// result bytes stay in memory, so a later sweep convergence pass can
// still recover the file if the disk comes back.
func (s *Server) completeJob(j *Job) {
	// Last fence before the result becomes durable: a host whose lease
	// was stolen while the final cycles ran must not publish the CSV.
	if err := s.fence(j); err != nil {
		s.markLost(j, err)
		return
	}
	s.mu.Lock()
	data := j.csv
	s.mu.Unlock()
	if err := s.writeDurable("stats csv", s.csvPath(j), data); err != nil {
		s.finishJob(j, StateFailed, FailDisk, err)
		return
	}
	s.mu.Lock()
	if j.state.terminal() {
		// A cancel (or anything else) that raced the completion already
		// parked the job; terminal states are sticky.
		s.mu.Unlock()
		return
	}
	j.state = StateDone
	j.failKind, j.errMsg = "", ""
	j.resumable = false
	j.preemptHint.Store(false)
	sw := j.sweep
	s.mu.Unlock()
	os.Remove(s.ckptPath(j))
	s.stampManifest(j, string(StateDone), nil)
	s.logf("jobd: job %s done: %d cycles", j.Spec.Name, j.cycles)
	s.maybeYank(j)
	if sw != nil {
		s.maybeFinalize(sw)
	}
	s.saveState()
}

// finishJob moves a job to a terminal state. Terminal states are
// sticky: a cancel racing a completion (or any other double finish)
// must not overwrite the first outcome.
func (s *Server) finishJob(j *Job, st State, kind string, err error) {
	s.mu.Lock()
	if j.state.terminal() {
		s.mu.Unlock()
		return
	}
	j.state = st
	j.failKind = kind
	if err != nil {
		j.errMsg = err.Error()
	}
	j.preemptHint.Store(false)
	sw := j.sweep
	s.mu.Unlock()
	if st == StateFailed {
		s.logf("jobd: job %s failed (%s) after %d attempts: %v", j.Spec.Name, kind, j.attempts, err)
	}
	s.stampManifest(j, string(st), err)
	if sw != nil {
		s.maybeFinalize(sw)
	}
	s.saveState()
}

// fence consults the fleet lease gate for a job; nil without a hook.
func (s *Server) fence(j *Job) error {
	if s.opts.Fence == nil {
		return nil
	}
	return s.opts.Fence(j.Spec.Name)
}

// markLost parks a job whose fleet lease was lost: terminal
// StateLost/FailFenced, no manifest, no CSV, no checkpoint — the new
// lease owner owns every durable byte from here on.
func (s *Server) markLost(j *Job, err error) {
	s.mu.Lock()
	if j.state.terminal() {
		s.mu.Unlock()
		return
	}
	j.state = StateLost
	j.failKind = FailFenced
	if err != nil {
		j.errMsg = err.Error()
	} else {
		j.errMsg = ErrFenced.Error()
	}
	j.resumable = false
	j.preemptHint.Store(false)
	sw := j.sweep
	s.mu.Unlock()
	s.logf("jobd: job %s lost its lease; aborted without writes", j.Spec.Name)
	if sw != nil {
		s.maybeFinalize(sw)
	}
	s.saveState()
}

// FenceJob aborts a job whose fleet lease was lost to another peer: a
// queued job parks as lost immediately; a running one stops at its
// next cycle barrier and then parks, writing nothing on the way down.
// Terminal jobs are left untouched (nil error).
func (s *Server) FenceJob(ref string) error {
	s.mu.Lock()
	j := s.jobByRefLocked(ref)
	if j == nil {
		s.mu.Unlock()
		return fmt.Errorf("%w: job %q", ErrNotFound, ref)
	}
	if j.state.terminal() {
		s.mu.Unlock()
		return nil
	}
	j.fencedReq.Store(true)
	if s.removeQueuedLocked(j) {
		s.mu.Unlock()
		s.markLost(j, nil)
		return nil
	}
	if j.stopFn != nil {
		j.cause.CompareAndSwap(causeNone, causeFenced)
		j.stopFn()
	}
	s.mu.Unlock()
	return nil
}

// Kill hard-stops the server in place, simulating the host dying
// (chaos killhost): running simulations halt mid-cycle, every durable
// write path — checkpoints, CSVs, manifests, the state file — is
// suppressed from this instant, and no state transitions are
// recorded. Nothing is cleaned up, exactly like a power cut; the
// fleet's surviving peers must detect the silence and steal the dead
// host's leases.
func (s *Server) Kill() {
	if !s.killed.CompareAndSwap(false, true) {
		return
	}
	s.mu.Lock()
	s.closed = true
	for _, j := range s.order {
		if j.state == StateRunning && j.stopFn != nil {
			j.cause.Store(causeHalt)
			j.stopFn()
		}
	}
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.cond.Broadcast()
	s.logf("jobd: host killed (chaos); all writes suppressed")
}

// Killed reports whether Kill has run.
func (s *Server) Killed() bool { return s.killed.Load() }

// maybeYank applies the chaos output-directory yank after the named
// job completes.
func (s *Server) maybeYank(j *Job) {
	if s.opts.Chaos == nil || !s.opts.Chaos.YankAfter(j.Spec.Name) {
		return
	}
	s.mu.Lock()
	fired := s.yanked
	s.yanked = true
	s.mu.Unlock()
	if fired {
		return
	}
	s.logf("jobd: chaos: yanking output directory %s", s.opts.OutDir)
	os.RemoveAll(s.opts.OutDir)
}

// maybeFinalize runs the sweep's convergence pass once every job is
// terminal: rewrite any stats CSV that is missing or differs from the
// in-memory result (a chaos yank or disk fault may have destroyed
// them), then write the deterministic sweep summary and release
// waiters.
func (s *Server) maybeFinalize(sw *Sweep) {
	s.mu.Lock()
	if sw.finalizing || sw.finalized {
		s.mu.Unlock()
		return
	}
	for _, j := range sw.jobs {
		if !j.state.terminal() {
			s.mu.Unlock()
			return
		}
	}
	sw.finalizing = true
	jobs := append([]*Job(nil), sw.jobs...)
	s.mu.Unlock()

	for _, j := range jobs {
		s.mu.Lock()
		st, data := j.state, j.csv
		s.mu.Unlock()
		if st != StateDone || len(data) == 0 {
			continue
		}
		path := s.csvPath(j)
		if got, err := os.ReadFile(path); err == nil && bytes.Equal(got, data) {
			continue
		}
		if err := s.writeDurable("stats csv", path, data); err != nil {
			s.logf("jobd: degraded: sweep %s could not restore %s: %v", sw.Name, path, err)
		} else {
			s.logf("jobd: sweep %s: restored missing/damaged %s", sw.Name, path)
		}
	}
	summary := s.buildSummary(sw, jobs)
	if err := s.writeDurable("sweep summary", s.summaryPath(sw), summary); err != nil {
		s.logf("jobd: degraded: sweep %s summary not written: %v", sw.Name, err)
	}
	s.mu.Lock()
	sw.finalized = true
	sw.summary = summary
	s.mu.Unlock()
	close(sw.done)
	s.saveState()
}

// SummaryRow is one job line of a sweep summary.
type SummaryRow struct {
	Name     string
	Config   string
	Workload string
	State    State
	FailKind string
	Cycles   int64
	FPS      float64
}

// RenderSummary renders the deterministic sweep summary: only job
// specs and simulation results, sorted by job name, no wall-clock or
// attempt counts — so a chaos-battered run (and a fleet run that
// migrated jobs between peers) is byte-identical to a clean one-shot.
// The fleet finalizer uses it to converge to the same bytes jobd
// writes.
func RenderSummary(sweep string, rows []SummaryRow) []byte {
	sorted := append([]SummaryRow(nil), rows...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Name < sorted[b].Name })
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "sweep %s: %d jobs\n", sweep, len(sorted))
	for _, r := range sorted {
		if r.State == StateDone {
			fmt.Fprintf(&buf, "%s config=%s workload=%s cycles=%d fps=%.2f\n",
				r.Name, r.Config, r.Workload, r.Cycles, r.FPS)
		} else {
			fmt.Fprintf(&buf, "%s config=%s workload=%s state=%s kind=%s\n",
				r.Name, r.Config, r.Workload, r.State, r.FailKind)
		}
	}
	return buf.Bytes()
}

// buildSummary renders the sweep summary via RenderSummary.
func (s *Server) buildSummary(sw *Sweep, jobs []*Job) []byte {
	s.mu.Lock()
	rows := make([]SummaryRow, 0, len(jobs))
	for _, j := range jobs {
		rows = append(rows, SummaryRow{
			Name: j.Spec.Name, Config: j.Spec.Config, Workload: j.Spec.Workload,
			State: j.state, FailKind: j.failKind, Cycles: j.cycles, FPS: j.fps,
		})
	}
	s.mu.Unlock()
	return RenderSummary(sw.Name, rows)
}

func (s *Server) csvPath(j *Job) string {
	return filepath.Join(s.opts.OutDir, j.Spec.Name+".csv")
}

func (s *Server) ckptPath(j *Job) string {
	return filepath.Join(s.opts.CkptDir, j.Spec.Name+".ckpt")
}

func (s *Server) manifestPath(j *Job) string {
	return filepath.Join(s.opts.OutDir, j.Spec.Name+"-manifest.json")
}

func (s *Server) summaryPath(sw *Sweep) string {
	return filepath.Join(s.opts.OutDir, sw.Name+"-summary.txt")
}

// stampManifest writes the job's provenance manifest. Its loss never
// fails the job — the manifest is audit metadata, not the result.
func (s *Server) stampManifest(j *Job, state string, cause error) {
	if s.killed.Load() {
		return
	}
	// A manifest is a durable write on the job's behalf: it carries the
	// same fence as checkpoints and CSVs, so a revived host that lost
	// its lease cannot even overwrite the audit trail.
	if err := s.fence(j); err != nil {
		s.logf("jobd: manifest for %s refused: %v", j.Spec.Name, err)
		return
	}
	m := obsv.NewManifest("jobd", nil)
	m.State = state
	m.Config = j.Spec.Config
	m.Trace = j.Spec.Workload
	m.Seed = j.Spec.Seed
	m.Tenant = j.Spec.Tenant
	m.Priority = j.Spec.Priority
	m.FleetPeer = s.opts.PeerID
	if s.opts.LeaseEpoch != nil {
		m.LeaseEpoch = s.opts.LeaseEpoch(j.Spec.Name)
	}
	s.mu.Lock()
	m.Attempt = j.attempts
	m.Cycles = j.progress.Load()
	if j.state == StateDone {
		m.Cycles = j.cycles
	}
	if j.errMsg != "" {
		m.Error = j.errMsg
	}
	resumable := j.resumable
	s.mu.Unlock()
	if cause != nil {
		m.Error = cause.Error()
	}
	m.LastCheckpoint = j.ckptCycle.Load()
	if resumable {
		m.RestoredFrom = s.ckptPath(j)
	}
	m.Finish(0, nil)
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return
	}
	if werr := s.writeDurable("manifest", s.manifestPath(j), append(data, '\n')); werr != nil {
		s.logf("jobd: degraded: %v", werr)
	}
}

// writeDurable is the degradation-aware write every output goes
// through: atomic rename with the parent directory recreated on each
// try (healing a yanked output tree), retried a few times, and a
// typed *DiskError on persistent failure instead of a crash.
func (s *Server) writeDurable(op, path string, data []byte) error {
	if s.killed.Load() {
		// A dead host writes nothing.
		return &DiskError{Op: op, Path: path, Err: errors.New("host killed")}
	}
	var err error
	for i := 0; i < 3; i++ {
		if i > 0 {
			time.Sleep(10 * time.Millisecond)
		}
		if err = writeFileAtomic(path, data); err == nil {
			return nil
		}
	}
	return &DiskError{Op: op, Path: path, Err: err}
}

// writeFileAtomic delegates to the repo-wide fsync'd atomic writer
// (temp + fsync + rename + parent-dir fsync), the same implementation
// the fleet's lease and heartbeat files go through.
func writeFileAtomic(path string, data []byte) error {
	return fsatomic.WriteFile(path, data)
}

// RunSweep is the one-shot mode: run the sweep to completion on a
// local pool with no HTTP front end and return its final status. The
// server mode produces byte-identical outputs for the same spec. A
// re-invocation over the same output directory attaches to the
// persisted state and resumes instead of restarting.
func RunSweep(ctx context.Context, opts Options, spec SweepSpec) (SweepStatus, error) {
	if opts.Workers == 0 {
		opts.Workers = 1
	}
	s := New(opts)
	if err := s.Start(); err != nil {
		return SweepStatus{}, err
	}
	defer s.Close()
	sw, err := s.SubmitSweep(spec)
	if err != nil {
		return SweepStatus{}, err
	}
	if err := s.WaitSweep(ctx, sw); err != nil {
		// Interrupted (SIGTERM/timeout): drain so every in-flight job
		// checkpoints and the state file records a resumable sweep.
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(dctx)
		return s.SweepStatus(sw), err
	}
	st := s.SweepStatus(sw)
	if st.Failed > 0 || st.Canceled > 0 {
		return st, fmt.Errorf("jobd: sweep %s: %d failed, %d canceled of %d jobs",
			st.Name, st.Failed, st.Canceled, st.Total)
	}
	return st, nil
}

// ParseSweepFile reads a SweepSpec from a JSON file.
func ParseSweepFile(path string) (SweepSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SweepSpec{}, err
	}
	var spec SweepSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return SweepSpec{}, fmt.Errorf("jobd: sweep spec %s: %w", path, err)
	}
	return spec, nil
}
