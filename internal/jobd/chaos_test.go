package jobd

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"attila/internal/chaos"
)

// The acceptance gate: a server battered by the seeded chaos plan —
// a worker killed mid-run, a box panic injected into another job, and
// the output directory yanked mid-sweep — must converge to a sweep
// summary and per-run stats CSVs byte-identical to a clean one-shot
// run of the same sweep.
func TestJobdChaosConvergence(t *testing.T) {
	total, _ := cleanRun(t)
	spec := SweepSpec{Name: "conv", Jobs: []JobSpec{
		testSpec("conv-1"), testSpec("conv-2"), testSpec("conv-3"),
	}}
	// Chaos jobs inherit the server's retry budget.
	for i := range spec.Jobs {
		spec.Jobs[i].Retries = 0
	}

	// Clean reference: the one-shot CLI path, no faults.
	dirClean := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	if _, err := RunSweep(ctx, Options{OutDir: dirClean, Workers: 1, Retries: -1}, spec); err != nil {
		t.Fatalf("clean one-shot sweep failed: %v", err)
	}

	// Chaos run: kill conv-1's worker and panic a box inside conv-2
	// halfway through their first attempts; yank the whole output
	// directory when conv-1 first completes.
	mid := strconv.FormatInt(total/2, 10)
	plan, err := chaos.ParseServer(
		"seed=7,kill=conv-1@" + mid + ",panic=conv-2@" + mid + ",yank=conv-1")
	if err != nil {
		t.Fatal(err)
	}
	dirChaos := t.TempDir()
	s := New(Options{
		OutDir: dirChaos, Workers: 2, Retries: 3,
		RetryBackoff: time.Millisecond, RetryBackoffMax: 5 * time.Millisecond,
		CheckpointInterval: total / 8,
		Chaos:              plan,
		Logf:               t.Logf,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sw, err := s.SubmitSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WaitSweep(ctx, sw); err != nil {
		t.Fatal(err)
	}

	st := s.SweepStatus(sw)
	if st.Done != 3 {
		t.Fatalf("chaos sweep: %d done of %d: %+v", st.Done, st.Total, st.Jobs)
	}
	for _, j := range st.Jobs {
		switch j.Name {
		case "conv-1", "conv-2":
			if j.Attempts < 2 {
				t.Errorf("%s took %d attempts, want >= 2 (its fault should have fired)", j.Name, j.Attempts)
			}
		}
	}

	// Convergence: every output byte-identical to the clean run.
	for _, name := range []string{"conv-1", "conv-2", "conv-3"} {
		clean, err := os.ReadFile(filepath.Join(dirClean, name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(dirChaos, name+".csv"))
		if err != nil {
			t.Fatalf("chaos run output missing: %v", err)
		}
		if !bytes.Equal(got, clean) {
			t.Errorf("%s.csv differs between chaos and clean runs", name)
		}
	}
	cleanSum, err := os.ReadFile(filepath.Join(dirClean, "conv-summary.txt"))
	if err != nil {
		t.Fatal(err)
	}
	chaosSum, err := os.ReadFile(filepath.Join(dirChaos, "conv-summary.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chaosSum, cleanSum) {
		t.Errorf("sweep summaries differ:\nclean:\n%s\nchaos:\n%s", cleanSum, chaosSum)
	}
}
