package isa

import (
	"math/rand"
	"strings"
	"testing"
)

func TestAssembleSimpleVertexProgram(t *testing.T) {
	src := `
!!ATTILAvp
# transform position by the 4 rows of the MVP matrix
DP4 o0.x, v0, c0
DP4 o0.y, v0, c1
DP4 o0.z, v0, c2
DP4 o0.w, v0, c3
MOV o1, v1;      // pass color through
END
`
	p, err := Assemble(FragmentProgram /* overridden by header */, "mvp", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != VertexProgram {
		t.Fatalf("kind: %v", p.Kind)
	}
	if p.Len() != 6 {
		t.Fatalf("len: %d", p.Len())
	}
	if p.TempsUsed() != 0 {
		t.Fatalf("temps: %d", p.TempsUsed())
	}
	if p.Inputs() != 0b11 {
		t.Fatalf("inputs mask: %b", p.Inputs())
	}
	if p.Outputs() != 0b11 {
		t.Fatalf("outputs mask: %b", p.Outputs())
	}
	if p.UsesTextures() {
		t.Fatal("no textures expected")
	}
}

func TestAssembleFragmentProgramWithTexture(t *testing.T) {
	src := `
!!ATTILAfp
TEX r0, v4, t0, 2D
MUL_SAT o0, r0, v1
END
`
	p, err := Assemble(VertexProgram, "texmod", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != FragmentProgram {
		t.Fatalf("kind: %v", p.Kind)
	}
	if p.Samplers() != 1 {
		t.Fatalf("samplers: %b", p.Samplers())
	}
	if p.TempsUsed() != 1 {
		t.Fatalf("temps: %d", p.TempsUsed())
	}
	if !p.Instr[1].Saturate {
		t.Fatal("saturate flag lost")
	}
}

func TestAssembleRejectsTextureInVertexProgram(t *testing.T) {
	_, err := Assemble(VertexProgram, "bad", "TEX r0, v0, t0, 2D\nEND")
	if err == nil || !strings.Contains(err.Error(), "fragment") {
		t.Fatalf("want fragment-only error, got %v", err)
	}
}

func TestAssembleRejectsMissingEnd(t *testing.T) {
	_, err := Assemble(VertexProgram, "bad", "MOV r0, v0")
	if err == nil || !strings.Contains(err.Error(), "END") {
		t.Fatalf("want missing-END error, got %v", err)
	}
}

func TestAssembleRejectsBadOperandCount(t *testing.T) {
	_, err := Assemble(VertexProgram, "bad", "ADD r0, v0\nEND")
	if err == nil || !strings.Contains(err.Error(), "operands") {
		t.Fatalf("want operand-count error, got %v", err)
	}
}

func TestAssembleRejectsRangeViolations(t *testing.T) {
	cases := []string{
		"MOV r32, v0\nEND",    // temp out of range
		"MOV r0, c96\nEND",    // const out of range
		"MOV r0, v16\nEND",    // input out of range
		"MOV c0, v0\nEND",     // const as destination
		"ADD r0, o0, v0\nEND", // output as source
	}
	for _, src := range cases {
		if _, err := Assemble(VertexProgram, "bad", src); err == nil {
			t.Errorf("accepted invalid program %q", src)
		}
	}
}

func TestSwizzleParsing(t *testing.T) {
	p, err := Assemble(VertexProgram, "swz", "MOV r0.xz, -v0.wzyx\nMOV r1, v0.y\nEND")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Instr[0]
	if in.Dst.Mask != 0b0101 {
		t.Fatalf("mask: %04b", in.Dst.Mask)
	}
	if !in.Src[0].Negate {
		t.Fatal("negate lost")
	}
	if in.Src[0].Swizzle != MakeSwizzle(3, 2, 1, 0) {
		t.Fatalf("swizzle: %v", in.Src[0].Swizzle)
	}
	if p.Instr[1].Src[0].Swizzle != Broadcast(1) {
		t.Fatalf("broadcast swizzle: %v", p.Instr[1].Src[0].Swizzle)
	}
}

func TestSwizzleComp(t *testing.T) {
	s := MakeSwizzle(3, 0, 2, 1)
	want := [4]int{3, 0, 2, 1}
	for i, w := range want {
		if s.Comp(i) != w {
			t.Fatalf("comp %d: want %d got %d", i, w, s.Comp(i))
		}
	}
	if SwizzleXYZW.Comp(0) != 0 || SwizzleXYZW.Comp(3) != 3 {
		t.Fatal("identity swizzle broken")
	}
}

// randomProgram builds a random valid program for roundtrip testing.
func randomProgram(rng *rand.Rand, kind ProgramKind) *Program {
	genSrc := func() SrcOperand {
		banks := []Bank{BankInput, BankTemp, BankConst}
		b := banks[rng.Intn(len(banks))]
		op := Src(b, rng.Intn(b.Limit()))
		switch rng.Intn(3) {
		case 0:
			op.Swizzle = Broadcast(rng.Intn(4))
		case 1:
			op.Swizzle = MakeSwizzle(rng.Intn(4), rng.Intn(4), rng.Intn(4), rng.Intn(4))
		}
		if rng.Intn(2) == 0 {
			op = op.Neg()
		}
		return op
	}
	genDst := func() DstOperand {
		b := BankTemp
		if rng.Intn(4) == 0 {
			b = BankOutput
		}
		d := Dst(b, rng.Intn(b.Limit()))
		if rng.Intn(3) == 0 {
			d.Mask = WriteMask(rng.Intn(15) + 1)
		}
		return d
	}
	ops := []Opcode{MOV, ADD, SUB, MUL, MAD, DP3, DP4, DPH, MIN, MAX, SLT, SGE,
		FRC, FLR, ABS, CMP, LRP, XPD, RCP, RSQ, EX2, LG2, POW, LIT, SIN, COS, DST}
	if kind == FragmentProgram {
		ops = append(ops, TEX, TXB, TXP, TXL, KIL)
	}
	p := &Program{Kind: kind, Name: "random"}
	n := rng.Intn(20) + 1
	for i := 0; i < n; i++ {
		op := ops[rng.Intn(len(ops))]
		info := op.Info()
		in := Instruction{Op: op, Saturate: info.HasDst && rng.Intn(4) == 0}
		if info.HasDst {
			in.Dst = genDst()
		}
		for s := 0; s < info.NSrc; s++ {
			in.Src[s] = genSrc()
		}
		if info.Texture {
			in.Sampler = uint8(rng.Intn(16))
			in.Target = TexTarget(rng.Intn(4))
		}
		p.Instr = append(p.Instr, in)
	}
	p.Instr = append(p.Instr, Instruction{Op: END})
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

func TestDisassembleAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		kind := VertexProgram
		if trial%2 == 1 {
			kind = FragmentProgram
		}
		p := randomProgram(rng, kind)
		text := p.Disassemble()
		q, err := Assemble(kind, "roundtrip", text)
		if err != nil {
			t.Fatalf("trial %d: reassembly failed: %v\n%s", trial, err, text)
		}
		if len(q.Instr) != len(p.Instr) {
			t.Fatalf("trial %d: length mismatch", trial)
		}
		for i := range p.Instr {
			if p.Instr[i] != q.Instr[i] {
				t.Fatalf("trial %d instr %d: %v != %v\n%s", trial, i,
					p.Instr[i], q.Instr[i], text)
			}
		}
	}
}

func TestOpInfoTableComplete(t *testing.T) {
	for op := Opcode(0); op < opcodeCount; op++ {
		if op.Info().Name == "" {
			t.Fatalf("opcode %d has no metadata", op)
		}
	}
	if TEX.Info().LatencyClass != LatTexture || !TEX.Info().Texture {
		t.Fatal("TEX metadata wrong")
	}
	if RCP.Info().Scalar != true {
		t.Fatal("RCP should be scalar")
	}
}

func TestMustAssemblePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble did not panic")
		}
	}()
	MustAssemble(VertexProgram, "bad", "BOGUS r0\nEND")
}
