package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses ARB-style assembly text into a validated Program.
//
// Syntax, one instruction per line (';' optional, '#' and '//' start
// comments):
//
//	!!ATTILAvp                      (or !!ATTILAfp; optional header)
//	MOV r0, v0
//	MAD_SAT r1.xyz, r0, c5, -c6.w
//	DP4 o0.x, v0, c0
//	TEX r2, v4, t0, 2D
//	KIL r3
//	END
//
// Registers are v<n> (input), o<n> (output), r<n> (temporary), c<n>
// (constant). A source may carry a swizzle suffix (.xyzw, .wzyx, or a
// single broadcast component .x) and a leading '-'. A destination may
// carry a write-mask suffix (.xyz). kind selects the validation rules
// when no header line is present.
func Assemble(kind ProgramKind, name, text string) (*Program, error) {
	p := &Program{Kind: kind, Name: name}
	lines := strings.Split(text, "\n")
	for ln, raw := range lines {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "!!") {
			switch strings.ToUpper(line) {
			case "!!ATTILAVP", "!!ARBVP1.0":
				p.Kind = VertexProgram
			case "!!ATTILAFP", "!!ARBFP1.0":
				p.Kind = FragmentProgram
			default:
				return nil, fmt.Errorf("%s:%d: unknown header %q", name, ln+1, line)
			}
			continue
		}
		line = strings.TrimSuffix(line, ";")
		in, err := parseInstruction(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", name, ln+1, err)
		}
		p.Instr = append(p.Instr, in)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error; for statically known
// programs (driver-generated fixed-function shaders, tests).
func MustAssemble(kind ProgramKind, name, text string) *Program {
	p, err := Assemble(kind, name, text)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(s string) string {
	if i := strings.IndexByte(s, '#'); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return s
}

var mnemonics = func() map[string]Opcode {
	m := make(map[string]Opcode, opcodeCount)
	for op := Opcode(0); op < opcodeCount; op++ {
		m[op.Info().Name] = op
	}
	return m
}()

func parseInstruction(line string) (Instruction, error) {
	var in Instruction
	fields := strings.SplitN(line, " ", 2)
	mn := strings.ToUpper(strings.TrimSpace(fields[0]))
	if strings.HasSuffix(mn, "_SAT") {
		in.Saturate = true
		mn = strings.TrimSuffix(mn, "_SAT")
	}
	op, ok := mnemonics[mn]
	if !ok {
		return in, fmt.Errorf("unknown mnemonic %q", mn)
	}
	in.Op = op
	info := op.Info()
	var args []string
	if len(fields) == 2 {
		for _, a := range strings.Split(fields[1], ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	want := info.NSrc
	if info.HasDst {
		want++
	}
	if info.Texture {
		want += 2 // sampler, target
	}
	if len(args) != want {
		return in, fmt.Errorf("%s: want %d operands, got %d", mn, want, len(args))
	}
	i := 0
	if info.HasDst {
		dst, err := parseDst(args[i])
		if err != nil {
			return in, err
		}
		in.Dst = dst
		i++
	}
	for s := 0; s < info.NSrc; s++ {
		src, err := parseSrc(args[i])
		if err != nil {
			return in, err
		}
		in.Src[s] = src
		i++
	}
	if info.Texture {
		smp := args[i]
		if len(smp) < 2 || (smp[0] != 't' && smp[0] != 'T') {
			return in, fmt.Errorf("bad sampler %q", smp)
		}
		n, err := strconv.Atoi(smp[1:])
		if err != nil || n < 0 || n > 15 {
			return in, fmt.Errorf("bad sampler %q", smp)
		}
		in.Sampler = uint8(n)
		i++
		switch strings.ToUpper(args[i]) {
		case "1D":
			in.Target = Tex1D
		case "2D":
			in.Target = Tex2D
		case "3D":
			in.Target = Tex3D
		case "CUBE":
			in.Target = TexCube
		default:
			return in, fmt.Errorf("bad texture target %q", args[i])
		}
	}
	return in, nil
}

func parseBankIndex(s string) (Bank, uint8, string, error) {
	if s == "" {
		return 0, 0, "", fmt.Errorf("empty register")
	}
	var bank Bank
	switch s[0] {
	case 'v', 'V':
		bank = BankInput
	case 'o', 'O':
		bank = BankOutput
	case 'r', 'R':
		bank = BankTemp
	case 'c', 'C':
		bank = BankConst
	default:
		return 0, 0, "", fmt.Errorf("bad register %q", s)
	}
	rest := s[1:]
	suffix := ""
	if dot := strings.IndexByte(rest, '.'); dot >= 0 {
		suffix = rest[dot+1:]
		rest = rest[:dot]
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 || n > 255 {
		return 0, 0, "", fmt.Errorf("bad register index in %q", s)
	}
	return bank, uint8(n), suffix, nil
}

func parseDst(s string) (DstOperand, error) {
	bank, idx, suffix, err := parseBankIndex(s)
	if err != nil {
		return DstOperand{}, err
	}
	mask := MaskXYZW
	if suffix != "" {
		mask = 0
		prev := -1
		for _, ch := range suffix {
			c := compIndex(byte(ch))
			if c < 0 || c <= prev {
				return DstOperand{}, fmt.Errorf("bad write mask %q", s)
			}
			mask |= 1 << c
			prev = c
		}
	}
	return DstOperand{Bank: bank, Index: idx, Mask: mask}, nil
}

func parseSrc(s string) (SrcOperand, error) {
	var op SrcOperand
	if strings.HasPrefix(s, "-") {
		op.Negate = true
		s = strings.TrimSpace(s[1:])
	}
	bank, idx, suffix, err := parseBankIndex(s)
	if err != nil {
		return SrcOperand{}, err
	}
	op.Bank, op.Index = bank, idx
	op.Swizzle = SwizzleXYZW
	switch len(suffix) {
	case 0:
	case 1:
		c := compIndex(suffix[0])
		if c < 0 {
			return SrcOperand{}, fmt.Errorf("bad swizzle %q", s)
		}
		op.Swizzle = Broadcast(c)
	case 4:
		comps := [4]int{}
		for i := 0; i < 4; i++ {
			c := compIndex(suffix[i])
			if c < 0 {
				return SrcOperand{}, fmt.Errorf("bad swizzle %q", s)
			}
			comps[i] = c
		}
		op.Swizzle = MakeSwizzle(comps[0], comps[1], comps[2], comps[3])
	default:
		return SrcOperand{}, fmt.Errorf("bad swizzle %q (must be 1 or 4 components)", s)
	}
	return op, nil
}

func compIndex(c byte) int {
	switch c {
	case 'x', 'X':
		return 0
	case 'y', 'Y':
		return 1
	case 'z', 'Z':
		return 2
	case 'w', 'W':
		return 3
	}
	return -1
}
