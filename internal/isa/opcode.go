// Package isa defines the ATTILA shader instruction set, modelled on
// the ARB vertex/fragment program OpenGL extensions the paper bases
// its unified shader on (§2.3): 4-component 32-bit float registers,
// SIMD and scalar instructions, four register banks (input, output,
// temporary, constant), texture sampling and fragment kill.
//
// The package provides the binary instruction representation, an
// assembler for a textual ARB-like syntax and a disassembler that
// produces canonical re-assemblable text.
package isa

import "fmt"

// Opcode identifies a shader instruction.
type Opcode uint8

// Shader opcodes. Vector ops work per component under the destination
// write mask; scalar ops (RCP, RSQ, EX2, LG2, SIN, COS, POW) compute
// one scalar from the source's x component (after swizzling) and
// replicate it to the masked destination components.
const (
	NOP Opcode = iota
	MOV
	ADD
	SUB
	MUL
	MAD
	DP3
	DP4
	DPH
	DST
	MIN
	MAX
	SLT
	SGE
	FRC
	FLR
	ABS
	CMP
	LRP
	XPD
	RCP
	RSQ
	EX2
	LG2
	POW
	LIT
	SIN
	COS
	TEX
	TXB
	TXP
	TXL
	KIL
	END
	opcodeCount
)

// OpInfo describes the static properties of an opcode.
type OpInfo struct {
	Name    string
	NSrc    int  // number of source operands
	HasDst  bool // writes a destination register
	Scalar  bool // scalar computation replicated over the mask
	Texture bool // samples a texture (uses Instruction.Sampler/TexTarget)
	// LatencyClass groups opcodes by execution latency; the shader
	// box maps classes to configurable cycle counts (paper: 1 to 9
	// execution stages).
	LatencyClass LatClass
}

// LatClass buckets opcodes by execution latency.
type LatClass uint8

// Latency classes, cheapest first.
const (
	LatSimple  LatClass = iota // MOV, ABS, FRC, FLR, min/max/compare
	LatMAD                     // ADD/SUB/MUL/MAD/dot products/LRP/CMP/XPD/DST/LIT
	LatScalar                  // RCP/RSQ/EX2/LG2/SIN/COS/POW transcendentals
	LatTexture                 // TEX* (latency decided by the texture unit)
	latClassCount
)

var opInfos = [opcodeCount]OpInfo{
	NOP: {Name: "NOP"},
	MOV: {Name: "MOV", NSrc: 1, HasDst: true, LatencyClass: LatSimple},
	ADD: {Name: "ADD", NSrc: 2, HasDst: true, LatencyClass: LatMAD},
	SUB: {Name: "SUB", NSrc: 2, HasDst: true, LatencyClass: LatMAD},
	MUL: {Name: "MUL", NSrc: 2, HasDst: true, LatencyClass: LatMAD},
	MAD: {Name: "MAD", NSrc: 3, HasDst: true, LatencyClass: LatMAD},
	DP3: {Name: "DP3", NSrc: 2, HasDst: true, LatencyClass: LatMAD},
	DP4: {Name: "DP4", NSrc: 2, HasDst: true, LatencyClass: LatMAD},
	DPH: {Name: "DPH", NSrc: 2, HasDst: true, LatencyClass: LatMAD},
	DST: {Name: "DST", NSrc: 2, HasDst: true, LatencyClass: LatMAD},
	MIN: {Name: "MIN", NSrc: 2, HasDst: true, LatencyClass: LatSimple},
	MAX: {Name: "MAX", NSrc: 2, HasDst: true, LatencyClass: LatSimple},
	SLT: {Name: "SLT", NSrc: 2, HasDst: true, LatencyClass: LatSimple},
	SGE: {Name: "SGE", NSrc: 2, HasDst: true, LatencyClass: LatSimple},
	FRC: {Name: "FRC", NSrc: 1, HasDst: true, LatencyClass: LatSimple},
	FLR: {Name: "FLR", NSrc: 1, HasDst: true, LatencyClass: LatSimple},
	ABS: {Name: "ABS", NSrc: 1, HasDst: true, LatencyClass: LatSimple},
	CMP: {Name: "CMP", NSrc: 3, HasDst: true, LatencyClass: LatMAD},
	LRP: {Name: "LRP", NSrc: 3, HasDst: true, LatencyClass: LatMAD},
	XPD: {Name: "XPD", NSrc: 2, HasDst: true, LatencyClass: LatMAD},
	RCP: {Name: "RCP", NSrc: 1, HasDst: true, Scalar: true, LatencyClass: LatScalar},
	RSQ: {Name: "RSQ", NSrc: 1, HasDst: true, Scalar: true, LatencyClass: LatScalar},
	EX2: {Name: "EX2", NSrc: 1, HasDst: true, Scalar: true, LatencyClass: LatScalar},
	LG2: {Name: "LG2", NSrc: 1, HasDst: true, Scalar: true, LatencyClass: LatScalar},
	POW: {Name: "POW", NSrc: 2, HasDst: true, Scalar: true, LatencyClass: LatScalar},
	LIT: {Name: "LIT", NSrc: 1, HasDst: true, LatencyClass: LatScalar},
	SIN: {Name: "SIN", NSrc: 1, HasDst: true, Scalar: true, LatencyClass: LatScalar},
	COS: {Name: "COS", NSrc: 1, HasDst: true, Scalar: true, LatencyClass: LatScalar},
	TEX: {Name: "TEX", NSrc: 1, HasDst: true, Texture: true, LatencyClass: LatTexture},
	TXB: {Name: "TXB", NSrc: 1, HasDst: true, Texture: true, LatencyClass: LatTexture},
	TXP: {Name: "TXP", NSrc: 1, HasDst: true, Texture: true, LatencyClass: LatTexture},
	TXL: {Name: "TXL", NSrc: 1, HasDst: true, Texture: true, LatencyClass: LatTexture},
	KIL: {Name: "KIL", NSrc: 1, LatencyClass: LatSimple},
	END: {Name: "END"},
}

// Info returns the static description of op.
func (op Opcode) Info() OpInfo {
	if int(op) >= len(opInfos) {
		return OpInfo{Name: fmt.Sprintf("OP(%d)", op)}
	}
	return opInfos[op]
}

// String returns the mnemonic.
func (op Opcode) String() string { return op.Info().Name }

// TexTarget selects the texture dimensionality of a TEX* instruction.
type TexTarget uint8

// Texture targets.
const (
	Tex1D TexTarget = iota
	Tex2D
	Tex3D
	TexCube
)

// String returns the assembly spelling of the target.
func (t TexTarget) String() string {
	switch t {
	case Tex1D:
		return "1D"
	case Tex2D:
		return "2D"
	case Tex3D:
		return "3D"
	case TexCube:
		return "CUBE"
	}
	return fmt.Sprintf("TARGET(%d)", uint8(t))
}
