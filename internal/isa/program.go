package isa

import (
	"fmt"
	"strings"
)

// Instruction is one decoded shader instruction.
type Instruction struct {
	Op       Opcode
	Dst      DstOperand
	Src      [3]SrcOperand
	Saturate bool
	Sampler  uint8     // texture image unit for TEX*
	Target   TexTarget // texture target for TEX*
}

// String disassembles the instruction into canonical assembly.
func (in Instruction) String() string {
	info := in.Op.Info()
	var sb strings.Builder
	sb.WriteString(info.Name)
	if in.Saturate {
		sb.WriteString("_SAT")
	}
	first := true
	arg := func(s string) {
		if first {
			sb.WriteByte(' ')
			first = false
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(s)
	}
	if info.HasDst {
		arg(in.Dst.String())
	}
	for i := 0; i < info.NSrc; i++ {
		arg(in.Src[i].String())
	}
	if info.Texture {
		arg(fmt.Sprintf("t%d", in.Sampler))
		arg(in.Target.String())
	}
	sb.WriteByte(';')
	return sb.String()
}

// ProgramKind distinguishes vertex from fragment programs; the
// unified shader executes both, but validation rules differ (only
// fragment programs may sample textures or KIL).
type ProgramKind uint8

// Program kinds.
const (
	VertexProgram ProgramKind = iota
	FragmentProgram
)

// String names the kind.
func (k ProgramKind) String() string {
	if k == VertexProgram {
		return "vertex"
	}
	return "fragment"
}

// Program is a validated shader program ready to load into a shader
// unit's instruction memory.
type Program struct {
	Kind  ProgramKind
	Name  string
	Instr []Instruction

	temps    int
	inputs   uint32 // bitmask of read input slots
	outputs  uint32 // bitmask of written output slots
	samplers uint32 // bitmask of referenced texture units
	hasKill  bool
}

// Validate checks bank usage, register ranges and kind restrictions,
// and computes the resource summary. Every program must end with END.
func (p *Program) Validate() error {
	p.temps, p.inputs, p.outputs, p.samplers, p.hasKill = 0, 0, 0, 0, false
	if len(p.Instr) == 0 {
		return fmt.Errorf("program %q: empty", p.Name)
	}
	if p.Instr[len(p.Instr)-1].Op != END {
		return fmt.Errorf("program %q: missing END", p.Name)
	}
	for idx, in := range p.Instr {
		info := in.Op.Info()
		if in.Op >= opcodeCount {
			return fmt.Errorf("program %q instr %d: bad opcode %d", p.Name, idx, in.Op)
		}
		if in.Op == END && idx != len(p.Instr)-1 {
			return fmt.Errorf("program %q instr %d: END before last instruction", p.Name, idx)
		}
		if info.Texture || in.Op == KIL {
			if p.Kind != FragmentProgram {
				return fmt.Errorf("program %q instr %d: %s only allowed in fragment programs", p.Name, idx, info.Name)
			}
		}
		if info.HasDst {
			switch in.Dst.Bank {
			case BankTemp, BankOutput:
			default:
				return fmt.Errorf("program %q instr %d: destination bank must be r or o", p.Name, idx)
			}
			if int(in.Dst.Index) >= in.Dst.Bank.Limit() {
				return fmt.Errorf("program %q instr %d: dst index %d out of range", p.Name, idx, in.Dst.Index)
			}
			if in.Dst.Mask == 0 {
				return fmt.Errorf("program %q instr %d: empty write mask", p.Name, idx)
			}
			if in.Dst.Bank == BankTemp {
				if n := int(in.Dst.Index) + 1; n > p.temps {
					p.temps = n
				}
			} else {
				p.outputs |= 1 << in.Dst.Index
			}
		}
		for s := 0; s < info.NSrc; s++ {
			src := in.Src[s]
			switch src.Bank {
			case BankInput, BankTemp, BankConst:
			default:
				return fmt.Errorf("program %q instr %d: source %d bank must be v, r or c", p.Name, idx, s)
			}
			if int(src.Index) >= src.Bank.Limit() {
				return fmt.Errorf("program %q instr %d: src %d index %d out of range", p.Name, idx, s, src.Index)
			}
			switch src.Bank {
			case BankInput:
				p.inputs |= 1 << src.Index
			case BankTemp:
				if n := int(src.Index) + 1; n > p.temps {
					p.temps = n
				}
			}
		}
		if info.Texture {
			if in.Sampler >= 16 {
				return fmt.Errorf("program %q instr %d: sampler t%d out of range", p.Name, idx, in.Sampler)
			}
			p.samplers |= 1 << in.Sampler
		}
		if in.Op == KIL {
			p.hasKill = true
		}
	}
	return nil
}

// TempsUsed returns the number of temporary registers the program
// needs per shader input; it limits how many threads a shader unit
// can keep in flight (§2.3 register pool admission).
func (p *Program) TempsUsed() int { return p.temps }

// Inputs returns the bitmask of input attribute slots the program
// reads.
func (p *Program) Inputs() uint32 { return p.inputs }

// Outputs returns the bitmask of output attribute slots the program
// writes.
func (p *Program) Outputs() uint32 { return p.outputs }

// Samplers returns the bitmask of texture image units referenced.
func (p *Program) Samplers() uint32 { return p.samplers }

// HasKill reports whether the program may discard fragments.
func (p *Program) HasKill() bool { return p.hasKill }

// UsesTextures reports whether the program issues texture requests.
func (p *Program) UsesTextures() bool { return p.samplers != 0 }

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Instr) }

// Disassemble produces canonical assembly text that Assemble parses
// back into an identical program.
func (p *Program) Disassemble() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "!!ATTILA%cp\n", map[ProgramKind]byte{VertexProgram: 'v', FragmentProgram: 'f'}[p.Kind])
	for _, in := range p.Instr {
		sb.WriteString(in.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Standard attribute slot assignments shared by the GL layer, the
// streamer and the interpolator. Vertex inputs, vertex outputs and
// fragment inputs use the same numbering so vertex output slot i
// interpolates into fragment input slot i.
const (
	AttrPos    = 0 // vertex position / fragment window position
	AttrColor  = 1 // primary color
	AttrNormal = 2 // vertex normal (vertex programs only)
	AttrFog    = 3 // fog coordinate / distance
	AttrTex0   = 4 // first of 8 texture coordinate slots
	NumTexAttr = 8
)

// Fragment output slots.
const (
	FragOutColor = 0
	FragOutDepth = 1
)
