package isa

import (
	"fmt"
	"strings"
)

// Bank identifies one of the four ARB register banks (§2.3): input
// attributes (read only), output attributes (write only), temporaries
// (read/write) and constants (read only).
type Bank uint8

// Register banks.
const (
	BankInput  Bank = iota // v[n]
	BankOutput             // o[n]
	BankTemp               // r[n]
	BankConst              // c[n]
)

func (b Bank) letter() byte {
	switch b {
	case BankInput:
		return 'v'
	case BankOutput:
		return 'o'
	case BankTemp:
		return 'r'
	case BankConst:
		return 'c'
	}
	return '?'
}

// Architectural limits, following the ARB program extensions: up to
// 32 temporaries (the paper notes real programs use 2–8), 16 input
// and output attribute slots and 96 constants.
const (
	MaxTemps   = 32
	MaxInputs  = 16
	MaxOutputs = 16
	MaxConsts  = 96
)

// Limit returns the number of registers in the bank.
func (b Bank) Limit() int {
	switch b {
	case BankInput:
		return MaxInputs
	case BankOutput:
		return MaxOutputs
	case BankTemp:
		return MaxTemps
	case BankConst:
		return MaxConsts
	}
	return 0
}

// Swizzle selects, per destination component, which source component
// to read: two bits per component, component i reads source component
// (s >> (2*i)) & 3, with x as bit pair 0.
type Swizzle uint8

// SwizzleXYZW is the identity swizzle.
const SwizzleXYZW Swizzle = 0xE4 // w=11 z=10 y=01 x=00

// Comp returns the source component selected for destination
// component i (0..3).
func (s Swizzle) Comp(i int) int { return int(s>>(2*i)) & 3 }

// MakeSwizzle builds a swizzle from the four selected components.
func MakeSwizzle(x, y, z, w int) Swizzle {
	return Swizzle(x&3 | (y&3)<<2 | (z&3)<<4 | (w&3)<<6)
}

// Broadcast returns the swizzle replicating component c to all lanes.
func Broadcast(c int) Swizzle { return MakeSwizzle(c, c, c, c) }

var compNames = [4]byte{'x', 'y', 'z', 'w'}

// String returns the assembly spelling, e.g. ".wzyx"; the identity
// swizzle prints as the empty string.
func (s Swizzle) String() string {
	if s == SwizzleXYZW {
		return ""
	}
	b := [5]byte{'.'}
	for i := 0; i < 4; i++ {
		b[i+1] = compNames[s.Comp(i)]
	}
	// Collapse broadcast swizzles (.xxxx -> .x) like ARB syntax.
	if b[1] == b[2] && b[2] == b[3] && b[3] == b[4] {
		return string(b[:2])
	}
	return string(b[:])
}

// WriteMask selects which destination components an instruction
// writes: bit i set means component i is written.
type WriteMask uint8

// MaskXYZW writes all four components.
const MaskXYZW WriteMask = 0xF

// Has reports whether component i is written.
func (m WriteMask) Has(i int) bool { return m&(1<<i) != 0 }

// String returns the assembly spelling, e.g. ".xyz"; the full mask
// prints as the empty string.
func (m WriteMask) String() string {
	if m == MaskXYZW {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('.')
	for i := 0; i < 4; i++ {
		if m.Has(i) {
			sb.WriteByte(compNames[i])
		}
	}
	return sb.String()
}

// SrcOperand is a source register reference with swizzle and
// negation.
type SrcOperand struct {
	Bank    Bank
	Index   uint8
	Swizzle Swizzle
	Negate  bool
}

// Src builds a plain source operand.
func Src(bank Bank, index int) SrcOperand {
	return SrcOperand{Bank: bank, Index: uint8(index), Swizzle: SwizzleXYZW}
}

// Swz returns a copy of the operand with the given swizzle.
func (s SrcOperand) Swz(sw Swizzle) SrcOperand { s.Swizzle = sw; return s }

// Neg returns a negated copy of the operand.
func (s SrcOperand) Neg() SrcOperand { s.Negate = !s.Negate; return s }

// String returns the assembly spelling, e.g. "-c5.wzyx".
func (s SrcOperand) String() string {
	neg := ""
	if s.Negate {
		neg = "-"
	}
	return fmt.Sprintf("%s%c%d%s", neg, s.Bank.letter(), s.Index, s.Swizzle)
}

// DstOperand is a destination register reference with write mask.
type DstOperand struct {
	Bank  Bank // BankTemp or BankOutput
	Index uint8
	Mask  WriteMask
}

// Dst builds a full-mask destination operand.
func Dst(bank Bank, index int) DstOperand {
	return DstOperand{Bank: bank, Index: uint8(index), Mask: MaskXYZW}
}

// WithMask returns a copy of the operand with the given write mask.
func (d DstOperand) WithMask(m WriteMask) DstOperand { d.Mask = m; return d }

// String returns the assembly spelling, e.g. "r0.xyz".
func (d DstOperand) String() string {
	return fmt.Sprintf("%c%d%s", d.Bank.letter(), d.Index, d.Mask)
}
