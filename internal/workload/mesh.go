package workload

import (
	"encoding/binary"
	"math"

	"attila/internal/gl"
	"attila/internal/gpu"
	"attila/internal/isa"
	"attila/internal/vmath"
)

// Vertex is the interleaved vertex layout shared by the workloads:
// position (3), color (4), normal (3), uv0 (2), uv1 (2) — 14 floats,
// 56 bytes.
type Vertex struct {
	Pos    [3]float32
	Color  vmath.Vec4
	Normal [3]float32
	UV0    [2]float32
	UV1    [2]float32
}

// VertexStride is the byte stride of the interleaved layout.
const VertexStride = 14 * 4

// Mesh accumulates vertices and indices.
type Mesh struct {
	Verts   []Vertex
	Indices []uint16
}

// Add appends a vertex and returns its index.
func (m *Mesh) Add(v Vertex) uint16 {
	m.Verts = append(m.Verts, v)
	return uint16(len(m.Verts) - 1)
}

// Tri appends a triangle.
func (m *Mesh) Tri(a, b, c uint16) {
	m.Indices = append(m.Indices, a, b, c)
}

// Quad appends a quad as two triangles (a, b, c, d counterclockwise).
func (m *Mesh) Quad(a, b, c, d uint16) {
	m.Tri(a, b, c)
	m.Tri(a, c, d)
}

// Pack serializes the vertex array.
func (m *Mesh) Pack() []byte {
	out := make([]byte, 0, len(m.Verts)*VertexStride)
	putF := func(f float32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(f))
		out = append(out, b[:]...)
	}
	for _, v := range m.Verts {
		putF(v.Pos[0])
		putF(v.Pos[1])
		putF(v.Pos[2])
		for i := 0; i < 4; i++ {
			putF(v.Color[i])
		}
		putF(v.Normal[0])
		putF(v.Normal[1])
		putF(v.Normal[2])
		putF(v.UV0[0])
		putF(v.UV0[1])
		putF(v.UV1[0])
		putF(v.UV1[1])
	}
	return out
}

// PackIndices serializes the 16-bit index array.
func (m *Mesh) PackIndices() []byte {
	out := make([]byte, len(m.Indices)*2)
	for i, idx := range m.Indices {
		binary.LittleEndian.PutUint16(out[i*2:], idx)
	}
	return out
}

// MeshBuffers are the GPU buffer objects of an uploaded mesh.
type MeshBuffers struct {
	VB, IB uint32
	count  int
}

// Upload creates and fills buffer objects for the mesh.
func (m *Mesh) Upload(ctx *gl.Context) MeshBuffers {
	vb := ctx.GenBuffer(len(m.Verts) * VertexStride)
	ctx.BufferData(vb, 0, m.Pack())
	ib := ctx.GenBuffer(len(m.Indices) * 2)
	ctx.BufferData(ib, 0, m.PackIndices())
	return MeshBuffers{VB: vb, IB: ib, count: len(m.Indices)}
}

// Bind points the standard attribute slots at the mesh's buffers.
func (mb MeshBuffers) Bind(ctx *gl.Context) {
	(&Mesh{}).BindAttribs(ctx, mb.VB)
}

// Draw binds and renders the whole mesh.
func (mb MeshBuffers) Draw(ctx *gl.Context) {
	mb.Bind(ctx)
	ctx.DrawElements(gpu.Triangles, mb.count, mb.IB, 2, 0)
}

// BindAttribs points the standard attribute slots at a vertex buffer
// holding this layout.
func (m *Mesh) BindAttribs(ctx *gl.Context, vb uint32) {
	ctx.VertexAttribPointer(isa.AttrPos, vb, 0, VertexStride, 3)
	ctx.VertexAttribPointer(isa.AttrColor, vb, 12, VertexStride, 4)
	ctx.VertexAttribPointer(isa.AttrNormal, vb, 28, VertexStride, 3)
	ctx.VertexAttribPointer(isa.AttrTex0, vb, 40, VertexStride, 2)
	ctx.VertexAttribPointer(isa.AttrTex0+1, vb, 48, VertexStride, 2)
}

// v3 is a small position/vector helper.
type v3 = [3]float32

func sub3(a, b v3) v3 { return v3{a[0] - b[0], a[1] - b[1], a[2] - b[2]} }

func add3(a, b v3) v3 { return v3{a[0] + b[0], a[1] + b[1], a[2] + b[2]} }

func scale3(a v3, s float32) v3 { return v3{a[0] * s, a[1] * s, a[2] * s} }

func dot3(a, b v3) float32 { return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] }

func norm3(a v3) v3 {
	l := float32(math.Sqrt(float64(dot3(a, a))))
	if l == 0 {
		return a
	}
	return scale3(a, 1/l)
}
