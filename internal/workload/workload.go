// Package workload generates the synthetic graphic workloads that
// stand in for the paper's UT2004 and Doom3 traces (see DESIGN.md for
// the substitution rationale): scenes built through the GL framework
// whose command streams exercise the same pipeline paths the paper's
// case study measures — multitextured terrain with anisotropic
// filtering and alpha-tested foliage (UT2004-like), and a multi-pass
// stencil shadow volume renderer (Doom3-like).
package workload

import (
	"fmt"
	"sort"

	"attila/internal/gl"
	"attila/internal/gpu"
	"attila/internal/trace"
)

// Params configures a workload build.
type Params struct {
	Width  int
	Height int
	Frames int
	Aniso  int   // max anisotropy for scene textures (paper: 8)
	Seed   int64 // procedural content seed
}

// DefaultParams returns the scaled-down equivalent of the case
// study's settings (the paper ran 1024x768, aniso 8x).
func DefaultParams() Params {
	return Params{Width: 256, Height: 192, Frames: 2, Aniso: 8, Seed: 1}
}

// Generator builds a workload's command stream into a context.
type Generator func(ctx *gl.Context, p Params) error

var registry = map[string]Generator{
	"simple":  Simple,
	"ut2004":  UT2004Like,
	"doom3":   Doom3Like,
	"doom3ds": Doom3TwoSided,
	"spinner": Spinner,
}

// Names lists the available workloads, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns a workload generator by name.
func Lookup(name string) (Generator, error) {
	g, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	return g, nil
}

// Build runs a generator against an allocator and returns the command
// stream plus a trace header describing it.
func Build(name string, alloc gl.Allocator, p Params) ([]gpu.Command, trace.Header, error) {
	g, err := Lookup(name)
	if err != nil {
		return nil, trace.Header{}, err
	}
	ctx := gl.NewContext(alloc, p.Width, p.Height)
	if err := g(ctx, p); err != nil {
		return nil, trace.Header{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, trace.Header{}, fmt.Errorf("workload %s: %w", name, err)
	}
	hdr := trace.Header{Width: p.Width, Height: p.Height, Frames: ctx.FrameCount(), Label: name}
	return ctx.Commands(), hdr, nil
}
