package workload

import (
	"math"

	"attila/internal/emu/texemu"
	"attila/internal/gl"
	"attila/internal/vmath"
)

// Simple renders a colored triangle over a textured floor — the
// smallest workload that touches both shading paths; used by the
// quickstart example and smoke tests.
func Simple(ctx *gl.Context, p Params) error {
	floorImg := checkerTexture(64, 8,
		texemu.RGBA{200, 200, 200, 255}, texemu.RGBA{40, 40, 80, 255})
	params := gl.DefaultTexParams()
	params.MaxAniso = p.Aniso
	floorTex := ctx.TexImage2D(floorImg, texemu.FmtRGBA8, params)

	var floor Mesh
	fv := func(x, z, u, v float32) Vertex {
		return Vertex{
			Pos: [3]float32{x, -1, z}, Color: vmath.Vec4{1, 1, 1, 1},
			Normal: [3]float32{0, 1, 0}, UV0: [2]float32{u, v},
		}
	}
	a := floor.Add(fv(-8, -1, 0, 0))
	b := floor.Add(fv(8, -1, 8, 0))
	c := floor.Add(fv(8, -17, 8, 8))
	d := floor.Add(fv(-8, -17, 0, 8))
	floor.Quad(a, b, c, d)
	floorBuf := floor.Upload(ctx)

	var tri Mesh
	tri.Add(Vertex{Pos: [3]float32{-1.5, -0.5, -5}, Color: vmath.Vec4{1, 0, 0, 1}, Normal: [3]float32{0, 0, 1}})
	tri.Add(Vertex{Pos: [3]float32{1.5, -0.5, -5}, Color: vmath.Vec4{0, 1, 0, 1}, Normal: [3]float32{0, 0, 1}})
	tri.Add(Vertex{Pos: [3]float32{0, 1.5, -5}, Color: vmath.Vec4{0, 0, 1, 1}, Normal: [3]float32{0, 0, 1}})
	tri.Tri(0, 1, 2)
	triBuf := tri.Upload(ctx)

	aspect := float32(p.Width) / float32(p.Height)
	ctx.LoadProjection(vmath.Perspective(math.Pi/3, aspect, 0.5, 100))
	ctx.Enable(gl.CapDepthTest)
	ctx.ClearColor(0.25, 0.3, 0.4, 1)

	for f := 0; f < p.Frames; f++ {
		ang := float32(f) * 0.1
		ctx.LoadModelView(vmath.RotateY(ang))
		ctx.Clear(gl.ColorBufferBit | gl.DepthBufferBit)

		ctx.Enable(gl.CapTexture0)
		ctx.BindTexture(0, floorTex)
		floorBuf.Draw(ctx)

		ctx.Disable(gl.CapTexture0)
		triBuf.Draw(ctx)

		ctx.SwapBuffers()
	}
	return ctx.Err()
}
