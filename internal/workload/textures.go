package workload

import (
	"attila/internal/emu/texemu"
	"attila/internal/gl"
)

// Procedural texture synthesis: deterministic value noise and pattern
// generators used to build the workload textures (the traces must be
// reproducible, so no global randomness).

// hash32 is a small avalanche hash for lattice noise.
func hash32(x, y, seed int64) uint32 {
	h := uint64(x)*0x9E3779B97F4A7C15 ^ uint64(y)*0xC2B2AE3D27D4EB4F ^ uint64(seed)*0x165667B19E3779F9
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return uint32(h)
}

// valueNoise returns smooth noise in [0,1) at (x, y) with the given
// lattice cell size.
func valueNoise(x, y float64, cell float64, seed int64) float64 {
	gx, gy := x/cell, y/cell
	x0, y0 := int64(gx), int64(gy)
	fx, fy := gx-float64(x0), gy-float64(y0)
	sx := fx * fx * (3 - 2*fx)
	sy := fy * fy * (3 - 2*fy)
	v := func(ix, iy int64) float64 {
		return float64(hash32(ix, iy, seed)&0xFFFF) / 65536
	}
	a := v(x0, y0)*(1-sx) + v(x0+1, y0)*sx
	b := v(x0, y0+1)*(1-sx) + v(x0+1, y0+1)*sx
	return a*(1-sy) + b*sy
}

// fbm layers noise octaves.
func fbm(x, y float64, cell float64, octaves int, seed int64) float64 {
	sum, amp, norm := 0.0, 1.0, 0.0
	for o := 0; o < octaves; o++ {
		sum += valueNoise(x, y, cell, seed+int64(o)) * amp
		norm += amp
		amp *= 0.5
		cell /= 2
	}
	return sum / norm
}

func lerpB(a, b byte, t float64) byte {
	return byte(float64(a) + (float64(b)-float64(a))*t)
}

// grassTexture synthesizes a grassy diffuse map.
func grassTexture(size int, seed int64) *gl.Image {
	img := gl.NewImage(size, size)
	dark := texemu.RGBA{36, 84, 28, 255}
	light := texemu.RGBA{96, 160, 64, 255}
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			t := fbm(float64(x), float64(y), float64(size)/8, 4, seed)
			img.Set(x, y, texemu.RGBA{
				lerpB(dark[0], light[0], t),
				lerpB(dark[1], light[1], t),
				lerpB(dark[2], light[2], t),
				255,
			})
		}
	}
	return img
}

// rockTexture synthesizes a rocky/wall diffuse map.
func rockTexture(size int, seed int64) *gl.Image {
	img := gl.NewImage(size, size)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			t := fbm(float64(x), float64(y), float64(size)/4, 5, seed)
			v := byte(60 + t*140)
			img.Set(x, y, texemu.RGBA{v, v, byte(float64(v) * 0.9), 255})
		}
	}
	return img
}

// lightmapTexture synthesizes a smooth static-lighting map.
func lightmapTexture(size int, seed int64) *gl.Image {
	img := gl.NewImage(size, size)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			t := fbm(float64(x), float64(y), float64(size)/2, 2, seed)
			v := byte(90 + t*165)
			img.Set(x, y, texemu.RGBA{v, v, v, 255})
		}
	}
	return img
}

// foliageTexture synthesizes an alpha-cutout leaf pattern (alpha 0
// outside the fronds, 255 inside) for the alpha-test path.
func foliageTexture(size int, seed int64) *gl.Image {
	img := gl.NewImage(size, size)
	c := float64(size) / 2
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			dx, dy := float64(x)-c, float64(y)-c
			r := dx*dx + dy*dy
			n := fbm(float64(x), float64(y), float64(size)/6, 3, seed)
			inside := r < (c*c)*(0.3+0.6*n)
			if inside {
				img.Set(x, y, texemu.RGBA{byte(30 + n*60), byte(100 + n*100), 40, 255})
			} else {
				img.Set(x, y, texemu.RGBA{0, 0, 0, 0})
			}
		}
	}
	return img
}

// checkerTexture is the classic debug pattern.
func checkerTexture(size, square int, a, b texemu.RGBA) *gl.Image {
	img := gl.NewImage(size, size)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			if (x/square+y/square)%2 == 0 {
				img.Set(x, y, a)
			} else {
				img.Set(x, y, b)
			}
		}
	}
	return img
}
