package workload

import (
	"testing"

	"attila/internal/gl"
	"attila/internal/gpu"
	"attila/internal/mem"
	"attila/internal/refrender"
	"attila/internal/vmath"
)

func testParams() Params {
	return Params{Width: 128, Height: 96, Frames: 1, Aniso: 4, Seed: 1}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 5 {
		t.Fatalf("workloads: %v", names)
	}
	if _, err := Lookup("doom3"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("bogus workload accepted")
	}
}

func TestBuildProducesCommands(t *testing.T) {
	for _, name := range Names() {
		p := testParams()
		alloc := mem.NewAllocator(1<<20, 48<<20)
		cmds, hdr, err := Build(name, alloc, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if hdr.Frames != p.Frames {
			t.Fatalf("%s: header frames %d", name, hdr.Frames)
		}
		var draws, swaps, writes int
		for _, c := range cmds {
			switch c.(type) {
			case gpu.CmdDraw:
				draws++
			case gpu.CmdSwap:
				swaps++
			case gpu.CmdBufferWrite:
				writes++
			}
		}
		if draws == 0 || swaps != p.Frames || writes == 0 {
			t.Fatalf("%s: draws=%d swaps=%d writes=%d", name, draws, swaps, writes)
		}
	}
}

// Every workload must render identically on the timing simulator and
// the functional reference (the repository-wide Figure 10 check).
func TestWorkloadsSimulatorMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p := testParams()
			cfg := gpu.CaseStudy(2, gpu.ScheduleWindow)
			cfg.StatInterval = 0
			pipe, err := gpu.New(cfg, p.Width, p.Height)
			if err != nil {
				t.Fatal(err)
			}
			cmds, _, err := Build(name, pipe, p)
			if err != nil {
				t.Fatal(err)
			}
			ref := refrender.New(cfg.GPUMemBytes, p.Width, p.Height)
			if err := ref.Execute(cmds); err != nil {
				t.Fatal(err)
			}
			if err := pipe.Run(cmds, 100_000_000); err != nil {
				t.Fatal(err)
			}
			sim, rf := pipe.Frames(), ref.Frames()
			if len(sim) != len(rf) || len(sim) == 0 {
				t.Fatalf("frames: sim %d ref %d", len(sim), len(rf))
			}
			for i := range sim {
				diff, maxd := gpu.DiffFrames(sim[i], rf[i])
				if diff != 0 {
					t.Fatalf("frame %d: %d pixels differ (max delta %d)", i, diff, maxd)
				}
			}
			// Sanity: the image is not a constant field (something
			// actually rendered).
			f := sim[len(sim)-1]
			first := f.Pix[0]
			varied := false
			for i := 4; i < len(f.Pix); i += 4 {
				if f.Pix[i] != first {
					varied = true
					break
				}
			}
			if !varied {
				t.Fatal("rendered frame is a constant color")
			}
		})
	}
}

// The double-sided stencil path must produce exactly the same image
// as the classic two-pass technique.
func TestTwoSidedStencilImageEquivalent(t *testing.T) {
	p := testParams()
	render := func(name string) *gpu.Frame {
		alloc := mem.NewAllocator(1<<20, 48<<20)
		cmds, _, err := Build(name, alloc, p)
		if err != nil {
			t.Fatal(err)
		}
		ref := refrender.New(64<<20, p.Width, p.Height)
		if err := ref.Execute(cmds); err != nil {
			t.Fatal(err)
		}
		return ref.Frames()[0]
	}
	a := render("doom3")
	b := render("doom3ds")
	if diff, maxd := gpu.DiffFrames(a, b); diff != 0 {
		t.Fatalf("two-sided stencil image differs: %d px (max %d)", diff, maxd)
	}
}

// The single-pass technique must also draw fewer batches.
func TestTwoSidedStencilFewerDraws(t *testing.T) {
	p := testParams()
	count := func(name string) int {
		alloc := mem.NewAllocator(1<<20, 48<<20)
		cmds, _, err := Build(name, alloc, p)
		if err != nil {
			t.Fatal(err)
		}
		draws := 0
		for _, c := range cmds {
			if _, ok := c.(gpu.CmdDraw); ok {
				draws++
			}
		}
		return draws
	}
	if a, b := count("doom3"), count("doom3ds"); b >= a {
		t.Fatalf("doom3ds has %d draws, doom3 %d", b, a)
	}
}

func TestShadowVolumeIsClosedAndOutward(t *testing.T) {
	b := box{center: v3{0, 2, -10}, half: v3{1, 1, 1}}
	lightPos := v3{3, 8, -6}
	var m Mesh
	buildShadowVolume(&m, b, lightPos, 30)
	if len(m.Indices)%3 != 0 || len(m.Indices) == 0 {
		t.Fatalf("bad volume: %d indices", len(m.Indices))
	}
	// Centroid of the volume.
	var centroid vmath.Vec4
	for _, v := range m.Verts {
		centroid = centroid.Add(vmath.Vec4{v.Pos[0], v.Pos[1], v.Pos[2], 0})
	}
	centroid = centroid.Scale(1 / float32(len(m.Verts)))
	// Every triangle's normal must point away from the centroid
	// (consistent outward winding makes the two-pass cull-based
	// stencil update correct).
	for i := 0; i < len(m.Indices); i += 3 {
		p0 := m.Verts[m.Indices[i]].Pos
		p1 := m.Verts[m.Indices[i+1]].Pos
		p2 := m.Verts[m.Indices[i+2]].Pos
		e1 := sub3(p1, p0)
		e2 := sub3(p2, p0)
		n := v3{
			e1[1]*e2[2] - e1[2]*e2[1],
			e1[2]*e2[0] - e1[0]*e2[2],
			e1[0]*e2[1] - e1[1]*e2[0],
		}
		toCenter := sub3(p0, v3{centroid[0], centroid[1], centroid[2]})
		if dot3(n, toCenter) < 0 {
			t.Fatalf("triangle %d winds inward", i/3)
		}
	}
	// Closed surface: every edge must be shared by exactly two
	// triangles with opposite direction.
	type edge struct{ a, b [3]float32 }
	edges := map[edge]int{}
	for i := 0; i < len(m.Indices); i += 3 {
		idx := []uint16{m.Indices[i], m.Indices[i+1], m.Indices[i+2]}
		for e := 0; e < 3; e++ {
			pa := m.Verts[idx[e]].Pos
			pb := m.Verts[idx[(e+1)%3]].Pos
			edges[edge{pa, pb}]++
		}
	}
	for e, n := range edges {
		rev := edges[edge{e.b, e.a}]
		if n != rev {
			t.Fatalf("edge %v: %d forward vs %d reverse (volume not closed)", e, n, rev)
		}
	}
}

func TestProceduralTexturesDeterministic(t *testing.T) {
	a := grassTexture(32, 7)
	b := grassTexture(32, 7)
	c := grassTexture(32, 8)
	same, diff := true, false
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			same = false
		}
		if a.Pix[i] != c.Pix[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different textures")
	}
	if !diff {
		t.Fatal("different seeds produced identical textures")
	}
}

func TestFoliageHasAlphaHoles(t *testing.T) {
	img := foliageTexture(64, 3)
	solid, holes := 0, 0
	for _, px := range img.Pix {
		if px[3] == 255 {
			solid++
		} else if px[3] == 0 {
			holes++
		}
	}
	if solid == 0 || holes == 0 {
		t.Fatalf("foliage alpha: %d solid, %d holes", solid, holes)
	}
}

func TestMeshPackRoundtripSizes(t *testing.T) {
	var m Mesh
	m.Quad(m.Add(Vertex{}), m.Add(Vertex{}), m.Add(Vertex{}), m.Add(Vertex{}))
	if len(m.Pack()) != 4*VertexStride {
		t.Fatalf("pack size: %d", len(m.Pack()))
	}
	if len(m.PackIndices()) != 12 {
		t.Fatalf("index size: %d", len(m.PackIndices()))
	}
}

var _ = gl.DefaultTexParams // silence potential unused import churn
