package workload

import (
	"math"

	"attila/internal/emu/fragemu"
	"attila/internal/emu/texemu"
	"attila/internal/gl"
	"attila/internal/vmath"
)

// UT2004Like stands in for the paper's UT2004 Primeval timedemo: an
// outdoor scene with a lightmapped, multitextured terrain (two
// texture units, DXT-compressed diffuse), anisotropically filtered
// ground at grazing angles, distance fog and alpha-tested foliage —
// the texture-heavy, fixed-function-style workload of the case study.
func UT2004Like(ctx *gl.Context, p Params) error {
	texParams := gl.DefaultTexParams()
	texParams.MaxAniso = p.Aniso

	grass := ctx.TexImage2D(grassTexture(256, p.Seed), texemu.FmtDXT1, texParams)
	rock := ctx.TexImage2D(rockTexture(256, p.Seed+1), texemu.FmtDXT1, texParams)
	lightmap := ctx.TexImage2D(lightmapTexture(128, p.Seed+2), texemu.FmtRGBA8, texParams)
	leafParams := texParams
	leafParams.MaxAniso = 1
	foliage := ctx.TexImage2D(foliageTexture(128, p.Seed+3), texemu.FmtDXT3, leafParams)

	// Terrain: a grid with a noise heightfield, tiled diffuse UVs
	// and a single lightmap chart over the whole patch.
	const grid = 20
	const cell = 4.0
	height := func(ix, iz int) float32 {
		return float32(fbm(float64(ix), float64(iz), 6, 3, p.Seed+7)) * 6
	}
	var terrain Mesh
	for iz := 0; iz <= grid; iz++ {
		for ix := 0; ix <= grid; ix++ {
			h := height(ix, iz)
			terrain.Add(Vertex{
				Pos:    [3]float32{float32(ix)*cell - grid*cell/2, h, -float32(iz) * cell},
				Color:  vmath.Vec4{1, 1, 1, 1},
				Normal: [3]float32{0, 1, 0},
				UV0:    [2]float32{float32(ix), float32(iz)},
				UV1:    [2]float32{float32(ix) / grid, float32(iz) / grid},
			})
		}
	}
	for iz := 0; iz < grid; iz++ {
		for ix := 0; ix < grid; ix++ {
			a := uint16(iz*(grid+1) + ix)
			b := a + 1
			c := a + uint16(grid+1) + 1
			d := a + uint16(grid+1)
			terrain.Quad(a, b, c, d)
		}
	}
	terrainBuf := terrain.Upload(ctx)

	// Rock wall at the back of the scene.
	var wall Mesh
	wv := func(x, y, z, u, v float32) uint16 {
		return wall.Add(Vertex{
			Pos: [3]float32{x, y, z}, Color: vmath.Vec4{1, 1, 1, 1},
			Normal: [3]float32{0, 0, 1}, UV0: [2]float32{u, v},
			UV1: [2]float32{u / 8, v / 8},
		})
	}
	zBack := -float32(grid) * cell
	wall.Quad(
		wv(-grid*cell/2, 0, zBack, 0, 0),
		wv(grid*cell/2, 0, zBack, 8, 0),
		wv(grid*cell/2, 18, zBack, 8, 3),
		wv(-grid*cell/2, 18, zBack, 0, 3),
	)
	wallBuf := wall.Upload(ctx)

	// Foliage billboards scattered over the terrain.
	var leaves Mesh
	for i := 0; i < 12; i++ {
		fx := float64(hash32(int64(i), 3, p.Seed) % 1000)
		fz := float64(hash32(int64(i), 9, p.Seed) % 1000)
		x := float32(fx/1000-0.5) * grid * cell * 0.8
		z := -float32(fz/1000) * grid * cell * 0.8
		ix := int((x + grid*cell/2) / cell)
		iz := int(-z / cell)
		if ix < 0 {
			ix = 0
		}
		if iz < 0 {
			iz = 0
		}
		y := height(ix, iz)
		lv := func(dx, dy float32, u, v float32) uint16 {
			return leaves.Add(Vertex{
				Pos: [3]float32{x + dx, y + dy, z}, Color: vmath.Vec4{1, 1, 1, 1},
				Normal: [3]float32{0, 0, 1}, UV0: [2]float32{u, v},
			})
		}
		leaves.Quad(
			lv(-1.5, 0, 0, 0), lv(1.5, 0, 1, 0), lv(1.5, 3.5, 1, 1), lv(-1.5, 3.5, 0, 1),
		)
	}
	leavesBuf := leaves.Upload(ctx)

	aspect := float32(p.Width) / float32(p.Height)
	ctx.LoadProjection(vmath.Perspective(math.Pi/3, aspect, 0.5, 200))
	ctx.ClearColor(0.55, 0.65, 0.85, 1)
	ctx.Fog(20, 120, vmath.Vec4{0.55, 0.65, 0.85, 1})

	for f := 0; f < p.Frames; f++ {
		// Camera flies forward over the terrain, looking slightly
		// down — the grazing angle is what makes anisotropy matter.
		t := float32(f)
		eye := vmath.Vec4{t * 1.5, 9, -4 - t*2.5, 1}
		at := vmath.Vec4{t * 1.5, 4, -30 - t*2.5, 1}
		view := vmath.LookAt(eye, at, vmath.Vec4{0, 1, 0, 0})
		ctx.LoadModelView(view)

		ctx.Clear(gl.ColorBufferBit | gl.DepthBufferBit)
		ctx.Enable(gl.CapDepthTest)
		ctx.Enable(gl.CapFog)
		ctx.Enable(gl.CapCullFace)

		// Terrain: diffuse x lightmap multitexture.
		ctx.Enable(gl.CapTexture0)
		ctx.Enable(gl.CapTexture1)
		ctx.BindTexture(0, grass)
		ctx.BindTexture(1, lightmap)
		terrainBuf.Draw(ctx)

		// Back wall: rock, same lightmap.
		ctx.BindTexture(0, rock)
		wallBuf.Draw(ctx)

		// Foliage: alpha-tested cutouts, no lightmap, no culling
		// (billboards are double sided).
		ctx.Disable(gl.CapTexture1)
		ctx.Disable(gl.CapCullFace)
		ctx.Enable(gl.CapAlphaTest)
		ctx.AlphaFunc(fragemu.CmpGEqual, 0.5)
		ctx.BindTexture(0, foliage)
		leavesBuf.Draw(ctx)
		ctx.Disable(gl.CapAlphaTest)

		ctx.SwapBuffers()
	}
	return ctx.Err()
}

// Spinner is a lightweight animated workload (a spinning lit cube on
// a textured floor) sized for the embedded configuration of paper
// [2].
func Spinner(ctx *gl.Context, p Params) error {
	texParams := gl.DefaultTexParams()
	texParams.MaxAniso = 1
	tex := ctx.TexImage2D(checkerTexture(32, 4,
		texemu.RGBA{220, 220, 220, 255}, texemu.RGBA{60, 60, 120, 255}),
		texemu.FmtRGBA8, texParams)

	var cube Mesh
	faces := [6][4]v3{
		{{-1, -1, 1}, {1, -1, 1}, {1, 1, 1}, {-1, 1, 1}},     // +Z
		{{1, -1, -1}, {-1, -1, -1}, {-1, 1, -1}, {1, 1, -1}}, // -Z
		{{1, -1, 1}, {1, -1, -1}, {1, 1, -1}, {1, 1, 1}},     // +X
		{{-1, -1, -1}, {-1, -1, 1}, {-1, 1, 1}, {-1, 1, -1}}, // -X
		{{-1, 1, 1}, {1, 1, 1}, {1, 1, -1}, {-1, 1, -1}},     // +Y
		{{-1, -1, -1}, {1, -1, -1}, {1, -1, 1}, {-1, -1, 1}}, // -Y
	}
	normals := [6]v3{{0, 0, 1}, {0, 0, -1}, {1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}}
	uvs := [4][2]float32{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	for fi, face := range faces {
		var ids [4]uint16
		for vi, pos := range face {
			ids[vi] = cube.Add(Vertex{
				Pos: pos, Color: vmath.Vec4{1, 1, 1, 1},
				Normal: normals[fi], UV0: uvs[vi],
			})
		}
		cube.Quad(ids[0], ids[1], ids[2], ids[3])
	}
	cubeBuf := cube.Upload(ctx)

	aspect := float32(p.Width) / float32(p.Height)
	ctx.LoadProjection(vmath.Perspective(math.Pi/3, aspect, 0.5, 50))
	ctx.Enable(gl.CapDepthTest)
	ctx.Enable(gl.CapCullFace)
	ctx.Enable(gl.CapLighting)
	ctx.Enable(gl.CapTexture0)
	ctx.Light(vmath.Vec4{0.3, 0.5, 1, 0}, vmath.Vec4{0.9, 0.9, 0.8, 1}, vmath.Vec4{0.25, 0.25, 0.3, 1})
	ctx.BindTexture(0, tex)
	ctx.ClearColor(0.1, 0.1, 0.15, 1)

	for f := 0; f < p.Frames; f++ {
		ang := float32(f) * 0.25
		model := vmath.Translate(0, 0, -5).Mul(vmath.RotateY(ang)).Mul(vmath.RotateX(ang * 0.7))
		ctx.LoadModelView(model)
		ctx.Clear(gl.ColorBufferBit | gl.DepthBufferBit)
		cubeBuf.Draw(ctx)
		ctx.SwapBuffers()
	}
	return ctx.Err()
}
