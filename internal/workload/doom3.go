package workload

import (
	"math"

	"attila/internal/emu/fragemu"
	"attila/internal/emu/texemu"
	"attila/internal/gl"
	"attila/internal/vmath"
)

// Doom3Like stands in for the paper's DOOM3 trDemo2 timedemo: the
// id-tech-4 multi-pass renderer structure — a depth/ambient pre-pass,
// then per light a stencil shadow volume carve (Carmack's reverse:
// INCR/DECR on depth fail, color and depth writes off) and an
// additively blended lit pass masked to stencil zero. It is the
// stencil- and overdraw-heavy workload of the case study.
func Doom3Like(ctx *gl.Context, p Params) error { return doom3(ctx, p, false) }

// Doom3TwoSided is the same scene using the double-sided stencil
// extension: each shadow volume renders in a single pass with
// per-facing stencil operations instead of two cull-flipped passes.
func Doom3TwoSided(ctx *gl.Context, p Params) error { return doom3(ctx, p, true) }

func doom3(ctx *gl.Context, p Params, twoSided bool) error {
	texParams := gl.DefaultTexParams()
	texParams.MaxAniso = p.Aniso
	wallTex := ctx.TexImage2D(rockTexture(256, p.Seed+11), texemu.FmtDXT1, texParams)
	floorTex := ctx.TexImage2D(checkerTexture(256, 16,
		texemu.RGBA{110, 105, 95, 255}, texemu.RGBA{70, 66, 60, 255}), texemu.FmtRGBA8, texParams)

	// Room interior (normals pointing inward) and two box occluders.
	const roomW, roomH, roomD = 24.0, 10.0, 28.0
	var room Mesh
	rv := func(x, y, z float32, n v3, u, v float32) uint16 {
		return room.Add(Vertex{
			Pos: [3]float32{x, y, z}, Color: vmath.Vec4{1, 1, 1, 1},
			Normal: n, UV0: [2]float32{u, v},
		})
	}
	// Floor (y=0, normal +Y), winding CCW seen from inside (above).
	room.Quad(
		rv(-roomW/2, 0, 0, v3{0, 1, 0}, 0, 0),
		rv(roomW/2, 0, 0, v3{0, 1, 0}, 6, 0),
		rv(roomW/2, 0, -roomD, v3{0, 1, 0}, 6, 7),
		rv(-roomW/2, 0, -roomD, v3{0, 1, 0}, 0, 7),
	)
	floorEnd := len(room.Indices)
	// Back wall (z=-roomD, normal +Z).
	room.Quad(
		rv(-roomW/2, 0, -roomD, v3{0, 0, 1}, 0, 0),
		rv(roomW/2, 0, -roomD, v3{0, 0, 1}, 6, 0),
		rv(roomW/2, roomH, -roomD, v3{0, 0, 1}, 6, 2.5),
		rv(-roomW/2, roomH, -roomD, v3{0, 0, 1}, 0, 2.5),
	)
	// Left wall (x=-roomW/2, normal +X).
	room.Quad(
		rv(-roomW/2, 0, 0, v3{1, 0, 0}, 0, 0),
		rv(-roomW/2, 0, -roomD, v3{1, 0, 0}, 7, 0),
		rv(-roomW/2, roomH, -roomD, v3{1, 0, 0}, 7, 2.5),
		rv(-roomW/2, roomH, 0, v3{1, 0, 0}, 0, 2.5),
	)
	// Right wall (x=+roomW/2, normal -X).
	room.Quad(
		rv(roomW/2, 0, -roomD, v3{-1, 0, 0}, 0, 0),
		rv(roomW/2, 0, 0, v3{-1, 0, 0}, 7, 0),
		rv(roomW/2, roomH, 0, v3{-1, 0, 0}, 7, 2.5),
		rv(roomW/2, roomH, -roomD, v3{-1, 0, 0}, 0, 2.5),
	)
	roomBuf := room.Upload(ctx)
	_ = floorEnd

	boxes := []box{
		{center: v3{-4, 1.5, -14}, half: v3{1.5, 1.5, 1.5}},
		{center: v3{5, 2, -18}, half: v3{2, 2, 2}},
	}
	var boxMesh Mesh
	for _, b := range boxes {
		b.appendTo(&boxMesh)
	}
	boxBuf := boxMesh.Upload(ctx)

	lights := []light{
		{pos: v3{-6, 8, -8}, color: vmath.Vec4{0.9, 0.75, 0.55, 1}},
		{pos: v3{7, 8, -22}, color: vmath.Vec4{0.45, 0.55, 0.9, 1}},
	}

	// Shadow volumes are static (lights and occluders do not move):
	// build once and upload.
	volBufs := make([]MeshBuffers, 0, len(boxes)*len(lights))
	volFor := make([][]int, len(lights))
	for li, l := range lights {
		for _, b := range boxes {
			var vol Mesh
			buildShadowVolume(&vol, b, l.pos, 60)
			volFor[li] = append(volFor[li], len(volBufs))
			volBufs = append(volBufs, vol.Upload(ctx))
		}
	}

	// Fullscreen quad used to reset the stencil buffer between
	// lights by rendering (color and depth untouched), the classic
	// technique before dedicated stencil-only clears.
	var fsq Mesh
	fsq.Quad(
		fsq.Add(Vertex{Pos: [3]float32{-1, -1, 0}, Color: vmath.Vec4{1, 1, 1, 1}}),
		fsq.Add(Vertex{Pos: [3]float32{1, -1, 0}, Color: vmath.Vec4{1, 1, 1, 1}}),
		fsq.Add(Vertex{Pos: [3]float32{1, 1, 0}, Color: vmath.Vec4{1, 1, 1, 1}}),
		fsq.Add(Vertex{Pos: [3]float32{-1, 1, 0}, Color: vmath.Vec4{1, 1, 1, 1}}),
	)
	fsqBuf := fsq.Upload(ctx)

	aspect := float32(p.Width) / float32(p.Height)
	proj := vmath.Perspective(math.Pi/3, aspect, 0.5, 120)
	ctx.LoadProjection(proj)
	ctx.ClearColor(0, 0, 0, 1)

	drawScene := func(withBoxTex bool) {
		ctx.BindTexture(0, floorTex)
		roomBuf.Draw(ctx)
		if withBoxTex {
			ctx.BindTexture(0, wallTex)
		}
		boxBuf.Draw(ctx)
	}

	for f := 0; f < p.Frames; f++ {
		t := float32(f) * 0.15
		eye := vmath.Vec4{2 + 3*float32(math.Sin(float64(t))), 5, -2, 1}
		at := vmath.Vec4{0, 2, -16, 1}
		view := vmath.LookAt(eye, at, vmath.Vec4{0, 1, 0, 0})
		ctx.LoadModelView(view)

		ctx.Clear(gl.ColorBufferBit | gl.DepthBufferBit | gl.StencilBufferBit)

		// Pass 1: ambient + depth fill.
		ctx.Enable(gl.CapDepthTest)
		ctx.DepthFunc(fragemu.CmpLess)
		ctx.DepthMask(true)
		ctx.Disable(gl.CapBlend)
		ctx.Disable(gl.CapStencilTest)
		ctx.Enable(gl.CapCullFace)
		ctx.Enable(gl.CapTexture0)
		ctx.Enable(gl.CapLighting)
		// Dim ambient-only lighting for the base pass.
		ctx.Light(vmath.Vec4{0, 1, 0, 0}, vmath.Vec4{0, 0, 0, 1}, vmath.Vec4{0.18, 0.17, 0.16, 1})
		drawScene(true)

		for li, l := range lights {
			if li > 0 {
				// Stencil reset quad (identity transform path: draw
				// with an orthographic fullscreen setup).
				ctx.Disable(gl.CapTexture0)
				ctx.Disable(gl.CapLighting)
				ctx.Disable(gl.CapCullFace)
				ctx.Disable(gl.CapDepthTest)
				ctx.Enable(gl.CapStencilTest)
				ctx.StencilFunc(fragemu.CmpAlways, 0, 0xFF)
				ctx.StencilOp(fragemu.StReplace, fragemu.StReplace, fragemu.StReplace)
				ctx.ColorMask(false, false, false, false)
				ctx.LoadProjection(vmath.Identity())
				ctx.LoadModelView(vmath.Identity())
				fsqBuf.Draw(ctx)
				ctx.LoadProjection(proj)
				ctx.LoadModelView(view)
				ctx.ColorMask(true, true, true, true)
				ctx.Enable(gl.CapDepthTest)
				ctx.Enable(gl.CapCullFace)
				ctx.Enable(gl.CapTexture0)
				ctx.Enable(gl.CapLighting)
			}

			// Pass 2: carve the shadow volumes into stencil
			// (Carmack's reverse: z-fail increments on back faces,
			// decrements on front faces; depth and color locked).
			ctx.Enable(gl.CapStencilTest)
			ctx.ColorMask(false, false, false, false)
			ctx.DepthMask(false)
			ctx.Disable(gl.CapTexture0)
			ctx.Disable(gl.CapLighting)
			ctx.StencilFunc(fragemu.CmpAlways, 0, 0xFF)
			if twoSided {
				// Single pass: back faces increment, front faces
				// decrement on depth fail.
				ctx.Disable(gl.CapCullFace)
				ctx.StencilTwoSide(true)
				ctx.StencilOp(fragemu.StKeep, fragemu.StDecrWrap, fragemu.StKeep)
				ctx.StencilBackFunc(fragemu.CmpAlways, 0, 0xFF)
				ctx.StencilBackOp(fragemu.StKeep, fragemu.StIncrWrap, fragemu.StKeep)
				for _, vi := range volFor[li] {
					volBufs[vi].Draw(ctx)
				}
				ctx.StencilTwoSide(false)
				ctx.Enable(gl.CapCullFace)
			} else {
				for _, vi := range volFor[li] {
					ctx.CullFace(gl.CullFront) // render back faces
					ctx.StencilOp(fragemu.StKeep, fragemu.StIncrWrap, fragemu.StKeep)
					volBufs[vi].Draw(ctx)
					ctx.CullFace(gl.CullBack) // render front faces
					ctx.StencilOp(fragemu.StKeep, fragemu.StDecrWrap, fragemu.StKeep)
					volBufs[vi].Draw(ctx)
				}
			}

			// Pass 3: additive lit pass where stencil == 0.
			ctx.ColorMask(true, true, true, true)
			ctx.Enable(gl.CapTexture0)
			ctx.Enable(gl.CapLighting)
			ctx.Enable(gl.CapBlend)
			ctx.BlendFunc(fragemu.BfOne, fragemu.BfOne)
			ctx.DepthFunc(fragemu.CmpLEqual)
			ctx.StencilFunc(fragemu.CmpEqual, 0, 0xFF)
			ctx.StencilOp(fragemu.StKeep, fragemu.StKeep, fragemu.StKeep)
			// Directional approximation of the point light in eye
			// space.
			dir := norm3(sub3(l.pos, v3{0, 2, -16}))
			eyeDir := view.MulVec(vmath.Vec4{dir[0], dir[1], dir[2], 0})
			ctx.Light(eyeDir, l.color, vmath.Vec4{0, 0, 0, 1})
			drawScene(true)

			// Restore for next light / frame.
			ctx.Disable(gl.CapBlend)
			ctx.DepthFunc(fragemu.CmpLess)
			ctx.DepthMask(true)
			ctx.Disable(gl.CapStencilTest)
		}

		ctx.SwapBuffers()
	}
	return ctx.Err()
}

type light struct {
	pos   v3
	color vmath.Vec4
}

// box is an axis-aligned occluder.
type box struct {
	center v3
	half   v3
}

func (b box) corner(i int) v3 {
	sx := float32(1)
	if i&1 == 0 {
		sx = -1
	}
	sy := float32(1)
	if i&2 == 0 {
		sy = -1
	}
	sz := float32(1)
	if i&4 == 0 {
		sz = -1
	}
	return add3(b.center, v3{b.half[0] * sx, b.half[1] * sy, b.half[2] * sz})
}

// boxFaces lists each face's corner indices in CCW order seen from
// outside, with its outward normal.
var boxFaces = [6]struct {
	idx [4]int
	n   v3
}{
	{[4]int{4, 5, 7, 6}, v3{0, 0, 1}},  // +Z
	{[4]int{1, 0, 2, 3}, v3{0, 0, -1}}, // -Z
	{[4]int{5, 1, 3, 7}, v3{1, 0, 0}},  // +X
	{[4]int{0, 4, 6, 2}, v3{-1, 0, 0}}, // -X
	{[4]int{6, 7, 3, 2}, v3{0, 1, 0}},  // +Y
	{[4]int{0, 1, 5, 4}, v3{0, -1, 0}}, // -Y
}

// appendTo adds the box's faces to a mesh with per-face normals and
// simple planar UVs.
func (b box) appendTo(m *Mesh) {
	for _, face := range boxFaces {
		var ids [4]uint16
		for vi, ci := range face.idx {
			pos := b.corner(ci)
			ids[vi] = m.Add(Vertex{
				Pos: pos, Color: vmath.Vec4{1, 1, 1, 1},
				Normal: face.n,
				UV0:    [2]float32{pos[0]*0.5 + pos[2]*0.5, pos[1] * 0.5},
			})
		}
		m.Quad(ids[0], ids[1], ids[2], ids[3])
	}
}

// buildShadowVolume constructs a closed shadow volume mesh for a box
// occluder lit by a point light: the near cap (light-facing faces),
// the far cap (those faces projected away from the light, winding
// reversed) and side quads along the silhouette edges.
func buildShadowVolume(m *Mesh, b box, lightPos v3, extrude float32) {
	project := func(p v3) v3 {
		return add3(p, scale3(norm3(sub3(p, lightPos)), extrude))
	}
	front := [6]bool{}
	for fi, face := range boxFaces {
		faceCenter := scale3(add3(add3(b.corner(face.idx[0]), b.corner(face.idx[1])),
			add3(b.corner(face.idx[2]), b.corner(face.idx[3]))), 0.25)
		front[fi] = dot3(face.n, sub3(lightPos, faceCenter)) > 0
	}
	addQuad := func(a, bb, c, d v3, col vmath.Vec4) {
		i0 := m.Add(Vertex{Pos: a, Color: col})
		i1 := m.Add(Vertex{Pos: bb, Color: col})
		i2 := m.Add(Vertex{Pos: c, Color: col})
		i3 := m.Add(Vertex{Pos: d, Color: col})
		m.Quad(i0, i1, i2, i3)
	}
	white := vmath.Vec4{1, 1, 1, 1}
	for fi, face := range boxFaces {
		if !front[fi] {
			continue
		}
		c0 := b.corner(face.idx[0])
		c1 := b.corner(face.idx[1])
		c2 := b.corner(face.idx[2])
		c3 := b.corner(face.idx[3])
		// Near cap: the face itself.
		addQuad(c0, c1, c2, c3, white)
		// Far cap: projected, winding reversed.
		addQuad(project(c3), project(c2), project(c1), project(c0), white)
		// Sides along silhouette edges (edges shared with a back
		// face). Edge (a -> b) in this face's CCW winding.
		corners := [4]v3{c0, c1, c2, c3}
		for e := 0; e < 4; e++ {
			a := face.idx[e]
			bb := face.idx[(e+1)%4]
			if !edgeIsSilhouette(front, a, bb, fi) {
				continue
			}
			va, vb := corners[e], corners[(e+1)%4]
			addQuad(vb, va, project(va), project(vb), white)
		}
	}
}

// edgeIsSilhouette reports whether the edge (a, b) of face fi borders
// a back face.
func edgeIsSilhouette(front [6]bool, a, b, fi int) bool {
	for oi, other := range boxFaces {
		if oi == fi {
			continue
		}
		hasA, hasB := false, false
		for _, ci := range other.idx {
			if ci == a {
				hasA = true
			}
			if ci == b {
				hasB = true
			}
		}
		if hasA && hasB {
			return !front[oi]
		}
	}
	return false
}
