package fragemu

import "encoding/binary"

// Z cache line compression (paper §2.2, after the ATI Hot3D
// presentation and patent): a 256-byte line holds 64 depth-stencil
// elements (an 8x8 fragment tile). The lossless scheme is a
// first-order plane predictor (DDPCM-style): because z/w is linear in
// screen space, a tile covered by one triangle is predicted almost
// exactly by z(x, y) = z00 + x*dzdx + y*dzdy, leaving tiny residuals:
//
//	1:4 ratio —  64 bytes: 11-byte header + 64 residuals of 6 bits (48 B)
//	1:2 ratio — 128 bytes: 11-byte header + 64 residuals of 14 bits (112 B)
//
// The header stores the corner depth-stencil value, the two plane
// deltas and requires a uniform stencil across the tile (stencil
// varies exactly where compression would fail anyway: shadow volume
// boundaries). Lines that do not fit stay uncompressed. The
// compressor also reports the maximum depth in the line, which the Z
// cache feeds back to the Hierarchical Z buffer on eviction.

// ZBlockElems is the number of depth-stencil elements per cache line.
const ZBlockElems = 64

const zBlockEdge = 8

// CompLevel identifies the compression achieved for a line.
type CompLevel uint8

// Compression levels.
const (
	CompNone    CompLevel = iota // 256 bytes
	CompHalf                     // 1:2, 128 bytes
	CompQuarter                  // 1:4, 64 bytes
)

// Bytes returns the compressed size for the level.
func (l CompLevel) Bytes() int {
	switch l {
	case CompHalf:
		return 128
	case CompQuarter:
		return 64
	}
	return 256
}

const (
	quarterResidualBits = 6
	halfResidualBits    = 14
	zHeaderBytes        = 11
)

// planeFit computes the plane prediction parameters and residuals;
// ok=false when the line cannot be plane-compressed (non-uniform
// stencil or delta overflow).
func planeFit(vals *[ZBlockElems]uint32) (base uint32, dzdx, dzdy int32, residuals [ZBlockElems]int64, ok bool) {
	base = vals[0]
	_, stencil := UnpackDS(base)
	for _, v := range vals {
		if _, s := UnpackDS(v); s != stencil {
			return 0, 0, 0, residuals, false
		}
	}
	d := func(i int) int64 {
		depth, _ := UnpackDS(vals[i])
		return int64(depth)
	}
	dzdx64 := d(1) - d(0)
	dzdy64 := d(zBlockEdge) - d(0)
	const lim = 1 << 23
	if dzdx64 >= lim || dzdx64 < -lim || dzdy64 >= lim || dzdy64 < -lim {
		return 0, 0, 0, residuals, false
	}
	for y := 0; y < zBlockEdge; y++ {
		for x := 0; x < zBlockEdge; x++ {
			i := y*zBlockEdge + x
			pred := d(0) + int64(x)*dzdx64 + int64(y)*dzdy64
			residuals[i] = d(i) - pred
		}
	}
	return base, int32(dzdx64), int32(dzdy64), residuals, true
}

func residualsFit(residuals *[ZBlockElems]int64, bits int) bool {
	lim := int64(1) << (bits - 1)
	for _, r := range residuals {
		if r >= lim || r < -lim {
			return false
		}
	}
	return true
}

// CompressZBlock compresses 64 depth-stencil elements. It returns the
// achieved level, the compressed bytes (reusing dst when large
// enough; uncompressed lines are stored verbatim) and the maximum
// 24-bit depth in the block for the Hierarchical Z update.
func CompressZBlock(vals *[ZBlockElems]uint32, dst []byte) (CompLevel, []byte, uint32) {
	maxDepth := uint32(0)
	for _, v := range vals {
		if d, _ := UnpackDS(v); d > maxDepth {
			maxDepth = d
		}
	}
	level := CompNone
	bits := 0
	base, dzdx, dzdy, residuals, ok := planeFit(vals)
	if ok {
		switch {
		case residualsFit(&residuals, quarterResidualBits):
			level, bits = CompQuarter, quarterResidualBits
		case residualsFit(&residuals, halfResidualBits):
			level, bits = CompHalf, halfResidualBits
		}
	}
	if cap(dst) < level.Bytes() {
		dst = make([]byte, level.Bytes())
	}
	dst = dst[:level.Bytes()]
	if level == CompNone {
		for i, v := range vals {
			binary.LittleEndian.PutUint32(dst[i*4:], v)
		}
		return level, dst, maxDepth
	}
	for i := range dst {
		dst[i] = 0
	}
	binary.LittleEndian.PutUint32(dst, base)
	put24(dst[4:], uint32(dzdx)&0xFFFFFF)
	put24(dst[7:], uint32(dzdy)&0xFFFFFF)
	dst[10] = byte(bits)
	bitOff := zHeaderBytes * 8
	offset := int64(1) << (bits - 1)
	for _, r := range residuals {
		putBits(dst, bitOff, bits, uint32(r+offset))
		bitOff += bits
	}
	return level, dst, maxDepth
}

// DecompressZBlock expands a compressed line back into 64 elements.
// It is the exact inverse of CompressZBlock.
func DecompressZBlock(level CompLevel, src []byte, vals *[ZBlockElems]uint32) {
	if len(src) < level.Bytes() {
		panic("fragemu: short compressed z block")
	}
	if level == CompNone {
		for i := range vals {
			vals[i] = binary.LittleEndian.Uint32(src[i*4:])
		}
		return
	}
	base := binary.LittleEndian.Uint32(src)
	baseDepth, stencil := UnpackDS(base)
	dzdx := signExtend24(get24(src[4:]))
	dzdy := signExtend24(get24(src[7:]))
	bits := int(src[10])
	offset := int64(1) << (bits - 1)
	bitOff := zHeaderBytes * 8
	for y := 0; y < zBlockEdge; y++ {
		for x := 0; x < zBlockEdge; x++ {
			i := y*zBlockEdge + x
			r := int64(getBits(src, bitOff, bits)) - offset
			bitOff += bits
			depth := int64(baseDepth) + int64(x)*int64(dzdx) + int64(y)*int64(dzdy) + r
			vals[i] = PackDS(uint32(depth)&MaxDepth, stencil)
		}
	}
}

func put24(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
}

func get24(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16
}

func signExtend24(v uint32) int32 {
	if v&0x800000 != 0 {
		v |= 0xFF000000
	}
	return int32(v)
}

func putBits(buf []byte, off, n int, v uint32) {
	for i := 0; i < n; i++ {
		if v&(1<<i) != 0 {
			bit := off + i
			buf[bit>>3] |= 1 << (bit & 7)
		}
	}
}

func getBits(buf []byte, off, n int) uint32 {
	var v uint32
	for i := 0; i < n; i++ {
		bit := off + i
		if buf[bit>>3]&(1<<(bit&7)) != 0 {
			v |= 1 << i
		}
	}
	return v
}
