// Package fragemu implements the FragmentOperatorEmulator (paper §3):
// the depth and stencil test functions used by the Z and Stencil Test
// unit, the blend and update functions used by Color Write, value
// packing for the depth-stencil and color buffers, and the lossless
// compression algorithm (1:2 and 1:4 ratios) applied to Z cache lines
// (paper §2.2, based on the ATI Hot3D presentation and patent).
package fragemu

import (
	"fmt"

	"attila/internal/vmath"
)

// CompareFunc is a depth/stencil/alpha comparison function.
type CompareFunc uint8

// Comparison functions, matching the OpenGL enumeration semantics.
const (
	CmpNever CompareFunc = iota
	CmpLess
	CmpEqual
	CmpLEqual
	CmpGreater
	CmpNotEqual
	CmpGEqual
	CmpAlways
)

// Compare evaluates "value cmp ref"... per the GL convention the
// incoming (fragment) value is compared against the stored value, so
// the arguments are (incoming, stored).
func Compare(f CompareFunc, incoming, stored uint32) bool {
	switch f {
	case CmpNever:
		return false
	case CmpLess:
		return incoming < stored
	case CmpEqual:
		return incoming == stored
	case CmpLEqual:
		return incoming <= stored
	case CmpGreater:
		return incoming > stored
	case CmpNotEqual:
		return incoming != stored
	case CmpGEqual:
		return incoming >= stored
	case CmpAlways:
		return true
	}
	panic(fmt.Sprintf("fragemu: bad compare func %d", f))
}

// StencilOp is a stencil update operation.
type StencilOp uint8

// Stencil operations.
const (
	StKeep StencilOp = iota
	StZero
	StReplace
	StIncr
	StDecr
	StInvert
	StIncrWrap
	StDecrWrap
)

func applyStencilOp(op StencilOp, stored, ref uint8) uint8 {
	switch op {
	case StKeep:
		return stored
	case StZero:
		return 0
	case StReplace:
		return ref
	case StIncr:
		if stored == 255 {
			return 255
		}
		return stored + 1
	case StDecr:
		if stored == 0 {
			return 0
		}
		return stored - 1
	case StInvert:
		return ^stored
	case StIncrWrap:
		return stored + 1
	case StDecrWrap:
		return stored - 1
	}
	panic(fmt.Sprintf("fragemu: bad stencil op %d", op))
}

// DepthBits is the depth precision of the depth-stencil buffer: 24
// bits of depth plus 8 bits of stencil per element (paper §2.2).
const DepthBits = 24

// MaxDepth is the largest representable fixed-point depth value.
const MaxDepth = 1<<DepthBits - 1

// DepthToFixed converts a [0,1] float depth to 24-bit fixed point,
// clamping out-of-range values.
func DepthToFixed(z float32) uint32 {
	if z <= 0 {
		return 0
	}
	if z >= 1 {
		return MaxDepth
	}
	return uint32(z * float32(MaxDepth))
}

// PackDS packs depth and stencil into a 32-bit buffer element:
// depth in bits [31:8], stencil in [7:0].
func PackDS(depth uint32, stencil uint8) uint32 {
	return depth<<8 | uint32(stencil)
}

// UnpackDS splits a buffer element into depth and stencil.
func UnpackDS(v uint32) (depth uint32, stencil uint8) {
	return v >> 8, uint8(v)
}

// DepthState is the depth test configuration.
type DepthState struct {
	Enabled   bool
	Func      CompareFunc
	WriteMask bool
}

// StencilState is the stencil test configuration.
type StencilState struct {
	Enabled   bool
	Func      CompareFunc
	Ref       uint8
	ReadMask  uint8
	WriteMask uint8
	SFail     StencilOp // stencil test failed
	DPFail    StencilOp // stencil passed, depth failed
	DPPass    StencilOp // both passed
}

// ZStencilResult is the outcome of the combined test: whether the
// fragment survives and the updated depth-stencil element (the
// stencil may update even when the fragment is discarded).
type ZStencilResult struct {
	Pass bool
	Out  uint32
}

// ZStencilTest performs the OpenGL depth+stencil test and update for
// one fragment against the stored buffer element.
func ZStencilTest(ds DepthState, ss StencilState, fragDepth uint32, stored uint32) ZStencilResult {
	storedDepth, storedStencil := UnpackDS(stored)

	stencilPass := true
	if ss.Enabled {
		stencilPass = Compare(ss.Func, uint32(ss.Ref&ss.ReadMask), uint32(storedStencil&ss.ReadMask))
	}

	depthPass := true
	if ds.Enabled {
		depthPass = Compare(ds.Func, fragDepth, storedDepth)
	}

	newStencil := storedStencil
	if ss.Enabled {
		var op StencilOp
		switch {
		case !stencilPass:
			op = ss.SFail
		case !depthPass:
			op = ss.DPFail
		default:
			op = ss.DPPass
		}
		updated := applyStencilOp(op, storedStencil, ss.Ref)
		newStencil = storedStencil&^ss.WriteMask | updated&ss.WriteMask
	}

	newDepth := storedDepth
	pass := stencilPass && depthPass
	if pass && ds.Enabled && ds.WriteMask {
		newDepth = fragDepth
	}

	return ZStencilResult{Pass: pass, Out: PackDS(newDepth, newStencil)}
}

// BlendFactor is an OpenGL blend factor.
type BlendFactor uint8

// Blend factors.
const (
	BfZero BlendFactor = iota
	BfOne
	BfSrcColor
	BfOneMinusSrcColor
	BfDstColor
	BfOneMinusDstColor
	BfSrcAlpha
	BfOneMinusSrcAlpha
	BfDstAlpha
	BfOneMinusDstAlpha
	BfConstColor
	BfOneMinusConstColor
	BfConstAlpha
	BfOneMinusConstAlpha
	BfSrcAlphaSaturate
)

// BlendEq is an OpenGL blend equation.
type BlendEq uint8

// Blend equations.
const (
	BeAdd BlendEq = iota
	BeSubtract
	BeReverseSubtract
	BeMin
	BeMax
)

// BlendState is the framebuffer blend configuration.
type BlendState struct {
	Enabled        bool
	SrcRGB, DstRGB BlendFactor
	SrcA, DstA     BlendFactor
	EqRGB, EqA     BlendEq
	Const          vmath.Vec4
}

func factor(f BlendFactor, src, dst, cst vmath.Vec4) vmath.Vec4 {
	one := vmath.Vec4{1, 1, 1, 1}
	switch f {
	case BfZero:
		return vmath.Vec4{}
	case BfOne:
		return one
	case BfSrcColor:
		return src
	case BfOneMinusSrcColor:
		return one.Sub(src)
	case BfDstColor:
		return dst
	case BfOneMinusDstColor:
		return one.Sub(dst)
	case BfSrcAlpha:
		return vmath.Vec4{src[3], src[3], src[3], src[3]}
	case BfOneMinusSrcAlpha:
		a := 1 - src[3]
		return vmath.Vec4{a, a, a, a}
	case BfDstAlpha:
		return vmath.Vec4{dst[3], dst[3], dst[3], dst[3]}
	case BfOneMinusDstAlpha:
		a := 1 - dst[3]
		return vmath.Vec4{a, a, a, a}
	case BfConstColor:
		return cst
	case BfOneMinusConstColor:
		return one.Sub(cst)
	case BfConstAlpha:
		return vmath.Vec4{cst[3], cst[3], cst[3], cst[3]}
	case BfOneMinusConstAlpha:
		a := 1 - cst[3]
		return vmath.Vec4{a, a, a, a}
	case BfSrcAlphaSaturate:
		f := src[3]
		if d := 1 - dst[3]; d < f {
			f = d
		}
		return vmath.Vec4{f, f, f, 1}
	}
	panic(fmt.Sprintf("fragemu: bad blend factor %d", f))
}

func combine(eq BlendEq, s, d float32) float32 {
	switch eq {
	case BeAdd:
		return s + d
	case BeSubtract:
		return s - d
	case BeReverseSubtract:
		return d - s
	case BeMin:
		if s < d {
			return s
		}
		return d
	case BeMax:
		if s > d {
			return s
		}
		return d
	}
	panic(fmt.Sprintf("fragemu: bad blend equation %d", eq))
}

// Blend combines the fragment color (src) with the framebuffer color
// (dst) per the blend state and returns the clamped result. With
// blending disabled the source color is returned clamped (negative
// shader outputs must not wrap when quantized — one of the three
// Figure 10 bug classes).
func Blend(bs BlendState, src, dst vmath.Vec4) vmath.Vec4 {
	if !bs.Enabled {
		return src.Clamp01()
	}
	sf := factor(bs.SrcRGB, src, dst, bs.Const)
	df := factor(bs.DstRGB, src, dst, bs.Const)
	sfa := factor(bs.SrcA, src, dst, bs.Const)
	dfa := factor(bs.DstA, src, dst, bs.Const)
	var out vmath.Vec4
	for i := 0; i < 3; i++ {
		s, d := src[i], dst[i]
		if bs.EqRGB == BeMin || bs.EqRGB == BeMax {
			out[i] = combine(bs.EqRGB, s, d)
		} else {
			out[i] = combine(bs.EqRGB, s*sf[i], d*df[i])
		}
	}
	if bs.EqA == BeMin || bs.EqA == BeMax {
		out[3] = combine(bs.EqA, src[3], dst[3])
	} else {
		out[3] = combine(bs.EqA, src[3]*sfa[3], dst[3]*dfa[3])
	}
	return out.Clamp01()
}

// PackColor quantizes a float color to the RGBA8 framebuffer format.
func PackColor(v vmath.Vec4) [4]byte {
	q := func(f float32) byte {
		f = vmath.Clamp01(f)
		return byte(f*255 + 0.5)
	}
	return [4]byte{q(v[0]), q(v[1]), q(v[2]), q(v[3])}
}

// UnpackColor converts an RGBA8 framebuffer value to float.
func UnpackColor(c [4]byte) vmath.Vec4 {
	return vmath.Vec4{
		float32(c[0]) / 255,
		float32(c[1]) / 255,
		float32(c[2]) / 255,
		float32(c[3]) / 255,
	}
}

// ApplyColorMask merges the new color into the stored color honoring
// the per-channel write mask.
func ApplyColorMask(mask [4]bool, stored, incoming [4]byte) [4]byte {
	out := stored
	for i := 0; i < 4; i++ {
		if mask[i] {
			out[i] = incoming[i]
		}
	}
	return out
}
