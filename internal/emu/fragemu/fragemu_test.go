package fragemu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"attila/internal/vmath"
)

func TestCompareFuncs(t *testing.T) {
	cases := []struct {
		f        CompareFunc
		a, b     uint32
		expected bool
	}{
		{CmpNever, 1, 1, false},
		{CmpAlways, 1, 2, true},
		{CmpLess, 1, 2, true},
		{CmpLess, 2, 2, false},
		{CmpLEqual, 2, 2, true},
		{CmpEqual, 3, 3, true},
		{CmpEqual, 3, 4, false},
		{CmpGreater, 5, 4, true},
		{CmpGEqual, 4, 4, true},
		{CmpNotEqual, 4, 4, false},
		{CmpNotEqual, 4, 5, true},
	}
	for _, c := range cases {
		if got := Compare(c.f, c.a, c.b); got != c.expected {
			t.Errorf("Compare(%d, %d, %d) = %v", c.f, c.a, c.b, got)
		}
	}
}

func TestDepthConversion(t *testing.T) {
	if DepthToFixed(0) != 0 {
		t.Fatal("0 depth")
	}
	if DepthToFixed(1) != MaxDepth {
		t.Fatal("1 depth")
	}
	if DepthToFixed(-5) != 0 || DepthToFixed(7) != MaxDepth {
		t.Fatal("clamping")
	}
	mid := DepthToFixed(0.5)
	if mid < MaxDepth/2-1 || mid > MaxDepth/2+1 {
		t.Fatalf("mid depth: %d", mid)
	}
}

func TestPackUnpackDS(t *testing.T) {
	f := func(d uint32, s uint8) bool {
		d &= MaxDepth
		gd, gs := UnpackDS(PackDS(d, s))
		return gd == d && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDepthTestLess(t *testing.T) {
	ds := DepthState{Enabled: true, Func: CmpLess, WriteMask: true}
	stored := PackDS(1000, 0)
	r := ZStencilTest(ds, StencilState{}, 500, stored)
	if !r.Pass {
		t.Fatal("closer fragment rejected")
	}
	if d, _ := UnpackDS(r.Out); d != 500 {
		t.Fatalf("depth not written: %d", d)
	}
	r = ZStencilTest(ds, StencilState{}, 2000, stored)
	if r.Pass {
		t.Fatal("farther fragment passed")
	}
	if r.Out != stored {
		t.Fatal("failed fragment modified buffer")
	}
}

func TestDepthWriteMaskDisabled(t *testing.T) {
	ds := DepthState{Enabled: true, Func: CmpLess, WriteMask: false}
	r := ZStencilTest(ds, StencilState{}, 500, PackDS(1000, 7))
	if !r.Pass {
		t.Fatal("should pass")
	}
	if d, s := UnpackDS(r.Out); d != 1000 || s != 7 {
		t.Fatalf("buffer modified with write mask off: %d/%d", d, s)
	}
}

func TestStencilShadowVolumePattern(t *testing.T) {
	// Doom3-style: depth test LESS with write off, stencil INCR on
	// depth fail (Carmack's reverse uses DPFail).
	ds := DepthState{Enabled: true, Func: CmpLess, WriteMask: false}
	ss := StencilState{
		Enabled: true, Func: CmpAlways, Ref: 0, ReadMask: 0xFF, WriteMask: 0xFF,
		SFail: StKeep, DPFail: StIncr, DPPass: StKeep,
	}
	stored := PackDS(1000, 0)
	// Fragment behind the stored geometry: depth fails -> stencil increments.
	r := ZStencilTest(ds, ss, 2000, stored)
	if r.Pass {
		t.Fatal("depth-failed fragment should not pass")
	}
	if _, s := UnpackDS(r.Out); s != 1 {
		t.Fatalf("stencil after DPFail INCR: %d", s)
	}
	// Fragment in front: depth passes -> stencil kept.
	r = ZStencilTest(ds, ss, 500, stored)
	if !r.Pass {
		t.Fatal("depth-passed fragment rejected")
	}
	if _, s := UnpackDS(r.Out); s != 0 {
		t.Fatalf("stencil after DPPass KEEP: %d", s)
	}
}

func TestStencilOps(t *testing.T) {
	cases := []struct {
		op     StencilOp
		stored uint8
		ref    uint8
		want   uint8
	}{
		{StKeep, 5, 9, 5},
		{StZero, 5, 9, 0},
		{StReplace, 5, 9, 9},
		{StIncr, 5, 0, 6},
		{StIncr, 255, 0, 255},
		{StDecr, 5, 0, 4},
		{StDecr, 0, 0, 0},
		{StInvert, 0x0F, 0, 0xF0},
		{StIncrWrap, 255, 0, 0},
		{StDecrWrap, 0, 0, 255},
	}
	for _, c := range cases {
		if got := applyStencilOp(c.op, c.stored, c.ref); got != c.want {
			t.Errorf("op %d on %d: got %d want %d", c.op, c.stored, got, c.want)
		}
	}
}

func TestStencilMasks(t *testing.T) {
	ss := StencilState{
		Enabled: true, Func: CmpEqual, Ref: 0x13, ReadMask: 0x0F, WriteMask: 0xF0,
		SFail: StKeep, DPFail: StKeep, DPPass: StReplace,
	}
	// Read mask 0x0F: 0x13 & 0x0F == 0x03, stored 0xA3 & 0x0F == 0x03 -> pass.
	r := ZStencilTest(DepthState{}, ss, 0, PackDS(0, 0xA3))
	if !r.Pass {
		t.Fatal("masked compare should pass")
	}
	// Write mask 0xF0: replace writes ref=0x13 only in high nibble.
	if _, s := UnpackDS(r.Out); s != 0x13&0xF0|0xA3&0x0F {
		t.Fatalf("masked write: %02x", s)
	}
}

func TestBlendDisabledClampsNegative(t *testing.T) {
	// Figure 10 bug class: negative shader outputs must clamp, not wrap.
	out := Blend(BlendState{}, vmath.Vec4{-0.5, 0.5, 2, 1}, vmath.Vec4{})
	if out != (vmath.Vec4{0, 0.5, 1, 1}) {
		t.Fatalf("clamp: %v", out)
	}
}

func TestAlphaBlending(t *testing.T) {
	bs := BlendState{
		Enabled: true,
		SrcRGB:  BfSrcAlpha, DstRGB: BfOneMinusSrcAlpha,
		SrcA: BfOne, DstA: BfZero,
	}
	src := vmath.Vec4{1, 0, 0, 0.25}
	dst := vmath.Vec4{0, 1, 0, 1}
	out := Blend(bs, src, dst)
	want := vmath.Vec4{0.25, 0.75, 0, 0.25}
	for i := range want {
		if d := out[i] - want[i]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("alpha blend: %v want %v", out, want)
		}
	}
}

func TestAdditiveBlending(t *testing.T) {
	bs := BlendState{Enabled: true, SrcRGB: BfOne, DstRGB: BfOne, SrcA: BfOne, DstA: BfOne}
	out := Blend(bs, vmath.Vec4{0.7, 0.2, 0, 0.5}, vmath.Vec4{0.6, 0.1, 0, 0.6})
	if out[0] != 1 { // clamped
		t.Fatalf("additive clamp: %v", out)
	}
	if d := out[1] - 0.3; d > 1e-6 || d < -1e-6 {
		t.Fatalf("additive: %v", out)
	}
}

func TestBlendMinMaxIgnoresFactors(t *testing.T) {
	bs := BlendState{Enabled: true, SrcRGB: BfZero, DstRGB: BfZero, EqRGB: BeMax, EqA: BeMin}
	out := Blend(bs, vmath.Vec4{0.8, 0.1, 0.5, 0.9}, vmath.Vec4{0.3, 0.6, 0.5, 0.2})
	if out[0] != 0.8 || out[1] != 0.6 {
		t.Fatalf("max blend: %v", out)
	}
	if out[3] != 0.2 {
		t.Fatalf("min alpha: %v", out)
	}
}

func TestBlendConstFactors(t *testing.T) {
	bs := BlendState{
		Enabled: true,
		SrcRGB:  BfConstColor, DstRGB: BfZero, SrcA: BfConstAlpha, DstA: BfZero,
		Const: vmath.Vec4{0.5, 0.25, 1, 0.5},
	}
	out := Blend(bs, vmath.Vec4{1, 1, 0.5, 1}, vmath.Vec4{})
	want := vmath.Vec4{0.5, 0.25, 0.5, 0.5}
	for i := range want {
		if d := out[i] - want[i]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("const blend: %v want %v", out, want)
		}
	}
}

func TestColorPackUnpackRoundTrip(t *testing.T) {
	f := func(r, g, b, a uint8) bool {
		c := [4]byte{r, g, b, a}
		return PackColor(UnpackColor(c)) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApplyColorMask(t *testing.T) {
	stored := [4]byte{1, 2, 3, 4}
	incoming := [4]byte{9, 9, 9, 9}
	got := ApplyColorMask([4]bool{true, false, true, false}, stored, incoming)
	if got != [4]byte{9, 2, 9, 4} {
		t.Fatalf("mask: %v", got)
	}
}

func TestZCompressClearBlock(t *testing.T) {
	var vals [ZBlockElems]uint32
	clear := PackDS(MaxDepth, 0)
	for i := range vals {
		vals[i] = clear
	}
	level, data, maxD := CompressZBlock(&vals, nil)
	if level != CompQuarter {
		t.Fatalf("uniform block level: %v", level)
	}
	if len(data) != 64 {
		t.Fatalf("1:4 size: %d", len(data))
	}
	if maxD != MaxDepth {
		t.Fatalf("max depth: %d", maxD)
	}
	var back [ZBlockElems]uint32
	DecompressZBlock(level, data, &back)
	if back != vals {
		t.Fatal("clear block roundtrip mismatch")
	}
}

func TestZCompressPlanarBlock(t *testing.T) {
	// A tile covered by one triangle has exactly planar depth: the
	// plane predictor leaves zero residuals -> 1:4.
	var vals [ZBlockElems]uint32
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			depth := uint32(500000 + x*4213 + y*977)
			vals[y*8+x] = PackDS(depth, 5)
		}
	}
	level, data, _ := CompressZBlock(&vals, nil)
	if level != CompQuarter {
		t.Fatalf("planar block level: %v", level)
	}
	var back [ZBlockElems]uint32
	DecompressZBlock(level, data, &back)
	if back != vals {
		t.Fatal("planar roundtrip mismatch")
	}
}

func TestZCompressLevels(t *testing.T) {
	// Plane + medium residual noise: fits 14 bits but not 6 -> 1:2.
	var vals [ZBlockElems]uint32
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			i := y*8 + x
			noise := int(i*113%4000) - 2000
			depth := uint32(2000000 + x*5000 + y*900 + noise)
			vals[i] = PackDS(depth, 7)
		}
	}
	level, data, _ := CompressZBlock(&vals, nil)
	if level != CompHalf {
		t.Fatalf("expected 1:2, got %v", level)
	}
	if len(data) != 128 {
		t.Fatalf("1:2 size: %d", len(data))
	}
	var back [ZBlockElems]uint32
	DecompressZBlock(level, data, &back)
	if back != vals {
		t.Fatal("1:2 roundtrip mismatch")
	}
	// Wildly non-planar data: uncompressed.
	for i := range vals {
		vals[i] = PackDS(uint32(i*i*i*997%MaxDepth), 7)
	}
	level, data, _ = CompressZBlock(&vals, nil)
	if level != CompNone || len(data) != 256 {
		t.Fatalf("wide block: %v/%d", level, len(data))
	}
	DecompressZBlock(level, data, &back)
	if back != vals {
		t.Fatal("uncompressed roundtrip mismatch")
	}
}

func TestZCompressNonUniformStencilUncompressed(t *testing.T) {
	var vals [ZBlockElems]uint32
	for i := range vals {
		vals[i] = PackDS(1000, uint8(i&1))
	}
	level, data, _ := CompressZBlock(&vals, nil)
	if level != CompNone {
		t.Fatalf("varying stencil compressed: %v", level)
	}
	var back [ZBlockElems]uint32
	DecompressZBlock(level, data, &back)
	if back != vals {
		t.Fatal("roundtrip mismatch")
	}
}

func TestZCompressRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var vals [ZBlockElems]uint32
		base := rng.Uint32()
		spreadBits := uint(rng.Intn(33))
		for i := range vals {
			delta := uint32(0)
			if spreadBits > 0 {
				delta = uint32(rng.Int63()) & (1<<spreadBits - 1)
			}
			vals[i] = base + delta
		}
		level, data, maxD := CompressZBlock(&vals, nil)
		var back [ZBlockElems]uint32
		DecompressZBlock(level, data, &back)
		if back != vals {
			t.Fatalf("trial %d (spread %d bits, level %v): roundtrip mismatch", trial, spreadBits, level)
		}
		wantMax := uint32(0)
		for _, v := range vals {
			if d, _ := UnpackDS(v); d > wantMax {
				wantMax = d
			}
		}
		if maxD != wantMax {
			t.Fatalf("trial %d: max depth %d want %d", trial, maxD, wantMax)
		}
	}
}

func TestZCompressReusesBuffer(t *testing.T) {
	var vals [ZBlockElems]uint32
	buf := make([]byte, 256)
	_, data, _ := CompressZBlock(&vals, buf)
	if &data[0] != &buf[0] {
		t.Fatal("buffer not reused")
	}
}
