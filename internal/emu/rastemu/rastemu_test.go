package rastemu

import (
	"math"
	"math/rand"
	"testing"

	"attila/internal/vmath"
)

var vp = Viewport{X: 0, Y: 0, W: 64, H: 64, Near: 0, Far: 1}

// tri builds a triangle directly from NDC-like coordinates (w=1).
func tri(t *testing.T, p0, p1, p2 [3]float32) Triangle {
	t.Helper()
	clip := [3]vmath.Vec4{
		{p0[0], p0[1], p0[2], 1},
		{p1[0], p1[1], p1[2], 1},
		{p2[0], p2[1], p2[2], 1},
	}
	tr, ok := Setup(clip, vp, false, false)
	if !ok {
		t.Fatal("setup rejected valid triangle")
	}
	return tr
}

func TestSetupRejectsDegenerate(t *testing.T) {
	clip := [3]vmath.Vec4{{0, 0, 0, 1}, {0, 0, 0, 1}, {0, 0, 0, 1}}
	if _, ok := Setup(clip, vp, false, false); ok {
		t.Fatal("degenerate accepted")
	}
	// w <= 0 rejected.
	clip = [3]vmath.Vec4{{0, 0, 0, 1}, {1, 0, 0, -1}, {0, 1, 0, 1}}
	if _, ok := Setup(clip, vp, false, false); ok {
		t.Fatal("negative w accepted")
	}
}

func TestFaceCulling(t *testing.T) {
	ccw := [3]vmath.Vec4{{-1, -1, 0, 1}, {1, -1, 0, 1}, {0, 1, 0, 1}}
	cw := [3]vmath.Vec4{ccw[0], ccw[2], ccw[1]}
	if tr, ok := Setup(ccw, vp, false, false); !ok || !tr.FrontFacing {
		t.Fatal("CCW should be front facing")
	}
	if tr, ok := Setup(cw, vp, false, false); !ok || tr.FrontFacing {
		t.Fatal("CW should be back facing")
	}
	if _, ok := Setup(cw, vp, false, true); ok {
		t.Fatal("backface not culled")
	}
	if _, ok := Setup(ccw, vp, true, false); ok {
		t.Fatal("frontface not culled")
	}
	if _, ok := Setup(ccw, vp, false, true); !ok {
		t.Fatal("frontface wrongly culled by cullBack")
	}
}

func TestFullscreenTriangleCoversViewport(t *testing.T) {
	// A triangle covering the whole viewport: every pixel inside.
	tr := tri(t, [3]float32{-3, -3, 0}, [3]float32{3, -3, 0}, [3]float32{0, 3, 0})
	for y := 0; y < 64; y += 7 {
		for x := 0; x < 64; x += 7 {
			if !tr.Inside(tr.EvalEdges(x, y)) {
				t.Fatalf("pixel (%d,%d) not covered", x, y)
			}
		}
	}
}

func TestHalfViewportCoverage(t *testing.T) {
	// Right half triangle: NDC x >= 0 region roughly.
	tr := tri(t, [3]float32{0, -1, 0}, [3]float32{1, -1, 0}, [3]float32{0, 1, 0})
	in := tr.Inside(tr.EvalEdges(40, 24)) // inside the wedge
	out := tr.Inside(tr.EvalEdges(10, 32))
	if !in || out {
		t.Fatalf("coverage wrong: in=%v out=%v", in, out)
	}
}

// Two triangles sharing a diagonal must cover every pixel of the quad
// exactly once (watertight rasterization: shared edges never double
// increment stencil, never leave cracks).
func TestSharedEdgeExactness(t *testing.T) {
	quads := [][2][3][3]float32{
		{ // diagonal from (-1,-1) to (1,1)
			{{-1, -1, 0}, {1, -1, 0}, {1, 1, 0}},
			{{-1, -1, 0}, {1, 1, 0}, {-1, 1, 0}},
		},
		{ // opposite diagonal
			{{-1, -1, 0}, {1, -1, 0}, {-1, 1, 0}},
			{{1, -1, 0}, {1, 1, 0}, {-1, 1, 0}},
		},
	}
	for qi, q := range quads {
		t1 := tri(t, q[0][0], q[0][1], q[0][2])
		t2 := tri(t, q[1][0], q[1][1], q[1][2])
		for y := 0; y < 64; y++ {
			for x := 0; x < 64; x++ {
				n := 0
				if t1.Inside(t1.EvalEdges(x, y)) {
					n++
				}
				if t2.Inside(t2.EvalEdges(x, y)) {
					n++
				}
				if n != 1 {
					t.Fatalf("quad %d pixel (%d,%d) covered %d times", qi, x, y, n)
				}
			}
		}
	}
}

// Random triangle meshes sharing edges must also be watertight.
func TestSharedEdgeExactnessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		// A fan of two triangles around a shared random edge.
		a := [3]float32{rng.Float32()*2 - 1, rng.Float32()*2 - 1, 0}
		b := [3]float32{rng.Float32()*2 - 1, rng.Float32()*2 - 1, 0}
		c := [3]float32{rng.Float32()*2 - 1, rng.Float32()*2 - 1, 0}
		d := [3]float32{rng.Float32()*2 - 1, rng.Float32()*2 - 1, 0}
		// Triangles (a,b,c) and (a,c,d)? They share edge a-c but may
		// overlap if d is on the same side as b; force opposite sides
		// by mirroring d across the a-c line sign check.
		side := func(p [3]float32) float32 {
			return (c[0]-a[0])*(p[1]-a[1]) - (c[1]-a[1])*(p[0]-a[0])
		}
		if side(b) == 0 || side(d) == 0 {
			continue
		}
		if (side(b) > 0) == (side(d) > 0) {
			// mirror d
			continue
		}
		clip1 := [3]vmath.Vec4{{a[0], a[1], 0, 1}, {b[0], b[1], 0, 1}, {c[0], c[1], 0, 1}}
		clip2 := [3]vmath.Vec4{{a[0], a[1], 0, 1}, {c[0], c[1], 0, 1}, {d[0], d[1], 0, 1}}
		t1, ok1 := Setup(clip1, vp, false, false)
		t2, ok2 := Setup(clip2, vp, false, false)
		if !ok1 || !ok2 {
			continue
		}
		for y := 0; y < 64; y++ {
			for x := 0; x < 64; x++ {
				e1 := t1.EvalEdges(x, y)
				e2 := t2.EvalEdges(x, y)
				// Only check pixels exactly on the shared edge:
				// where both edge values vanish-ish we can't assert
				// with floats, so assert no double coverage.
				if t1.Inside(e1) && t2.Inside(e2) {
					// Allow only if genuinely interior to both due
					// to fp noise right at the edge.
					if math.Abs(float64(e1[2])) > 1e-3 && math.Abs(float64(e2[0])) > 1e-3 {
						t.Fatalf("trial %d pixel (%d,%d) covered twice", trial, x, y)
					}
				}
			}
		}
	}
}

func TestDepthPlane(t *testing.T) {
	// Triangle with z varying across x: left z=0, right z=1.
	tr := tri(t, [3]float32{-1, -1, -1}, [3]float32{1, -1, 1}, [3]float32{-1, 3, -1})
	// At NDC x=-1 (pixel 0), depth ~ 0; at x=1 (pixel 63) ~ 1.
	zLeft := tr.Depth(0, 0)
	zRight := tr.Depth(63, 0)
	if zLeft > 0.05 || zRight < 0.95 {
		t.Fatalf("depth gradient: left %v right %v", zLeft, zRight)
	}
}

func TestInterpolationAtVertices(t *testing.T) {
	// Attribute must reproduce vertex values at the vertices.
	clip := [3]vmath.Vec4{{-1, -1, 0, 1}, {1, -1, 0, 1}, {-1, 1, 0, 1}}
	tr, ok := Setup(clip, vp, false, false)
	if !ok {
		t.Fatal("setup failed")
	}
	attrs := [3]vmath.Vec4{{1, 0, 0, 1}, {0, 1, 0, 1}, {0, 0, 1, 1}}
	// Pixel at the first vertex (0,0 in window space).
	got := tr.Interpolate(tr.EvalEdges(0, 0), &attrs)
	if math.Abs(float64(got[0]-1)) > 0.05 {
		t.Fatalf("vertex 0 attr: %v", got)
	}
	got = tr.Interpolate(tr.EvalEdges(63, 0), &attrs)
	if math.Abs(float64(got[1]-1)) > 0.06 {
		t.Fatalf("vertex 1 attr: %v", got)
	}
}

func TestPerspectiveCorrectInterpolation(t *testing.T) {
	// Two vertices at different w: the attribute midpoint in screen
	// space must be biased toward the near (small w) vertex.
	clip := [3]vmath.Vec4{
		{-1, -1, 0, 1}, // near, w=1
		{4, -4, 0, 4},  // far, w=4 (NDC (1,-1))
		{-1, 1, 0, 1},
	}
	tr, ok := Setup(clip, vp, false, false)
	if !ok {
		t.Fatal("setup failed")
	}
	attrs := [3]vmath.Vec4{{0, 0, 0, 0}, {1, 1, 1, 1}, {0, 0, 0, 0}}
	// Midpoint of the bottom edge (pixel x=31, y=0).
	e := tr.EvalEdges(31, 0)
	got := tr.Interpolate(e, &attrs)
	lin := tr.InterpolateLinear(e, &attrs)
	if got[0] >= lin[0] {
		t.Fatalf("perspective correction missing: persp %v linear %v", got[0], lin[0])
	}
	// 1/w interpolation: at screen midpoint, u_persp = (0.5/4)/(0.5*1+0.5/4)
	want := float32(0.125 / 0.625)
	if math.Abs(float64(got[0]-want)) > 0.03 {
		t.Fatalf("perspective value: got %v want %v", got[0], want)
	}
}

func TestBarycentricPartitionOfUnity(t *testing.T) {
	tr := tri(t, [3]float32{-0.8, -0.7, 0}, [3]float32{0.9, -0.5, 0}, [3]float32{0, 0.8, 0})
	for y := 10; y < 50; y += 5 {
		for x := 10; x < 50; x += 5 {
			e := tr.EvalEdges(x, y)
			sum := (e[0] + e[1] + e[2]) / tr.Area
			if math.Abs(float64(sum-1)) > 1e-4 {
				t.Fatalf("barycentric sum at (%d,%d): %v", x, y, sum)
			}
		}
	}
}

func TestTileIntersects(t *testing.T) {
	// Small triangle near the center: tiles far away must be
	// rejected, the containing tile accepted.
	tr := tri(t, [3]float32{-0.1, -0.1, 0}, [3]float32{0.1, -0.1, 0}, [3]float32{0, 0.1, 0})
	if !tr.TileIntersects(24, 24, 16) {
		t.Fatal("containing tile rejected")
	}
	if tr.TileIntersects(0, 0, 8) {
		t.Fatal("far tile accepted")
	}
	if tr.TileIntersects(48, 48, 8) {
		t.Fatal("far tile accepted (2)")
	}
}

func TestTileIntersectsIsConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		p := func() [3]float32 {
			return [3]float32{rng.Float32()*2 - 1, rng.Float32()*2 - 1, 0}
		}
		clip := [3]vmath.Vec4{}
		pts := [3][3]float32{p(), p(), p()}
		for i, q := range pts {
			clip[i] = vmath.Vec4{q[0], q[1], 0, 1}
		}
		tr, ok := Setup(clip, vp, false, false)
		if !ok {
			continue
		}
		for ty := 0; ty < 64; ty += 8 {
			for tx := 0; tx < 64; tx += 8 {
				if tr.TileIntersects(tx, ty, 8) {
					continue
				}
				// Rejected tile must contain no covered pixel.
				for y := ty; y < ty+8; y++ {
					for x := tx; x < tx+8; x++ {
						if tr.Inside(tr.EvalEdges(x, y)) {
							t.Fatalf("trial %d: tile (%d,%d) rejected but pixel (%d,%d) covered",
								trial, tx, ty, x, y)
						}
					}
				}
			}
		}
	}
}

func TestTileMinDepthIsLowerBound(t *testing.T) {
	tr := tri(t, [3]float32{-1, -1, -0.8}, [3]float32{1, -1, 0.6}, [3]float32{0, 1, 0.9})
	for ty := 0; ty < 64; ty += 8 {
		for tx := 0; tx < 64; tx += 8 {
			min := tr.TileMinDepth(tx, ty, 8)
			for y := ty; y < ty+8; y++ {
				for x := tx; x < tx+8; x++ {
					if d := tr.Depth(x, y); d < min-1e-4 {
						t.Fatalf("tile (%d,%d): depth %v below bound %v", tx, ty, d, min)
					}
				}
			}
		}
	}
}

func TestBoundingBoxClamped(t *testing.T) {
	tr := tri(t, [3]float32{-5, -5, 0}, [3]float32{5, -5, 0}, [3]float32{0, 5, 0})
	if tr.MinX < 0 || tr.MinY < 0 || tr.MaxX > 63 || tr.MaxY > 63 {
		t.Fatalf("bbox not clamped: %d,%d..%d,%d", tr.MinX, tr.MinY, tr.MaxX, tr.MaxY)
	}
	small := tri(t, [3]float32{0, 0, 0}, [3]float32{0.2, 0, 0}, [3]float32{0, 0.2, 0})
	if small.MinX < 30 || small.MaxX > 40 {
		t.Fatalf("small bbox wrong: %d..%d", small.MinX, small.MaxX)
	}
}
