// Package rastemu implements the triangle setup and interpolation
// mathematics shared by the Triangle Setup, Fragment Generator and
// Interpolator boxes and by the functional reference renderer: screen
// space edge equations following the 2D homogeneous rasterization
// formulation of Olano and Greer (paper §2.2, [14]), the linear z/w
// interpolation equation, conservative tile tests for the recursive
// rasterizer and Hierarchical Z, and OpenGL perspective-corrected
// attribute interpolation (paper [5]).
package rastemu

import (
	"attila/internal/vmath"
)

// Viewport is the window transform: pixel rectangle plus depth range.
type Viewport struct {
	X, Y, W, H int
	Near, Far  float32 // depth range, usually [0,1]
}

// Triangle is a set-up triangle ready for rasterization: three edge
// equations positive inside, a screen-linear depth plane, per-vertex
// 1/w for perspective correction and a pixel bounding box.
type Triangle struct {
	// Edge equations: Ei(x, y) = A[i]*x + B[i]*y + C[i], >= 0 inside
	// (boundary ownership decided by the top-left fill rule).
	A, B, C [3]float32
	// Depth plane: z(x, y) = ZA*x + ZB*y + ZC (z/w is linear in
	// screen space, which is what makes the plane equation exact).
	ZA, ZB, ZC float32
	// Per-vertex 1/w for perspective-correct interpolation.
	InvW [3]float32
	// Pixel bounding box, clamped to the viewport (inclusive).
	MinX, MinY, MaxX, MaxY int
	// Area is twice the signed screen-space area after winding
	// normalization (always > 0 for accepted triangles).
	Area float32
	// FrontFacing reports the winding before normalization (CCW in
	// GL window coordinates = front under the default convention).
	FrontFacing bool
	topLeft     [3]bool
}

// MinW is the smallest vertex w accepted by Setup. Like the paper's
// rasterizer, only trivial frustum rejection is performed upstream,
// so triangles crossing the w=0 plane cannot be rasterized correctly
// and are dropped here.
const MinW = 1e-6

// Setup builds a Triangle from three clip-space positions. ok is
// false when the triangle must be culled: a vertex with w <= MinW,
// zero area, or (when cullBack/cullFront is set) facing rejection.
func Setup(clip [3]vmath.Vec4, vp Viewport, cullFront, cullBack bool) (tri Triangle, ok bool) {
	var sx, sy, sz [3]float32
	for i := 0; i < 3; i++ {
		w := clip[i][3]
		if w <= MinW {
			return tri, false
		}
		invW := 1 / w
		tri.InvW[i] = invW
		ndcX := clip[i][0] * invW
		ndcY := clip[i][1] * invW
		ndcZ := clip[i][2] * invW
		sx[i] = float32(vp.X) + (ndcX+1)*float32(vp.W)/2
		sy[i] = float32(vp.Y) + (ndcY+1)*float32(vp.H)/2
		sz[i] = vp.Near + (ndcZ+1)*(vp.Far-vp.Near)/2
	}

	// Edge i is opposite vertex i: edge 0 runs v1->v2, etc. With
	// this assignment Ei evaluated at vertex i equals twice the
	// signed area, so the barycentric weight of vertex i is Ei/area.
	edges := [3][2]int{{1, 2}, {2, 0}, {0, 1}}
	for i, e := range edges {
		p, q := e[0], e[1]
		tri.A[i] = sy[p] - sy[q]
		tri.B[i] = sx[q] - sx[p]
		tri.C[i] = sx[p]*sy[q] - sx[q]*sy[p]
	}
	area := tri.A[0]*sx[0] + tri.B[0]*sy[0] + tri.C[0]

	// GL window coordinates have y up; a positive doubled area means
	// counterclockwise winding, the default front face.
	tri.FrontFacing = area > 0
	if tri.FrontFacing && cullFront || !tri.FrontFacing && cullBack {
		return tri, false
	}
	if area < 0 {
		for i := 0; i < 3; i++ {
			tri.A[i], tri.B[i], tri.C[i] = -tri.A[i], -tri.B[i], -tri.C[i]
		}
		area = -area
	}
	if area < 1e-8 {
		return tri, false
	}
	tri.Area = area

	// Top-left fill rule so adjacent triangles own shared-edge
	// pixels exactly once: a boundary pixel belongs to the triangle
	// whose edge is a "left" edge (interior to its +x side: A > 0)
	// or a "top" edge (horizontal with interior below in y-up
	// coordinates: A == 0 && B < 0).
	for i := 0; i < 3; i++ {
		tri.topLeft[i] = tri.A[i] > 0 || (tri.A[i] == 0 && tri.B[i] < 0)
	}

	// Depth plane coefficients via the barycentric identity
	// z = sum(Ei * zi) / area.
	inv := 1 / area
	tri.ZA = (tri.A[0]*sz[0] + tri.A[1]*sz[1] + tri.A[2]*sz[2]) * inv
	tri.ZB = (tri.B[0]*sz[0] + tri.B[1]*sz[1] + tri.B[2]*sz[2]) * inv
	tri.ZC = (tri.C[0]*sz[0] + tri.C[1]*sz[1] + tri.C[2]*sz[2]) * inv

	// Pixel bounding box clamped to the viewport.
	minX, maxX := sx[0], sx[0]
	minY, maxY := sy[0], sy[0]
	for i := 1; i < 3; i++ {
		if sx[i] < minX {
			minX = sx[i]
		}
		if sx[i] > maxX {
			maxX = sx[i]
		}
		if sy[i] < minY {
			minY = sy[i]
		}
		if sy[i] > maxY {
			maxY = sy[i]
		}
	}
	tri.MinX = clampI(int(minX), vp.X, vp.X+vp.W-1)
	tri.MaxX = clampI(int(maxX), vp.X, vp.X+vp.W-1)
	tri.MinY = clampI(int(minY), vp.Y, vp.Y+vp.H-1)
	tri.MaxY = clampI(int(maxY), vp.Y, vp.Y+vp.H-1)
	return tri, true
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// EvalEdges evaluates the three edge equations at the center of pixel
// (x, y).
func (t *Triangle) EvalEdges(x, y int) [3]float32 {
	px, py := float32(x)+0.5, float32(y)+0.5
	var e [3]float32
	for i := 0; i < 3; i++ {
		e[i] = t.A[i]*px + t.B[i]*py + t.C[i]
	}
	return e
}

// Inside reports whether a pixel with the given edge values is
// covered, applying the top-left rule on boundaries.
func (t *Triangle) Inside(e [3]float32) bool {
	for i := 0; i < 3; i++ {
		if e[i] < 0 {
			return false
		}
		if e[i] == 0 && !t.topLeft[i] {
			return false
		}
	}
	return true
}

// Depth evaluates the depth plane at the center of pixel (x, y); the
// result is in viewport depth-range units ([0,1] by default).
func (t *Triangle) Depth(x, y int) float32 {
	px, py := float32(x)+0.5, float32(y)+0.5
	return t.ZA*px + t.ZB*py + t.ZC
}

// Interpolate computes the perspective-corrected attribute value for
// a pixel given its edge values: the OpenGL formula
// sum(li * ai / wi) / sum(li / wi) with barycentrics li = ei / area.
func (t *Triangle) Interpolate(e [3]float32, attrs *[3]vmath.Vec4) vmath.Vec4 {
	w0 := e[0] * t.InvW[0]
	w1 := e[1] * t.InvW[1]
	w2 := e[2] * t.InvW[2]
	den := w0 + w1 + w2
	if den == 0 {
		return attrs[0]
	}
	inv := 1 / den
	var out vmath.Vec4
	for c := 0; c < 4; c++ {
		out[c] = (w0*attrs[0][c] + w1*attrs[1][c] + w2*attrs[2][c]) * inv
	}
	return out
}

// InterpolateLinear computes screen-linear (non-perspective)
// interpolation; used for depth-like attributes.
func (t *Triangle) InterpolateLinear(e [3]float32, attrs *[3]vmath.Vec4) vmath.Vec4 {
	inv := 1 / t.Area
	var out vmath.Vec4
	for c := 0; c < 4; c++ {
		out[c] = (e[0]*attrs[0][c] + e[1]*attrs[1][c] + e[2]*attrs[2][c]) * inv
	}
	return out
}

// TileIntersects conservatively tests whether the size x size pixel
// tile anchored at (x0, y0) can contain covered pixels: for each
// edge, the most-inside corner must be non-negative. Used by the
// recursive fragment generator's descend test.
func (t *Triangle) TileIntersects(x0, y0, size int) bool {
	fx0, fy0 := float32(x0)+0.5, float32(y0)+0.5
	fx1 := fx0 + float32(size-1)
	fy1 := fy0 + float32(size-1)
	for i := 0; i < 3; i++ {
		x := fx0
		if t.A[i] > 0 {
			x = fx1
		}
		y := fy0
		if t.B[i] > 0 {
			y = fy1
		}
		if t.A[i]*x+t.B[i]*y+t.C[i] < 0 {
			return false
		}
	}
	return true
}

// TileMinDepth returns a conservative lower bound of the triangle's
// depth within the tile: the minimum of the depth plane over the tile
// corners. Fed to the Hierarchical Z test.
func (t *Triangle) TileMinDepth(x0, y0, size int) float32 {
	x := float32(x0) + 0.5
	y := float32(y0) + 0.5
	if t.ZA > 0 {
		// plane decreases toward smaller x; min at left edge already
	} else {
		x += float32(size - 1)
	}
	if t.ZB > 0 {
	} else {
		y += float32(size - 1)
	}
	return t.ZA*x + t.ZB*y + t.ZC
}
