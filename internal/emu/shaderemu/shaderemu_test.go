package shaderemu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"attila/internal/isa"
	"attila/internal/vmath"
)

func runProgram(t *testing.T, kind isa.ProgramKind, src string, consts []vmath.Vec4,
	inputs [isa.MaxInputs]vmath.Vec4, sample SampleFunc) *Thread {
	t.Helper()
	prog, err := isa.Assemble(kind, "test", src)
	if err != nil {
		t.Fatal(err)
	}
	e := New(prog, consts)
	th := e.NewThread()
	th.Active[0] = true
	th.In[0] = inputs
	if _, err := e.Run(th, sample); err != nil {
		t.Fatal(err)
	}
	return th
}

func vecNear(a, b vmath.Vec4, eps float64) bool {
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > eps {
			return false
		}
	}
	return true
}

func TestBasicALU(t *testing.T) {
	var in [isa.MaxInputs]vmath.Vec4
	in[0] = vmath.Vec4{1, 2, 3, 4}
	in[1] = vmath.Vec4{10, 20, 30, 40}
	th := runProgram(t, isa.VertexProgram, `
ADD r0, v0, v1
MUL r1, v0, v1
MAD r2, v0, v1, r0
SUB r3, v1, v0
MOV o0, r2
MOV o1, r3
END`, nil, in, nil)
	if th.Out[0][0] != (vmath.Vec4{21, 62, 123, 204}) {
		t.Fatalf("MAD result: %v", th.Out[0][0])
	}
	if th.Out[0][1] != (vmath.Vec4{9, 18, 27, 36}) {
		t.Fatalf("SUB result: %v", th.Out[0][1])
	}
}

func TestDotProducts(t *testing.T) {
	var in [isa.MaxInputs]vmath.Vec4
	in[0] = vmath.Vec4{1, 2, 3, 4}
	in[1] = vmath.Vec4{5, 6, 7, 8}
	th := runProgram(t, isa.VertexProgram, `
DP3 o0.x, v0, v1
DP4 o0.y, v0, v1
DPH o0.z, v0, v1
END`, nil, in, nil)
	got := th.Out[0][0]
	if got[0] != 38 || got[1] != 70 || got[2] != 46 {
		t.Fatalf("dots: %v", got)
	}
}

func TestSwizzleNegateSaturate(t *testing.T) {
	var in [isa.MaxInputs]vmath.Vec4
	in[0] = vmath.Vec4{0.25, 0.5, 2, -1}
	th := runProgram(t, isa.VertexProgram, `
MOV r0, -v0.wzyx
MOV_SAT o0, v0
MOV o1, r0
END`, nil, in, nil)
	if th.Out[0][0] != (vmath.Vec4{0.25, 0.5, 1, 0}) {
		t.Fatalf("saturate: %v", th.Out[0][0])
	}
	if th.Out[0][1] != (vmath.Vec4{1, -2, -0.5, -0.25}) {
		t.Fatalf("swizzle+negate: %v", th.Out[0][1])
	}
}

func TestWriteMaskPreservesComponents(t *testing.T) {
	var in [isa.MaxInputs]vmath.Vec4
	in[0] = vmath.Vec4{9, 9, 9, 9}
	th := runProgram(t, isa.VertexProgram, `
MOV r0, v0
MOV r0.yw, -v0
MOV o0, r0
END`, nil, in, nil)
	if th.Out[0][0] != (vmath.Vec4{9, -9, 9, -9}) {
		t.Fatalf("masked write: %v", th.Out[0][0])
	}
}

func TestScalarOps(t *testing.T) {
	var in [isa.MaxInputs]vmath.Vec4
	in[0] = vmath.Vec4{4, 8, 2, 3}
	th := runProgram(t, isa.VertexProgram, `
RCP o0.x, v0.x
RSQ o0.y, v0.x
EX2 o0.z, v0.z
LG2 o0.w, v0.y
POW o1.x, v0.z, v0.w
SIN o1.y, v0.x
COS o1.z, v0.x
END`, nil, in, nil)
	got := th.Out[0][0]
	want := vmath.Vec4{0.25, 0.5, 4, 3}
	if !vecNear(got, want, 1e-5) {
		t.Fatalf("scalars: got %v want %v", got, want)
	}
	if math.Abs(float64(th.Out[0][1][0]-8)) > 1e-4 {
		t.Fatalf("POW: %v", th.Out[0][1][0])
	}
	if math.Abs(float64(th.Out[0][1][1])-math.Sin(4)) > 1e-5 {
		t.Fatalf("SIN: %v", th.Out[0][1][1])
	}
	if math.Abs(float64(th.Out[0][1][2])-math.Cos(4)) > 1e-5 {
		t.Fatalf("COS: %v", th.Out[0][1][2])
	}
}

func TestCompareSelectOps(t *testing.T) {
	var in [isa.MaxInputs]vmath.Vec4
	in[0] = vmath.Vec4{-1, 2, 0, 5}
	in[1] = vmath.Vec4{1, 1, 1, 1}
	in[2] = vmath.Vec4{7, 7, 7, 7}
	th := runProgram(t, isa.VertexProgram, `
SLT o0, v0, v1
SGE o1, v0, v1
CMP o2, v0, v1, v2
MIN o3, v0, v1
MAX o4, v0, v1
END`, nil, in, nil)
	if th.Out[0][0] != (vmath.Vec4{1, 0, 1, 0}) {
		t.Fatalf("SLT: %v", th.Out[0][0])
	}
	if th.Out[0][1] != (vmath.Vec4{0, 1, 0, 1}) {
		t.Fatalf("SGE: %v", th.Out[0][1])
	}
	if th.Out[0][2] != (vmath.Vec4{1, 7, 7, 7}) {
		t.Fatalf("CMP: %v", th.Out[0][2])
	}
	if th.Out[0][3] != (vmath.Vec4{-1, 1, 0, 1}) {
		t.Fatalf("MIN: %v", th.Out[0][3])
	}
	if th.Out[0][4] != (vmath.Vec4{1, 2, 1, 5}) {
		t.Fatalf("MAX: %v", th.Out[0][4])
	}
}

func TestFrcFlrAbsLrp(t *testing.T) {
	var in [isa.MaxInputs]vmath.Vec4
	in[0] = vmath.Vec4{1.25, -1.25, 3.75, -0.5}
	in[1] = vmath.Vec4{0.5, 0.5, 0.5, 0.5}
	in[2] = vmath.Vec4{0, 0, 0, 0}
	in[3] = vmath.Vec4{10, 20, 30, 40}
	th := runProgram(t, isa.VertexProgram, `
FRC o0, v0
FLR o1, v0
ABS o2, v0
LRP o3, v1, v2, v3
END`, nil, in, nil)
	if !vecNear(th.Out[0][0], vmath.Vec4{0.25, 0.75, 0.75, 0.5}, 1e-6) {
		t.Fatalf("FRC: %v", th.Out[0][0])
	}
	if th.Out[0][1] != (vmath.Vec4{1, -2, 3, -1}) {
		t.Fatalf("FLR: %v", th.Out[0][1])
	}
	if th.Out[0][2] != (vmath.Vec4{1.25, 1.25, 3.75, 0.5}) {
		t.Fatalf("ABS: %v", th.Out[0][2])
	}
	if !vecNear(th.Out[0][3], vmath.Vec4{5, 10, 15, 20}, 1e-5) {
		t.Fatalf("LRP: %v", th.Out[0][3])
	}
}

func TestLitAndDst(t *testing.T) {
	var in [isa.MaxInputs]vmath.Vec4
	in[0] = vmath.Vec4{0.5, 0.25, 0, 2}
	in[1] = vmath.Vec4{1, 3, 5, 7}
	in[2] = vmath.Vec4{2, 4, 6, 8}
	th := runProgram(t, isa.VertexProgram, `
LIT o0, v0
DST o1, v1, v2
END`, nil, in, nil)
	want := vmath.Vec4{1, 0.5, 0.0625, 1}
	if !vecNear(th.Out[0][0], want, 1e-5) {
		t.Fatalf("LIT: got %v want %v", th.Out[0][0], want)
	}
	if th.Out[0][1] != (vmath.Vec4{1, 12, 5, 8}) {
		t.Fatalf("DST: %v", th.Out[0][1])
	}
	// Negative diffuse: spec must be 0.
	in[0] = vmath.Vec4{-0.5, 0.25, 0, 2}
	th = runProgram(t, isa.VertexProgram, "LIT o0, v0\nEND", nil, in, nil)
	if th.Out[0][0] != (vmath.Vec4{1, 0, 0, 1}) {
		t.Fatalf("LIT negative: %v", th.Out[0][0])
	}
}

func TestConstantBank(t *testing.T) {
	consts := []vmath.Vec4{{1, 0, 0, 0}, {0, 2, 0, 0}}
	var in [isa.MaxInputs]vmath.Vec4
	in[0] = vmath.Vec4{3, 3, 3, 3}
	th := runProgram(t, isa.VertexProgram, `
MUL r0, v0, c0
MAD o0, v0, c1, r0
END`, consts, in, nil)
	if th.Out[0][0] != (vmath.Vec4{3, 6, 0, 0}) {
		t.Fatalf("consts: %v", th.Out[0][0])
	}
}

func TestKILKillsNegativeLanes(t *testing.T) {
	prog := isa.MustAssemble(isa.FragmentProgram, "kil", `
KIL v0
MOV o0, v1
END`)
	e := New(prog, nil)
	th := e.NewThread()
	for l := 0; l < Lanes; l++ {
		th.Active[l] = true
		th.In[l][1] = vmath.Vec4{1, 1, 1, 1}
	}
	th.In[0][0] = vmath.Vec4{1, 1, 1, 1}  // survives
	th.In[1][0] = vmath.Vec4{-1, 1, 1, 1} // killed (x<0)
	th.In[2][0] = vmath.Vec4{1, 1, 1, -2} // killed (w<0)
	th.In[3][0] = vmath.Vec4{0, 0, 0, 0}  // survives (not strictly negative)
	if _, err := e.Run(th, nil); err != nil {
		t.Fatal(err)
	}
	want := [Lanes]bool{false, true, true, false}
	if th.Killed != want {
		t.Fatalf("killed lanes: %v", th.Killed)
	}
}

func TestTextureRequestAndCompletion(t *testing.T) {
	prog := isa.MustAssemble(isa.FragmentProgram, "tex", `
TEX r0, v4, t3, 2D
MUL o0, r0, v1
END`)
	e := New(prog, nil)
	th := e.NewThread()
	for l := 0; l < Lanes; l++ {
		th.Active[l] = true
		th.In[l][4] = vmath.Vec4{float32(l), 0.5, 0, 0}
		th.In[l][1] = vmath.Vec4{2, 2, 2, 2}
	}
	var captured *TexRequest
	sample := func(req *TexRequest) [Lanes]vmath.Vec4 {
		captured = req
		var out [Lanes]vmath.Vec4
		for l := range out {
			out[l] = vmath.Vec4{req.Coord[l][0], 0, 0, 1}
		}
		return out
	}
	if _, err := e.Run(th, sample); err != nil {
		t.Fatal(err)
	}
	if captured == nil || captured.Sampler != 3 || captured.Target != isa.Tex2D {
		t.Fatalf("request: %+v", captured)
	}
	if th.Out[2][0] != (vmath.Vec4{4, 0, 0, 2}) {
		t.Fatalf("lane 2 output: %v", th.Out[2][0])
	}
}

func TestTexModeMapping(t *testing.T) {
	for _, tc := range []struct {
		op   string
		mode TexMode
	}{{"TEX", TexModeNormal}, {"TXB", TexModeBias}, {"TXP", TexModeProj}, {"TXL", TexModeLod}} {
		prog := isa.MustAssemble(isa.FragmentProgram, "t", tc.op+" r0, v4, t0, 2D\nEND")
		e := New(prog, nil)
		th := e.NewThread()
		th.Active[0] = true
		e.Step(th)
		if th.Blocked == nil || th.Blocked.Mode != tc.mode {
			t.Fatalf("%s: mode %v", tc.op, th.Blocked)
		}
	}
}

func TestStepPanicsOnBlockedThread(t *testing.T) {
	prog := isa.MustAssemble(isa.FragmentProgram, "t", "TEX r0, v4, t0, 2D\nEND")
	e := New(prog, nil)
	th := e.NewThread()
	th.Active[0] = true
	e.Step(th)
	defer func() {
		if recover() == nil {
			t.Fatal("Step on blocked thread did not panic")
		}
	}()
	e.Step(th)
}

func TestInactiveLanesUntouched(t *testing.T) {
	prog := isa.MustAssemble(isa.VertexProgram, "t", "MOV o0, v0\nEND")
	e := New(prog, nil)
	th := e.NewThread()
	th.Active[0] = true
	th.In[0][0] = vmath.Vec4{5, 5, 5, 5}
	th.In[1][0] = vmath.Vec4{9, 9, 9, 9} // inactive lane
	if _, err := e.Run(th, nil); err != nil {
		t.Fatal(err)
	}
	if th.Out[1][0] != (vmath.Vec4{}) {
		t.Fatalf("inactive lane written: %v", th.Out[1][0])
	}
}

// Property: MAD r, a, b, c == MUL t, a, b; ADD r, t, c for all inputs.
func TestMADEquivalenceProperty(t *testing.T) {
	madProg := isa.MustAssemble(isa.VertexProgram, "mad", "MAD o0, v0, v1, v2\nEND")
	mulAdd := isa.MustAssemble(isa.VertexProgram, "muladd", "MUL r0, v0, v1\nADD o0, r0, v2\nEND")
	f := func(a, b, c [4]float32) bool {
		em1 := New(madProg, nil)
		em2 := New(mulAdd, nil)
		t1, t2 := em1.NewThread(), em2.NewThread()
		t1.Active[0], t2.Active[0] = true, true
		t1.In[0][0], t1.In[0][1], t1.In[0][2] = a, b, c
		t2.In[0][0], t2.In[0][1], t2.In[0][2] = a, b, c
		if _, err := em1.Run(t1, nil); err != nil {
			return false
		}
		if _, err := em2.Run(t2, nil); err != nil {
			return false
		}
		got1, got2 := t1.Out[0][0], t2.Out[0][0]
		for i := 0; i < 4; i++ {
			x, y := got1[i], got2[i]
			if x != y && !(x != x && y != y) { // allow NaN==NaN
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// Property: swizzled read then MOV equals reading the permuted input.
func TestSwizzlePermutationProperty(t *testing.T) {
	f := func(v [4]float32, xi, yi, zi, wi uint8) bool {
		x, y, z, w := int(xi%4), int(yi%4), int(zi%4), int(wi%4)
		sw := isa.MakeSwizzle(x, y, z, w)
		prog := &isa.Program{Kind: isa.VertexProgram, Name: "swz", Instr: []isa.Instruction{
			{Op: isa.MOV, Dst: isa.Dst(isa.BankOutput, 0), Src: [3]isa.SrcOperand{isa.Src(isa.BankInput, 0).Swz(sw)}},
			{Op: isa.END},
		}}
		if err := prog.Validate(); err != nil {
			return false
		}
		e := New(prog, nil)
		th := e.NewThread()
		th.Active[0] = true
		th.In[0][0] = v
		if _, err := e.Run(th, nil); err != nil {
			return false
		}
		want := vmath.Vec4{v[x], v[y], v[z], v[w]}
		got := th.Out[0][0]
		for i := 0; i < 4; i++ {
			if got[i] != want[i] && !(got[i] != got[i] && want[i] != want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReportsStepCount(t *testing.T) {
	prog := isa.MustAssemble(isa.VertexProgram, "t", "MOV r0, v0\nMOV o0, r0\nEND")
	e := New(prog, nil)
	th := e.NewThread()
	th.Active[0] = true
	steps, err := e.Run(th, nil)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 3 {
		t.Fatalf("steps: %d", steps)
	}
}
