// Package shaderemu implements the ShaderEmulator (paper §3): a
// threaded interpreter that executes shader programs instruction by
// instruction, updating per-thread register state. The emulator
// contains no timing; the ShaderFetch/DecodeExecute boxes in
// internal/gpu drive it cycle by cycle, and the functional reference
// renderer drives it to completion directly.
//
// A thread processes a group of up to four shader inputs in lockstep
// (one fragment quad or four vertices), matching the paper's grouped
// execution where the shader works as a 512-bit processor.
package shaderemu

import (
	"fmt"
	"math"

	"attila/internal/isa"
	"attila/internal/vmath"
)

// Lanes is the number of shader inputs executed in lockstep per
// thread (a fragment quad, or four vertices).
const Lanes = 4

// Thread holds the architectural state of one shader thread: the
// input, output and temporary banks for each of the four lanes, the
// program counter, and per-lane liveness.
type Thread struct {
	PC      int
	In      [Lanes][isa.MaxInputs]vmath.Vec4
	Out     [Lanes][isa.MaxOutputs]vmath.Vec4
	Temp    [Lanes][]vmath.Vec4
	Active  [Lanes]bool // lane carries a real input
	Killed  [Lanes]bool // lane discarded by KIL
	Done    bool        // executed END
	Blocked *TexRequest // non-nil while waiting on a texture result

	// texReq is the thread-owned backing store for Blocked. A thread
	// has at most one texture operation in flight (Step panics
	// otherwise), and once CompleteTexture runs nothing references
	// the old request, so reusing the same storage keeps the shader
	// hot loop allocation-free.
	texReq TexRequest
}

// Reset prepares the thread to run a program needing temps temporary
// registers, reusing lane storage where possible.
func (t *Thread) Reset(temps int) {
	t.PC = 0
	t.Done = false
	t.Blocked = nil
	for l := 0; l < Lanes; l++ {
		t.Active[l] = false
		t.Killed[l] = false
		if cap(t.Temp[l]) < temps {
			t.Temp[l] = make([]vmath.Vec4, temps)
		} else {
			t.Temp[l] = t.Temp[l][:temps]
			for i := range t.Temp[l] {
				t.Temp[l][i] = vmath.Vec4{}
			}
		}
	}
}

// TexMode distinguishes the texture instruction variants.
type TexMode uint8

// Texture sampling modes.
const (
	TexModeNormal TexMode = iota // TEX: lod from derivatives
	TexModeBias                  // TXB: lod bias in coord.w
	TexModeProj                  // TXP: coords divided by coord.w
	TexModeLod                   // TXL: explicit lod in coord.w
)

// TexRequest is an in-flight texture operation for a whole thread
// (all four lanes sample together, which is what makes quad-granular
// derivative computation possible).
type TexRequest struct {
	Sampler uint8
	Target  isa.TexTarget
	Mode    TexMode
	Coord   [Lanes]vmath.Vec4
	Active  [Lanes]bool
	// Destination to write when the sample completes.
	Dst      isa.DstOperand
	Saturate bool
}

// Emulator executes a program against thread state. The constant bank
// is shared by all threads running the same batch.
type Emulator struct {
	prog   *isa.Program
	consts []vmath.Vec4
}

// New creates an emulator for prog with the given constant bank
// (nil-padded to the architectural limit).
func New(prog *isa.Program, consts []vmath.Vec4) *Emulator {
	c := make([]vmath.Vec4, isa.MaxConsts)
	copy(c, consts)
	return &Emulator{prog: prog, consts: c}
}

// Program returns the program being executed.
func (e *Emulator) Program() *isa.Program { return e.prog }

// NewThread allocates a thread sized for the program.
func (e *Emulator) NewThread() *Thread {
	t := &Thread{}
	t.Reset(e.prog.TempsUsed())
	return t
}

// Step executes the instruction at t.PC and advances. It returns the
// instruction executed for timing purposes. If the instruction is a
// texture operation the thread blocks (t.Blocked is set) and the
// caller must eventually call CompleteTexture; Step must not be
// called again until then. Calling Step on a finished or blocked
// thread panics: that is a timing-simulator bug.
func (e *Emulator) Step(t *Thread) isa.Instruction {
	if t.Done {
		panic("shaderemu: Step on finished thread")
	}
	if t.Blocked != nil {
		panic("shaderemu: Step on thread blocked on texture")
	}
	in := e.prog.Instr[t.PC]
	t.PC++
	info := in.Op.Info()
	switch {
	case in.Op == isa.END:
		t.Done = true
	case in.Op == isa.NOP:
	case in.Op == isa.KIL:
		for l := 0; l < Lanes; l++ {
			if !t.Active[l] || t.Killed[l] {
				continue
			}
			v := e.readSrc(t, l, in.Src[0])
			if v[0] < 0 || v[1] < 0 || v[2] < 0 || v[3] < 0 {
				t.Killed[l] = true
			}
		}
	case info.Texture:
		req := &t.texReq
		*req = TexRequest{
			Sampler:  in.Sampler,
			Target:   in.Target,
			Dst:      in.Dst,
			Saturate: in.Saturate,
		}
		switch in.Op {
		case isa.TXB:
			req.Mode = TexModeBias
		case isa.TXP:
			req.Mode = TexModeProj
		case isa.TXL:
			req.Mode = TexModeLod
		}
		for l := 0; l < Lanes; l++ {
			// Coordinates are computed for every lane, even ones
			// that are inactive or killed, because the quad's
			// texture derivatives need all four corners.
			req.Coord[l] = e.readSrc(t, l, in.Src[0])
			req.Active[l] = t.Active[l] && !t.Killed[l]
		}
		t.Blocked = req
	default:
		for l := 0; l < Lanes; l++ {
			if !t.Active[l] {
				continue
			}
			e.execALU(t, l, in)
		}
	}
	return in
}

// CompleteTexture writes the sampled results for the thread's pending
// texture request and unblocks it.
func (e *Emulator) CompleteTexture(t *Thread, results [Lanes]vmath.Vec4) {
	req := t.Blocked
	if req == nil {
		panic("shaderemu: CompleteTexture without pending request")
	}
	t.Blocked = nil
	for l := 0; l < Lanes; l++ {
		if !t.Active[l] {
			continue
		}
		e.writeDst(t, l, req.Dst, req.Saturate, results[l])
	}
}

// SampleFunc performs a texture lookup for a whole thread; used by
// Run for functional (non-timed) execution.
type SampleFunc func(req *TexRequest) [Lanes]vmath.Vec4

// Run executes the thread to completion, resolving texture requests
// through sample. It returns the number of instructions executed.
func (e *Emulator) Run(t *Thread, sample SampleFunc) (int, error) {
	steps := 0
	for !t.Done {
		if steps > 1<<20 {
			return steps, fmt.Errorf("shaderemu: program %q did not terminate", e.prog.Name)
		}
		e.Step(t)
		steps++
		if t.Blocked != nil {
			if sample == nil {
				return steps, fmt.Errorf("shaderemu: program %q samples textures but no sampler provided", e.prog.Name)
			}
			e.CompleteTexture(t, sample(t.Blocked))
		}
	}
	return steps, nil
}

func (e *Emulator) readSrc(t *Thread, lane int, s isa.SrcOperand) vmath.Vec4 {
	var raw vmath.Vec4
	switch s.Bank {
	case isa.BankInput:
		raw = t.In[lane][s.Index]
	case isa.BankTemp:
		raw = t.Temp[lane][s.Index]
	case isa.BankConst:
		raw = e.consts[s.Index]
	}
	var v vmath.Vec4
	for i := 0; i < 4; i++ {
		v[i] = raw[s.Swizzle.Comp(i)]
	}
	if s.Negate {
		for i := range v {
			v[i] = -v[i]
		}
	}
	return v
}

func (e *Emulator) writeDst(t *Thread, lane int, d isa.DstOperand, sat bool, v vmath.Vec4) {
	if sat {
		v = v.Clamp01()
	}
	var reg *vmath.Vec4
	switch d.Bank {
	case isa.BankTemp:
		reg = &t.Temp[lane][d.Index]
	case isa.BankOutput:
		reg = &t.Out[lane][d.Index]
	default:
		panic("shaderemu: bad destination bank")
	}
	for i := 0; i < 4; i++ {
		if d.Mask.Has(i) {
			reg[i] = v[i]
		}
	}
}

func (e *Emulator) execALU(t *Thread, lane int, in isa.Instruction) {
	info := in.Op.Info()
	var s [3]vmath.Vec4
	for i := 0; i < info.NSrc; i++ {
		s[i] = e.readSrc(t, lane, in.Src[i])
	}
	var r vmath.Vec4
	switch in.Op {
	case isa.MOV:
		r = s[0]
	case isa.ADD:
		r = s[0].Add(s[1])
	case isa.SUB:
		r = s[0].Sub(s[1])
	case isa.MUL:
		r = s[0].Mul(s[1])
	case isa.MAD:
		r = s[0].Mul(s[1]).Add(s[2])
	case isa.DP3:
		r = splat(s[0].Dot3(s[1]))
	case isa.DP4:
		r = splat(s[0].Dot4(s[1]))
	case isa.DPH:
		r = splat(s[0].Dot3(s[1]) + s[1][3])
	case isa.DST:
		r = vmath.Vec4{1, s[0][1] * s[1][1], s[0][2], s[1][3]}
	case isa.MIN:
		r = vecMin(s[0], s[1])
	case isa.MAX:
		r = vecMax(s[0], s[1])
	case isa.SLT:
		r = vecCmp(s[0], s[1], func(a, b float32) bool { return a < b })
	case isa.SGE:
		r = vecCmp(s[0], s[1], func(a, b float32) bool { return a >= b })
	case isa.FRC:
		for i := 0; i < 4; i++ {
			r[i] = s[0][i] - floorf(s[0][i])
		}
	case isa.FLR:
		for i := 0; i < 4; i++ {
			r[i] = floorf(s[0][i])
		}
	case isa.ABS:
		for i := 0; i < 4; i++ {
			r[i] = float32(math.Abs(float64(s[0][i])))
		}
	case isa.CMP:
		for i := 0; i < 4; i++ {
			if s[0][i] < 0 {
				r[i] = s[1][i]
			} else {
				r[i] = s[2][i]
			}
		}
	case isa.LRP:
		for i := 0; i < 4; i++ {
			r[i] = s[0][i]*s[1][i] + (1-s[0][i])*s[2][i]
		}
	case isa.XPD:
		r = s[0].Cross(s[1])
	case isa.RCP:
		r = splat(1 / s[0][0])
	case isa.RSQ:
		r = splat(float32(1 / math.Sqrt(math.Abs(float64(s[0][0])))))
	case isa.EX2:
		r = splat(float32(math.Exp2(float64(s[0][0]))))
	case isa.LG2:
		r = splat(float32(math.Log2(math.Abs(float64(s[0][0])))))
	case isa.POW:
		r = splat(float32(math.Pow(math.Abs(float64(s[0][0])), float64(s[1][0]))))
	case isa.SIN:
		r = splat(float32(math.Sin(float64(s[0][0]))))
	case isa.COS:
		r = splat(float32(math.Cos(float64(s[0][0]))))
	case isa.LIT:
		r = lit(s[0])
	default:
		panic(fmt.Sprintf("shaderemu: unhandled opcode %v", in.Op))
	}
	e.writeDst(t, lane, in.Dst, in.Saturate, r)
}

func splat(f float32) vmath.Vec4 { return vmath.Vec4{f, f, f, f} }

func floorf(f float32) float32 { return float32(math.Floor(float64(f))) }

func vecMin(a, b vmath.Vec4) vmath.Vec4 {
	var r vmath.Vec4
	for i := 0; i < 4; i++ {
		if a[i] < b[i] {
			r[i] = a[i]
		} else {
			r[i] = b[i]
		}
	}
	return r
}

func vecMax(a, b vmath.Vec4) vmath.Vec4 {
	var r vmath.Vec4
	for i := 0; i < 4; i++ {
		if a[i] > b[i] {
			r[i] = a[i]
		} else {
			r[i] = b[i]
		}
	}
	return r
}

func vecCmp(a, b vmath.Vec4, pred func(x, y float32) bool) vmath.Vec4 {
	var r vmath.Vec4
	for i := 0; i < 4; i++ {
		if pred(a[i], b[i]) {
			r[i] = 1
		}
	}
	return r
}

// lit implements the ARB LIT instruction: the classic ambient /
// diffuse / specular coefficient helper.
func lit(s vmath.Vec4) vmath.Vec4 {
	diff := s[0]
	if diff < 0 {
		diff = 0
	}
	specBase := s[1]
	if specBase < 0 {
		specBase = 0
	}
	power := s[3]
	if power < -128 {
		power = -128
	}
	if power > 128 {
		power = 128
	}
	var spec float32
	if s[0] > 0 {
		spec = float32(math.Pow(float64(specBase), float64(power)))
	}
	return vmath.Vec4{1, diff, spec, 1}
}
