package clipemu

import (
	"testing"
	"testing/quick"

	"attila/internal/vmath"
)

func TestTrivialRejection(t *testing.T) {
	// All vertices beyond x > w: rejected.
	if !TriviallyRejected(
		vmath.Vec4{2, 0, 0, 1},
		vmath.Vec4{3, 1, 0, 1},
		vmath.Vec4{2.5, -1, 0, 1}) {
		t.Fatal("triangle right of frustum not rejected")
	}
	// Straddling: one vertex inside.
	if TriviallyRejected(
		vmath.Vec4{2, 0, 0, 1},
		vmath.Vec4{0, 0, 0, 1},
		vmath.Vec4{2.5, -1, 0, 1}) {
		t.Fatal("partially visible triangle rejected")
	}
	// Vertices outside different planes but not all the same one.
	if TriviallyRejected(
		vmath.Vec4{2, 0, 0, 1},
		vmath.Vec4{-2, 0, 0, 1},
		vmath.Vec4{0, 2, 0, 1}) {
		t.Fatal("cross-plane triangle rejected")
	}
}

func TestFullyInside(t *testing.T) {
	if !FullyInside(
		vmath.Vec4{0, 0, 0, 1},
		vmath.Vec4{0.5, 0.5, 0.5, 1},
		vmath.Vec4{-0.5, -0.5, -0.5, 1}) {
		t.Fatal("inside triangle not detected")
	}
	if FullyInside(
		vmath.Vec4{0, 0, 0, 1},
		vmath.Vec4{2, 0, 0, 1},
		vmath.Vec4{0, 0.5, 0, 1}) {
		t.Fatal("partially outside triangle reported inside")
	}
}

// Property: a rejected triangle can contain no vertex that is inside
// the frustum, and FullyInside implies not TriviallyRejected.
func TestRejectionSoundnessProperty(t *testing.T) {
	f := func(coords [9]float32) bool {
		mk := func(i int) vmath.Vec4 {
			return vmath.Vec4{coords[i], coords[i+1], coords[i+2], 1}
		}
		v0, v1, v2 := mk(0), mk(3), mk(6)
		rej := TriviallyRejected(v0, v1, v2)
		if rej {
			for _, v := range []vmath.Vec4{v0, v1, v2} {
				if outcode(v) == 0 {
					return false // inside vertex on a rejected triangle
				}
			}
		}
		if FullyInside(v0, v1, v2) && rej {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOutcodePlanes(t *testing.T) {
	cases := []struct {
		v    vmath.Vec4
		code uint8
	}{
		{vmath.Vec4{0, 0, 0, 1}, 0},
		{vmath.Vec4{-2, 0, 0, 1}, 1 << 0},
		{vmath.Vec4{2, 0, 0, 1}, 1 << 1},
		{vmath.Vec4{0, -2, 0, 1}, 1 << 2},
		{vmath.Vec4{0, 2, 0, 1}, 1 << 3},
		{vmath.Vec4{0, 0, -2, 1}, 1 << 4},
		{vmath.Vec4{0, 0, 2, 1}, 1 << 5},
	}
	for _, c := range cases {
		if got := outcode(c.v); got != c.code {
			t.Errorf("outcode(%v) = %06b, want %06b", c.v, got, c.code)
		}
	}
}
